// Redundant dispatch: clone-to-k and hedged request copies racing on
// distinct hardware pools (the processor-sharing cloning model of
// arXiv 2002.04416), with cancel-on-first-complete or the synchronized-
// service variant, layered on the same device/cluster/container runtime the
// split-dispatch schemes use. A redundancy-bearing Scheme swaps the
// dispatcher and hardware-selection halves of the runner for this file's
// manager; every other scheme keeps the exact event sequence it had.

package core

import (
	"time"

	"repro/internal/batch"
	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/hardware"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// maxCopies bounds the copies of one request set: the primary plus up to two
// clones (the catalog has three distinct GPU types), or a primary plus one
// hedged backup.
const maxCopies = 3

// redundancy manages the static hardware pools and in-flight clone sets of a
// redundant-dispatch run. Unlike the adaptive path there is no hardware
// switching: the pools are chosen once (cost-ascending from the capable
// pool) and only replaced when a node dies or is revoked.
type redundancy struct {
	r     *runner
	k     int  // copies per set (clone mode)
	sync  bool // synchronized-service variant
	hedge bool
	age   *metrics.AgeTracker // hedge mode: online completion-latency percentile

	pools []*redPool

	free         []*cloneSet // recycled sets
	sizesScratch []int
	poolScratch  []*redPool

	revokeCursor int
	failCursor   int
}

// redPool is one hardware pool: a fixed spec whose serving node is replaced
// (as spot, when so marked) whenever it fails or is revoked.
type redPool struct {
	spec      hardware.Spec
	spot      bool
	sn        *servingNode // nil while a replacement is procuring
	acquiring bool
	resCap    int          // memoized residentCap for capSN
	capSN     *servingNode // node resCap was computed for
}

func newRedundancy(r *runner) *redundancy {
	rd := r.cfg.Scheme.Redundancy
	d := &redundancy{r: r, k: rd.CloneK, sync: rd.Synchronized, hedge: rd.HedgePct > 0}
	if d.hedge {
		d.age = metrics.NewAgeTracker(rd.HedgePct)
	}
	return d
}

// redundantSpecs picks the distinct GPU types the pools run on: the capable
// pool for the warm-start rate first (cost-ascending, like Algorithm 1's
// candidate order), topped up from the rest of the catalog so k pools exist
// even when fewer types are individually capable.
func redundantSpecs(m model.Spec, rate float64, slo time.Duration, need int) []hardware.Spec {
	var specs []hardware.Spec
	add := func(hw hardware.Spec) {
		if !hw.IsGPU() {
			return
		}
		for _, s := range specs {
			if s.Name == hw.Name {
				return
			}
		}
		specs = append(specs, hw)
	}
	for _, hw := range profile.AppendCapablePool(nil, m, rate, slo) {
		add(hw)
	}
	for _, hw := range hardware.CostSorted() {
		add(hw)
	}
	if len(specs) > need {
		specs = specs[:need]
	}
	return specs
}

// warmStart brings up every pool with warm containers. SpotFraction of the
// pools — the costliest ones, where the discount buys the most — run on
// spot capacity.
func (d *redundancy) warmStart() {
	r := d.r
	need := d.k
	if d.hedge {
		need = 2
	}
	rate := r.arr.InitRPS(2 * time.Second)
	specs := redundantSpecs(r.cfg.Model, rate, r.cfg.SLO, need)
	spotCount := 0
	if r.cfg.SpotDiscount > 0 {
		spotCount = int(r.cfg.SpotFraction*float64(len(specs)) + 0.5)
	}
	for i, spec := range specs {
		p := &redPool{spec: spec, spot: i >= len(specs)-spotCount}
		disc := 0.0
		if p.spot {
			disc = r.cfg.SpotDiscount
		}
		node := r.clu.AcquireSpot(spec, profile.MaxResidentJobs(r.cfg.Model, spec), disc)
		p.sn = r.wireNode(node)
		p.sn.pool.AddWarm(2)
		p.sn.ctl.Start()
		d.pools = append(d.pools, p)
	}
	r.history = append(r.history, SwitchEvent{At: 0, Spec: specs[0].Name})
}

// healthy returns the pools able to take new work, in pool (cost) order.
// The returned slice is manager-owned scratch, valid until the next call.
func (d *redundancy) healthy() []*redPool {
	pools := d.poolScratch[:0]
	for _, p := range d.pools {
		if p.sn == nil {
			continue
		}
		n := p.sn.node
		if n.Device == nil || n.Device.Failed() || n.Revoked() {
			continue
		}
		pools = append(pools, p)
	}
	d.poolScratch = pools
	return pools
}

// dispatch serves this window's pending requests: each batch becomes one
// clone set with k racing copies (clone mode) or a primary plus an armed
// hedge timer. With zero healthy pools requests wait in the batcher —
// maintain() is already procuring replacements — and are re-dispatched once
// a pool returns.
func (d *redundancy) dispatch() {
	r := d.r
	n := r.bat.Pending()
	if n == 0 {
		return
	}
	healthy := d.healthy()
	if len(healthy) == 0 {
		return
	}
	primary := healthy[0].sn
	bs := primary.entry.PreferredBatch
	used := healthy[:1]
	if !d.hedge {
		if k := d.k; k < len(healthy) {
			used = healthy[:k]
		} else {
			used = healthy
		}
	}
	// Interference-aware admission, the Eq. (1) spirit on the cloning path:
	// every used pool must have a free resident slot per batch (Busy+Waiting
	// containers each carry one in-flight copy), and the slots themselves
	// are capped so PS sharing still meets the SLO. Work beyond that waits
	// in the batcher — reroutable, and out of the blast radius of a
	// mid-queue revocation kill.
	for _, p := range used {
		if p.capSN != p.sn {
			p.resCap = residentCap(r.cfg.Model, p.sn, r.cfg.SLO)
			p.capSN = p.sn
		}
		free := p.resCap - p.sn.pool.Busy() - p.sn.pool.Waiting()
		if free < 0 {
			free = 0
		}
		if max := free * bs; n > max {
			n = max
		}
	}
	if n <= 0 {
		return
	}
	d.sizesScratch = batch.SplitSizes(d.sizesScratch, n, bs)
	for _, size := range d.sizesScratch {
		s := d.newSet()
		s.dispatched = r.eng.Now()
		s.reqs = r.bat.TakeInto(s.reqs[:0], size)
		if d.hedge {
			s.launch(0, primary, "")
			// The backup launches when the batch's oldest request is older
			// than the tracked completion-latency percentile.
			fireAt := s.reqs[0].Arrival + d.hedgeThreshold()
			delay := fireAt - r.eng.Now()
			if delay < 0 {
				delay = 0
			}
			s.hedgeTimer = r.eng.Schedule(delay, s.hedgeFn)
			continue
		}
		k := d.k
		if k > len(healthy) {
			k = len(healthy)
		}
		for i := 0; i < k; i++ {
			kind := "clone"
			if i == 0 {
				kind = ""
			}
			s.launch(i, healthy[i].sn, kind)
		}
	}
}

// residentCap bounds co-resident copies on a pool: the largest count (up to
// the node's memory slots) whose processor-sharing interference — bandwidth
// slowdown, compute occupancy, MPS client overhead — still finishes a
// preferred batch inside the SLO. Without it a drained backlog piles onto
// the device all at once and every job slows every other past the deadline.
func residentCap(m model.Spec, sn *servingNode, slo time.Duration) int {
	bs := sn.entry.PreferredBatch
	solo := profile.Solo(m, sn.node.Spec, bs)
	fbr := sn.entry.FBR
	comp := profile.ComputeFraction(m, sn.node.Spec, bs)
	best := 1
	for c := 2; c <= sn.entry.MaxResidentJobs; c++ {
		slow := profile.Slowdown(float64(c)*fbr, fbr)
		if agg := float64(c) * comp; agg > 1 && agg > slow {
			slow = agg
		}
		est := time.Duration(float64(solo) * slow * profile.ClientOverhead(c))
		if est > slo {
			break
		}
		best = c
	}
	return best
}

// hedgeThreshold is the request age at which a backup launches: the online
// p(HedgePct) completion latency once the tracker has enough samples, half
// the SLO before that.
func (d *redundancy) hedgeThreshold() time.Duration {
	if d.age.Ready() {
		return d.age.Threshold()
	}
	return d.r.cfg.SLO / 2
}

// maintain is the redundancy path's monitor tick: dead or revoked pool
// nodes are retired (draining what the revocation notice allows) and
// replaced with a fresh node of the same spec — spot again, for spot pools.
// Pools also escalate: each copy carries the whole request stream, so when
// the observed rate outgrows a pool's hardware the pool upgrades to the
// cheapest GPU that sustains it. Upgrades are one-way (no downgrade
// oscillation on erratic traces) and staggered — at most one pool swaps per
// tick, and only while every other pool is healthy, so the remaining copies
// keep serving through the gap.
func (d *redundancy) maintain() {
	r := d.r
	obs := r.observedRPS(r.eng.Now())
	upgraded := false
	for _, p := range d.pools {
		if p.sn != nil {
			n := p.sn.node
			if n.Device != nil && !n.Device.Failed() && !n.Revoked() {
				if !upgraded && obs > profile.Headroom*profile.ThroughputRPS(r.cfg.Model, p.spec) &&
					d.othersHealthy(p) {
					if up, ok := upgradeSpec(r.cfg.Model, obs, p.spec); ok {
						upgraded = true
						p.spec = up
						old := p.sn
						p.sn = nil
						r.retire(old)
					}
				}
				if p.sn != nil {
					continue
				}
			} else {
				old := p.sn
				p.sn = nil
				r.retire(old)
			}
		}
		if p.acquiring {
			continue
		}
		p.acquiring = true
		disc := 0.0
		if p.spot {
			disc = r.cfg.SpotDiscount
		}
		pp := p
		spec := p.spec
		r.clu.AcquireAsyncSpot(spec, profile.MaxResidentJobs(r.cfg.Model, spec), disc,
			func(node *cluster.Node) {
				sn := r.wireNode(node)
				sn.pool.EnsureWithin(r.containerTarget(sn), swapTail)
				r.eng.Schedule(swapTail, func() {
					pp.sn = sn
					pp.acquiring = false
					sn.ctl.Start()
					r.switches++
					r.emit(telemetry.HWSwitch, node.ID, node.Spec.Name, "respawn")
				})
			})
	}
}

// othersHealthy reports whether every pool except p has a live, unfailed,
// unrevoked node — the precondition for taking p down for an upgrade.
func (d *redundancy) othersHealthy(p *redPool) bool {
	for _, o := range d.pools {
		if o == p {
			continue
		}
		if o.sn == nil || o.acquiring {
			return false
		}
		n := o.sn.node
		if n.Device == nil || n.Device.Failed() || n.Revoked() {
			return false
		}
	}
	return true
}

// upgradeSpec picks the pool's next hardware: the cheapest GPU that
// sustains rate with headroom, or — when nothing does — the highest-
// throughput GPU. Reports false when the current spec is already the
// right choice (never proposes a slower spec).
func upgradeSpec(m model.Spec, rate float64, cur hardware.Spec) (hardware.Spec, bool) {
	curTP := profile.ThroughputRPS(m, cur)
	for _, hw := range hardware.CostSorted() {
		if !hw.IsGPU() {
			continue
		}
		if profile.Headroom*profile.ThroughputRPS(m, hw) >= rate {
			if hw.Name != cur.Name && profile.ThroughputRPS(m, hw) > curTP {
				return hw, true
			}
			return hardware.Spec{}, false
		}
	}
	best, ok := hardware.Spec{}, false
	for _, hw := range hardware.CostSorted() {
		if hw.IsGPU() && profile.ThroughputRPS(m, hw) > curTP {
			if !ok || profile.ThroughputRPS(m, hw) > profile.ThroughputRPS(m, best) {
				best, ok = hw, true
			}
		}
	}
	return best, ok
}

// revokeNext delivers a revocation notice to the next spot pool in
// round-robin order.
func (d *redundancy) revokeNext() {
	for range d.pools {
		p := d.pools[d.revokeCursor%len(d.pools)]
		d.revokeCursor++
		if !p.spot || p.sn == nil || p.sn.node.Revoked() {
			continue
		}
		d.r.clu.Revoke(p.sn.node, d.r.cfg.RevokeNotice)
		return
	}
}

// failNext injects a node failure on the next pool in round-robin order,
// reporting whether one was actually injected.
func (d *redundancy) failNext() bool {
	for range d.pools {
		p := d.pools[d.failCursor%len(d.pools)]
		d.failCursor++
		if p.sn == nil || p.sn.node.Device == nil || p.sn.node.Revoked() {
			continue
		}
		d.r.clu.Fail(p.sn.node, d.r.cfg.FailureDuration)
		return true
	}
	return false
}

// --- clone sets ----------------------------------------------------------------

// cloneSet is one batch of requests and its redundant copies. Sets are
// recycled through the manager's free list; the per-copy Done/submit
// closures are bound once per set lifetime, so steady-state clone dispatch
// allocates nothing.
type cloneSet struct {
	red        *redundancy
	reqs       []batch.Request // owned copy; reused across lifetimes
	dispatched time.Duration
	copies     [maxCopies]cloneCopy
	launched   int
	done       int // copies whose Done fired
	failedC    int
	live       int // copies with a closure still able to run
	resolved   bool
	lastOK     *cloneCopy // sync mode: last successfully finished copy
	hedged     bool
	hedgeTimer sim.Timer
	hedgeFn    func()
}

// cloneCopy is one redundant copy: a device job on one pool's node plus the
// container claim that carries it.
type cloneCopy struct {
	set       *cloneSet
	node      *servingNode
	job       device.Job
	cold      time.Duration
	submitted bool
	cancelled bool
	finished  bool
	doneFn    func(*device.Job)
	submitFn  func()
}

func (d *redundancy) newSet() *cloneSet {
	if n := len(d.free); n > 0 {
		s := d.free[n-1]
		d.free = d.free[:n-1]
		s.reset()
		return s
	}
	s := &cloneSet{red: d}
	for i := range s.copies {
		c := &s.copies[i]
		c.set = s
		c.doneFn = func(j *device.Job) { c.complete(j) }
		c.submitFn = func() { c.submit() }
	}
	s.hedgeFn = func() { s.hedgeFire() }
	return s
}

func (s *cloneSet) reset() {
	s.dispatched = 0
	s.launched, s.done, s.failedC, s.live = 0, 0, 0, 0
	s.resolved, s.hedged = false, false
	s.lastOK = nil
	s.hedgeTimer = sim.Timer{}
	for i := range s.copies {
		c := &s.copies[i]
		c.node = nil
		c.cold = 0
		c.submitted, c.cancelled, c.finished = false, false, false
	}
}

// launch dispatches copy idx on the given pool node. Copy 0 is the primary
// (a normal Dispatched); later copies emit Cloned with kind "clone" or
// "hedge". Each copy claims its own container on its own pool.
func (s *cloneSet) launch(idx int, sn *servingNode, kind string) {
	r := s.red.r
	now := r.eng.Now()
	c := &s.copies[idx]
	c.node = sn
	c.cold = 0
	c.submitted, c.cancelled, c.finished = false, false, false

	job := &c.job
	job.Reset()
	job.Batch = len(s.reqs)
	job.Solo = profile.Solo(r.cfg.Model, sn.node.Spec, len(s.reqs))
	job.FBR = sn.entry.FBR
	job.Compute = profile.ComputeFraction(r.cfg.Model, sn.node.Spec, len(s.reqs))
	job.Mode = device.Spatial // copies follow the pure-PS cloning model
	job.Done = c.doneFn
	if r.tel != nil {
		r.jobSeq++
		job.ID = r.jobSeq
		evKind := telemetry.Dispatched
		detail := device.Spatial.String()
		if idx > 0 {
			evKind = telemetry.Cloned
			detail = kind
		}
		for _, q := range s.reqs {
			e := telemetry.Ev(now, evKind)
			e.Req = int64(q.ID)
			e.Job = job.ID
			e.Node = sn.node.ID
			e.Spec = sn.node.Spec.Name
			e.N = len(s.reqs)
			e.Detail = detail
			r.tel.Event(e)
		}
	}
	s.launched++
	s.live++
	// Reactive scale-up, one container per copy: Busy covers in-flight
	// batches, Waiting the claims earlier sets filed this window (Ensure
	// compares against Total, which already counts their boots).
	sn.pool.Ensure(sn.pool.Busy() + sn.pool.Waiting() + 1)
	sn.pool.AcquireOrWait(c.submitFn)
}

// submit runs when the copy's container claim lands. A copy cancelled while
// still waiting gives the container straight back.
func (c *cloneCopy) submit() {
	if c.cancelled {
		c.node.pool.Release()
		c.set.live--
		c.set.maybeRecycle()
		return
	}
	c.cold = c.set.red.r.eng.Now() - c.set.dispatched
	c.submitted = true
	c.node.node.Device.Submit(&c.job)
}

// complete is the copy's device Done: first success wins the race (clone
// mode), the last finisher closes a synchronized set, and a set whose every
// copy failed fails its requests.
func (c *cloneCopy) complete(j *device.Job) {
	s := c.set
	c.finished = true
	s.done++
	s.live--
	c.node.pool.Release()
	if j.Failed {
		s.failedC++
		if !s.resolved && s.done == s.launched {
			if s.failedC == s.launched {
				s.resolveFailed(c)
			} else if s.red.sync {
				// The barrier's last copy failed; the set completes now on
				// the last successful copy (positive synchronization slack).
				s.resolveWin(s.lastOK)
			}
		}
		s.maybeRecycle()
		return
	}
	if s.red.sync {
		s.lastOK = c
		if !s.resolved && s.done == s.launched {
			s.resolveWin(c)
		}
		s.maybeRecycle()
		return
	}
	if !s.resolved {
		s.resolveWin(c)
	}
	s.maybeRecycle()
}

// hedgeFire launches the backup copy when the hedge timer expires. A no-op
// once the set resolved (the primary finished first) or if no second pool
// is healthy.
func (s *cloneSet) hedgeFire() {
	if s.resolved || s.hedged {
		return
	}
	primary := s.copies[0].node
	var backup *servingNode
	for _, p := range s.red.healthy() {
		if p.sn != primary {
			backup = p.sn
			break
		}
	}
	if backup == nil {
		return
	}
	s.hedged = true
	s.launch(1, backup, "hedge")
}

// resolveWin completes the set on the scoring copy: every unfinished
// sibling is cancelled (its device capacity released, CloneCancelled
// emitted before the Completed events), outcomes are recorded from the
// winner's stamps, and in hedge mode the latencies feed the age tracker.
func (s *cloneSet) resolveWin(c *cloneCopy) {
	d := s.red
	r := d.r
	s.resolved = true
	s.hedgeTimer.Cancel()
	now := r.eng.Now()
	for i := 0; i < s.launched; i++ {
		o := &s.copies[i]
		if o == c || o.finished || o.cancelled {
			continue
		}
		o.cancelled = true
		if o.submitted {
			o.node.node.Device.Cancel(&o.job)
			o.node.pool.Release()
			s.live--
		}
		s.emitCancelled(o)
	}
	if r.tel != nil {
		for _, q := range s.reqs {
			e := telemetry.Ev(now, telemetry.Completed)
			e.Req = int64(q.ID)
			e.Job = c.job.ID
			e.Node = c.node.node.ID
			r.tel.Event(e)
		}
	}
	for _, q := range s.reqs {
		lat := now - q.Arrival
		r.col.Add(metrics.Record{
			Arrival:      q.Arrival,
			Latency:      lat,
			BatchWait:    s.dispatched - q.Arrival,
			ColdStart:    c.cold,
			QueueDelay:   c.job.QueueDelay(),
			Interference: c.job.Interference(),
			MinExec:      c.job.Solo,
		})
		if d.hedge {
			d.age.Add(lat)
		}
	}
}

// resolveFailed fails the whole set: every copy died (node failures or
// revocation kills on all pools at once).
func (s *cloneSet) resolveFailed(c *cloneCopy) {
	r := s.red.r
	s.resolved = true
	s.hedgeTimer.Cancel()
	now := r.eng.Now()
	if r.tel != nil {
		for _, q := range s.reqs {
			e := telemetry.Ev(now, telemetry.Failed)
			e.Req = int64(q.ID)
			e.Job = c.job.ID
			e.Node = c.node.node.ID
			r.tel.Event(e)
		}
	}
	for _, q := range s.reqs {
		r.failedRq++
		r.col.Add(metrics.Record{
			Arrival:   q.Arrival,
			Latency:   now - q.Arrival,
			BatchWait: s.dispatched - q.Arrival,
			ColdStart: c.cold,
			MinExec:   c.job.Solo,
			Failed:    true,
		})
	}
}

func (s *cloneSet) emitCancelled(o *cloneCopy) {
	r := s.red.r
	if r.tel == nil {
		return
	}
	now := r.eng.Now()
	for _, q := range s.reqs {
		e := telemetry.Ev(now, telemetry.CloneCancelled)
		e.Req = int64(q.ID)
		e.Job = o.job.ID
		r.tel.Event(e)
	}
}

// maybeRecycle returns the set to the free list once it has resolved and no
// copy closure can run again.
func (s *cloneSet) maybeRecycle() {
	if !s.resolved || s.live != 0 {
		return
	}
	s.red.free = append(s.red.free, s)
}

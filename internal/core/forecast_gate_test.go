package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/predict"
)

// gateForecaster is a test forecaster with a fixed forecast and a fixed
// self-reported confidence, for pinning the confidence gate in hardware
// selection.
type gateForecaster struct {
	rps  float64
	conf float64
}

func (g gateForecaster) Observe(time.Duration, int)            {}
func (g gateForecaster) PredictRPS(_, _ time.Duration) float64 { return g.rps }
func (g gateForecaster) Confidence() float64                   { return g.conf }

// TestConfidenceGateFallsBackToObserved pins the confidence gate of DESIGN.md
// §10: when the forecaster reports confidence below predict.ConfidenceFloor,
// hardware selection must ignore the forecast entirely and select against the
// observed rate. Two low-confidence forecasters with wildly different
// forecasts (600 rps vs 0 rps) must therefore produce byte-identical runs —
// while the same wild forecast *with* confidence becomes visible in the
// result, proving the gate is keyed on confidence and not always closed.
func TestConfidenceGateFallsBackToObserved(t *testing.T) {
	tr := shortAzure(17, 150, 2*time.Minute)
	m := model.MustByName("ResNet 50")
	run := func(rps, conf float64) Result {
		return Run(Config{
			Model: m, Trace: tr, Scheme: NewPaldia(),
			NewPredictor: func() predict.Predictor { return gateForecaster{rps: rps, conf: conf} },
		})
	}

	lowHuge := run(600, predict.ConfidenceFloor-0.01)
	lowZero := run(0, predict.ConfidenceFloor-0.01)
	if !reflect.DeepEqual(lowHuge, lowZero) {
		t.Fatalf("low-confidence forecasts leaked into selection:\nhuge: %+v\nzero: %+v",
			lowHuge, lowZero)
	}

	confHuge := run(600, 1)
	if reflect.DeepEqual(confHuge, lowHuge) {
		t.Fatal("confident 600 rps forecast had no effect; the gate appears permanently closed")
	}
	if lowHuge.Requests != tr.Count() || confHuge.Requests != tr.Count() {
		t.Fatal("requests lost")
	}
}

// TestConfidenceDefaultsForPlainForecasters: a forecaster that does not
// implement ConfidenceReporter is treated as fully confident (the paper's
// EWMA behaviour predates the gate and must keep pre-procuring).
func TestConfidenceDefaultsForPlainForecasters(t *testing.T) {
	if c := predict.Confidence(predict.Static{RPS: 5}); c != 1 {
		t.Fatalf("plain forecaster confidence = %v, want 1", c)
	}
	if c := predict.Confidence(gateForecaster{conf: 0.25}); c != 0.25 {
		t.Fatalf("reporter confidence = %v, want 0.25", c)
	}
}

// TestMultiForecasterThreaded: MultiConfig.Forecaster selects the per-tenant
// model. A seasonal forecaster on a short aperiodic trace never accepts a
// fit, so it must reproduce the EWMA run exactly; an unknown name must fail
// loudly at setup rather than silently serving with a default.
func TestMultiForecasterThreaded(t *testing.T) {
	mk := func(name string) MultiConfig {
		return MultiConfig{
			Workloads: []Workload{
				{Model: model.MustByName("ResNet 50"), Trace: shortAzure(11, 120, 90*time.Second)},
				{Model: model.MustByName("DPN 92"), Trace: shortAzure(12, 60, 90*time.Second)},
			},
			Scheme:     NewPaldia(),
			Forecaster: name,
		}
	}
	ewma := RunMulti(mk("ewma"))
	seasonal := RunMulti(mk("seasonal"))
	if !reflect.DeepEqual(ewma, seasonal) {
		t.Fatalf("seasonal diverged from ewma on an aperiodic 90s trace:\newma: %+v\nseasonal: %+v",
			ewma, seasonal)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("unknown multi forecaster name did not panic")
		}
	}()
	RunMulti(mk("no-such-model"))
}

package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/trace"
)

// FuzzConfigValidate throws arbitrary knob values at the Config validator:
// it must never panic, must accept every zero-heavy "defaults please"
// config, and everything it accepts must survive applyDefaults with every
// time constant positive and every factor finite — i.e. Validate is a true
// gate for the defaulting layer.
func FuzzConfigValidate(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0), int64(0), 0.0, 0.0, 0, true)
	f.Add(int64(200e6), int64(25e6), int64(60e9), int64(30e9), 1.5, 1.1, 3, true)
	f.Add(int64(-1), int64(0), int64(5e9), int64(0), math.Inf(1), -2.0, -4, false)
	f.Fuzz(func(t *testing.T, sloNs, windowNs, failEveryNs, failDurNs int64,
		hfCPU, hfGPU float64, maxNodes int, wired bool) {
		cfg := Config{
			SLO:             time.Duration(sloNs),
			DispatchWindow:  time.Duration(windowNs),
			FailureEvery:    time.Duration(failEveryNs),
			FailureDuration: time.Duration(failDurNs),
			HostFactorCPU:   hfCPU,
			HostFactorGPU:   hfGPU,
			MaxNodes:        maxNodes,
		}
		if wired {
			cfg.Model = model.MustByName("ResNet 50")
			cfg.Trace = trace.FromArrivals("fuzz", nil, time.Second)
			cfg.Scheme = NewPaldia()
		}
		err := cfg.Validate()
		if !wired {
			if err == nil {
				t.Fatal("config with no model/trace/scheme validated")
			}
			return
		}
		if err != nil {
			return
		}
		cfg.applyDefaults()
		for _, d := range []time.Duration{
			cfg.SLO, cfg.DispatchWindow, cfg.MonitorInterval, cfg.Horizon,
			cfg.HWLead, cfg.ObserveWindow, cfg.KeepAlive,
		} {
			if d <= 0 {
				t.Fatalf("validated config defaulted to a non-positive constant: %+v", cfg)
			}
		}
		if math.IsNaN(cfg.HostFactorCPU) || math.IsInf(cfg.HostFactorCPU, 0) ||
			math.IsNaN(cfg.HostFactorGPU) || math.IsInf(cfg.HostFactorGPU, 0) {
			t.Fatal("validated config kept a non-finite host factor")
		}
		if cfg.FailureEvery > 0 && cfg.FailureDuration <= 0 {
			t.Fatal("validated config injects failures with no outage duration")
		}
	})
}

package core

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// BenchmarkSimulatedRequestsPerSecond measures raw simulator throughput:
// simulated requests processed per wall-clock second for a full Paldia run.
func BenchmarkSimulatedRequestsPerSecond(b *testing.B) {
	m := model.MustByName("ResNet 50")
	tr := trace.Azure(sim.NewRNG(1), 450, 5*time.Minute)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		res := Run(Config{Model: m, Trace: tr, Scheme: NewPaldia()})
		total += res.Requests
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim-req/s")
}

// BenchmarkBestYProbe measures the y-probing hot path the monitor loop runs
// for every GPU candidate (the paper reports <3ms for its probe).
func BenchmarkBestYProbe(b *testing.B) {
	st := mkState("ResNet 50", "M60", 400, 400)
	p := NewPaldia().Policy
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.SplitY(st, 400)
	}
}

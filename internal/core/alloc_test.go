package core

// Allocation gates for the per-tick control-plane paths: hardware selection
// and the Eq. (1) split both run every monitor/dispatch interval for every
// experiment cell, so their steady state (after scratch buffers have grown)
// must not allocate. The same bounds gate benchmarks in CI via
// cmd/paldia-bench -gate.

import (
	"testing"

	"repro/internal/raceflag"
)

func skipIfRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc gates run in non-race builds")
	}
}

func TestDesiredHardwareAllocFree(t *testing.T) {
	skipIfRace(t)
	p := NewPaldia().Policy
	// Both selection regimes: a rate that lands on CPU candidates and one
	// that probes the full GPU pool.
	for _, rate := range []float64{10, 400} {
		st := mkState("ResNet 50", "M60", rate, rate)
		if allocs := testing.AllocsPerRun(100, func() { p.DesiredHardware(st) }); allocs != 0 {
			t.Fatalf("DesiredHardware at %.0f rps allocates %.1f objects/op, want 0", rate, allocs)
		}
	}
}

func TestSplitYAllocFree(t *testing.T) {
	skipIfRace(t)
	st := mkState("ResNet 50", "M60", 400, 400)
	p := NewPaldia().Policy
	if allocs := testing.AllocsPerRun(100, func() { p.SplitY(st, 400) }); allocs != 0 {
		t.Fatalf("SplitY allocates %.1f objects/op, want 0", allocs)
	}
}

func TestCheapestIsolatedAllocFree(t *testing.T) {
	skipIfRace(t)
	st := mkState("ResNet 50", "M60", 120, 120)
	if allocs := testing.AllocsPerRun(100, func() { cheapestIsolated(st) }); allocs != 0 {
		t.Fatalf("cheapestIsolated allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkDesiredHardware measures one full Algorithm 1 selection pass:
// capable-pool assembly plus a serial Eq. (1) probe of every GPU candidate.
func BenchmarkDesiredHardware(b *testing.B) {
	st := mkState("ResNet 50", "M60", 400, 400)
	p := NewPaldia().Policy
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.DesiredHardware(st)
	}
}

package core

import (
	"time"

	"repro/internal/autoscale"
	"repro/internal/batch"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/device"
	"repro/internal/hardware"
	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Multi-tenant serving: several workloads co-served on one shared node at a
// time, the deployment reality behind the paper's motivation experiment and
// mixed-workload study. Each workload keeps its own batcher, predictor,
// split decision and container pool; the Hardware Selection module must pick
// a node capable of the *aggregate*, which the runtime resolves as the most
// capable of the per-workload desires (a node that satisfies every tenant).

// Workload pairs a model with its arrival trace. Stream, when set, supplies
// arrivals lazily instead of Trace (as Config.Stream does for single-tenant
// runs); when both are set, Stream wins.
type Workload struct {
	Model  model.Spec
	Trace  *trace.Trace
	Stream trace.Stream
}

// MultiConfig describes a multi-tenant serving simulation.
type MultiConfig struct {
	Workloads []Workload
	Scheme    Scheme

	// SLO, DispatchWindow, MonitorInterval, Horizon, HWLead, ObserveWindow,
	// KeepAlive: as in Config (zero = defaults).
	SLO             time.Duration
	DispatchWindow  time.Duration
	MonitorInterval time.Duration
	Horizon         time.Duration
	HWLead          time.Duration
	ObserveWindow   time.Duration
	KeepAlive       time.Duration

	// Forecaster selects the per-tenant rate-forecasting model by name, as
	// Config.Forecaster does (empty means "ewma"); ignored for clairvoyant
	// schemes.
	Forecaster string

	// InitialHardware overrides the warm-start node choice.
	InitialHardware *hardware.Spec

	// Telemetry, when set, receives every typed runtime event; per-request
	// events carry the workload index in Event.Tenant. Nil disables the
	// layer (one branch per emission site).
	Telemetry telemetry.Sink

	// Invariants, when set, audits the run as Config.Invariants does. A
	// checker is single-run: pass a fresh one per RunMulti.
	Invariants *invariant.Checker
}

// MultiResult aggregates a multi-tenant run.
type MultiResult struct {
	Scheme string
	// PerWorkload carries one collector per workload, in input order.
	PerWorkload []*metrics.Collector
	// SLOCompliance is request-weighted across workloads.
	SLOCompliance float64
	Cost          float64
	Switches      int
	HeldBySpec    map[string]time.Duration
}

type tenant struct {
	idx   int // workload index, stamped into Event.Tenant
	w     Workload
	arr   trace.Stream // arrival source (w.Stream, or w.Trace adapted)
	bat   batch.Batcher
	col   *metrics.Collector
	entry profile.Entry // for the current node

	// predictAt is the confidence-gated forecast (see setupPredictor).
	predictAt func(now, horizon time.Duration) float64
	onArrive  func(now time.Duration)

	obsWindowStart time.Duration
	obsCount       int
	obsRate        float64

	arrived int // arrivals fed to the batcher so far
}

// tenantNode is the shared node plus per-tenant container pools.
type tenantNode struct {
	node  *cluster.Node
	pools []*container.Pool

	queuedOutstanding []int
	laneHeld          []bool
	laneReady         []bool
	lanePending       [][]func()
}

type multiRunner struct {
	cfg MultiConfig
	eng *sim.Engine
	clu *cluster.Cluster

	tenants []*tenant
	cur     *tenantNode

	procured bool
	waitCtr  int
	switches int
	lastSwap time.Duration
	end      time.Duration

	tel    telemetry.Sink
	jobSeq int64

	// stScratch backs stateFor's *State, rebuilt per call and never retained
	// by callers — same reuse discipline as runner.stScratch.
	stScratch State

	// jobPool and sizesScratch mirror runner.jobPool/sizesScratch: recycled
	// per-dispatch job contexts and the per-window batch-size partition, so
	// the multi-tenant dispatch/complete cycle allocates nothing in steady
	// state. The tick closures are bound once (method values allocate per
	// reschedule).
	jobPool        []*tenantJobState
	sizesScratch   []int
	dispatchTickFn func()
	monitorTickFn  func()
}

// RunMulti executes a multi-tenant simulation.
func RunMulti(cfg MultiConfig) MultiResult {
	base := Config{
		SLO:             cfg.SLO,
		DispatchWindow:  cfg.DispatchWindow,
		MonitorInterval: cfg.MonitorInterval,
		Horizon:         cfg.Horizon,
		HWLead:          cfg.HWLead,
		ObserveWindow:   cfg.ObserveWindow,
		KeepAlive:       cfg.KeepAlive,
	}
	base.applyDefaults()
	cfg.SLO = base.SLO
	cfg.DispatchWindow = base.DispatchWindow
	cfg.MonitorInterval = base.MonitorInterval
	cfg.Horizon = base.Horizon
	cfg.HWLead = base.HWLead
	cfg.ObserveWindow = base.ObserveWindow
	cfg.KeepAlive = base.KeepAlive

	r := &multiRunner{cfg: cfg, eng: sim.NewEngine()}
	r.tel = telemetry.Combine(cfg.Telemetry, cfg.Invariants.AsSink())
	r.clu = cluster.New(r.eng)
	r.clu.Sink = r.tel
	if cfg.Invariants != nil {
		r.eng.SetOnFire(cfg.Invariants.Tick)
		r.clu.Check = cfg.Invariants
	}
	for i, w := range cfg.Workloads {
		t := &tenant{idx: i, w: w, col: metrics.NewCollector(cfg.SLO)}
		t.arr = w.Stream
		if t.arr == nil {
			t.arr = w.Trace.Stream()
		}
		r.setupPredictor(t)
		if d := t.arr.Duration(); d > r.end {
			r.end = d
		}
		r.tenants = append(r.tenants, t)
	}
	r.warmStart()
	for _, t := range r.tenants {
		r.scheduleArrivals(t)
	}
	r.dispatchTickFn = r.dispatchTick
	r.monitorTickFn = r.monitorTick
	r.eng.Schedule(cfg.DispatchWindow, r.dispatchTickFn)
	r.eng.Schedule(cfg.MonitorInterval, r.monitorTickFn)
	r.eng.Run(r.end + DefaultDrain)
	// Run to completion so conservation holds even under deep overload;
	// give up only when a whole chunk passes without progress, then flush
	// anything truly unservable as failed.
	for guard := 0; guard < 720 && !r.complete(); guard++ {
		before := 0
		for _, t := range r.tenants {
			before += t.col.Count()
		}
		r.eng.Run(r.eng.Now() + 60*time.Second)
		after := 0
		for _, t := range r.tenants {
			after += t.col.Count()
		}
		if after == before {
			break
		}
	}
	for _, t := range r.tenants {
		for _, req := range t.bat.TakeAll() {
			if r.tel != nil {
				e := telemetry.Ev(r.eng.Now(), telemetry.Failed)
				e.Req = int64(req.ID)
				e.Tenant = t.idx
				r.tel.Event(e)
			}
			t.col.Add(metrics.Record{
				Arrival: req.Arrival,
				Latency: r.eng.Now() - req.Arrival,
				Failed:  true,
			})
		}
	}
	res := r.results()
	if cfg.Invariants != nil {
		requests, failed := 0, 0
		for _, t := range r.tenants {
			requests += t.col.Count()
			t.col.Each(func(rec metrics.Record) {
				if rec.Failed {
					failed++
				}
			})
		}
		// Multi-tenant runs never inject node failures.
		cfg.Invariants.CheckResult(r.eng.Now(), requests, failed, 0)
	}
	return res
}

// complete reports whether every tenant's arrivals have been fully recorded.
func (r *multiRunner) complete() bool {
	for _, t := range r.tenants {
		if t.col.Count() < t.arrived {
			return false
		}
	}
	return true
}

func (r *multiRunner) setupPredictor(t *tenant) {
	if r.cfg.Scheme.Clairvoyant {
		tr := t.w.Trace
		if tr == nil {
			var ok bool
			if tr, ok = trace.Materialized(t.arr); !ok {
				panic("core: clairvoyant scheme needs a materialized trace " +
					"(set Workload.Trace, or a Stream implementing trace.Materializer)")
			}
		}
		c := predict.NewClairvoyant(tr)
		t.predictAt = c.PredictRPS
		t.onArrive = func(time.Duration) {}
		return
	}
	f, err := predict.NewByName(r.cfg.Forecaster, r.cfg.ObserveWindow)
	if err != nil {
		panic("core: " + err.Error())
	}
	obs := predict.NewWindowObserver(f, r.cfg.ObserveWindow)
	// Confidence-gated at the source, exactly as the single-tenant runner's
	// setupPredictor: a tenant whose forecaster is below the confidence floor
	// contributes its reactive observed rate everywhere its forecast would be
	// used — aggregate hardware selection, split sizing, container targets
	// (see DESIGN.md §10).
	t.predictAt = func(now, horizon time.Duration) float64 {
		pred := obs.PredictRPS(now, horizon)
		if obs.Confidence() < predict.ConfidenceFloor {
			return t.observedRPS(now, r.cfg.ObserveWindow)
		}
		return pred
	}
	t.onArrive = obs.Arrive
}

func (r *multiRunner) warmStart() {
	var spec hardware.Spec
	if r.cfg.InitialHardware != nil {
		spec = *r.cfg.InitialHardware
	} else {
		// Before any traffic is observed the predictors are empty; seed the
		// per-tenant desires with the traces' opening rates, converted to
		// work-equivalent aggregate rates as desiredAggregate does.
		ref := hardware.MostPerformant(hardware.GPU)
		totalWork := 0.0
		for _, t := range r.tenants {
			totalWork += t.arr.InitRPS(2*time.Second) *
				profile.SoloSample(t.w.Model, ref).Seconds()
		}
		for _, t := range r.tenants {
			perSample := profile.SoloSample(t.w.Model, ref).Seconds()
			st := r.stateFor(t, r.cfg.HWLead)
			if perSample > 0 {
				st.PredictedRPS = totalWork / perSample
				st.ObservedRPS = st.PredictedRPS
			}
			d := r.cfg.Scheme.Policy.DesiredHardware(st)
			if d.ComputeScore > spec.ComputeScore ||
				(d.ComputeScore == spec.ComputeScore && d.CostPerHour > spec.CostPerHour) {
				spec = d
			}
		}
	}
	r.cur = r.wireNode(r.clu.Acquire(spec, r.maxResident(spec)))
	for _, p := range r.cur.pools {
		p.AddWarm(1)
	}
}

// maxResident: the shared device's memory cap must fit whichever tenant
// packs tightest; use the smallest per-model cap (conservative).
func (r *multiRunner) maxResident(spec hardware.Spec) int {
	min := 0
	for _, t := range r.tenants {
		c := profile.MaxResidentJobs(t.w.Model, spec)
		if min == 0 || c < min {
			min = c
		}
	}
	return min
}

func (r *multiRunner) wireNode(node *cluster.Node) *tenantNode {
	cold := container.CPUColdStart
	if node.Spec.IsGPU() {
		cold = container.GPUColdStart
	}
	if r.cfg.Scheme.InstantProcure {
		cold = 0
	}
	n := len(r.tenants)
	tn := &tenantNode{
		node:              node,
		pools:             make([]*container.Pool, n),
		queuedOutstanding: make([]int, n),
		laneHeld:          make([]bool, n),
		laneReady:         make([]bool, n),
		lanePending:       make([][]func(), n),
	}
	for i := range r.tenants {
		tn.pools[i] = container.NewPool(r.eng, cold, r.cfg.KeepAlive)
		if r.tel != nil {
			tn.pools[i].Sink = r.tel
			tn.pools[i].NodeID = node.ID
			tn.pools[i].Spec = node.Spec.Name
			tn.pools[i].Tenant = i
		}
		if r.cfg.Invariants != nil {
			tn.pools[i].NodeID = node.ID
			tn.pools[i].Tenant = i
			tn.pools[i].Check = r.cfg.Invariants
		}
	}
	return tn
}

func (r *multiRunner) scheduleArrivals(t *tenant) {
	pending, ok := t.arr.Next()
	if !ok {
		return
	}
	var fire func()
	fire = func() {
		now := r.eng.Now()
		for pending <= now {
			req := t.bat.Add(pending)
			t.arrived++
			if r.tel != nil {
				e := telemetry.Ev(req.Arrival, telemetry.Arrived)
				e.Req = int64(req.ID)
				e.Tenant = t.idx
				r.tel.Event(e)
				e.Kind = telemetry.Batched
				r.tel.Event(e)
			}
			t.onArrive(now)
			t.observeArrival(now, r.cfg.ObserveWindow)
			if pending, ok = t.arr.Next(); !ok {
				return
			}
		}
		r.eng.ScheduleAt(pending, fire)
	}
	r.eng.ScheduleAt(pending, fire)
}

func (t *tenant) observeArrival(now, window time.Duration) {
	for now >= t.obsWindowStart+window {
		t.obsRate = float64(t.obsCount) / window.Seconds()
		t.obsCount = 0
		t.obsWindowStart += window
	}
	t.obsCount++
}

func (t *tenant) observedRPS(now, window time.Duration) float64 {
	for now >= t.obsWindowStart+window {
		t.obsRate = float64(t.obsCount) / window.Seconds()
		t.obsCount = 0
		t.obsWindowStart += window
	}
	return t.obsRate
}

// stateFor builds the policy State for one tenant at the given horizon.
func (r *multiRunner) stateFor(t *tenant, horizon time.Duration) *State {
	now := r.eng.Now()
	s := &r.stScratch
	*s = State{
		Now:          now,
		Model:        t.w.Model,
		SLO:          r.cfg.SLO,
		PredictedRPS: t.predictAt(now, horizon),
		ObservedRPS:  t.observedRPS(now, r.cfg.ObserveWindow),
		Pending:      t.bat.Pending(),
		Window:       r.cfg.DispatchWindow,
		poolScratch:  s.poolScratch,
		candScratch:  s.candScratch,
	}
	if r.cur != nil {
		s.Current = r.cur.node.Spec
		s.HasCurrent = true
		s.Entry = profile.Lookup(t.w.Model, r.cur.node.Spec)
		if dev := r.cur.node.Device; dev != nil && !dev.Failed() {
			s.ActiveDemand = dev.ActiveDemand()
			s.ActiveCompute = dev.ActiveCompute()
			s.ActiveJobs = dev.ActiveCount()
			s.Backlog = dev.BacklogSolo()
			s.LaneBacklog = dev.LaneBacklogSolo()
		}
	}
	return s
}

// desiredAggregate resolves per-tenant hardware desires into one node. A
// tenant's policy only understands its own workload, so each tenant's rate
// is first converted into a work-equivalent rate covering ALL tenants (total
// work per second divided by this tenant's per-sample work, measured on a
// reference device); the policy then sizes hardware for the aggregate in its
// own units. The final choice is the most capable of the per-tenant answers.
func (r *multiRunner) desiredAggregate() hardware.Spec {
	ref := hardware.MostPerformant(hardware.GPU)
	now := r.eng.Now()

	perSample := make([]float64, len(r.tenants))
	var totalPredWork, totalObsWork float64
	pred := make([]float64, len(r.tenants))
	obs := make([]float64, len(r.tenants))
	for i, t := range r.tenants {
		perSample[i] = profile.SoloSample(t.w.Model, ref).Seconds()
		// predictAt is confidence-gated at the source (setupPredictor): a
		// tenant below the confidence floor contributes its observed rate to
		// the aggregate instead — see DESIGN.md §10.
		pred[i] = t.predictAt(now, r.cfg.HWLead)
		obs[i] = t.observedRPS(now, r.cfg.ObserveWindow)
		totalPredWork += pred[i] * perSample[i]
		totalObsWork += obs[i] * perSample[i]
	}

	var best hardware.Spec
	for i, t := range r.tenants {
		st := r.stateFor(t, r.cfg.HWLead)
		if perSample[i] > 0 {
			st.PredictedRPS = totalPredWork / perSample[i]
			st.ObservedRPS = totalObsWork / perSample[i]
		}
		d := r.cfg.Scheme.Policy.DesiredHardware(st)
		if d.ComputeScore > best.ComputeScore ||
			(d.ComputeScore == best.ComputeScore && d.CostPerHour > best.CostPerHour) {
			best = d
		}
	}
	return best
}

func (r *multiRunner) dispatchTick() {
	now := r.eng.Now()
	pending := 0
	for _, t := range r.tenants {
		pending += t.bat.Pending()
	}
	if now < r.end || pending > 0 {
		r.eng.Schedule(r.cfg.DispatchWindow, r.dispatchTickFn)
	}
	if r.cur == nil || r.cur.node.Device == nil || r.cur.node.Device.Failed() {
		return
	}
	for i, t := range r.tenants {
		r.dispatchTenant(i, t)
	}
}

func (r *multiRunner) dispatchTenant(i int, t *tenant) {
	n := t.bat.Pending()
	if n == 0 {
		return
	}
	node := r.cur
	spec := node.node.Spec
	entry := profile.Lookup(t.w.Model, spec)
	st := r.stateFor(t, r.cfg.Horizon)
	y := r.cfg.Scheme.Policy.SplitY(st, n)
	if y < 0 {
		y = 0
	}
	if y > n {
		y = n
	}
	spatialN := n - y
	if !spec.IsGPU() {
		spatialN = 0
		y = n
	}
	if spec.IsGPU() {
		free := entry.MaxResidentJobs - node.node.Device.ActiveCount() - laneCap
		if free < 0 {
			free = 0
		}
		if max := free * entry.PreferredBatch; spatialN > max {
			spatialN = max
		}
	}
	slots := laneCap - node.queuedOutstanding[i]
	if slots < 0 {
		slots = 0
	}
	if max := slots * entry.PreferredBatch; y > max {
		y = max
	}
	if spatialN+y == 0 {
		return
	}
	// Pool sizing reads only container counts and taking requests schedules
	// no events, so sizing before the takes matches the historical
	// take-then-ensure order observationally; each batch then pulls its
	// requests straight out of the batcher in the same arrival-order
	// partition batch.Split produced.
	node.pools[i].Ensure(node.pools[i].Busy() +
		autoscale.ReactiveContainers(spatialN, entry.PreferredBatch))
	r.sizesScratch = batch.SplitSizes(r.sizesScratch, spatialN, entry.PreferredBatch)
	for _, size := range r.sizesScratch {
		r.dispatchJob(i, t, entry, size, device.Spatial)
	}
	r.sizesScratch = batch.SplitSizes(r.sizesScratch, y, entry.PreferredBatch)
	for _, size := range r.sizesScratch {
		r.dispatchJob(i, t, entry, size, device.Queued)
	}
}

// tenantJobState is the multi-tenant counterpart of jobState: one batch
// job's pooled context — requests, device job, bound lifecycle closures —
// recycled through multiRunner.jobPool on completion.
type tenantJobState struct {
	r          *multiRunner
	i          int
	t          *tenant
	node       *tenantNode
	reqs       []batch.Request
	job        device.Job
	dispatched time.Duration
	cold       time.Duration
	mode       device.Mode
	doneFn     func(*device.Job)
	submitFn   func()
}

func (r *multiRunner) newJobState() *tenantJobState {
	if n := len(r.jobPool); n > 0 {
		js := r.jobPool[n-1]
		r.jobPool = r.jobPool[:n-1]
		return js
	}
	js := &tenantJobState{r: r}
	js.doneFn = func(j *device.Job) { js.complete(j) }
	js.submitFn = func() {
		js.cold = js.r.eng.Now() - js.dispatched
		js.node.node.Device.Submit(&js.job)
	}
	return js
}

func (r *multiRunner) dispatchJob(i int, t *tenant, entry profile.Entry,
	n int, mode device.Mode) {
	node := r.cur
	now := r.eng.Now()
	spec := node.node.Spec
	js := r.newJobState()
	js.i = i
	js.t = t
	js.node = node
	js.mode = mode
	js.dispatched = now
	js.cold = 0
	js.reqs = t.bat.TakeInto(js.reqs[:0], n)
	reqs := js.reqs

	job := &js.job
	job.Reset()
	job.Batch = len(reqs)
	job.Solo = profile.Solo(t.w.Model, spec, len(reqs))
	job.FBR = entry.FBR
	job.Compute = profile.ComputeFraction(t.w.Model, spec, len(reqs))
	job.Mode = mode
	job.Done = js.doneFn
	if r.tel != nil {
		r.jobSeq++
		job.ID = r.jobSeq
		for _, q := range reqs {
			e := telemetry.Ev(now, telemetry.Dispatched)
			e.Req = int64(q.ID)
			e.Tenant = t.idx
			e.Job = job.ID
			e.Node = node.node.ID
			e.Spec = spec.Name
			e.N = len(reqs)
			e.Detail = mode.String()
			r.tel.Event(e)
		}
	}
	if mode == device.Spatial {
		node.pools[i].AcquireOrWait(js.submitFn)
		return
	}
	node.queuedOutstanding[i]++
	if node.laneReady[i] {
		js.submitFn()
		return
	}
	node.lanePending[i] = append(node.lanePending[i], js.submitFn)
	if node.laneHeld[i] {
		return
	}
	node.laneHeld[i] = true
	node.pools[i].AcquireOrWait(func() {
		node.laneReady[i] = true
		pending := node.lanePending[i]
		node.lanePending[i] = nil
		for _, f := range pending {
			f()
		}
	})
}

// complete records the finished job's request outcomes against the tenant's
// collector and recycles the state (see jobState.complete for the reuse
// argument; the lane/pool teardown uses the node captured at dispatch, which
// may differ from r.cur after a hardware switch).
func (js *tenantJobState) complete(j *device.Job) {
	r := js.r
	i, t, node := js.i, js.t, js.node
	finish := r.eng.Now()
	if r.tel != nil {
		kind := telemetry.Completed
		if j.Failed {
			kind = telemetry.Failed
		}
		for _, req := range js.reqs {
			e := telemetry.Ev(finish, kind)
			e.Req = int64(req.ID)
			e.Tenant = t.idx
			e.Job = j.ID
			e.Node = node.node.ID
			r.tel.Event(e)
		}
	}
	for _, req := range js.reqs {
		t.col.Add(metrics.Record{
			Arrival:      req.Arrival,
			Latency:      finish - req.Arrival,
			BatchWait:    js.dispatched - req.Arrival,
			ColdStart:    js.cold,
			QueueDelay:   j.QueueDelay(),
			Interference: j.Interference(),
			MinExec:      j.Solo,
			Failed:       j.Failed,
		})
	}
	mode := js.mode
	r.jobPool = append(r.jobPool, js)
	if mode == device.Spatial {
		node.pools[i].Release()
		return
	}
	node.queuedOutstanding[i]--
	if node.queuedOutstanding[i] == 0 && node.laneReady[i] {
		node.pools[i].Release()
		node.laneHeld[i] = false
		node.laneReady[i] = false
	}
}

func (r *multiRunner) monitorTick() {
	now := r.eng.Now()
	if now < r.end {
		r.eng.Schedule(r.cfg.MonitorInterval, r.monitorTickFn)
	}
	desired := r.desiredAggregate()
	if r.cur != nil && desired.Name == r.cur.node.Spec.Name {
		r.waitCtr = 0
		return
	}
	limit := r.cfg.Scheme.Policy.WaitLimit()
	if r.cur != nil && desired.CostPerHour < r.cur.node.Spec.CostPerHour {
		if now-r.lastSwap < minHold {
			return
		}
		limit *= downgradeFactor
	}
	r.waitCtr++
	if r.waitCtr < limit {
		return
	}
	r.reconfigure(desired)
}

func (r *multiRunner) reconfigure(desired hardware.Spec) {
	if r.procured {
		return
	}
	r.procured = true
	r.waitCtr = 0
	maxRes := r.maxResident(desired)
	if r.cfg.Scheme.InstantProcure {
		tn := r.wireNode(r.clu.Acquire(desired, maxRes))
		for _, p := range tn.pools {
			p.AddWarm(1)
		}
		r.swapTo(tn)
		r.procured = false
		return
	}
	r.clu.AcquireAsync(desired, maxRes, func(node *cluster.Node) {
		tn := r.wireNode(node)
		for i, t := range r.tenants {
			entry := profile.Lookup(t.w.Model, desired)
			need := autoscale.PredictiveContainers(
				t.predictAt(r.eng.Now(), r.cfg.Horizon), 2*entry.SoloBatch, entry.PreferredBatch)
			if backlog := autoscale.ReactiveContainers(t.bat.Pending(), entry.PreferredBatch); backlog > need {
				need = backlog
			}
			if need < 2 {
				need = 2
			}
			if cap := entry.MaxResidentJobs + laneCap; need > cap {
				need = cap
			}
			tn.pools[i].EnsureWithin(need, swapTail)
		}
		r.eng.Schedule(swapTail, func() {
			r.swapTo(tn)
			r.procured = false
		})
	})
}

func (r *multiRunner) swapTo(tn *tenantNode) {
	old := r.cur
	r.cur = tn
	r.switches++
	r.lastSwap = r.eng.Now()
	if r.tel != nil {
		e := telemetry.Ev(r.eng.Now(), telemetry.HWSwitch)
		e.Node = tn.node.ID
		e.Spec = tn.node.Spec.Name
		r.tel.Event(e)
	}
	if old != nil {
		r.retire(old)
	}
}

func (r *multiRunner) retire(old *tenantNode) {
	attempts := 0
	var poll func()
	poll = func() {
		dev := old.node.Device
		outstanding := 0
		for _, q := range old.queuedOutstanding {
			outstanding += q
		}
		drained := dev == nil || dev.Failed() ||
			(dev.ActiveCount() == 0 && dev.LaneLength() == 0 && outstanding == 0)
		attempts++
		if drained || attempts > 240 {
			r.clu.Release(old.node)
			return
		}
		r.eng.Schedule(500*time.Millisecond, poll)
	}
	poll()
}

func (r *multiRunner) results() MultiResult {
	res := MultiResult{
		Scheme:     r.cfg.Scheme.Name(),
		Cost:       r.clu.TotalCost(),
		Switches:   r.switches,
		HeldBySpec: r.clu.HeldBySpec(),
	}
	total, ok := 0, 0.0
	for _, t := range r.tenants {
		res.PerWorkload = append(res.PerWorkload, t.col)
		total += t.col.Count()
		ok += t.col.SLOCompliance() * float64(t.col.Count())
	}
	if total > 0 {
		res.SLOCompliance = ok / float64(total)
	} else {
		res.SLOCompliance = 1
	}
	return res
}

package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// telemetryRun executes one seeded run with a fresh recorder attached. The
// trace is realized from the seed inside, so two calls are fully
// independent end to end.
func telemetryRun(t *testing.T, seed uint64) (*telemetry.Recorder, Result) {
	t.Helper()
	rec := telemetry.NewRecorder()
	res := Run(Config{
		Model:       model.MustByName("ResNet 50"),
		Trace:       trace.Azure(sim.NewRNG(seed), 300, 90*time.Second),
		Scheme:      NewPaldia(),
		Seed:        seed,
		Telemetry:   rec,
		SampleEvery: time.Second,
	})
	return rec, res
}

// Two identically seeded runs must produce byte-identical exports — the
// determinism contract every telemetry artifact advertises.
func TestTelemetryExportsAreDeterministic(t *testing.T) {
	type export struct {
		spans, events, series, chrome bytes.Buffer
	}
	dump := func() *export {
		rec, _ := telemetryRun(t, 42)
		var e export
		if err := rec.WriteSpansJSONL(&e.spans); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteEventsJSONL(&e.events); err != nil {
			t.Fatal(err)
		}
		if err := rec.Series().WriteCSV(&e.series); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteChromeTrace(&e.chrome); err != nil {
			t.Fatal(err)
		}
		return &e
	}
	a, b := dump(), dump()
	if !bytes.Equal(a.spans.Bytes(), b.spans.Bytes()) {
		t.Error("spans JSONL differs between identically seeded runs")
	}
	if !bytes.Equal(a.events.Bytes(), b.events.Bytes()) {
		t.Error("events JSONL differs between identically seeded runs")
	}
	if !bytes.Equal(a.series.Bytes(), b.series.Bytes()) {
		t.Error("series CSV differs between identically seeded runs")
	}
	if !bytes.Equal(a.chrome.Bytes(), b.chrome.Bytes()) {
		t.Error("Chrome trace differs between identically seeded runs")
	}
	if a.spans.Len() == 0 || a.series.Len() == 0 {
		t.Fatalf("exports empty: spans=%d series=%d bytes", a.spans.Len(), a.series.Len())
	}
}

// Spans must agree with the metrics.Collector's ground truth request by
// request: same population, same latency decomposition, components
// telescoping exactly to the end-to-end latency.
func TestTelemetrySpansMatchCollector(t *testing.T) {
	rec, res := telemetryRun(t, 7)
	spans := rec.Spans()
	if len(spans) != res.Requests {
		t.Fatalf("%d spans vs %d collector records", len(spans), res.Requests)
	}

	type key struct {
		arrival, latency, batchWait, cold, queue time.Duration
		failed                                   bool
	}
	seen := make(map[key]int, len(spans))
	for _, rc := range res.Collector.Records() {
		seen[key{rc.Arrival, rc.Latency, rc.BatchWait, rc.ColdStart, rc.QueueDelay, rc.Failed}]++
	}
	for _, s := range spans {
		if !s.Done() {
			t.Fatalf("span req=%d still open after the run", s.Req)
		}
		if sum := s.BatchWait() + s.ColdStart() + s.QueueDelay() + s.Exec(); sum != s.Latency() {
			t.Fatalf("req=%d components %v do not telescope to latency %v", s.Req, sum, s.Latency())
		}
		k := key{s.Arrived, s.Latency(), s.BatchWait(), s.ColdStart(), s.QueueDelay(), s.Failed}
		if seen[k] == 0 {
			t.Fatalf("span req=%d (%+v) has no matching collector record", s.Req, k)
		}
		seen[k]--
	}
}

// Attaching telemetry must not change the simulation trajectory at all:
// gauges read state through side-effect-free accessors, so every headline
// result is identical with the layer on or off.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	run := func(tel telemetry.Sink, every time.Duration) Result {
		return Run(Config{
			Model:       model.MustByName("ResNet 50"),
			Trace:       trace.Azure(sim.NewRNG(11), 300, 90*time.Second),
			Scheme:      NewPaldia(),
			Seed:        11,
			Telemetry:   tel,
			SampleEvery: every,
		})
	}
	plain := run(nil, 0)
	instr := run(telemetry.NewRecorder(), 250*time.Millisecond)

	if plain.Requests != instr.Requests || plain.FailedRequests != instr.FailedRequests {
		t.Fatalf("request counts differ: %d/%d vs %d/%d",
			plain.Requests, plain.FailedRequests, instr.Requests, instr.FailedRequests)
	}
	if plain.SLOCompliance != instr.SLOCompliance || plain.P50 != instr.P50 || plain.P99 != instr.P99 {
		t.Fatalf("latency stats differ: %v/%v/%v vs %v/%v/%v",
			plain.SLOCompliance, plain.P50, plain.P99, instr.SLOCompliance, instr.P50, instr.P99)
	}
	if plain.Cost != instr.Cost || plain.Boots != instr.Boots || plain.Switches != instr.Switches {
		t.Fatalf("cost/boots/switches differ: %v/%d/%d vs %v/%d/%d",
			plain.Cost, plain.Boots, plain.Switches, instr.Cost, instr.Boots, instr.Switches)
	}
}

// Node failures flow through spans: lost requests carry Failed and the
// span population still matches the collector exactly.
func TestTelemetrySpansUnderFailures(t *testing.T) {
	rec := telemetry.NewRecorder()
	res := Run(Config{
		Model:           model.MustByName("ResNet 50"),
		Trace:           trace.Azure(sim.NewRNG(3), 200, 60*time.Second),
		Scheme:          NewPaldia(),
		Seed:            3,
		Telemetry:       rec,
		FailureEvery:    25 * time.Second,
		FailureDuration: 10 * time.Second,
	})
	if res.FailuresInjected == 0 {
		t.Fatal("failure study injected nothing")
	}
	failed := 0
	for _, s := range rec.Spans() {
		if s.Failed {
			failed++
		}
	}
	if failed != res.FailedRequests {
		t.Fatalf("%d failed spans vs %d failed requests", failed, res.FailedRequests)
	}
	if len(rec.Spans()) != res.Requests {
		t.Fatalf("%d spans vs %d records", len(rec.Spans()), res.Requests)
	}
}

// Multi-tenant runs label spans with the workload index and keep the same
// span population per tenant as the per-tenant collectors.
func TestMultiTelemetrySpansPerTenant(t *testing.T) {
	rec := telemetry.NewRecorder()
	mres := RunMulti(MultiConfig{
		Workloads: []Workload{
			{Model: model.MustByName("ResNet 50"), Trace: trace.Azure(sim.NewRNG(5), 150, 45*time.Second)},
			{Model: model.MustByName("MobileNet"), Trace: trace.Azure(sim.NewRNG(6), 150, 45*time.Second)},
		},
		Scheme:    NewPaldia(),
		Telemetry: rec,
	})
	perTenant := map[int]int{}
	for _, s := range rec.Spans() {
		if !s.Done() {
			t.Fatalf("open span req=%d tenant=%d", s.Req, s.Tenant)
		}
		perTenant[s.Tenant]++
	}
	for i, col := range mres.PerWorkload {
		if perTenant[i] != col.Count() {
			t.Fatalf("tenant %d: %d spans vs %d records", i, perTenant[i], col.Count())
		}
	}
}

// The legacy OnEvent callback keeps working, served through the adapter.
func TestOnEventStillServed(t *testing.T) {
	kinds := map[string]int{}
	Run(Config{
		Model:  model.MustByName("ResNet 50"),
		Trace:  trace.Azure(sim.NewRNG(9), 300, 60*time.Second),
		Scheme: NewPaldia(),
		Seed:   9,
		OnEvent: func(ts time.Duration, kind, detail string) {
			kinds[kind]++
		},
	})
	if len(kinds) == 0 {
		t.Fatal("OnEvent never fired")
	}
	for kind := range kinds {
		switch kind {
		case "arrived", "batched", "dispatched", "completed", "sample":
			t.Fatalf("legacy OnEvent received fine-grained kind %q", kind)
		}
	}
}

package core

import (
	"testing"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/profile"
)

func mkState(modelName string, hwName string, predicted, observed float64) *State {
	m := model.MustByName(modelName)
	hw, ok := hardware.ByName(hwName)
	if !ok {
		panic("unknown hw " + hwName)
	}
	return &State{
		Model:        m,
		SLO:          DefaultSLO,
		Current:      hw,
		HasCurrent:   true,
		Entry:        profile.Lookup(m, hw),
		PredictedRPS: predicted,
		ObservedRPS:  observed,
	}
}

func TestPaldiaHardwareEscalatesWithPredictedRate(t *testing.T) {
	low := paldiaHardware(mkState("ResNet 50", "m4.xlarge", 10, 10))
	if low.IsGPU() {
		t.Errorf("at 10 rps Paldia picked %v, want a CPU node", low)
	}
	high := paldiaHardware(mkState("ResNet 50", "m4.xlarge", 430, 430))
	if !high.IsGPU() {
		t.Errorf("at 430 rps Paldia picked %v, want a GPU node", high)
	}
	if hv := paldiaHardware(mkState("VGG 19", "m4.xlarge", 220, 220)); hv.Accel != "V100" {
		t.Errorf("VGG 19 at 220 rps picked %v, want V100 (only GPU that sustains it)", hv)
	}
}

func TestPaldiaHardwareCostPreference(t *testing.T) {
	// At a rate several GPUs can serve, Paldia must not pick the V100 when a
	// cheaper GPU's T_max is within the 50ms slack.
	got := paldiaHardware(mkState("ResNet 50", "m4.xlarge", 150, 150))
	if got.Accel == "V100" {
		t.Errorf("picked the V100 at 150 rps; a cheaper node must win within the slack window")
	}
}

func TestCheapestIsolatedIgnoresInterference(t *testing.T) {
	// The $-baselines judge hardware by isolated batch latency + raw
	// throughput; for DenseNet 121 at its 225 rps peak they settle on a
	// cheaper node than the one Paldia needs only when interference is
	// ignored. At minimum, the choice must never be more expensive than
	// Paldia's.
	sBase := mkState("DenseNet 121", "m4.xlarge", 225, 225)
	base := cheapestIsolated(sBase)
	pal := paldiaHardware(sBase)
	if base.CostPerHour > pal.CostPerHour {
		t.Errorf("cheapestIsolated picked %v, dearer than Paldia's %v", base, pal)
	}
}

func TestCheapestIsolatedReactsToObservedOnly(t *testing.T) {
	s := mkState("DenseNet 121", "m4.xlarge", 500, 5)
	got := cheapestIsolated(s)
	if got.IsGPU() {
		t.Errorf("baseline used the predicted rate; observed is 5 rps, want a CPU node, got %v", got)
	}
}

func TestPerfVariantsAlwaysV100(t *testing.T) {
	s := mkState("MobileNet", "m4.xlarge", 1, 1)
	for _, scheme := range []Scheme{NewINFlessLlamaPerf(), NewMoleculePerf()} {
		if got := scheme.Policy.DesiredHardware(s); got.Accel != "V100" {
			t.Errorf("%s picked %v, want V100", scheme.Name(), got)
		}
	}
}

func TestSplitPolicies(t *testing.T) {
	s := mkState("ResNet 50", "M60", 400, 400)
	s.ActiveDemand = 2.5 // heavily loaded device
	n := 300
	if y := NewINFlessLlamaCost().Policy.SplitY(s, n); y != 0 {
		t.Errorf("INFless/Llama split y=%d, want 0 (all spatial)", y)
	}
	if y := NewMoleculeCost().Policy.SplitY(s, n); y != n {
		t.Errorf("Molecule split y=%d, want %d (all queued)", y, n)
	}
	y := NewPaldia().Policy.SplitY(s, n)
	if y < 0 || y > n {
		t.Fatalf("Paldia y=%d out of range", y)
	}
	if y == 0 {
		t.Errorf("Paldia queued nothing on a device with demand 2.5; hybrid expected")
	}
}

func TestPaldiaSplitIdleLowFBR(t *testing.T) {
	// On an idle V100 with a low-FBR model and one batch of requests,
	// everything should run spatially.
	s := mkState("EfficientNet B0", "V100", 100, 100)
	if y := NewPaldia().Policy.SplitY(s, 64); y != 0 {
		t.Errorf("y=%d for one unsaturating batch, want 0", y)
	}
}

func TestSplitOnCPUNodeIsZero(t *testing.T) {
	s := mkState("ResNet 50", "m4.xlarge", 10, 10)
	if y := NewPaldia().Policy.SplitY(s, 50); y != 0 {
		t.Errorf("Paldia split on CPU node y=%d, want 0 (runtime serializes anyway)", y)
	}
}

func TestFixedFractionSplit(t *testing.T) {
	sch := NewOfflineHybrid(hardware.MostPerformant(hardware.GPU), 0.4)
	s := mkState("SENet 18", "M60", 100, 100)
	if y := sch.Policy.SplitY(s, 100); y != 40 {
		t.Errorf("fixed fraction y=%d, want 40", y)
	}
	if y := sch.Policy.SplitY(s, 0); y != 0 {
		t.Errorf("fixed fraction on 0 requests y=%d", y)
	}
}

func TestFailoverSpec(t *testing.T) {
	m60, _ := hardware.ByName("M60")
	got := FailoverSpec(m60)
	if got.ComputeScore <= m60.ComputeScore {
		t.Fatalf("failover from M60 chose %v, want more performant", got)
	}
	// Cheapest of the more performant nodes.
	if got.Accel != "K80" {
		t.Errorf("failover from M60 = %v, want K80 (cheapest better node)", got)
	}
	// From the top node, fall back to the next best.
	v100, _ := hardware.ByName("V100")
	next := FailoverSpec(v100)
	if next.Accel != "K80" {
		t.Errorf("failover from V100 = %v, want K80 (next best)", next)
	}
}

func TestWaitLimits(t *testing.T) {
	if NewPaldia().Policy.WaitLimit() != 3 {
		t.Error("Paldia wait_limit must be 3 (the paper's repeated-mismatch rule)")
	}
	if NewOracle().Policy.WaitLimit() != 1 {
		t.Error("Oracle should reconfigure immediately")
	}
}

func TestStandardSchemes(t *testing.T) {
	schemes := StandardSchemes()
	if len(schemes) != 5 {
		t.Fatalf("%d standard schemes, want 5", len(schemes))
	}
	names := map[string]bool{}
	for _, s := range schemes {
		names[s.Name()] = true
	}
	for _, want := range []string{"Paldia", "INFless/Llama ($)", "INFless/Llama (P)",
		"Molecule (beta) ($)", "Molecule (beta) (P)"} {
		if !names[want] {
			t.Errorf("missing scheme %q", want)
		}
	}
}

func TestOracleFlags(t *testing.T) {
	o := NewOracle()
	if !o.Clairvoyant || !o.InstantProcure {
		t.Fatal("Oracle must be clairvoyant with pre-positioned hardware")
	}
	p := NewPaldia()
	if p.Clairvoyant || p.InstantProcure {
		t.Fatal("Paldia must not be clairvoyant")
	}
}

func TestCheapestIsolatedEscalationLadder(t *testing.T) {
	// The $-baselines climb the cost ladder as the observed rate rises.
	m := "ResNet 50"
	prevCost := 0.0
	for _, rate := range []float64{10, 120, 300, 700, 2500} {
		hw := cheapestIsolated(mkState(m, "m4.xlarge", rate, rate))
		if hw.CostPerHour < prevCost {
			t.Fatalf("at %v rps the choice got cheaper (%v after $%.2f)", rate, hw, prevCost)
		}
		prevCost = hw.CostPerHour
	}
	// Beyond every node's throughput the fallback is the V100.
	if hw := cheapestIsolated(mkState(m, "m4.xlarge", 1e6, 1e6)); hw.Accel != "V100" {
		t.Fatalf("fallback = %v, want V100", hw)
	}
}

func TestPaldiaVariants(t *testing.T) {
	if got := NewPaldiaWithWaitLimit(7).Policy.WaitLimit(); got != 7 {
		t.Fatalf("wait limit = %d, want 7", got)
	}
	if got := NewPaldiaWithWaitLimit(0).Policy.WaitLimit(); got != 1 {
		t.Fatalf("degenerate wait limit = %d, want clamp to 1", got)
	}
	// The reactive variant must ignore the forecast.
	s := mkState("ResNet 50", "m4.xlarge", 1e6, 5)
	reactive := NewPaldiaReactive().Policy.DesiredHardware(s)
	if reactive.IsGPU() {
		t.Fatalf("reactive variant used the forecast: %v", reactive)
	}
	predictive := NewPaldia().Policy.DesiredHardware(s)
	if !predictive.IsGPU() {
		t.Fatalf("predictive variant ignored the forecast: %v", predictive)
	}
}

func TestTimeSharedAndMPSOnlySchemes(t *testing.T) {
	m60, _ := hardware.ByName("M60")
	s := mkState("SENet 18", "M60", 100, 100)
	ts := NewTimeSharedOnly(m60, "($)")
	mps := NewMPSOnly(m60, "($)")
	if ts.Policy.SplitY(s, 100) != 100 {
		t.Fatal("time-shared-only must queue everything")
	}
	if mps.Policy.SplitY(s, 100) != 0 {
		t.Fatal("MPS-only must queue nothing")
	}
	if ts.Policy.DesiredHardware(s).Name != m60.Name ||
		mps.Policy.DesiredHardware(s).Name != m60.Name {
		t.Fatal("motivation schemes must stay pinned")
	}
}

package core

import (
	"testing"
	"time"

	"repro/internal/invariant"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// TestRunCleanUnderInvariants runs representative single-workload scenarios
// with the full invariant checker attached and demands zero violations: the
// laws hold on the happy path, under node failures, under exhaustion-level
// load, and with scale-out.
func TestRunCleanUnderInvariants(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"paldia", func() Config {
			return Config{
				Model:  model.MustByName("ResNet 50"),
				Trace:  shortAzure(1, 200, 2*time.Minute),
				Scheme: NewPaldia(),
			}
		}},
		{"failures", func() Config {
			return Config{
				Model:           model.MustByName("DenseNet 121"),
				Trace:           shortAzure(3, 225, 3*time.Minute),
				Scheme:          NewPaldia(),
				FailureEvery:    time.Minute,
				FailureDuration: time.Minute,
			}
		}},
		{"cost-baseline", func() Config {
			return Config{
				Model:  model.MustByName("SENet 18"),
				Trace:  shortAzure(7, 150, 2*time.Minute),
				Scheme: NewINFlessLlamaCost(),
			}
		}},
		{"scale-out", func() Config {
			return Config{
				Model:    model.MustByName("GoogleNet"),
				Trace:    shortAzure(8, 450, 2*time.Minute),
				Scheme:   NewPaldia(),
				MaxNodes: 3,
			}
		}},
		{"uniform-batching", func() Config {
			return Config{
				Model:           model.MustByName("ResNet 50"),
				Trace:           shortAzure(5, 200, 2*time.Minute),
				Scheme:          NewPaldia(),
				UniformBatching: true,
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chk := invariant.New()
			cfg := tc.cfg()
			cfg.Invariants = chk
			Run(cfg)
			if err := chk.Err(); err != nil {
				t.Fatalf("invariant violations (%d total):\n%v", chk.Total(), err)
			}
		})
	}
}

// TestRunCleanUnderInvariantsWithTelemetry checks the checker coexists with a
// user telemetry sink and sampling (the Combine path) without violations.
func TestRunCleanUnderInvariantsWithTelemetry(t *testing.T) {
	chk := invariant.New()
	rec := telemetry.NewRecorder()
	Run(Config{
		Model:       model.MustByName("ResNet 50"),
		Trace:       shortAzure(2, 200, time.Minute),
		Scheme:      NewPaldia(),
		Telemetry:   rec,
		SampleEvery: time.Second,
		Invariants:  chk,
	})
	if err := chk.Err(); err != nil {
		t.Fatalf("invariant violations with telemetry attached:\n%v", err)
	}
	if len(rec.Events()) == 0 {
		t.Fatal("user sink starved by the checker")
	}
}

// TestRunMultiCleanUnderInvariants attaches the checker to a multi-tenant
// run.
func TestRunMultiCleanUnderInvariants(t *testing.T) {
	chk := invariant.New()
	RunMulti(MultiConfig{
		Workloads: []Workload{
			{Model: model.MustByName("ResNet 50"), Trace: shortAzure(1, 120, time.Minute)},
			{Model: model.MustByName("SENet 18"), Trace: shortAzure(2, 120, time.Minute)},
		},
		Scheme:     NewPaldia(),
		Invariants: chk,
	})
	if err := chk.Err(); err != nil {
		t.Fatalf("invariant violations in multi-tenant run:\n%v", err)
	}
}

// TestInvariantDetectsDoctoredResult is the end-to-end mutation test for the
// conservation law: feed CheckResult a Result whose FailedRequests was
// tampered with and demand the checker fires. This proves the reconciliation
// is live — a checker that never fires proves nothing.
func TestInvariantDetectsDoctoredResult(t *testing.T) {
	chk := invariant.New()
	cfg := Config{
		Model:           model.MustByName("DenseNet 121"),
		Trace:           shortAzure(3, 225, 3*time.Minute),
		Scheme:          NewPaldia(),
		FailureEvery:    time.Minute,
		FailureDuration: time.Minute,
	}
	cfg.Invariants = chk
	res := Run(cfg)
	if err := chk.Err(); err != nil {
		t.Fatalf("run itself must be clean first:\n%v", err)
	}
	if res.FailedRequests == 0 {
		t.Skip("failure scenario produced no failed requests; mutation has no target")
	}
	before := chk.Total()
	// A lost decrement on the failed-request counter must be caught.
	chk.CheckResult(2*time.Hour, res.Requests, res.FailedRequests-1, res.FailuresInjected)
	if chk.Total() == before {
		t.Fatal("doctored FailedRequests not detected")
	}
	assertLaw(t, chk, invariant.LawConservation)
}

// TestFailedRequestsMatchFailedEvents pins Result.FailedRequests to the
// telemetry stream: the count of distinct requests with a Failed event must
// equal the result counter, for a scenario that actually fails requests.
func TestFailedRequestsMatchFailedEvents(t *testing.T) {
	rec := telemetry.NewRecorder()
	res := Run(Config{
		Model:           model.MustByName("DenseNet 121"),
		Trace:           shortAzure(3, 225, 3*time.Minute),
		Scheme:          NewPaldia(),
		FailureEvery:    time.Minute,
		FailureDuration: time.Minute,
		Telemetry:       rec,
		Invariants:      invariant.New(),
	})
	failed := map[int64]bool{}
	for _, e := range rec.Events() {
		if e.Kind == telemetry.Failed && e.Req >= 0 {
			failed[e.Req] = true
		}
	}
	if len(failed) != res.FailedRequests {
		t.Fatalf("telemetry saw %d failed requests, Result says %d",
			len(failed), res.FailedRequests)
	}
	if res.FailuresInjected == 0 {
		t.Fatal("scenario injected no failures; the test premise is wrong")
	}
}

// assertLaw fails the test unless at least one recorded violation belongs to
// the given law family.
func assertLaw(t *testing.T, chk *invariant.Checker, law string) {
	t.Helper()
	for _, v := range chk.Violations() {
		if v.Law == law {
			return
		}
	}
	t.Fatalf("no %s violation recorded; got %v", law, chk.Violations())
}

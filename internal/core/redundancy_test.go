package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/hardware"
	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// spotCfg layers the standard spot/revocation study knobs onto a config.
func spotCfg(cfg Config) Config {
	cfg.SpotDiscount = 0.65
	cfg.SpotFraction = 1
	cfg.RevokeEvery = 30 * time.Second
	cfg.RevokeNotice = 2 * time.Second
	return cfg
}

// TestRedundancyCleanUnderInvariants runs every redundant-dispatch variant —
// clone-to-k, synchronized clones, hedged — with the full invariant checker
// attached, on calm hardware and under spot revocation and node failures,
// and demands zero violations.
func TestRedundancyCleanUnderInvariants(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"clone-2", func() Config {
			return Config{
				Model:  model.MustByName("ResNet 50"),
				Trace:  shortAzure(1, 200, 2*time.Minute),
				Scheme: NewPaldiaCloneK(2, false),
			}
		}},
		{"clone-3", func() Config {
			return Config{
				Model:  model.MustByName("DenseNet 121"),
				Trace:  shortAzure(2, 150, 2*time.Minute),
				Scheme: NewPaldiaCloneK(3, false),
			}
		}},
		{"clone-2-sync", func() Config {
			return Config{
				Model:  model.MustByName("ResNet 50"),
				Trace:  shortAzure(3, 200, 2*time.Minute),
				Scheme: NewPaldiaCloneK(2, true),
			}
		}},
		{"hedge-p95", func() Config {
			return Config{
				Model:  model.MustByName("SENet 18"),
				Trace:  shortAzure(4, 200, 2*time.Minute),
				Scheme: NewPaldiaHedged(95),
			}
		}},
		{"clone-2-spot-revoke", func() Config {
			return spotCfg(Config{
				Model:  model.MustByName("ResNet 50"),
				Trace:  shortAzure(5, 200, 3*time.Minute),
				Scheme: NewPaldiaCloneK(2, false),
			})
		}},
		{"clone-3-spot-revoke", func() Config {
			return spotCfg(Config{
				Model:  model.MustByName("GoogleNet"),
				Trace:  shortAzure(6, 250, 3*time.Minute),
				Scheme: NewPaldiaCloneK(3, false),
			})
		}},
		{"hedge-spot-revoke", func() Config {
			return spotCfg(Config{
				Model:  model.MustByName("ResNet 50"),
				Trace:  shortAzure(7, 200, 3*time.Minute),
				Scheme: NewPaldiaHedged(90),
			})
		}},
		{"clone-2-failures", func() Config {
			return Config{
				Model:           model.MustByName("DenseNet 121"),
				Trace:           shortAzure(8, 180, 3*time.Minute),
				Scheme:          NewPaldiaCloneK(2, false),
				FailureEvery:    45 * time.Second,
				FailureDuration: 30 * time.Second,
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chk := invariant.New()
			cfg := tc.cfg()
			cfg.Invariants = chk
			res := Run(cfg)
			if err := chk.Err(); err != nil {
				t.Fatalf("invariant violations (%d total):\n%v", chk.Total(), err)
			}
			if res.Requests == 0 {
				t.Fatal("run served no requests")
			}
		})
	}
}

// TestCloneCancellationUnderInvariants pins the cancel-on-first-complete
// telemetry contract on a real run: clones are dispatched, losers are
// cancelled, and the checker (which enforces CloneCancelled-before-Completed
// ordering and double-cancel conservation) stays silent.
func TestCloneCancellationUnderInvariants(t *testing.T) {
	chk := invariant.New()
	rec := telemetry.NewRecorder()
	Run(Config{
		Model:      model.MustByName("ResNet 50"),
		Trace:      shortAzure(9, 200, 2*time.Minute),
		Scheme:     NewPaldiaCloneK(2, false),
		Telemetry:  rec,
		Invariants: chk,
	})
	if err := chk.Err(); err != nil {
		t.Fatalf("invariant violations:\n%v", err)
	}
	var cloned, cancelled int
	for _, e := range rec.Events() {
		switch e.Kind {
		case telemetry.Cloned:
			cloned++
		case telemetry.CloneCancelled:
			cancelled++
		}
	}
	if cloned == 0 {
		t.Fatal("clone-2 run emitted no Cloned events")
	}
	if cancelled == 0 {
		t.Fatal("clone-2 run cancelled no copies (no race ever resolved)")
	}
}

// TestSyncCloneNoCancellation pins the synchronized-service variant: the set
// completes only when every copy finishes, so no loser is ever cancelled
// on the happy path (copies only end early when their node dies).
func TestSyncCloneNoCancellation(t *testing.T) {
	rec := telemetry.NewRecorder()
	chk := invariant.New()
	Run(Config{
		Model:      model.MustByName("ResNet 50"),
		Trace:      shortAzure(10, 200, time.Minute),
		Scheme:     NewPaldiaCloneK(2, true),
		Telemetry:  rec,
		Invariants: chk,
	})
	if err := chk.Err(); err != nil {
		t.Fatalf("invariant violations:\n%v", err)
	}
	for _, e := range rec.Events() {
		if e.Kind == telemetry.CloneCancelled {
			t.Fatalf("synchronized clones cancelled copy job %d at %v", e.Job, e.At)
		}
	}
}

// TestHedgeFireAfterResolutionIsNoOp covers the hedge timer racing the
// primary's completion: once the set has resolved (or already hedged), a
// firing timer must launch nothing.
func TestHedgeFireAfterResolutionIsNoOp(t *testing.T) {
	d := &redundancy{hedge: true}
	s := &cloneSet{red: d}
	s.resolved = true
	s.hedgeFire() // must not touch pools or launch
	if s.hedged || s.launched != 0 {
		t.Fatalf("hedge fired on a resolved set: hedged=%v launched=%d", s.hedged, s.launched)
	}

	s = &cloneSet{red: d}
	s.hedged = true
	s.hedgeFire()
	if s.launched != 0 {
		t.Fatalf("hedge fired twice: launched=%d", s.launched)
	}

	// Unresolved but no second healthy pool: the hedge stays unarmed so a
	// later fire could still use a recovered pool.
	s = &cloneSet{red: d}
	s.hedgeFire()
	if s.hedged || s.launched != 0 {
		t.Fatalf("hedge launched with no backup pool: hedged=%v launched=%d", s.hedged, s.launched)
	}
}

// TestHedgeThresholdFallsBackToHalfSLO pins the cold-start behavior of the
// hedge age threshold: half the SLO until the tracker has enough samples,
// the online percentile after.
func TestHedgeThresholdFallsBackToHalfSLO(t *testing.T) {
	d := &redundancy{
		r:     &runner{cfg: Config{SLO: 400 * time.Millisecond}},
		hedge: true,
		age:   metrics.NewAgeTracker(95),
	}
	if got := d.hedgeThreshold(); got != 200*time.Millisecond {
		t.Fatalf("cold threshold = %v, want SLO/2 = 200ms", got)
	}
	for i := 0; i < 200; i++ {
		d.age.Add(100 * time.Millisecond)
	}
	got := d.hedgeThreshold()
	if got <= 0 || got > 110*time.Millisecond {
		t.Fatalf("warm threshold = %v, want ~100ms from the tracker", got)
	}
}

// TestCloneSameTickWinnerDeterministic pins the mechanism the clone race
// relies on when both copies finish at the same instant: the engine fires
// Done callbacks in (at, seq) order, and cancelling the sibling from inside
// the first Done suppresses the second entirely. Whichever copy was
// submitted first wins, deterministically, in both submission orders.
func TestCloneSameTickWinnerDeterministic(t *testing.T) {
	specs := hardware.Catalog()
	var gpu hardware.Spec
	for _, s := range specs {
		if s.IsGPU() {
			gpu = s
			break
		}
	}
	for _, order := range []string{"ab", "ba"} {
		eng := sim.NewEngine()
		devA := device.New(eng, gpu, 4)
		devB := device.New(eng, gpu, 4)
		var winner string
		mk := func(name string, self, other *device.Device, otherJob *device.Job) *device.Job {
			j := &device.Job{Batch: 1, Solo: 50 * time.Millisecond, Compute: 1, Mode: device.Spatial}
			j.Done = func(done *device.Job) {
				if winner != "" {
					t.Fatalf("order %s: second Done fired after %s already won", order, winner)
				}
				winner = name
				other.Cancel(otherJob)
			}
			return j
		}
		jobA := &device.Job{}
		jobB := &device.Job{}
		*jobA = *mk("a", devA, devB, jobB)
		*jobB = *mk("b", devB, devA, jobA)
		if order == "ab" {
			devA.Submit(jobA)
			devB.Submit(jobB)
		} else {
			devB.Submit(jobB)
			devA.Submit(jobA)
		}
		eng.Run(time.Second)
		want := "a"
		if order == "ba" {
			want = "b"
		}
		if winner != want {
			t.Fatalf("order %s: winner = %q, want first-submitted %q", order, winner, want)
		}
	}
}

// TestSpotRevocationZeroSurvivors drives revocation fast enough that every
// pool (all spot) is revoked before any replacement can arrive, leaving an
// interval with zero capable nodes. Requests must wait, service must resume
// on the respawned pools, and the checker must stay silent end to end.
func TestSpotRevocationZeroSurvivors(t *testing.T) {
	chk := invariant.New()
	rec := telemetry.NewRecorder()
	res := Run(Config{
		Model:        model.MustByName("ResNet 50"),
		Trace:        shortAzure(11, 150, 2*time.Minute),
		Scheme:       NewPaldiaCloneK(2, false),
		SpotDiscount: 0.65,
		SpotFraction: 1,
		RevokeEvery:  5 * time.Second,
		RevokeNotice: time.Second,
		Telemetry:    rec,
		Invariants:   chk,
	})
	if err := chk.Err(); err != nil {
		t.Fatalf("invariant violations:\n%v", err)
	}
	var revoked, respawned int
	var lastRevoke, firstRespawn time.Duration
	firstRespawn = -1
	for _, e := range rec.Events() {
		switch {
		case e.Kind == telemetry.NodeRevoked:
			revoked++
			if revoked == 2 {
				lastRevoke = e.At
			}
		case e.Kind == telemetry.HWSwitch && e.Detail == "respawn":
			respawned++
			if firstRespawn < 0 {
				firstRespawn = e.At
			}
		}
	}
	if revoked < 2 {
		t.Fatalf("only %d revocations; both pools must be revoked", revoked)
	}
	if respawned == 0 {
		t.Fatal("no pool was ever respawned after revocation")
	}
	if firstRespawn < lastRevoke {
		t.Fatalf("replacement at %v arrived before the second revocation at %v — no zero-survivor window",
			firstRespawn, lastRevoke)
	}
	if res.Requests == 0 || res.Requests == res.FailedRequests {
		t.Fatalf("service never resumed: %d/%d requests failed", res.FailedRequests, res.Requests)
	}
}

// TestRedundancyDeterministic runs each redundant variant twice with the
// same seed and demands identical results and identical telemetry streams
// (the make test-determinism gate picks this up by name).
func TestRedundancyDeterministic(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"clone-2-spot", func() Config {
			return spotCfg(Config{
				Model:  model.MustByName("ResNet 50"),
				Trace:  shortAzure(12, 200, 2*time.Minute),
				Scheme: NewPaldiaCloneK(2, false),
			})
		}},
		{"clone-2-sync", func() Config {
			return Config{
				Model:  model.MustByName("DenseNet 121"),
				Trace:  shortAzure(13, 150, 2*time.Minute),
				Scheme: NewPaldiaCloneK(2, true),
			}
		}},
		{"hedge-spot", func() Config {
			return spotCfg(Config{
				Model:  model.MustByName("SENet 18"),
				Trace:  shortAzure(14, 200, 2*time.Minute),
				Scheme: NewPaldiaHedged(95),
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func() (Result, []telemetry.Event) {
				rec := telemetry.NewRecorder()
				cfg := tc.cfg()
				cfg.Telemetry = rec
				return Run(cfg), rec.Events()
			}
			res1, ev1 := run()
			res2, ev2 := run()
			if !reflect.DeepEqual(res1, res2) {
				t.Fatalf("results differ:\n%+v\n%+v", res1, res2)
			}
			if len(ev1) != len(ev2) {
				t.Fatalf("event counts differ: %d vs %d", len(ev1), len(ev2))
			}
			for i := range ev1 {
				if ev1[i] != ev2[i] {
					t.Fatalf("event %d differs:\n%+v\n%+v", i, ev1[i], ev2[i])
				}
			}
		})
	}
}

// TestRedundancySpotCostDiscount pins the billing side of spot pools: the
// same clone scheme on fully-spot capacity must cost strictly less than on
// on-demand capacity, and at most (1 - discount) of it, over the same trace.
func TestRedundancySpotCostDiscount(t *testing.T) {
	base := func() Config {
		return Config{
			Model:  model.MustByName("ResNet 50"),
			Trace:  shortAzure(15, 200, 2*time.Minute),
			Scheme: NewPaldiaCloneK(2, false),
		}
	}
	onDemand := Run(base())
	cfg := base()
	cfg.SpotDiscount = 0.65
	cfg.SpotFraction = 1
	spot := Run(cfg)
	if spot.Cost >= onDemand.Cost {
		t.Fatalf("spot cost %.4f not below on-demand %.4f", spot.Cost, onDemand.Cost)
	}
	// Fully-spot capacity with no revocation should cost exactly the
	// discounted rate; allow slack for float accumulation.
	want := onDemand.Cost * 0.35
	if diff := spot.Cost - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("spot cost %.6f, want %.6f (35%% of on-demand %.6f)", spot.Cost, want, onDemand.Cost)
	}
}

// The dispatcher half of the serving runtime (Fig. 2's Dispatcher plus the
// Job Distribution logic): every dispatch window, pending requests are split
// between MPS co-location and the time-share lane per the scheme's policy
// and submitted to the serving node(s).

package core

import (
	"time"

	"repro/internal/autoscale"
	"repro/internal/batch"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/telemetry"
)

// --- dispatch ----------------------------------------------------------------

func (r *runner) dispatchTick() {
	now := r.eng.Now()
	if now < r.end || r.bat.Pending() > 0 {
		r.eng.Schedule(r.cfg.DispatchWindow, r.dispatchTick)
	}
	r.dispatch()
}

func (r *runner) dispatch() {
	if r.bat.Pending() == 0 {
		return
	}
	if r.cur == nil || r.cur.node.Device == nil || r.cur.node.Device.Failed() {
		// No healthy node: requests wait in the batcher; make sure a
		// replacement is on the way.
		r.ensureFailover()
		return
	}
	nodes := r.healthyNodes()
	if len(nodes) == 1 {
		r.dispatchOn(nodes[0], r.bat.Pending())
		return
	}
	// Scale-out: spread this window's pending requests evenly across the
	// replicas; each node runs its own Eq. (1) split against its own state.
	n := r.bat.Pending()
	share := (n + len(nodes) - 1) / len(nodes)
	for _, node := range nodes {
		if r.bat.Pending() == 0 {
			break
		}
		take := share
		if p := r.bat.Pending(); take > p {
			take = p
		}
		r.dispatchOn(node, take)
	}
}

// healthyNodes returns the primary plus any healthy replicas. The returned
// slice is runner-owned scratch, valid until the next call.
func (r *runner) healthyNodes() []*servingNode {
	nodes := append(r.nodesScratch[:0], r.cur)
	for _, rep := range r.replicas {
		if rep.node.Device != nil && !rep.node.Device.Failed() {
			nodes = append(nodes, rep)
		}
	}
	r.nodesScratch = nodes
	return nodes
}

// dispatchOn serves up to limit pending requests on one node.
func (r *runner) dispatchOn(node *servingNode, limit int) {
	n := limit
	if n <= 0 {
		return
	}
	st := r.stateOf(node)
	st.Pending = n
	bs := node.entry.PreferredBatch

	y := r.cfg.Scheme.Policy.SplitY(st, n)
	if y < 0 {
		y = 0
	}
	if y > n {
		y = n
	}
	spatialN := n - y
	if !node.node.Spec.IsGPU() {
		// Batched CPU mode: everything executes serially.
		spatialN = 0
		y = n
	}
	// Device memory bounds resident jobs: spatial batches beyond the free
	// slots wait in the batcher (reroutable) rather than piling onto the
	// node. This is a physical limit that applies to every scheme; within
	// it, MPS-only schemes still consolidate enough batches to interfere
	// heavily.
	if node.node.Spec.IsGPU() {
		free := node.entry.MaxResidentJobs - node.node.Device.ActiveCount() - laneCap
		if free < 0 {
			free = 0
		}
		if max := free * bs; spatialN > max {
			spatialN = max
		}
	}
	// Admit only laneCap time-share jobs onto the device; the remainder of
	// the queued portion waits in the batcher (rerouted on a hardware
	// switch, re-split next window).
	slots := laneCap - node.queuedOutstanding
	if slots < 0 {
		slots = 0
	}
	if max := slots * bs; y > max {
		y = max
	}
	if r.cfg.UniformBatching {
		// Only full batches leave the batcher, unless the oldest pending
		// request is running out of SLO budget.
		total := spatialN + y
		full := total / bs * bs
		if full < total {
			oldest, ok := r.bat.OldestArrival()
			if !ok || r.eng.Now()-oldest < r.cfg.SLO/4 {
				// Trim the queued portion first, then the spatial one.
				drop := total - full
				if d := min(drop, y); d > 0 {
					y -= d
					drop -= d
				}
				spatialN -= drop
			}
		}
		if spatialN+y == 0 {
			return
		}
	}
	reqs := r.bat.TakeUpTo(spatialN + y)
	spatial := reqs[:spatialN]
	queued := reqs[spatialN:]

	// Reactive scale-up: one container per spatial batch (§IV-C), on top of
	// containers already serving in-flight batches.
	node.pool.Ensure(node.pool.Busy() + autoscale.ReactiveContainers(len(spatial), bs))

	for _, b := range batch.Split(spatial, bs) {
		r.dispatchJob(node, b, device.Spatial)
	}
	for _, b := range batch.Split(queued, bs) {
		r.dispatchJob(node, b, device.Queued)
	}
}

func (r *runner) dispatchJob(node *servingNode, reqs []batch.Request, mode device.Mode) {
	now := r.eng.Now()
	solo := profile.Solo(r.cfg.Model, node.node.Spec, len(reqs))

	job := &device.Job{
		Batch:   len(reqs),
		Solo:    solo,
		FBR:     node.entry.FBR,
		Compute: profile.ComputeFraction(r.cfg.Model, node.node.Spec, len(reqs)),
		Mode:    mode,
	}
	if r.tel != nil {
		r.jobSeq++
		job.ID = r.jobSeq
		for _, q := range reqs {
			e := telemetry.Ev(now, telemetry.Dispatched)
			e.Req = int64(q.ID)
			e.Job = job.ID
			e.Node = node.node.ID
			e.Spec = node.node.Spec.Name
			e.N = len(reqs)
			e.Detail = mode.String()
			r.tel.Event(e)
		}
	}
	var cold time.Duration // container-wait serialized into the request
	job.Done = func(j *device.Job) { r.completeJob(node, reqs, j, now, cold, mode) }
	submit := func() {
		cold = r.eng.Now() - now
		node.node.Device.Submit(job)
	}

	if mode == device.Spatial {
		node.pool.AcquireOrWait(submit)
		return
	}
	node.queuedOutstanding++
	if node.laneReady {
		// Time-shared batches reuse the single warm lane container.
		submit()
		return
	}
	node.lanePending = append(node.lanePending, submit)
	if node.laneHeld {
		return
	}
	node.laneHeld = true
	node.pool.AcquireOrWait(func() {
		node.laneReady = true
		pending := node.lanePending
		node.lanePending = nil
		for _, f := range pending {
			f()
		}
	})
}

func (r *runner) completeJob(node *servingNode, reqs []batch.Request, j *device.Job,
	dispatched time.Duration, cold time.Duration, mode device.Mode) {
	finish := r.eng.Now()
	if r.tel != nil {
		kind := telemetry.Completed
		if j.Failed {
			kind = telemetry.Failed
		}
		for _, req := range reqs {
			e := telemetry.Ev(finish, kind)
			e.Req = int64(req.ID)
			e.Job = j.ID
			e.Node = node.node.ID
			r.tel.Event(e)
		}
	}
	for _, req := range reqs {
		rec := metrics.Record{
			Arrival:      req.Arrival,
			Latency:      finish - req.Arrival,
			BatchWait:    dispatched - req.Arrival,
			ColdStart:    cold,
			QueueDelay:   j.QueueDelay(),
			Interference: j.Interference(),
			MinExec:      j.Solo,
			Failed:       j.Failed,
		}
		if j.Failed {
			r.failedRq++
		}
		r.col.Add(rec)
	}
	if mode == device.Spatial {
		node.pool.Release()
		return
	}
	node.queuedOutstanding--
	if node.queuedOutstanding == 0 && node.laneReady {
		node.pool.Release()
		node.laneHeld = false
		node.laneReady = false
	}
}

// The dispatcher half of the serving runtime (Fig. 2's Dispatcher plus the
// Job Distribution logic): every dispatch window, pending requests are split
// between MPS co-location and the time-share lane per the scheme's policy
// and submitted to the serving node(s).

package core

import (
	"time"

	"repro/internal/autoscale"
	"repro/internal/batch"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/telemetry"
)

// --- pooled per-job dispatch state -------------------------------------------

// jobState is the per-dispatch context of one batch job: the device job, the
// requests it carries, and the lifecycle closures. States are recycled
// through the runner's free list when the job completes, and the Done/submit
// closures are bound once per jobState lifetime, so a steady-state dispatch
// cycle — take requests, build job, submit, complete, record — allocates
// nothing.
type jobState struct {
	r          *runner
	node       *servingNode
	reqs       []batch.Request // owned copy; reused across lifetimes
	job        device.Job
	dispatched time.Duration
	cold       time.Duration // container-wait serialized into the request
	mode       device.Mode
	doneFn     func(*device.Job)
	submitFn   func()
}

// newJobState returns a recycled jobState or builds one with its closures
// bound.
func (r *runner) newJobState() *jobState {
	if n := len(r.jobPool); n > 0 {
		js := r.jobPool[n-1]
		r.jobPool = r.jobPool[:n-1]
		return js
	}
	js := &jobState{r: r}
	js.doneFn = func(j *device.Job) { js.complete(j) }
	js.submitFn = func() {
		js.cold = js.r.eng.Now() - js.dispatched
		js.node.node.Device.Submit(&js.job)
	}
	return js
}

// --- dispatch ----------------------------------------------------------------

func (r *runner) dispatchTick() {
	now := r.eng.Now()
	if now < r.end || r.bat.Pending() > 0 {
		r.eng.Schedule(r.cfg.DispatchWindow, r.dispatchTickFn)
	}
	if r.red != nil {
		r.red.dispatch()
		return
	}
	r.dispatch()
}

func (r *runner) dispatch() {
	if r.bat.Pending() == 0 {
		return
	}
	if r.cur == nil || r.cur.node.Device == nil || r.cur.node.Device.Failed() ||
		r.cur.node.Revoked() {
		// No healthy node (a revoked one is draining out and takes no new
		// work): requests wait in the batcher; make sure a replacement is
		// on the way.
		r.ensureFailover()
		return
	}
	nodes := r.healthyNodes()
	if len(nodes) == 1 {
		r.dispatchOn(nodes[0], r.bat.Pending())
		return
	}
	// Scale-out: spread this window's pending requests evenly across the
	// replicas; each node runs its own Eq. (1) split against its own state.
	n := r.bat.Pending()
	share := (n + len(nodes) - 1) / len(nodes)
	for _, node := range nodes {
		if r.bat.Pending() == 0 {
			break
		}
		take := share
		if p := r.bat.Pending(); take > p {
			take = p
		}
		r.dispatchOn(node, take)
	}
}

// healthyNodes returns the primary plus any healthy replicas. The returned
// slice is runner-owned scratch, valid until the next call.
func (r *runner) healthyNodes() []*servingNode {
	nodes := append(r.nodesScratch[:0], r.cur)
	for _, rep := range r.replicas {
		if rep.node.Device != nil && !rep.node.Device.Failed() {
			nodes = append(nodes, rep)
		}
	}
	r.nodesScratch = nodes
	return nodes
}

// dispatchOn serves up to limit pending requests on one node.
func (r *runner) dispatchOn(node *servingNode, limit int) {
	n := limit
	if n <= 0 {
		return
	}
	st := r.stateOf(node)
	st.Pending = n
	bs := node.entry.PreferredBatch

	y := r.cfg.Scheme.Policy.SplitY(st, n)
	if y < 0 {
		y = 0
	}
	if y > n {
		y = n
	}
	spatialN := n - y
	if !node.node.Spec.IsGPU() {
		// Batched CPU mode: everything executes serially.
		spatialN = 0
		y = n
	}
	// Device memory bounds resident jobs: spatial batches beyond the free
	// slots wait in the batcher (reroutable) rather than piling onto the
	// node. This is a physical limit that applies to every scheme; within
	// it, MPS-only schemes still consolidate enough batches to interfere
	// heavily.
	if node.node.Spec.IsGPU() {
		free := node.entry.MaxResidentJobs - node.node.Device.ActiveCount() - laneCap
		if free < 0 {
			free = 0
		}
		if max := free * bs; spatialN > max {
			spatialN = max
		}
	}
	// Admit only laneCap time-share jobs onto the device; the remainder of
	// the queued portion waits in the batcher (rerouted on a hardware
	// switch, re-split next window).
	slots := laneCap - node.queuedOutstanding
	if slots < 0 {
		slots = 0
	}
	if max := slots * bs; y > max {
		y = max
	}
	if r.cfg.UniformBatching {
		// Only full batches leave the batcher, unless the oldest pending
		// request is running out of SLO budget.
		total := spatialN + y
		full := total / bs * bs
		if full < total {
			oldest, ok := r.bat.OldestArrival()
			if !ok || r.eng.Now()-oldest < r.cfg.SLO/4 {
				// Trim the queued portion first, then the spatial one.
				drop := total - full
				if d := min(drop, y); d > 0 {
					y -= d
					drop -= d
				}
				spatialN -= drop
			}
		}
		if spatialN+y == 0 {
			return
		}
	}
	// Reactive scale-up: one container per spatial batch (§IV-C), on top of
	// containers already serving in-flight batches. (Taking requests out of
	// the batcher schedules no events, so sizing the pool before the take is
	// observationally identical to the historical take-then-ensure order.)
	node.pool.Ensure(node.pool.Busy() + autoscale.ReactiveContainers(spatialN, bs))

	// Each batch takes its requests straight out of the batcher, in the same
	// arrival-order partition batch.Split produced over a materialized take.
	r.sizesScratch = batch.SplitSizes(r.sizesScratch, spatialN, bs)
	for _, size := range r.sizesScratch {
		r.dispatchJob(node, size, device.Spatial)
	}
	r.sizesScratch = batch.SplitSizes(r.sizesScratch, y, bs)
	for _, size := range r.sizesScratch {
		r.dispatchJob(node, size, device.Queued)
	}
}

// dispatchJob takes the next n pending requests as one batch job on node.
func (r *runner) dispatchJob(node *servingNode, n int, mode device.Mode) {
	now := r.eng.Now()
	js := r.newJobState()
	js.node = node
	js.mode = mode
	js.dispatched = now
	js.cold = 0
	js.reqs = r.bat.TakeInto(js.reqs[:0], n)
	reqs := js.reqs

	job := &js.job
	job.Reset()
	job.Batch = len(reqs)
	job.Solo = profile.Solo(r.cfg.Model, node.node.Spec, len(reqs))
	job.FBR = node.entry.FBR
	job.Compute = profile.ComputeFraction(r.cfg.Model, node.node.Spec, len(reqs))
	job.Mode = mode
	job.Done = js.doneFn
	if r.tel != nil {
		r.jobSeq++
		job.ID = r.jobSeq
		for _, q := range reqs {
			e := telemetry.Ev(now, telemetry.Dispatched)
			e.Req = int64(q.ID)
			e.Job = job.ID
			e.Node = node.node.ID
			e.Spec = node.node.Spec.Name
			e.N = len(reqs)
			e.Detail = mode.String()
			r.tel.Event(e)
		}
	}

	if mode == device.Spatial {
		node.pool.AcquireOrWait(js.submitFn)
		return
	}
	node.queuedOutstanding++
	if node.laneReady {
		// Time-shared batches reuse the single warm lane container.
		js.submitFn()
		return
	}
	node.lanePending = append(node.lanePending, js.submitFn)
	if node.laneHeld {
		return
	}
	node.laneHeld = true
	node.pool.AcquireOrWait(func() {
		node.laneReady = true
		pending := node.lanePending
		node.lanePending = nil
		for _, f := range pending {
			f()
		}
	})
}

// complete records the outcomes of a finished (or failed) job's requests and
// recycles the jobState. By the time the device invokes Done the job is out
// of every device queue, and its submit closure has either run or — for jobs
// failed while waiting on a container — belongs to a retired pool, so the
// state cannot be referenced again and is safe to reuse.
func (js *jobState) complete(j *device.Job) {
	r := js.r
	node := js.node
	finish := r.eng.Now()
	if r.tel != nil {
		kind := telemetry.Completed
		if j.Failed {
			kind = telemetry.Failed
		}
		for _, req := range js.reqs {
			e := telemetry.Ev(finish, kind)
			e.Req = int64(req.ID)
			e.Job = j.ID
			e.Node = node.node.ID
			r.tel.Event(e)
		}
	}
	for _, req := range js.reqs {
		rec := metrics.Record{
			Arrival:      req.Arrival,
			Latency:      finish - req.Arrival,
			BatchWait:    js.dispatched - req.Arrival,
			ColdStart:    js.cold,
			QueueDelay:   j.QueueDelay(),
			Interference: j.Interference(),
			MinExec:      j.Solo,
			Failed:       j.Failed,
		}
		if j.Failed {
			r.failedRq++
		}
		r.col.Add(rec)
	}
	mode := js.mode
	r.jobPool = append(r.jobPool, js)
	if mode == device.Spatial {
		node.pool.Release()
		return
	}
	node.queuedOutstanding--
	if node.queuedOutstanding == 0 && node.laneReady {
		node.pool.Release()
		node.laneHeld = false
		node.laneReady = false
	}
}

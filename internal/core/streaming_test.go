package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// TestStreamingEquivalenceDeterministic pins the tentpole's contract: a run
// consuming arrivals lazily from a CurveStream produces a byte-identical
// Result — headline numbers, the full per-request record stream, and the
// telemetry span export — to the same run over the materialized Trace.
// Three configurations cover the paths that could diverge: the plain serving
// loop, failure injection (failed-request accounting), and scale-out. The
// invariant checker audits the streaming runs. CI runs this under
// -race -cpu 1,4 with the other determinism suites.
func TestStreamingEquivalenceDeterministic(t *testing.T) {
	cases := []struct {
		name  string
		seed  uint64
		curve func(rng *sim.RNG) *trace.Curve
		tweak func(cfg *Config)
	}{
		{
			name:  "paldia-azure",
			seed:  42,
			curve: func(rng *sim.RNG) *trace.Curve { return trace.AzureCurve(rng, 250, 2*time.Minute) },
		},
		{
			name:  "paldia-poisson-failures",
			seed:  7,
			curve: func(rng *sim.RNG) *trace.Curve { return trace.PoissonCurve(rng, 150, 90*time.Second) },
			tweak: func(cfg *Config) {
				cfg.FailureEvery = 30 * time.Second
				cfg.FailureDuration = 8 * time.Second
			},
		},
		{
			name:  "paldia-twitter-scaleout",
			seed:  11,
			curve: func(rng *sim.RNG) *trace.Curve { return trace.TwitterCurve(rng, 300, 90*time.Second) },
			tweak: func(cfg *Config) { cfg.MaxNodes = 3 },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			type snapshot struct {
				res   Result
				csv   bytes.Buffer
				spans bytes.Buffer
			}
			run := func(streaming bool) *snapshot {
				rng := sim.NewRNG(tc.seed)
				c := tc.curve(rng)
				cfg := Config{
					Model:       model.MustByName("ResNet 50"),
					Scheme:      NewPaldia(),
					Seed:        tc.seed,
					SampleEvery: time.Second,
					Invariants:  invariant.New(),
				}
				if streaming {
					cfg.Stream = c.Stream(rng)
				} else {
					cfg.Trace = c.Realize(rng)
				}
				if tc.tweak != nil {
					tc.tweak(&cfg)
				}
				rec := telemetry.NewRecorder()
				cfg.Telemetry = rec
				var s snapshot
				s.res = Run(cfg)
				if err := cfg.Invariants.Err(); err != nil {
					t.Fatalf("streaming=%v run not invariant-clean:\n%v", streaming, err)
				}
				if err := s.res.Collector.WriteCSV(&s.csv); err != nil {
					t.Fatal(err)
				}
				if err := rec.WriteSpansJSONL(&s.spans); err != nil {
					t.Fatal(err)
				}
				return &s
			}
			mat, str := run(false), run(true)

			rm, rs := mat.res, str.res
			rm.Collector, rs.Collector = nil, nil
			if !reflect.DeepEqual(rm, rs) {
				t.Errorf("streaming Result differs from materialized:\n%+v\nvs\n%+v", rm, rs)
			}
			if !bytes.Equal(mat.csv.Bytes(), str.csv.Bytes()) {
				t.Error("per-request CSV differs between streaming and materialized runs")
			}
			if !bytes.Equal(mat.spans.Bytes(), str.spans.Bytes()) {
				t.Error("spans JSONL differs between streaming and materialized runs")
			}
			if mat.res.Requests == 0 || mat.csv.Len() == 0 {
				t.Fatal("materialized run served nothing; equivalence check lost coverage")
			}
		})
	}
}

// TestStreamingEquivalenceMultiDeterministic: the same contract for
// multi-tenant runs, with one tenant streaming from a curve and the
// comparison run materialized.
func TestStreamingEquivalenceMultiDeterministic(t *testing.T) {
	run := func(streaming bool) MultiResult {
		c1 := trace.AzureCurve(sim.NewRNG(5), 150, time.Minute)
		c2 := trace.AzureCurve(sim.NewRNG(6), 200, time.Minute)
		w := []Workload{
			{Model: model.MustByName("ResNet 50")},
			{Model: model.MustByName("MobileNet")},
		}
		if streaming {
			w[0].Stream = c1.Stream(sim.NewRNG(5))
			w[1].Stream = c2.Stream(sim.NewRNG(6))
		} else {
			w[0].Trace = c1.Realize(sim.NewRNG(5))
			w[1].Trace = c2.Realize(sim.NewRNG(6))
		}
		chk := invariant.New()
		res := RunMulti(MultiConfig{Workloads: w, Scheme: NewPaldia(), Invariants: chk})
		if err := chk.Err(); err != nil {
			t.Fatalf("streaming=%v multi run not invariant-clean:\n%v", streaming, err)
		}
		return res
	}
	mat, str := run(false), run(true)
	if len(mat.PerWorkload) != len(str.PerWorkload) {
		t.Fatalf("tenant counts differ: %d vs %d", len(mat.PerWorkload), len(str.PerWorkload))
	}
	for i := range mat.PerWorkload {
		var cm, cs bytes.Buffer
		if err := mat.PerWorkload[i].WriteCSV(&cm); err != nil {
			t.Fatal(err)
		}
		if err := str.PerWorkload[i].WriteCSV(&cs); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cm.Bytes(), cs.Bytes()) {
			t.Errorf("tenant %d: per-request CSV differs between streaming and materialized runs", i)
		}
		if cm.Len() == 0 {
			t.Errorf("tenant %d: empty record stream", i)
		}
	}
	rm, rs := mat, str
	rm.PerWorkload, rs.PerWorkload = nil, nil
	if !reflect.DeepEqual(rm, rs) {
		t.Errorf("streaming MultiResult differs from materialized:\n%+v\nvs\n%+v", rm, rs)
	}
}

// TestStreamingOnlineMetricsDeterministic: with the constant-memory
// aggregator selected, everything it tracks exactly (request count,
// compliance, mean latency, cost, operational counters) must match the
// exact run bit-for-bit, and the sketch percentiles must stay within the
// sketch's guaranteed relative error bound (metrics.SketchAlpha) of the
// exact values — on the real simulated latency distribution, not a
// synthetic one.
func TestStreamingOnlineMetricsDeterministic(t *testing.T) {
	run := func(mode MetricsMode) Result {
		rng := sim.NewRNG(42)
		c := trace.AzureCurve(rng, 250, 2*time.Minute)
		return Run(Config{
			Model:   model.MustByName("ResNet 50"),
			Stream:  c.Stream(rng),
			Scheme:  NewPaldia(),
			Seed:    42,
			Metrics: mode,
		})
	}
	exact, online := run(MetricsExact), run(MetricsOnline)
	if online.Online == nil || online.Collector != nil {
		t.Fatal("MetricsOnline run did not surface the Online aggregator")
	}
	if exact.Collector == nil {
		t.Fatal("MetricsExact run lost its Collector")
	}

	// The percentiles in the headline fields are sketch estimates; mask them
	// and the aggregator pointers, then everything else must be identical.
	re, ro := exact, online
	re.Collector, ro.Online = nil, nil
	re.P50, ro.P50 = 0, 0
	re.P99, ro.P99 = 0, 0
	if !reflect.DeepEqual(re, ro) {
		t.Errorf("online-metrics Result differs beyond percentiles:\n%+v\nvs\n%+v", re, ro)
	}
	for _, p := range []struct {
		name    string
		est, ex time.Duration
	}{
		{"P50", online.P50, exact.P50},
		{"P99", online.P99, exact.P99},
	} {
		rel := math.Abs(float64(p.est-p.ex)) / float64(p.ex)
		if bound := metrics.SketchAlpha * 1.01; rel > bound {
			t.Errorf("%s sketch %v vs exact %v: rel err %.4f > %.4f", p.name, p.est, p.ex, rel, bound)
		}
	}
}

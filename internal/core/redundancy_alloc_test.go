package core

// Allocation gate for the redundant-dispatch hot path: in steady state the
// clone machinery — set recycling, per-copy launches, sibling cancellation
// on first completion — reuses pooled sets, jobs, containers and events, so
// driving the simulation forward allocates nothing at all. The same bound
// gates CI via the allocation-gates step and cmd/paldia-bench -gate.

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestCloneDispatchCancelAllocFree(t *testing.T) {
	skipIfRace(t)
	rng := sim.NewRNG(7)
	tr := trace.Poisson(rng, 80, 120*time.Second)
	cfg := Config{
		Model:  model.MustByName("ResNet 50"),
		Trace:  tr,
		Scheme: NewPaldiaCloneK(2, false),
		Seed:   7,
	}
	ru := Start(cfg)
	// Warm the free lists: sets, jobs, containers, engine arena.
	ru.StepTo(30 * time.Second)
	now := ru.Now()
	step := 250 * time.Millisecond
	allocs := testing.AllocsPerRun(100, func() {
		now += step
		ru.StepTo(now)
	})
	if allocs != 0 {
		t.Fatalf("steady-state clone dispatch allocates %.1f objects per %v step, want 0", allocs, step)
	}
}

package core

import (
	"testing"
	"time"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

func multiWorkloads(seed uint64, dur time.Duration) []Workload {
	rng := sim.NewRNG(seed)
	return []Workload{
		{Model: model.MustByName("SENet 18"), Trace: trace.Stable(rng.Child("a"), 300, dur)},
		{Model: model.MustByName("DenseNet 121"), Trace: trace.Stable(rng.Child("b"), 80, dur)},
	}
}

func TestRunMultiServesAllTenants(t *testing.T) {
	ws := multiWorkloads(1, 2*time.Minute)
	res := RunMulti(MultiConfig{Workloads: ws, Scheme: NewPaldia()})
	if len(res.PerWorkload) != 2 {
		t.Fatalf("collectors = %d, want 2", len(res.PerWorkload))
	}
	for i, c := range res.PerWorkload {
		if c.Count() != ws[i].Trace.Count() {
			t.Fatalf("tenant %d served %d of %d", i, c.Count(), ws[i].Trace.Count())
		}
	}
	if res.SLOCompliance < 0.9 {
		t.Fatalf("combined compliance %.3f too low for stable traffic", res.SLOCompliance)
	}
	if res.Cost <= 0 {
		t.Fatal("zero cost")
	}
}

func TestRunMultiDeterministic(t *testing.T) {
	cfg := MultiConfig{Workloads: multiWorkloads(2, time.Minute), Scheme: NewPaldia()}
	a := RunMulti(cfg)
	// Traces are shared pointers, so rebuild the config identically.
	b := RunMulti(MultiConfig{Workloads: multiWorkloads(2, time.Minute), Scheme: NewPaldia()})
	if a.SLOCompliance != b.SLOCompliance || a.Cost != b.Cost || a.Switches != b.Switches {
		t.Fatalf("multi-run not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunMultiAggregateHardwareCoversAllTenants(t *testing.T) {
	// A heavy LLM tenant forces brawnier shared hardware than the light
	// vision tenant alone would need.
	rng := sim.NewRNG(3)
	dur := 2 * time.Minute
	light := Workload{Model: model.MustByName("MobileNet"), Trace: trace.Stable(rng.Child("l"), 50, dur)}
	heavy := Workload{Model: model.MustByName("BERT"), Trace: trace.Stable(rng.Child("h"), 6, dur)}

	lightOnly := RunMulti(MultiConfig{Workloads: []Workload{light}, Scheme: NewPaldia()})
	both := RunMulti(MultiConfig{Workloads: []Workload{light, heavy}, Scheme: NewPaldia()})

	costOf := func(held map[string]time.Duration) float64 {
		total := 0.0
		for name, d := range held {
			hw, _ := hardware.ByName(name)
			total += hw.CostPerSecond() * d.Seconds()
		}
		return total
	}
	if costOf(both.HeldBySpec) <= costOf(lightOnly.HeldBySpec) {
		t.Fatalf("adding a heavy tenant did not raise hardware spend: %v vs %v",
			both.HeldBySpec, lightOnly.HeldBySpec)
	}
	if both.SLOCompliance < 0.9 {
		t.Fatalf("combined compliance %.3f with heavy tenant", both.SLOCompliance)
	}
}

func TestRunMultiPinnedNode(t *testing.T) {
	m60, _ := hardware.ByName("M60")
	res := RunMulti(MultiConfig{
		Workloads:       multiWorkloads(4, time.Minute),
		Scheme:          NewOfflineHybrid(m60, 0.3),
		InitialHardware: &m60,
	})
	if len(res.HeldBySpec) != 1 {
		t.Fatalf("pinned multi-run held %v", res.HeldBySpec)
	}
}

func TestRunMultiInterferenceAcrossTenants(t *testing.T) {
	// Co-located tenants on a pinned cheap GPU must show higher tail
	// latency than either tenant alone on the same node: cross-model
	// contention is modelled.
	m60, _ := hardware.ByName("M60")
	dur := 2 * time.Minute
	mk := func(seed uint64) []Workload { return multiWorkloads(seed, dur) }

	alone := RunMulti(MultiConfig{
		Workloads:       mk(5)[:1],
		Scheme:          NewMPSOnly(m60, "(M60)"),
		InitialHardware: &m60,
	})
	both := RunMulti(MultiConfig{
		Workloads:       mk(5),
		Scheme:          NewMPSOnly(m60, "(M60)"),
		InitialHardware: &m60,
	})
	p99Alone := alone.PerWorkload[0].Percentile(99)
	p99Both := both.PerWorkload[0].Percentile(99)
	if p99Both <= p99Alone {
		t.Fatalf("co-tenancy did not raise P99: alone %v, both %v", p99Alone, p99Both)
	}
}

package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/predict"
	"repro/internal/trace"
)

// Validate reports whether the config describes a runnable simulation.
// Zero-valued knobs are legal (applyDefaults fills them); what Validate
// rejects is the nonsense a default cannot repair: missing workload, trace
// or scheme, negative time constants, non-finite host factors, and failure
// injection with no outage duration. Run does not call Validate — a
// malformed config panics as it always has — but config-constructing code
// (and the fuzzer) can reject bad inputs up front with a named reason.
func (c Config) Validate() error {
	var errs []error
	if c.Model.Name == "" {
		errs = append(errs, errors.New("core: Model is unset"))
	}
	if c.Trace == nil && c.Stream == nil {
		errs = append(errs, errors.New("core: Trace and Stream are both nil"))
	}
	if c.Scheme.Policy == nil {
		errs = append(errs, errors.New("core: Scheme has no policy (use a New* constructor)"))
	}
	if c.Scheme.Clairvoyant && c.Trace == nil && c.Stream != nil {
		if _, ok := trace.Materialized(c.Stream); !ok {
			errs = append(errs, errors.New(
				"core: clairvoyant scheme needs a materialized trace (set Trace, or a Stream implementing trace.Materializer)"))
		}
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"SLO", c.SLO},
		{"DispatchWindow", c.DispatchWindow},
		{"MonitorInterval", c.MonitorInterval},
		{"Horizon", c.Horizon},
		{"HWLead", c.HWLead},
		{"ObserveWindow", c.ObserveWindow},
		{"KeepAlive", c.KeepAlive},
		{"FailureEvery", c.FailureEvery},
		{"FailureDuration", c.FailureDuration},
		{"SampleEvery", c.SampleEvery},
		{"RevokeEvery", c.RevokeEvery},
		{"RevokeNotice", c.RevokeNotice},
	} {
		if d.v < 0 {
			errs = append(errs, fmt.Errorf("core: %s is negative (%v)", d.name, d.v))
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"HostFactorCPU", c.HostFactorCPU},
		{"HostFactorGPU", c.HostFactorGPU},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			errs = append(errs, fmt.Errorf("core: %s is not a usable factor (%v)", f.name, f.v))
		}
	}
	if c.MaxNodes < 0 {
		errs = append(errs, fmt.Errorf("core: MaxNodes is negative (%d)", c.MaxNodes))
	}
	if c.Forecaster != "" {
		if _, err := predict.NewByName(c.Forecaster, time.Second); err != nil {
			errs = append(errs, err)
		}
	}
	if c.FailureEvery > 0 && c.FailureDuration <= 0 {
		errs = append(errs, errors.New("core: FailureEvery without a positive FailureDuration"))
	}
	if math.IsNaN(c.SpotDiscount) || c.SpotDiscount < 0 || c.SpotDiscount >= 1 {
		errs = append(errs, fmt.Errorf("core: SpotDiscount must be in [0,1) (%v)", c.SpotDiscount))
	}
	if math.IsNaN(c.SpotFraction) || c.SpotFraction < 0 || c.SpotFraction > 1 {
		errs = append(errs, fmt.Errorf("core: SpotFraction must be in [0,1] (%v)", c.SpotFraction))
	}
	if c.RevokeEvery > 0 {
		if c.RevokeNotice <= 0 {
			errs = append(errs, errors.New("core: RevokeEvery without a positive RevokeNotice"))
		}
		if c.SpotDiscount <= 0 || c.SpotFraction <= 0 {
			errs = append(errs, errors.New("core: RevokeEvery without spot nodes (set SpotDiscount and SpotFraction)"))
		}
	}
	rd := c.Scheme.Redundancy
	if rd.CloneK != 0 && (rd.CloneK < 2 || rd.CloneK > 3) {
		errs = append(errs, fmt.Errorf("core: Redundancy.CloneK must be 0 or in [2,3] (%d)", rd.CloneK))
	}
	if rd.HedgePct != 0 && !(rd.HedgePct > 0 && rd.HedgePct <= 100) {
		errs = append(errs, fmt.Errorf("core: Redundancy.HedgePct must be in (0,100] (%v)", rd.HedgePct))
	}
	if rd.CloneK >= 2 && rd.HedgePct > 0 {
		errs = append(errs, errors.New("core: Redundancy.CloneK and HedgePct are mutually exclusive"))
	}
	if rd.Active() && c.MaxNodes > 1 {
		errs = append(errs, errors.New("core: redundancy schemes do not compose with MaxNodes scale-out"))
	}
	return errors.Join(errs...)
}

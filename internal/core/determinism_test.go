package core

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/invariant"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Seed-determinism contract: the same Config (trace realized from the same
// seed) run twice yields a byte-identical Result — every headline number,
// the full per-request record stream, the node-residency breakdown and the
// switch timeline — and byte-identical telemetry exports. CI runs this under
// -race -cpu 1,4, so any scheduling-order dependence or data race in the
// hot path breaks it loudly. Failure injection and the invariant checker are
// both on: neither may introduce nondeterminism.
func TestRunIsSeedDeterministic(t *testing.T) {
	type snapshot struct {
		res    Result
		csv    bytes.Buffer
		spans  bytes.Buffer
		series bytes.Buffer
	}
	run := func() *snapshot {
		rec := telemetry.NewRecorder()
		chk := invariant.New()
		var s snapshot
		s.res = Run(Config{
			Model:           model.MustByName("ResNet 50"),
			Trace:           trace.Azure(sim.NewRNG(42), 250, 2*time.Minute),
			Scheme:          NewPaldia(),
			Seed:            42,
			Telemetry:       rec,
			SampleEvery:     time.Second,
			FailureEvery:    40 * time.Second,
			FailureDuration: 10 * time.Second,
			Invariants:      chk,
		})
		if err := chk.Err(); err != nil {
			t.Fatalf("determinism run not invariant-clean:\n%v", err)
		}
		if err := s.res.Collector.WriteCSV(&s.csv); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteSpansJSONL(&s.spans); err != nil {
			t.Fatal(err)
		}
		if err := rec.Series().WriteCSV(&s.series); err != nil {
			t.Fatal(err)
		}
		return &s
	}
	a, b := run(), run()

	// Result fields, with the Collector pointer masked: its contents are
	// compared byte-for-byte through the CSV export below.
	ra, rb := a.res, b.res
	ra.Collector, rb.Collector = nil, nil
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("Results differ between identically seeded runs:\n%+v\nvs\n%+v", ra, rb)
	}
	if a.res.FailuresInjected == 0 {
		t.Error("failure injection never fired; the determinism check lost coverage")
	}
	if !bytes.Equal(a.csv.Bytes(), b.csv.Bytes()) {
		t.Error("per-request CSV differs between identically seeded runs")
	}
	if !bytes.Equal(a.spans.Bytes(), b.spans.Bytes()) {
		t.Error("spans JSONL differs between identically seeded runs")
	}
	if !bytes.Equal(a.series.Bytes(), b.series.Bytes()) {
		t.Error("series CSV differs between identically seeded runs")
	}
	if a.csv.Len() == 0 || a.spans.Len() == 0 || a.series.Len() == 0 {
		t.Fatalf("exports empty: csv=%d spans=%d series=%d bytes",
			a.csv.Len(), a.spans.Len(), a.series.Len())
	}
}

// Multi-tenant runs carry the same contract: identical seeds, identical
// per-tenant results.
func TestRunMultiIsSeedDeterministic(t *testing.T) {
	run := func() MultiResult {
		chk := invariant.New()
		res := RunMulti(MultiConfig{
			Workloads: []Workload{
				{Model: model.MustByName("ResNet 50"), Trace: trace.Azure(sim.NewRNG(5), 150, time.Minute)},
				{Model: model.MustByName("MobileNet"), Trace: trace.Azure(sim.NewRNG(6), 200, time.Minute)},
			},
			Scheme:     NewPaldia(),
			Invariants: chk,
		})
		if err := chk.Err(); err != nil {
			t.Fatalf("multi-tenant determinism run not invariant-clean:\n%v", err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.PerWorkload) != len(b.PerWorkload) {
		t.Fatalf("tenant counts differ: %d vs %d", len(a.PerWorkload), len(b.PerWorkload))
	}
	for i := range a.PerWorkload {
		var ca, cb bytes.Buffer
		if err := a.PerWorkload[i].WriteCSV(&ca); err != nil {
			t.Fatal(err)
		}
		if err := b.PerWorkload[i].WriteCSV(&cb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
			t.Errorf("tenant %d: per-request CSV differs between identically seeded runs", i)
		}
		if ca.Len() == 0 {
			t.Errorf("tenant %d: empty record stream", i)
		}
	}
	ra, rb := a, b
	ra.PerWorkload, rb.PerWorkload = nil, nil
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("MultiResults differ between identically seeded runs:\n%+v\nvs\n%+v", ra, rb)
	}
}

package core

import (
	"time"

	"repro/internal/autoscale"
	"repro/internal/batch"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/device"
	"repro/internal/hardware"
	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Defaults for the serving runtime's time constants.
const (
	// DefaultSLO is the paper's 200 ms target for every workload.
	DefaultSLO = 200 * time.Millisecond
	// DefaultDispatchWindow is the batching/dispatch cadence.
	DefaultDispatchWindow = 25 * time.Millisecond
	// DefaultMonitorInterval is the Hardware Selection cadence (Algorithm
	// 1's Monitor_Interval); with Paldia's wait_limit of 3 a switch commits
	// after ~3 intervals of consistent mismatch.
	DefaultMonitorInterval = 250 * time.Millisecond
	// DefaultHorizon is the prediction lookahead (~4 s, the hardware
	// acquisition lead time).
	DefaultHorizon = 4 * time.Second
	// DefaultObserveWindow is the rate-observation window feeding the EWMA.
	DefaultObserveWindow = 500 * time.Millisecond
	// DefaultDrain is how long after the trace ends in-flight work may
	// complete.
	DefaultDrain = 30 * time.Second
	// DefaultHWLead is the lookahead used when selecting hardware: it covers
	// the decision debounce, VM procurement, the exposed tail of container
	// spawning, and one further re-decision cycle, so that the node chosen
	// mid-ramp is still capable when traffic keeps building (the paper
	// chooses its pool "so as to allow enough time to acquire the
	// hardware").
	DefaultHWLead = 15 * time.Second
	// swapTail is the exposed part of container spawning on a newly
	// procured node; the rest overlaps the VM launch.
	swapTail = time.Second
	// laneCap bounds the time-share jobs handed to a device ahead of
	// execution; the rest of the backlog waits in the batcher, where it can
	// be rerouted if the scheme switches hardware. (Spatial submissions are
	// deliberately unbounded — MPS-only schemes consolidate every batch onto
	// the GPU, which is exactly their documented failure mode.)
	laneCap = 3
	// minHold blocks switches to *cheaper* hardware within this span of the
	// last switch, preventing downgrade thrash right after a surge; upgrades
	// are never delayed. Downgrades additionally require a longer run of
	// consistent mismatches (downgradeFactor x the policy's wait limit).
	minHold         = 20 * time.Second
	downgradeFactor = 4
)

// MetricsMode selects the run's metrics aggregator.
type MetricsMode int

const (
	// MetricsExact keeps every Record in a metrics.Collector — exact
	// percentiles, CDFs and tail breakdowns, O(N) memory. The default.
	MetricsExact MetricsMode = iota
	// MetricsOnline uses the constant-memory streaming aggregator: counts,
	// compliance, cost and goodput are exact; P50/P95/P99 come from P²
	// sketches. Result.Collector is nil, Result.Online is set.
	MetricsOnline
)

// Config describes one serving simulation.
type Config struct {
	Model  model.Spec
	Trace  *trace.Trace
	Scheme Scheme

	// Stream, when set, supplies arrivals lazily instead of Trace: the
	// runner pulls one arrival at a time, so multi-million-request traces
	// never materialize. When both are set, Stream wins. Clairvoyant schemes
	// still need a materialized trace (set Trace, or use a Stream that
	// implements trace.Materializer).
	Stream trace.Stream

	// Metrics selects the aggregator; the zero value is the exact Collector.
	Metrics MetricsMode

	// Aggregator, when set, overrides Metrics: the run feeds this aggregator
	// instead of constructing its own. The live observability plane passes
	// the metrics.Online it also serves mid-run snapshots from, so /metrics
	// reads the very sketch the simulation is filling. The aggregator must
	// be fresh (single-run) and judge against the same SLO as the config.
	Aggregator metrics.Aggregator

	// Pacer, when set, observes every advance of the virtual clock — once
	// per distinct instant, before the events there fire — and may block:
	// the wall-clock replay driver (internal/obs) sleeps here to map virtual
	// time onto real time at a configured speedup. It must not mutate
	// simulation state, so the run's trajectory and outputs are identical
	// with or without it; nil costs one branch per clock advance.
	Pacer func(now time.Duration)

	// SLO defaults to 200 ms.
	SLO time.Duration
	// Seed drives all randomness (trace realization happens before the
	// runner; this seed only matters if the runner ever needs randomness).
	Seed uint64

	// DispatchWindow, MonitorInterval, Horizon, HWLead, ObserveWindow and
	// KeepAlive default to the package constants /
	// container.DefaultKeepAlive.
	DispatchWindow  time.Duration
	MonitorInterval time.Duration
	Horizon         time.Duration
	HWLead          time.Duration
	ObserveWindow   time.Duration
	KeepAlive       time.Duration

	// HostFactorCPU/GPU inflate execution on each node class (mixed-workload
	// study); zero means no inflation.
	HostFactorCPU float64
	HostFactorGPU float64

	// FailureEvery/FailureDuration inject node failures (node-failure
	// study); zero disables.
	FailureEvery    time.Duration
	FailureDuration time.Duration

	// SpotDiscount and SpotFraction turn serving nodes into spot
	// (preemptible) capacity: spot nodes bill at (1-SpotDiscount) of the
	// catalog rate and are the targets of revocation. With a redundancy
	// scheme, SpotFraction of the hardware pools (rounded, the costlier
	// ones first) run on spot; without one, any positive fraction makes
	// every serving node spot. Zero for either disables spot entirely.
	SpotDiscount float64
	SpotFraction float64

	// RevokeEvery injects a spot revocation on this cadence: the targeted
	// node gets RevokeNotice of drain time, then whatever is still running
	// is killed and the node is released (never to recover). Zero disables.
	RevokeEvery  time.Duration
	RevokeNotice time.Duration

	// Forecaster selects the rate-forecasting model by name ("ewma",
	// "seasonal", "percentile", "p99" — see predict.Names). Empty means
	// "ewma", the paper's model. Ignored for clairvoyant schemes and when
	// NewPredictor is set.
	Forecaster string

	// NewPredictor overrides the rate forecaster with an arbitrary
	// constructor (the paper's is "a lightweight, pluggable model (EWMA in
	// our case)"). Ignored for clairvoyant schemes. Nil uses Forecaster.
	NewPredictor func() predict.Predictor

	// UniformBatching disables the paper's flexible batch sizes: requests
	// dispatch only as full preferred-size batches, with leftovers flushed
	// once the oldest has waited a quarter of the SLO. The paper argues
	// uniform batching "would hinder" the hybrid scheduler; this flag is the
	// ablation that measures it.
	UniformBatching bool

	// MaxNodes enables horizontal scale-out beyond the paper: when even the
	// selected node type cannot sustain the forecast rate alone, up to this
	// many replicas of it are procured and load is spread across them.
	// Zero or one keeps the paper's single-serving-node behaviour.
	MaxNodes int

	// InitialHardware overrides the warm-start node choice.
	InitialHardware *hardware.Spec

	// OnEvent, when set, receives coarse runtime events (hardware switches,
	// cold starts, failovers) as strings. It is served through the typed
	// telemetry bus via telemetry.AdaptOnEvent; new consumers should set
	// Telemetry instead.
	OnEvent func(t time.Duration, kind, detail string)

	// Telemetry, when set, receives every typed runtime event: per-request
	// lifecycle (arrived/batched/dispatched/queued/exec/completed), container
	// and node activity, hardware selection, and Sample observations when
	// SampleEvery is set. Nil disables the layer at the cost of one branch
	// per emission site.
	Telemetry telemetry.Sink

	// SampleEvery is the virtual-time cadence at which runtime gauges (queue
	// depth, lane backlog, container counts, predicted vs observed RPS,
	// accrued cost, ...) are sampled into the Telemetry sink. Zero disables
	// sampling.
	SampleEvery time.Duration

	// Invariants, when set, audits the whole simulation while it runs:
	// request conservation, device capacity, container lifecycle algebra,
	// node/billing monotonicity, and span telescoping (see package
	// invariant). A checker is single-run: pass a fresh one per Run. Nil
	// disables checking at the cost of one branch per hook site.
	Invariants *invariant.Checker
}

func (c *Config) applyDefaults() {
	if c.SLO == 0 {
		c.SLO = DefaultSLO
	}
	if c.DispatchWindow == 0 {
		c.DispatchWindow = DefaultDispatchWindow
	}
	if c.MonitorInterval == 0 {
		c.MonitorInterval = DefaultMonitorInterval
	}
	if c.Horizon == 0 {
		c.Horizon = DefaultHorizon
	}
	if c.HWLead == 0 {
		c.HWLead = DefaultHWLead
	}
	if c.ObserveWindow == 0 {
		c.ObserveWindow = DefaultObserveWindow
	}
	if c.KeepAlive == 0 {
		c.KeepAlive = container.DefaultKeepAlive
	}
}

// Result is everything one run produces.
type Result struct {
	Scheme string
	Model  string

	// Collector is the exact aggregator (MetricsExact runs); nil when the
	// run used MetricsOnline, in which case Online is set instead.
	Collector *metrics.Collector
	// Online is the constant-memory aggregator (MetricsOnline runs).
	Online *metrics.Online

	Requests      int
	SLOCompliance float64
	P50, P99      time.Duration
	MeanLatency   time.Duration

	// Cost is total dollars; CPUCost/GPUCost split it by node class.
	Cost, CPUCost, GPUCost float64
	EnergyWh, AvgPowerW    float64
	UtilCPU, UtilGPU       float64

	// Boots counts container cold boots; SyncColdStarts the request-blocking
	// subset.
	Boots, SyncColdStarts uint64
	// Switches counts hardware reconfigurations.
	Switches int
	// FailedRequests counts requests lost to node failures.
	FailedRequests int
	// FailuresInjected counts induced node failures.
	FailuresInjected int
	// HeldBySpec is the node-residency breakdown: total held time per node
	// type.
	HeldBySpec map[string]time.Duration
	// SwitchHistory is the primary-node timeline: one entry per serving
	// node, in order, starting with the warm-start node.
	SwitchHistory []SwitchEvent
}

// SwitchEvent records the primary node changing to a new node type.
type SwitchEvent struct {
	// At is when the node began serving.
	At time.Duration
	// Spec is the node type's instance name.
	Spec string
}

// servingNode is a procured node actively (or about to be) serving.
type servingNode struct {
	node  *cluster.Node
	pool  *container.Pool
	entry profile.Entry
	ctl   *autoscale.Controller

	queuedOutstanding int
	laneHeld          bool     // a lane-container claim exists
	laneReady         bool     // the lane container is serving
	lanePending       []func() // lane submissions buffered until the claim lands
}

type runner struct {
	cfg Config
	eng *sim.Engine
	clu *cluster.Cluster
	bat batch.Batcher
	col metrics.Aggregator
	arr trace.Stream // arrival source (cfg.Stream, or cfg.Trace adapted)

	// tel is the combined telemetry sink (Config.Telemetry plus the adapted
	// legacy OnEvent); nil when both are unset. jobSeq numbers device jobs
	// from 1 so spans can be joined to job-level events; it stays 0 (all jobs
	// untracked) when telemetry is off.
	tel    telemetry.Sink
	jobSeq int64

	cur      *servingNode
	procured bool // a primary procurement is in flight

	// red, when set, replaces the split-dispatch and hardware-selection
	// paths with redundant dispatch over static hardware pools (clone-to-k
	// or hedging; see redundancy.go). Nil for every non-redundant scheme,
	// leaving their event sequences untouched.
	red *redundancy

	// scale-out state (MaxNodes > 1)
	replicas       []*servingNode
	replicaPending int
	lastScale      time.Duration

	// predictAt is the confidence-gated forecast: below the confidence
	// floor it returns the observed rate (see setupPredictor).
	predictAt  func(now, horizon time.Duration) float64
	predictRPS func(now time.Duration) float64
	onArrive   func(now time.Duration)

	// observed-rate bookkeeping
	obsWindowStart time.Duration
	obsCount       int
	obsRate        float64

	waitCtr  int
	switches int
	failures int
	failedRq int
	history  []SwitchEvent

	arrived  int // arrivals fed to the batcher so far
	end      time.Duration
	lastSwap time.Duration

	// stScratch backs the *State handed to policies. stateWithRates rebuilds
	// it from scratch on every call and no caller retains the pointer past
	// the policy invocation, so one per runner keeps the monitor and dispatch
	// paths allocation-free. nodesScratch likewise backs healthyNodes.
	stScratch    State
	nodesScratch []*servingNode

	// jobPool recycles per-dispatch jobState values (device job + request
	// batch + bound closures); sizesScratch backs the per-window batch-size
	// partition. Together they make the dispatch/complete cycle
	// allocation-free in steady state.
	jobPool      []*jobState
	sizesScratch []int

	// Tick closures bound once at Start: rescheduling with a method value
	// (r.dispatchTick) allocates a fresh closure per tick.
	dispatchTickFn func()
	monitorTickFn  func()
	failureTickFn  func()
	revokeTickFn   func()

	boots, syncColds uint64 // accumulated from retired pools
}

// Run executes the configured simulation and returns its results. It is
// exactly Start followed by Finish; the phased form exists so a caller (the
// sharded executor in internal/shard) can interleave StepTo calls with other
// lanes' — Engine.Run(a); Engine.Run(b) fires the identical event sequence as
// Engine.Run(b) for a < b, so the phased run is byte-identical to this one.
func Run(cfg Config) Result {
	return Start(cfg).Finish()
}

// Running is an in-flight simulation between Start and Finish. It is not safe
// for concurrent use — one goroutine drives one Running — but distinct
// Running values share nothing and may be driven from distinct goroutines.
type Running struct {
	r    *runner
	done bool
}

// Start constructs the simulation — cluster, warm-start node, arrival stream,
// dispatch/monitor/failure ticks — without firing any timed event past t=0.
// Drive it with StepTo and settle it with Finish, or call Finish directly for
// the whole run.
func Start(cfg Config) *Running {
	cfg.applyDefaults()
	r := &runner{
		cfg: cfg,
		eng: sim.NewEngine(),
	}
	r.arr = cfg.Stream
	if r.arr == nil {
		r.arr = cfg.Trace.Stream()
	}
	r.end = r.arr.Duration()
	switch {
	case cfg.Aggregator != nil:
		r.col = cfg.Aggregator
	case cfg.Metrics == MetricsOnline:
		r.col = metrics.NewOnline(cfg.SLO, r.end, metrics.DefaultGoodputWindow)
	default:
		r.col = metrics.NewCollector(cfg.SLO)
	}
	if cfg.Pacer != nil {
		r.eng.SetOnAdvance(cfg.Pacer)
	}
	r.clu = cluster.New(r.eng)
	r.tel = telemetry.Combine(cfg.Telemetry, telemetry.AdaptOnEvent(cfg.OnEvent),
		cfg.Invariants.AsSink())
	r.clu.Sink = r.tel
	if cfg.Invariants != nil {
		r.eng.SetOnFire(cfg.Invariants.Tick)
		r.clu.Check = cfg.Invariants
	}
	r.setupPredictor()
	if cfg.Scheme.Redundancy.Active() {
		r.red = newRedundancy(r)
	}
	r.warmStart()
	if r.tel != nil && cfg.SampleEvery > 0 {
		telemetry.NewSampler(r.eng, r.tel, cfg.SampleEvery, r.gauges()).Start()
	}
	r.scheduleArrivals()
	r.dispatchTickFn = r.dispatchTick
	r.monitorTickFn = r.monitorTick
	r.failureTickFn = r.failureTick
	r.eng.Schedule(cfg.DispatchWindow, r.dispatchTickFn)
	r.eng.Schedule(cfg.MonitorInterval, r.monitorTickFn)
	if cfg.FailureEvery > 0 {
		r.eng.Schedule(cfg.FailureEvery, r.failureTickFn)
	}
	if cfg.RevokeEvery > 0 {
		r.revokeTickFn = r.revokeTick
		r.eng.Schedule(cfg.RevokeEvery, r.revokeTickFn)
	}
	return &Running{r: r}
}

// Now returns the simulation's current virtual time.
func (ru *Running) Now() time.Duration { return ru.r.eng.Now() }

// End returns the arrival stream's duration (the trace end).
func (ru *Running) End() time.Duration { return ru.r.end }

// Horizon is the virtual time Finish drives the run to before settling:
// trace end plus the drain window. StepTo clamps to it.
func (ru *Running) Horizon() time.Duration { return ru.r.end + DefaultDrain }

// Count returns the number of request outcomes recorded so far.
func (ru *Running) Count() int { return ru.r.col.Count() }

// StepTo fires every event up to and including virtual time t (clamped to
// Horizon), leaving the clock at min(t, Horizon). Calls with t <= Now are
// no-ops, so any monotone schedule of StepTo calls ending at Horizon fires
// exactly the event sequence one Finish would.
func (ru *Running) StepTo(t time.Duration) {
	if h := ru.Horizon(); t > h {
		t = h
	}
	ru.r.eng.Run(t)
}

// Finish drives the simulation to Horizon, keeps simulating while backlogged
// requests still drain, records anything still unserved as failed, and returns the
// run's Result. It must be called exactly once.
func (ru *Running) Finish() Result {
	if ru.done {
		panic("core: Running.Finish called twice")
	}
	ru.done = true
	r := ru.r
	cfg := r.cfg
	r.eng.Run(r.end + DefaultDrain)
	// Overloaded runs can still hold deep backlogs at the drain bound; keep
	// simulating until every request completes (so conservation holds and
	// stragglers are recorded with their true, awful latencies), giving up
	// only if a whole chunk passes without any progress.
	for guard := 0; r.col.Count() < r.arrived && guard < 720; guard++ {
		before := r.col.Count()
		r.eng.Run(r.eng.Now() + 60*time.Second)
		if r.col.Count() == before {
			break
		}
	}
	// Anything still unserved (e.g. no healthy node ever came back) is
	// recorded as failed.
	for _, req := range r.bat.TakeAll() {
		r.failedRq++
		if r.tel != nil {
			e := telemetry.Ev(r.eng.Now(), telemetry.Failed)
			e.Req = int64(req.ID)
			r.tel.Event(e)
		}
		r.col.Add(metrics.Record{
			Arrival: req.Arrival,
			Latency: r.eng.Now() - req.Arrival,
			Failed:  true,
		})
	}
	res := r.results()
	if cfg.Invariants != nil {
		cfg.Invariants.CheckResult(r.eng.Now(), res.Requests, res.FailedRequests,
			res.FailuresInjected)
	}
	return res
}

func (r *runner) setupPredictor() {
	if r.cfg.Scheme.Clairvoyant {
		t := r.cfg.Trace
		if t == nil {
			var ok bool
			if t, ok = trace.Materialized(r.arr); !ok {
				panic("core: clairvoyant scheme needs a materialized trace " +
					"(set Trace, or a Stream implementing trace.Materializer)")
			}
		}
		c := predict.NewClairvoyant(t)
		r.predictAt = c.PredictRPS
		r.onArrive = func(time.Duration) {}
	} else {
		p := newForecaster(r.cfg)
		obs := predict.NewWindowObserver(p, r.cfg.ObserveWindow)
		// The confidence gate lives at the source, so every consumer of the
		// forecast — hardware selection, the container autoscaler, telemetry
		// gauges — sees the same gated value: when the forecaster reports
		// confidence below the floor, the forecast is replaced with the
		// reactive observed rate (see DESIGN.md §10). Confidence is read
		// after PredictRPS flushed windows up to now, so it reflects the
		// same forecaster state as the forecast it gates.
		r.predictAt = func(now, horizon time.Duration) float64 {
			pred := obs.PredictRPS(now, horizon)
			if obs.Confidence() < predict.ConfidenceFloor {
				return r.observedRPS(now)
			}
			return pred
		}
		r.onArrive = obs.Arrive
	}
	r.predictRPS = func(now time.Duration) float64 {
		return r.predictAt(now, r.cfg.Horizon)
	}
}

// newForecaster resolves the configured forecasting model: the NewPredictor
// hook wins, then the Forecaster name, then the paper's EWMA. An unknown
// name panics — Config.Validate reports it gracefully up front.
func newForecaster(cfg Config) predict.Forecaster {
	if cfg.NewPredictor != nil {
		return cfg.NewPredictor()
	}
	f, err := predict.NewByName(cfg.Forecaster, cfg.ObserveWindow)
	if err != nil {
		panic("core: " + err.Error())
	}
	return f
}

// warmStart brings up the initial node with warm containers, as a system
// already in service would have.
func (r *runner) warmStart() {
	if r.red != nil {
		r.red.warmStart()
		return
	}
	var spec hardware.Spec
	if r.cfg.InitialHardware != nil {
		spec = *r.cfg.InitialHardware
	} else {
		initRate := r.arr.InitRPS(2 * time.Second)
		st := r.stateWithRates(initRate, initRate)
		spec = r.cfg.Scheme.Policy.DesiredHardware(st)
	}
	n := r.acquire(spec)
	n.pool.AddWarm(2)
	r.cur = n
	n.ctl.Start()
	r.history = append(r.history, SwitchEvent{At: 0, Spec: spec.Name})
}

// spotDiscount is the discount plain-path acquisitions run at: the
// configured one when spot serving is enabled, else zero (plain on-demand —
// AcquireSpot at discount 0 is exactly Acquire).
func (r *runner) spotDiscount() float64 {
	if r.cfg.SpotDiscount > 0 && r.cfg.SpotFraction > 0 {
		return r.cfg.SpotDiscount
	}
	return 0
}

// acquire procures a node immediately and wires its pool and autoscaler.
func (r *runner) acquire(spec hardware.Spec) *servingNode {
	node := r.clu.AcquireSpot(spec, profile.MaxResidentJobs(r.cfg.Model, spec), r.spotDiscount())
	return r.wireNode(node)
}

func (r *runner) wireNode(node *cluster.Node) *servingNode {
	r.applyHostFactor(node)
	cold := container.CPUColdStart
	if node.Spec.IsGPU() {
		cold = container.GPUColdStart
	}
	if r.cfg.Scheme.InstantProcure {
		cold = 0
	}
	sn := &servingNode{
		node:  node,
		pool:  container.NewPool(r.eng, cold, r.cfg.KeepAlive),
		entry: profile.Lookup(r.cfg.Model, node.Spec),
	}
	if r.tel != nil {
		sn.pool.Sink = r.tel
		sn.pool.NodeID = node.ID
		sn.pool.Spec = node.Spec.Name
	}
	if r.cfg.Invariants != nil {
		sn.pool.NodeID = node.ID
		sn.pool.Check = r.cfg.Invariants
	}
	// Containers are sized for the batches resident at once: a batch
	// occupies its container for its (possibly inflated) execution time, so
	// the pool target is predicted-rate x residence / batch-size.
	// The controller is started when the node begins serving (swapTo);
	// starting it earlier would race the swap-time pre-warm with slower
	// predictive boots. It forecasts Config.Horizon ahead through the
	// pluggable Forecaster seam.
	sn.ctl = autoscale.NewController(r.eng, sn.pool,
		func(now, horizon time.Duration) float64 { return r.predictAt(now, horizon) },
		func() int { return sn.entry.PreferredBatch },
		residenceOf(sn.entry))
	sn.ctl.Horizon = r.cfg.Horizon
	if r.tel != nil {
		sn.ctl.Sink = r.tel
		sn.ctl.NodeID = node.ID
		sn.ctl.Spec = node.Spec.Name
	}
	return sn
}

// emit sends one control-plane telemetry event; a no-op without a sink.
func (r *runner) emit(kind telemetry.Kind, nodeID int, spec, detail string) {
	if r.tel == nil {
		return
	}
	e := telemetry.Ev(r.eng.Now(), kind)
	e.Node = nodeID
	e.Spec = spec
	e.Detail = detail
	r.tel.Event(e)
}

// curStats reads the primary device's state without perturbing it (see
// device.SampleStats); ok is false when no healthy device is serving.
func (r *runner) curStats() (device.Stats, bool) {
	if r.cur == nil || r.cur.node.Device == nil {
		return device.Stats{}, false
	}
	return r.cur.node.Device.SampleStats(), true
}

// gauges is the sampled-series catalogue for single-workload runs. Every
// reader is side-effect-free so sampling never changes the run's trajectory.
func (r *runner) gauges() []telemetry.Gauge {
	devGauge := func(read func(device.Stats) float64) func() float64 {
		return func() float64 {
			s, ok := r.curStats()
			if !ok {
				return 0
			}
			return read(s)
		}
	}
	return []telemetry.Gauge{
		{Name: "pending_requests", Read: func() float64 { return float64(r.bat.Pending()) }},
		{Name: "predicted_rps", Read: func() float64 { return r.predictRPS(r.eng.Now()) }},
		{Name: "observed_rps", Read: func() float64 { return r.observedRPS(r.eng.Now()) }},
		{Name: "active_jobs", Read: devGauge(func(s device.Stats) float64 { return float64(s.ActiveJobs) })},
		{Name: "lane_queued", Read: devGauge(func(s device.Stats) float64 { return float64(s.LaneQueued) })},
		{Name: "lane_outstanding", Read: func() float64 {
			if r.cur == nil {
				return 0
			}
			return float64(r.cur.queuedOutstanding)
		}},
		{Name: "lane_cap", Read: func() float64 { return laneCap }},
		{Name: "lane_backlog_s", Read: devGauge(func(s device.Stats) float64 { return s.LaneBacklogSolo.Seconds() })},
		{Name: "backlog_s", Read: devGauge(func(s device.Stats) float64 { return s.BacklogSolo.Seconds() })},
		{Name: "fbr_demand", Read: devGauge(func(s device.Stats) float64 { return s.ActiveDemand })},
		{Name: "containers_idle", Read: func() float64 {
			if r.cur == nil {
				return 0
			}
			return float64(r.cur.pool.Idle())
		}},
		{Name: "containers_busy", Read: func() float64 {
			if r.cur == nil {
				return 0
			}
			return float64(r.cur.pool.Busy())
		}},
		{Name: "containers_total", Read: func() float64 {
			if r.cur == nil {
				return 0
			}
			return float64(r.cur.pool.Total())
		}},
		{Name: "cost_usd", Read: func() float64 { return r.clu.TotalCost() }},
		{Name: "nodes", Read: func() float64 { return float64(len(r.clu.ActiveNodes())) }},
	}
}

// residenceOf estimates how long one batch holds a container: the solo
// execution latency with a 2x margin for interference.
func residenceOf(e profile.Entry) time.Duration { return 2 * e.SoloBatch }

// containerTarget is the predictive container requirement for a node at the
// current forecast.
func (r *runner) containerTarget(sn *servingNode) int {
	n := autoscale.PredictiveContainers(r.predictRPS(r.eng.Now()), residenceOf(sn.entry),
		sn.entry.PreferredBatch)
	if n < 2 {
		n = 2
	}
	return n
}

func (r *runner) applyHostFactor(node *cluster.Node) {
	f := r.cfg.HostFactorCPU
	if node.Spec.IsGPU() {
		f = r.cfg.HostFactorGPU
	}
	if f > 1 && node.Device != nil {
		node.Device.SetHostFactor(f)
	}
}

// scheduleArrivals feeds arrivals from the stream one event at a time: one
// pending arrival is held while the engine advances to it, so memory is
// constant regardless of trace size (with a CurveStream, the trace never
// materializes at all).
func (r *runner) scheduleArrivals() {
	pending, ok := r.arr.Next()
	if !ok {
		return
	}
	var fire func()
	fire = func() {
		now := r.eng.Now()
		for pending <= now {
			req := r.bat.Add(pending)
			r.arrived++
			if r.tel != nil {
				e := telemetry.Ev(req.Arrival, telemetry.Arrived)
				e.Req = int64(req.ID)
				r.tel.Event(e)
				e.Kind = telemetry.Batched
				r.tel.Event(e)
			}
			r.onArrive(now)
			r.observeArrival(now)
			if pending, ok = r.arr.Next(); !ok {
				return
			}
		}
		r.eng.ScheduleAt(pending, fire)
	}
	r.eng.ScheduleAt(pending, fire)
}

func (r *runner) observeArrival(now time.Duration) {
	for now >= r.obsWindowStart+r.cfg.ObserveWindow {
		r.obsRate = float64(r.obsCount) / r.cfg.ObserveWindow.Seconds()
		r.obsCount = 0
		r.obsWindowStart += r.cfg.ObserveWindow
	}
	r.obsCount++
}

func (r *runner) observedRPS(now time.Duration) float64 {
	// Roll the window forward even without arrivals so silence decays.
	for now >= r.obsWindowStart+r.cfg.ObserveWindow {
		r.obsRate = float64(r.obsCount) / r.cfg.ObserveWindow.Seconds()
		r.obsCount = 0
		r.obsWindowStart += r.cfg.ObserveWindow
	}
	return r.obsRate
}

func (r *runner) state() *State {
	now := r.eng.Now()
	return r.stateWithRates(r.predictRPS(now), r.observedRPS(now))
}

// stateOf builds the policy state against a specific node's device (the
// primary's state() is the scale-in special case).
func (r *runner) stateOf(sn *servingNode) *State {
	s := r.state()
	if sn == nil || sn == r.cur {
		return s
	}
	s.Current = sn.node.Spec
	s.Entry = sn.entry
	s.ActiveDemand, s.ActiveCompute, s.ActiveJobs = 0, 0, 0
	s.Backlog, s.LaneBacklog = 0, 0
	if dev := sn.node.Device; dev != nil && !dev.Failed() {
		s.ActiveDemand = dev.ActiveDemand()
		s.ActiveCompute = dev.ActiveCompute()
		s.ActiveJobs = dev.ActiveCount()
		s.Backlog = dev.BacklogSolo()
		s.LaneBacklog = dev.LaneBacklogSolo()
	}
	return s
}

func (r *runner) stateWithRates(predicted, observed float64) *State {
	s := &r.stScratch
	*s = State{
		Now:          r.eng.Now(),
		Model:        r.cfg.Model,
		SLO:          r.cfg.SLO,
		PredictedRPS: predicted,
		ObservedRPS:  observed,
		Pending:      r.bat.Pending(),
		Window:       r.cfg.DispatchWindow,
		poolScratch:  s.poolScratch,
		candScratch:  s.candScratch,
	}
	if r.cur != nil {
		s.Current = r.cur.node.Spec
		s.HasCurrent = true
		s.Entry = r.cur.entry
		if dev := r.cur.node.Device; dev != nil && !dev.Failed() {
			s.ActiveDemand = dev.ActiveDemand()
			s.ActiveCompute = dev.ActiveCompute()
			s.ActiveJobs = dev.ActiveCount()
			s.Backlog = dev.BacklogSolo()
			s.LaneBacklog = dev.LaneBacklogSolo()
		}
	}
	return s
}

// --- results -------------------------------------------------------------------

func (r *runner) results() Result {
	if r.cur != nil {
		r.accumulatePool(r.cur.pool)
		for _, rep := range r.replicas {
			r.accumulatePool(rep.pool)
		}
	}
	if r.red != nil {
		for _, p := range r.red.pools {
			if p.sn != nil {
				r.accumulatePool(p.sn.pool)
			}
		}
	}
	cpuCost, gpuCost := r.clu.CostByKind()
	res := Result{
		Scheme:           r.cfg.Scheme.Name(),
		Model:            r.cfg.Model.Name,
		Requests:         r.col.Count(),
		SLOCompliance:    r.col.SLOCompliance(),
		P50:              r.col.Percentile(50),
		P99:              r.col.Percentile(99),
		MeanLatency:      r.col.Mean(),
		Cost:             r.clu.TotalCost(),
		CPUCost:          cpuCost,
		GPUCost:          gpuCost,
		EnergyWh:         r.clu.EnergyWh(),
		AvgPowerW:        r.clu.AvgPowerW(),
		UtilCPU:          r.clu.Utilization(hardware.CPU),
		UtilGPU:          r.clu.Utilization(hardware.GPU),
		Boots:            r.boots,
		SyncColdStarts:   r.syncColds,
		Switches:         r.switches,
		FailedRequests:   r.failedRq,
		FailuresInjected: r.failures,
		HeldBySpec:       r.clu.HeldBySpec(),
		SwitchHistory:    r.history,
	}
	col := r.col
	if tee, ok := col.(*metrics.Tee); ok {
		// A teed run's own aggregator is the primary; the mirror belongs to
		// whoever attached it (the live plane's shared Online).
		col = tee.Primary
	}
	switch col := col.(type) {
	case *metrics.Collector:
		res.Collector = col
	case *metrics.Online:
		res.Online = col
	}
	return res
}

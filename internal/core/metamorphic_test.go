package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Metamorphic properties: relations that must hold between *pairs* of runs
// (or pairs of model evaluations) when the input is transformed in a known
// way. They catch bugs no single-run oracle can — a simulator that is
// self-consistently wrong passes every absolute check but breaks these.

// stretch returns a copy of tr with every arrival instant and the duration
// scaled by k (integer, exact in time.Duration arithmetic).
func stretch(tr *trace.Trace, k int64) *trace.Trace {
	arr := make([]time.Duration, len(tr.Arrivals))
	for i, a := range tr.Arrivals {
		arr[i] = a * time.Duration(k)
	}
	return trace.FromArrivals(tr.Name+"-stretched", arr, tr.Duration*time.Duration(k))
}

// Stretching a trace by k preserves the request count, divides the mean rate
// by exactly k, and maps window counts onto k-times-wider windows exactly.
func TestMetamorphicTraceStretchExactRelations(t *testing.T) {
	tr := shortAzure(11, 300, 2*time.Minute)
	const k = 3
	st := stretch(tr, k)

	if st.Count() != tr.Count() {
		t.Fatalf("stretching changed the request count: %d vs %d", st.Count(), tr.Count())
	}
	if got, want := st.MeanRPS(), tr.MeanRPS()/k; math.Abs(got-want) > 1e-12*want {
		t.Fatalf("stretched MeanRPS %v, want %v/%d = %v", got, tr.MeanRPS(), k, want)
	}
	w := 10 * time.Second
	orig := tr.WindowCounts(w)
	wide := st.WindowCounts(w * k)
	if len(orig) != len(wide) {
		t.Fatalf("window count vectors differ in length: %d vs %d", len(orig), len(wide))
	}
	for i := range orig {
		if orig[i] != wide[i] {
			t.Fatalf("window %d: %d arrivals before stretch, %d after", i, orig[i], wide[i])
		}
	}
}

// Stretching a trace (same work, k× slower) must not lose requests, must
// never *hurt* compliance — the same batches arrive with k× more slack —
// and must not cost more than k× the original: the scheduler may exploit
// the lighter rate with cheaper hardware, but a k×-longer run of the
// original plan is always available to it.
func TestMetamorphicTraceStretchRunRelations(t *testing.T) {
	tr := shortAzure(11, 300, 90*time.Second)
	st := stretch(tr, 2)
	m := model.MustByName("ResNet 50")
	a := Run(Config{Model: m, Trace: tr, Scheme: NewPaldia()})
	b := Run(Config{Model: m, Trace: st, Scheme: NewPaldia()})
	if a.Requests != tr.Count() || b.Requests != st.Count() {
		t.Fatal("requests lost")
	}
	if b.Cost > 2*a.Cost*1.01 {
		t.Fatalf("half the rate over 2x the time cost more than 2x: $%.4f vs $%.4f",
			b.Cost, a.Cost)
	}
	if b.SLOCompliance < a.SLOCompliance-0.01 {
		t.Fatalf("halving the arrival rate hurt compliance: %.3f vs %.3f",
			b.SLOCompliance, a.SLOCompliance)
	}
}

// Tightening the SLO can only shrink the pool of Eq. (1)-capable hardware —
// a node that serves a batch within 100 ms also serves it within 300 ms —
// and Paldia's selection always draws from that pool. This is the paper's
// feasibility argument stated as a metamorphic property of the policy.
// (Neither the *chosen* node's capability nor end-to-end run cost is
// monotone in SLO tightness: choose_best_HW's slack window may legally pick
// a bigger node at a looser target, and a cheaper node drains its backlog
// for longer. Only the pool relation is a theorem.)
func TestMetamorphicSLOTighteningShrinksCapablePool(t *testing.T) {
	m := model.MustByName("ResNet 50")
	policy := NewPaldia().Policy
	fallback := hardware.MostPerformant(hardware.GPU)
	slos := []time.Duration{400 * time.Millisecond, 300 * time.Millisecond,
		200 * time.Millisecond, 150 * time.Millisecond, 100 * time.Millisecond}
	for _, rate := range []float64{10, 50, 150, 400, 900, 2000} {
		var looser []hardware.Spec
		for i, slo := range slos {
			pool := profile.CapablePool(m, rate, slo)
			if len(pool) == 0 {
				t.Fatalf("rate %.0f SLO %v: capable pool empty (fallback contract broken)", rate, slo)
			}
			if i > 0 {
				for _, hw := range pool {
					if hw.Name != fallback.Name && !containsSpec(looser, hw) {
						t.Fatalf("rate %.0f: %s capable at SLO %v but not at looser %v",
							rate, hw.Name, slo, slos[i-1])
					}
				}
			}
			looser = pool
			st := &State{
				Model: m, SLO: slo, Window: DefaultDispatchWindow,
				PredictedRPS: rate, ObservedRPS: rate,
			}
			if spec := policy.DesiredHardware(st); !containsSpec(pool, spec) {
				t.Fatalf("rate %.0f SLO %v: policy chose %s, outside its capable pool",
					rate, slo, spec.Name)
			}
		}
	}
}

func containsSpec(pool []hardware.Spec, hw hardware.Spec) bool {
	for _, p := range pool {
		if p.Name == hw.Name {
			return true
		}
	}
	return false
}

// The contention penalty curve is weakly monotone: more aggregate bandwidth
// demand never speeds anyone up, at every layer of the performance model.
func TestMetamorphicContentionMonotone(t *testing.T) {
	// profile.Penalty: monotone in aggregate demand.
	prev := 0.0
	for d := 0.0; d <= 4.0; d += 0.01 {
		p := profile.Penalty(d)
		if p < prev {
			t.Fatalf("Penalty(%.2f) = %v below Penalty at lower demand %v", d, p, prev)
		}
		if p < 1 {
			t.Fatalf("Penalty(%.2f) = %v speeds execution up", d, p)
		}
		prev = p
	}
	// profile.Slowdown: monotone in the pool total for a fixed own-FBR.
	for _, own := range []float64{0.05, 0.2, 0.5} {
		prev = 0
		for total := own; total <= 4.0; total += 0.01 {
			s := profile.Slowdown(total, own)
			if s < prev {
				t.Fatalf("Slowdown(total=%.2f, own=%.2f) = %v decreased with load", total, own, s)
			}
			prev = s
		}
	}
	// profile.ClientOverhead: more co-resident MPS clients never run faster.
	prevo := 0.0
	for k := 0; k <= 48; k++ {
		o := profile.ClientOverhead(k)
		if o < prevo {
			t.Fatalf("ClientOverhead(%d) = %v below overhead with fewer clients", k, o)
		}
		prevo = o
	}
}

// Equation (1) is weakly monotone in offered load: more outstanding requests
// never finish sooner, whatever the split, and pre-existing device demand
// never helps either.
func TestMetamorphicTMaxMonotoneInLoad(t *testing.T) {
	base := perfmodel.Inputs{
		Solo:      40 * time.Millisecond,
		BatchSize: 8,
		FBR:       0.22,
		SLO:       200 * time.Millisecond,
	}
	for _, y := range []int{0, 4, 16} {
		var prev time.Duration
		for n := y; n <= 160; n += 8 {
			in := base
			in.N = n
			got := perfmodel.TMax(in, y)
			if got < prev {
				t.Fatalf("TMax(N=%d, y=%d) = %v below TMax at lighter load %v", n, y, got, prev)
			}
			prev = got
		}
	}
	// Existing demand: a busier device can only slow the new work down.
	var prev time.Duration
	for d := 0.0; d <= 2.0; d += 0.05 {
		in := base
		in.N = 32
		in.ExistingDemand = d
		got := perfmodel.TMax(in, 8)
		if got < prev {
			t.Fatalf("TMax with existing demand %.2f = %v beat an idler device's %v", d, got, prev)
		}
		prev = got
	}
}

// Package core implements the request-serving schemes the paper evaluates:
// Paldia itself (Hardware Selection per Algorithm 1 plus the hybrid
// time/spatial Job Distributor built on Eq. (1)) and the baselines —
// INFless/Llama ($ and P variants, spatial-only sharing), Molecule(beta)
// ($ and P, time-sharing only), the clairvoyant Oracle, and the Offline
// Hybrid of the motivation study — together with the serving runtime
// (gateway, dispatcher, batching, autoscaling, node procurement) they all
// run on.
package core

import (
	"fmt"
	"time"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/profile"
	"repro/internal/queueing"
)

// State is the snapshot of serving conditions a policy decides on.
type State struct {
	// Now is the current virtual time.
	Now time.Duration
	// Model is the workload being served.
	Model model.Spec
	// SLO is the per-request latency target.
	SLO time.Duration
	// Current is the node type currently serving; HasCurrent is false
	// before the first node is up.
	Current    hardware.Spec
	HasCurrent bool
	// Entry is the profiling entry for (Model, Current).
	Entry profile.Entry
	// PredictedRPS is the predictor's rate forecast over the horizon
	// (EWMA for Paldia, clairvoyant for Oracle).
	PredictedRPS float64
	// ObservedRPS is the arrival rate measured over the last observation
	// window — what the reactive baselines act on.
	ObservedRPS float64
	// Pending is the number of requests awaiting dispatch.
	Pending int
	// Window is the dispatch window (requests dispatched together arrive
	// within one window).
	Window time.Duration
	// ActiveDemand is the aggregate FBR executing on the current device.
	ActiveDemand float64
	// ActiveCompute is the aggregate compute occupancy executing there.
	ActiveCompute float64
	// ActiveJobs is the number of jobs executing there.
	ActiveJobs int
	// Backlog is the current device's outstanding solo-equivalent work.
	Backlog time.Duration
	// LaneBacklog is the solo-equivalent work already in the time-sharing
	// lane (queued requests wait behind it).
	LaneBacklog time.Duration

	// poolScratch and candScratch back DesiredHardware's capable-pool and
	// candidate lists, reused across monitor ticks so the steady-state
	// selection pass allocates nothing. They live on the State (one per
	// runner) rather than the Policy because schemes are shared across
	// concurrently running experiments and must stay stateless.
	poolScratch []hardware.Spec
	candScratch []hwCand
}

// hwCand pairs a probed node type with its predicted T_max.
type hwCand struct {
	hw   hardware.Spec
	tmax time.Duration
}

// Policy is a request-serving scheme: a hardware-selection rule plus a
// GPU-sharing rule.
type Policy interface {
	// Name identifies the scheme in reports.
	Name() string
	// DesiredHardware returns the node type the scheme wants for upcoming
	// traffic. Called every monitor interval.
	DesiredHardware(s *State) hardware.Spec
	// SplitY returns y: how many of the n pending requests to time-share
	// (queue); the remaining n-y are spatially shared via MPS. On CPU nodes
	// the runtime serializes everything regardless.
	SplitY(s *State, n int) int
	// WaitLimit is the number of consecutive hardware mismatches required
	// before reconfiguring (Algorithm 1's wait_limit; 3 for Paldia).
	WaitLimit() int
}

// composite assembles a Policy from parts; all schemes are instances.
type composite struct {
	name      string
	hw        func(s *State) hardware.Spec
	split     func(s *State, n int) int
	waitLimit int
}

func (c *composite) Name() string                           { return c.name }
func (c *composite) DesiredHardware(s *State) hardware.Spec { return c.hw(s) }
func (c *composite) SplitY(s *State, n int) int             { return c.split(s, n) }
func (c *composite) WaitLimit() int                         { return c.waitLimit }

// --- Hardware-selection rules ----------------------------------------------

// chooseBestHWWindow is the paper's choose_best_HW slack: the cheapest node
// within ~50 ms of the most performant candidate's T_max wins.
const chooseBestHWWindow = 50 * time.Millisecond

// paldiaPlanN converts a predicted rate into Eq. (1)'s N: the requests that
// must coexist within one SLO window.
func paldiaPlanN(rate float64, slo time.Duration, pending int) int {
	n := int(rate * slo.Seconds())
	if pending > n {
		n = pending
	}
	return n
}

// paldiaHardware is Algorithm 1's HARDWARE_SELECTION body.
func paldiaHardware(s *State) hardware.Spec {
	return paldiaHardwareAtRate(s, s.PredictedRPS)
}

// paldiaHardwareReactive is the no-prediction ablation: the same selection
// driven by the observed rate.
func paldiaHardwareReactive(s *State) hardware.Spec {
	return paldiaHardwareAtRate(s, s.ObservedRPS)
}

func paldiaHardwareAtRate(s *State, rate float64) hardware.Spec {
	// get_HW_pool, sorted by cost; appended into runner-owned scratch so the
	// per-tick pass is allocation-free once the buffers have grown.
	s.poolScratch = profile.AppendCapablePool(s.poolScratch[:0], s.Model, rate, s.SLO)
	pool := s.poolScratch
	n := paldiaPlanN(rate, s.SLO, s.Pending)

	cands := s.candScratch[:0]
	in := perfmodel.Inputs{N: n, SLO: s.SLO} // one Inputs reused across the pass
	for _, hw := range pool {
		e := profile.Lookup(s.Model, hw)
		if !hw.IsGPU() {
			// Algorithm 1 stops probing y values for CPU candidates (there
			// is no spatial sharing to tune); every capable CPU shape is
			// still costed, since a bigger CPU node with queueing headroom
			// can beat a marginal cheap one.
			backlog := time.Duration(0)
			if s.HasCurrent && s.Current.Name == hw.Name {
				backlog = s.Backlog
			}
			// A CPU node serves each dispatch window's worth of requests
			// serially; unlike the GPU case, arrivals beyond one window
			// never execute together, so T_max is approximated on a
			// window's load (sustainability is already enforced by
			// CapablePool).
			win := s.Window
			if win <= 0 {
				win = DefaultDispatchWindow
			}
			nWin := int(rate * win.Seconds())
			if s.Pending > nWin {
				nWin = s.Pending
			}
			b := profile.EffectiveBatch(s.Model, hw, rate, s.SLO/4)
			solo := profile.Solo(s.Model, hw, b)
			tmax := perfmodel.ApproxCPUTMax(solo, b, nWin, backlog)
			// Serial CPU service queues at utilization: T_max is a
			// worst-case estimate, so charge a tail-flavoured M/D/1 wait.
			// This keeps the selection off marginal CPUs — the paper's CPU
			// nodes serve only comfortably low rates (up to ~25 rps for
			// high-FBR models).
			rho := queueing.Utilization(rate/float64(b), solo)
			if wait := queueing.TailWait(rho, solo); wait >= queueing.Unstable {
				tmax += s.SLO // saturated: disqualify via a large penalty
			} else {
				tmax += wait
			}
			cands = append(cands, hwCand{hw, tmax})
			continue
		}
		in.Solo = e.SoloBatch
		in.BatchSize = e.PreferredBatch
		in.FBR = e.FBR
		in.ComputeFrac = e.ComputeFrac
		in.PenaltyByJobs = e.PenaltyByJobs
		in.ExistingDemand, in.ExistingCompute = 0, 0
		in.ExistingJobs, in.ExistingLane = 0, 0
		if s.HasCurrent && s.Current.Name == hw.Name {
			in.ExistingDemand = s.ActiveDemand
			in.ExistingCompute = s.ActiveCompute
			in.ExistingJobs = s.ActiveJobs
			in.ExistingLane = s.LaneBacklog
		}
		_, tmax, _ := perfmodel.BestY(in) // serial Eq. (1) y probing per GPU
		cands = append(cands, hwCand{hw, tmax})
	}
	s.candScratch = cands
	if len(cands) == 0 {
		return hardware.MostPerformant(hardware.GPU)
	}
	// choose_best_HW: cheapest within the slack window of the most
	// performant candidate.
	best := cands[0].tmax
	for _, c := range cands[1:] {
		if c.tmax < best {
			best = c.tmax
		}
	}
	for _, c := range cands { // pool is cost-ascending
		if c.tmax <= best+chooseBestHWWindow {
			return c.hw
		}
	}
	return cands[len(cands)-1].hw
}

// cheapestIsolated is the $-variants' selection: the cheapest hardware that
// can serve one batch of requests (for the current observed rate) within the
// SLO — judged in isolation, with standard capacity headroom but no queueing
// or interference modelling and no prediction. Reacting to the observed rate
// (after the surge has already arrived) and ignoring co-location effects are
// its documented failure modes.
func cheapestIsolated(s *State) hardware.Spec {
	rate := s.ObservedRPS
	for _, hw := range hardware.CostSorted() {
		e := profile.Lookup(s.Model, hw)
		if e.SoloBatch > s.SLO*3/4 {
			continue
		}
		if rate > profile.Headroom*e.ThroughputRPS {
			continue
		}
		return hw
	}
	return hardware.MostPerformant(hardware.GPU)
}

// fixedHW always returns the given node type (the (P) variants' V100, and
// the motivation study's pinned GPUs).
func fixedHW(spec hardware.Spec) func(*State) hardware.Spec {
	return func(*State) hardware.Spec { return spec }
}

// --- GPU-sharing rules ------------------------------------------------------

// paldiaSplit picks y by probing Eq. (1) against the live device state.
func paldiaSplit(s *State, n int) int {
	if n <= 0 || !s.Current.IsGPU() {
		return 0
	}
	in := perfmodel.Inputs{
		Solo:            s.Entry.SoloBatch,
		BatchSize:       s.Entry.PreferredBatch,
		FBR:             s.Entry.FBR,
		ComputeFrac:     s.Entry.ComputeFrac,
		N:               n,
		SLO:             s.SLO,
		ExistingDemand:  s.ActiveDemand,
		ExistingCompute: s.ActiveCompute,
		ExistingJobs:    s.ActiveJobs,
		ExistingLane:    s.LaneBacklog,
		PenaltyByJobs:   s.Entry.PenaltyByJobs,
	}
	y, _, _ := perfmodel.BestY(in)
	return y
}

func spatialAll(*State, int) int       { return 0 }
func timeShareAll(_ *State, n int) int { return n }

// fixedFraction queues a fixed share of each window's requests — the
// Offline Hybrid of the motivation experiment, whose fraction is found by an
// offline sweep.
func fixedFraction(f float64) func(*State, int) int {
	return func(_ *State, n int) int {
		y := int(f*float64(n) + 0.5)
		if y < 0 {
			y = 0
		}
		if y > n {
			y = n
		}
		return y
	}
}

// --- Scheme constructors ----------------------------------------------------

// Scheme bundles a policy with the runtime options that differ per scheme.
type Scheme struct {
	// Policy is the serving policy.
	Policy Policy
	// Clairvoyant selects the Oracle's exact-future predictor instead of
	// EWMA.
	Clairvoyant bool
	// InstantProcure removes VM-launch and container cold-start latency
	// from hardware switches — the Oracle "knows the ideal hardware
	// beforehand" and has it ready.
	InstantProcure bool
	// Redundancy, when active, replaces Eq. (1) splitting with redundant
	// dispatch across distinct hardware pools (see redundancy.go).
	Redundancy Redundancy
}

// Redundancy configures redundant dispatch: instead of splitting a window's
// requests between MPS and the time-share lane on one node, copies of each
// batch race on k distinct hardware pools (the processor-sharing cloning
// model of arXiv 2002.04416), or a backup copy launches once a request's
// age crosses an online latency percentile (hedging). At most one of CloneK
// and HedgePct may be set.
type Redundancy struct {
	// CloneK >= 2 dispatches every batch as CloneK copies on distinct GPU
	// pools with cancel-on-first-complete.
	CloneK int
	// Synchronized selects the PS cloning model's synchronized-service
	// variant: the request completes when every non-failed copy finishes
	// (no cancellation), trading latency for the model's analytical form.
	Synchronized bool
	// HedgePct > 0 launches one backup copy for a batch whose oldest
	// request's age crosses the tracked p(HedgePct) completion latency
	// (from metrics.AgeTracker; a fraction of the SLO before the tracker
	// has enough samples).
	HedgePct float64
}

// Active reports whether any redundant-dispatch mode is configured.
func (rd Redundancy) Active() bool { return rd.CloneK >= 2 || rd.HedgePct > 0 }

// Name returns the policy name.
func (s Scheme) Name() string { return s.Policy.Name() }

// NewPaldia returns the paper's scheme: Algorithm 1 hardware selection,
// hybrid time/spatial sharing, EWMA prediction, wait_limit 3.
func NewPaldia() Scheme {
	return Scheme{Policy: &composite{
		name:      "Paldia",
		hw:        paldiaHardware,
		split:     paldiaSplit,
		waitLimit: 3,
	}}
}

// NewPaldiaWithWaitLimit returns Paldia with a non-default Algorithm 1
// wait_limit — the debounce-sweep ablation.
func NewPaldiaWithWaitLimit(waitLimit int) Scheme {
	if waitLimit < 1 {
		waitLimit = 1
	}
	return Scheme{Policy: &composite{
		name:      fmt.Sprintf("Paldia (wait_limit=%d)", waitLimit),
		hw:        paldiaHardware,
		split:     paldiaSplit,
		waitLimit: waitLimit,
	}}
}

// NewPaldiaReactive returns the no-prediction ablation: Paldia's selection
// and splitting driven by the observed rather than forecast rate.
func NewPaldiaReactive() Scheme {
	return Scheme{Policy: &composite{
		name:      "Paldia (reactive)",
		hw:        paldiaHardwareReactive,
		split:     paldiaSplit,
		waitLimit: 3,
	}}
}

// NewOracle returns the clairvoyant variant: Paldia's policies with exact
// future knowledge of the trace and pre-positioned ideal hardware.
func NewOracle() Scheme {
	return Scheme{
		Policy: &composite{
			name:      "Oracle",
			hw:        paldiaHardware,
			split:     paldiaSplit,
			waitLimit: 1,
		},
		Clairvoyant:    true,
		InstantProcure: true,
	}
}

// NewINFlessLlamaCost returns INFless/Llama ($): cheapest isolated-capable
// hardware, all requests spatially shared via MPS.
func NewINFlessLlamaCost() Scheme {
	return Scheme{Policy: &composite{
		name:      "INFless/Llama ($)",
		hw:        cheapestIsolated,
		split:     spatialAll,
		waitLimit: 2,
	}}
}

// NewINFlessLlamaPerf returns INFless/Llama (P): always the most performant
// GPU, all requests spatially shared.
func NewINFlessLlamaPerf() Scheme {
	return Scheme{Policy: &composite{
		name:      "INFless/Llama (P)",
		hw:        fixedHW(hardware.MostPerformant(hardware.GPU)),
		split:     spatialAll,
		waitLimit: 1,
	}}
}

// NewMoleculeCost returns Molecule (beta) ($): the same hardware selection
// as INFless/Llama ($) (Molecule has none of its own), time sharing only.
func NewMoleculeCost() Scheme {
	return Scheme{Policy: &composite{
		name:      "Molecule (beta) ($)",
		hw:        cheapestIsolated,
		split:     timeShareAll,
		waitLimit: 2,
	}}
}

// NewMoleculePerf returns Molecule (beta) (P): most performant GPU, time
// sharing only.
func NewMoleculePerf() Scheme {
	return Scheme{Policy: &composite{
		name:      "Molecule (beta) (P)",
		hw:        fixedHW(hardware.MostPerformant(hardware.GPU)),
		split:     timeShareAll,
		waitLimit: 1,
	}}
}

// NewPaldiaPinned pins the hardware but keeps Paldia's online hybrid
// splitting — the configuration of the resource-exhaustion study, where
// every scheme resorts to the most performant GPU and only the sharing
// policy differs.
func NewPaldiaPinned(spec hardware.Spec) Scheme {
	return Scheme{Policy: &composite{
		name:      "Paldia (pinned)",
		hw:        fixedHW(spec),
		split:     paldiaSplit,
		waitLimit: 3,
	}}
}

// NewOfflineHybrid pins the hardware and queues a fixed fraction of every
// window's requests — the motivation study's offline-swept hybrid.
func NewOfflineHybrid(spec hardware.Spec, queuedFraction float64) Scheme {
	return Scheme{Policy: &composite{
		name:      "Offline Hybrid",
		hw:        fixedHW(spec),
		split:     fixedFraction(queuedFraction),
		waitLimit: 1,
	}}
}

// NewTimeSharedOnly pins the hardware and time-shares everything — the
// motivation study's "Time Shared Only" scheme on the given GPU.
func NewTimeSharedOnly(spec hardware.Spec, label string) Scheme {
	return Scheme{Policy: &composite{
		name:      "Time Shared Only " + label,
		hw:        fixedHW(spec),
		split:     timeShareAll,
		waitLimit: 1,
	}}
}

// NewMPSOnly pins the hardware and spatially shares everything — the
// motivation study's "MPS Only" scheme on the given GPU.
func NewMPSOnly(spec hardware.Spec, label string) Scheme {
	return Scheme{Policy: &composite{
		name:      "MPS Only " + label,
		hw:        fixedHW(spec),
		split:     spatialAll,
		waitLimit: 1,
	}}
}

// NewPaldiaCloneK returns the clone-to-k scheme: Paldia's policy stack with
// every batch dispatched as k racing copies on distinct GPU pools,
// first-complete-wins with sibling cancellation (synchronized false) or
// all-copies-complete (synchronized true, the PS cloning model's
// synchronized-service variant). k is clamped to [2, 3] — the catalog has
// three distinct GPU types.
func NewPaldiaCloneK(k int, synchronized bool) Scheme {
	if k < 2 {
		k = 2
	}
	if k > 3 {
		k = 3
	}
	name := fmt.Sprintf("Paldia Clone-%d", k)
	if synchronized {
		name += " (sync)"
	}
	return Scheme{
		Policy: &composite{
			name:      name,
			hw:        paldiaHardware,
			split:     spatialAll, // copies follow the pure-PS cloning model
			waitLimit: 3,
		},
		Redundancy: Redundancy{CloneK: k, Synchronized: synchronized},
	}
}

// NewPaldiaHedged returns the hedged-dispatch scheme: Paldia's policy stack
// with a backup copy launched on a second GPU pool once a batch's oldest
// request is older than the online p(pct) completion latency.
func NewPaldiaHedged(pct float64) Scheme {
	if !(pct > 0 && pct <= 100) {
		pct = 95
	}
	return Scheme{
		Policy: &composite{
			name:      fmt.Sprintf("Paldia Hedge-p%g", pct),
			hw:        paldiaHardware,
			split:     spatialAll,
			waitLimit: 3,
		},
		Redundancy: Redundancy{HedgePct: pct},
	}
}

// StandardSchemes returns the five schemes of the paper's primary
// evaluation, in its plotting order.
func StandardSchemes() []Scheme {
	return []Scheme{
		NewMoleculePerf(),
		NewINFlessLlamaPerf(),
		NewMoleculeCost(),
		NewINFlessLlamaCost(),
		NewPaldia(),
	}
}

// FailoverSpec implements the node-failure study's rule: "switch to the more
// performant hardware with the least cost"; if the failed node is already
// the most performant, fall back to the next best.
func FailoverSpec(failed hardware.Spec) hardware.Spec {
	var better []hardware.Spec
	for _, hw := range hardware.Catalog() {
		if hw.ComputeScore > failed.ComputeScore {
			better = append(better, hw)
		}
	}
	if len(better) > 0 {
		hardware.SortByCostAscending(better)
		return better[0]
	}
	// Failed node is the most performant: use the next best.
	var next hardware.Spec
	for _, hw := range hardware.Catalog() {
		if hw.Name == failed.Name {
			continue
		}
		if hw.ComputeScore > next.ComputeScore {
			next = hw
		}
	}
	return next
}

// The hardware-selection half of the serving runtime (Fig. 2's Hardware
// Selection module): every monitor interval the scheme's desired node type
// is evaluated against the procurement-lead forecast, debounced with
// Algorithm 1's wait_ctr, procured in the background and swapped in once
// its containers are warm; node failures trigger the failover rule; the
// optional scale-out extension manages same-type replicas.

package core

import (
	"time"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/hardware"
	"repro/internal/profile"
	"repro/internal/telemetry"
)

// --- hardware selection ------------------------------------------------------

func (r *runner) monitorTick() {
	now := r.eng.Now()
	// Hardware selection keeps running while a backlog is draining past the
	// trace end (a failover may have left the system on an undersized node).
	if now < r.end || r.bat.Pending() > 0 {
		r.eng.Schedule(r.cfg.MonitorInterval, r.monitorTickFn)
	}
	if r.red != nil {
		r.red.maintain()
		return
	}
	if r.cur != nil && r.cur.node.Device != nil &&
		(r.cur.node.Device.Failed() || r.cur.node.Revoked()) {
		r.ensureFailover()
		return
	}
	// Hardware is selected against the procurement-lead forecast, so a
	// capable node is serving by the time the predicted traffic lands.
	// Only a confident forecast is worth procuring against: a long lead
	// multiplies model error, so predictAt is confidence-gated at the
	// source — below the floor it returns the observed (reactive) rate
	// instead (see setupPredictor and DESIGN.md §10).
	pred := r.predictAt(now, r.cfg.HWLead)
	obs := r.observedRPS(now)
	st := r.stateWithRates(pred, obs)
	desired := r.cfg.Scheme.Policy.DesiredHardware(st)
	if r.cur != nil && desired.Name == r.cur.node.Spec.Name {
		r.waitCtr = 0
		r.manageScaleOut(st.PredictedRPS)
		return
	}
	// Downgrades are held off briefly after a switch and need a longer run
	// of consistent mismatches; upgrades are never delayed.
	limit := r.cfg.Scheme.Policy.WaitLimit()
	if r.cur != nil && desired.CostPerHour < r.cur.node.Spec.CostPerHour {
		if now-r.lastSwap < minHold {
			return
		}
		limit *= downgradeFactor
	}
	r.waitCtr++
	if r.waitCtr < limit {
		return
	}
	r.reconfigure(desired)
}

// reconfigure procures the desired node in the background and swaps to it
// once its containers are warm (Algorithm 1's reconfigure_HW).
func (r *runner) reconfigure(desired hardware.Spec) {
	if r.procured {
		return // one acquisition in flight at a time
	}
	r.procured = true
	r.waitCtr = 0
	maxRes := profile.MaxResidentJobs(r.cfg.Model, desired)
	if r.cfg.Scheme.InstantProcure {
		node := r.clu.AcquireSpot(desired, maxRes, r.spotDiscount())
		sn := r.wireNode(node)
		sn.pool.AddWarm(1)
		r.swapTo(sn)
		r.procured = false
		return
	}
	r.clu.AcquireAsyncSpot(desired, maxRes, r.spotDiscount(), func(node *cluster.Node) {
		sn := r.wireNode(node)
		// Container spawning overlaps the VM launch (Algorithm 1 does both
		// in the background before rerouting); only a short boot tail is
		// exposed. Pre-warm for the predicted load plus any backlog
		// awaiting reroute, so the swap does not stall on synchronous cold
		// starts.
		need := r.containerTarget(sn)
		if backlog := autoscale.ReactiveContainers(r.bat.Pending(), sn.entry.PreferredBatch); backlog > need {
			need = backlog
		}
		// In-flight jobs are bounded by device memory plus the lane, so the
		// pool never needs more than that.
		if cap := sn.entry.MaxResidentJobs + laneCap; need > cap {
			need = cap
		}
		sn.pool.EnsureWithin(need, swapTail)
		r.eng.Schedule(swapTail, func() {
			r.swapTo(sn)
			r.procured = false
		})
	})
}

// manageScaleOut adjusts the replica count when the current node type is
// the right choice but one instance cannot sustain the forecast.
func (r *runner) manageScaleOut(rate float64) {
	if r.cfg.MaxNodes <= 1 || r.cur == nil {
		return
	}
	sustainable := profile.Headroom * profile.ThroughputRPS(r.cfg.Model, r.cur.node.Spec)
	want := 1
	if sustainable > 0 && rate > sustainable {
		want = int(rate/sustainable) + 1
		if want > r.cfg.MaxNodes {
			want = r.cfg.MaxNodes
		}
	}
	have := 1 + len(r.replicas) + r.replicaPending
	now := r.eng.Now()
	for ; have < want; have++ {
		r.replicaPending++
		spec := r.cur.node.Spec
		r.clu.AcquireAsyncSpot(spec, profile.MaxResidentJobs(r.cfg.Model, spec), r.spotDiscount(), func(node *cluster.Node) {
			sn := r.wireNode(node)
			sn.pool.EnsureWithin(r.containerTarget(sn), swapTail)
			r.eng.Schedule(swapTail, func() {
				r.replicaPending--
				r.replicas = append(r.replicas, sn)
				sn.ctl.Start()
				r.lastScale = r.eng.Now()
				r.emit(telemetry.ScaleOut, node.ID, node.Spec.Name, "")
			})
		})
		r.lastScale = now
	}
	// Scale-in with hysteresis, one replica at a time.
	if want < 1+len(r.replicas) && now-r.lastScale >= minHold {
		last := r.replicas[len(r.replicas)-1]
		r.replicas = r.replicas[:len(r.replicas)-1]
		r.retire(last)
		r.lastScale = now
		r.emit(telemetry.ScaleIn, last.node.ID, last.node.Spec.Name, "")
	}
}

func (r *runner) swapTo(sn *servingNode) {
	old := r.cur
	r.cur = sn
	r.switches++
	r.lastSwap = r.eng.Now()
	r.history = append(r.history, SwitchEvent{At: r.eng.Now(), Spec: sn.node.Spec.Name})
	sn.ctl.Start()
	// A node-type switch retires any replicas of the old type; scale-out
	// re-evaluates against the new type on the next monitor tick.
	for _, rep := range r.replicas {
		r.retire(rep)
	}
	r.replicas = nil
	r.emit(telemetry.HWSwitch, sn.node.ID, sn.node.Spec.Name, "")
	if old != nil {
		r.retire(old)
	}
}

// retire drains and releases a node that no longer receives new work.
func (r *runner) retire(old *servingNode) {
	old.ctl.Stop()
	attempts := 0
	var poll func()
	poll = func() {
		dev := old.node.Device
		drained := dev == nil || dev.Failed() ||
			(dev.ActiveCount() == 0 && dev.LaneLength() == 0 && old.queuedOutstanding == 0)
		attempts++
		if drained || attempts > 240 {
			r.accumulatePool(old.pool)
			r.clu.Release(old.node)
			return
		}
		r.eng.Schedule(500*time.Millisecond, poll)
	}
	poll()
}

func (r *runner) accumulatePool(p *container.Pool) {
	r.boots += p.Boots()
	r.syncColds += p.SyncColdStarts()
}

// --- failures ------------------------------------------------------------------

func (r *runner) failureTick() {
	now := r.eng.Now()
	if now < r.end {
		r.eng.Schedule(r.cfg.FailureEvery, r.failureTickFn)
	}
	if r.red != nil {
		if r.red.failNext() {
			r.failures++
		}
		return
	}
	if r.cur == nil || r.cur.node.Device == nil || r.cur.node.Revoked() {
		return
	}
	r.failures++
	r.clu.Fail(r.cur.node, r.cfg.FailureDuration)
	r.ensureFailover()
}

// revokeTick injects one spot revocation: in redundancy mode the next spot
// pool in round-robin order gets its notice; in the plain path the serving
// node does (if it is spot), and a failover replacement is procured while it
// drains.
func (r *runner) revokeTick() {
	now := r.eng.Now()
	if now < r.end {
		r.eng.Schedule(r.cfg.RevokeEvery, r.revokeTickFn)
	}
	if r.red != nil {
		r.red.revokeNext()
		return
	}
	if r.cur == nil || !r.cur.node.Spot() || r.cur.node.Revoked() {
		return
	}
	r.clu.Revoke(r.cur.node, r.cfg.RevokeNotice)
	r.ensureFailover()
}

// ensureFailover procures the failure-study replacement node if the current
// one is down and nothing is on the way.
func (r *runner) ensureFailover() {
	if r.procured || r.cur == nil {
		return
	}
	r.reconfigure(FailoverSpec(r.cur.node.Spec))
}

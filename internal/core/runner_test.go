package core

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/trace"
)

// shortAzure builds a small Azure-like trace for integration tests.
func shortAzure(seed uint64, peak float64, dur time.Duration) *trace.Trace {
	return trace.Azure(sim.NewRNG(seed), peak, dur)
}

func TestRunServesEveryRequest(t *testing.T) {
	tr := shortAzure(1, 200, 3*time.Minute)
	res := Run(Config{
		Model:  model.MustByName("ResNet 50"),
		Trace:  tr,
		Scheme: NewPaldia(),
	})
	if res.Requests != tr.Count() {
		t.Fatalf("served %d of %d requests — requests were lost", res.Requests, tr.Count())
	}
	if res.FailedRequests != 0 {
		t.Fatalf("%d failed requests without failure injection", res.FailedRequests)
	}
	if res.Cost <= 0 {
		t.Fatal("zero cost")
	}
	if res.P99 <= 0 || res.P50 <= 0 || res.P50 > res.P99 {
		t.Fatalf("implausible percentiles P50=%v P99=%v", res.P50, res.P99)
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := shortAzure(7, 150, 2*time.Minute)
	cfg := Config{Model: model.MustByName("SENet 18"), Trace: tr, Scheme: NewPaldia()}
	a := Run(cfg)
	b := Run(cfg)
	if a.SLOCompliance != b.SLOCompliance || a.Cost != b.Cost ||
		a.P99 != b.P99 || a.Switches != b.Switches {
		t.Fatalf("same config produced different results:\n%+v\nvs\n%+v", a, b)
	}
}

func TestPerfSchemesStayOnV100(t *testing.T) {
	tr := shortAzure(2, 200, 2*time.Minute)
	for _, sch := range []Scheme{NewINFlessLlamaPerf(), NewMoleculePerf()} {
		res := Run(Config{Model: model.MustByName("DenseNet 121"), Trace: tr, Scheme: sch})
		if res.Switches != 0 {
			t.Errorf("%s switched hardware %d times; (P) schemes are pinned", sch.Name(), res.Switches)
		}
		if res.CPUCost != 0 {
			t.Errorf("%s accrued CPU cost %v", sch.Name(), res.CPUCost)
		}
		if len(res.HeldBySpec) != 1 {
			t.Errorf("%s held multiple node types: %v", sch.Name(), res.HeldBySpec)
		}
	}
}

func TestSchemeOrderingOnBurstyTrace(t *testing.T) {
	// The paper's headline ordering: (P) schemes ~match Paldia's compliance
	// at much higher cost; the ($) baselines are cheapest but visibly less
	// compliant; Paldia stays near the (P) compliance at a fraction of the
	// cost.
	tr := shortAzure(42, 450, 10*time.Minute)
	m := model.MustByName("ResNet 50")
	run := func(s Scheme) Result {
		return Run(Config{Model: m, Trace: tr, Scheme: s})
	}
	perf := run(NewINFlessLlamaPerf())
	cost := run(NewINFlessLlamaCost())
	paldia := run(NewPaldia())

	if perf.SLOCompliance < 0.99 {
		t.Fatalf("(P) compliance %.3f, want ~1", perf.SLOCompliance)
	}
	if paldia.SLOCompliance < perf.SLOCompliance-0.03 {
		t.Fatalf("Paldia compliance %.3f too far below (P) %.3f",
			paldia.SLOCompliance, perf.SLOCompliance)
	}
	if paldia.SLOCompliance <= cost.SLOCompliance {
		t.Fatalf("Paldia compliance %.3f not above ($) %.3f",
			paldia.SLOCompliance, cost.SLOCompliance)
	}
	if paldia.Cost >= perf.Cost*0.6 {
		t.Fatalf("Paldia cost $%.3f not well below (P) cost $%.3f", paldia.Cost, perf.Cost)
	}
	if cost.Cost > paldia.Cost {
		t.Fatalf("($) baseline cost $%.3f above Paldia's $%.3f", cost.Cost, paldia.Cost)
	}
}

func TestOracleAtLeastAsGoodAsPaldia(t *testing.T) {
	tr := shortAzure(5, 450, 5*time.Minute)
	m := model.MustByName("DenseNet 121")
	paldia := Run(Config{Model: m, Trace: tr, Scheme: NewPaldia()})
	oracle := Run(Config{Model: m, Trace: tr, Scheme: NewOracle()})
	if oracle.SLOCompliance < paldia.SLOCompliance-0.01 {
		t.Fatalf("Oracle compliance %.3f below Paldia's %.3f",
			oracle.SLOCompliance, paldia.SLOCompliance)
	}
	if paldia.SLOCompliance < oracle.SLOCompliance-0.05 {
		t.Fatalf("Paldia %.3f not within a few %% of Oracle %.3f (paper: ~0.8%%)",
			paldia.SLOCompliance, oracle.SLOCompliance)
	}
}

func TestNodeFailuresAreSurvived(t *testing.T) {
	tr := shortAzure(3, 225, 4*time.Minute)
	res := Run(Config{
		Model:           model.MustByName("DenseNet 121"),
		Trace:           tr,
		Scheme:          NewPaldia(),
		FailureEvery:    time.Minute,
		FailureDuration: time.Minute,
	})
	if res.Requests != tr.Count() {
		t.Fatalf("lost requests under failures: %d of %d", res.Requests, tr.Count())
	}
	// Some requests fail (in flight when the node dies), but the scheme must
	// recover: overall compliance stays high.
	if res.SLOCompliance < 0.80 {
		t.Fatalf("compliance %.3f under failures; failover is broken", res.SLOCompliance)
	}
	if res.Switches == 0 {
		t.Fatal("no failover switches recorded")
	}
}

func TestMixedLoadDegradesCostSchemesMore(t *testing.T) {
	tr := shortAzure(9, 225, 4*time.Minute)
	m := model.MustByName("DenseNet 121")
	clean := Run(Config{Model: m, Trace: tr, Scheme: NewMoleculeCost()})
	mixed := Run(Config{
		Model: m, Trace: tr, Scheme: NewMoleculeCost(),
		HostFactorCPU: 1.72, HostFactorGPU: 1.11,
	})
	if mixed.SLOCompliance >= clean.SLOCompliance {
		t.Fatalf("host contention did not hurt: %.3f vs %.3f",
			mixed.SLOCompliance, clean.SLOCompliance)
	}
	perfMixed := Run(Config{
		Model: m, Trace: tr, Scheme: NewMoleculePerf(),
		HostFactorCPU: 1.72, HostFactorGPU: 1.11,
	})
	if perfMixed.SLOCompliance < mixed.SLOCompliance {
		t.Fatalf("(P) scheme %.3f hurt more than ($) %.3f by host contention",
			perfMixed.SLOCompliance, mixed.SLOCompliance)
	}
}

func TestInitialHardwareOverride(t *testing.T) {
	m60, _ := hardware.ByName("M60")
	tr := shortAzure(4, 100, time.Minute)
	res := Run(Config{
		Model:           model.MustByName("SENet 18"),
		Trace:           tr,
		Scheme:          NewOfflineHybrid(m60, 0.3),
		InitialHardware: &m60,
	})
	if len(res.HeldBySpec) != 1 {
		t.Fatalf("offline hybrid on pinned M60 held %v", res.HeldBySpec)
	}
	if _, ok := res.HeldBySpec["g3s.xlarge"]; !ok {
		t.Fatalf("pinned node missing from residency: %v", res.HeldBySpec)
	}
}

func TestHybridBeatsPureSharingUnderExhaustion(t *testing.T) {
	// Fig. 13a's mechanism at miniature scale: a Poisson flood right at the
	// V100's serial capacity. Time sharing alone collapses into queueing;
	// the hybrid rides spatial headroom.
	m := model.MustByName("GoogleNet")
	v100 := hardware.MostPerformant(hardware.GPU)
	rate := 4760.0
	tr := trace.Poisson(sim.NewRNG(11), rate, 2*time.Minute)
	run := func(s Scheme) Result {
		return Run(Config{Model: m, Trace: tr, Scheme: s, InitialHardware: &v100})
	}
	molecule := run(NewMoleculePerf())
	paldia := run(NewPaldiaPinned(v100))
	if paldia.SLOCompliance <= molecule.SLOCompliance {
		t.Fatalf("hybrid %.3f not above time-share-only %.3f under exhaustion",
			paldia.SLOCompliance, molecule.SLOCompliance)
	}
}

func TestScaleOutServesBeyondSingleNode(t *testing.T) {
	m := model.MustByName("GoogleNet")
	v100 := hardware.MostPerformant(hardware.GPU)
	tr := trace.Poisson(sim.NewRNG(8), 8500, 2*time.Minute) // ~1.8x one V100
	run := func(maxNodes int) Result {
		return Run(Config{
			Model: m, Trace: tr, Scheme: NewPaldiaPinned(v100),
			InitialHardware: &v100, MaxNodes: maxNodes,
		})
	}
	single := run(1)
	scaled := run(4)
	if single.SLOCompliance > 0.5 {
		t.Fatalf("single node survived 1.8x capacity (%.2f); the test premise is wrong",
			single.SLOCompliance)
	}
	if scaled.SLOCompliance < 0.9 {
		t.Fatalf("scale-out compliance %.2f, want > 0.9", scaled.SLOCompliance)
	}
	if scaled.Cost <= single.Cost {
		t.Fatal("scale-out must cost more than a single node")
	}
	if scaled.Requests != tr.Count() || single.Requests != tr.Count() {
		t.Fatal("requests lost")
	}
}

func TestScaleOutDisabledByDefault(t *testing.T) {
	// MaxNodes unset must keep the paper's single-node behaviour: exactly
	// one node type residency entry per held spec and identical results to
	// MaxNodes=1.
	tr := shortAzure(12, 200, 2*time.Minute)
	m := model.MustByName("ResNet 50")
	a := Run(Config{Model: m, Trace: tr, Scheme: NewPaldia()})
	b := Run(Config{Model: m, Trace: tr, Scheme: NewPaldia(), MaxNodes: 1})
	if a.SLOCompliance != b.SLOCompliance || a.Cost != b.Cost {
		t.Fatalf("MaxNodes default differs from 1: %+v vs %+v", a, b)
	}
}

func TestColdStartAccounting(t *testing.T) {
	tr := shortAzure(6, 450, 4*time.Minute)
	res := Run(Config{Model: model.MustByName("ResNet 50"), Trace: tr, Scheme: NewPaldia()})
	if res.Boots < uint64(res.Switches) {
		t.Fatalf("boots %d below switches %d — every new node needs containers",
			res.Boots, res.Switches)
	}
	if res.SyncColdStarts > res.Boots {
		t.Fatal("sync cold starts exceed total boots")
	}
}

func TestPluggablePredictor(t *testing.T) {
	tr := shortAzure(13, 200, 2*time.Minute)
	m := model.MustByName("ResNet 50")
	// A deliberately terrible predictor (always zero) must change behaviour
	// versus the default EWMA, proving the knob is wired through.
	zero := Run(Config{
		Model: m, Trace: tr, Scheme: NewPaldia(),
		NewPredictor: func() predict.Predictor { return predict.Static{RPS: 0} },
	})
	def := Run(Config{Model: m, Trace: tr, Scheme: NewPaldia()})
	if zero.Cost == def.Cost && zero.SLOCompliance == def.SLOCompliance {
		t.Fatal("custom predictor had no effect")
	}
	if zero.Requests != tr.Count() {
		t.Fatal("requests lost with custom predictor")
	}
}

// Property: every request of every trace is recorded exactly once, across
// random (model, peak, scheme, failure) configurations.
func TestConservationAcrossConfigsProperty(t *testing.T) {
	models := model.Catalog()
	schemes := []func() Scheme{
		NewPaldia, NewOracle, NewINFlessLlamaCost, NewINFlessLlamaPerf,
		NewMoleculeCost, NewMoleculePerf,
	}
	f := func(seed uint32, mIdx, sIdx uint8, peakRaw uint16, failures bool) bool {
		m := models[int(mIdx)%len(models)]
		peak := float64(peakRaw%500) + 5
		tr := trace.Azure(sim.NewRNG(uint64(seed)), peak, 90*time.Second)
		cfg := Config{
			Model:  m,
			Trace:  tr,
			Scheme: schemes[int(sIdx)%len(schemes)](),
		}
		if failures {
			cfg.FailureEvery = 45 * time.Second
			cfg.FailureDuration = 20 * time.Second
		}
		res := Run(cfg)
		return res.Requests == tr.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchHistoryRecorded(t *testing.T) {
	tr := shortAzure(42, 450, 5*time.Minute)
	res := Run(Config{Model: model.MustByName("ResNet 50"), Trace: tr, Scheme: NewPaldia()})
	if len(res.SwitchHistory) != res.Switches+1 {
		t.Fatalf("history has %d entries for %d switches (+1 warm start)",
			len(res.SwitchHistory), res.Switches)
	}
	if res.SwitchHistory[0].At != 0 {
		t.Fatal("history must start at t=0")
	}
	for i := 1; i < len(res.SwitchHistory); i++ {
		if res.SwitchHistory[i].At < res.SwitchHistory[i-1].At {
			t.Fatal("history not time-ordered")
		}
	}
	// Residency derived from the history must cover every held node type.
	seen := map[string]bool{}
	for _, ev := range res.SwitchHistory {
		seen[ev.Spec] = true
	}
	for spec := range res.HeldBySpec {
		if !seen[spec] {
			t.Fatalf("held node type %s missing from history", spec)
		}
	}
}

// Failure of the most performant node — the escalation path's last resort —
// must still fail over (to the "next best" spec, per FailoverSpec) rather
// than wedging the run: every request is accounted for and serving resumes
// on different hardware.
func TestLastCapableNodeFailureFailsOver(t *testing.T) {
	tr := shortAzure(13, 225, 3*time.Minute)
	top := hardware.MostPerformant(hardware.GPU)
	res := Run(Config{
		Model:           model.MustByName("DenseNet 121"),
		Trace:           tr,
		Scheme:          NewMoleculePerf(), // pinned to the top GPU: the failed node IS the last capable one
		InitialHardware: &top,
		FailureEvery:    time.Minute,
		FailureDuration: 30 * time.Second,
	})
	if res.FailuresInjected == 0 {
		t.Fatal("no failures injected")
	}
	if res.Requests != tr.Count() {
		t.Fatalf("lost requests: %d of %d", res.Requests, tr.Count())
	}
	next := FailoverSpec(top)
	if next.Name == top.Name {
		t.Fatalf("FailoverSpec returned the failed spec %s", top.Name)
	}
	if res.HeldBySpec[next.Name] <= 0 {
		t.Fatalf("failover target %s never held; residency: %v", next.Name, res.HeldBySpec)
	}
	if res.SLOCompliance <= 0 {
		t.Fatal("no request ever met the SLO after the top node failed")
	}
}

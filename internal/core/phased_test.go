package core

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/invariant"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// The phased API contract behind the sharded executor: Start + any monotone
// schedule of StepTo calls + Finish is byte-identical to one Run — same
// Result, same per-request CSV, same spans JSONL — because Engine.Run(a);
// Engine.Run(b) fires the identical event sequence as Engine.Run(b) for
// a < b, and no model code runs between the calls. Failure injection and the
// invariant checker stay on, like the seed-determinism test.
func TestPhasedRunDeterministicEquivalence(t *testing.T) {
	type snapshot struct {
		res   Result
		csv   bytes.Buffer
		spans bytes.Buffer
	}
	mkCfg := func(rec *telemetry.Recorder, chk *invariant.Checker) Config {
		return Config{
			Model:           model.MustByName("ResNet 50"),
			Trace:           trace.Azure(sim.NewRNG(42), 250, 2*time.Minute),
			Scheme:          NewPaldia(),
			Seed:            42,
			Telemetry:       rec,
			SampleEvery:     time.Second,
			FailureEvery:    40 * time.Second,
			FailureDuration: 10 * time.Second,
			Invariants:      chk,
		}
	}
	capture := func(res Result, rec *telemetry.Recorder, chk *invariant.Checker) *snapshot {
		if err := chk.Err(); err != nil {
			t.Fatalf("run not invariant-clean:\n%v", err)
		}
		s := &snapshot{res: res}
		if err := res.Collector.WriteCSV(&s.csv); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteSpansJSONL(&s.spans); err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Reference: the one-shot Run.
	recA, chkA := telemetry.NewRecorder(), invariant.New()
	a := capture(Run(mkCfg(recA, chkA)), recA, chkA)

	// Phased: step in uneven increments (some smaller than any event gap,
	// some spanning many, one past the horizon to exercise the clamp).
	recB, chkB := telemetry.NewRecorder(), invariant.New()
	ru := Start(mkCfg(recB, chkB))
	for _, step := range []time.Duration{
		1 * time.Millisecond, 500 * time.Millisecond, 7 * time.Second,
		29 * time.Second, time.Minute, 2 * time.Minute, 10 * time.Minute,
	} {
		ru.StepTo(ru.Now() + step)
	}
	if ru.Now() != ru.Horizon() {
		t.Fatalf("StepTo past the horizon should clamp: now=%v horizon=%v",
			ru.Now(), ru.Horizon())
	}
	b := capture(ru.Finish(), recB, chkB)

	ra, rb := a.res, b.res
	ra.Collector, rb.Collector = nil, nil
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("phased Result differs from one-shot Run:\n%+v\nvs\n%+v", ra, rb)
	}
	if !bytes.Equal(a.csv.Bytes(), b.csv.Bytes()) {
		t.Error("phased per-request CSV differs from one-shot Run")
	}
	if !bytes.Equal(a.spans.Bytes(), b.spans.Bytes()) {
		t.Error("phased spans JSONL differs from one-shot Run")
	}
	if a.csv.Len() == 0 || a.spans.Len() == 0 {
		t.Fatalf("exports empty: csv=%d spans=%d bytes", a.csv.Len(), a.spans.Len())
	}
	if a.res.FailuresInjected == 0 {
		t.Error("failure injection never fired; the equivalence check lost coverage")
	}
}

// Finish is single-use; driving past it must fail loudly rather than
// silently re-settle the run.
func TestPhasedFinishIsSingleUse(t *testing.T) {
	ru := Start(Config{
		Model:  model.MustByName("MobileNet"),
		Trace:  trace.Stable(sim.NewRNG(1), 20, 5*time.Second),
		Scheme: NewPaldia(),
	})
	ru.Finish()
	defer func() {
		if recover() == nil {
			t.Fatal("second Finish did not panic")
		}
	}()
	ru.Finish()
}

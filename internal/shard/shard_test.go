package shard

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

const (
	testSeed    = 42
	testTenants = 3
	testRPS     = 150
	testDur     = 90 * time.Second
)

// laneConfigs builds the multi-tenant grid under test: one lane per tenant,
// each streaming its share of a partitioned Azure curve, with telemetry into
// the MergeWriter's lane sinks and a fresh invariant checker per lane.
// Everything is derived from the seed alone, so two calls produce identical
// simulations.
func laneConfigs(mode core.MetricsMode, mw *telemetry.MergeWriter) ([]core.Config, []*invariant.Checker) {
	curve := trace.AzureCurve(sim.NewRNG(testSeed), testRPS, testDur)
	parts := curve.Partition(testTenants)
	cfgs := make([]core.Config, testTenants)
	checks := make([]*invariant.Checker, testTenants)
	for i, lane := range parts {
		checks[i] = invariant.New()
		cfgs[i] = core.Config{
			Model:       model.MustByName("ResNet 50"),
			Stream:      lane.Stream(sim.NewRNG(testSeed)),
			Scheme:      core.NewPaldia(),
			Seed:        testSeed,
			Metrics:     mode,
			Telemetry:   mw.Lane(i),
			SampleEvery: time.Second,
			Invariants:  checks[i],
		}
	}
	return cfgs, checks
}

type gridSnapshot struct {
	agg      core.Result
	lanes    []core.Result
	csv      bytes.Buffer
	spans    bytes.Buffer
	onlines  []metrics.Snapshot
	aggOn    metrics.Snapshot
	maxLag   time.Duration
	barriers int
}

// runGrid executes the grid at the given worker count and captures every
// output that must be worker-count-independent.
func runGrid(t *testing.T, mode core.MetricsMode, shards int) *gridSnapshot {
	t.Helper()
	s := &gridSnapshot{}
	mw := telemetry.NewMergeWriter(&s.spans, nil, testTenants)
	cfgs, checks := laneConfigs(mode, mw)
	board := NewVTBoard(testTenants)
	la := DefaultLookahead()
	s.lanes = Run(cfgs, Options{
		Shards:    shards,
		Lookahead: la,
		Merge:     mw,
		Board:     board,
		OnBarrier: func(barrier time.Duration) {
			s.barriers++
			if lag := board.Spread(); lag > s.maxLag {
				s.maxLag = lag
			}
		},
	})
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	for i, chk := range checks {
		if err := chk.Err(); err != nil {
			t.Fatalf("lane %d not invariant-clean at shards=%d:\n%v", i, shards, err)
		}
	}
	s.agg = Aggregate(s.lanes, core.DefaultSLO)
	if s.agg.Collector != nil {
		if err := s.agg.Collector.WriteCSV(&s.csv); err != nil {
			t.Fatal(err)
		}
	}
	for i := range s.lanes {
		if on := s.lanes[i].Online; on != nil {
			s.onlines = append(s.onlines, on.Snapshot())
		}
	}
	if s.agg.Online != nil {
		s.aggOn = s.agg.Online.Snapshot()
	}
	return s
}

// scrub drops the aggregator pointers so Results compare by value.
func scrub(rs []core.Result) []core.Result {
	out := make([]core.Result, len(rs))
	for i, r := range rs {
		r.Collector, r.Online = nil, nil
		out[i] = r
	}
	return out
}

// The tentpole invariant: a multi-tenant grid produces byte-identical output
// at every worker count — same per-lane Results, same aggregate, same merged
// per-request CSV, same merged spans JSONL — because workers only change
// wall-clock scheduling, never what any lane computes or the merge order.
func TestShardedDeterministicAcrossWorkerCounts(t *testing.T) {
	base := runGrid(t, core.MetricsExact, 1)
	if base.agg.Requests == 0 {
		t.Fatal("grid served no requests; test is vacuous")
	}
	if base.csv.Len() == 0 || base.spans.Len() == 0 {
		t.Fatalf("empty exports: csv=%d spans=%d", base.csv.Len(), base.spans.Len())
	}
	for _, shards := range []int{2, 4, 7} {
		got := runGrid(t, core.MetricsExact, shards)
		if !reflect.DeepEqual(scrub(got.lanes), scrub(base.lanes)) {
			t.Errorf("shards=%d: per-lane Results differ from shards=1", shards)
		}
		ga, ba := got.agg, base.agg
		ga.Collector, ba.Collector = nil, nil
		if !reflect.DeepEqual(ga, ba) {
			t.Errorf("shards=%d: aggregate differs from shards=1:\n%+v\nvs\n%+v",
				shards, ga, ba)
		}
		if !bytes.Equal(got.csv.Bytes(), base.csv.Bytes()) {
			t.Errorf("shards=%d: merged per-request CSV differs from shards=1", shards)
		}
		if !bytes.Equal(got.spans.Bytes(), base.spans.Bytes()) {
			t.Errorf("shards=%d: merged spans JSONL differs from shards=1", shards)
		}
		if got.maxLag > DefaultLookahead() {
			t.Errorf("shards=%d: barrier lag %v exceeds lookahead %v",
				shards, got.maxLag, DefaultLookahead())
		}
		if got.barriers != base.barriers {
			t.Errorf("shards=%d: %d barriers vs %d at shards=1",
				shards, got.barriers, base.barriers)
		}
	}
}

// The same invariant on the constant-memory path: Online snapshots — the
// whole streaming state, sketch buckets included — are identical at every
// worker count, as is the sketch-merged aggregate.
func TestShardedDeterministicOnlineAggregation(t *testing.T) {
	base := runGrid(t, core.MetricsOnline, 1)
	if len(base.onlines) != testTenants || base.aggOn.Count == 0 {
		t.Fatalf("online path not exercised: %d lane snapshots, agg count %d",
			len(base.onlines), base.aggOn.Count)
	}
	for _, shards := range []int{2, 4, 7} {
		got := runGrid(t, core.MetricsOnline, shards)
		if !reflect.DeepEqual(scrub(got.lanes), scrub(base.lanes)) {
			t.Errorf("shards=%d: per-lane Results differ from shards=1", shards)
		}
		if !reflect.DeepEqual(got.onlines, base.onlines) {
			t.Errorf("shards=%d: lane Online snapshots differ from shards=1", shards)
		}
		if !reflect.DeepEqual(got.aggOn, base.aggOn) {
			t.Errorf("shards=%d: merged Online snapshot differs from shards=1", shards)
		}
		if !bytes.Equal(got.spans.Bytes(), base.spans.Bytes()) {
			t.Errorf("shards=%d: merged spans JSONL differs from shards=1", shards)
		}
	}
}

// A one-lane grid through the sharded executor is byte-identical to a plain
// core.Run — Result, CSV, and spans — at any worker count. This anchors the
// sharded path to the legacy single-lane path end to end.
func TestShardedSingleLaneDeterministicMatchesCoreRun(t *testing.T) {
	mkCfg := func(sink telemetry.Sink) core.Config {
		return core.Config{
			Model:       model.MustByName("ResNet 50"),
			Trace:       trace.Azure(sim.NewRNG(testSeed), testRPS, testDur),
			Scheme:      core.NewPaldia(),
			Seed:        testSeed,
			Telemetry:   sink,
			SampleEvery: time.Second,
		}
	}

	var plainSpans bytes.Buffer
	sw := telemetry.NewStreamWriter(&plainSpans, nil)
	plain := core.Run(mkCfg(sw))
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	var shardSpans bytes.Buffer
	mw := telemetry.NewMergeWriter(&shardSpans, nil, 1)
	got := Run([]core.Config{mkCfg(mw.Lane(0))}, Options{Shards: 4})
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d results", len(got))
	}

	a, b := plain, got[0]
	var ac, bc bytes.Buffer
	if err := a.Collector.WriteCSV(&ac); err != nil {
		t.Fatal(err)
	}
	if err := b.Collector.WriteCSV(&bc); err != nil {
		t.Fatal(err)
	}
	a.Collector, b.Collector = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sharded single-lane Result differs from core.Run:\n%+v\nvs\n%+v", a, b)
	}
	if !bytes.Equal(ac.Bytes(), bc.Bytes()) {
		t.Error("sharded single-lane CSV differs from core.Run")
	}
	if !bytes.Equal(plainSpans.Bytes(), shardSpans.Bytes()) {
		t.Error("sharded single-lane spans differ from core.Run + StreamWriter")
	}
	if plain.Requests == 0 {
		t.Fatal("no requests served; test is vacuous")
	}
}

// DefaultLookahead is the minimum cross-epoch latency in the stack: with the
// current constants that is the CPU cold start.
func TestDefaultLookahead(t *testing.T) {
	if got := DefaultLookahead(); got != 2*time.Second {
		t.Errorf("DefaultLookahead = %v, want 2s (CPU cold start)", got)
	}
}

// Aggregate on heterogeneous inputs: empty input and lane order stability.
func TestAggregateDeterministicLaneOrder(t *testing.T) {
	if got := Aggregate(nil, core.DefaultSLO); got.Requests != 0 {
		t.Errorf("empty aggregate: %+v", got)
	}
	mw := telemetry.NewMergeWriter(&bytes.Buffer{}, nil, testTenants)
	cfgs, _ := laneConfigs(core.MetricsExact, mw)
	res := Run(cfgs, Options{Shards: 2, Merge: mw})
	a := Aggregate(res, core.DefaultSLO)
	b := Aggregate(res, core.DefaultSLO)
	a.Collector, b.Collector = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeat aggregates differ:\n%+v\nvs\n%+v", a, b)
	}
	var sum int
	for _, r := range res {
		sum += r.Requests
	}
	if a.Requests != sum {
		t.Errorf("aggregate requests %d != lane sum %d", a.Requests, sum)
	}
}

// The worker gang survives lanes with different horizons and a worker count
// above the lane count.
func TestRunMoreWorkersThanLanes(t *testing.T) {
	mw := telemetry.NewMergeWriter(&bytes.Buffer{}, nil, 2)
	cfgs := make([]core.Config, 2)
	for i := range cfgs {
		cfgs[i] = core.Config{
			Model:  model.MustByName("ResNet 50"),
			Trace:  trace.Poisson(sim.NewRNG(uint64(i+1)), 40, time.Duration(i+1)*20*time.Second),
			Scheme: core.NewPaldia(),
			Seed:   uint64(i + 1),
		}
	}
	res := Run(cfgs, Options{Shards: 16, Merge: mw})
	for i, r := range res {
		if r.Requests == 0 {
			t.Errorf("lane %d served nothing", i)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
}

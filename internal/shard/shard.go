// Package shard runs several independent simulation lanes — one per tenant —
// concurrently under a conservative virtual-time barrier, so a multi-tenant
// grid uses every core while producing output that is a pure function of the
// lane configs, byte-identical at any worker count.
//
// The decomposition into lanes is a workload decision (how many tenants the
// grid models), never a performance knob: each lane is a complete
// single-tenant core.Run with its own engine, RNG streams, aggregator and
// telemetry sink. Because lanes share nothing, any interleaving of their
// event processing yields the same per-lane trajectories; the barrier exists
// only to keep lanes close enough in virtual time that merged telemetry can
// flush incrementally (bounded memory) and live observers see a coherent
// front. Workers only change wall-clock, which is what makes `-shards N`
// byte-identical to `-shards 1` by construction rather than by luck.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/telemetry"
)

// DefaultLookahead is the conservative barrier interval: the shortest delay
// after which a lane's present state could depend on anything another lane's
// observer did at a barrier. Lanes share no simulation state, so correctness
// never depends on this value; it bounds how far lanes drift apart between
// merge flushes. It derives from the fastest state-changing latency in the
// serving stack — VM procurement and container cold starts — the same
// quantity a conservative parallel-DES lookahead would use if lanes ever did
// interact.
func DefaultLookahead() time.Duration {
	la := hardware.DefaultProcureDelay
	for _, s := range hardware.Catalog() {
		if s.ProcureDelay > 0 && s.ProcureDelay < la {
			la = s.ProcureDelay
		}
	}
	if container.CPUColdStart < la {
		la = container.CPUColdStart
	}
	if container.GPUColdStart < la {
		la = container.GPUColdStart
	}
	return la
}

// VTBoard publishes each lane's barrier-granular virtual time for observers
// (the -progress ticker reports per-shard lag from it). Reads and writes are
// atomic and may come from any goroutine.
type VTBoard struct {
	vt []atomic.Int64
}

// NewVTBoard returns a board for n lanes, all at virtual time zero.
func NewVTBoard(n int) *VTBoard {
	if n < 1 {
		n = 1
	}
	return &VTBoard{vt: make([]atomic.Int64, n)}
}

// Lanes returns the number of lanes tracked.
func (b *VTBoard) Lanes() int { return len(b.vt) }

// Set records lane i having reached virtual time t.
func (b *VTBoard) Set(i int, t time.Duration) { b.vt[i].Store(int64(t)) }

// Get returns lane i's last published virtual time.
func (b *VTBoard) Get(i int) time.Duration { return time.Duration(b.vt[i].Load()) }

// Bounds returns the slowest and fastest lanes' published virtual times.
func (b *VTBoard) Bounds() (lo, hi time.Duration) {
	lo, hi = b.Get(0), b.Get(0)
	for i := 1; i < len(b.vt); i++ {
		t := b.Get(i)
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return lo, hi
}

// Spread is the virtual-time lag between the fastest and slowest lanes —
// bounded by the lookahead while the barrier loop runs.
func (b *VTBoard) Spread() time.Duration {
	lo, hi := b.Bounds()
	return hi - lo
}

// Options configures a sharded run.
type Options struct {
	// Shards is the worker count; it is clamped to [1, lanes] and affects
	// only wall-clock time, never output.
	Shards int

	// Lookahead is the barrier interval; zero means DefaultLookahead.
	Lookahead time.Duration

	// Merge, when set, is flushed through each barrier's virtual time after
	// the lanes reach it, so spans stream out in merge order with bounded
	// queues instead of accumulating until the end. The lane feeds must be
	// Merge.Lane(i) sinks wired into the configs by the caller; Run does
	// not Close the writer.
	Merge *telemetry.MergeWriter

	// Board, when set, receives each lane's virtual time at every barrier;
	// pass the same board to the progress reporter for per-shard lag.
	Board *VTBoard

	// OnBarrier, when set, runs on the coordinator after every barrier —
	// lanes quiesced at t, merge flushed. Used by tests to assert the
	// barrier invariant and by callers for progress accounting.
	OnBarrier func(t time.Duration)
}

// Run executes one core simulation per config, lanes[i] from cfgs[i], and
// returns their Results in lane order. Output is deterministic in cfgs alone:
// every interleaving of the lane goroutines produces identical Results,
// telemetry and metrics, because lanes share no state and each lane's work
// happens on one goroutine per epoch with barriers ordering everything else.
func Run(cfgs []core.Config, opt Options) []core.Result {
	n := len(cfgs)
	if n == 0 {
		return nil
	}
	la := opt.Lookahead
	if la <= 0 {
		la = DefaultLookahead()
	}
	workers := opt.Shards
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	board := opt.Board
	if board == nil {
		board = NewVTBoard(n)
	} else if board.Lanes() != n {
		panic(fmt.Sprintf("shard: board has %d lanes, want %d", board.Lanes(), n))
	}

	// Construction is cheap and strictly per-lane; doing it serially keeps
	// any construction-time telemetry in lane order.
	lanes := make([]*core.Running, n)
	for i := range cfgs {
		lanes[i] = core.Start(cfgs[i])
		board.Set(i, 0)
	}
	horizon := lanes[0].Horizon()
	for _, l := range lanes[1:] {
		if h := l.Horizon(); h > horizon {
			horizon = h
		}
	}

	// Persistent worker gang: a 100M-request run crosses hundreds of
	// thousands of barriers, so workers live for the whole run and receive
	// lane indices per epoch instead of being respawned. The coordinator's
	// wg.Wait / channel sends order every epoch's target and step function
	// before any worker reads them.
	results := make([]core.Result, n)
	var (
		tasks = make(chan int, n)
		wg    sync.WaitGroup
		step  func(lane int)
	)
	var workerWG sync.WaitGroup
	workerWG.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer workerWG.Done()
			for i := range tasks {
				step(i)
				wg.Done()
			}
		}()
	}
	dispatch := func(fn func(lane int)) {
		step = fn
		wg.Add(n)
		for i := 0; i < n; i++ {
			tasks <- i
		}
		wg.Wait()
	}

	for t := la; ; t += la {
		if t > horizon {
			t = horizon
		}
		barrier := t
		dispatch(func(i int) {
			lanes[i].StepTo(barrier)
			board.Set(i, lanes[i].Now())
		})
		if opt.Merge != nil {
			opt.Merge.FlushThrough(barrier)
		}
		if opt.OnBarrier != nil {
			opt.OnBarrier(barrier)
		}
		if t >= horizon {
			break
		}
	}

	// Finish is per-lane bookkeeping (drain guard, failed-request flush,
	// result assembly) and may emit trailing telemetry into the lane's own
	// sink, so it parallelizes like an epoch.
	dispatch(func(i int) {
		results[i] = lanes[i].Finish()
		board.Set(i, lanes[i].Now())
	})
	close(tasks)
	workerWG.Wait()
	if opt.Merge != nil {
		// Anything emitted during Finish (guard-loop completions past the
		// horizon) flushes here; Close, which also writes never-completed
		// spans, stays with the writer's owner.
		opt.Merge.FlushThrough(1<<63 - 1)
	}
	return results
}

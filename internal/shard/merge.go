package shard

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/metrics"
)

// Aggregate folds per-lane Results into one grid-level Result, as if a single
// accountant had watched every lane: counts, cost, energy and failures add;
// latency statistics come from merging the lanes' aggregators (exact when all
// lanes kept Collectors, sketch-merged when they streamed Online); device
// utilization is the held-time-weighted mean. It is deterministic in the
// input slice: lane order fixes merge order everywhere, including the merged
// Collector's record order (lane-major) and every floating-point summation.
//
// SwitchHistory stays nil — each lane has its own primary-node timeline and
// they do not compose into one; read them from the per-lane Results.
func Aggregate(results []core.Result, slo time.Duration) core.Result {
	if len(results) == 0 {
		return core.Result{}
	}
	agg := core.Result{
		Scheme: results[0].Scheme,
		Model:  results[0].Model,
	}
	exact := true
	var parts []*metrics.Online
	var heldCPU, heldGPU time.Duration
	var busyCPU, busyGPU float64 // in held-duration units
	for _, r := range results {
		agg.Cost += r.Cost
		agg.CPUCost += r.CPUCost
		agg.GPUCost += r.GPUCost
		agg.EnergyWh += r.EnergyWh
		// Lanes share one virtual clock (same horizon), so lane average
		// powers over that clock add.
		agg.AvgPowerW += r.AvgPowerW
		agg.Boots += r.Boots
		agg.SyncColdStarts += r.SyncColdStarts
		agg.Switches += r.Switches
		agg.FailedRequests += r.FailedRequests
		agg.FailuresInjected += r.FailuresInjected
		if r.Collector == nil {
			exact = false
		}
		parts = append(parts, r.Online)

		if len(r.HeldBySpec) > 0 {
			if agg.HeldBySpec == nil {
				agg.HeldBySpec = make(map[string]time.Duration, len(r.HeldBySpec))
			}
			// Sorted keys keep the float utilization sums independent of
			// map iteration order.
			names := make([]string, 0, len(r.HeldBySpec))
			for name := range r.HeldBySpec {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				held := r.HeldBySpec[name]
				agg.HeldBySpec[name] += held
				spec, ok := hardware.ByName(name)
				if !ok {
					continue
				}
				if spec.IsGPU() {
					heldGPU += held
					busyGPU += r.UtilGPU * float64(held)
				} else {
					heldCPU += held
					busyCPU += r.UtilCPU * float64(held)
				}
			}
		}
	}
	if heldCPU > 0 {
		agg.UtilCPU = busyCPU / float64(heldCPU)
	}
	if heldGPU > 0 {
		agg.UtilGPU = busyGPU / float64(heldGPU)
	}

	if exact {
		col := MergedCollector(results, slo)
		agg.Collector = col
		agg.Requests = col.Count()
		agg.SLOCompliance = col.SLOCompliance()
		agg.P50 = col.Percentile(50)
		agg.P99 = col.Percentile(99)
		agg.MeanLatency = col.Mean()
		return agg
	}
	on := metrics.MergeOnline(parts)
	agg.Online = on
	agg.Requests = on.Count()
	agg.SLOCompliance = on.SLOCompliance()
	agg.P50 = on.Percentile(50)
	agg.P99 = on.Percentile(99)
	agg.MeanLatency = on.Mean()
	return agg
}

// MergedCollector concatenates the lanes' per-request records, lane-major,
// into one exact Collector. Within a lane records keep their completion
// order, so the merged CSV is the lane CSVs concatenated — a deterministic
// order that does not depend on how lanes interleaved in wall-clock.
func MergedCollector(results []core.Result, slo time.Duration) *metrics.Collector {
	col := metrics.NewCollector(slo)
	for _, r := range results {
		if r.Collector == nil {
			continue
		}
		r.Collector.Each(col.Add)
	}
	return col
}

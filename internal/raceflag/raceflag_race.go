//go:build race

package raceflag

// Enabled is true in binaries built with -race.
const Enabled = true

//go:build !race

// Package raceflag reports whether the binary was built with the race
// detector. Allocation-gate tests consult it: race instrumentation adds
// allocations of its own, so testing.AllocsPerRun bounds only hold in
// non-race builds.
package raceflag

// Enabled is true in binaries built with -race.
const Enabled = false

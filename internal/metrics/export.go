package metrics

import (
	"encoding/csv"
	"io"
	"strconv"
	"time"
)

// csvHeader is the per-request export schema.
var csvHeader = []string{
	"arrival_s", "latency_ms", "batch_wait_ms", "queue_delay_ms",
	"interference_ms", "cold_start_ms", "min_exec_ms", "failed", "slo_ok",
}

// WriteCSV exports every request record for offline analysis (one row per
// request, times in seconds/milliseconds).
func (c *Collector) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	ms := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
	}
	for _, r := range c.records {
		row := []string{
			strconv.FormatFloat(r.Arrival.Seconds(), 'f', 6, 64),
			ms(r.Latency), ms(r.BatchWait), ms(r.QueueDelay),
			ms(r.Interference), ms(r.ColdStart), ms(r.MinExec),
			strconv.FormatBool(r.Failed),
			strconv.FormatBool(!r.Failed && r.Latency <= c.SLO),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses records previously written with WriteCSV into a collector
// with the given SLO (the slo_ok column is recomputed, not trusted).
func ReadCSV(r io.Reader, slo time.Duration) (*Collector, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	c := NewCollector(slo)
	for i, row := range rows {
		if i == 0 && len(row) > 0 && row[0] == csvHeader[0] {
			continue // header
		}
		if len(row) < 8 {
			continue
		}
		f := func(s string) float64 {
			v, _ := strconv.ParseFloat(s, 64)
			return v
		}
		ms := func(s string) time.Duration {
			return time.Duration(f(s) * float64(time.Millisecond))
		}
		failed, _ := strconv.ParseBool(row[7])
		c.Add(Record{
			Arrival:      time.Duration(f(row[0]) * float64(time.Second)),
			Latency:      ms(row[1]),
			BatchWait:    ms(row[2]),
			QueueDelay:   ms(row[3]),
			Interference: ms(row[4]),
			ColdStart:    ms(row[5]),
			MinExec:      ms(row[6]),
			Failed:       failed,
		})
	}
	return c, nil
}

package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the per-request export schema.
var csvHeader = []string{
	"arrival_s", "latency_ms", "batch_wait_ms", "queue_delay_ms",
	"interference_ms", "cold_start_ms", "min_exec_ms", "failed", "slo_ok",
}

// WriteCSV exports every request record for offline analysis (one row per
// request, times in seconds/milliseconds).
func (c *Collector) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	ms := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
	}
	for _, r := range c.records {
		row := []string{
			strconv.FormatFloat(r.Arrival.Seconds(), 'f', 6, 64),
			ms(r.Latency), ms(r.BatchWait), ms(r.QueueDelay),
			ms(r.Interference), ms(r.ColdStart), ms(r.MinExec),
			strconv.FormatBool(r.Failed),
			strconv.FormatBool(!r.Failed && r.Latency <= c.SLO),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses records previously written with WriteCSV into a collector
// with the given SLO (the slo_ok column is recomputed, not trusted). A
// malformed cell is an error naming the offending row and column, never a
// silently coerced zero.
func ReadCSV(r io.Reader, slo time.Duration) (*Collector, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	c := NewCollector(slo)
	for i, row := range rows {
		line := i + 1
		if i == 0 && len(row) > 0 && row[0] == csvHeader[0] {
			continue // header
		}
		if len(row) < 8 {
			return nil, fmt.Errorf("metrics: row %d has %d columns, want at least 8", line, len(row))
		}
		var rowErr error
		f := func(col int) float64 {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil && rowErr == nil {
				rowErr = fmt.Errorf("metrics: row %d column %s: %q is not a number",
					line, csvHeader[col], row[col])
			}
			return v
		}
		ms := func(col int) time.Duration {
			return time.Duration(f(col) * float64(time.Millisecond))
		}
		rec := Record{
			Arrival:      time.Duration(f(0) * float64(time.Second)),
			Latency:      ms(1),
			BatchWait:    ms(2),
			QueueDelay:   ms(3),
			Interference: ms(4),
			ColdStart:    ms(5),
			MinExec:      ms(6),
		}
		rec.Failed, err = strconv.ParseBool(row[7])
		if err != nil {
			return nil, fmt.Errorf("metrics: row %d column %s: %q is not a bool",
				line, csvHeader[7], row[7])
		}
		if rowErr != nil {
			return nil, rowErr
		}
		c.Add(rec)
	}
	return c, nil
}

package metrics

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the per-request export schema.
var csvHeader = []string{
	"arrival_s", "latency_ms", "batch_wait_ms", "queue_delay_ms",
	"interference_ms", "cold_start_ms", "min_exec_ms", "failed", "slo_ok",
}

// WriteCSV exports every request record for offline analysis (one row per
// request, times in seconds/milliseconds).
//
// Rows are encoded with strconv's append forms into one reused buffer
// instead of per-field FormatFloat strings through encoding/csv. Every field
// is a plain number or true/false — nothing encoding/csv would quote — and
// csv.Writer's default line ending is "\n", so the bytes are identical to
// the historical encoding/csv output.
func (c *Collector) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 128)
	for i, h := range csvHeader {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, h...)
	}
	buf = append(buf, '\n')
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	ms := func(b []byte, d time.Duration) []byte {
		return strconv.AppendFloat(b, float64(d)/float64(time.Millisecond), 'f', 3, 64)
	}
	var err error
	c.Each(func(r Record) {
		if err != nil {
			return
		}
		buf = buf[:0]
		buf = strconv.AppendFloat(buf, r.Arrival.Seconds(), 'f', 6, 64)
		buf = append(buf, ',')
		buf = ms(buf, r.Latency)
		buf = append(buf, ',')
		buf = ms(buf, r.BatchWait)
		buf = append(buf, ',')
		buf = ms(buf, r.QueueDelay)
		buf = append(buf, ',')
		buf = ms(buf, r.Interference)
		buf = append(buf, ',')
		buf = ms(buf, r.ColdStart)
		buf = append(buf, ',')
		buf = ms(buf, r.MinExec)
		buf = append(buf, ',')
		buf = strconv.AppendBool(buf, r.Failed)
		buf = append(buf, ',')
		buf = strconv.AppendBool(buf, !r.Failed && r.Latency <= c.SLO)
		buf = append(buf, '\n')
		_, err = bw.Write(buf)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses records previously written with WriteCSV into a collector
// with the given SLO (the slo_ok column is recomputed, not trusted). A
// malformed cell is an error naming the offending row and column, never a
// silently coerced zero.
func ReadCSV(r io.Reader, slo time.Duration) (*Collector, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	c := NewCollector(slo)
	for i, row := range rows {
		line := i + 1
		if i == 0 && len(row) > 0 && row[0] == csvHeader[0] {
			continue // header
		}
		if len(row) < 8 {
			return nil, fmt.Errorf("metrics: row %d has %d columns, want at least 8", line, len(row))
		}
		var rowErr error
		f := func(col int) float64 {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil && rowErr == nil {
				rowErr = fmt.Errorf("metrics: row %d column %s: %q is not a number",
					line, csvHeader[col], row[col])
			}
			return v
		}
		ms := func(col int) time.Duration {
			return time.Duration(f(col) * float64(time.Millisecond))
		}
		rec := Record{
			Arrival:      time.Duration(f(0) * float64(time.Second)),
			Latency:      ms(1),
			BatchWait:    ms(2),
			QueueDelay:   ms(3),
			Interference: ms(4),
			ColdStart:    ms(5),
			MinExec:      ms(6),
		}
		rec.Failed, err = strconv.ParseBool(row[7])
		if err != nil {
			return nil, fmt.Errorf("metrics: row %d column %s: %q is not a bool",
				line, csvHeader[7], row[7])
		}
		if rowErr != nil {
			return nil, rowErr
		}
		c.Add(rec)
	}
	return c, nil
}

// Package metrics collects per-request outcomes and computes every quantity
// the paper's evaluation reports: SLO compliance, tail latency percentiles,
// end-to-end latency CDFs, the tail-latency breakdown into minimum possible
// execution time / queueing delay / interference overhead (Figs. 1 and 4),
// goodput over peak-traffic windows (Fig. 7a), and helper statistics for
// aggregating repetitions the way the paper does (outliers beyond 2.5
// standard deviations dropped).
package metrics

import (
	"math"
	"slices"
	"time"
)

// Record is the outcome of one request.
type Record struct {
	// Arrival is the request's arrival instant.
	Arrival time.Duration
	// Latency is the end-to-end response time (arrival to completion).
	Latency time.Duration
	// BatchWait is the time spent in the batcher before dispatch.
	BatchWait time.Duration
	// QueueDelay is the time the request's job waited on the device.
	QueueDelay time.Duration
	// Interference is the execution inflation from co-located jobs.
	Interference time.Duration
	// ColdStart is container startup time serialized before execution.
	ColdStart time.Duration
	// MinExec is the profiled solo execution latency of the request's batch
	// on the hardware that served it ("Min possible time" in Figs. 1 and 4).
	MinExec time.Duration
	// Failed marks requests lost to node failures or overload shedding;
	// they always count as SLO violations.
	Failed bool
}

// Record chunk sizing: the first chunk holds chunkMin records and each new
// chunk doubles up to chunkMax, so small runs stay small while large runs
// allocate exactly the storage they use — unlike append's geometric
// regrowth, which both copies every record O(log n) times and strands the
// abandoned backing arrays (~65% of a large run's allocated bytes before
// this layout).
const (
	chunkMin = 256
	chunkMax = 8192
)

// Collector accumulates request records for one experiment run. Storage is a
// list of fixed-capacity chunks: records are never moved once written.
type Collector struct {
	SLO time.Duration

	chunks [][]Record
	count  int

	sorted   []time.Duration // latencies sorted; valid when sortedOK
	sortedOK bool
}

// NewCollector returns a collector judging requests against the given SLO.
func NewCollector(slo time.Duration) *Collector {
	return &Collector{SLO: slo}
}

// Add appends one request outcome.
func (c *Collector) Add(r Record) {
	n := len(c.chunks)
	if n == 0 || len(c.chunks[n-1]) == cap(c.chunks[n-1]) {
		size := chunkMin
		if n > 0 {
			if size = 2 * cap(c.chunks[n-1]); size > chunkMax {
				size = chunkMax
			}
		}
		c.chunks = append(c.chunks, make([]Record, 0, size))
		n++
	}
	c.chunks[n-1] = append(c.chunks[n-1], r)
	c.count++
	c.sortedOK = false
}

// Count returns the number of recorded requests.
func (c *Collector) Count() int { return c.count }

// Each calls f with every record in insertion order. It is the iteration
// primitive: unlike Records it materializes nothing.
func (c *Collector) Each(f func(Record)) {
	for _, ch := range c.chunks {
		for i := range ch {
			f(ch[i])
		}
	}
}

// Records returns a copy of the records in insertion order. Prefer Each on
// large collections; Records materializes a fresh slice per call.
func (c *Collector) Records() []Record {
	out := make([]Record, 0, c.count)
	for _, ch := range c.chunks {
		out = append(out, ch...)
	}
	return out
}

// SLOCompliance returns the fraction of requests that completed within the
// SLO, in [0, 1]. Failed requests always violate. An empty collector reports
// 1 (no request missed its target).
func (c *Collector) SLOCompliance() float64 {
	if c.count == 0 {
		return 1
	}
	ok := 0
	for _, ch := range c.chunks {
		for i := range ch {
			if !ch[i].Failed && ch[i].Latency <= c.SLO {
				ok++
			}
		}
	}
	return float64(ok) / float64(c.count)
}

// Violations returns the number of requests that missed the SLO or failed.
func (c *Collector) Violations() int {
	v := 0
	for _, ch := range c.chunks {
		for i := range ch {
			if ch[i].Failed || ch[i].Latency > c.SLO {
				v++
			}
		}
	}
	return v
}

func (c *Collector) ensureSorted() {
	if c.sortedOK {
		return
	}
	c.sorted = c.sorted[:0]
	if cap(c.sorted) < c.count {
		c.sorted = make([]time.Duration, 0, c.count)
	}
	for _, ch := range c.chunks {
		for i := range ch {
			c.sorted = append(c.sorted, ch[i].Latency)
		}
	}
	slices.Sort(c.sorted)
	c.sortedOK = true
}

// Percentile returns the p-th latency percentile (p in (0,100]), using the
// nearest-rank method. It returns 0 for an empty collector.
func (c *Collector) Percentile(p float64) time.Duration {
	if c.count == 0 {
		return 0
	}
	c.ensureSorted()
	rank := int(math.Ceil(p / 100 * float64(len(c.sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(c.sorted) {
		rank = len(c.sorted)
	}
	return c.sorted[rank-1]
}

// Mean returns the mean end-to-end latency.
func (c *Collector) Mean() time.Duration {
	if c.count == 0 {
		return 0
	}
	var sum time.Duration
	for _, ch := range c.chunks {
		for i := range ch {
			sum += ch[i].Latency
		}
	}
	return sum / time.Duration(c.count)
}

// CDFPoint is one point of a latency CDF.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64 // fraction of requests with latency <= Latency
}

// CDF returns the end-to-end latency CDF sampled at n evenly spaced
// fractions (Fig. 6).
func (c *Collector) CDF(n int) []CDFPoint {
	if c.count == 0 || n <= 0 {
		return nil
	}
	c.ensureSorted()
	out := make([]CDFPoint, n)
	for i := 0; i < n; i++ {
		f := float64(i+1) / float64(n)
		idx := int(f*float64(len(c.sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		out[i] = CDFPoint{Latency: c.sorted[idx], Fraction: f}
	}
	return out
}

// Breakdown decomposes latency into the paper's Fig. 1/4 components.
type Breakdown struct {
	// MinExec is the interference- and queueing-free execution time.
	MinExec time.Duration
	// BatchWait is time spent forming the batch.
	BatchWait time.Duration
	// QueueDelay is device queueing (time sharing) delay.
	QueueDelay time.Duration
	// Interference is execution inflation from spatial co-location.
	Interference time.Duration
	// ColdStart is container startup serialized into the request.
	ColdStart time.Duration
	// Total is the end-to-end latency.
	Total time.Duration
}

// TailBreakdown averages the latency components of the requests in the
// percentile band [pLo, pHi] — e.g. (99, 99.5) reproduces the paper's P99
// breakdown figures.
func (c *Collector) TailBreakdown(pLo, pHi float64) Breakdown {
	if c.count == 0 {
		return Breakdown{}
	}
	lo := c.Percentile(pLo)
	hi := c.Percentile(pHi)
	var b Breakdown
	n := 0
	for _, ch := range c.chunks {
		for i := range ch {
			r := &ch[i]
			if r.Latency < lo || r.Latency > hi {
				continue
			}
			b.MinExec += r.MinExec
			b.BatchWait += r.BatchWait
			b.QueueDelay += r.QueueDelay
			b.Interference += r.Interference
			b.ColdStart += r.ColdStart
			b.Total += r.Latency
			n++
		}
	}
	if n == 0 {
		return Breakdown{}
	}
	d := time.Duration(n)
	return Breakdown{
		MinExec:      b.MinExec / d,
		BatchWait:    b.BatchWait / d,
		QueueDelay:   b.QueueDelay / d,
		Interference: b.Interference / d,
		ColdStart:    b.ColdStart / d,
		Total:        b.Total / d,
	}
}

// GoodputRPS returns the rate of requests served within the SLO whose
// arrivals fall in [from, to) — the paper's goodput metric for peak-traffic
// analysis.
func (c *Collector) GoodputRPS(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	ok := 0
	for _, ch := range c.chunks {
		for i := range ch {
			r := &ch[i]
			if r.Arrival >= from && r.Arrival < to && !r.Failed && r.Latency <= c.SLO {
				ok++
			}
		}
	}
	return float64(ok) / (to - from).Seconds()
}

// ArrivalRPS returns the arrival rate over [from, to).
func (c *Collector) ArrivalRPS(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	n := 0
	for _, ch := range c.chunks {
		for i := range ch {
			if ch[i].Arrival >= from && ch[i].Arrival < to {
				n++
			}
		}
	}
	return float64(n) / (to - from).Seconds()
}

// MeanDropOutliers averages values after discarding entries more than k
// standard deviations from the mean — the paper's repetition-aggregation
// rule (k = 2.5). With fewer than 3 values it returns the plain mean.
func MeanDropOutliers(values []float64, k float64) float64 {
	if len(values) == 0 {
		return 0
	}
	mean, sd := meanStd(values)
	if len(values) < 3 || sd == 0 {
		return mean
	}
	var kept []float64
	for _, v := range values {
		if math.Abs(v-mean) <= k*sd {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		return mean
	}
	m, _ := meanStd(kept)
	return m
}

func meanStd(values []float64) (mean, sd float64) {
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	for _, v := range values {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(len(values)))
	return mean, sd
}

package metrics

import (
	"math"
	"time"
)

// ageMinSamples is how many completed-request latencies the tracker wants
// before its percentile estimate is trustworthy; below it Ready() is false
// and callers fall back to a static threshold (the hedge policy uses a
// fraction of the SLO).
const ageMinSamples = 32

// ageRecomputeEvery bounds the staleness of the cached threshold: the
// percentile is re-derived from the buckets at most once per this many
// observations, keeping Add amortized O(1) and Threshold exactly O(1).
const ageRecomputeEvery = 64

// ageBuckets sizes the fixed bucket array: ceil(ln(1000s in ns)/ln γ) at
// α = SketchAlpha is ~1382, so 1536 covers 1 ns through beyond 1000 s with
// headroom; indices are clamped, so out-of-range latencies saturate into
// the edge buckets instead of growing memory.
const ageBuckets = 1536

// AgeTracker is the hedge policy's online latency-percentile estimator: it
// ingests every completed request's latency and answers "how old must a
// request be before it is slower than p% of its peers?" — the age at which
// a backup copy is launched. Same log-bucketed DDSketch math as
// latencySketch (γ = (1+α)/(1-α), value v in bucket ceil(log_γ v), bucket
// midpoint within α of every member) but on a fixed array with a cached
// answer, so both Add and Threshold are allocation-free on the dispatch
// hot path. Deterministic: same observations, same thresholds.
type AgeTracker struct {
	pct     float64 // target percentile, in (0, 100]
	lnGamma float64
	gamma   float64
	counts  [ageBuckets]uint32
	n       uint64
	zeros   uint64 // non-positive observations
	pending int    // adds since the cached threshold was derived
	cached  time.Duration
}

// NewAgeTracker returns a tracker for the given percentile (e.g. 95 hedges
// requests older than the p95 latency). Percentiles outside (0,100] are
// clamped to 100.
func NewAgeTracker(pct float64) *AgeTracker {
	if !(pct > 0 && pct <= 100) {
		pct = 100
	}
	gamma := (1 + SketchAlpha) / (1 - SketchAlpha)
	return &AgeTracker{pct: pct, gamma: gamma, lnGamma: math.Log(gamma)}
}

// Add records one completed request's latency. Allocation-free; amortized
// O(1) (a bucket walk every ageRecomputeEvery observations).
func (t *AgeTracker) Add(v time.Duration) {
	t.n++
	if v <= 0 {
		t.zeros++
	} else {
		k := int(math.Ceil(math.Log(float64(v)) / t.lnGamma))
		if k < 0 {
			k = 0
		} else if k >= ageBuckets {
			k = ageBuckets - 1
		}
		t.counts[k]++
	}
	t.pending++
	if t.pending >= ageRecomputeEvery || t.n == ageMinSamples {
		t.recompute()
	}
}

// Ready reports whether enough observations have accumulated for Threshold
// to be meaningful; before that callers should hedge on a static fallback.
func (t *AgeTracker) Ready() bool { return t.n >= ageMinSamples }

// N returns the number of observations ingested.
func (t *AgeTracker) N() uint64 { return t.n }

// Threshold returns the tracked percentile of all observed latencies, from
// the cache (at most ageRecomputeEvery observations stale). Zero until
// Ready.
func (t *AgeTracker) Threshold() time.Duration {
	if !t.Ready() {
		return 0
	}
	return t.cached
}

// recompute re-derives the cached percentile by a nearest-rank walk over
// the occupied buckets, answering with the bucket midpoint (within α of
// the true value, like latencySketch above the exact prefix).
func (t *AgeTracker) recompute() {
	t.pending = 0
	if t.n == 0 {
		t.cached = 0
		return
	}
	rank := uint64(math.Ceil(t.pct / 100 * float64(t.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > t.n {
		rank = t.n
	}
	if rank <= t.zeros {
		t.cached = 0
		return
	}
	rank -= t.zeros
	var cum uint64
	for k := 0; k < ageBuckets; k++ {
		cum += uint64(t.counts[k])
		if cum >= rank {
			t.cached = time.Duration(2 * math.Pow(t.gamma, float64(k)) / (t.gamma + 1))
			return
		}
	}
	t.cached = 0
}

package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// Merging shard aggregators must answer exactly what one aggregator fed the
// union stream would, for everything the sharded Result reports: counts,
// compliance, mean, max, breakdown and goodput windows are exact; percentiles
// agree within the sketch's structural α bound.
func TestMergeOnlineMatchesUnionStream(t *testing.T) {
	const slo = 200 * time.Millisecond
	rng := rand.New(rand.NewSource(7))
	mkRecord := func(i int) Record {
		lat := time.Duration(rng.ExpFloat64() * float64(150*time.Millisecond))
		return Record{
			Arrival:      time.Duration(i) * 37 * time.Millisecond,
			Latency:      lat,
			BatchWait:    lat / 5,
			QueueDelay:   lat / 7,
			Interference: lat / 11,
			ColdStart:    lat / 13,
			MinExec:      lat / 3,
			Failed:       i%97 == 0,
		}
	}

	const n = 5000
	dur := time.Duration(n) * 37 * time.Millisecond
	union := NewOnline(slo, dur, DefaultGoodputWindow)
	parts := make([]*Online, 4)
	for i := range parts {
		parts[i] = NewOnline(slo, dur, DefaultGoodputWindow)
	}
	for i := 0; i < n; i++ {
		r := mkRecord(i)
		union.Add(r)
		parts[i%len(parts)].Add(r)
	}

	merged := MergeOnline(parts)
	if merged.Count() != union.Count() {
		t.Fatalf("count: merged %d, union %d", merged.Count(), union.Count())
	}
	if merged.Failed() != union.Failed() {
		t.Errorf("failed: merged %d, union %d", merged.Failed(), union.Failed())
	}
	if merged.SLOCompliance() != union.SLOCompliance() {
		t.Errorf("compliance: merged %v, union %v", merged.SLOCompliance(), union.SLOCompliance())
	}
	if merged.Mean() != union.Mean() {
		t.Errorf("mean: merged %v, union %v", merged.Mean(), union.Mean())
	}
	if merged.Max() != union.Max() {
		t.Errorf("max: merged %v, union %v", merged.Max(), union.Max())
	}
	if got, want := merged.MeanBreakdown(), union.MeanBreakdown(); got != want {
		t.Errorf("breakdown: merged %+v, union %+v", got, want)
	}
	for _, p := range []float64{50, 95, 99} {
		got, want := merged.Percentile(p), union.Percentile(p)
		if relErr(got, want) > 2*SketchAlpha {
			t.Errorf("P%.0f: merged %v vs union %v beyond sketch bound", p, got, want)
		}
	}
	for from := time.Duration(0); from < dur; from += 13 * time.Second {
		to := from + 5*time.Second
		if g, u := merged.GoodputRPS(from, to), union.GoodputRPS(from, to); g != u {
			t.Errorf("goodput[%v,%v): merged %v, union %v", from, to, g, u)
		}
		if g, u := merged.ArrivalRPS(from, to), union.ArrivalRPS(from, to); g != u {
			t.Errorf("arrivals[%v,%v): merged %v, union %v", from, to, g, u)
		}
	}
}

// Determinism is the property the sharded path leans on: merging the same
// sources in the same order yields identical snapshots every time, and
// worker-count never enters the computation.
func TestMergeOnlineDeterministic(t *testing.T) {
	parts := make([]*Online, 3)
	for i := range parts {
		parts[i] = NewOnline(100*time.Millisecond, time.Minute, DefaultGoodputWindow)
		for j := 0; j < 200*(i+1); j++ {
			parts[i].Add(Record{
				Arrival: time.Duration(j) * 100 * time.Millisecond,
				Latency: time.Duration((i+1)*(j%50)) * time.Millisecond,
			})
		}
	}
	a, b := MergeOnline(parts), MergeOnline(parts)
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Errorf("repeat merges differ:\n%+v\nvs\n%+v", a.Snapshot(), b.Snapshot())
	}
}

// An empty merge must not panic and must report like an empty aggregator.
func TestMergeOnlineEmpty(t *testing.T) {
	m := MergeOnline(nil)
	if m.Count() != 0 || m.SLOCompliance() != 1 {
		t.Errorf("empty merge: count=%d compliance=%v", m.Count(), m.SLOCompliance())
	}
	m = MergeOnline([]*Online{nil, NewOnline(time.Second, 0, 0), nil})
	if m.Count() != 0 {
		t.Errorf("nil-source merge: count=%d", m.Count())
	}
}

// Tee duplicates writes and reads from the primary only.
func TestTeeFeedsBothReadsPrimary(t *testing.T) {
	prim := NewOnline(200*time.Millisecond, 0, 0)
	mirror := NewOnline(200*time.Millisecond, 0, 0)
	tee := NewTee(prim, mirror)
	var agg Aggregator = tee
	for i := 0; i < 10; i++ {
		agg.Add(Record{Latency: time.Duration(i) * 30 * time.Millisecond})
	}
	if prim.Count() != 10 || mirror.Count() != 10 {
		t.Fatalf("tee counts: primary %d mirror %d", prim.Count(), mirror.Count())
	}
	mirror.Add(Record{Latency: time.Hour}) // mirror-only noise
	if agg.Count() != 10 {
		t.Errorf("tee reads from mirror, not primary: count=%d", agg.Count())
	}
	if agg.Percentile(99) != prim.Percentile(99) {
		t.Errorf("tee percentile %v != primary %v", agg.Percentile(99), prim.Percentile(99))
	}
}

func relErr(got, want time.Duration) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(float64(got-want)) / float64(want)
}

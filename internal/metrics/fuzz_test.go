package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzReadCSV throws arbitrary bytes at the request-record CSV parser: it
// must never panic, and anything it accepts must re-serialize stably —
// write(read(in)) is a fixed point of a second read/write cycle, with the
// record count preserved. (The first write may differ from the raw input —
// the parser tolerates a missing slo_ok column and re-normalizes number
// formatting — but after one normalization pass the representation is
// canonical.)
func FuzzReadCSV(f *testing.F) {
	f.Add("")
	f.Add("arrival_s,latency_ms,batch_wait_ms,queue_delay_ms,interference_ms,cold_start_ms,min_exec_ms,failed,slo_ok\n")
	f.Add("0.5,120,10,5,0,0,90,false,true\n")
	f.Add("not,a,valid,row\n")
	f.Add("1.0,50.5,0,0,0,300,40,true,false\n2.0,10,1,0,0,0,9,false,true\n")
	f.Fuzz(func(t *testing.T, in string) {
		c, err := ReadCSV(strings.NewReader(in), 200*time.Millisecond)
		if err != nil {
			return
		}
		var w1 bytes.Buffer
		if err := c.WriteCSV(&w1); err != nil {
			t.Fatalf("accepted input failed to serialize: %v", err)
		}
		back, err := ReadCSV(bytes.NewReader(w1.Bytes()), 200*time.Millisecond)
		if err != nil {
			t.Fatalf("own output rejected: %v\noutput:\n%s", err, w1.String())
		}
		if back.Count() != c.Count() {
			t.Fatalf("round trip lost records: %d != %d", back.Count(), c.Count())
		}
		var w2 bytes.Buffer
		if err := back.WriteCSV(&w2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("serialization not stable after one normalization pass:\n-- first --\n%s\n-- second --\n%s",
				w1.String(), w2.String())
		}
	})
}

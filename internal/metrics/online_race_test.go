package metrics

import (
	"sync"
	"testing"
	"time"
)

// TestOnlineConcurrentSnapshot is the thread-safety contract behind the live
// observability plane: one goroutine Adds (the simulation) while several
// others take Snapshots and run every reader concurrently (the HTTP
// handlers). Run under -race -cpu 1,4 in CI; without -race it still checks
// that concurrent reads never observe torn counters (violations, compliance
// and count must stay mutually consistent, and counts never go backwards).
func TestOnlineConcurrentSnapshot(t *testing.T) {
	const n = 20000
	o := NewOnline(100*time.Millisecond, time.Hour, time.Second)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := o.Snapshot()
				if s.Count < last {
					t.Errorf("count went backwards: %d after %d", s.Count, last)
					return
				}
				last = s.Count
				if s.OK+s.Violations != s.Count {
					t.Errorf("torn snapshot: ok %d + violations %d != count %d",
						s.OK, s.Violations, s.Count)
					return
				}
				if s.Count > 0 && (s.Compliance < 0 || s.Compliance > 1) {
					t.Errorf("compliance %v out of range", s.Compliance)
					return
				}
				// Exercise the remaining readers for the race detector.
				o.Percentile(99)
				o.Mean()
				o.Max()
				o.MeanBreakdown()
				o.GoodputRPS(0, time.Minute)
				o.ArrivalRPS(0, time.Minute)
				o.SLOCompliance()
				o.Violations()
				o.Failed()
			}
		}()
	}

	for i := 0; i < n; i++ {
		lat := time.Duration(i%250) * time.Millisecond
		o.Add(Record{
			Arrival: time.Duration(i) * time.Millisecond,
			Latency: lat,
			MinExec: lat / 2,
			Failed:  i%97 == 0,
		})
	}
	close(stop)
	wg.Wait()

	s := o.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	if s.Failed == 0 || s.Violations == 0 {
		t.Fatalf("expected failures and violations, got failed=%d violations=%d",
			s.Failed, s.Violations)
	}
	if s.OK+s.Violations != s.Count {
		t.Fatalf("final snapshot inconsistent: %+v", s)
	}
	if got, want := s.Compliance, float64(s.OK)/float64(n); got != want {
		t.Fatalf("compliance %v, want %v", got, want)
	}
	if s.P50 <= 0 || s.P99 < s.P50 {
		t.Fatalf("implausible percentiles: p50=%v p99=%v", s.P50, s.P99)
	}
	if s.Max != 249*time.Millisecond {
		t.Fatalf("max %v, want 249ms", s.Max)
	}
}

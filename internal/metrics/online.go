package metrics

import (
	"math"
	"slices"
	"sync"
	"time"
)

// Aggregator consumes per-request outcomes. Two implementations exist: the
// exact Collector (default; O(N) memory, exact percentiles and tail
// breakdowns) and the constant-memory Online aggregator (streaming counters
// plus fixed-size quantile sketches) that million-request runs select via
// core.Config.
type Aggregator interface {
	Add(r Record)
	Count() int
	SLOCompliance() float64
	Violations() int
	Percentile(p float64) time.Duration
	Mean() time.Duration
}

var (
	_ Aggregator = (*Collector)(nil)
	_ Aggregator = (*Online)(nil)
)

// DefaultGoodputWindow is the arrival-window resolution of the Online
// aggregator's goodput counters (matching the 1 s windows the peak-traffic
// analysis reads).
const DefaultGoodputWindow = time.Second

// SketchAlpha is the latency sketch's guaranteed relative accuracy: any
// percentile it reports is within this fraction of the exact nearest-rank
// value, for any latency distribution (the guarantee is structural — one
// log-spaced bucket never spans more than 2α relative width — not
// empirical).
const SketchAlpha = 0.01

// Online is the constant-memory Aggregator: counts, sums and per-window
// goodput counters are exact; latency percentiles come from a log-bucketed
// quantile sketch with a guaranteed relative error (SketchAlpha); the
// Fig. 1/4 component breakdown is tracked as whole-population means rather
// than the Collector's percentile-band means. Memory is O(duration/window)
// for the goodput counters and O(log(maxLatency)/α) for the sketch —
// independent of request count.
//
// Online is safe for concurrent use: the simulation goroutine Adds while
// observers (the live observability plane, -progress reporting) call
// Snapshot or any reader concurrently. A single uncontended mutex guards
// every method — nanoseconds per request against a simulation that spends
// microseconds per request, and no effect on determinism.
type Online struct {
	SLO time.Duration

	mu         sync.Mutex
	count      int
	failed     int
	ok         int // completed within SLO
	latSum     time.Duration
	latMax     time.Duration
	sketch     latencySketch
	breakdown  Breakdown // component sums until MeanBreakdown divides
	goodWindow time.Duration
	okWin      []uint32 // served-within-SLO count per arrival window
	totWin     []uint32 // arrivals per window
}

// NewOnline returns a constant-memory aggregator judging requests against
// slo. duration bounds the goodput window counters (arrivals at or beyond it
// clamp into the last window); window <= 0 disables goodput tracking.
func NewOnline(slo, duration, window time.Duration) *Online {
	o := &Online{SLO: slo, goodWindow: window, sketch: newLatencySketch(SketchAlpha)}
	if window > 0 && duration > 0 {
		n := int(duration/window) + 1
		o.okWin = make([]uint32, n)
		o.totWin = make([]uint32, n)
	}
	return o
}

// Add absorbs one request outcome in O(1) time and memory.
func (o *Online) Add(r Record) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.count++
	inSLO := !r.Failed && r.Latency <= o.SLO
	if r.Failed {
		o.failed++
	}
	if inSLO {
		o.ok++
	}
	o.latSum += r.Latency
	if r.Latency > o.latMax {
		o.latMax = r.Latency
	}
	o.sketch.add(r.Latency)
	o.breakdown.MinExec += r.MinExec
	o.breakdown.BatchWait += r.BatchWait
	o.breakdown.QueueDelay += r.QueueDelay
	o.breakdown.Interference += r.Interference
	o.breakdown.ColdStart += r.ColdStart
	o.breakdown.Total += r.Latency
	if o.totWin != nil {
		i := int(r.Arrival / o.goodWindow)
		if i < 0 {
			i = 0
		}
		if i >= len(o.totWin) {
			i = len(o.totWin) - 1
		}
		o.totWin[i]++
		if inSLO {
			o.okWin[i]++
		}
	}
}

// Count returns the number of absorbed requests.
func (o *Online) Count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.count
}

// Failed returns the number of failed requests.
func (o *Online) Failed() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.failed
}

// SLOCompliance returns the fraction of requests served within the SLO. An
// empty aggregator reports 1, like the Collector.
func (o *Online) SLOCompliance() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.complianceLocked()
}

func (o *Online) complianceLocked() float64 {
	if o.count == 0 {
		return 1
	}
	return float64(o.ok) / float64(o.count)
}

// Violations returns the number of requests that missed the SLO or failed.
func (o *Online) Violations() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.count - o.ok
}

// Mean returns the mean end-to-end latency (exact).
func (o *Online) Mean() time.Duration {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.meanLocked()
}

func (o *Online) meanLocked() time.Duration {
	if o.count == 0 {
		return 0
	}
	return o.latSum / time.Duration(o.count)
}

// Max returns the maximum observed latency (exact).
func (o *Online) Max() time.Duration {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.latMax
}

// Percentile returns the sketch estimate of the p-th latency percentile
// (p in (0,100]), within SketchAlpha relative error of the Collector's
// exact nearest-rank value. Small runs (up to the sketch's exact-prefix
// size) report exact percentiles.
func (o *Online) Percentile(p float64) time.Duration {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sketch.quantile(p / 100)
}

// MeanBreakdown returns the whole-population mean of each latency component
// — the constant-memory stand-in for the Collector's percentile-band
// TailBreakdown.
func (o *Online) MeanBreakdown() Breakdown {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.meanBreakdownLocked()
}

func (o *Online) meanBreakdownLocked() Breakdown {
	if o.count == 0 {
		return Breakdown{}
	}
	d := time.Duration(o.count)
	b := o.breakdown
	return Breakdown{
		MinExec:      b.MinExec / d,
		BatchWait:    b.BatchWait / d,
		QueueDelay:   b.QueueDelay / d,
		Interference: b.Interference / d,
		ColdStart:    b.ColdStart / d,
		Total:        b.Total / d,
	}
}

// Snapshot is a consistent point-in-time view of the aggregator, cheap
// enough to take mid-run on a sampling cadence: counters and means are
// exact, the percentiles are sketch estimates (SketchAlpha relative error).
type Snapshot struct {
	Count      int
	Failed     int
	OK         int // completed within the SLO
	Violations int // missed the SLO or failed

	Compliance float64
	Mean       time.Duration
	Max        time.Duration

	P50, P95, P99 time.Duration

	Breakdown Breakdown // whole-population component means
}

// Snapshot returns a consistent mid-run view under one lock acquisition —
// the thread-safe read API behind the live observability plane's /metrics
// and /state endpoints and paldia-sim's -progress reporting. It is safe to
// call at any time from any goroutine, including while the simulation
// goroutine is Adding.
func (o *Online) Snapshot() Snapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	return Snapshot{
		Count:      o.count,
		Failed:     o.failed,
		OK:         o.ok,
		Violations: o.count - o.ok,
		Compliance: o.complianceLocked(),
		Mean:       o.meanLocked(),
		Max:        o.latMax,
		P50:        o.sketch.quantile(0.50),
		P95:        o.sketch.quantile(0.95),
		P99:        o.sketch.quantile(0.99),
		Breakdown:  o.meanBreakdownLocked(),
	}
}

// GoodputRPS returns the rate of requests served within the SLO whose
// arrivals fall in [from, to). Counts are exact per aligned window; partial
// edge windows are prorated by overlap, so unaligned bounds are an
// approximation at the two edges only.
func (o *Online) GoodputRPS(from, to time.Duration) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.windowRate(o.okWin, from, to)
}

// ArrivalRPS returns the arrival rate over [from, to), with the same
// aligned-exact / edge-prorated semantics as GoodputRPS.
func (o *Online) ArrivalRPS(from, to time.Duration) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.windowRate(o.totWin, from, to)
}

func (o *Online) windowRate(win []uint32, from, to time.Duration) float64 {
	if to <= from || win == nil {
		return 0
	}
	sum := 0.0
	for i, c := range win {
		if c == 0 {
			continue
		}
		wFrom := time.Duration(i) * o.goodWindow
		wTo := wFrom + o.goodWindow
		overlap := minDur(wTo, to) - maxDur(wFrom, from)
		if overlap <= 0 {
			continue
		}
		sum += float64(c) * float64(overlap) / float64(o.goodWindow)
	}
	return sum / (to - from).Seconds()
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// --- quantile sketch ---------------------------------------------------------

// sketchExactPrefix is how many observations the sketch keeps exactly
// before answering from buckets; runs at or under it report exact
// nearest-rank percentiles (matching the Collector bit-for-bit).
const sketchExactPrefix = 64

// latencySketch is a DDSketch-style log-bucketed quantile estimator: value v
// lands in bucket ceil(log_γ(v)) with γ = (1+α)/(1-α), so one bucket spans
// at most 2α/(1-α) relative width and the bucket midpoint is within α of
// every value in it — a structural guarantee that holds for any
// distribution, unlike moment- or marker-based sketches (P², notably, can
// be badly wrong on the bimodal fast-path/surge latency mix this simulator
// produces). Memory is one counter per occupied bucket: O(log(max/min)/α),
// ~1400 buckets at α=1% for the full 1 ns..1000 s latency range,
// independent of request count. Deterministic: same inputs, same answers.
type latencySketch struct {
	gamma   float64
	lnGamma float64
	counts  map[int]uint64
	n       uint64
	zeros   uint64 // non-positive observations (latency 0)

	exact []time.Duration // first sketchExactPrefix observations, verbatim
}

func newLatencySketch(alpha float64) latencySketch {
	gamma := (1 + alpha) / (1 - alpha)
	return latencySketch{
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		counts:  make(map[int]uint64),
	}
}

func (s *latencySketch) add(v time.Duration) {
	s.n++
	if len(s.exact) < sketchExactPrefix {
		s.exact = append(s.exact, v)
	}
	if v <= 0 {
		s.zeros++
		return
	}
	s.counts[s.bucket(v)]++
}

func (s *latencySketch) bucket(v time.Duration) int {
	return int(math.Ceil(math.Log(float64(v)) / s.lnGamma))
}

// quantile returns the q-th quantile (q in (0,1]) using the Collector's
// nearest-rank convention. At or under the exact prefix it is exact; above
// it, within α relative error.
func (s *latencySketch) quantile(q float64) time.Duration {
	if s.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.n {
		rank = s.n
	}
	if s.n <= uint64(len(s.exact)) {
		sorted := make([]time.Duration, s.n)
		copy(sorted, s.exact[:s.n])
		slices.Sort(sorted)
		return sorted[rank-1]
	}
	if rank <= s.zeros {
		return 0
	}
	rank -= s.zeros
	// Walk the occupied buckets in ascending order until the cumulative
	// count reaches the rank; the bucket midpoint is within α of the true
	// value. Queries are rare (end of run), so sorting keys here is cheap.
	keys := make([]int, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	var cum uint64
	for _, k := range keys {
		cum += s.counts[k]
		if cum >= rank {
			// Bucket k spans (γ^(k-1), γ^k]; 2γ^k/(γ+1) is its midpoint in
			// relative terms.
			return time.Duration(2 * math.Pow(s.gamma, float64(k)) / (s.gamma + 1))
		}
	}
	return s.maxSeen()
}

func (s *latencySketch) maxSeen() time.Duration {
	maxK := 0
	found := false
	for k := range s.counts {
		if !found || k > maxK {
			maxK, found = k, true
		}
	}
	if !found {
		return 0
	}
	return time.Duration(2 * math.Pow(s.gamma, float64(maxK)) / (s.gamma + 1))
}

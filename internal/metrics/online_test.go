package metrics

import (
	"math"
	mrand "math/rand"
	"testing"
	"time"
)

// feedBoth generates n seeded records with failures and a long latency tail
// and adds each to both aggregators, returning them.
func feedBoth(n int, seed int64, slo time.Duration) (*Collector, *Online) {
	r := mrand.New(mrand.NewSource(seed))
	col := NewCollector(slo)
	on := NewOnline(slo, time.Duration(n)*time.Millisecond, DefaultGoodputWindow)
	for i := 0; i < n; i++ {
		// Log-normal-ish latency with a heavy tail.
		lat := time.Duration(math.Exp(3+1.2*r.NormFloat64()) * float64(time.Millisecond))
		rec := Record{
			Arrival:      time.Duration(i) * time.Millisecond,
			Latency:      lat,
			MinExec:      lat / 2,
			BatchWait:    lat / 8,
			QueueDelay:   lat / 4,
			Interference: lat / 16,
			ColdStart:    lat / 16,
			Failed:       r.Float64() < 0.02,
		}
		col.Add(rec)
		on.Add(rec)
	}
	return col, on
}

// TestOnlineExactCounters: everything the Online aggregator tracks exactly
// (counts, compliance, violations, mean, max, breakdown means, goodput over
// aligned windows) must match the exact Collector bit-for-bit.
func TestOnlineExactCounters(t *testing.T) {
	col, on := feedBoth(20000, 42, 80*time.Millisecond)

	if on.Count() != col.Count() {
		t.Errorf("Count = %d, want %d", on.Count(), col.Count())
	}
	if on.SLOCompliance() != col.SLOCompliance() {
		t.Errorf("SLOCompliance = %v, want %v", on.SLOCompliance(), col.SLOCompliance())
	}
	if on.Violations() != col.Violations() {
		t.Errorf("Violations = %d, want %d", on.Violations(), col.Violations())
	}
	if on.Mean() != col.Mean() {
		t.Errorf("Mean = %v, want %v", on.Mean(), col.Mean())
	}
	for _, w := range []struct{ from, to time.Duration }{
		{0, time.Second},
		{2 * time.Second, 5 * time.Second},
		{0, 20 * time.Second},
	} {
		if got, want := on.GoodputRPS(w.from, w.to), col.GoodputRPS(w.from, w.to); got != want {
			t.Errorf("GoodputRPS(%v,%v) = %v, want %v", w.from, w.to, got, want)
		}
		if got, want := on.ArrivalRPS(w.from, w.to), col.ArrivalRPS(w.from, w.to); got != want {
			t.Errorf("ArrivalRPS(%v,%v) = %v, want %v", w.from, w.to, got, want)
		}
	}
}

// TestOnlineEmptyMatchesCollector: zero-request semantics must agree.
func TestOnlineEmptyMatchesCollector(t *testing.T) {
	col := NewCollector(time.Second)
	on := NewOnline(time.Second, time.Minute, DefaultGoodputWindow)
	if on.SLOCompliance() != col.SLOCompliance() {
		t.Errorf("empty SLOCompliance = %v, want %v", on.SLOCompliance(), col.SLOCompliance())
	}
	if on.Percentile(99) != col.Percentile(99) {
		t.Errorf("empty Percentile = %v, want %v", on.Percentile(99), col.Percentile(99))
	}
	if on.Mean() != col.Mean() {
		t.Errorf("empty Mean = %v, want %v", on.Mean(), col.Mean())
	}
}

// TestOnlineTinyRunsExactPercentiles: at or under the sketch's exact prefix
// the Online aggregator must report the Collector's exact nearest-rank
// percentiles.
func TestOnlineTinyRunsExactPercentiles(t *testing.T) {
	for n := 1; n <= 4; n++ {
		col := NewCollector(time.Second)
		on := NewOnline(time.Second, time.Minute, 0)
		lats := []time.Duration{40, 10, 30, 20}
		for i := 0; i < n; i++ {
			rec := Record{Latency: lats[i] * time.Millisecond}
			col.Add(rec)
			on.Add(rec)
		}
		for _, p := range []float64{50, 95, 99} {
			if got, want := on.Percentile(p), col.Percentile(p); got != want {
				t.Errorf("n=%d P%v = %v, want %v", n, p, got, want)
			}
		}
	}
}

// TestOnlineSketchErrorBound pins the documented accuracy of the latency
// sketch: every percentile estimate is within SketchAlpha relative error of
// the exact nearest-rank value. The bound is structural (log-bucket width),
// so it must hold on adversarial shapes too — the bimodal fast-path/surge
// mix the simulator actually produces, not just smooth distributions.
func TestOnlineSketchErrorBound(t *testing.T) {
	const relBound = SketchAlpha * 1.01 // float slack only; the bound is exact
	check := func(t *testing.T, col *Collector, on *Online) {
		t.Helper()
		for _, p := range []float64{10, 50, 90, 95, 99, 99.9} {
			exact := float64(col.Percentile(p))
			est := float64(on.Percentile(p))
			rel := math.Abs(est-exact) / exact
			if rel > relBound {
				t.Errorf("P%v: sketch %v vs exact %v (rel err %.4f > %.4f)",
					p, time.Duration(est), time.Duration(exact), rel, relBound)
			}
		}
	}
	t.Run("lognormal", func(t *testing.T) {
		for _, seed := range []int64{1, 7, 1234} {
			col, on := feedBoth(50000, seed, 80*time.Millisecond)
			check(t, col, on)
		}
	})
	t.Run("bimodal", func(t *testing.T) {
		// 97% tight fast-path around 20 ms, 3% surge tail around 400 ms:
		// the shape that defeats marker-based sketches (P²).
		r := mrand.New(mrand.NewSource(3))
		col := NewCollector(200 * time.Millisecond)
		on := NewOnline(200*time.Millisecond, time.Minute, 0)
		for i := 0; i < 50000; i++ {
			lat := time.Duration((20 + 2*r.NormFloat64()) * float64(time.Millisecond))
			if r.Float64() < 0.03 {
				lat = time.Duration((400 + 50*r.NormFloat64()) * float64(time.Millisecond))
			}
			if lat < time.Millisecond {
				lat = time.Millisecond
			}
			rec := Record{Latency: lat}
			col.Add(rec)
			on.Add(rec)
		}
		check(t, col, on)
	})
}

// TestOnlineMeanBreakdown: component means must equal the exact sums divided
// by the count.
func TestOnlineMeanBreakdown(t *testing.T) {
	col, on := feedBoth(5000, 9, 80*time.Millisecond)
	var want Breakdown
	for _, r := range col.Records() {
		want.MinExec += r.MinExec
		want.BatchWait += r.BatchWait
		want.QueueDelay += r.QueueDelay
		want.Interference += r.Interference
		want.ColdStart += r.ColdStart
		want.Total += r.Latency
	}
	d := time.Duration(col.Count())
	want = Breakdown{
		MinExec: want.MinExec / d, BatchWait: want.BatchWait / d,
		QueueDelay: want.QueueDelay / d, Interference: want.Interference / d,
		ColdStart: want.ColdStart / d, Total: want.Total / d,
	}
	if got := on.MeanBreakdown(); got != want {
		t.Errorf("MeanBreakdown = %+v, want %+v", got, want)
	}
}

// TestLatencySketchBoundedBuckets: the sketch's bucket count must be bounded
// by the latency range and α, not the observation count.
func TestLatencySketchBoundedBuckets(t *testing.T) {
	s := newLatencySketch(SketchAlpha)
	r := mrand.New(mrand.NewSource(5))
	for i := 0; i < 500000; i++ {
		// Spread across 1 µs .. 100 s (8 decades).
		s.add(time.Duration(math.Exp(math.Log(1e3) + r.Float64()*math.Log(1e8))))
	}
	// ln(1e8)/ln(γ) ≈ 18.4/0.02 ≈ 921 buckets for the 8-decade spread.
	if len(s.counts) > 1000 {
		t.Errorf("sketch grew to %d buckets on 500k observations; want range-bounded (~921)", len(s.counts))
	}
}

// TestLatencySketchZeroLatencies: zero-latency records (failed requests
// flushed at arrival) must not break quantiles.
func TestLatencySketchZeroLatencies(t *testing.T) {
	on := NewOnline(time.Second, time.Minute, 0)
	for i := 0; i < 100; i++ {
		on.Add(Record{Latency: 0})
	}
	for i := 0; i < 100; i++ {
		on.Add(Record{Latency: 10 * time.Millisecond})
	}
	if got := on.Percentile(25); got != 0 {
		t.Errorf("P25 = %v, want 0 (half the records are zero-latency)", got)
	}
	p99 := float64(on.Percentile(99))
	if math.Abs(p99-float64(10*time.Millisecond))/float64(10*time.Millisecond) > SketchAlpha*1.01 {
		t.Errorf("P99 = %v, want ~10ms", time.Duration(p99))
	}
}

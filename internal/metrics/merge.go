package metrics

import "time"

// MergeFrom folds src's observations into o as if every request src absorbed
// had been Added to o directly: counters, sums, goodput windows and sketch
// bucket counts are all additive, so the merged aggregator answers exactly
// what one aggregator fed the union stream would — except the exact-prefix
// percentile shortcut, which survives only for the first sketchExactPrefix
// observations in merge order (beyond it the sketch's α-bounded buckets
// answer, as for any large run). Merging is deterministic: merging the same
// sources in the same order always yields the same state, which is how the
// sharded simulation keeps `-shards N` output byte-identical for every N —
// lanes are merged in lane order regardless of how many workers ran them.
//
// src is read under its own lock and left untouched. o and src must judge
// against the same SLO and use the same goodput window resolution.
func (o *Online) MergeFrom(src *Online) {
	if src == nil {
		return
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()

	o.count += src.count
	o.failed += src.failed
	o.ok += src.ok
	o.latSum += src.latSum
	if src.latMax > o.latMax {
		o.latMax = src.latMax
	}
	o.breakdown.MinExec += src.breakdown.MinExec
	o.breakdown.BatchWait += src.breakdown.BatchWait
	o.breakdown.QueueDelay += src.breakdown.QueueDelay
	o.breakdown.Interference += src.breakdown.Interference
	o.breakdown.ColdStart += src.breakdown.ColdStart
	o.breakdown.Total += src.breakdown.Total

	o.sketch.mergeFrom(&src.sketch)

	if src.totWin != nil {
		if n := len(src.totWin); n > len(o.totWin) {
			grownOK := make([]uint32, n)
			copy(grownOK, o.okWin)
			grownTot := make([]uint32, n)
			copy(grownTot, o.totWin)
			o.okWin, o.totWin = grownOK, grownTot
			if o.goodWindow == 0 {
				o.goodWindow = src.goodWindow
			}
		}
		for i, c := range src.totWin {
			o.totWin[i] += c
		}
		for i, c := range src.okWin {
			o.okWin[i] += c
		}
	}
}

// mergeFrom adds src's bucket counts (and exact prefix, while room remains)
// into s. Both sketches share the package α, hence the same bucket geometry.
func (s *latencySketch) mergeFrom(src *latencySketch) {
	s.n += src.n
	s.zeros += src.zeros
	for k, c := range src.counts {
		s.counts[k] += c
	}
	for _, v := range src.exact {
		if len(s.exact) >= sketchExactPrefix {
			break
		}
		s.exact = append(s.exact, v)
	}
}

// MergeOnline folds the given aggregators, in order, into one fresh Online
// (judging against the first source's SLO and window resolution). Nil sources
// are skipped; an all-nil or empty slice yields an empty aggregator with a
// zero SLO.
func MergeOnline(parts []*Online) *Online {
	var slo, window time.Duration
	for _, p := range parts {
		if p != nil {
			slo, window = p.SLO, p.goodWindow
			break
		}
	}
	merged := NewOnline(slo, 0, 0)
	merged.goodWindow = window
	for _, p := range parts {
		merged.MergeFrom(p)
	}
	return merged
}

// Tee is an Aggregator that feeds every Add to both a primary and a mirror
// while answering every read from the primary alone. The sharded live mode
// uses it to give each lane its own Online (the per-lane Result) while the
// observability plane's shared Online sees the union stream for /metrics and
// burn-rate tracking.
type Tee struct {
	Primary Aggregator
	Mirror  Aggregator
}

// NewTee returns an aggregator duplicating Adds into mirror and reading from
// primary.
func NewTee(primary, mirror Aggregator) *Tee {
	return &Tee{Primary: primary, Mirror: mirror}
}

// Add implements Aggregator.
func (t *Tee) Add(r Record) {
	t.Primary.Add(r)
	if t.Mirror != nil {
		t.Mirror.Add(r)
	}
}

// Count implements Aggregator.
func (t *Tee) Count() int { return t.Primary.Count() }

// SLOCompliance implements Aggregator.
func (t *Tee) SLOCompliance() float64 { return t.Primary.SLOCompliance() }

// Violations implements Aggregator.
func (t *Tee) Violations() int { return t.Primary.Violations() }

// Percentile implements Aggregator.
func (t *Tee) Percentile(p float64) time.Duration { return t.Primary.Percentile(p) }

// Mean implements Aggregator.
func (t *Tee) Mean() time.Duration { return t.Primary.Mean() }

var _ Aggregator = (*Tee)(nil)

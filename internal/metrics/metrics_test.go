package metrics

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func msec(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSLOCompliance(t *testing.T) {
	c := NewCollector(msec(200))
	for i := 0; i < 90; i++ {
		c.Add(Record{Latency: msec(100)})
	}
	for i := 0; i < 9; i++ {
		c.Add(Record{Latency: msec(300)})
	}
	c.Add(Record{Latency: msec(50), Failed: true})
	if got := c.SLOCompliance(); math.Abs(got-0.90) > 1e-9 {
		t.Fatalf("compliance = %v, want 0.90", got)
	}
	if got := c.Violations(); got != 10 {
		t.Fatalf("violations = %d, want 10", got)
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector(msec(200))
	if c.SLOCompliance() != 1 || c.Percentile(99) != 0 || c.Mean() != 0 {
		t.Fatal("empty collector metrics wrong")
	}
	if c.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	c := NewCollector(msec(1000))
	for i := 1; i <= 100; i++ {
		c.Add(Record{Latency: msec(i)})
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, msec(50)}, {99, msec(99)}, {100, msec(100)}, {1, msec(1)},
	}
	for _, tc := range cases {
		if got := c.Percentile(tc.p); got != tc.want {
			t.Errorf("P%.0f = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPercentileAfterInterleavedAdds(t *testing.T) {
	// Adding after a percentile query must invalidate the cached sort.
	c := NewCollector(msec(1000))
	c.Add(Record{Latency: msec(10)})
	_ = c.Percentile(99)
	c.Add(Record{Latency: msec(500)})
	if got := c.Percentile(100); got != msec(500) {
		t.Fatalf("stale sort: P100 = %v, want 500ms", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	c := NewCollector(msec(200))
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		c.Add(Record{Latency: time.Duration(r.Intn(400)) * time.Millisecond})
	}
	cdf := c.CDF(50)
	if len(cdf) != 50 {
		t.Fatalf("CDF has %d points, want 50", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Latency < cdf[i-1].Latency || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatal("CDF not monotone")
		}
	}
	if cdf[len(cdf)-1].Fraction != 1 {
		t.Fatal("CDF does not reach 1")
	}
}

func TestTailBreakdown(t *testing.T) {
	c := NewCollector(msec(200))
	// 99 fast requests, 1 slow one with known components.
	for i := 0; i < 99; i++ {
		c.Add(Record{Latency: msec(80), MinExec: msec(70), BatchWait: msec(10)})
	}
	c.Add(Record{
		Latency:      msec(400),
		MinExec:      msec(100),
		QueueDelay:   msec(200),
		Interference: msec(90),
		BatchWait:    msec(10),
	})
	b := c.TailBreakdown(99.5, 100)
	if b.Total != msec(400) || b.QueueDelay != msec(200) || b.Interference != msec(90) {
		t.Fatalf("tail breakdown = %+v", b)
	}
	// Components roughly assemble the total.
	sum := b.MinExec + b.BatchWait + b.QueueDelay + b.Interference + b.ColdStart
	if sum != b.Total {
		t.Fatalf("components sum to %v, total %v", sum, b.Total)
	}
}

func TestGoodput(t *testing.T) {
	c := NewCollector(msec(200))
	// 100 requests in [0,10s): 70 within SLO, 30 violations.
	for i := 0; i < 100; i++ {
		lat := msec(100)
		if i < 30 {
			lat = msec(500)
		}
		c.Add(Record{Arrival: time.Duration(i) * 100 * time.Millisecond, Latency: lat})
	}
	if got := c.GoodputRPS(0, 10*time.Second); math.Abs(got-7) > 1e-9 {
		t.Fatalf("goodput = %v rps, want 7", got)
	}
	if got := c.ArrivalRPS(0, 10*time.Second); math.Abs(got-10) > 1e-9 {
		t.Fatalf("arrival rate = %v rps, want 10", got)
	}
	if c.GoodputRPS(5*time.Second, 5*time.Second) != 0 {
		t.Fatal("degenerate window should be 0")
	}
}

func TestMeanDropOutliers(t *testing.T) {
	// One wild outlier among tight values: dropped at k=2.5.
	vals := []float64{10, 11, 9, 10, 10, 10, 11, 9, 10, 100}
	got := MeanDropOutliers(vals, 2.5)
	if got > 12 {
		t.Fatalf("outlier not dropped: mean = %v", got)
	}
	// Fewer than 3 values: plain mean.
	if got := MeanDropOutliers([]float64{1, 100}, 2.5); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("small-sample mean = %v, want 50.5", got)
	}
	if MeanDropOutliers(nil, 2.5) != 0 {
		t.Fatal("empty input should be 0")
	}
	// All-identical values (sd=0) must not divide by zero.
	if got := MeanDropOutliers([]float64{5, 5, 5, 5}, 2.5); got != 5 {
		t.Fatalf("constant values mean = %v, want 5", got)
	}
}

func TestMeanDropOutliersEdgeCases(t *testing.T) {
	// Empty input, both nil and zero-length.
	if MeanDropOutliers([]float64{}, 2.5) != 0 {
		t.Fatal("empty slice should be 0")
	}
	// A single element is its own mean, never an outlier.
	if got := MeanDropOutliers([]float64{7}, 2.5); got != 7 {
		t.Fatalf("single element = %v, want 7", got)
	}
	// When every value sits beyond k sigma (tiny k makes everything an
	// outlier), the rule must not drop the whole sample: fall back to the
	// plain mean instead of 0/NaN.
	got := MeanDropOutliers([]float64{1, 2, 99}, 0.01)
	if math.IsNaN(got) || got == 0 {
		t.Fatalf("all-outlier input = %v, want a finite plain mean", got)
	}
	if want := (1.0 + 2.0 + 99.0) / 3; math.Abs(got-want) > 1e-9 {
		t.Fatalf("all-outlier input = %v, want plain mean %v", got, want)
	}
}

// Property: percentile is monotone in p and bracketed by min/max latency.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(latsRaw []uint16, p1Raw, p2Raw uint8) bool {
		if len(latsRaw) == 0 {
			return true
		}
		c := NewCollector(msec(200))
		minL, maxL := time.Duration(math.MaxInt64), time.Duration(0)
		for _, l := range latsRaw {
			d := time.Duration(l) * time.Millisecond
			c.Add(Record{Latency: d})
			if d < minL {
				minL = d
			}
			if d > maxL {
				maxL = d
			}
		}
		p1 := float64(p1Raw%100) + 0.5
		p2 := float64(p2Raw%100) + 0.5
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := c.Percentile(p1), c.Percentile(p2)
		return v1 <= v2 && v1 >= minL && v2 <= maxL
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: SLO compliance equals the empirical fraction computed naively.
func TestComplianceMatchesNaiveProperty(t *testing.T) {
	f := func(latsRaw []uint16, sloRaw uint16) bool {
		slo := time.Duration(sloRaw%1000+1) * time.Millisecond
		c := NewCollector(slo)
		ok := 0
		for _, l := range latsRaw {
			d := time.Duration(l%2000) * time.Millisecond
			c.Add(Record{Latency: d})
			if d <= slo {
				ok++
			}
		}
		if len(latsRaw) == 0 {
			return c.SLOCompliance() == 1
		}
		want := float64(ok) / float64(len(latsRaw))
		return math.Abs(c.SLOCompliance()-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF fractions at each sampled point are consistent with
// percentile queries.
func TestCDFConsistentWithPercentiles(t *testing.T) {
	c := NewCollector(msec(200))
	r := rand.New(rand.NewSource(7))
	lats := make([]time.Duration, 500)
	for i := range lats {
		lats[i] = time.Duration(r.Intn(1000)) * time.Millisecond
		c.Add(Record{Latency: lats[i]})
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	cdf := c.CDF(100)
	for _, pt := range cdf {
		if got := c.Percentile(pt.Fraction * 100); got != pt.Latency {
			t.Fatalf("CDF point (%v, %v) != percentile %v", pt.Fraction, pt.Latency, got)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := NewCollector(msec(200))
	for i := 0; i < 50; i++ {
		c.Add(Record{
			Arrival:      time.Duration(i) * 100 * time.Millisecond,
			Latency:      msec(40 + i),
			BatchWait:    msec(5),
			QueueDelay:   msec(i % 7),
			Interference: msec(i % 3),
			ColdStart:    0,
			MinExec:      msec(30),
			Failed:       i%17 == 0,
		})
	}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, msec(200))
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != c.Count() {
		t.Fatalf("round trip lost records: %d vs %d", back.Count(), c.Count())
	}
	if back.SLOCompliance() != c.SLOCompliance() {
		t.Fatalf("compliance changed: %v vs %v", back.SLOCompliance(), c.SLOCompliance())
	}
	if back.Percentile(99) != c.Percentile(99) {
		t.Fatalf("P99 changed: %v vs %v", back.Percentile(99), c.Percentile(99))
	}
	b1, b2 := c.TailBreakdown(90, 100), back.TailBreakdown(90, 100)
	if b1.QueueDelay != b2.QueueDelay || b1.Interference != b2.Interference {
		t.Fatalf("breakdown changed: %+v vs %+v", b1, b2)
	}
}

func TestReadCSVMalformedRows(t *testing.T) {
	header := "arrival_s,latency_ms,batch_wait_ms,queue_delay_ms,interference_ms,cold_start_ms,min_exec_ms,failed,slo_ok\n"
	c, err := ReadCSV(strings.NewReader(header+"1.0,50,0,0,0,0,40,false,true\n"), msec(200))
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != 1 {
		t.Fatalf("count = %d, want 1", c.Count())
	}

	// A corrupt numeric cell must be a labelled error, not a silent zero.
	cases := []struct {
		name, row, want string
	}{
		{"bad latency", "1.0,oops,0,0,0,0,40,false,true", "row 2 column latency_ms"},
		{"bad arrival", "NaN?,50,0,0,0,0,40,false,true", "row 2 column arrival_s"},
		{"bad failed", "1.0,50,0,0,0,0,40,maybe,true", "row 2 column failed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(header+tc.row+"\n"), msec(200))
			if err == nil {
				t.Fatalf("corrupt row accepted: %q", tc.row)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}

	// A second corrupt row is still labelled with its own line number.
	in := header + "1.0,50,0,0,0,0,40,false,true\n" + "2.0,50,0,bogus,0,0,40,false,true\n"
	if _, err := ReadCSV(strings.NewReader(in), msec(200)); err == nil ||
		!strings.Contains(err.Error(), "row 3 column queue_delay_ms") {
		t.Fatalf("error %v does not name row 3 column queue_delay_ms", err)
	}
}

package metrics

import (
	"math"
	"testing"
	"time"
)

// The tracker must agree with the reference sketch (same bucket math, no
// exact prefix) within the structural α guarantee, across distributions.
func TestAgeTrackerMatchesSketchQuantile(t *testing.T) {
	dists := map[string]func(i int) time.Duration{
		"uniform":   func(i int) time.Duration { return time.Duration(i+1) * time.Millisecond },
		"bimodal":   func(i int) time.Duration { return time.Duration(1+(i%2)*999) * time.Millisecond },
		"heavytail": func(i int) time.Duration { return time.Duration(float64(time.Millisecond) * math.Pow(1.01, float64(i%1200))) },
	}
	for name, gen := range dists {
		for _, pct := range []float64{50, 90, 95, 99} {
			tr := NewAgeTracker(pct)
			sk := newLatencySketch(SketchAlpha)
			for i := 0; i < 5000; i++ {
				v := gen(i)
				tr.Add(v)
				sk.add(v)
			}
			tr.recompute() // drain the staleness window for an exact comparison
			got, want := tr.Threshold(), sk.quantile(pct/100)
			if rel := math.Abs(float64(got-want)) / float64(want); rel > 2*SketchAlpha {
				t.Errorf("%s p%v: tracker %v vs sketch %v (rel err %.4f)", name, pct, got, want, rel)
			}
		}
	}
}

// Before ageMinSamples observations the tracker declines to answer; the
// hedge policy must fall back to its static SLO-derived threshold.
func TestAgeTrackerReadyGate(t *testing.T) {
	tr := NewAgeTracker(95)
	for i := 0; i < ageMinSamples-1; i++ {
		tr.Add(time.Duration(i+1) * time.Millisecond)
		if tr.Ready() || tr.Threshold() != 0 {
			t.Fatalf("tracker ready after only %d samples", i+1)
		}
	}
	tr.Add(time.Millisecond)
	if !tr.Ready() || tr.Threshold() <= 0 {
		t.Fatal("tracker not ready at the minimum sample count")
	}
}

// The cached threshold goes stale by at most ageRecomputeEvery adds.
func TestAgeTrackerStalenessBounded(t *testing.T) {
	tr := NewAgeTracker(99)
	for i := 0; i < 1000; i++ {
		tr.Add(10 * time.Millisecond)
	}
	before := tr.Threshold()
	// A regime shift: every new latency is 100× slower.
	for i := 0; i < 2*ageRecomputeEvery; i++ {
		tr.Add(time.Second)
	}
	if tr.Threshold() == before {
		t.Fatal("threshold never recomputed after a regime shift")
	}
}

// Saturation: latencies beyond the bucket range clamp into the edge
// buckets instead of indexing out of bounds.
func TestAgeTrackerClampsExtremes(t *testing.T) {
	tr := NewAgeTracker(50)
	for i := 0; i < ageMinSamples*2; i++ {
		tr.Add(time.Duration(math.MaxInt64))
		tr.Add(-time.Second)
		tr.Add(0)
		tr.Add(time.Nanosecond)
	}
	if !tr.Ready() {
		t.Fatal("tracker not ready")
	}
	if got := tr.Threshold(); got < 0 {
		t.Fatalf("negative threshold %v", got)
	}
}

// Percentiles outside (0,100] clamp to 100 rather than producing NaN ranks.
func TestAgeTrackerClampsPercentile(t *testing.T) {
	for _, pct := range []float64{-5, 0, 150, math.NaN()} {
		tr := NewAgeTracker(pct)
		for i := 0; i < ageMinSamples*2; i++ {
			tr.Add(time.Duration(i+1) * time.Millisecond)
		}
		if got := tr.Threshold(); got <= 0 {
			t.Fatalf("pct %v: threshold %v", pct, got)
		}
	}
}

// Add and Threshold sit on the dispatch hot path: both must be
// allocation-free in steady state.
func TestAgeTrackerAllocFree(t *testing.T) {
	tr := NewAgeTracker(95)
	v := 10 * time.Millisecond
	if allocs := testing.AllocsPerRun(1000, func() {
		tr.Add(v)
		_ = tr.Threshold()
	}); allocs != 0 {
		t.Fatalf("Add+Threshold allocated %.1f times per op", allocs)
	}
}

// Same observations in the same order yield the same thresholds — the
// determinism contract the sharded engine relies on.
func TestAgeTrackerDeterministic(t *testing.T) {
	run := func() []time.Duration {
		tr := NewAgeTracker(90)
		var out []time.Duration
		for i := 0; i < 500; i++ {
			tr.Add(time.Duration((i*7919)%100+1) * time.Millisecond)
			out = append(out, tr.Threshold())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("thresholds diverge at observation %d: %v vs %v", i, a[i], b[i])
		}
	}
}

package predict

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// The tests in this file are metamorphic properties of the forecasters —
// relations between paired runs rather than golden outputs — and, in the
// invariant-checker tradition, each property is proven falsifiable: a
// deliberately broken variant (a mutant) must trip exactly the check that
// the real implementation passes. A property no mutant can fail is not
// testing anything.

const propWindow = 500 * time.Millisecond

// planted builds a strictly periodic count signal: period P windows, mean
// base counts, amplitude amp. Periodicity is exact (v[i] == v[i+P]) so the
// shift-invariance relation below holds with equality.
func planted(period, base, amp int) func(i int) int {
	return func(i int) int {
		phase := 2 * math.Pi * float64(i%period) / float64(period)
		return base + int(math.Round(float64(amp)*math.Sin(phase)))
	}
}

// feed runs the signal's first n windows through f.
func feed(f Forecaster, signal func(i int) int, from, n int) {
	for i := from; i < from+n; i++ {
		f.Observe(time.Duration(i+1)*propWindow, signal(i))
	}
}

// --- time-shift invariance ---------------------------------------------------

// shiftDiff measures the worst forecast disagreement between a model warmed
// on n windows of a periodic signal and a model warmed on n + period windows
// of the same signal (one extra whole period). Both end at the same signal
// phase having seen identical values, so a phase-keyed forecaster must
// produce identical forecasts; only absolute-time leakage can separate them.
func shiftDiff(mk func() Forecaster, signal func(i int) int, n, period, probes int) float64 {
	a, b := mk(), mk()
	feed(a, signal, 0, n)
	feed(b, signal, 0, n+period)
	worst := 0.0
	for k := 0; k < probes; k++ {
		// Continue both in lockstep (same phase) and compare forecasts at a
		// few horizons each step.
		for _, h := range []time.Duration{propWindow, 10 * propWindow, 30 * time.Second} {
			pa := a.PredictRPS(time.Duration(n+k)*propWindow, h)
			pb := b.PredictRPS(time.Duration(n+period+k)*propWindow, h)
			if d := math.Abs(pa - pb); d > worst {
				worst = d
			}
		}
		a.Observe(time.Duration(n+k+1)*propWindow, signal(n+k))
		b.Observe(time.Duration(n+period+k+1)*propWindow, signal(n+period+k))
	}
	return worst
}

// countDrifter leaks absolute time into the forecast: the mutation a
// phase-keying bug (indexing seasonal state by wall time or ring position
// instead of window number mod period) would produce.
type countDrifter struct {
	inner Forecaster
	cnt   int
}

func (m *countDrifter) Observe(now time.Duration, count int) { m.cnt++; m.inner.Observe(now, count) }
func (m *countDrifter) PredictRPS(now, horizon time.Duration) float64 {
	return m.inner.PredictRPS(now, horizon) + 0.001*float64(m.cnt)
}

func TestShiftInvarianceOnPeriodicInput(t *testing.T) {
	const period = 64
	signal := planted(period, 100, 60)
	// Warm-up covers several periods and several refit passes, so the
	// seasonal model is locked in both runs.
	n := 6 * seasonalRefitEvery
	for _, tc := range []struct {
		name string
		mk   func() Forecaster
	}{
		{"ewma", func() Forecaster { return NewEWMA(propWindow) }},
		{"seasonal", func() Forecaster { return NewSeasonal(propWindow) }},
		{"percentile", func() Forecaster { return NewPercentile(propWindow, 0.95) }},
	} {
		if d := shiftDiff(tc.mk, signal, n, period, 2*period); d > 1e-9 {
			t.Errorf("%s: forecasts drift %.3g across a whole-period shift", tc.name, d)
		}
	}
	// The seasonal run above must actually exercise the seasonal path.
	s := NewSeasonal(propWindow)
	feed(s, signal, 0, n)
	if s.Period() == 0 {
		t.Fatal("seasonal never locked during the shift-invariance run; property tested nothing")
	}
	// Mutation: absolute-time leakage must be caught by the same check.
	mut := func() Forecaster { return &countDrifter{inner: NewEWMA(propWindow)} }
	if d := shiftDiff(mut, signal, n, period, 2*period); d <= 1e-9 {
		t.Error("mutant leaking absolute time passed the shift-invariance check")
	}
}

// --- scale equivariance ------------------------------------------------------

// scaleDiff measures the worst relative violation of PredictRPS(2x input) ==
// 2 * PredictRPS(input) on a steep ramp plus seasonal swing (steep so the
// EWMA trend gate is open in both runs; the gate is the one deliberate
// nonlinearity).
func scaleDiff(mk func() Forecaster, probes int) float64 {
	signal := func(i int) int { return 40 + 4*i + planted(64, 0, 20)(i) }
	doubled := func(i int) int { return 2 * signal(i) }
	a, b := mk(), mk()
	n := 6 * seasonalRefitEvery
	feed(a, signal, 0, n)
	feed(b, doubled, 0, n)
	worst := 0.0
	for k := 0; k < probes; k++ {
		for _, h := range []time.Duration{propWindow, 15 * time.Second} {
			pa := a.PredictRPS(time.Duration(n+k)*propWindow, h)
			pb := b.PredictRPS(time.Duration(n+k)*propWindow, h)
			if pa == 0 && pb == 0 {
				continue
			}
			if d := math.Abs(pb-2*pa) / math.Max(2*pa, 1); d > worst {
				worst = d
			}
		}
		a.Observe(time.Duration(n+k+1)*propWindow, signal(n+k))
		b.Observe(time.Duration(n+k+1)*propWindow, doubled(n+k))
	}
	return worst
}

// affineOffset breaks linearity the way a hard-coded floor or headroom
// constant inside a forecaster would.
type affineOffset struct{ inner Forecaster }

func (m affineOffset) Observe(now time.Duration, count int) { m.inner.Observe(now, count) }
func (m affineOffset) PredictRPS(now, horizon time.Duration) float64 {
	return m.inner.PredictRPS(now, horizon) + 25
}

func TestScaleEquivariance(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Forecaster
		tol  float64
	}{
		// EWMA's trend noise gate scales with sqrt(rate), not rate, so the
		// property holds only approximately near the gate; the steep ramp
		// keeps the violation far below this tolerance.
		{"ewma", func() Forecaster { return NewEWMA(propWindow) }, 1e-6},
		{"seasonal", func() Forecaster { return NewSeasonal(propWindow) }, 1e-6},
		{"percentile", func() Forecaster { return NewPercentile(propWindow, 0.95) }, 1e-9},
	} {
		if d := scaleDiff(tc.mk, 64); d > tc.tol {
			t.Errorf("%s: doubling the input does not double the forecast (rel err %.3g)", tc.name, d)
		}
	}
	mut := func() Forecaster { return affineOffset{inner: NewEWMA(propWindow)} }
	if d := scaleDiff(mut, 64); d <= 1e-6 {
		t.Error("affine-offset mutant passed the scale-equivariance check")
	}
}

// --- constant-input fixed point ----------------------------------------------

// fixedPointErr feeds a constant count long enough for transients to die and
// returns the relative forecast error against the true constant rate.
func fixedPointErr(f Forecaster, count int, horizons []time.Duration) float64 {
	n := 6 * seasonalRefitEvery
	for i := 0; i < n; i++ {
		f.Observe(time.Duration(i+1)*propWindow, count)
	}
	want := float64(count) / propWindow.Seconds()
	worst := 0.0
	for _, h := range horizons {
		got := f.PredictRPS(time.Duration(n)*propWindow, h)
		if d := math.Abs(got-want) / want; d > worst {
			worst = d
		}
	}
	return worst
}

// overshooter scales forecasts up 1% — the mutation a lingering headroom
// factor or a trend term that never fully decays would produce.
type overshooter struct{ inner Forecaster }

func (m overshooter) Observe(now time.Duration, count int) { m.inner.Observe(now, count) }
func (m overshooter) PredictRPS(now, horizon time.Duration) float64 {
	return 1.01 * m.inner.PredictRPS(now, horizon)
}

func TestConstantInputFixedPoint(t *testing.T) {
	horizons := []time.Duration{propWindow, 4 * time.Second, 15 * time.Second}
	for _, tc := range []struct {
		name string
		f    Forecaster
	}{
		{"ewma", NewEWMA(propWindow)},
		{"seasonal", NewSeasonal(propWindow)},
		{"percentile", NewPercentile(propWindow, 0.95)},
		{"p99", NewPercentile(propWindow, 0.99)},
	} {
		if d := fixedPointErr(tc.f, 80, horizons); d > 1e-6 {
			t.Errorf("%s: constant 80/window input forecasts with rel err %.3g", tc.name, d)
		}
	}
	if d := fixedPointErr(overshooter{inner: NewEWMA(propWindow)}, 80, horizons); d <= 1e-6 {
		t.Error("one-percent-overshoot mutant passed the fixed-point check")
	}
}

// --- planted-period recovery -------------------------------------------------

// recoveredPeriod warms a fresh seasonal model on a planted period — at
// least five full cycles, so large periods get the same evidence small ones
// do — and returns what detection locked onto (0 = no fit).
func recoveredPeriod(planted int) int {
	s := NewSeasonal(propWindow)
	signal := func(i int) int {
		phase := 2 * math.Pi * float64(i%planted) / float64(planted)
		// A second harmonic makes the shape non-sinusoidal — detection must
		// find the fundamental, not a harmonic artifact.
		return 120 + int(math.Round(70*math.Sin(phase)+20*math.Sin(2*phase)))
	}
	n := 8 * seasonalRefitEvery
	if min := 5 * planted; n < min {
		n = (min/seasonalRefitEvery + 1) * seasonalRefitEvery
	}
	feed(s, signal, 0, n)
	return s.Period()
}

func TestPlantedPeriodRecovered(t *testing.T) {
	for _, period := range []int{48, 100, 300, 600} {
		got := recoveredPeriod(period)
		if got < period-1 || got > period+1 {
			t.Errorf("planted period %d: detected %d, want within one window", period, got)
		}
	}
	// Mutation: corrupt a locked fit's period by a few windows; the same
	// tolerance must reject it, proving the assertion can fail.
	s := NewSeasonal(propWindow)
	feed(s, planted(100, 120, 70), 0, 8*seasonalRefitEvery)
	if s.Period() == 0 {
		t.Fatal("setup: planted period not detected")
	}
	s.period += 5
	if got, want := s.Period(), 100; got >= want-1 && got <= want+1 {
		t.Error("corrupted period passed the recovery tolerance")
	}
}

// TestAperiodicInputRejected: period detection must refuse to fit signals
// with no true period — a constant, and an unsmoothed random walk (the
// mutant traffic that spurious-fit bugs feed on).
func TestAperiodicInputRejected(t *testing.T) {
	s := NewSeasonal(propWindow)
	feed(s, func(int) int { return 50 }, 0, 8*seasonalRefitEvery)
	if p := s.Period(); p != 0 {
		t.Errorf("constant input fitted period %d, want no fit", p)
	}

	// A deterministic pseudo-random walk: step by a hash-derived +-1..4.
	walk := 200
	rw := func(i int) int {
		h := uint64(i)*0x9e3779b97f4a7c15 + 12345
		h ^= h >> 29
		step := int(h%9) - 4
		walk += step
		if walk < 0 {
			walk = 0
		}
		return walk
	}
	s2 := NewSeasonal(propWindow)
	feed(s2, rw, 0, 8*seasonalRefitEvery)
	if p := s2.Period(); p != 0 {
		t.Errorf("random walk fitted period %d, want no fit", p)
	}
}

// --- percentile monotonicity -------------------------------------------------

// monotoneInP checks Quantile over a fixed observation set is monotone in p
// for the given quantile function.
func monotoneInP(q func(p float64) float64) bool {
	f := func(p1Raw, p2Raw uint16) bool {
		p1 := float64(p1Raw) / 65535
		p2 := float64(p2Raw) / 65535
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return q(p1) <= q(p2)+1e-12
	}
	return quick.Check(f, &quick.Config{MaxCount: 300}) == nil
}

func TestPercentileMonotoneInP(t *testing.T) {
	f := NewPercentile(propWindow, 0.95)
	// Irregular, duplicated, bursty observations; more than History windows
	// so the ring wraps.
	for i := 0; i < 300; i++ {
		f.Observe(time.Duration(i+1)*propWindow, (i*i)%97+(i%7)*40)
	}
	if !monotoneInP(func(p float64) float64 { return f.Quantile(p, time.Second) }) {
		t.Error("Quantile is not monotone in p")
	}
	// Mutation: flip the interpolation direction between order statistics —
	// the classic off-by-one a quantile implementation can ship with.
	broken := func(p float64) float64 {
		m := f.cnt
		if m > f.History {
			m = f.History
		}
		s := f.scratch[:m]
		copy(s, f.ring[:m])
		sortFloats(s)
		if p <= 0 {
			return s[0]
		}
		if p >= 1 {
			return s[m-1]
		}
		pos := p * float64(m-1)
		i := int(pos)
		frac := pos - float64(i)
		if i+1 >= m {
			return s[m-1]
		}
		return s[i+1] - frac*(s[i+1]-s[i]) // interpolates backwards
	}
	if monotoneInP(broken) {
		t.Error("backwards-interpolation mutant passed the monotonicity check")
	}
}

// sortFloats is a tiny insertion sort so the mutant above cannot disturb the
// real implementation's scratch-sorting path.
func sortFloats(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// --- confidence contracts ----------------------------------------------------

// TestConfidenceContracts pins the confidence semantics the procurement gate
// relies on: baseline models are fully confident, the percentile model warms
// up from zero, and the helper defaults to 1 for models without the
// extension.
func TestConfidenceContracts(t *testing.T) {
	if c := Confidence(NewEWMA(propWindow)); c != 1 {
		t.Errorf("EWMA confidence = %v, want 1", c)
	}
	if c := Confidence(Static{RPS: 5}); c != 1 {
		t.Errorf("Static (no extension) confidence = %v, want 1", c)
	}
	p := NewPercentile(propWindow, 0.95)
	if c := Confidence(p); c != 0 {
		t.Errorf("empty percentile confidence = %v, want 0", c)
	}
	feed(p, func(int) int { return 10 }, 0, DefaultPercentileHistory)
	if c := Confidence(p); c != 1 {
		t.Errorf("warm percentile confidence = %v, want 1", c)
	}
	s := NewSeasonal(propWindow)
	feed(s, planted(64, 100, 60), 0, 6*seasonalRefitEvery)
	if s.Period() == 0 {
		t.Fatal("seasonal did not lock")
	}
	if c := Confidence(s); c < ConfidenceFloor || c > 1 {
		t.Errorf("locked seasonal confidence = %v, want in [%v, 1]", c, ConfidenceFloor)
	}
}

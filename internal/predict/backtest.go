package predict

import (
	"fmt"
	"math"
	"time"

	"repro/internal/trace"
)

// BacktestReport scores one forecaster replayed over one rate curve at one
// horizon. The replay is fully deterministic — the forecaster observes the
// curve's *expected* per-window arrivals, no RNG — so reports are
// byte-identical across runs and suitable as committed goldens.
type BacktestReport struct {
	Forecaster string
	Curve      string
	Window     time.Duration
	Horizon    time.Duration
	// Samples is the number of (forecast, actual) pairs scored.
	Samples int
	// MAPE is the mean |forecast-actual|/actual over samples with a
	// positive actual rate.
	MAPE float64
	// UnderProvision is the fraction of samples where the forecast fell
	// short of the actual future rate — the error direction that costs SLO
	// violations rather than money.
	UnderProvision float64
	// MeanShortfall is the mean relative shortfall (actual-forecast)/actual
	// over under-provisioned samples; how badly short, not just how often.
	MeanShortfall float64
}

// String renders the quality numbers in a stable format for goldens.
func (r BacktestReport) String() string {
	return fmt.Sprintf("%s on %s h=%s: samples=%d mape=%.4f under=%.4f shortfall=%.4f",
		r.Forecaster, r.Curve, r.Horizon, r.Samples, r.MAPE, r.UnderProvision, r.MeanShortfall)
}

// Backtest replays curve c through f: every observation window the
// forecaster absorbs the window's expected arrival count (rounded), then
// forecasts over [now, now+horizon] and is scored against the curve's true
// mean rate over that interval. Windows whose scoring interval extends past
// the curve are not scored (the forecaster still observes them).
//
// The replay drives f the same way the serving runtime does — integer
// counts per aligned window — so backtest quality transfers to simulation
// behaviour, but it strips Poisson realization noise so that the numbers
// measure the model, not one arrival draw.
func Backtest(name string, f Forecaster, c *trace.Curve, window, horizon time.Duration) BacktestReport {
	rep := BacktestReport{Forecaster: name, Curve: c.Name, Window: window, Horizon: horizon}
	if window <= 0 || horizon <= 0 || c.Bucket <= 0 {
		return rep
	}
	dur := c.Duration()
	var sumAPE, sumShort float64
	under := 0
	scoredAPE := 0
	for end := window; end+horizon <= dur; end += window {
		f.Observe(end, int(math.Round(curveMean(c, end-window, end)*window.Seconds())))
		forecast := f.PredictRPS(end, horizon)
		actual := curveMean(c, end, end+horizon)
		rep.Samples++
		if actual > 0 {
			sumAPE += math.Abs(forecast-actual) / actual
			scoredAPE++
			if forecast < actual {
				under++
				sumShort += (actual - forecast) / actual
			}
		} else if forecast < actual {
			under++
		}
	}
	if scoredAPE > 0 {
		rep.MAPE = sumAPE / float64(scoredAPE)
	}
	if rep.Samples > 0 {
		rep.UnderProvision = float64(under) / float64(rep.Samples)
	}
	if under > 0 {
		rep.MeanShortfall = sumShort / float64(under)
	}
	return rep
}

// BacktestHorizons runs one fresh forecaster per horizon (newF is called
// for each), so horizons do not contaminate each other's state.
func BacktestHorizons(name string, newF func() Forecaster, c *trace.Curve,
	window time.Duration, horizons []time.Duration) []BacktestReport {
	out := make([]BacktestReport, len(horizons))
	for i, h := range horizons {
		out[i] = Backtest(name, newF(), c, window, h)
	}
	return out
}

// curveMean is the curve's design mean rate over [from, to), integrating
// partial buckets exactly.
func curveMean(c *trace.Curve, from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	dur := c.Duration()
	if to > dur {
		to = dur
	}
	if from >= to {
		return 0
	}
	sum := 0.0
	b := c.Bucket
	for i := int(from / b); i < len(c.Rates); i++ {
		lo, hi := time.Duration(i)*b, time.Duration(i+1)*b
		if lo >= to {
			break
		}
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		sum += c.Rate(i) * hi.Seconds()
		sum -= c.Rate(i) * lo.Seconds()
	}
	return sum / (to - from).Seconds()
}

package predict

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestEWMAConvergesToConstantRate(t *testing.T) {
	e := NewEWMA(time.Second)
	for i := 0; i < 50; i++ {
		e.Observe(time.Duration(i)*time.Second, 100)
	}
	if got := e.PredictRPS(0, 4*time.Second); math.Abs(got-100) > 1 {
		t.Fatalf("EWMA converged to %.1f, want 100", got)
	}
}

func TestEWMAAsymmetric(t *testing.T) {
	// Rises fast: after one surge observation the estimate should have
	// absorbed most of the jump; decays slower.
	up := NewEWMA(time.Second)
	up.Observe(0, 10)
	up.Observe(time.Second, 200)
	riseFrac := (up.Rate() - 10) / 190

	down := NewEWMA(time.Second)
	down.Observe(0, 200)
	down.Observe(time.Second, 10)
	fallFrac := (200 - down.Rate()) / 190

	if riseFrac <= fallFrac {
		t.Fatalf("rise fraction %.2f not above fall fraction %.2f", riseFrac, fallFrac)
	}
	if riseFrac < 0.5 {
		t.Fatalf("rise fraction %.2f too sluggish for surge tracking", riseFrac)
	}
}

func TestEWMAFirstObservationInitializes(t *testing.T) {
	e := NewEWMA(time.Second)
	e.Observe(0, 42)
	if e.Rate() != 42 {
		t.Fatalf("first observation gave %v, want 42", e.Rate())
	}
}

// Property: predictions are never negative and, on constant input, the
// estimate converges to the input with vanishing trend.
func TestEWMANonNegativeProperty(t *testing.T) {
	f := func(counts []uint16) bool {
		e := NewEWMA(time.Second)
		for i, c := range counts {
			e.Observe(time.Duration(i)*time.Second, int(c))
			if e.PredictRPS(0, 4*time.Second) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMATrendLeadsRamp(t *testing.T) {
	// During a steady ramp (the Azure surges build over tens of seconds),
	// the horizon forecast must lead the current level — that lead is what
	// lets hardware procurement (~4s) finish before the peak arrives.
	e := NewEWMA(time.Second)
	for i := 0; i <= 10; i++ {
		e.Observe(time.Duration(i)*time.Second, 20*i) // +20 rps per second
	}
	level := e.Rate()
	forecast := e.PredictRPS(10*time.Second, 4*time.Second)
	if forecast <= level {
		t.Fatalf("forecast %.0f does not lead level %.0f on a ramp", forecast, level)
	}
	future := 200.0 + 4*20 // true rate 4s later
	if math.Abs(forecast-future) > math.Abs(level-future) {
		t.Fatalf("forecast %.0f further from future %.0f than flat level %.0f",
			forecast, future, level)
	}
}

func TestEWMANoDownwardExtrapolation(t *testing.T) {
	// A collapsing rate must not forecast below the smoothed level
	// (conservatism against premature scale-down).
	e := NewEWMA(time.Second)
	for i := 0; i <= 10; i++ {
		e.Observe(time.Duration(i)*time.Second, 1000-90*i)
	}
	if e.PredictRPS(0, 4*time.Second) < e.Rate() {
		t.Fatal("negative trend was extrapolated")
	}
}

func TestClairvoyant(t *testing.T) {
	tr := trace.Poisson(sim.NewRNG(1), 100, time.Minute)
	c := NewClairvoyant(tr)
	got := c.PredictRPS(10*time.Second, 4*time.Second)
	if math.Abs(got-100) > 25 {
		t.Fatalf("clairvoyant predicted %.0f, want ~100", got)
	}
	if c.PredictRPS(0, 0) != 0 {
		t.Fatal("zero horizon should predict 0")
	}
}

func TestClairvoyantSeesFutureSurge(t *testing.T) {
	// A trace that is empty except for a surge at t=10s..11s.
	arr := make([]time.Duration, 500)
	for i := range arr {
		arr[i] = 10*time.Second + time.Duration(i)*2*time.Millisecond
	}
	tr := &trace.Trace{Name: "surge", Arrivals: arr, Duration: 20 * time.Second}
	c := NewClairvoyant(tr)
	if got := c.PredictRPS(9*time.Second, 4*time.Second); got < 100 {
		t.Fatalf("clairvoyant missed the surge: %.0f rps", got)
	}
	if got := c.PredictRPS(15*time.Second, 4*time.Second); got != 0 {
		t.Fatalf("clairvoyant hallucinated traffic: %.0f rps", got)
	}
}

func TestStatic(t *testing.T) {
	s := Static{RPS: 55}
	s.Observe(0, 99999)
	if s.PredictRPS(0, time.Second) != 55 {
		t.Fatal("static predictor moved")
	}
}

func TestWindowObserver(t *testing.T) {
	e := NewEWMA(time.Second)
	w := NewWindowObserver(e, time.Second)
	// 100 arrivals in window [0,1s), then silence.
	for i := 0; i < 100; i++ {
		w.Arrive(time.Duration(i) * 10 * time.Millisecond)
	}
	// Prediction at t=1s flushes the first window.
	got := w.PredictRPS(time.Second, 4*time.Second)
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("after first window predicted %.1f, want 100", got)
	}
	// After 5 silent windows the estimate must have decayed.
	got = w.PredictRPS(6*time.Second, 4*time.Second)
	if got >= 50 {
		t.Fatalf("after silence predicted %.1f, want decayed below 50", got)
	}
}

func TestWindowObserverFlushesMultipleWindows(t *testing.T) {
	e := NewEWMA(time.Second)
	w := NewWindowObserver(e, time.Second)
	w.Arrive(100 * time.Millisecond)
	// Jump 10 windows ahead: the gap must be observed as zeros.
	w.Arrive(10*time.Second + time.Millisecond)
	if r := w.PredictRPS(11*time.Second, time.Second); r > 1 {
		t.Fatalf("gap windows not flushed as zeros; rate %.2f", r)
	}
}

package predict

import (
	"math"
	"time"
)

// Seasonal tuning knobs. The ring covers 8192 observation windows — at the
// default 500 ms window that is ~68 minutes, so periods up to ~23 minutes
// are detectable (detection demands three full cycles of evidence inside
// the ring before trusting a fit). The forecast-frontier experiment's
// Wikipedia trace compresses a day to 5 minutes, comfortably inside that.
const (
	seasonalRingSize   = 8192 // power of two, so the ring index is a mask
	seasonalMinPeriod  = 16   // windows; shorter cycles are batching noise
	seasonalRefitEvery = 256  // observations between detection passes
	seasonalCoarseGrid = 256  // coarse autocorrelation candidates per pass

	// A fit is accepted when, after the autocorrelation has first dipped
	// into a trough (below seasonalMaxValley), some later lag's correlation
	// recovers to at least seasonalMinCorr. The dip-first rule is what
	// rejects random walks: their autocorrelation is high at *every* small
	// lag and decays monotonically, so no lag ever rises back out of a
	// trough the way a true period does. The threshold sits well above the
	// transient 0.52-0.58 correlations that bursty aperiodic traffic (the
	// Twitter trace) can briefly exhibit, and well below the ~1.0 of a real
	// diurnal lock.
	seasonalMinCorr   = 0.65
	seasonalMaxValley = 0.25
)

// Seasonal is a Holt-Winters-flavoured forecaster with automatic period
// detection, modelled on the DSP/Fourier seasonal predictors production
// autoscalers ship (e.g. gocrane/crane). It keeps a ring of per-window
// rates; every seasonalRefitEvery observations it scans the ring's
// autocorrelation for a dominant period (coarse grid, then single-window
// refinement, so a planted period is recovered exactly). With an accepted
// fit the forecast is level + trend·h + seasonal index at the target phase,
// where level/trend smooth the *deseasonalized* series and the additive
// indices are keyed by absolute window number mod period (which makes the
// model equivariant under scaling and under whole-period time shifts).
//
// Without an accepted fit — cold start, or genuinely aperiodic traffic like
// the Twitter trace — Seasonal returns its embedded EWMA's forecast, so it
// degrades to exactly the paper's baseline rather than to something worse.
type Seasonal struct {
	// Window is the observation window the counts correspond to.
	Window time.Duration
	// Alpha and Beta smooth the level and trend of the deseasonalized
	// series.
	Alpha, Beta float64

	fallback *EWMA

	ring []float64 // per-window rates, indexed by absolute window & mask
	cnt  int       // total windows observed

	sinceFit int
	period   int     // accepted period in windows; 0 = no fit
	conf     float64 // autocorrelation at the accepted period

	index  []float64 // additive seasonal indices, len = period when fit
	level  float64   // deseasonalized level
	trend  float64   // deseasonalized trend per window
	haveLT bool

	chron  []float64 // refit scratch: ring in chronological order
	sums   []float64 // refit scratch: per-phase sums for the indices
	counts []int     // refit scratch: per-phase sample counts
}

// NewSeasonal returns a period-detecting seasonal forecaster over the given
// observation window, with all scratch storage preallocated (the steady
// state allocates nothing).
func NewSeasonal(window time.Duration) *Seasonal {
	return &Seasonal{
		Window:   window,
		Alpha:    0.5,
		Beta:     0.1,
		fallback: NewEWMA(window),
		ring:     make([]float64, seasonalRingSize),
		chron:    make([]float64, seasonalRingSize),
		sums:     make([]float64, seasonalRingSize/2+1),
		counts:   make([]int, seasonalRingSize/2+1),
	}
}

// Observe absorbs the count of arrivals in the window ending at now.
func (s *Seasonal) Observe(now time.Duration, count int) {
	rate := float64(count) / s.Window.Seconds()
	s.ring[s.cnt&(seasonalRingSize-1)] = rate
	s.cnt++
	s.fallback.Observe(now, count)

	s.sinceFit++
	if s.sinceFit >= seasonalRefitEvery && s.cnt >= 4*seasonalMinPeriod {
		s.refit()
		s.sinceFit = 0
	}
	if s.period == 0 {
		return
	}
	ds := rate - s.index[(s.cnt-1)%s.period]
	if !s.haveLT {
		s.level, s.trend, s.haveLT = ds, 0, true
		return
	}
	prev := s.level
	s.level = s.Alpha*ds + (1-s.Alpha)*(s.level+s.trend)
	s.trend = s.Beta*(s.level-prev) + (1-s.Beta)*s.trend
}

// PredictRPS forecasts the mean rate over [now, now+horizon]: the
// deseasonalized level plus extrapolated trend at the interval's midpoint,
// re-seasonalized with the seasonal indices averaged across the interval's
// phases (a point forecast at the far edge would systematically overshoot
// ramps). Without an accepted seasonal fit it is the embedded EWMA's
// forecast.
func (s *Seasonal) PredictRPS(now, horizon time.Duration) float64 {
	if s.period == 0 || !s.haveLT {
		return s.fallback.PredictRPS(now, horizon)
	}
	h := int(math.Round(float64(horizon) / float64(s.Window)))
	if h < 1 {
		h = 1
	}
	idx := 0.0
	for k := 1; k <= h; k++ {
		idx += s.index[(s.cnt-1+k)%s.period]
	}
	idx /= float64(h)
	p := s.level + s.trend*float64(h+1)/2 + idx
	if p < 0 {
		p = 0
	}
	return p
}

// Confidence reports confidence in the forecast currently in use: the
// autocorrelation strength of the accepted fit, or the fallback EWMA's full
// confidence when no fit is active (the forecast then *is* the baseline).
func (s *Seasonal) Confidence() float64 {
	if s.period == 0 {
		return s.fallback.Confidence()
	}
	return s.conf
}

// Period returns the accepted seasonal period in observation windows (0
// when no fit is active), for tests and diagnostics.
func (s *Seasonal) Period() int { return s.period }

// refit rescans the ring for a dominant period and rebuilds the seasonal
// indices. It runs amortized (every seasonalRefitEvery observations) and
// touches only preallocated scratch.
func (s *Seasonal) refit() {
	n := s.cnt
	if n > seasonalRingSize {
		n = seasonalRingSize
	}
	// Unroll the ring into chronological order: chron[i] is absolute window
	// first+i.
	first := s.cnt - n
	for i := 0; i < n; i++ {
		s.chron[i] = s.ring[(first+i)&(seasonalRingSize-1)]
	}
	x := s.chron[:n]

	mean, variance := 0.0, 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	for _, v := range x {
		d := v - mean
		variance += d * d
	}
	// Candidate periods need three full cycles of evidence: with only two,
	// a pair of chance surges masquerades as a period (the Twitter trace
	// produces exactly that — two big bursts ~15 minutes apart correlate at
	// 0.7+ when the scan is allowed to reach n/2).
	maxLag := n / 3
	if maxLag < seasonalMinPeriod || variance == 0 {
		s.dropFit()
		return
	}

	// Coarse scan of the normalized autocorrelation, then a single-window
	// refinement around the best coarse lag — recovering a planted period
	// exactly at a fraction of the full scan's cost. Any smooth signal
	// correlates near 1 at tiny lags, so peak candidates only start once
	// the autocorrelation has first dipped into a trough
	// (seasonalMaxValley): a true period rises back out of that trough; a
	// random walk decays monotonically and never produces a post-dip peak.
	stride := maxLag / seasonalCoarseGrid
	if stride < 1 {
		stride = 1
	}
	dipLag := 0
	bestLag, bestR := 0, math.Inf(-1)
	for lag := seasonalMinPeriod; lag <= maxLag; lag += stride {
		r := autocorr(x, lag, mean, variance)
		if dipLag == 0 {
			if r <= seasonalMaxValley {
				dipLag = lag
			}
			continue
		}
		if r > bestR {
			bestLag, bestR = lag, r
		}
	}
	if dipLag == 0 || bestLag == 0 {
		s.dropFit()
		return
	}
	bestLag, bestR = refineLag(x, bestLag, stride, dipLag, maxLag, mean, variance)
	// The post-dip maximum may still sit on a multiple of the fundamental
	// period (lag 2P correlates as strongly as P, and the length
	// normalization can nudge the argmax onto a high multiple). Walk the
	// winner's divisors from smallest candidate up and take the first that
	// correlates nearly as well — the fundamental, not a harmonic.
	for div := 8; div >= 2; div-- {
		cand := bestLag / div
		if cand < dipLag || cand < seasonalMinPeriod {
			continue
		}
		if lag, r := refineLag(x, cand, stride, dipLag, maxLag, mean, variance); r >= 0.85*bestR {
			bestLag, bestR = lag, r
			break
		}
	}

	// A winner sitting on the scan boundary is not a peak — the true period
	// may lie just beyond maxLag and the correlation is still climbing; wait
	// for more data rather than lock onto the largest scannable lag.
	if bestR < seasonalMinCorr || bestLag >= maxLag || n < 2*bestLag {
		s.dropFit()
		return
	}

	// Additive seasonal indices keyed by absolute window number mod period:
	// index[j] = mean(x at phase j) - mean(x). Keying by absolute window
	// keeps the phase consistent across refits and ring wraps.
	period := bestLag
	for j := 0; j < period; j++ {
		s.sums[j] = 0
		s.counts[j] = 0
	}
	for i := 0; i < n; i++ {
		j := (first + i) % period
		s.sums[j] += x[i]
		s.counts[j]++
	}
	for j := 0; j < period; j++ {
		if s.counts[j] > 0 {
			s.sums[j] = s.sums[j]/float64(s.counts[j]) - mean
		}
	}
	s.index = s.sums[:period]
	// The length normalization in autocorr can push a near-perfect fit a
	// hair past 1; clamp so Confidence stays in [0, 1].
	s.conf = math.Min(bestR, 1)

	// Seed (or re-seed on a period change) the deseasonalized level from
	// the most recent period of data, so the first post-fit forecasts are
	// already anchored.
	if period != s.period || !s.haveLT {
		m := period
		if m > n {
			m = n
		}
		sum := 0.0
		for i := n - m; i < n; i++ {
			sum += x[i] - s.index[(first+i)%period]
		}
		s.level, s.trend, s.haveLT = sum/float64(m), 0, true
	}
	s.period = period
}

func (s *Seasonal) dropFit() {
	s.period = 0
	s.conf = 0
	s.haveLT = false
}

// autocorr is the lag-l autocorrelation of x, length-normalized so a
// perfectly periodic signal scores ~1 at its period regardless of how much
// of the ring that period spans (the caller precomputes mean and the sum of
// squared deviations).
func autocorr(x []float64, lag int, mean, variance float64) float64 {
	sum := 0.0
	for i := lag; i < len(x); i++ {
		sum += (x[i] - mean) * (x[i-lag] - mean)
	}
	return sum / variance * float64(len(x)) / float64(len(x)-lag)
}

// refineLag scans every lag within one coarse stride of cand and returns
// the best (lag, autocorrelation) pair — single-window resolution around a
// coarse-grid candidate, bounded below by the first-trough lag.
func refineLag(x []float64, cand, stride, minLag, maxLag int, mean, variance float64) (int, float64) {
	lo, hi := cand-stride, cand+stride
	if lo < minLag {
		lo = minLag
	}
	if hi > maxLag {
		hi = maxLag
	}
	bestLag, bestR := 0, math.Inf(-1)
	for lag := lo; lag <= hi; lag++ {
		if r := autocorr(x, lag, mean, variance); r > bestR {
			bestLag, bestR = lag, r
		}
	}
	return bestLag, bestR
}

package predict

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestBacktestGoldensDeterministic pins the backtest harness end to end:
// every registered forecaster, replayed over a compressed Wikipedia curve
// and a Twitter curve at both the autoscale horizon (4 s) and the
// procurement lead (15 s), must reproduce these exact quality numbers. The
// replay is RNG-free (the forecasters observe the curves' expected counts),
// so the strings are byte-identical across runs, GOMAXPROCS settings and
// -race — make test-determinism runs this file with -cpu 1,4.
//
// The numbers also pin the study's qualitative shape: seasonal beats ewma on
// the diurnal curve at both horizons, and is byte-identical to ewma on the
// aperiodic Twitter curve (no fit is ever accepted, so it degrades to its
// EWMA fallback exactly).
func TestBacktestGoldensDeterministic(t *testing.T) {
	rng := sim.NewRNG(7).Child("backtest-golden")
	wiki := trace.WikipediaCurve(rng, 170, 4, 288)
	tw := trace.TwitterCurve(rng, 275, 30*time.Minute)
	window := 500 * time.Millisecond
	horizons := []time.Duration{4 * time.Second, 15 * time.Second}

	want := []string{
		"ewma on wikipedia(peak=170,days=4,c=288) h=4s: samples=2392 mape=0.0577 under=0.3838 shortfall=0.0493",
		"ewma on wikipedia(peak=170,days=4,c=288) h=15s: samples=2370 mape=0.1473 under=0.4118 shortfall=0.1371",
		"seasonal on wikipedia(peak=170,days=4,c=288) h=4s: samples=2392 mape=0.0539 under=0.4402 shortfall=0.0466",
		"seasonal on wikipedia(peak=170,days=4,c=288) h=15s: samples=2370 mape=0.1334 under=0.4608 shortfall=0.1277",
		"percentile on wikipedia(peak=170,days=4,c=288) h=4s: samples=2392 mape=1.3430 under=0.3403 shortfall=0.1056",
		"percentile on wikipedia(peak=170,days=4,c=288) h=15s: samples=2370 mape=1.4896 under=0.3751 shortfall=0.1893",
		"p99 on wikipedia(peak=170,days=4,c=288) h=4s: samples=2392 mape=1.4154 under=0.3227 shortfall=0.0614",
		"p99 on wikipedia(peak=170,days=4,c=288) h=15s: samples=2370 mape=1.5574 under=0.3532 shortfall=0.1554",
		"ewma on twitter(mean=275,dur=30m0s) h=4s: samples=3592 mape=0.1721 under=0.3644 shortfall=0.1147",
		"ewma on twitter(mean=275,dur=30m0s) h=15s: samples=3570 mape=0.3931 under=0.4036 shortfall=0.2255",
		"seasonal on twitter(mean=275,dur=30m0s) h=4s: samples=3592 mape=0.1721 under=0.3644 shortfall=0.1147",
		"seasonal on twitter(mean=275,dur=30m0s) h=15s: samples=3570 mape=0.3931 under=0.4036 shortfall=0.2255",
		"percentile on twitter(mean=275,dur=30m0s) h=4s: samples=3592 mape=1.4152 under=0.1350 shortfall=0.1917",
		"percentile on twitter(mean=275,dur=30m0s) h=15s: samples=3570 mape=1.4123 under=0.1686 shortfall=0.2709",
		"p99 on twitter(mean=275,dur=30m0s) h=4s: samples=3592 mape=1.5847 under=0.0919 shortfall=0.1436",
		"p99 on twitter(mean=275,dur=30m0s) h=15s: samples=3570 mape=1.5559 under=0.1325 shortfall=0.2397",
	}

	i := 0
	for _, c := range []*trace.Curve{wiki, tw} {
		for _, name := range Names() {
			for _, h := range horizons {
				f, err := NewByName(name, window)
				if err != nil {
					t.Fatal(err)
				}
				got := Backtest(name, f, c, window, h).String()
				if got != want[i] {
					t.Errorf("golden %d:\n got %s\nwant %s", i, got, want[i])
				}
				i++
			}
		}
	}
}

// TestBacktestHorizonsFreshState: BacktestHorizons must hand every horizon a
// fresh forecaster — identical horizons must produce identical reports, with
// no state bleeding from one sweep entry into the next.
func TestBacktestHorizonsFreshState(t *testing.T) {
	rng := sim.NewRNG(7).Child("backtest-horizons")
	c := trace.WikipediaCurve(rng, 100, 1, 288)
	w := 500 * time.Millisecond
	h := 10 * time.Second
	reps := BacktestHorizons("ewma", func() Forecaster { return NewEWMA(w) }, c, w,
		[]time.Duration{h, h, h})
	if reps[0].String() != reps[1].String() || reps[1].String() != reps[2].String() {
		t.Fatalf("identical horizons diverged:\n%s\n%s\n%s", reps[0], reps[1], reps[2])
	}
	if reps[0].Samples == 0 {
		t.Fatal("no samples scored")
	}
}

// TestBacktestDegenerateInputs: zero windows/horizons and empty curves
// produce an empty report rather than a panic or NaNs.
func TestBacktestDegenerateInputs(t *testing.T) {
	c := &trace.Curve{Name: "empty"}
	rep := Backtest("ewma", NewEWMA(time.Second), c, 0, time.Second)
	if rep.Samples != 0 || rep.MAPE != 0 {
		t.Fatalf("degenerate backtest produced %+v", rep)
	}
	rep = Backtest("ewma", NewEWMA(time.Second), c, time.Second, 0)
	if rep.Samples != 0 {
		t.Fatalf("zero horizon produced %+v", rep)
	}
}

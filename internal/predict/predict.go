// Package predict provides the lightweight request-rate predictors the
// paper's Hardware Selection and predictive autoscaling modules rely on. The
// paper uses EWMA (as in Atoll) as its "lightweight, pluggable" model; the
// Oracle scheme replaces it with a clairvoyant predictor that reads the
// future straight from the trace.
package predict

import (
	"math"
	"time"

	"repro/internal/trace"
)

// Predictor estimates the near-future request rate of one workload.
//
// Observe is fed once per observation window with the number of requests
// that arrived in the window ending at now. PredictRPS then estimates the
// average arrival rate over [now, now+horizon].
type Predictor interface {
	Observe(now time.Duration, count int)
	PredictRPS(now, horizon time.Duration) float64
}

// EWMA smooths the observed per-window arrival rate exponentially and
// carries a trend term (Holt's linear method), so the forecast over a
// horizon leads ramps instead of lagging them — exactly what hardware
// procurement with a ~4 s lead time needs. To avoid under-provisioning
// during surges (the paper's autoscaler is deliberately conservative), the
// level tracks upward jumps faster than decays, and only a positive trend is
// extrapolated.
type EWMA struct {
	// UpAlpha and DownAlpha are the level smoothing factors in (0, 1];
	// higher means more reactive.
	UpAlpha   float64
	DownAlpha float64
	// Beta is the trend smoothing factor.
	Beta float64
	// Window is the observation window the counts correspond to.
	Window time.Duration

	value       float64
	trend       float64 // rate change per window
	initialized bool
}

// NewEWMA returns the paper-flavoured EWMA over the given observation
// window: fast on the way up (0.7), slower on the way down (0.25), with a
// moderately damped trend.
func NewEWMA(window time.Duration) *EWMA {
	return &EWMA{UpAlpha: 0.7, DownAlpha: 0.25, Beta: 0.4, Window: window}
}

// Observe absorbs the count of arrivals in the window ending at now.
func (e *EWMA) Observe(_ time.Duration, count int) {
	rate := float64(count) / e.Window.Seconds()
	if !e.initialized {
		e.value = rate
		e.initialized = true
		return
	}
	a := e.DownAlpha
	if rate > e.value {
		a = e.UpAlpha
	}
	prev := e.value
	e.value = a*rate + (1-a)*(e.value+e.trend)
	e.trend = e.Beta*(e.value-prev) + (1-e.Beta)*e.trend
}

// trendNoiseGate returns the smallest trend (rate change per window) worth
// extrapolating: long horizons multiply the trend by many windows, so
// Poisson counting noise in the trend would otherwise masquerade as a surge.
// The per-window rate estimate has standard deviation sqrt(rate/window);
// trends below half of that are treated as noise.
func (e *EWMA) trendNoiseGate() float64 {
	w := e.Window.Seconds()
	if w <= 0 {
		return 0
	}
	return 0.5 * math.Sqrt((e.value+1)/w)
}

// PredictRPS forecasts the rate over [now, now+horizon]: the smoothed level
// plus, when traffic is genuinely building (trend above the noise gate), the
// extrapolated trend at the horizon. A negative trend is not extrapolated
// (conservatism against premature scale-down).
func (e *EWMA) PredictRPS(_, horizon time.Duration) float64 {
	p := e.value
	if e.Window > 0 && e.trend > e.trendNoiseGate() {
		p += e.trend * float64(horizon) / float64(e.Window)
	}
	if p < 0 {
		p = 0
	}
	return p
}

// Rate returns the current smoothed rate without trend extrapolation.
func (e *EWMA) Rate() float64 { return e.value }

// Clairvoyant knows the whole trace and predicts the exact mean rate over
// the horizon — the predictor of the paper's Oracle scheme.
type Clairvoyant struct {
	tr *trace.Trace
}

// NewClairvoyant returns a predictor that reads the future from tr.
func NewClairvoyant(tr *trace.Trace) *Clairvoyant { return &Clairvoyant{tr: tr} }

// Observe is a no-op; the future is already known.
func (c *Clairvoyant) Observe(time.Duration, int) {}

// PredictRPS returns the true mean arrival rate over [now, now+horizon].
func (c *Clairvoyant) PredictRPS(now, horizon time.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	sub := c.tr.Slice(now, now+horizon)
	return sub.MeanRPS()
}

// Static always predicts a fixed rate; useful in tests and as the
// no-prediction ablation.
type Static struct{ RPS float64 }

// Observe is a no-op.
func (s Static) Observe(time.Duration, int) {}

// PredictRPS returns the fixed rate.
func (s Static) PredictRPS(time.Duration, time.Duration) float64 { return s.RPS }

// WindowObserver accumulates raw arrivals and feeds a Predictor one count
// per aligned observation window. It bridges the event-driven gateway (which
// sees individual requests) and the windowed Predictor interface.
type WindowObserver struct {
	p      Predictor
	window time.Duration

	windowStart time.Duration
	count       int
}

// NewWindowObserver wraps p, flushing counts every window.
func NewWindowObserver(p Predictor, window time.Duration) *WindowObserver {
	return &WindowObserver{p: p, window: window}
}

// Arrive records one request at time now, flushing any completed windows
// first.
func (w *WindowObserver) Arrive(now time.Duration) {
	w.catchUp(now)
	w.count++
}

// catchUp flushes all observation windows that ended at or before now.
func (w *WindowObserver) catchUp(now time.Duration) {
	for now >= w.windowStart+w.window {
		w.p.Observe(w.windowStart+w.window, w.count)
		w.count = 0
		w.windowStart += w.window
	}
}

// PredictRPS flushes completed windows and delegates to the predictor.
func (w *WindowObserver) PredictRPS(now, horizon time.Duration) float64 {
	w.catchUp(now)
	return w.p.PredictRPS(now, horizon)
}

// Package predict provides the request-rate forecasters the paper's
// Hardware Selection and predictive autoscaling modules rely on. The paper
// uses EWMA (as in Atoll) as its "lightweight, pluggable" model; this
// package generalizes that seam into a Forecaster interface with three
// production-style implementations — EWMA with Holt trend, a seasonal
// (Holt-Winters/DSP-flavoured) model with autocorrelation period detection,
// and a percentile provisioner — plus the clairvoyant predictor the Oracle
// scheme uses, and a deterministic backtesting harness (backtest.go) that
// scores any forecaster against any rate curve.
package predict

import (
	"fmt"
	"math"
	"time"

	"repro/internal/trace"
)

// Forecaster estimates the near-future request rate of one workload.
//
// Observe is fed once per observation window with the number of requests
// that arrived in the window ending at now. PredictRPS then estimates the
// average arrival rate over [now, now+horizon].
type Forecaster interface {
	Observe(now time.Duration, count int)
	PredictRPS(now, horizon time.Duration) float64
}

// Predictor is the historical name of the Forecaster seam; existing config
// hooks (core.Config.NewPredictor) keep compiling against it.
type Predictor = Forecaster

// QuantileForecaster is the optional extension percentile-style models
// implement: Quantile estimates the rate that the observed load stays below
// with probability p over [now, now+horizon].
type QuantileForecaster interface {
	Forecaster
	Quantile(p float64, horizon time.Duration) float64
}

// ConfidenceReporter is the optional extension models implement to disclose
// how much the forecast in use can be trusted, in [0, 1]. The hardware
// procurement path only trusts a long-lead forecast from a forecaster
// reporting at least ConfidenceFloor; below that it falls back to the
// observed (reactive) rate. Models without the method are treated as fully
// confident, matching the paper's unconditional use of EWMA.
type ConfidenceReporter interface {
	Confidence() float64
}

// ConfidenceFloor is the confidence below which consumers should prefer the
// observed rate over a long-lead forecast.
const ConfidenceFloor = 0.5

// Confidence reports f's confidence, treating models without the optional
// ConfidenceReporter extension as fully confident.
func Confidence(f Forecaster) float64 {
	if c, ok := f.(ConfidenceReporter); ok {
		return c.Confidence()
	}
	return 1
}

// Names lists the forecasters NewByName accepts, in documentation order.
func Names() []string { return []string{"ewma", "seasonal", "percentile", "p99"} }

// NewByName constructs a forecaster over the given observation window:
// "ewma" (the paper's default), "seasonal" (period-detecting Holt-Winters),
// "percentile" (p95 provisioner) or "p99". The empty name means "ewma".
func NewByName(name string, window time.Duration) (Forecaster, error) {
	switch name {
	case "", "ewma":
		return NewEWMA(window), nil
	case "seasonal":
		return NewSeasonal(window), nil
	case "percentile", "p95":
		return NewPercentile(window, 0.95), nil
	case "p99":
		return NewPercentile(window, 0.99), nil
	}
	return nil, fmt.Errorf("predict: unknown forecaster %q (have %v)", name, Names())
}

// EWMA smooths the observed per-window arrival rate exponentially and
// carries a trend term (Holt's linear method), so the forecast over a
// horizon leads ramps instead of lagging them — exactly what hardware
// procurement with a ~4 s lead time needs. To avoid under-provisioning
// during surges (the paper's autoscaler is deliberately conservative), the
// level tracks upward jumps faster than decays, and only a positive trend is
// extrapolated.
type EWMA struct {
	// UpAlpha and DownAlpha are the level smoothing factors in (0, 1];
	// higher means more reactive.
	UpAlpha   float64
	DownAlpha float64
	// Beta is the trend smoothing factor.
	Beta float64
	// Window is the observation window the counts correspond to.
	Window time.Duration

	value       float64
	trend       float64 // rate change per window
	initialized bool
}

// NewEWMA returns the paper-flavoured EWMA over the given observation
// window: fast on the way up (0.7), slower on the way down (0.25), with a
// moderately damped trend.
func NewEWMA(window time.Duration) *EWMA {
	return &EWMA{UpAlpha: 0.7, DownAlpha: 0.25, Beta: 0.4, Window: window}
}

// Observe absorbs the count of arrivals in the window ending at now.
func (e *EWMA) Observe(_ time.Duration, count int) {
	rate := float64(count) / e.Window.Seconds()
	if !e.initialized {
		e.value = rate
		e.initialized = true
		return
	}
	a := e.DownAlpha
	if rate > e.value {
		a = e.UpAlpha
	}
	prev := e.value
	e.value = a*rate + (1-a)*(e.value+e.trend)
	e.trend = e.Beta*(e.value-prev) + (1-e.Beta)*e.trend
}

// trendNoiseGate returns the smallest trend (rate change per window) worth
// extrapolating: long horizons multiply the trend by many windows, so
// Poisson counting noise in the trend would otherwise masquerade as a surge.
// The per-window rate estimate has standard deviation sqrt(rate/window);
// trends below half of that are treated as noise.
func (e *EWMA) trendNoiseGate() float64 {
	w := e.Window.Seconds()
	if w <= 0 {
		return 0
	}
	return 0.5 * math.Sqrt((e.value+1)/w)
}

// PredictRPS forecasts the rate over [now, now+horizon]: the smoothed level
// plus, when traffic is genuinely building (trend above the noise gate), the
// extrapolated trend at the horizon. A negative trend is not extrapolated
// (conservatism against premature scale-down).
func (e *EWMA) PredictRPS(_, horizon time.Duration) float64 {
	p := e.value
	if e.Window > 0 && e.trend > e.trendNoiseGate() {
		p += e.trend * float64(horizon) / float64(e.Window)
	}
	if p < 0 {
		p = 0
	}
	return p
}

// Rate returns the current smoothed rate without trend extrapolation.
func (e *EWMA) Rate() float64 { return e.value }

// Confidence is always 1: EWMA is the trusted baseline the paper's
// procurement path uses unconditionally.
func (e *EWMA) Confidence() float64 { return 1 }

// Clairvoyant knows the whole trace and predicts the exact mean rate over
// the horizon — the predictor of the paper's Oracle scheme.
type Clairvoyant struct {
	tr *trace.Trace
}

// NewClairvoyant returns a predictor that reads the future from tr.
func NewClairvoyant(tr *trace.Trace) *Clairvoyant { return &Clairvoyant{tr: tr} }

// Observe is a no-op; the future is already known.
func (c *Clairvoyant) Observe(time.Duration, int) {}

// PredictRPS returns the true mean arrival rate over [now, now+horizon].
func (c *Clairvoyant) PredictRPS(now, horizon time.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	sub := c.tr.Slice(now, now+horizon)
	return sub.MeanRPS()
}

// Static always predicts a fixed rate; useful in tests and as the
// no-prediction ablation.
type Static struct{ RPS float64 }

// Observe is a no-op.
func (s Static) Observe(time.Duration, int) {}

// PredictRPS returns the fixed rate.
func (s Static) PredictRPS(time.Duration, time.Duration) float64 { return s.RPS }

// WindowObserver accumulates raw arrivals and feeds a Forecaster one count
// per aligned observation window. It bridges the event-driven gateway (which
// sees individual requests) and the windowed Forecaster interface.
type WindowObserver struct {
	p      Forecaster
	window time.Duration

	windowStart time.Duration
	count       int
}

// NewWindowObserver wraps p, flushing counts every window.
func NewWindowObserver(p Forecaster, window time.Duration) *WindowObserver {
	return &WindowObserver{p: p, window: window}
}

// Arrive records one request at time now, flushing any completed windows
// first.
func (w *WindowObserver) Arrive(now time.Duration) {
	w.catchUp(now)
	w.count++
}

// catchUp flushes all observation windows that ended at or before now.
func (w *WindowObserver) catchUp(now time.Duration) {
	for now >= w.windowStart+w.window {
		w.p.Observe(w.windowStart+w.window, w.count)
		w.count = 0
		w.windowStart += w.window
	}
}

// PredictRPS flushes completed windows and delegates to the forecaster.
func (w *WindowObserver) PredictRPS(now, horizon time.Duration) float64 {
	w.catchUp(now)
	return w.p.PredictRPS(now, horizon)
}

// Confidence reports the wrapped forecaster's confidence (1 for models
// without the extension). It reflects the state as of the last flushed
// window; callers that predicted first (flushing windows up to now) read a
// confidence consistent with that prediction.
func (w *WindowObserver) Confidence() float64 { return Confidence(w.p) }

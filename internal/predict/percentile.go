package predict

import (
	"sort"
	"time"
)

// DefaultPercentileHistory is the sliding window the percentile forecaster
// estimates over, in observation windows — one minute at the default 500 ms
// window.
const DefaultPercentileHistory = 120

// Percentile provisions to a high quantile of the recently observed rates,
// the way percentile-based resource estimators in production autoscalers do
// (e.g. gocrane/crane): instead of predicting a trajectory it answers "what
// rate does this workload stay under p of the time?", which is the right
// question when capacity must absorb bursts rather than track a mean. The
// horizon is ignored — the estimate is a level to provision for, not a
// point forecast — so the same value serves container pre-warming and
// hardware procurement.
type Percentile struct {
	// P is the default quantile PredictRPS provisions to, in (0, 1].
	P float64
	// Window is the observation window the counts correspond to.
	Window time.Duration
	// History is the sliding window length in observation windows.
	History int

	ring    []float64
	cnt     int
	scratch []float64
}

// NewPercentile returns a forecaster provisioning to the p-quantile of the
// last DefaultPercentileHistory observation windows.
func NewPercentile(window time.Duration, p float64) *Percentile {
	return &Percentile{
		P:       p,
		Window:  window,
		History: DefaultPercentileHistory,
		ring:    make([]float64, DefaultPercentileHistory),
		scratch: make([]float64, DefaultPercentileHistory),
	}
}

// Observe absorbs the count of arrivals in the window ending at now.
func (f *Percentile) Observe(_ time.Duration, count int) {
	f.ring[f.cnt%f.History] = float64(count) / f.Window.Seconds()
	f.cnt++
}

// PredictRPS provisions to the configured default quantile.
func (f *Percentile) PredictRPS(_, horizon time.Duration) float64 {
	return f.Quantile(f.P, horizon)
}

// Quantile returns the p-quantile of the sliding window of observed rates
// (linear interpolation between order statistics), monotone in p.
func (f *Percentile) Quantile(p float64, _ time.Duration) float64 {
	m := f.cnt
	if m > f.History {
		m = f.History
	}
	if m == 0 {
		return 0
	}
	s := f.scratch[:m]
	copy(s, f.ring[:m])
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[m-1]
	}
	pos := p * float64(m-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= m {
		return s[m-1]
	}
	return s[i] + frac*(s[i+1]-s[i])
}

// Confidence grows with the fill of the sliding window: a quantile over a
// handful of samples is not evidence worth procuring hardware against.
func (f *Percentile) Confidence() float64 {
	min := f.History / 4
	if min < 1 {
		min = 1
	}
	if f.cnt >= min {
		return 1
	}
	return float64(f.cnt) / float64(min)
}

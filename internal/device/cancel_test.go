package device

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// Cancelling an executing spatial job must release its capacity: the
// surviving co-located job speeds back up to its solo rate.
func TestCancelActiveSpatialReleasesCapacity(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	var done *Job
	keep := &Job{Batch: 8, Solo: 200 * time.Millisecond, FBR: 0.9, Mode: Spatial,
		Done: func(j *Job) { done = j }}
	clone := &Job{Batch: 8, Solo: 200 * time.Millisecond, FBR: 0.9, Mode: Spatial,
		Done: func(j *Job) { t.Fatal("cancelled job must not fire Done") }}
	d.Submit(keep)
	d.Submit(clone)
	// Cancel the clone immediately: the survivor should finish in ~solo time
	// (the instantaneous co-location interval has zero measure).
	if !d.Cancel(clone) {
		t.Fatal("Cancel returned false for an active job")
	}
	if d.ActiveCount() != 1 {
		t.Fatalf("active = %d after cancel, want 1", d.ActiveCount())
	}
	eng.RunAll()
	if done == nil {
		t.Fatal("surviving job never completed")
	}
	approxDur(t, done.Finished, 200*time.Millisecond, time.Microsecond, "survivor finish")
}

// A cancelled job mid-flight leaves the survivor with exactly the slowdown
// accrued so far: progress before the cancel is at the contended rate,
// progress after at the solo rate.
func TestCancelMidFlightSpeedsUpSurvivor(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	var done *Job
	keep := &Job{Batch: 8, Solo: 100 * time.Millisecond, FBR: 0.9, Mode: Spatial,
		Done: func(j *Job) { done = j }}
	clone := &Job{Batch: 8, Solo: 100 * time.Millisecond, FBR: 0.9, Mode: Spatial, Done: func(j *Job) {}}
	d.Submit(keep)
	d.Submit(clone)
	eng.Schedule(50*time.Millisecond, func() { d.Cancel(clone) })
	eng.RunAll()
	if done == nil {
		t.Fatal("survivor never completed")
	}
	// Contended for 50ms then solo: finish must land strictly between the
	// all-solo and all-contended projections.
	if done.Finished <= 100*time.Millisecond {
		t.Fatalf("survivor finished at %v, too fast for 50ms of contention", done.Finished)
	}
	solo := &Job{Batch: 8, Solo: 100 * time.Millisecond, FBR: 0.9, Mode: Spatial, Done: func(j *Job) {}}
	eng2 := sim.NewEngine()
	d2 := New(eng2, gpuSpec(), 0)
	c2 := &Job{Batch: 8, Solo: 100 * time.Millisecond, FBR: 0.9, Mode: Spatial, Done: func(j *Job) {}}
	d2.Submit(solo)
	d2.Submit(c2)
	eng2.RunAll()
	if done.Finished >= solo.Finished {
		t.Fatalf("survivor %v not faster than fully-contended %v", done.Finished, solo.Finished)
	}
}

// Cancelling the running lane job must admit the next lane job.
func TestCancelLaneRunningAdmitsNext(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, cpuSpec(), 0)
	var order []int
	mk := func(id int) *Job {
		return &Job{ID: int64(id), Batch: 1, Solo: 100 * time.Millisecond, Mode: Queued,
			Done: func(j *Job) { order = append(order, int(j.ID)) }}
	}
	j1, j2 := mk(1), mk(2)
	d.Submit(j1)
	d.Submit(j2)
	if !d.Cancel(j1) {
		t.Fatal("Cancel lane-running returned false")
	}
	eng.RunAll()
	if len(order) != 1 || order[0] != 2 {
		t.Fatalf("completions = %v, want [2]", order)
	}
	approxDur(t, j2.Finished, 100*time.Millisecond, time.Microsecond, "successor finish")
}

// Cancelling a job still waiting in the lane removes it without perturbing
// the running job.
func TestCancelLaneWaiting(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, cpuSpec(), 0)
	var order []int
	mk := func(id int) *Job {
		return &Job{ID: int64(id), Batch: 1, Solo: 100 * time.Millisecond, Mode: Queued,
			Done: func(j *Job) { order = append(order, int(j.ID)) }}
	}
	j1, j2, j3 := mk(1), mk(2), mk(3)
	d.Submit(j1)
	d.Submit(j2)
	d.Submit(j3)
	if !d.Cancel(j2) {
		t.Fatal("Cancel lane-waiting returned false")
	}
	if d.LaneLength() != 1 {
		t.Fatalf("lane length = %d, want 1", d.LaneLength())
	}
	eng.RunAll()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("completions = %v, want [1 3]", order)
	}
}

// Cancelling a spatial job waiting for a memory slot removes it; the slot
// freed by the running job then admits the job behind it.
func TestCancelPendingSpatial(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 1) // one resident job max
	var order []int
	mk := func(id int) *Job {
		return &Job{ID: int64(id), Batch: 1, Solo: 100 * time.Millisecond, FBR: 0.5, Mode: Spatial,
			Done: func(j *Job) { order = append(order, int(j.ID)) }}
	}
	j1, j2, j3 := mk(1), mk(2), mk(3)
	d.Submit(j1)
	d.Submit(j2)
	d.Submit(j3)
	if !d.Cancel(j2) {
		t.Fatal("Cancel pending-spatial returned false")
	}
	eng.RunAll()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("completions = %v, want [1 3]", order)
	}
}

// Cancel of a job the device no longer holds (already finished) is a no-op
// returning false — the clone dispatcher relies on this to detect races with
// same-tick completions.
func TestCancelAbsentJob(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	j := &Job{Batch: 1, Solo: 10 * time.Millisecond, FBR: 0.5, Mode: Spatial, Done: func(j *Job) {}}
	d.Submit(j)
	eng.RunAll()
	if d.Cancel(j) {
		t.Fatal("Cancel of a finished job returned true")
	}
	if d.Cancel(&Job{}) {
		t.Fatal("Cancel of a never-submitted job returned true")
	}
}

// The steady-state submit/cancel cycle of a pooled job must not allocate:
// the clone dispatcher leans on this for 0-alloc redundant dispatch.
func TestCancelAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	j := &Job{}
	reset := func() {
		j.Reset()
		j.Batch = 4
		j.Solo = 50 * time.Millisecond
		j.FBR = 0.6
		j.Mode = Spatial
	}
	// Warm up: bind the finish closure, grow the active slice and the
	// engine's timer arena.
	for i := 0; i < 64; i++ {
		reset()
		d.Submit(j)
		d.Cancel(j)
	}
	allocs := testing.AllocsPerRun(200, func() {
		reset()
		d.Submit(j)
		if !d.Cancel(j) {
			t.Fatal("cancel failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("submit+cancel allocates %.1f allocs/op, want 0", allocs)
	}
}

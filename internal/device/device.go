// Package device simulates the compute devices of a worker node.
//
// A GPU device supports the two sharing mechanisms the paper builds on:
//
//   - Spatial sharing (NVIDIA MPS): jobs submitted in Spatial mode join a
//     processor-sharing pool immediately and run concurrently. Co-located
//     jobs contend for memory bandwidth, caches and capacity; each job's
//     progress rate is scaled by profile.Slowdown of the pool's aggregate
//     Fractional Bandwidth Requirement, so over-colocation produces exactly
//     the job-interference overhead the paper attributes to MPS-only
//     schemes.
//
//   - Time sharing: jobs submitted in Queued mode enter a FIFO lane that
//     runs at most one job at a time (concurrently with the spatial pool,
//     as the default CUDA time-slicing coexists with MPS clients). A lone
//     time-shared job runs at its profiled solo speed; a long lane produces
//     exactly the queueing-delay overhead of time-shared-only schemes.
//
// A CPU device is the degenerate case: the ML framework's batched CPU mode
// executes one batch at a time, so every submission lands in the FIFO lane.
//
// The device also supports failure injection (for the paper's node-failure
// study) and a host-contention factor (for the mixed-workload study).
package device

import (
	"time"

	"repro/internal/hardware"
	"repro/internal/invariant"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Mode selects the GPU sharing mechanism for a job.
type Mode int

const (
	// Spatial co-locates the job on the device via MPS.
	Spatial Mode = iota
	// Queued time-shares the device: the job waits in a FIFO lane.
	Queued
)

func (m Mode) String() string {
	if m == Spatial {
		return "spatial"
	}
	return "queued"
}

// Job is one batch execution on a device.
type Job struct {
	// ID identifies the job in telemetry spans; 0 means untracked (job IDs
	// are assigned from 1 by the dispatcher when telemetry is enabled).
	ID int64
	// Batch is the number of requests in the job.
	Batch int
	// Solo is the profiled isolated execution latency of this batch on this
	// device.
	Solo time.Duration
	// FBR is the job's fractional bandwidth requirement on this device.
	FBR float64
	// Compute is the fraction of the device's compute units the job
	// occupies while executing (profile.ComputeFraction). Zero means
	// negligible — co-location then contends only for bandwidth.
	Compute float64
	// Mode selects spatial or time sharing.
	Mode Mode
	// Done is invoked exactly once when the job finishes or fails.
	Done func(j *Job)

	// Submitted, Started and Finished are stamped by the device.
	Submitted time.Duration
	Started   time.Duration
	Finished  time.Duration
	// Failed is set instead of a normal completion when the node fails
	// while the job is in flight or waiting.
	Failed bool

	remainingSec float64 // solo-equivalent work left, in seconds
	running      bool
	finishEv     sim.Timer
	dev          *Device // executing device, set at start; finishFn reads it
	finishFn     func()  // bound once per Job lifetime; survives Reset
}

// Reset clears the job for reuse from a pool, as if freshly allocated. The
// bound finish closure (and its device pointer slot) survives, so a pooled
// job's whole lifecycle — including every finish-event re-arm — allocates
// nothing after its first use.
func (j *Job) Reset() {
	j.ID = 0
	j.Batch = 0
	j.Solo = 0
	j.FBR = 0
	j.Compute = 0
	j.Mode = Spatial
	j.Done = nil
	j.Submitted = 0
	j.Started = 0
	j.Finished = 0
	j.Failed = false
	j.remainingSec = 0
	j.running = false
	j.finishEv = sim.Timer{}
}

// QueueDelay is the time the job spent waiting before execution began.
func (j *Job) QueueDelay() time.Duration {
	if j.Started < j.Submitted {
		return 0
	}
	return j.Started - j.Submitted
}

// Interference is the execution-time inflation the job suffered from
// co-located jobs: actual execution minus the profiled solo latency.
func (j *Job) Interference() time.Duration {
	d := j.Finished - j.Started - j.Solo
	if d < 0 {
		return 0
	}
	return d
}

// Device simulates one node's compute device.
type Device struct {
	eng  *sim.Engine
	spec hardware.Spec

	active      []*Job // running jobs (spatial pool + at most one lane job)
	laneRunning *Job   // the Queued-mode job currently running, if any
	lane        []*Job // waiting Queued-mode jobs, FIFO
	pendingSpat []*Job // Spatial jobs waiting for a memory slot, FIFO

	// maxResident caps concurrently resident jobs (device memory); 0 means
	// unlimited.
	maxResident int

	// hostFactor inflates all execution (>=1); models co-resident "regular"
	// serverless workloads stealing host CPU (Table III).
	hostFactor float64

	// sink receives job lifecycle events; nodeID labels them. A nil sink
	// costs one branch per lifecycle transition.
	sink   telemetry.Sink
	nodeID int

	// check, when set, asserts the device-capacity laws (resident bound,
	// no progress while failed) on every start/advance/finish. A nil check
	// costs one branch per site.
	check *invariant.Checker

	failed bool

	lastAdvance time.Duration
	busy        time.Duration // accumulated non-idle time
	created     time.Duration
	jobsDone    uint64
	workDone    time.Duration // solo-equivalent work completed
}

// New creates a device for the node type. For GPU nodes maxResident bounds
// spatial co-location (pass profile.MaxResidentJobs or 0 for unlimited).
func New(eng *sim.Engine, spec hardware.Spec, maxResident int) *Device {
	return &Device{
		eng:         eng,
		spec:        spec,
		maxResident: maxResident,
		hostFactor:  1,
		lastAdvance: eng.Now(),
		created:     eng.Now(),
	}
}

// Spec returns the node type the device belongs to.
func (d *Device) Spec() hardware.Spec { return d.spec }

// SetTelemetry wires the device's job lifecycle events to a sink, labelled
// with the owning node's ID.
func (d *Device) SetTelemetry(s telemetry.Sink, nodeID int) {
	d.sink = s
	d.nodeID = nodeID
}

// SetCheck wires the device to an invariant checker, labelled with the
// owning node's ID.
func (d *Device) SetCheck(c *invariant.Checker, nodeID int) {
	d.check = c
	d.nodeID = nodeID
}

// jobEvent emits one job lifecycle event; call sites guard sink != nil.
func (d *Device) jobEvent(kind telemetry.Kind, j *Job) {
	e := telemetry.Ev(d.eng.Now(), kind)
	e.Job = j.ID
	e.Node = d.nodeID
	e.Spec = d.spec.Name
	e.N = j.Batch
	e.Detail = j.Mode.String()
	d.sink.Event(e)
}

// SetHostFactor sets the host-contention execution inflation (>= 1).
func (d *Device) SetHostFactor(f float64) {
	if f < 1 {
		f = 1
	}
	d.advance()
	d.hostFactor = f
	d.reschedule()
}

// ActiveCount returns the number of jobs currently executing.
func (d *Device) ActiveCount() int { return len(d.active) }

// ActiveDemand returns the aggregate FBR of executing jobs.
func (d *Device) ActiveDemand() float64 {
	d.advance()
	total := 0.0
	for _, j := range d.active {
		total += j.FBR
	}
	return total
}

// ActiveCompute returns the aggregate compute occupancy of executing jobs.
func (d *Device) ActiveCompute() float64 {
	d.advance()
	total := 0.0
	for _, j := range d.active {
		total += j.Compute
	}
	return total
}

// LaneLength returns the number of Queued-mode jobs waiting (excluding the
// one running).
func (d *Device) LaneLength() int { return len(d.lane) }

// BacklogSolo returns the total solo-equivalent work on the device: the
// remaining work of executing jobs plus the solo time of everything waiting.
// Schedulers use it to approximate T_max on CPU nodes.
func (d *Device) BacklogSolo() time.Duration {
	d.advance()
	var total time.Duration
	for _, j := range d.active {
		total += time.Duration(j.remainingSec * float64(time.Second))
	}
	for _, j := range d.lane {
		total += j.Solo
	}
	for _, j := range d.pendingSpat {
		total += j.Solo
	}
	return total
}

// LaneBacklogSolo returns the solo-equivalent work ahead of a newly queued
// job: the remaining work of the running lane job plus the solo time of
// everything waiting in the lane.
func (d *Device) LaneBacklogSolo() time.Duration {
	d.advance()
	var total time.Duration
	if d.laneRunning != nil {
		total += time.Duration(d.laneRunning.remainingSec * float64(time.Second))
	}
	for _, j := range d.lane {
		total += j.Solo
	}
	return total
}

// JobsDone returns the number of successfully completed jobs.
func (d *Device) JobsDone() uint64 { return d.jobsDone }

// Utilization returns the fraction of time since creation the device was
// non-idle.
func (d *Device) Utilization() float64 {
	d.advance()
	total := d.eng.Now() - d.created
	if total <= 0 {
		return 0
	}
	return float64(d.busy) / float64(total)
}

// Failed reports whether the device is currently failed.
func (d *Device) Failed() bool { return d.failed }

// Submit hands a job to the device. On CPU nodes every job is time-shared
// regardless of the requested mode. The job's Done callback fires when it
// completes (or immediately, with Failed set, if the device is failed).
func (d *Device) Submit(j *Job) {
	j.Submitted = d.eng.Now()
	if j.Solo <= 0 {
		panic("device: job with non-positive Solo")
	}
	if d.failed {
		d.failJob(j)
		return
	}
	d.advance()
	if !d.spec.IsGPU() {
		j.Mode = Queued
	}
	if d.sink != nil {
		d.jobEvent(telemetry.Queued, j)
	}
	switch j.Mode {
	case Spatial:
		if d.hasRoom() {
			d.start(j)
		} else {
			d.pendingSpat = append(d.pendingSpat, j)
		}
	case Queued:
		d.lane = append(d.lane, j)
		d.admitLane()
	}
	d.reschedule()
}

// Fail marks the device failed: all running and waiting jobs complete
// immediately with Failed set, and subsequent submissions fail on arrival
// until Recover is called.
func (d *Device) Fail() {
	if d.failed {
		return
	}
	d.advance()
	d.failed = true
	jobs := append([]*Job{}, d.active...)
	jobs = append(jobs, d.lane...)
	jobs = append(jobs, d.pendingSpat...)
	d.active, d.lane, d.pendingSpat = nil, nil, nil
	d.laneRunning = nil
	for _, j := range jobs {
		j.finishEv.Cancel()
		j.finishEv = sim.Timer{}
		d.failJob(j)
	}
}

// Cancel withdraws a job from the device without invoking Done. The clone
// dispatcher calls it when a sibling copy of the same request set finished
// first: the job disappears from wherever it sits — executing in the spatial
// pool, running or waiting in the time-share lane, or waiting for a memory
// slot — its capacity is released, and successors are admitted exactly as if
// it had finished. Returns false when the job is not on this device (it
// already finished, failed, or was never submitted here).
func (d *Device) Cancel(j *Job) bool {
	d.advance()
	if j.running {
		for _, a := range d.active {
			if a != j {
				continue
			}
			j.finishEv.Cancel()
			j.finishEv = sim.Timer{}
			j.running = false
			d.removeActive(j)
			if d.laneRunning == j {
				d.laneRunning = nil
			}
			for len(d.pendingSpat) > 0 && d.hasRoom() {
				next := d.pendingSpat[0]
				copy(d.pendingSpat, d.pendingSpat[1:])
				d.pendingSpat = d.pendingSpat[:len(d.pendingSpat)-1]
				d.start(next)
			}
			d.admitLane()
			d.reschedule()
			return true
		}
		return false
	}
	for i, w := range d.lane {
		if w == j {
			d.lane = append(d.lane[:i], d.lane[i+1:]...)
			return true
		}
	}
	for i, w := range d.pendingSpat {
		if w == j {
			d.pendingSpat = append(d.pendingSpat[:i], d.pendingSpat[i+1:]...)
			return true
		}
	}
	return false
}

// Recover clears the failure state.
func (d *Device) Recover() {
	d.advance()
	d.failed = false
}

func (d *Device) failJob(j *Job) {
	j.Failed = true
	j.Finished = d.eng.Now()
	if j.Started == 0 && !j.running {
		j.Started = d.eng.Now()
	}
	if d.sink != nil {
		d.jobEvent(telemetry.ExecEnd, j)
	}
	if j.Done != nil {
		j.Done(j)
	}
}

func (d *Device) hasRoom() bool {
	return d.maxResident <= 0 || len(d.active) < d.maxResident
}

// admitLane starts the next lane job if the lane is free.
func (d *Device) admitLane() {
	if d.laneRunning != nil || len(d.lane) == 0 {
		return
	}
	if !d.hasRoom() {
		return
	}
	j := d.lane[0]
	copy(d.lane, d.lane[1:])
	d.lane = d.lane[:len(d.lane)-1]
	d.laneRunning = j
	d.start(j)
}

// start moves a job into the active set.
func (d *Device) start(j *Job) {
	j.Started = d.eng.Now()
	j.running = true
	j.remainingSec = j.Solo.Seconds()
	j.dev = d
	if j.finishFn == nil {
		// Bound once per Job lifetime: the closure captures only the job and
		// reads the device through it, so a pooled job restarted on another
		// device reuses the same closure.
		job := j
		job.finishFn = func() { job.dev.finish(job) }
	}
	d.active = append(d.active, j)
	if d.check != nil {
		d.check.DeviceStart(d.eng.Now(), d.nodeID, len(d.active), d.maxResident, d.failed, j.FBR)
	}
	if d.sink != nil {
		d.jobEvent(telemetry.ExecStart, j)
	}
}

// poolDemand sums the active pool's bandwidth and compute occupancy. The
// per-job rate depends on the pool only through these aggregates, so callers
// that recompute every active job's rate (advance, reschedule, SampleStats)
// compute them once instead of once per job.
func (d *Device) poolDemand() (bw, compute float64) {
	for _, a := range d.active {
		bw += a.FBR
		compute += a.Compute
	}
	return bw, compute
}

// rateWith returns the progress rate (solo-seconds per second) of job j
// given the precomputed pool aggregates: the binding bottleneck is either
// the aggregate compute occupancy (co-located saturating kernels split the
// device proportionally) or the bandwidth contention penalty, inflated by
// any host contention.
func (d *Device) rateWith(j *Job, bw, compute float64) float64 {
	slow := profile.Slowdown(bw, j.FBR)
	if compute > 1 && compute > slow {
		slow = compute
	}
	slow *= profile.ClientOverhead(len(d.active))
	return 1 / (slow * d.hostFactor)
}

// rate is the single-job convenience form of rateWith.
func (d *Device) rate(j *Job) float64 {
	bw, compute := d.poolDemand()
	return d.rateWith(j, bw, compute)
}

// advance applies progress to all active jobs up to the current instant.
func (d *Device) advance() {
	now := d.eng.Now()
	dt := (now - d.lastAdvance).Seconds()
	if dt <= 0 {
		d.lastAdvance = now
		return
	}
	if d.check != nil {
		d.check.DeviceAdvance(now, d.nodeID, len(d.active), d.failed)
	}
	if len(d.active) > 0 {
		d.busy += now - d.lastAdvance
	}
	bw, compute := d.poolDemand()
	for _, j := range d.active {
		done := dt * d.rateWith(j, bw, compute)
		j.remainingSec -= done
		if j.remainingSec < 0 {
			j.remainingSec = 0
		}
		d.workDone += time.Duration(done * float64(time.Second))
	}
	d.lastAdvance = now
}

// reschedule recomputes every active job's projected finish and re-arms the
// finish events. Called after any membership or rate change.
func (d *Device) reschedule() {
	bw, compute := d.poolDemand()
	for _, j := range d.active {
		j.finishEv.Cancel()
		r := d.rateWith(j, bw, compute)
		delay := time.Duration(j.remainingSec / r * float64(time.Second))
		j.finishEv = d.eng.Schedule(delay, j.finishFn)
	}
}

// finish completes a job, admits successors, and recomputes the pool.
func (d *Device) finish(j *Job) {
	d.advance()
	if d.check != nil {
		d.check.DeviceFinish(d.eng.Now(), d.nodeID, j.remainingSec, d.failed)
	}
	j.finishEv = sim.Timer{}
	j.running = false
	j.Finished = d.eng.Now()
	d.removeActive(j)
	if d.laneRunning == j {
		d.laneRunning = nil
	}
	d.jobsDone++

	// Admit pending spatial jobs freed by the memory slot, then the lane.
	for len(d.pendingSpat) > 0 && d.hasRoom() {
		next := d.pendingSpat[0]
		copy(d.pendingSpat, d.pendingSpat[1:])
		d.pendingSpat = d.pendingSpat[:len(d.pendingSpat)-1]
		d.start(next)
	}
	d.admitLane()
	d.reschedule()

	if d.sink != nil {
		d.jobEvent(telemetry.ExecEnd, j)
	}
	if j.Done != nil {
		j.Done(j)
	}
}

func (d *Device) removeActive(j *Job) {
	for i, a := range d.active {
		if a == j {
			d.active = append(d.active[:i], d.active[i+1:]...)
			return
		}
	}
}

// Stats is a read-only snapshot of the device for telemetry sampling.
type Stats struct {
	// ActiveJobs, LaneQueued and PendingSpatial count executing jobs and
	// the two waiting queues.
	ActiveJobs, LaneQueued, PendingSpatial int
	// ActiveDemand and ActiveCompute aggregate FBR and compute occupancy
	// over executing jobs.
	ActiveDemand, ActiveCompute float64
	// BacklogSolo and LaneBacklogSolo are the solo-equivalent work totals
	// (see BacklogSolo / LaneBacklogSolo).
	BacklogSolo, LaneBacklogSolo time.Duration
	// Failed mirrors the failure flag.
	Failed bool
}

// SampleStats computes Stats without mutating the device: unlike
// BacklogSolo and friends it does not fold progress into remainingSec, so
// sampling on any cadence leaves the simulation trajectory — including its
// floating-point rounding — bit-identical to an unsampled run.
func (d *Device) SampleStats() Stats {
	st := Stats{
		ActiveJobs:     len(d.active),
		LaneQueued:     len(d.lane),
		PendingSpatial: len(d.pendingSpat),
		Failed:         d.failed,
	}
	dt := (d.eng.Now() - d.lastAdvance).Seconds()
	if dt < 0 {
		dt = 0
	}
	bw, compute := d.poolDemand()
	remaining := func(j *Job) time.Duration {
		rem := j.remainingSec - dt*d.rateWith(j, bw, compute)
		if rem < 0 {
			rem = 0
		}
		return time.Duration(rem * float64(time.Second))
	}
	for _, j := range d.active {
		st.ActiveDemand += j.FBR
		st.ActiveCompute += j.Compute
		st.BacklogSolo += remaining(j)
	}
	if d.laneRunning != nil {
		st.LaneBacklogSolo += remaining(d.laneRunning)
	}
	for _, j := range d.lane {
		st.BacklogSolo += j.Solo
		st.LaneBacklogSolo += j.Solo
	}
	for _, j := range d.pendingSpat {
		st.BacklogSolo += j.Solo
	}
	return st
}

// WorkDone returns the cumulative solo-equivalent work completed, for
// conservation checks in tests.
func (d *Device) WorkDone() time.Duration {
	d.advance()
	return d.workDone
}

// BusyTime returns the cumulative non-idle time, for power and utilization
// accounting.
func (d *Device) BusyTime() time.Duration {
	d.advance()
	return d.busy
}

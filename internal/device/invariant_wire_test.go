package device

import (
	"testing"
	"time"

	"repro/internal/hardware"
	"repro/internal/invariant"
	"repro/internal/sim"
)

// White-box mutation tests for the invariant wiring: drive the real device
// into states the hooks must flag, proving the checker is live inside the
// layer — not just against scripted event sequences.

func checkedDevice(t *testing.T, maxResident int) (*sim.Engine, *Device, *invariant.Checker) {
	t.Helper()
	eng := sim.NewEngine()
	d := New(eng, hardware.MostPerformant(hardware.GPU), maxResident)
	chk := invariant.New()
	d.SetCheck(chk, 0)
	return eng, d, chk
}

func noopJob(solo time.Duration) *Job {
	return &Job{Batch: 1, Solo: solo, FBR: 0.2, Mode: Spatial, Done: func(*Job) {}}
}

// A normal submit/run/finish cycle through the wired device must be clean.
func TestDeviceCheckCleanCycle(t *testing.T) {
	eng, d, chk := checkedDevice(t, 4)
	for i := 0; i < 3; i++ {
		d.Submit(noopJob(50 * time.Millisecond))
	}
	eng.RunAll()
	if err := chk.Err(); err != nil {
		t.Fatalf("clean cycle tripped the wired checker:\n%v", err)
	}
	if d.JobsDone() != 3 {
		t.Fatalf("jobs done %d, want 3", d.JobsDone())
	}
}

// Mutation: bypass Submit's failure guard and force a job into the active
// set of a failed device. The DeviceStart hook must fire.
func TestDeviceCheckDetectsStartWhileFailed(t *testing.T) {
	_, d, chk := checkedDevice(t, 4)
	d.Fail()
	d.start(noopJob(50 * time.Millisecond)) // the guard skipped — the mutation
	if chk.Clean() {
		t.Fatal("start on a failed device not detected")
	}
	assertOnlyLaw(t, chk, invariant.LawCapacity)
}

// Mutation: force one job past the resident bound. The capacity law fires.
func TestDeviceCheckDetectsResidencyOverflow(t *testing.T) {
	_, d, chk := checkedDevice(t, 2)
	// Submit respects the bound; call start directly to overfill, as a buggy
	// admission path would.
	d.start(noopJob(time.Second))
	d.start(noopJob(time.Second))
	if !chk.Clean() {
		t.Fatalf("bound-respecting starts must be clean: %v", chk.Err())
	}
	d.start(noopJob(time.Second))
	if chk.Clean() {
		t.Fatal("third resident job beyond maxResident=2 not detected")
	}
	assertOnlyLaw(t, chk, invariant.LawCapacity)
}

// Mutation: make progress on a failed device by flipping the flag without
// Fail()'s job evacuation. The DeviceAdvance hook must fire.
func TestDeviceCheckDetectsProgressWhileFailed(t *testing.T) {
	eng, d, chk := checkedDevice(t, 4)
	d.Submit(noopJob(time.Second))
	d.failed = true // the mutation: failure without evacuating jobs
	eng.Run(100 * time.Millisecond)
	d.ActiveDemand() // forces advance()
	if chk.Clean() {
		t.Fatal("progress on a failed device not detected")
	}
	assertOnlyLaw(t, chk, invariant.LawCapacity)
}

// Mutation: finish a job early, with work remaining. DeviceFinish fires.
func TestDeviceCheckDetectsEarlyFinish(t *testing.T) {
	eng, d, chk := checkedDevice(t, 4)
	j := noopJob(time.Second)
	d.Submit(j)
	eng.Run(100 * time.Millisecond)
	d.finish(j) // the mutation: completion with ~0.9s of work left
	if chk.Clean() {
		t.Fatal("early finish with remaining work not detected")
	}
	assertOnlyLaw(t, chk, invariant.LawCapacity)
}

func assertOnlyLaw(t *testing.T, chk *invariant.Checker, law string) {
	t.Helper()
	for _, v := range chk.Violations() {
		if v.Law != law {
			t.Fatalf("expected only %s violations, got %v", law, v)
		}
	}
}

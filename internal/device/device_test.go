package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/hardware"
	"repro/internal/profile"
	"repro/internal/sim"
)

func gpuSpec() hardware.Spec {
	hw, ok := hardware.ByName("M60")
	if !ok {
		panic("M60 missing")
	}
	return hw
}

func cpuSpec() hardware.Spec {
	hw, ok := hardware.ByName("m4.xlarge")
	if !ok {
		panic("m4 missing")
	}
	return hw
}

func approxDur(t *testing.T, got, want time.Duration, tol time.Duration, msg string) {
	t.Helper()
	d := got - want
	if d < 0 {
		d = -d
	}
	if d > tol {
		t.Fatalf("%s: got %v, want %v (±%v)", msg, got, want, tol)
	}
}

func TestSingleJobRunsSolo(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	var done *Job
	d.Submit(&Job{Batch: 8, Solo: 100 * time.Millisecond, FBR: 0.9, Mode: Spatial,
		Done: func(j *Job) { done = j }})
	eng.RunAll()
	if done == nil {
		t.Fatal("job never completed")
	}
	approxDur(t, done.Finished, 100*time.Millisecond, time.Microsecond, "finish time")
	if done.QueueDelay() != 0 {
		t.Fatalf("queue delay = %v, want 0", done.QueueDelay())
	}
	if done.Interference() > time.Microsecond {
		t.Fatalf("interference = %v, want ~0", done.Interference())
	}
}

func TestHighFBRJobAloneIsNotPenalized(t *testing.T) {
	// Solo latency is the profiled ground truth even for FBR > 1 jobs
	// (language models on the M60).
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	var done *Job
	d.Submit(&Job{Batch: 8, Solo: 150 * time.Millisecond, FBR: 1.7, Mode: Spatial,
		Done: func(j *Job) { done = j }})
	eng.RunAll()
	approxDur(t, done.Finished, 150*time.Millisecond, time.Microsecond, "finish time")
}

func TestTwoSpatialJobsBelowSaturation(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	var finished []*Job
	mk := func() *Job {
		return &Job{Batch: 8, Solo: 100 * time.Millisecond, FBR: 0.4, Mode: Spatial,
			Done: func(j *Job) { finished = append(finished, j) }}
	}
	d.Submit(mk())
	d.Submit(mk())
	eng.RunAll()
	if len(finished) != 2 {
		t.Fatal("jobs missing")
	}
	// Below bandwidth saturation only the MPS client overhead applies.
	want := time.Duration(float64(100*time.Millisecond) * profile.ClientOverhead(2))
	for _, j := range finished {
		approxDur(t, j.Finished, want, time.Microsecond, "sub-saturation finish")
	}
}

func TestTwoSpatialJobsInterfere(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	var finished []*Job
	mk := func() *Job {
		return &Job{Batch: 8, Solo: 100 * time.Millisecond, FBR: 0.6, Mode: Spatial,
			Done: func(j *Job) { finished = append(finished, j) }}
	}
	d.Submit(mk())
	d.Submit(mk())
	eng.RunAll()
	// D = 1.2, slowdown = P(1.2)/P(0.6) x 2-client overhead.
	want := time.Duration(float64(100*time.Millisecond) *
		profile.Slowdown(1.2, 0.6) * profile.ClientOverhead(2))
	for _, j := range finished {
		approxDur(t, j.Finished, want, 50*time.Microsecond, "interfered finish")
		if j.Interference() < 25*time.Millisecond {
			t.Fatalf("interference = %v, want substantial", j.Interference())
		}
	}
}

func TestStaggeredSpatialJobsPiecewise(t *testing.T) {
	// A at t=0, B at t=50ms, both Solo=100ms FBR=0.8.
	// Phase 1 [0,50ms): A alone at rate 1 -> 50ms work left.
	// Phase 2: D=1.6, slowdown = P(1.6)/P(0.8) x 2-client overhead
	// (P(0.8)=1 below saturation). B then finishes 50ms after A.
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	var a, b *Job
	eng.Schedule(0, func() {
		d.Submit(&Job{Batch: 1, Solo: 100 * time.Millisecond, FBR: 0.8, Mode: Spatial,
			Done: func(j *Job) { a = j }})
	})
	eng.Schedule(50*time.Millisecond, func() {
		d.Submit(&Job{Batch: 1, Solo: 100 * time.Millisecond, FBR: 0.8, Mode: Spatial,
			Done: func(j *Job) { b = j }})
	})
	eng.RunAll()
	s := profile.Slowdown(1.6, 0.8) * profile.ClientOverhead(2)
	wantA := 50*time.Millisecond + time.Duration(50*s*float64(time.Millisecond))
	wantB := wantA + 50*time.Millisecond
	approxDur(t, a.Finished, wantA, 100*time.Microsecond, "A finish")
	approxDur(t, b.Finished, wantB, 100*time.Microsecond, "B finish")
}

func TestQueuedJobsSerialize(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	var finished []*Job
	for i := 0; i < 3; i++ {
		d.Submit(&Job{Batch: 8, Solo: 100 * time.Millisecond, FBR: 0.9, Mode: Queued,
			Done: func(j *Job) { finished = append(finished, j) }})
	}
	eng.RunAll()
	if len(finished) != 3 {
		t.Fatalf("finished %d jobs, want 3", len(finished))
	}
	for i, j := range finished {
		want := time.Duration(i+1) * 100 * time.Millisecond
		approxDur(t, j.Finished, want, 10*time.Microsecond, "serialized finish")
		wantQ := time.Duration(i) * 100 * time.Millisecond
		approxDur(t, j.QueueDelay(), wantQ, 10*time.Microsecond, "queue delay")
		if j.Interference() > time.Microsecond {
			t.Fatalf("queued job %d has interference %v", i, j.Interference())
		}
	}
}

func TestLaneConcurrentWithSpatialPool(t *testing.T) {
	// One spatial (FBR .5) + one queued (FBR .4): total demand .9 < 1, both
	// run at solo speed concurrently.
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	var sp, q *Job
	d.Submit(&Job{Batch: 1, Solo: 100 * time.Millisecond, FBR: 0.5, Mode: Spatial,
		Done: func(j *Job) { sp = j }})
	d.Submit(&Job{Batch: 1, Solo: 100 * time.Millisecond, FBR: 0.4, Mode: Queued,
		Done: func(j *Job) { q = j }})
	eng.RunAll()
	want := time.Duration(float64(100*time.Millisecond) * profile.ClientOverhead(2))
	approxDur(t, sp.Finished, want, time.Microsecond, "spatial finish")
	approxDur(t, q.Finished, want, time.Microsecond, "queued finish")
}

func TestCPUCoercesToQueued(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, cpuSpec(), 0)
	var finished []*Job
	for i := 0; i < 2; i++ {
		d.Submit(&Job{Batch: 8, Solo: 100 * time.Millisecond, FBR: 0, Mode: Spatial,
			Done: func(j *Job) { finished = append(finished, j) }})
	}
	eng.RunAll()
	approxDur(t, finished[0].Finished, 100*time.Millisecond, time.Microsecond, "cpu first")
	approxDur(t, finished[1].Finished, 200*time.Millisecond, time.Microsecond, "cpu second serialized")
}

func TestMemoryCapDefersSpatialJobs(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 2)
	var finished []*Job
	for i := 0; i < 3; i++ {
		d.Submit(&Job{Batch: 1, Solo: 100 * time.Millisecond, FBR: 0.3, Mode: Spatial,
			Done: func(j *Job) { finished = append(finished, j) }})
	}
	if d.ActiveCount() != 2 {
		t.Fatalf("active = %d, want 2 (cap)", d.ActiveCount())
	}
	eng.RunAll()
	if len(finished) != 3 {
		t.Fatal("job lost under memory cap")
	}
	// First two run co-located (client overhead), the third starts when a
	// slot frees and finishes alongside-ish the co-location tail.
	pair := time.Duration(float64(100*time.Millisecond) * profile.ClientOverhead(2))
	third := finished[2]
	if third.QueueDelay() < pair-time.Millisecond {
		t.Fatalf("deferred job queue delay = %v, want ~%v", third.QueueDelay(), pair)
	}
	if third.Finished < pair+90*time.Millisecond {
		t.Fatalf("deferred job finished at %v, too early", third.Finished)
	}
}

func TestHostFactorSlowsExecution(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	d.SetHostFactor(2)
	var done *Job
	d.Submit(&Job{Batch: 1, Solo: 100 * time.Millisecond, FBR: 0.5, Mode: Spatial,
		Done: func(j *Job) { done = j }})
	eng.RunAll()
	approxDur(t, done.Finished, 200*time.Millisecond, 10*time.Microsecond, "host-contended finish")
}

func TestFailureFailsInFlightAndWaiting(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	var results []*Job
	collect := func(j *Job) { results = append(results, j) }
	d.Submit(&Job{Batch: 1, Solo: time.Second, FBR: 0.5, Mode: Spatial, Done: collect})
	d.Submit(&Job{Batch: 1, Solo: time.Second, FBR: 0.5, Mode: Queued, Done: collect})
	d.Submit(&Job{Batch: 1, Solo: time.Second, FBR: 0.5, Mode: Queued, Done: collect})
	eng.Schedule(100*time.Millisecond, func() { d.Fail() })
	eng.RunAll()
	if len(results) != 3 {
		t.Fatalf("got %d completions, want 3 failures", len(results))
	}
	for _, j := range results {
		if !j.Failed {
			t.Fatal("job completed normally on a failed node")
		}
	}
	// Submissions while failed fail immediately.
	var late *Job
	d.Submit(&Job{Batch: 1, Solo: time.Second, FBR: 0.5, Done: func(j *Job) { late = j }})
	if late == nil || !late.Failed {
		t.Fatal("submission to failed device did not fail synchronously")
	}
	// After recovery the device serves again.
	d.Recover()
	var ok *Job
	d.Submit(&Job{Batch: 1, Solo: 50 * time.Millisecond, FBR: 0.5, Mode: Spatial,
		Done: func(j *Job) { ok = j }})
	eng.RunAll()
	if ok == nil || ok.Failed {
		t.Fatal("device did not recover")
	}
}

func TestUtilization(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	d.Submit(&Job{Batch: 1, Solo: 100 * time.Millisecond, FBR: 0.5, Mode: Spatial, Done: func(*Job) {}})
	eng.Run(400 * time.Millisecond)
	got := d.Utilization()
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("utilization = %.3f, want 0.25", got)
	}
}

func TestBacklogSolo(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	for i := 0; i < 3; i++ {
		d.Submit(&Job{Batch: 1, Solo: 100 * time.Millisecond, FBR: 0.2, Mode: Queued, Done: func(*Job) {}})
	}
	got := d.BacklogSolo()
	approxDur(t, got, 300*time.Millisecond, time.Microsecond, "backlog")
	eng.RunAll()
	if d.BacklogSolo() != 0 {
		t.Fatalf("backlog after drain = %v", d.BacklogSolo())
	}
}

// Property: work is conserved — total solo-equivalent work completed equals
// the sum of submitted solo times, for arbitrary job mixes.
func TestWorkConservationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		r := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		d := New(eng, gpuSpec(), 0)
		var want time.Duration
		completions := 0
		for i := 0; i < n; i++ {
			solo := time.Duration(10+r.Intn(150)) * time.Millisecond
			want += solo
			mode := Spatial
			if r.Intn(2) == 0 {
				mode = Queued
			}
			j := &Job{
				Batch: 1 + r.Intn(64),
				Solo:  solo,
				FBR:   0.1 + r.Float64()*1.5,
				Mode:  mode,
				Done:  func(*Job) { completions++ },
			}
			at := time.Duration(r.Intn(500)) * time.Millisecond
			eng.Schedule(at, func() { d.Submit(j) })
		}
		eng.RunAll()
		if completions != n {
			return false
		}
		diff := (d.WorkDone() - want).Seconds()
		return math.Abs(diff) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a job's finish time is never before submission + solo time
// (nothing runs faster than its profiled solo latency).
func TestNoSuperSoloSpeedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		d := New(eng, gpuSpec(), 0)
		ok := true
		for i := 0; i < 10; i++ {
			solo := time.Duration(20+r.Intn(100)) * time.Millisecond
			j := &Job{Batch: 1, Solo: solo, FBR: r.Float64(), Mode: Spatial}
			j.Done = func(j *Job) {
				if j.Finished-j.Submitted < solo-time.Microsecond {
					ok = false
				}
			}
			eng.Schedule(time.Duration(r.Intn(200))*time.Millisecond, func() { d.Submit(j) })
		}
		eng.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMoreColocationMoreInterference(t *testing.T) {
	// Interference must grow monotonically with co-location degree — the
	// mechanism behind the MPS-only schemes' tail latency.
	avgInterference := func(n int) time.Duration {
		eng := sim.NewEngine()
		d := New(eng, gpuSpec(), 0)
		var total time.Duration
		for i := 0; i < n; i++ {
			d.Submit(&Job{Batch: 1, Solo: 100 * time.Millisecond, FBR: 0.5, Mode: Spatial,
				Done: func(j *Job) { total += j.Interference() }})
		}
		eng.RunAll()
		return total / time.Duration(n)
	}
	i2, i4, i8 := avgInterference(2), avgInterference(4), avgInterference(8)
	if !(i2 < i4 && i4 < i8) {
		t.Fatalf("interference not monotone: n=2:%v n=4:%v n=8:%v", i2, i4, i8)
	}
	if i8 < 100*time.Millisecond {
		t.Fatalf("8-way co-location interference %v suspiciously low", i8)
	}
}

func TestModeString(t *testing.T) {
	if Spatial.String() != "spatial" || Queued.String() != "queued" {
		t.Fatal("Mode.String broken")
	}
}

func TestLaneBacklogSolo(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	for i := 0; i < 3; i++ {
		d.Submit(&Job{Batch: 1, Solo: 100 * time.Millisecond, FBR: 0.2, Mode: Queued, Done: func(*Job) {}})
	}
	// One running (100ms left) + two waiting (200ms) = 300ms.
	approxDur(t, d.LaneBacklogSolo(), 300*time.Millisecond, time.Microsecond, "lane backlog")
	eng.Run(50 * time.Millisecond)
	approxDur(t, d.LaneBacklogSolo(), 250*time.Millisecond, time.Microsecond, "lane backlog mid-run")
	eng.RunAll()
	if d.LaneBacklogSolo() != 0 {
		t.Fatalf("lane backlog after drain = %v", d.LaneBacklogSolo())
	}
}

func TestActiveCompute(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	d.Submit(&Job{Batch: 1, Solo: time.Second, FBR: 0.1, Compute: 0.3, Mode: Spatial, Done: func(*Job) {}})
	d.Submit(&Job{Batch: 1, Solo: time.Second, FBR: 0.1, Compute: 0.5, Mode: Spatial, Done: func(*Job) {}})
	if got := d.ActiveCompute(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("ActiveCompute = %v, want 0.8", got)
	}
}

func TestComputeContentionBindsWhenSaturated(t *testing.T) {
	// Two jobs each occupying 0.9 of the device's compute: C = 1.8 binds
	// (bandwidth is low), so both finish at Solo * 1.8 * clientOverhead(2).
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	var finished []*Job
	mk := func() *Job {
		return &Job{Batch: 64, Solo: 100 * time.Millisecond, FBR: 0.1, Compute: 0.9,
			Mode: Spatial, Done: func(j *Job) { finished = append(finished, j) }}
	}
	d.Submit(mk())
	d.Submit(mk())
	eng.RunAll()
	want := time.Duration(float64(100*time.Millisecond) * 1.8 * profile.ClientOverhead(2))
	for _, j := range finished {
		approxDur(t, j.Finished, want, 50*time.Microsecond, "compute-bound finish")
	}
}

func TestFailDuringLaneWait(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	results := 0
	for i := 0; i < 4; i++ {
		d.Submit(&Job{Batch: 1, Solo: time.Second, FBR: 0.2, Mode: Queued,
			Done: func(j *Job) {
				if !j.Failed {
					panic("job survived a failure")
				}
				results++
			}})
	}
	d.Fail()
	if results != 4 {
		t.Fatalf("failed callbacks = %d, want 4 (running + lane-waiting)", results)
	}
}

func TestAccessors(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, gpuSpec(), 0)
	if d.Spec().Accel != "M60" {
		t.Fatal("Spec accessor broken")
	}
	if d.Failed() {
		t.Fatal("fresh device reports failed")
	}
	d.Submit(&Job{Batch: 1, Solo: 100 * time.Millisecond, FBR: 0.4, Mode: Spatial, Done: func(*Job) {}})
	d.Submit(&Job{Batch: 1, Solo: 100 * time.Millisecond, FBR: 0.3, Mode: Queued, Done: func(*Job) {}})
	d.Submit(&Job{Batch: 1, Solo: 100 * time.Millisecond, FBR: 0.3, Mode: Queued, Done: func(*Job) {}})
	if got := d.ActiveDemand(); math.Abs(got-0.7) > 1e-12 { // spatial + running lane job
		t.Fatalf("ActiveDemand = %v, want 0.7", got)
	}
	if d.LaneLength() != 1 {
		t.Fatalf("LaneLength = %d, want 1 waiting", d.LaneLength())
	}
	eng.RunAll()
	if d.JobsDone() != 3 {
		t.Fatalf("JobsDone = %d, want 3", d.JobsDone())
	}
	if d.BusyTime() <= 0 {
		t.Fatal("BusyTime not accumulated")
	}
	d.Fail()
	if !d.Failed() {
		t.Fatal("Failed() false after Fail()")
	}
}

// Package batch implements request batching (Section IV-B): requests are
// accumulated per model and dispatched as batches for throughput, with
// flexible (non-uniform) batch sizes so the hybrid time/spatial scheduler
// can queue or co-locate exactly the number of requests it wants — something
// uniform batching would hinder.
package batch

import "time"

// Request is one inference request flowing through the framework.
type Request struct {
	// ID is unique within a run.
	ID uint64
	// Arrival is the request's arrival instant at the gateway.
	Arrival time.Duration
}

// Batcher accumulates pending requests for one model. Internally it is a
// head-indexed queue: takes advance head instead of shifting the slice, and
// the dead prefix is reclaimed lazily (fully-drained reset, or an amortized
// copy-down once it dominates the backing array), so steady-state
// enqueue/dequeue churn costs no per-request allocation.
type Batcher struct {
	pending []Request
	head    int
	nextID  uint64
	total   uint64
}

// Add enqueues a request arriving at the given instant and returns it.
func (b *Batcher) Add(arrival time.Duration) Request {
	r := Request{ID: b.nextID, Arrival: arrival}
	b.nextID++
	b.total++
	if b.head == len(b.pending) {
		// Fully drained: rewind to reuse the whole backing array.
		b.pending = b.pending[:0]
		b.head = 0
	} else if b.head > 64 && 2*b.head >= len(b.pending) {
		// Dead prefix dominates: compact live requests to the front. The
		// copy is O(live) and head has grown by at least as much since the
		// last compaction, so the cost amortizes to O(1) per take.
		n := copy(b.pending, b.pending[b.head:])
		b.pending = b.pending[:n]
		b.head = 0
	}
	b.pending = append(b.pending, r)
	return r
}

// Pending returns the number of requests waiting for dispatch.
func (b *Batcher) Pending() int { return len(b.pending) - b.head }

// Total returns the number of requests ever enqueued.
func (b *Batcher) Total() uint64 { return b.total }

// OldestArrival returns the arrival time of the oldest pending request; the
// boolean is false when nothing is pending.
func (b *Batcher) OldestArrival() (time.Duration, bool) {
	if b.head == len(b.pending) {
		return 0, false
	}
	return b.pending[b.head].Arrival, true
}

// TakeAll removes and returns every pending request in arrival order. The
// returned slice is owned by the caller; the batcher starts a fresh backing
// array. (Dispatch hot paths use TakeInto instead, which allocates nothing.)
func (b *Batcher) TakeAll() []Request {
	out := b.pending[b.head:]
	b.pending = nil
	b.head = 0
	return out
}

// TakeUpTo removes and returns up to n of the oldest pending requests in a
// freshly allocated slice. (Dispatch hot paths use TakeInto instead.)
func (b *Batcher) TakeUpTo(n int) []Request {
	if n <= 0 {
		return nil
	}
	if p := b.Pending(); n > p {
		n = p
	}
	out := make([]Request, n)
	copy(out, b.pending[b.head:b.head+n])
	b.head += n
	return out
}

// TakeInto appends up to n of the oldest pending requests to dst and returns
// it. The requests are removed from the batcher in arrival order, identically
// to TakeUpTo; dst is typically a per-dispatch scratch slice reused across
// calls, so steady-state takes allocate nothing.
func (b *Batcher) TakeInto(dst []Request, n int) []Request {
	if n <= 0 {
		return dst
	}
	if p := b.Pending(); n > p {
		n = p
	}
	dst = append(dst, b.pending[b.head:b.head+n]...)
	b.head += n
	return dst
}

// Split partitions requests into batches of at most batchSize, sized as
// evenly as possible (flexible batch sizes). It returns nil for no requests.
func Split(reqs []Request, batchSize int) [][]Request {
	if len(reqs) == 0 {
		return nil
	}
	if batchSize < 1 {
		batchSize = 1
	}
	k := (len(reqs) + batchSize - 1) / batchSize
	base := len(reqs) / k
	rem := len(reqs) % k
	out := make([][]Request, 0, k)
	i := 0
	for j := 0; j < k; j++ {
		size := base
		if j < rem {
			size++
		}
		out = append(out, reqs[i:i+size])
		i += size
	}
	return out
}

// SplitSizes writes the per-batch sizes of Split(reqs of length n, batchSize)
// into sizes (reused across calls) and returns it: k = ceil(n/batchSize)
// batches, as even as possible, larger ones first. Dispatch paths use it to
// take each batch directly out of a Batcher via TakeInto without
// materializing the intermediate slice-of-slices.
func SplitSizes(sizes []int, n, batchSize int) []int {
	sizes = sizes[:0]
	if n == 0 {
		return sizes
	}
	if batchSize < 1 {
		batchSize = 1
	}
	k := (n + batchSize - 1) / batchSize
	base := n / k
	rem := n % k
	for j := 0; j < k; j++ {
		size := base
		if j < rem {
			size++
		}
		sizes = append(sizes, size)
	}
	return sizes
}

// Package batch implements request batching (Section IV-B): requests are
// accumulated per model and dispatched as batches for throughput, with
// flexible (non-uniform) batch sizes so the hybrid time/spatial scheduler
// can queue or co-locate exactly the number of requests it wants — something
// uniform batching would hinder.
package batch

import "time"

// Request is one inference request flowing through the framework.
type Request struct {
	// ID is unique within a run.
	ID uint64
	// Arrival is the request's arrival instant at the gateway.
	Arrival time.Duration
}

// Batcher accumulates pending requests for one model.
type Batcher struct {
	pending []Request
	nextID  uint64
	total   uint64
}

// Add enqueues a request arriving at the given instant and returns it.
func (b *Batcher) Add(arrival time.Duration) Request {
	r := Request{ID: b.nextID, Arrival: arrival}
	b.nextID++
	b.total++
	b.pending = append(b.pending, r)
	return r
}

// Pending returns the number of requests waiting for dispatch.
func (b *Batcher) Pending() int { return len(b.pending) }

// Total returns the number of requests ever enqueued.
func (b *Batcher) Total() uint64 { return b.total }

// OldestArrival returns the arrival time of the oldest pending request; the
// boolean is false when nothing is pending.
func (b *Batcher) OldestArrival() (time.Duration, bool) {
	if len(b.pending) == 0 {
		return 0, false
	}
	return b.pending[0].Arrival, true
}

// TakeAll removes and returns every pending request in arrival order.
func (b *Batcher) TakeAll() []Request {
	out := b.pending
	b.pending = nil
	return out
}

// TakeUpTo removes and returns up to n of the oldest pending requests.
func (b *Batcher) TakeUpTo(n int) []Request {
	if n <= 0 {
		return nil
	}
	if n > len(b.pending) {
		n = len(b.pending)
	}
	out := make([]Request, n)
	copy(out, b.pending[:n])
	rest := b.pending[n:]
	b.pending = append(b.pending[:0], rest...)
	return out
}

// Split partitions requests into batches of at most batchSize, sized as
// evenly as possible (flexible batch sizes). It returns nil for no requests.
func Split(reqs []Request, batchSize int) [][]Request {
	if len(reqs) == 0 {
		return nil
	}
	if batchSize < 1 {
		batchSize = 1
	}
	k := (len(reqs) + batchSize - 1) / batchSize
	base := len(reqs) / k
	rem := len(reqs) % k
	out := make([][]Request, 0, k)
	i := 0
	for j := 0; j < k; j++ {
		size := base
		if j < rem {
			size++
		}
		out = append(out, reqs[i:i+size])
		i += size
	}
	return out
}

package batch

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAddTakeAll(t *testing.T) {
	var b Batcher
	for i := 0; i < 5; i++ {
		b.Add(time.Duration(i) * time.Millisecond)
	}
	if b.Pending() != 5 || b.Total() != 5 {
		t.Fatalf("pending=%d total=%d", b.Pending(), b.Total())
	}
	reqs := b.TakeAll()
	if len(reqs) != 5 || b.Pending() != 0 {
		t.Fatal("TakeAll did not drain")
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			t.Fatal("not in arrival order")
		}
		if reqs[i].ID == reqs[i-1].ID {
			t.Fatal("duplicate IDs")
		}
	}
}

func TestOldestArrival(t *testing.T) {
	var b Batcher
	if _, ok := b.OldestArrival(); ok {
		t.Fatal("empty batcher reported an oldest arrival")
	}
	b.Add(7 * time.Millisecond)
	b.Add(9 * time.Millisecond)
	got, ok := b.OldestArrival()
	if !ok || got != 7*time.Millisecond {
		t.Fatalf("oldest = %v/%v", got, ok)
	}
}

func TestTakeUpTo(t *testing.T) {
	var b Batcher
	for i := 0; i < 10; i++ {
		b.Add(time.Duration(i) * time.Millisecond)
	}
	first := b.TakeUpTo(3)
	if len(first) != 3 || first[0].Arrival != 0 {
		t.Fatalf("TakeUpTo(3) = %v", first)
	}
	if b.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", b.Pending())
	}
	rest := b.TakeUpTo(100)
	if len(rest) != 7 || rest[0].Arrival != 3*time.Millisecond {
		t.Fatal("remaining requests wrong")
	}
	if got := b.TakeUpTo(0); got != nil {
		t.Fatal("TakeUpTo(0) should be nil")
	}
}

func TestSplitEven(t *testing.T) {
	var b Batcher
	for i := 0; i < 100; i++ {
		b.Add(0)
	}
	batches := Split(b.TakeAll(), 64)
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2", len(batches))
	}
	if len(batches[0]) != 50 || len(batches[1]) != 50 {
		t.Fatalf("batch sizes %d/%d, want 50/50 (flexible even split)",
			len(batches[0]), len(batches[1]))
	}
}

func TestSplitEdgeCases(t *testing.T) {
	if Split(nil, 64) != nil {
		t.Fatal("Split(nil) should be nil")
	}
	var b Batcher
	b.Add(0)
	one := Split(b.TakeAll(), 0) // degenerate batch size
	if len(one) != 1 || len(one[0]) != 1 {
		t.Fatal("degenerate batch size mishandled")
	}
}

// Property: Split conserves requests, respects the size cap, and sizes
// differ by at most one.
func TestSplitProperty(t *testing.T) {
	f := func(nRaw, bsRaw uint16) bool {
		n, bs := int(nRaw%3000), int(bsRaw%128)+1
		var b Batcher
		for i := 0; i < n; i++ {
			b.Add(time.Duration(i))
		}
		batches := Split(b.TakeAll(), bs)
		total, minSz, maxSz := 0, 1<<30, 0
		for _, batch := range batches {
			total += len(batch)
			if len(batch) > bs || len(batch) == 0 {
				return false
			}
			if len(batch) < minSz {
				minSz = len(batch)
			}
			if len(batch) > maxSz {
				maxSz = len(batch)
			}
		}
		if total != n {
			return false
		}
		return n == 0 || maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

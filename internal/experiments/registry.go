package experiments

import "sort"

// Runner regenerates one experiment.
type Runner func(Options) *Table

// Registry maps experiment IDs to their runners, in the paper's order via
// Order().
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig1":       Fig1,
		"table2":     func(Options) *Table { return Table2() },
		"fig3":       Fig3,
		"fig4":       Fig4,
		"fig5":       Fig5,
		"fig6":       Fig6,
		"fig7":       Fig7,
		"fig8":       Fig8,
		"fig9":       Fig9,
		"fig10":      Fig10,
		"fig11":      Fig11,
		"fig12":      Fig12,
		"fig13":      Fig13,
		"table3":     Table3,
		"coldstarts": ColdStarts,
		"cpugpu":     func(Options) *Table { return CPUvsGPUCost() },

		// Ablations beyond the paper: isolating the design choices.
		"ablation-prediction": AblationPrediction,
		"ablation-hybrid":     AblationHybrid,
		"ablation-waitlimit":  AblationWaitLimit,
		"ablation-keepalive":  AblationKeepAlive,
		"ablation-window":     AblationDispatchWindow,
		"modelerror":          ModelError,
		"multitenant":         MultiTenant,
		"scaleout":            ScaleOut,
		"ablation-batching":   AblationBatching,
		"ablation-slo":        AblationSLO,
		"forecast-frontier":   ForecastFrontier,
		"cloning-frontier":    CloningFrontier,
	}
}

// Order returns the experiment IDs in the paper's presentation order.
func Order() []string {
	return []string{
		"fig1", "table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "table3", "coldstarts",
		"cpugpu",
		"modelerror", "multitenant", "scaleout",
		"ablation-prediction", "ablation-hybrid",
		"ablation-waitlimit", "ablation-keepalive", "ablation-window",
		"ablation-batching", "ablation-slo", "forecast-frontier",
		"cloning-frontier",
	}
}

// IDs returns all experiment IDs, sorted (for flag validation messages).
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// All runs every experiment in order.
func All(o Options) []*Table {
	var out []*Table
	reg := Registry()
	for _, id := range Order() {
		out = append(out, reg[id](o))
	}
	return out
}

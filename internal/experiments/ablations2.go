package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// AblationBatching measures the paper's flexible-batching claim (§IV-B):
// the hybrid scheduler needs batch sizes that follow the split, "something
// which uniform batching would hinder". Uniform batching waits for full
// preferred-size batches (flushing once the oldest request has burned a
// quarter of the SLO).
func AblationBatching(o Options) *Table {
	o = o.normalize()
	t := &Table{
		ID:      "ablation-batching",
		Title:   "Ablation: flexible vs uniform batching (Paldia, Azure trace)",
		Columns: []string{"model", "SLO", "batching", "SLO compliance", "P50", "P99"},
	}
	for _, name := range []string{"ResNet 50", "VGG 19"} {
		m := model.MustByName(name)
		for _, slo := range []time.Duration{200 * time.Millisecond, 120 * time.Millisecond} {
			for _, c := range []struct {
				label   string
				uniform bool
			}{
				{"flexible (paper)", false},
				{"uniform (full batches)", true},
			} {
				mut := func(cfg *core.Config) {
					cfg.UniformBatching = c.uniform
					cfg.SLO = slo
				}
				a := runRepeated(o, m, azureGen(o, m), core.NewPaldia(), mut)
				p50 := time.Duration(0)
				if len(a.Results) > 0 {
					p50 = a.Results[0].P50
				}
				t.Rows = append(t.Rows, []string{
					m.Name, slo.String(), c.label, pct(a.Compliance), msec(p50), msec(a.P99),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"uniform batching spends up to SLO/4 of every request's budget waiting for the batch "+
			"to fill; at the paper's 200 ms target that slack exists, at tighter targets it does not")
	return t
}

// AblationSLO sweeps the latency target: the paper fixes 200 ms everywhere;
// this shows where each scheme's compliance collapses as the target
// tightens.
func AblationSLO(o Options) *Table {
	o = o.normalize()
	m := model.MustByName("ResNet 50")
	t := &Table{
		ID:      "ablation-slo",
		Title:   "Ablation: SLO sensitivity (ResNet 50, Azure trace)",
		Columns: []string{"SLO", "Paldia", "Molecule (beta) ($)", "INFless/Llama (P)"},
	}
	schemes := []core.Scheme{
		core.NewPaldia(), core.NewMoleculeCost(), core.NewINFlessLlamaPerf(),
	}
	for _, slo := range []time.Duration{100 * time.Millisecond, 150 * time.Millisecond,
		200 * time.Millisecond, 300 * time.Millisecond} {
		row := []string{fmt.Sprint(slo)}
		for _, s := range schemes {
			mut := func(cfg *core.Config) { cfg.SLO = slo }
			a := runRepeated(o, m, azureGen(o, m), s, mut)
			row = append(row, pct(a.Compliance))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "the paper evaluates at 200 ms; tighter targets squeeze "+
		"the slack the hybrid trades in")
	return t
}

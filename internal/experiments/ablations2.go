package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// AblationBatching measures the paper's flexible-batching claim (§IV-B):
// the hybrid scheduler needs batch sizes that follow the split, "something
// which uniform batching would hinder". Uniform batching waits for full
// preferred-size batches (flushing once the oldest request has burned a
// quarter of the SLO).
func AblationBatching(o Options) *Table {
	o = o.normalize()
	t := &Table{
		ID:      "ablation-batching",
		Title:   "Ablation: flexible vs uniform batching (Paldia, Azure trace)",
		Columns: []string{"model", "SLO", "batching", "SLO compliance", "P50", "P99"},
	}
	type variant struct {
		m     model.Spec
		slo   time.Duration
		label string
	}
	var cells []cell
	var variants []variant
	for _, name := range []string{"ResNet 50", "VGG 19"} {
		m := model.MustByName(name)
		for _, slo := range []time.Duration{200 * time.Millisecond, 120 * time.Millisecond} {
			for _, c := range []struct {
				label   string
				uniform bool
			}{
				{"flexible (paper)", false},
				{"uniform (full batches)", true},
			} {
				slo, uniform := slo, c.uniform
				mut := func(cfg *core.Config) {
					cfg.UniformBatching = uniform
					cfg.SLO = slo
				}
				cells = append(cells, cell{m: m, gen: azureGen(o, m), scheme: core.NewPaldia(), mut: mut})
				variants = append(variants, variant{m: m, slo: slo, label: c.label})
			}
		}
	}
	for i, a := range runCells(o, cells) {
		v := variants[i]
		p50 := time.Duration(0)
		if len(a.Results) > 0 {
			p50 = a.Results[0].P50
		}
		t.Rows = append(t.Rows, []string{
			v.m.Name, v.slo.String(), v.label, pct(a.Compliance), msec(p50), msec(a.P99),
		})
	}
	t.Notes = append(t.Notes,
		"uniform batching spends up to SLO/4 of every request's budget waiting for the batch "+
			"to fill; at the paper's 200 ms target that slack exists, at tighter targets it does not")
	return t
}

// AblationSLO sweeps the latency target: the paper fixes 200 ms everywhere;
// this shows where each scheme's compliance collapses as the target
// tightens.
func AblationSLO(o Options) *Table {
	o = o.normalize()
	m := model.MustByName("ResNet 50")
	t := &Table{
		ID:      "ablation-slo",
		Title:   "Ablation: SLO sensitivity (ResNet 50, Azure trace)",
		Columns: []string{"SLO", "Paldia", "Molecule (beta) ($)", "INFless/Llama (P)"},
	}
	schemes := []core.Scheme{
		core.NewPaldia(), core.NewMoleculeCost(), core.NewINFlessLlamaPerf(),
	}
	slos := []time.Duration{100 * time.Millisecond, 150 * time.Millisecond,
		200 * time.Millisecond, 300 * time.Millisecond}
	var cells []cell
	for _, slo := range slos {
		slo := slo
		mut := func(cfg *core.Config) { cfg.SLO = slo }
		for _, s := range schemes {
			cells = append(cells, cell{m: m, gen: azureGen(o, m), scheme: s, mut: mut})
		}
	}
	aggs := runCells(o, cells)
	for si, slo := range slos {
		row := []string{fmt.Sprint(slo)}
		for i := range schemes {
			row = append(row, pct(aggs[si*len(schemes)+i].Compliance))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "the paper evaluates at 200 ms; tighter targets squeeze "+
		"the slack the hybrid trades in")
	return t
}

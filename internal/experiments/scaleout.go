package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ScaleOut goes beyond the paper: a Poisson flood at 1.8x the most
// performant GPU's capacity — a rate the paper's single-serving-node designs
// cannot survive at all — served with horizontal scale-out enabled
// (Config.MaxNodes). The paper's own framing (§II: "multiple CPU nodes to
// achieve the same throughput") motivates the extension.
func ScaleOut(o Options) *Table {
	o = o.normalize()
	m := model.MustByName("GoogleNet")
	v100 := hardware.MostPerformant(hardware.GPU)
	rate := 1.8 * profile.ThroughputRPS(m, v100)
	gen := func(rng *sim.RNG) *trace.Trace {
		return trace.Poisson(rng, rate, o.dur(10*time.Minute))
	}

	t := &Table{
		ID:    "scaleout",
		Title: "Horizontal scale-out beyond the paper: GoogleNet at 1.8x V100 capacity",
		Columns: []string{"configuration", "SLO compliance", "P99", "cost",
			"V100-seconds held"},
	}
	configs := []struct {
		name     string
		maxNodes int
	}{
		{"Paldia, single node (paper design)", 1},
		{"Paldia, scale-out (MaxNodes=4)", 4},
	}
	var cells []cell
	for _, c := range configs {
		maxNodes := c.maxNodes
		mut := func(cfg *core.Config) {
			cfg.MaxNodes = maxNodes
			cfg.InitialHardware = &v100
		}
		cells = append(cells, cell{m: m, gen: gen, scheme: core.NewPaldiaPinned(v100), mut: mut})
	}
	for i, a := range runCells(o, cells) {
		c := configs[i]
		var held time.Duration
		for _, res := range a.Results {
			held += res.HeldBySpec[v100.Name]
		}
		held /= time.Duration(len(a.Results))
		t.Rows = append(t.Rows, []string{
			c.name, pct(a.Compliance), msec(a.P99), dollars(a.Cost),
			fmt.Sprintf("%.0f", held.Seconds()),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"arrival %.0f rps vs a single V100's ~%.0f rps serial capacity; replicas are procured "+
			"when the forecast exceeds one node's sustainable rate and retired with hysteresis",
		rate, profile.ThroughputRPS(m, v100)))
	return t
}

package experiments

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/invariant"
)

// checkedOptions wires a fresh invariant checker into every simulation an
// experiment executes (a checker watches exactly one run), collecting
// violations and run counts under a mutex — runs execute on the worker pool.
type checkedOptions struct {
	mu     sync.Mutex
	errs   []string
	single int
	multi  int
}

func (c *checkedOptions) options(o Options) Options {
	o.Run = func(cfg core.Config) core.Result {
		chk := invariant.New()
		cfg.Invariants = chk
		res := core.Run(cfg)
		c.record(chk, fmt.Sprintf("%s/%s", cfg.Model.Name, cfg.Scheme.Name()), false)
		return res
	}
	o.RunMulti = func(cfg core.MultiConfig) core.MultiResult {
		chk := invariant.New()
		cfg.Invariants = chk
		res := core.RunMulti(cfg)
		c.record(chk, cfg.Scheme.Name(), true)
		return res
	}
	return o
}

func (c *checkedOptions) record(chk *invariant.Checker, label string, multi bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if multi {
		c.multi++
	} else {
		c.single++
	}
	if err := chk.Err(); err != nil {
		c.errs = append(c.errs, fmt.Sprintf("%s: %v", label, err))
	}
}

// TestAllExperimentsCleanUnderInvariants runs the entire registered
// experiment grid with the full invariant checker attached to every
// simulation: every figure, table and ablation must hold every law. This is
// the suite's broadest correctness sweep — it covers failure injection
// (fig13), multi-tenancy, scale-out, exhaustion, pinned hardware and every
// scheme, at miniature scale.
func TestAllExperimentsCleanUnderInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid sweep skipped in -short mode")
	}
	var c checkedOptions
	o := c.options(tiny())
	reg := Registry()
	for _, id := range Order() {
		id := id
		t.Run(id, func(t *testing.T) {
			before := len(c.errs)
			reg[id](o)
			c.mu.Lock()
			defer c.mu.Unlock()
			for _, e := range c.errs[before:] {
				t.Errorf("%s", e)
			}
		})
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.single == 0 {
		t.Fatal("the Run hook was never exercised; the grid ran unchecked")
	}
	if c.multi == 0 {
		t.Fatal("the RunMulti hook was never exercised; multi-tenant runs went unchecked")
	}
	t.Logf("checked %d single-workload and %d multi-tenant runs", c.single, c.multi)
}

// TestRunHooksAreUsedEverywhere pins the seam itself: with hooks installed,
// the real core.Run/RunMulti are never called directly by any experiment.
// (A direct call would bypass the hook and return a zero-ish Result; the
// sentinel hooks detect exactly the opposite — that results flow through.)
func TestRunHooksAreUsedEverywhere(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	o := tiny()
	o.Run = func(cfg core.Config) core.Result {
		mu.Lock()
		runs++
		mu.Unlock()
		return core.Run(cfg)
	}
	o.RunMulti = func(cfg core.MultiConfig) core.MultiResult {
		mu.Lock()
		runs++
		mu.Unlock()
		return core.RunMulti(cfg)
	}
	// ColdStarts and MultiTenant are the two experiments with direct
	// (non-runCells) call sites; fig3 covers the runCells path.
	ColdStarts(o)
	MultiTenant(o)
	reg := Registry()
	reg["fig3"](o)
	mu.Lock()
	defer mu.Unlock()
	if runs < 10 {
		t.Fatalf("hooks saw only %d runs; a call site bypasses Options.Run", runs)
	}
}

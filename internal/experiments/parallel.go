package experiments

// Parallel execution of the experiment grid.
//
// The paper's evaluation is embarrassingly parallel: every (model, trace,
// scheme, repetition) cell is an independent core.Run whose randomness
// derives from Seed.Child("rep-N") and whose simulation state (engine,
// cluster, collector) is created inside the run. Nothing is shared between
// cells, so cells can execute on any number of workers in any order — as
// long as results are collected *indexed by cell*, every aggregate, table,
// terminal plot and SVG is byte-identical to a serial run.
//
// Three layers cooperate:
//
//   - Pool: a token bucket bounding how many simulations execute at once.
//     cmd/paldia-experiments shares one Pool across concurrently running
//     figures so nested fan-out never oversubscribes the machine.
//   - Options.parRange: the indexed fan-out primitive. Serial runs
//     (Parallelism 1, no shared Pool) use a plain loop — no goroutines at
//     all — so the determinism guarantee is testable against a true serial
//     baseline.
//   - runCells: the grid executor every experiment funnels through.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
)

// Pool bounds the number of simulations executing at once. A single Pool may
// be shared by many concurrently running experiments; callers must never
// hold a token while waiting on work that itself needs tokens (the
// experiment runner only acquires around leaf core.Run calls, so figures
// sharing a Pool cannot deadlock).
type Pool struct{ tokens chan struct{} }

// NewPool returns a pool admitting n simulations at once (minimum 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

func (p *Pool) acquire() { <-p.tokens }
func (p *Pool) release() { p.tokens <- struct{}{} }

// Map runs fn(i) for every i in [0, n) across the pool and returns once all
// calls finished. fn must write its result to an i-indexed slot and touch no
// other shared state; reading the slots back in index order then yields
// output identical to a serial loop — the same discipline Options.parRange
// follows. A nil pool runs the plain serial loop.
func (p *Pool) Map(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			p.acquire()
			defer p.release()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// workers resolves the effective parallelism: 0 means one worker per CPU,
// anything below 1 means serial.
func (o Options) workers() int {
	if o.Parallelism == 0 {
		return runtime.NumCPU()
	}
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// parRange runs fn(i) for every i in [0, n). With Parallelism <= 1 and no
// shared Pool it is a plain loop; otherwise the calls fan out over the pool
// in unspecified order. fn must write its result to an i-indexed slot and
// touch no other shared state; parRange returns only after all n calls
// finished, so the caller reads the slots back in index order and the
// assembled output is identical at any parallelism.
func (o Options) parRange(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	pool := o.Pool
	if pool == nil {
		w := o.workers()
		if w == 1 || n == 1 {
			for i := 0; i < n; i++ {
				fn(i)
			}
			return
		}
		pool = NewPool(w)
	}
	pool.Map(n, fn)
}

// cell is one (model, trace, scheme, mutator) grid point of an experiment.
type cell struct {
	m      model.Spec
	gen    traceGen
	scheme core.Scheme
	mut    mutator
}

// runCells executes every (cell, repetition) pair — each an independent
// core.Run — across the worker pool and aggregates per cell with the
// paper's outlier rule. Results are indexed by (cell, rep), never by
// completion order: aggregates come back in cell order with repetitions in
// rep order, exactly as a serial nested loop would produce them.
func runCells(o Options, cells []cell) []aggregate {
	reps := o.Reps
	results := make([]core.Result, len(cells)*reps)
	o.parRange(len(results), func(i int) {
		c := cells[i/reps]
		rep := i % reps
		rng := sim.NewRNG(o.Seed).Child(fmt.Sprintf("rep-%d", rep))
		cfg := core.Config{
			Model:  c.m,
			Trace:  c.gen(rng),
			Scheme: c.scheme,
			Seed:   rng.Seed(),
		}
		if c.mut != nil {
			c.mut(&cfg)
		}
		results[i] = o.run(cfg)
	})
	out := make([]aggregate, len(cells))
	for ci := range cells {
		out[ci] = aggregateResults(results[ci*reps : (ci+1)*reps])
	}
	return out
}

// aggregateResults folds one cell's repetitions with the paper's 2.5 sigma
// outlier rule, in repetition order.
func aggregateResults(results []core.Result) aggregate {
	var compl, cost, p99, power, ucpu, ugpu []float64
	for _, res := range results {
		compl = append(compl, res.SLOCompliance)
		cost = append(cost, res.Cost)
		p99 = append(p99, float64(res.P99))
		power = append(power, res.AvgPowerW)
		ucpu = append(ucpu, res.UtilCPU)
		ugpu = append(ugpu, res.UtilGPU)
	}
	const k = 2.5
	return aggregate{
		Compliance: metrics.MeanDropOutliers(compl, k),
		Cost:       metrics.MeanDropOutliers(cost, k),
		P99:        time.Duration(metrics.MeanDropOutliers(p99, k)),
		Power:      metrics.MeanDropOutliers(power, k),
		UtilCPU:    metrics.MeanDropOutliers(ucpu, k),
		UtilGPU:    metrics.MeanDropOutliers(ugpu, k),
		Results:    results,
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) on the simulated substrate. Each experiment is a
// function from Options to a Table of the same rows/series the paper plots;
// cmd/paldia-experiments renders them, and bench_test.go exposes one
// benchmark per experiment.
//
// Absolute numbers differ from the paper (the substrate is a calibrated
// simulator, not the authors' EC2 cluster); the experiments are judged on
// shape: which scheme wins, by roughly what factor, and where the
// crossovers fall. EXPERIMENTS.md records paper-vs-measured for every entry.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/svgplot"
	"repro/internal/trace"
)

// Options control experiment scale, reproducibility and parallelism.
type Options struct {
	// Seed roots all randomness.
	Seed uint64
	// Reps is the number of repetitions per data point; results aggregate
	// with the paper's outlier rule (drop beyond 2.5 sigma). The paper uses
	// 5.
	Reps int
	// Scale shrinks trace durations for quick runs (1 = paper scale).
	Scale float64
	// Parallelism is the number of simulations run concurrently: every
	// (model, trace, scheme, repetition) cell is an independent run, and
	// results are collected indexed by cell, so tables are byte-identical at
	// any value. 0 means one worker per CPU; 1 runs serially with no
	// goroutines.
	Parallelism int
	// Pool, when set, overrides the per-experiment worker pool with a shared
	// one, bounding total concurrency across experiments running at the same
	// time (see cmd/paldia-experiments -j).
	Pool *Pool

	// Forecaster selects the default rate-forecasting model by name for every
	// simulation an experiment runs (empty = "ewma"); experiments that sweep
	// forecasters themselves (forecast-frontier) override it per cell. See
	// predict.NewByName for the registry.
	Forecaster string

	// Streaming routes every simulation's arrivals through the lazy stream
	// path (core.Config.Stream) instead of the materialized Arrivals slice.
	// Results are byte-identical either way (the equivalence suite pins
	// this); the point is exercising the constant-memory path across whole
	// experiment grids. Traces stay materialized here so clairvoyant schemes
	// keep working; for truly unmaterialized runs use core.Config.Stream
	// with a trace.CurveStream directly (cmd/paldia-sim -stream).
	Streaming bool

	// Run and RunMulti, when set, replace core.Run / core.RunMulti for every
	// simulation an experiment executes. Tests use them to instrument whole
	// experiment grids (e.g. attach a fresh invariant.Checker per run); they
	// must behave like the functions they replace. Nil uses the real runners.
	Run      func(core.Config) core.Result
	RunMulti func(core.MultiConfig) core.MultiResult
}

// run dispatches one simulation through the Run hook (or core.Run).
func (o Options) run(cfg core.Config) core.Result {
	if cfg.Forecaster == "" {
		cfg.Forecaster = o.Forecaster
	}
	if o.Streaming && cfg.Stream == nil && cfg.Trace != nil {
		cfg.Stream = cfg.Trace.Stream()
	}
	if o.Run != nil {
		return o.Run(cfg)
	}
	return core.Run(cfg)
}

// runMulti dispatches one multi-tenant simulation through the RunMulti hook
// (or core.RunMulti).
func (o Options) runMulti(cfg core.MultiConfig) core.MultiResult {
	if cfg.Forecaster == "" {
		cfg.Forecaster = o.Forecaster
	}
	if o.Streaming {
		// Copy before rewriting: streams are single-use, so the caller's
		// workloads must not end up holding consumed iterators.
		ws := make([]core.Workload, len(cfg.Workloads))
		copy(ws, cfg.Workloads)
		for i := range ws {
			if ws[i].Stream == nil && ws[i].Trace != nil {
				ws[i].Stream = ws[i].Trace.Stream()
			}
		}
		cfg.Workloads = ws
	}
	if o.RunMulti != nil {
		return o.RunMulti(cfg)
	}
	return core.RunMulti(cfg)
}

// Default returns paper-like options at a tractable repetition count.
func Default() Options { return Options{Seed: 42, Reps: 3, Scale: 1} }

func (o Options) normalize() Options {
	if o.Reps < 1 {
		o.Reps = 1
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// dur scales a paper-scale duration.
func (o Options) dur(d time.Duration) time.Duration {
	s := time.Duration(float64(d) * o.Scale)
	if s < 30*time.Second {
		s = 30 * time.Second
	}
	return s
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier ("fig3", "table2", ...).
	ID string
	// Title describes what the paper's figure/table shows.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, as formatted strings.
	Rows [][]string
	// Notes carry caveats and substitutions.
	Notes []string
	// Plot, when non-empty, is a terminal chart of the figure's shape.
	Plot string
	// SVGs are renderable figure files (written by paldia-experiments -svg).
	SVGs []SVGFigure
}

// SVGFigure is one renderable figure of an experiment.
type SVGFigure struct {
	// Name is the file stem, e.g. "fig3-compliance".
	Name string
	// Render writes the standalone SVG.
	Render func(w io.Writer) error
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Plot != "" {
		fmt.Fprintf(&b, "\n%s", t.Plot)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\nnote: %s\n", n)
	}
	return b.String()
}

// Cell returns one data cell (empty string when out of range).
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		return ""
	}
	return t.Rows[row][col]
}

// FindRow returns the index of the first row whose given column equals
// value, or -1.
func (t *Table) FindRow(col int, value string) int {
	for i, row := range t.Rows {
		if col < len(row) && row[col] == value {
			return i
		}
	}
	return -1
}

// ParsePct converts a table cell like "99.25%" back into a fraction; it
// returns -1 for malformed cells.
func ParsePct(cell string) float64 {
	var v float64
	if _, err := fmt.Sscanf(cell, "%f%%", &v); err != nil {
		return -1
	}
	return v / 100
}

// WriteCSV writes the table's header and data rows as RFC 4180 CSV, for
// downstream analysis of any experiment (paldia-experiments -csv).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", strings.ToUpper(t.ID), t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Plot != "" {
		fmt.Fprintf(&b, "\n```\n%s```\n", t.Plot)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*Note: %s*\n", n)
	}
	return b.String()
}

// aggregate is the per-scheme mean metrics over repetitions.
type aggregate struct {
	Compliance float64
	Cost       float64
	P99        time.Duration
	Power      float64
	UtilCPU    float64
	UtilGPU    float64
	Results    []core.Result // every repetition, for detail extraction
}

// traceGen builds a trace for one repetition.
type traceGen func(rng *sim.RNG) *trace.Trace

// mutator tweaks the run config (failures, host factors, pins).
type mutator func(cfg *core.Config)

// runRepeated executes Reps repetitions of (model, trace, scheme) and
// aggregates with the paper's outlier rule. Repetitions fan out over the
// worker pool; grid experiments batch whole (model, scheme) grids through
// runCells instead so every cell parallelizes.
func runRepeated(o Options, m model.Spec, gen traceGen, scheme core.Scheme, mut mutator) aggregate {
	return runCells(o, []cell{{m: m, gen: gen, scheme: scheme, mut: mut}})[0]
}

// azureGen returns the standard Azure trace generator for a model.
func azureGen(o Options, m model.Spec) traceGen {
	return func(rng *sim.RNG) *trace.Trace {
		return trace.Azure(rng, m.DefaultPeakRPS(), o.dur(trace.AzureDuration))
	}
}

// standardSchemes are the five evaluated schemes in plotting order.
func standardSchemes() []core.Scheme { return core.StandardSchemes() }

func pct(f float64) string     { return fmt.Sprintf("%.2f%%", f*100) }
func dollars(f float64) string { return fmt.Sprintf("$%.4f", f) }
func msec(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}

// attachGroupedBars adds a grouped-bar SVG figure to a table.
func attachGroupedBars(t *Table, name, title string, groups, series []string,
	values [][]float64, yMax float64, unit string) {
	g := &svgplot.GroupedBars{
		Title: title, Groups: groups, Series: series, Values: values,
		YMax: yMax, Unit: unit,
	}
	t.SVGs = append(t.SVGs, SVGFigure{Name: name, Render: g.Render})
}

// normalizeMax scales values so the maximum is 1.
func normalizeMax(values []float64) []float64 {
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(values))
	if max == 0 {
		return out
	}
	for i, v := range values {
		out[i] = v / max
	}
	return out
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/batch"
	"repro/internal/device"
	"repro/internal/hardware"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Fig. 1 is the paper's motivation experiment: two inference workloads —
// SENet 18 and DenseNet 121 — co-served on a single GPU under the stable
// Wiki-derived trace, comparing pure time sharing and pure MPS sharing on
// both the most performant (V100) and most cost-effective (M60) GPU against
// an Offline Hybrid whose time/spatial split is found by an offline sweep.
//
// The paper's rates (SENet mu~575 rps, DenseNet mu~160 rps) put *their* M60
// at high utilization; our calibrated M60 is stronger (it matches the §II
// ResNet-50@750rps claim), so the rates are scaled by a single factor to
// reproduce the same operating regime (~0.85 utilization on the M60). The
// substitution is recorded in the table notes.

// fig1MaxWait is the uniform-batching timeout: a stream dispatches when its
// batch fills or its oldest request has waited this long (half the SLO
// budget, as fixed-batch serving must).
const fig1MaxWait = 100 * time.Millisecond

// fig1RateScale maps the paper's rates onto our M60 so the combined serial
// utilization — including per-batch launch overhead at the batch sizes the
// timeout actually yields — lands at ~0.9, the regime where the paper's
// tradeoff between queueing and interference bites.
func fig1RateScale() float64 {
	m60, _ := hardware.ByName("M60")
	paperRates := []float64{575, 160}
	batchSizes := []int{128, 64}
	models := []model.Spec{model.MustByName("SENet 18"), model.MustByName("DenseNet 121")}

	util := func(s float64) float64 {
		u := 0.0
		for i, m := range models {
			rate := paperRates[i] * s
			b := rate * fig1MaxWait.Seconds()
			if b > float64(batchSizes[i]) {
				b = float64(batchSizes[i])
			}
			if b < 1 {
				b = 1
			}
			batchesPerSec := rate / b
			u += rate*profile.SoloSample(m, m60).Seconds() +
				batchesPerSec*profile.GPULaunchOverhead.Seconds()
		}
		return u
	}
	lo, hi := 0.05, 5.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if util(mid) < 0.9 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// fig1Workload is one co-served stream.
type fig1Workload struct {
	model   model.Spec
	rate    float64
	batchSz int
}

func fig1Workloads() []fig1Workload {
	s := fig1RateScale()
	return []fig1Workload{
		{model: model.MustByName("SENet 18"), rate: 575 * s, batchSz: 128},
		{model: model.MustByName("DenseNet 121"), rate: 160 * s, batchSz: 64},
	}
}

// fig1Result is the outcome of one scheme for one workload.
type fig1Result struct {
	scheme    string
	workload  string
	breakdown metrics.Breakdown
	compl     float64
	costPerH  float64
}

// runFig1Scheme co-serves both workloads on the given GPU with a fixed
// queued fraction per dispatch window (0 = MPS only, 1 = time shared only).
func runFig1Scheme(seed uint64, hw hardware.Spec, queuedFrac float64,
	dur time.Duration, slo time.Duration) []*metrics.Collector {

	eng := sim.NewEngine()
	rng := sim.NewRNG(seed)
	loads := fig1Workloads()
	// Device memory bounds co-location, as everywhere else.
	maxRes := profile.MaxResidentJobs(loads[0].model, hw)
	if r := profile.MaxResidentJobs(loads[1].model, hw); r < maxRes {
		maxRes = r
	}
	dev := device.New(eng, hw, maxRes)

	collectors := make([]*metrics.Collector, len(loads))
	batchers := make([]*batch.Batcher, len(loads))
	traces := make([]*trace.Trace, len(loads))
	idx := make([]int, len(loads))
	for i, w := range loads {
		collectors[i] = metrics.NewCollector(slo)
		batchers[i] = &batch.Batcher{}
		traces[i] = trace.Stable(rng.Child(w.model.Name), w.rate, dur)
	}

	// Arrival feeders (one lazy event chain per stream).
	for i := range loads {
		i := i
		arr := traces[i].Arrivals
		var next func()
		next = func() {
			now := eng.Now()
			for idx[i] < len(arr) && arr[idx[i]] <= now {
				batchers[i].Add(arr[idx[i]])
				idx[i]++
			}
			if idx[i] < len(arr) {
				eng.ScheduleAt(arr[idx[i]], next)
			}
		}
		if len(arr) > 0 {
			eng.ScheduleAt(arr[0], next)
		}
	}

	// Dispatch discipline: the paper's uniform batching — a stream
	// dispatches a batch once it fills its fixed batch size, or when its
	// oldest request has waited maxWait. The scheme's fixed fraction picks
	// which batches are queued (time shared) versus spatially shared: out of
	// every run of batches, the first queuedFrac share are queued.
	const (
		tickEvery = 10 * time.Millisecond
		maxWait   = fig1MaxWait
	)
	end := dur
	// Deterministic even interleave of queued batches at the given
	// fraction (error-diffusion accumulator per stream).
	queuedAcc := make([]float64, len(loads))
	submit := func(i int, b []batch.Request) {
		w := loads[i]
		mode := device.Spatial
		queuedAcc[i] += queuedFrac
		if queuedAcc[i] >= 1-1e-9 {
			queuedAcc[i]--
			mode = device.Queued
		}
		at := eng.Now()
		job := &device.Job{
			Batch:   len(b),
			Solo:    profile.Solo(w.model, hw, len(b)),
			FBR:     profile.FBR(w.model, hw),
			Compute: profile.ComputeFraction(w.model, hw, len(b)),
			Mode:    mode,
		}
		job.Done = func(j *device.Job) {
			for _, r := range b {
				collectors[i].Add(metrics.Record{
					Arrival:      r.Arrival,
					Latency:      eng.Now() - r.Arrival,
					BatchWait:    at - r.Arrival,
					QueueDelay:   j.QueueDelay(),
					Interference: j.Interference(),
					MinExec:      j.Solo,
				})
			}
		}
		dev.Submit(job)
	}
	var tick func()
	tick = func() {
		now := eng.Now()
		for i := range loads {
			for batchers[i].Pending() >= loads[i].batchSz {
				submit(i, batchers[i].TakeUpTo(loads[i].batchSz))
			}
			if oldest, ok := batchers[i].OldestArrival(); ok && now-oldest >= maxWait {
				submit(i, batchers[i].TakeAll())
			}
		}
		if now < end {
			eng.Schedule(tickEvery, tick)
		}
	}
	eng.Schedule(tickEvery, tick)
	eng.Run(end + 10*time.Second)
	return collectors
}

// fig1Compliance is the request-weighted compliance across both workloads.
func fig1Compliance(cols []*metrics.Collector) float64 {
	total, ok := 0, 0.0
	for _, c := range cols {
		total += c.Count()
		ok += c.SLOCompliance() * float64(c.Count())
	}
	if total == 0 {
		return 1
	}
	return ok / float64(total)
}

// Fig1 regenerates the motivation figure.
func Fig1(o Options) *Table {
	o = o.normalize()
	dur := o.dur(10 * time.Minute)
	const slo = 200 * time.Millisecond
	v100, _ := hardware.ByName("V100")
	m60, _ := hardware.ByName("M60")

	// Offline sweep for the hybrid's queued fraction on the M60 (the paper
	// sweeps workload-occupancy combinations beforehand). The sweep points fan
	// out over the pool; the argmax scans indexed results in sweep order, so
	// ties break identically to a serial sweep.
	var fracs []float64
	for f := 0.0; f <= 0.91; f += 0.1 {
		fracs = append(fracs, f)
	}
	compls := make([]float64, len(fracs))
	o.parRange(len(fracs), func(i int) {
		compls[i] = fig1Compliance(runFig1Scheme(o.Seed, m60, fracs[i], dur/2, slo))
	})
	bestFrac, bestCompl := 0.0, -1.0
	for i, f := range fracs {
		if compls[i] > bestCompl {
			bestCompl, bestFrac = compls[i], f
		}
	}

	schemes := []struct {
		name string
		hw   hardware.Spec
		frac float64
	}{
		{"Time Shared Only (P)", v100, 1},
		{"MPS Only (P)", v100, 0},
		{"Time Shared Only ($)", m60, 1},
		{"MPS Only ($)", m60, 0},
		{"Offline Hybrid", m60, bestFrac},
	}

	t := &Table{
		ID:    "fig1",
		Title: "Motivation: P99 breakdown and SLO compliance, SENet 18 + DenseNet 121 co-served",
		Columns: []string{"scheme", "GPU", "workload", "SLO compliance",
			"P99 total", "P99 min-exec", "P99 queueing", "P99 interference", "node $/h"},
	}
	loads := fig1Workloads()
	schemeCols := make([][]*metrics.Collector, len(schemes))
	o.parRange(len(schemes), func(i int) {
		s := schemes[i]
		schemeCols[i] = runFig1Scheme(o.Seed, s.hw, s.frac, dur, slo)
	})
	for si, s := range schemes {
		for i, c := range schemeCols[si] {
			b := c.TailBreakdown(99, 99.9)
			t.Rows = append(t.Rows, []string{
				s.name, s.hw.Accel, loads[i].model.Name,
				pct(c.SLOCompliance()),
				msec(b.Total), msec(b.MinExec),
				msec(b.QueueDelay + b.BatchWait),
				msec(b.Interference),
				fmt.Sprintf("$%.2f", s.hw.CostPerHour),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("rates scaled x%.2f vs the paper's (575/160 rps) so the calibrated M60 "+
			"runs at ~0.9 utilization, the paper's operating regime", fig1RateScale()),
		fmt.Sprintf("offline hybrid swept queued fractions 0..0.9; best = %.1f", bestFrac),
	)
	return t
}

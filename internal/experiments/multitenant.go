package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MultiTenant goes beyond the paper's per-model runs: three vision models
// co-served on one shared node at a time, the deployment reality behind the
// motivation experiment, through the full runtime. Naive hardware selection
// underestimates aggregate pressure (per-tenant batching overhead and
// cross-model interference), so the gap between the schemes widens.
func MultiTenant(o Options) *Table {
	o = o.normalize()
	dur := o.dur(15 * time.Minute)
	mkWorkloads := func(rng *sim.RNG) []core.Workload {
		return []core.Workload{
			{Model: model.MustByName("SENet 18"), Trace: trace.Stable(rng.Child("senet"), 400, dur)},
			{Model: model.MustByName("DenseNet 121"), Trace: trace.Stable(rng.Child("dense"), 100, dur)},
			{Model: model.MustByName("MobileNet"), Trace: trace.Stable(rng.Child("mobile"), 150, dur)},
		}
	}

	t := &Table{
		ID:    "multitenant",
		Title: "Multi-tenant co-serving: SENet 18 + DenseNet 121 + MobileNet on one shared node",
		Columns: []string{"scheme", "combined SLO compliance", "SENet 18", "DenseNet 121",
			"MobileNet", "cost"},
	}
	schemes := standardSchemes()
	results := make([]core.MultiResult, len(schemes)*o.Reps)
	o.parRange(len(results), func(i int) {
		s := schemes[i/o.Reps]
		rep := i % o.Reps
		rng := sim.NewRNG(o.Seed).Child(fmt.Sprintf("mt-rep-%d", rep))
		results[i] = o.runMulti(core.MultiConfig{Workloads: mkWorkloads(rng), Scheme: s})
	})
	for si, s := range schemes {
		var combined, cost []float64
		per := make([][]float64, 3)
		for rep := 0; rep < o.Reps; rep++ {
			res := results[si*o.Reps+rep]
			combined = append(combined, res.SLOCompliance)
			cost = append(cost, res.Cost)
			for i, c := range res.PerWorkload {
				per[i] = append(per[i], c.SLOCompliance())
			}
		}
		row := []string{s.Name(), pct(metrics.MeanDropOutliers(combined, 2.5))}
		for i := range per {
			row = append(row, pct(metrics.MeanDropOutliers(per[i], 2.5)))
		}
		row = append(row, dollars(metrics.MeanDropOutliers(cost, 2.5)))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"beyond the paper: combined ~650 rps of mixed models; per-tenant batchers, predictors and splits on a shared device")
	return t
}

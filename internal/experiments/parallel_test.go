package experiments

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

// equalityOptions is a reduced-scale configuration that still exercises
// repetition indexing (Reps > 1) and a full (model x scheme) grid.
func equalityOptions() Options {
	return Options{Seed: 7, Reps: 2, Scale: 0.02}
}

// renderSVGs renders every SVG figure of a table to bytes.
func renderSVGs(t *testing.T, tb *Table) [][]byte {
	t.Helper()
	var out [][]byte
	for _, fig := range tb.SVGs {
		var buf bytes.Buffer
		if err := fig.Render(&buf); err != nil {
			t.Fatalf("render %s: %v", fig.Name, err)
		}
		out = append(out, buf.Bytes())
	}
	return out
}

// assertTablesIdentical requires two tables to be deeply equal in every
// rendered respect: rows, notes, terminal plot, and SVG bytes.
func assertTablesIdentical(t *testing.T, serial, parallel *Table) {
	t.Helper()
	if serial.ID != parallel.ID || serial.Title != parallel.Title {
		t.Fatalf("header differs: %q/%q vs %q/%q",
			serial.ID, serial.Title, parallel.ID, parallel.Title)
	}
	if !reflect.DeepEqual(serial.Columns, parallel.Columns) {
		t.Fatalf("columns differ:\nserial:   %v\nparallel: %v", serial.Columns, parallel.Columns)
	}
	if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
		t.Fatalf("rows differ:\nserial:   %v\nparallel: %v", serial.Rows, parallel.Rows)
	}
	if !reflect.DeepEqual(serial.Notes, parallel.Notes) {
		t.Fatalf("notes differ:\nserial:   %v\nparallel: %v", serial.Notes, parallel.Notes)
	}
	if serial.Plot != parallel.Plot {
		t.Fatalf("plots differ:\nserial:\n%s\nparallel:\n%s", serial.Plot, parallel.Plot)
	}
	ss, ps := renderSVGs(t, serial), renderSVGs(t, parallel)
	if len(ss) != len(ps) {
		t.Fatalf("SVG count differs: %d vs %d", len(ss), len(ps))
	}
	for i := range ss {
		if !bytes.Equal(ss[i], ps[i]) {
			t.Fatalf("SVG %q differs between serial and parallel runs", serial.SVGs[i].Name)
		}
	}
}

// TestSerialParallelEquality is the determinism guarantee: a representative
// grid experiment (reduced-scale Fig3: 12 models x 5 schemes x 2 reps) must
// render byte-identically whether cells run serially or fanned out over 4
// workers. Run under -race with -cpu 1,4 in CI.
func TestSerialParallelEquality(t *testing.T) {
	serialOpts := equalityOptions()
	serialOpts.Parallelism = 1
	parOpts := equalityOptions()
	parOpts.Parallelism = 4

	serial := Fig3(serialOpts)
	parallel := Fig3(parOpts)
	assertTablesIdentical(t, serial, parallel)
}

// TestForecastFrontierSerialParallelEquality extends the determinism
// guarantee to the forecaster sweep: backtest columns and simulation columns
// must both be byte-identical at any parallelism.
func TestForecastFrontierSerialParallelEquality(t *testing.T) {
	serialOpts := equalityOptions()
	serialOpts.Parallelism = 1
	parOpts := equalityOptions()
	parOpts.Parallelism = 4

	assertTablesIdentical(t, ForecastFrontier(serialOpts), ForecastFrontier(parOpts))
}

// TestSharedPoolAcrossExperiments mirrors cmd/paldia-experiments -j: several
// experiments running concurrently over one shared pool must neither deadlock
// nor perturb results.
func TestSharedPoolAcrossExperiments(t *testing.T) {
	serialOpts := equalityOptions()
	serialOpts.Parallelism = 1
	wantFig5 := Fig5(serialOpts)
	wantFig8 := Fig8(serialOpts)

	parOpts := equalityOptions()
	parOpts.Parallelism = 2
	parOpts.Pool = NewPool(2)
	var gotFig5, gotFig8 *Table
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); gotFig5 = Fig5(parOpts) }()
	go func() { defer wg.Done(); gotFig8 = Fig8(parOpts) }()
	wg.Wait()

	assertTablesIdentical(t, wantFig5, gotFig5)
	assertTablesIdentical(t, wantFig8, gotFig8)
}

// TestParRangeIndexing checks the fan-out primitive delivers every index
// exactly once at any parallelism.
func TestParRangeIndexing(t *testing.T) {
	for _, par := range []int{1, 3, 16} {
		o := Options{Parallelism: par}
		hits := make([]int, 100)
		o.parRange(len(hits), func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("parallelism %d: index %d ran %d times", par, i, h)
			}
		}
	}
	// n = 0 must be a no-op.
	(Options{Parallelism: 4}).parRange(0, func(int) { t.Fatal("called for n=0") })
}

// TestWorkersResolution pins the Parallelism contract: 0 means one worker per
// CPU, negatives clamp to serial.
func TestWorkersResolution(t *testing.T) {
	if w := (Options{Parallelism: -3}).workers(); w != 1 {
		t.Fatalf("negative parallelism resolves to %d workers, want 1", w)
	}
	if w := (Options{}).workers(); w < 1 {
		t.Fatalf("default parallelism resolves to %d workers", w)
	}
	if w := (Options{Parallelism: 5}).workers(); w != 5 {
		t.Fatalf("explicit parallelism resolves to %d workers, want 5", w)
	}
}

package experiments

import (
	"fmt"
	"testing"
)

// cloningShapeOptions runs the frontier at the same reduced scale the CI
// smoke leg uses: 18 simulated minutes of Twitter and one compressed
// Wikipedia day per cell keep the full 2x6 grid tractable in a test.
func cloningShapeOptions() Options { return Options{Seed: 42, Reps: 1, Scale: 0.2} }

func cloningDollars(t *testing.T, tab *Table, trace, scheme string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(frontierCell(t, tab, trace, scheme, "cost"), "$%f", &v); err != nil {
		t.Fatalf("%s/%s cost: %v", trace, scheme, err)
	}
	return v
}

func cloningMs(t *testing.T, tab *Table, trace, scheme string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(frontierCell(t, tab, trace, scheme, "P99"), "%fms", &v); err != nil {
		t.Fatalf("%s/%s P99: %v", trace, scheme, err)
	}
	return v
}

// TestCloningFrontierShape pins the headline claim of the cloning study: on
// both traces, under full-spot capacity with a revocation every 45s, at
// least one redundant configuration (clone-2 here, the cheapest) beats the
// plain Eq. (1) baseline's P99 outright, masks every revocation (no failed
// requests), and pays a bounded cost premium for it.
func TestCloningFrontierShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cloning frontier skipped in -short mode")
	}
	tab := CloningFrontier(cloningShapeOptions())

	for _, trace := range []string{"Wikipedia", "Twitter"} {
		plainP99 := cloningMs(t, tab, trace, "Paldia")
		cloneP99 := cloningMs(t, tab, trace, "Paldia Clone-2")
		// The plain path rides out each revocation behind a draining node
		// and a cold failover; clone-2's second pool absorbs it. The gap is
		// over an order of magnitude at paper scale, so a 2x margin here
		// only trips on a real regression.
		if cloneP99*2 >= plainP99 {
			t.Errorf("%s: clone-2 P99 %.1fms not clearly below plain %.1fms",
				trace, cloneP99, plainP99)
		}

		plainCompl := ParsePct(frontierCell(t, tab, trace, "Paldia", "SLO compliance"))
		cloneCompl := ParsePct(frontierCell(t, tab, trace, "Paldia Clone-2", "SLO compliance"))
		if cloneCompl < plainCompl {
			t.Errorf("%s: clone-2 compliance %.4f below plain %.4f",
				trace, cloneCompl, plainCompl)
		}

		// Failure masking: every revocation lands on a pool with a live
		// sibling, so no request is lost.
		if failed := frontierCell(t, tab, trace, "Paldia Clone-2", "failed"); failed != "0.00%" {
			t.Errorf("%s: clone-2 failed %s, want 0.00%%", trace, failed)
		}

		// Bounded premium: the k-th pool only burns money while racing, and
		// losers cancel on the first finish, so clone-2 stays well under the
		// naive 2x of its nameplate redundancy.
		plainCost := cloningDollars(t, tab, trace, "Paldia")
		cloneCost := cloningDollars(t, tab, trace, "Paldia Clone-2")
		if cloneCost > plainCost*1.5 {
			t.Errorf("%s: clone-2 cost $%.4f above 1.5x plain $%.4f",
				trace, cloneCost, plainCost)
		}
	}
}

// TestCloningFrontierSerialParallelEquality requires the cloning frontier —
// spot revocations, clone cancellations and all — to assemble byte-identical
// tables at any parallelism.
func TestCloningFrontierSerialParallelEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("equality sweep skipped in -short mode")
	}
	o := equalityOptions()
	serial, parallel := o, o
	serial.Parallelism = 1
	parallel.Parallelism = 4
	assertTablesIdentical(t, CloningFrontier(serial), CloningFrontier(parallel))
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Forecast-frontier study parameters. The Wikipedia trace is compressed
// harder than Fig12's default (288x: one day becomes 5 minutes) so the 15 s
// procurement lead is a meaningful fraction of a diurnal ramp — at 48x the
// ramps are so slow that a last-value forecast is already near-optimal and
// no forecaster can differentiate itself. More days than Fig12 (10 vs 5)
// give the seasonal model several full periods to lock onto.
const (
	forecastWikiDays        = 10
	forecastWikiCompression = 288
	forecastWikiPeakRPS     = 170
)

// forecastFrontierNames are the forecasters the frontier sweeps, in
// plotting order (predict.Names() minus the p99 duplicate of percentile).
func forecastFrontierNames() []string { return []string{"ewma", "seasonal", "percentile"} }

// ForecastFrontier sweeps the pluggable forecasting models across the two
// real-world traces of Fig12 — the diurnal Wikipedia trace and the erratic
// Twitter trace — and reports, side by side, each model's offline prediction
// quality (deterministic backtest at the procurement lead) and the serving
// outcome it buys (SLO compliance, cost, P99 under the Paldia scheme). This
// is the prediction-quality -> cost/SLO frontier: better forecasts should
// move the operating point up-and-left (more compliance, no extra cost), and
// a model that cannot fit a trace should degrade to EWMA, never below it.
func ForecastFrontier(o Options) *Table {
	o = o.normalize()
	t := &Table{
		ID:    "forecast-frontier",
		Title: "Prediction quality vs serving outcome across forecasters (Paldia scheme)",
		Columns: []string{"trace", "model", "forecaster",
			"MAPE@lead", "under-prov", "SLO compliance", "cost", "P99"},
	}

	resnet := model.MustByName("ResNet 50")
	// Scale shrinks the day count (not the compression): reduced-scale runs
	// keep the same 5-minute period, just fewer of them.
	wikiDays := int(float64(forecastWikiDays)*o.Scale + 0.5)
	if wikiDays < 1 {
		wikiDays = 1
	}
	wikiGen := func(rng *sim.RNG) *trace.Trace {
		return trace.Wikipedia(rng, forecastWikiPeakRPS, wikiDays, forecastWikiCompression)
	}
	dpn := model.MustByName("DPN 92")
	// The paper's Twitter sample has 5x the Azure trace's mean rate.
	azureMean := dpn.DefaultPeakRPS() * 55 / 673
	twitterGen := func(rng *sim.RNG) *trace.Trace {
		return trace.Twitter(rng, 5*azureMean, o.dur(trace.TwitterDuration))
	}

	// Offline quality is scored on the design curves (no Poisson draw), with
	// a fixed named RNG stream so the numbers are byte-identical across runs
	// and independent of the repetition count.
	brng := sim.NewRNG(o.Seed).Child("forecast-backtest")
	curves := []*trace.Curve{
		trace.WikipediaCurve(brng, forecastWikiPeakRPS, wikiDays, forecastWikiCompression),
		trace.TwitterCurve(brng, 5*azureMean, o.dur(trace.TwitterDuration)),
	}

	studies := []struct {
		label string
		m     model.Spec
		gen   traceGen
		curve *trace.Curve
	}{
		{"Wikipedia", resnet, wikiGen, curves[0]},
		{"Twitter", dpn, twitterGen, curves[1]},
	}
	names := forecastFrontierNames()

	var cells []cell
	for _, s := range studies {
		for _, name := range names {
			fc := name // capture per iteration
			cells = append(cells, cell{m: s.m, gen: s.gen, scheme: core.NewPaldia(),
				mut: func(cfg *core.Config) { cfg.Forecaster = fc }})
		}
	}
	aggs := runCells(o, cells)

	var groups []string
	var compliance, cost [][]float64
	for si, s := range studies {
		groups = append(groups, s.label)
		var cvals, dvals []float64
		for ni, name := range names {
			f, err := predict.NewByName(name, core.DefaultObserveWindow)
			if err != nil {
				panic("experiments: " + err.Error())
			}
			rep := predict.Backtest(name, f, s.curve, core.DefaultObserveWindow, core.DefaultHWLead)
			a := aggs[si*len(names)+ni]
			t.Rows = append(t.Rows, []string{
				s.label, s.m.Name, name,
				fmt.Sprintf("%.4f", rep.MAPE),
				fmt.Sprintf("%.4f", rep.UnderProvision),
				pct(a.Compliance), dollars(a.Cost), msec(a.P99),
			})
			cvals = append(cvals, a.Compliance*100)
			dvals = append(dvals, a.Cost)
		}
		compliance = append(compliance, cvals)
		cost = append(cost, dvals)
	}

	attachGroupedBars(t, "forecast-frontier-compliance",
		"SLO compliance by forecaster", groups, names, compliance, 100, "%")
	attachGroupedBars(t, "forecast-frontier-cost",
		"Cost (USD) by forecaster", groups, names, cost, 0, "$")
	t.Notes = append(t.Notes,
		fmt.Sprintf("Wikipedia compressed %dx (%d days -> %v) so the %v procurement lead spans a visible "+
			"fraction of each diurnal ramp; at Fig12's %dx the ramps are too slow to separate forecasters",
			forecastWikiCompression, wikiDays,
			time.Duration(wikiDays)*24*time.Hour/forecastWikiCompression,
			core.DefaultHWLead, trace.WikipediaCompression),
		"MAPE/under-prov are deterministic backtests on the design curves at the procurement lead "+
			"(window "+core.DefaultObserveWindow.String()+", horizon "+core.DefaultHWLead.String()+"); "+
			"compliance/cost/P99 come from full simulations",
		"the seasonal model refuses to fit the Twitter random walk and degrades to its EWMA fallback, "+
			"so its Twitter row tracks the ewma row by construction")
	return t
}

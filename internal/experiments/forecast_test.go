package experiments

import (
	"fmt"
	"reflect"
	"strconv"
	"testing"
)

// frontierShapeOptions runs the frontier at full trace scale (the seasonal
// model needs several diurnal periods to lock on) with a reduced repetition
// count to stay tractable in CI.
func frontierShapeOptions() Options { return Options{Seed: 42, Reps: 2, Scale: 1} }

func frontierCell(t *testing.T, tab *Table, trace, forecaster, column string) string {
	t.Helper()
	col := -1
	for i, c := range tab.Columns {
		if c == column {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("column %q missing from %v", column, tab.Columns)
	}
	for _, row := range tab.Rows {
		if row[0] == trace && row[2] == forecaster {
			return row[col]
		}
	}
	t.Fatalf("no row for %s/%s", trace, forecaster)
	return ""
}

func frontierFloat(t *testing.T, tab *Table, trace, forecaster, column string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(frontierCell(t, tab, trace, forecaster, column), 64)
	if err != nil {
		t.Fatalf("%s/%s %s: %v", trace, forecaster, column, err)
	}
	return v
}

// TestForecastFrontierShape pins the headline claim of the forecaster study:
// on the diurnal Wikipedia trace the seasonal model predicts better than
// EWMA (lower MAPE at the procurement lead) and converts that into an
// equal-or-better serving outcome (no worse SLO compliance at no higher
// cost); on the erratic Twitter trace it refuses to fit and degrades to the
// EWMA baseline exactly, so switching forecasters can never hurt.
func TestForecastFrontierShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale frontier skipped in -short mode")
	}
	tab := ForecastFrontier(frontierShapeOptions())

	// (1) Prediction quality: seasonal beats EWMA on the diurnal trace.
	sMAPE := frontierFloat(t, tab, "Wikipedia", "seasonal", "MAPE@lead")
	eMAPE := frontierFloat(t, tab, "Wikipedia", "ewma", "MAPE@lead")
	if sMAPE >= eMAPE {
		t.Errorf("Wikipedia: seasonal MAPE %.4f not below ewma %.4f", sMAPE, eMAPE)
	}

	// (2) The quality translates into the serving outcome: compliance no
	// worse (small epsilon for repetition noise), cost no higher.
	sCompl := ParsePct(frontierCell(t, tab, "Wikipedia", "seasonal", "SLO compliance"))
	eCompl := ParsePct(frontierCell(t, tab, "Wikipedia", "ewma", "SLO compliance"))
	if sCompl < eCompl-0.002 {
		t.Errorf("Wikipedia: seasonal compliance %.4f below ewma %.4f", sCompl, eCompl)
	}
	var sCost, eCost float64
	if _, err := fmt.Sscanf(frontierCell(t, tab, "Wikipedia", "seasonal", "cost"), "$%f", &sCost); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(frontierCell(t, tab, "Wikipedia", "ewma", "cost"), "$%f", &eCost); err != nil {
		t.Fatal(err)
	}
	if sCost > eCost*1.01 {
		t.Errorf("Wikipedia: seasonal cost $%.4f above ewma $%.4f", sCost, eCost)
	}

	// (3) Graceful degradation: on the aperiodic Twitter trace the seasonal
	// model must never accept a fit, so its row — backtest and simulation
	// columns alike — is byte-identical to the EWMA baseline's. If this
	// breaks, the period-detection acceptance rules have loosened enough to
	// fit a random walk; tighten them rather than the test.
	var eRow, sRow []string
	for _, row := range tab.Rows {
		if row[0] == "Twitter" && row[2] == "ewma" {
			eRow = append([]string{}, row...)
			eRow[2] = "x"
		}
		if row[0] == "Twitter" && row[2] == "seasonal" {
			sRow = append([]string{}, row...)
			sRow[2] = "x"
		}
	}
	if !reflect.DeepEqual(eRow, sRow) {
		t.Errorf("Twitter: seasonal row %v differs from ewma row %v (spurious seasonal fit)", sRow, eRow)
	}
}

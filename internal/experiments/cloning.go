package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Cloning-frontier study parameters: a revocation-heavy spot environment.
// Every scheme — the plain Paldia baseline included — runs entirely on spot
// capacity at the same discount, with a revocation landing every
// cloningRevokeEvery, so the study isolates what redundancy buys: the plain
// path rides out each revocation behind one draining node and a slow
// failover, while clone-to-k and hedged dispatch keep a second pool serving.
const (
	cloningSpotDiscount = 0.65
	cloningSpotFraction = 1.0
	cloningRevokeEvery  = 45 * time.Second
	cloningRevokeNotice = 2 * time.Second
)

// cloningSchemes are the swept schemes in plotting order: the split-dispatch
// baseline, clone-to-k (k=2,3), the synchronized-service cloning variant of
// arXiv 2002.04416, and hedged dispatch at two trigger percentiles.
func cloningSchemes() []core.Scheme {
	return []core.Scheme{
		core.NewPaldia(),
		core.NewPaldiaCloneK(2, false),
		core.NewPaldiaCloneK(3, false),
		core.NewPaldiaCloneK(2, true),
		core.NewPaldiaHedged(90),
		core.NewPaldiaHedged(95),
	}
}

// CloningFrontier sweeps redundant dispatch — clone-to-k racing with
// cancel-on-first-complete, the synchronized-service variant, and hedged
// backup requests — against plain Eq. (1) splitting, on the diurnal
// Wikipedia trace and the erratic Twitter trace, all under spot capacity
// with periodic revocation. The frontier it draws: how much tail latency
// and failure masking each redundancy level buys, at what cost multiple.
func CloningFrontier(o Options) *Table {
	o = o.normalize()
	t := &Table{
		ID:    "cloning-frontier",
		Title: "Redundant dispatch vs Eq. (1) splitting under spot revocation",
		Columns: []string{"trace", "model", "scheme",
			"SLO compliance", "failed", "cost", "P99"},
	}

	resnet := model.MustByName("ResNet 50")
	wikiDays := int(float64(forecastWikiDays)*o.Scale + 0.5)
	if wikiDays < 1 {
		wikiDays = 1
	}
	wikiGen := func(rng *sim.RNG) *trace.Trace {
		return trace.Wikipedia(rng, forecastWikiPeakRPS, wikiDays, forecastWikiCompression)
	}
	dpn := model.MustByName("DPN 92")
	azureMean := dpn.DefaultPeakRPS() * 55 / 673
	twitterGen := func(rng *sim.RNG) *trace.Trace {
		return trace.Twitter(rng, 5*azureMean, o.dur(trace.TwitterDuration))
	}

	studies := []struct {
		label string
		m     model.Spec
		gen   traceGen
	}{
		{"Wikipedia", resnet, wikiGen},
		{"Twitter", dpn, twitterGen},
	}
	schemes := cloningSchemes()
	spot := func(cfg *core.Config) {
		cfg.SpotDiscount = cloningSpotDiscount
		cfg.SpotFraction = cloningSpotFraction
		cfg.RevokeEvery = cloningRevokeEvery
		cfg.RevokeNotice = cloningRevokeNotice
	}

	var cells []cell
	for _, s := range studies {
		for _, sch := range schemes {
			cells = append(cells, cell{m: s.m, gen: s.gen, scheme: sch, mut: spot})
		}
	}
	aggs := runCells(o, cells)

	var groups, names []string
	for _, sch := range schemes {
		names = append(names, sch.Name())
	}
	var p99s, costs [][]float64
	for si, s := range studies {
		groups = append(groups, s.label)
		var pvals, dvals []float64
		for ni, sch := range schemes {
			a := aggs[si*len(schemes)+ni]
			failed := 0.0
			for _, res := range a.Results {
				if res.Requests > 0 {
					failed += float64(res.FailedRequests) / float64(res.Requests)
				}
			}
			failed /= float64(len(a.Results))
			t.Rows = append(t.Rows, []string{
				s.label, s.m.Name, sch.Name(),
				pct(a.Compliance), pct(failed), dollars(a.Cost), msec(a.P99),
			})
			pvals = append(pvals, float64(a.P99)/float64(time.Millisecond))
			dvals = append(dvals, a.Cost)
		}
		p99s = append(p99s, pvals)
		costs = append(costs, dvals)
	}

	attachGroupedBars(t, "cloning-frontier-p99",
		"P99 latency (ms) under spot revocation", groups, names, p99s, 0, "ms")
	attachGroupedBars(t, "cloning-frontier-cost",
		"Cost (USD) by redundancy level", groups, names, costs, 0, "$")
	t.Notes = append(t.Notes,
		fmt.Sprintf("every scheme runs fully on spot capacity (discount %.0f%%) with a revocation every %v "+
			"and %v notice; the baseline and the redundant schemes face the identical revocation sequence",
			cloningSpotDiscount*100, cloningRevokeEvery, cloningRevokeNotice),
		"clone-k places k copies of each batch on k distinct GPU pools and cancels the losers when the "+
			"first completes; the (sync) variant completes only when every copy finishes (arXiv 2002.04416)",
		"hedge-p launches a backup copy once a request's age crosses the online p-th completion-latency "+
			"percentile, so backups spawn only for stragglers — revocation victims included")
	return t
}

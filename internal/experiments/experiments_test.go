package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// tiny keeps experiment tests fast.
func tiny() Options { return Options{Seed: 1, Reps: 1, Scale: 0.05} }

// TestStreamingOptionDeterministic: Options.Streaming reroutes every
// simulation through the lazy arrival path and must leave every rendered
// table byte-identical — both the single-tenant dispatcher (run) and the
// multi-tenant one (runMulti).
func TestStreamingOptionDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func(o Options) *Table
	}{
		{"fig5", Fig5},
		{"multitenant", MultiTenant},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := tiny()
			plain := tc.gen(o).String()
			o.Streaming = true
			streamed := tc.gen(o).String()
			if plain != streamed {
				t.Errorf("Streaming changed the table:\n--- plain ---\n%s\n--- streaming ---\n%s", plain, streamed)
			}
		})
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.Reps != 1 || o.Scale != 1 || o.Seed == 0 {
		t.Fatalf("normalize gave %+v", o)
	}
	if d := (Options{Scale: 0.001}).normalize().dur(25 * time.Minute); d < 30*time.Second {
		t.Fatalf("scaled duration %v below floor", d)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "x1",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"foo", "1"}, {"bar", "22"}},
		Notes:   []string{"a note"},
	}
	s := tab.String()
	for _, want := range []string{"X1", "demo", "foo", "22", "a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| foo | 1 |") {
		t.Errorf("Markdown() malformed:\n%s", md)
	}
}

func TestTableCellHelpers(t *testing.T) {
	tab := &Table{Rows: [][]string{{"x", "1"}, {"y", "2"}}}
	if tab.Cell(1, 1) != "2" || tab.Cell(5, 0) != "" || tab.Cell(0, 9) != "" {
		t.Fatal("Cell broken")
	}
	if tab.FindRow(0, "y") != 1 || tab.FindRow(0, "zzz") != -1 {
		t.Fatal("FindRow broken")
	}
}

func TestParsePctRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		v := float64(raw) / 65535
		got := ParsePct(pct(v))
		return math.Abs(got-v) < 0.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if ParsePct("n/a") != -1 || ParsePct("") != -1 {
		t.Fatal("malformed cells must parse to -1")
	}
}

func TestRegistryMatchesOrder(t *testing.T) {
	reg := Registry()
	order := Order()
	if len(reg) != len(order) {
		t.Fatalf("registry has %d entries, order %d", len(reg), len(order))
	}
	for _, id := range order {
		if reg[id] == nil {
			t.Fatalf("ordered id %q missing from registry", id)
		}
	}
	ids := IDs()
	if len(ids) != len(reg) {
		t.Fatal("IDs() incomplete")
	}
}

func TestTable2Static(t *testing.T) {
	tab := Table2()
	if len(tab.Rows) != 6 {
		t.Fatalf("%d hardware rows, want 6", len(tab.Rows))
	}
}

func TestCPUvsGPUCostClaim(t *testing.T) {
	tab := CPUvsGPUCost()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "more") {
		t.Fatal("missing cost-comparison note")
	}
}

func TestFig3Shape(t *testing.T) {
	tab := Fig3(tiny())
	if len(tab.Rows) != 12 {
		t.Fatalf("fig3 rows = %d, want 12 vision models", len(tab.Rows))
	}
	if len(tab.Columns) != 6 {
		t.Fatalf("fig3 columns = %d, want model + 5 schemes", len(tab.Columns))
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			if v := ParsePct(cell); v < 0 || v > 1 {
				t.Fatalf("bad compliance cell %q", cell)
			}
		}
	}
}

func TestFig9LLMRows(t *testing.T) {
	tab := Fig9(tiny())
	if len(tab.Rows) != 4 {
		t.Fatalf("fig9 rows = %d, want 4 language models", len(tab.Rows))
	}
}

func TestFig13Scenarios(t *testing.T) {
	tab := Fig13(tiny())
	exhaustion, failures := 0, 0
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "R. Exhaustion") {
			exhaustion++
		}
		if strings.HasPrefix(row[0], "Node failures") {
			failures++
		}
	}
	if exhaustion != 3 || failures != 5 {
		t.Fatalf("fig13 scenario rows = %d/%d, want 3/5", exhaustion, failures)
	}
}

func TestColdStartsShowsReduction(t *testing.T) {
	tab := ColdStarts(Options{Seed: 3, Reps: 1, Scale: 0.2})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var with, without float64
	if _, err := parseUint(tab.Cell(0, 1), &with); err != nil {
		t.Fatal(err)
	}
	if _, err := parseUint(tab.Cell(1, 1), &without); err != nil {
		t.Fatal(err)
	}
	if with >= without {
		t.Fatalf("keep-alive boots %v not below immediate-termination boots %v", with, without)
	}
	if 1-with/without < 0.5 {
		t.Fatalf("cold-start reduction only %.0f%%; want substantial", (1-with/without)*100)
	}
}

func TestPeakGoodput(t *testing.T) {
	tr := trace.Azure(sim.NewRNG(42), 450, 5*time.Minute)
	// A collector where every request is served instantly: goodput must
	// equal the arrival rate over the peak windows, and that rate must be
	// well above the trace mean.
	c := metrics.NewCollector(200 * time.Millisecond)
	for _, a := range tr.Arrivals {
		c.Add(metrics.Record{Arrival: a, Latency: time.Millisecond})
	}
	g, arr := peakGoodput(c, tr)
	if math.Abs(g-arr) > 1e-9 {
		t.Fatalf("perfect serving: goodput %v != arrival %v", g, arr)
	}
	if arr < 2*tr.MeanRPS() {
		t.Fatalf("peak-window arrival %.0f not well above trace mean %.0f", arr, tr.MeanRPS())
	}
}

func TestFig1SanityShape(t *testing.T) {
	tab := Fig1(Options{Seed: 5, Reps: 1, Scale: 0.08})
	if len(tab.Rows) != 10 {
		t.Fatalf("fig1 rows = %d, want 5 schemes x 2 workloads", len(tab.Rows))
	}
	// The (P) rows on the V100 must be (near-)perfect.
	for _, row := range tab.Rows {
		if strings.Contains(row[0], "(P)") {
			if v := ParsePct(row[3]); v < 0.99 {
				t.Errorf("(P) scheme %s compliance %s; want ~100%%", row[0], row[3])
			}
		}
	}
}

func TestFig1RateScaleStable(t *testing.T) {
	s := fig1RateScale()
	if s < 0.3 || s > 4 {
		t.Fatalf("fig1 rate scale %.2f implausible", s)
	}
	if fig1RateScale() != s {
		t.Fatal("rate scale not deterministic")
	}
}

func TestExhaustionRateTracksCapacity(t *testing.T) {
	google := model.MustByName("GoogleNet")
	r := ExhaustionRate(google)
	if r < 1000 {
		t.Fatalf("exhaustion rate %.0f too low for the calibrated V100", r)
	}
}

func TestNormalizeMax(t *testing.T) {
	out := normalizeMax([]float64{2, 4, 1})
	want := []float64{0.5, 1, 0.25}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("normalizeMax = %v", out)
		}
	}
	if z := normalizeMax([]float64{0, 0}); z[0] != 0 || z[1] != 0 {
		t.Fatal("zero input mishandled")
	}
}

// parseUint scans a decimal cell.
func parseUint(cell string, out *float64) (int, error) {
	var v float64
	n, err := fmt.Sscan(cell, &v)
	*out = v
	return n, err
}

func TestFig3AttachesSVG(t *testing.T) {
	tab := Fig3(tiny())
	if len(tab.SVGs) != 1 || tab.SVGs[0].Name != "fig3-slo-compliance" {
		t.Fatalf("fig3 SVGs = %+v", tab.SVGs)
	}
	var buf bytes.Buffer
	if err := tab.SVGs[0].Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("SVG render empty")
	}
}

func TestFig6AttachesCDFSVGAndPlot(t *testing.T) {
	tab := Fig6(tiny())
	if tab.Plot == "" {
		t.Fatal("fig6 missing terminal plot")
	}
	if len(tab.SVGs) != 1 {
		t.Fatalf("fig6 SVGs = %d, want 1", len(tab.SVGs))
	}
	if !strings.Contains(tab.Markdown(), "```") {
		t.Fatal("markdown missing plot code block")
	}
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/mixedload"
	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Fig9 regenerates the large-language-model SLO compliance comparison.
func Fig9(o Options) *Table {
	o = o.normalize()
	t := &Table{
		ID:      "fig9",
		Title:   "SLO compliance of all schemes for large language models (Azure trace, 8 rps peak)",
		Columns: []string{"model"},
	}
	for _, s := range standardSchemes() {
		t.Columns = append(t.Columns, s.Name())
	}
	var groups []string
	var values [][]float64
	names := schemeNames()
	schemes := standardSchemes()
	models := model.LanguageModels()
	var cells []cell
	for _, m := range models {
		for _, s := range schemes {
			cells = append(cells, cell{m: m, gen: azureGen(o, m), scheme: s})
		}
	}
	aggs := runCells(o, cells)
	for mi, m := range models {
		row := []string{m.Name}
		vals := make([]float64, 0, len(names))
		for i := range schemes {
			a := aggs[mi*len(schemes)+i]
			row = append(row, pct(a.Compliance))
			vals = append(vals, a.Compliance*100)
		}
		t.Rows = append(t.Rows, row)
		groups = append(groups, m.Name)
		values = append(values, vals)
	}
	attachGroupedBars(t, "fig9-llm-slo-compliance",
		"SLO compliance, language models", groups, names, values, 100, "%")
	return t
}

// schemeNames returns the standard schemes' display names.
func schemeNames() []string {
	var names []string
	for _, s := range standardSchemes() {
		names = append(names, s.Name())
	}
	return names
}

// Fig10 regenerates the large-language-model cost comparison.
func Fig10(o Options) *Table {
	o = o.normalize()
	t := &Table{
		ID:      "fig10",
		Title:   "Cost of all schemes for large language models",
		Columns: []string{"model"},
	}
	for _, s := range standardSchemes() {
		t.Columns = append(t.Columns, s.Name())
	}
	var groups []string
	var values [][]float64
	schemes := standardSchemes()
	models := model.LanguageModels()
	var cells []cell
	for _, m := range models {
		for _, s := range schemes {
			cells = append(cells, cell{m: m, gen: azureGen(o, m), scheme: s})
		}
	}
	aggs := runCells(o, cells)
	for mi, m := range models {
		row := []string{m.Name}
		var vals []float64
		for i := range schemes {
			a := aggs[mi*len(schemes)+i]
			row = append(row, dollars(a.Cost))
			vals = append(vals, a.Cost)
		}
		t.Rows = append(t.Rows, row)
		groups = append(groups, m.Name)
		values = append(values, vals)
	}
	attachGroupedBars(t, "fig10-llm-cost",
		"Cost (USD), language models", groups, schemeNames(), values, 0, "$")
	return t
}

// Fig12 regenerates the additional real-world-trace studies: the diurnal
// Wikipedia trace with ResNet 50 and the erratic, dense Twitter trace with
// DPN 92.
func Fig12(o Options) *Table {
	o = o.normalize()
	t := &Table{
		ID:      "fig12",
		Title:   "Cost vs SLO compliance under realistic traces",
		Columns: []string{"trace", "model", "scheme", "SLO compliance", "cost"},
	}

	resnet := model.MustByName("ResNet 50")
	wiki := func(rng *sim.RNG) *trace.Trace {
		return trace.Wikipedia(rng, 170, 5, trace.WikipediaCompression)
	}
	dpn := model.MustByName("DPN 92")
	// The paper's Twitter sample has 5x the Azure trace's mean rate.
	azureMean := dpn.DefaultPeakRPS() * 55 / 673
	twitter := func(rng *sim.RNG) *trace.Trace {
		return trace.Twitter(rng, 5*azureMean, o.dur(trace.TwitterDuration))
	}
	schemes := standardSchemes()
	var cells []cell
	for _, s := range schemes {
		cells = append(cells, cell{m: resnet, gen: wiki, scheme: s})
	}
	for _, s := range schemes {
		cells = append(cells, cell{m: dpn, gen: twitter, scheme: s})
	}
	aggs := runCells(o, cells)
	for i, s := range schemes {
		a := aggs[i]
		t.Rows = append(t.Rows, []string{
			"Wikipedia", resnet.Name, s.Name(), pct(a.Compliance), dollars(a.Cost)})
	}
	for i, s := range schemes {
		a := aggs[len(schemes)+i]
		t.Rows = append(t.Rows, []string{
			"Twitter", dpn.Name, s.Name(), pct(a.Compliance), dollars(a.Cost)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Wikipedia trace time-compressed %dx (5 days -> %v); rates preserved",
			trace.WikipediaCompression, 5*24*time.Hour/trace.WikipediaCompression))
	return t
}

// ExhaustionRate returns the arrival rate of the resource-exhaustion study:
// a fixed multiple of the most performant GPU's serial capacity for the
// workload. The paper pinned this at 700 rps against its V100; our V100 is
// calibrated faster, so the rate scales with measured capacity.
func ExhaustionRate(m model.Spec) float64 {
	v100 := hardware.MostPerformant(hardware.GPU)
	return 1.0 * profile.ThroughputRPS(m, v100)
}

// Fig13 regenerates the two adverse scenarios: resource exhaustion
// (GoogleNet under a Poisson flood at the V100's capacity) and induced node
// failures (DenseNet 121, one minute down every minute).
func Fig13(o Options) *Table {
	o = o.normalize()
	t := &Table{
		ID:      "fig13",
		Title:   "Adverse scenarios: resource exhaustion and node failures",
		Columns: []string{"scenario", "scheme", "SLO compliance", "cost"},
	}

	// (a) Resource exhaustion: every scheme resorts to the V100 (the paper:
	// "all schemes resort to using the V100 GPU ... thereby costing the
	// same"); only the sharing policy differs.
	google := model.MustByName("GoogleNet")
	v100 := hardware.MostPerformant(hardware.GPU)
	rate := ExhaustionRate(google)
	poisson := func(rng *sim.RNG) *trace.Trace {
		return trace.Poisson(rng, rate, o.dur(10*time.Minute))
	}
	pin := func(cfg *core.Config) { cfg.InitialHardware = &v100 }
	exhaustionSchemes := []core.Scheme{
		core.NewMoleculePerf(),
		core.NewINFlessLlamaPerf(),
		core.NewPaldiaPinned(v100),
	}

	// (b) Node failures: the serving node fails for a minute, every minute.
	dense := model.MustByName("DenseNet 121")
	failures := func(cfg *core.Config) {
		cfg.FailureEvery = time.Minute
		cfg.FailureDuration = time.Minute
	}

	var cells []cell
	for _, s := range exhaustionSchemes {
		cells = append(cells, cell{m: google, gen: poisson, scheme: s, mut: pin})
	}
	failureSchemes := standardSchemes()
	for _, s := range failureSchemes {
		cells = append(cells, cell{m: dense, gen: azureGen(o, dense), scheme: s, mut: failures})
	}
	aggs := runCells(o, cells)
	for i, s := range exhaustionSchemes {
		a := aggs[i]
		t.Rows = append(t.Rows, []string{
			"R. Exhaustion (GoogleNet)", s.Name(), pct(a.Compliance), dollars(a.Cost)})
	}
	for i, s := range failureSchemes {
		a := aggs[len(exhaustionSchemes)+i]
		t.Rows = append(t.Rows, []string{
			"Node failures (DenseNet 121)", s.Name(), pct(a.Compliance), dollars(a.Cost)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("exhaustion rate %.0f rps = 1.0x the calibrated V100 serial capacity "+
			"(the paper's 700 rps played the same role against its slower V100)", rate),
		"under failures every scheme switches to the more performant least-cost node, per the paper's setup")
	return t
}

// Table3 regenerates the mixed-workloads study: SeBS CPU-bound serverless
// functions co-resident on every worker node.
func Table3(o Options) *Table {
	o = o.normalize()
	m := model.MustByName("DenseNet 121")
	loads := mixedload.SeBS()
	mut := func(cfg *core.Config) {
		cfg.HostFactorCPU = mixedload.HostFactor(hardware.CPU, loads)
		cfg.HostFactorGPU = mixedload.HostFactor(hardware.GPU, loads)
	}
	t := &Table{
		ID:      "table3",
		Title:   "SLO compliance under co-resident 'regular' serverless workloads (SeBS)",
		Columns: []string{"scheme", "SLO compliance (mixed)", "SLO compliance (clean)"},
	}
	schemes := standardSchemes()
	var cells []cell
	for _, s := range schemes {
		cells = append(cells, cell{m: m, gen: azureGen(o, m), scheme: s, mut: mut})
		cells = append(cells, cell{m: m, gen: azureGen(o, m), scheme: s})
	}
	aggs := runCells(o, cells)
	for i, s := range schemes {
		mixed, clean := aggs[2*i], aggs[2*i+1]
		t.Rows = append(t.Rows, []string{s.Name(), pct(mixed.Compliance), pct(clean.Compliance)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"host contention factors: CPU nodes x%.2f, GPU nodes x%.2f (file compression, dynamic HTML, thumbnailing)",
		mixedload.HostFactor(hardware.CPU, loads), mixedload.HostFactor(hardware.GPU, loads)))
	return t
}

// ColdStarts quantifies the delayed-termination claim (§IV-C): container
// boots with the 10-minute keep-alive versus immediate scale-down.
func ColdStarts(o Options) *Table {
	o = o.normalize()
	m := model.MustByName("ResNet 50")
	run := func(keepAlive time.Duration) core.Result {
		rng := sim.NewRNG(o.Seed).Child("coldstarts")
		return o.run(core.Config{
			Model:     m,
			Trace:     azureGen(o, m)(rng),
			Scheme:    core.NewPaldia(),
			KeepAlive: keepAlive,
		})
	}
	// KeepAlive < 0 is not meaningful; 1ns emulates immediate termination
	// while keeping config defaults from kicking in.
	keepAlives := []time.Duration{container.DefaultKeepAlive, time.Nanosecond}
	results := make([]core.Result, len(keepAlives))
	o.parRange(len(keepAlives), func(i int) { results[i] = run(keepAlives[i]) })
	with, without := results[0], results[1]
	reduction := 0.0
	if without.Boots > 0 {
		reduction = 1 - float64(with.Boots)/float64(without.Boots)
	}
	t := &Table{
		ID:      "coldstarts",
		Title:   "Cold starts: delayed termination (10 min keep-alive) vs immediate scale-down",
		Columns: []string{"policy", "container boots", "request-blocking cold starts", "SLO compliance"},
		Rows: [][]string{
			{"keep-alive 10 min", fmt.Sprint(with.Boots), fmt.Sprint(with.SyncColdStarts), pct(with.SLOCompliance)},
			{"terminate immediately", fmt.Sprint(without.Boots), fmt.Sprint(without.SyncColdStarts), pct(without.SLOCompliance)},
		},
		Notes: []string{fmt.Sprintf("cold-start reduction: %.0f%% (the paper reports up to 98%%)", reduction*100)},
	}
	return t
}

// CPUvsGPUCost reproduces the §II motivating claim: serving ResNet 50 at
// ~750 rps on m4.xlarge CPU nodes versus one g3s.xlarge GPU node.
func CPUvsGPUCost() *Table {
	m := model.MustByName("ResNet 50")
	m4, _ := hardware.ByName("m4.xlarge")
	g3s, _ := hardware.ByName("g3s.xlarge")
	target := 750.0
	per := profile.ThroughputRPS(m, m4)
	n := int(target/per) + 1
	cpuCost := float64(n) * m4.CostPerHour
	extra := (cpuCost - g3s.CostPerHour) / g3s.CostPerHour * 100
	return &Table{
		ID:      "cpugpu",
		Title:   "§II claim: ResNet 50 at ~750 rps, CPU fleet vs one GPU node",
		Columns: []string{"option", "nodes", "throughput rps", "cost $/h"},
		Rows: [][]string{
			{"m4.xlarge fleet", fmt.Sprint(n), fmt.Sprintf("%.0f", float64(n)*per), fmt.Sprintf("$%.2f", cpuCost)},
			{"g3s.xlarge (M60)", "1", fmt.Sprintf("%.0f", profile.ThroughputRPS(m, g3s)), fmt.Sprintf("$%.2f", g3s.CostPerHour)},
		},
		Notes: []string{fmt.Sprintf("CPU fleet costs %.0f%% more (paper: 86%%)", extra)},
	}
}

package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The ablations quantify the design choices DESIGN.md calls out: how much of
// Paldia's win comes from prediction, from the hybrid split, from the
// debounced hardware switching, and how accurate the Eq. (1) performance
// model is against the simulated ground truth (the paper reports <4% error
// for its approximation).

// AblationPrediction compares full Paldia against a variant whose hardware
// selection sees only the observed (not forecast) rate — isolating the value
// of the EWMA-with-trend predictor and the procurement lead.
func AblationPrediction(o Options) *Table {
	o = o.normalize()
	t := &Table{
		ID:      "ablation-prediction",
		Title:   "Ablation: predictive vs reactive hardware selection",
		Columns: []string{"trace", "variant", "SLO compliance", "P99", "cost", "hw switches"},
	}
	variants := []struct {
		name string
		s    core.Scheme
	}{
		{"Paldia (predictive)", core.NewPaldia()},
		{"Paldia w/o prediction", core.NewPaldiaReactive()},
		{"Oracle (clairvoyant)", core.NewOracle()},
	}

	resnet := model.MustByName("ResNet 50")
	dpn := model.MustByName("DPN 92")
	azureMean := dpn.DefaultPeakRPS() * 55 / 673
	cases := []struct {
		label string
		m     model.Spec
		gen   traceGen
	}{
		{"Azure (gentle ramps)", resnet, azureGen(o, resnet)},
		{"Twitter (erratic)", dpn, func(rng *sim.RNG) *trace.Trace {
			return trace.Twitter(rng, 5*azureMean, o.dur(trace.TwitterDuration))
		}},
	}
	var cells []cell
	for _, c := range cases {
		for _, v := range variants {
			cells = append(cells, cell{m: c.m, gen: c.gen, scheme: v.s})
		}
	}
	aggs := runCells(o, cells)
	for ci, c := range cases {
		for vi, v := range variants {
			a := aggs[ci*len(variants)+vi]
			switches := 0
			for _, r := range a.Results {
				switches += r.Switches
			}
			t.Rows = append(t.Rows, []string{
				c.label, v.name, pct(a.Compliance), msec(a.P99), dollars(a.Cost),
				fmt.Sprint(switches / len(a.Results)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"on gentle ramps the observed-rate variant can keep up; the forecast's lead "+
			"matters as traffic gets steeper and more erratic")
	return t
}

// AblationHybrid compares Paldia against variants whose Job Distributor is
// pinned to all-spatial or all-queued while keeping Paldia's hardware
// selection — isolating the hybrid split's contribution.
func AblationHybrid(o Options) *Table {
	o = o.normalize()
	m := model.MustByName("GoogleNet")
	v100 := hardware.MostPerformant(hardware.GPU)
	rate := ExhaustionRate(m)
	gen := func(rng *sim.RNG) *trace.Trace {
		return trace.Poisson(rng, rate, o.dur(10*time.Minute))
	}
	pin := func(cfg *core.Config) { cfg.InitialHardware = &v100 }
	t := &Table{
		ID:      "ablation-hybrid",
		Title:   "Ablation: hybrid vs pure sharing at the V100's capacity (GoogleNet, Poisson)",
		Columns: []string{"job distribution", "SLO compliance", "P99"},
	}
	variants := []struct {
		name string
		s    core.Scheme
	}{
		{"hybrid (Eq. 1 split)", core.NewPaldiaPinned(v100)},
		{"all spatial (MPS only)", core.NewMPSOnly(v100, "(V100)")},
		{"all queued (time only)", core.NewTimeSharedOnly(v100, "(V100)")},
	}
	var cells []cell
	for _, v := range variants {
		cells = append(cells, cell{m: m, gen: gen, scheme: v.s, mut: pin})
	}
	for i, a := range runCells(o, cells) {
		t.Rows = append(t.Rows, []string{variants[i].name, pct(a.Compliance), msec(a.P99)})
	}
	return t
}

// AblationWaitLimit sweeps Algorithm 1's wait_limit (the consecutive-
// mismatch debounce before reconfiguring).
func AblationWaitLimit(o Options) *Table {
	o = o.normalize()
	m := model.MustByName("ResNet 50")
	t := &Table{
		ID:      "ablation-waitlimit",
		Title:   "Ablation: Algorithm 1 wait_limit debounce (ResNet 50, Azure trace)",
		Columns: []string{"wait_limit", "SLO compliance", "cost", "hw switches"},
	}
	limits := []int{1, 3, 6, 12}
	var cells []cell
	for _, wl := range limits {
		cells = append(cells, cell{m: m, gen: azureGen(o, m), scheme: core.NewPaldiaWithWaitLimit(wl)})
	}
	for i, a := range runCells(o, cells) {
		switches := 0
		for _, r := range a.Results {
			switches += r.Switches
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(limits[i]), pct(a.Compliance), dollars(a.Cost),
			fmt.Sprint(switches / len(a.Results)),
		})
	}
	t.Notes = append(t.Notes, "the paper uses 3; low values chase noise, high values miss surges")
	return t
}

// AblationKeepAlive sweeps the delayed-termination window.
func AblationKeepAlive(o Options) *Table {
	o = o.normalize()
	m := model.MustByName("ResNet 50")
	t := &Table{
		ID:      "ablation-keepalive",
		Title:   "Ablation: container keep-alive window (ResNet 50, Azure trace)",
		Columns: []string{"keep-alive", "container boots", "blocking cold starts", "SLO compliance"},
	}
	kas := []time.Duration{time.Nanosecond, time.Minute, 10 * time.Minute, time.Hour}
	var cells []cell
	for _, ka := range kas {
		ka := ka
		mut := func(cfg *core.Config) { cfg.KeepAlive = ka }
		cells = append(cells, cell{m: m, gen: azureGen(o, m), scheme: core.NewPaldia(), mut: mut})
	}
	for i, a := range runCells(o, cells) {
		var boots, colds uint64
		for _, r := range a.Results {
			boots += r.Boots
			colds += r.SyncColdStarts
		}
		n := uint64(len(a.Results))
		label := kas[i].String()
		if kas[i] == time.Nanosecond {
			label = "immediate"
		}
		t.Rows = append(t.Rows, []string{
			label, fmt.Sprint(boots / n), fmt.Sprint(colds / n), pct(a.Compliance),
		})
	}
	return t
}

// AblationDispatchWindow sweeps the batching/dispatch window.
func AblationDispatchWindow(o Options) *Table {
	o = o.normalize()
	m := model.MustByName("ResNet 50")
	t := &Table{
		ID:      "ablation-window",
		Title:   "Ablation: dispatch window (ResNet 50, Azure trace)",
		Columns: []string{"window", "SLO compliance", "P99", "GPU util"},
	}
	windows := []time.Duration{10 * time.Millisecond, 25 * time.Millisecond,
		50 * time.Millisecond, 100 * time.Millisecond}
	var cells []cell
	for _, w := range windows {
		w := w
		mut := func(cfg *core.Config) { cfg.DispatchWindow = w }
		cells = append(cells, cell{m: m, gen: azureGen(o, m), scheme: core.NewPaldia(), mut: mut})
	}
	for i, a := range runCells(o, cells) {
		t.Rows = append(t.Rows, []string{
			windows[i].String(), pct(a.Compliance), msec(a.P99), pct(a.UtilGPU),
		})
	}
	t.Notes = append(t.Notes,
		"larger windows amortize launch overhead but spend SLO budget on batching wait")
	return t
}

// ModelError validates the scheduler's performance model against the
// simulated ground truth, the analogue of the paper's "<4% error" claim for
// its queued-execution approximation: random hybrid workloads are executed
// on an idle device and the realized completion time of the last request is
// compared with Eq. (1)'s prediction.
func ModelError(o Options) *Table {
	o = o.normalize()
	rng := sim.NewRNG(o.Seed).Stream("model-error")
	gpus := hardware.GPUs()
	models := model.VisionModels()

	var errs []float64
	trials := 200
	for trial := 0; trial < trials; trial++ {
		m := models[rng.Intn(len(models))]
		hw := gpus[rng.Intn(len(gpus))]
		e := profile.Lookup(m, hw)
		n := (1 + rng.Intn(8)) * e.PreferredBatch / 2 // 0.5..4 batches worth
		if n < 1 {
			n = 1
		}
		in := perfmodel.Inputs{
			Solo:        e.SoloBatch,
			BatchSize:   e.PreferredBatch,
			FBR:         e.FBR,
			ComputeFrac: e.ComputeFrac,
			N:           n,
			SLO:         time.Second,
		}
		y, predicted, _ := perfmodel.BestY(in)

		// Ground truth: submit the same split to an idle device and measure
		// the last completion.
		eng := sim.NewEngine()
		dev := device.New(eng, hw, 0)
		var last time.Duration
		submit := func(count int, mode device.Mode) {
			for count > 0 {
				b := count
				if b > e.PreferredBatch {
					b = e.PreferredBatch
				}
				count -= b
				dev.Submit(&device.Job{
					Batch:   b,
					Solo:    profile.Solo(m, hw, b),
					FBR:     e.FBR,
					Compute: profile.ComputeFraction(m, hw, b),
					Mode:    mode,
					Done: func(j *device.Job) {
						if j.Finished > last {
							last = j.Finished
						}
					},
				})
			}
		}
		submit(n-y, device.Spatial)
		submit(y, device.Queued)
		eng.RunAll()

		if last > 0 {
			err := math.Abs(float64(predicted-last)) / float64(last)
			errs = append(errs, err)
		}
	}
	sort.Float64s(errs)
	mean := 0.0
	for _, e := range errs {
		mean += e
	}
	mean /= float64(len(errs))
	q := func(p float64) float64 { return errs[int(p*float64(len(errs)-1))] }

	return &Table{
		ID:      "modelerror",
		Title:   "Eq. (1) prediction error vs simulated ground truth (random hybrid workloads)",
		Columns: []string{"statistic", "relative error"},
		Rows: [][]string{
			{"mean", fmt.Sprintf("%.2f%%", mean*100)},
			{"median", fmt.Sprintf("%.2f%%", q(0.5)*100)},
			{"P90", fmt.Sprintf("%.2f%%", q(0.9)*100)},
			{"max", fmt.Sprintf("%.2f%%", q(1.0)*100)},
		},
		Notes: []string{fmt.Sprintf("%d random (model, GPU, N) trials on an idle device; "+
			"the paper reports <4%% error for its queued-execution approximation", trials)},
	}
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/plot"
	"repro/internal/sim"
	"repro/internal/svgplot"
	"repro/internal/trace"
)

// Fig3 regenerates the primary SLO-compliance comparison: all 12 vision
// models x the five schemes under the Azure serverless trace.
func Fig3(o Options) *Table {
	o = o.normalize()
	t := &Table{
		ID:      "fig3",
		Title:   "SLO compliance of all schemes for all vision models (Azure trace)",
		Columns: []string{"model"},
	}
	schemes := standardSchemes()
	for _, s := range schemes {
		t.Columns = append(t.Columns, s.Name())
	}
	models := model.VisionModels()
	var cells []cell
	for _, m := range models {
		for _, s := range schemes {
			cells = append(cells, cell{m: m, gen: azureGen(o, m), scheme: s})
		}
	}
	aggs := runCells(o, cells)
	sums := make([]float64, len(schemes))
	var groups []string
	var values [][]float64
	for mi, m := range models {
		row := []string{m.Name}
		vals := make([]float64, len(schemes))
		for i := range schemes {
			a := aggs[mi*len(schemes)+i]
			row = append(row, pct(a.Compliance))
			sums[i] += a.Compliance
			vals[i] = a.Compliance * 100
		}
		t.Rows = append(t.Rows, row)
		groups = append(groups, m.Name)
		values = append(values, vals)
	}
	bars := make([]plot.Bar, len(schemes))
	names := make([]string, len(schemes))
	for i, s := range schemes {
		bars[i] = plot.Bar{Label: s.Name(), Value: sums[i] / float64(len(t.Rows)) * 100}
		names[i] = s.Name()
	}
	t.Plot = plot.BarChart("mean SLO compliance across vision models", bars, 40, "%")
	attachGroupedBars(t, "fig3-slo-compliance",
		"SLO compliance, vision models (Azure trace)", groups, names, values, 100, "%")
	return t
}

// Fig4 regenerates the tail-latency breakdowns for ResNet 50 and VGG 19:
// minimum possible execution time, queueing delay (batching + device
// queueing), and interference overhead at P99.
func Fig4(o Options) *Table {
	o = o.normalize()
	t := &Table{
		ID:    "fig4",
		Title: "P99 latency breakdown (min possible / queueing / interference)",
		Columns: []string{"model", "scheme", "P99 total", "min possible",
			"queueing", "interference", "cold start", "SLO compliance"},
	}
	var cells []cell
	for _, name := range []string{"ResNet 50", "VGG 19"} {
		m := model.MustByName(name)
		for _, s := range standardSchemes() {
			cells = append(cells, cell{m: m, gen: azureGen(o, m), scheme: s})
		}
	}
	for _, a := range runCells(o, cells) {
		// Breakdown from the first repetition's collector (the paper
		// plots one representative run's P99 decomposition).
		res := a.Results[0]
		b := res.Collector.TailBreakdown(99, 99.9)
		t.Rows = append(t.Rows, []string{
			res.Model, res.Scheme,
			msec(b.Total), msec(b.MinExec),
			msec(b.QueueDelay + b.BatchWait),
			msec(b.Interference), msec(b.ColdStart),
			pct(a.Compliance),
		})
	}
	t.Notes = append(t.Notes,
		"queueing aggregates batching wait and device queueing (the paper folds both into queueing delay)")
	return t
}

// Fig5 regenerates normalized cost vs SLO compliance for a high-FBR model
// (DPN 92) and a low-FBR model (EfficientNet B0).
func Fig5(o Options) *Table {
	o = o.normalize()
	t := &Table{
		ID:      "fig5",
		Title:   "Normalized cost vs SLO compliance (DPN 92 high-FBR, EfficientNet B0 low-FBR)",
		Columns: []string{"model", "scheme", "normalized cost", "cost", "SLO compliance"},
	}
	schemes := standardSchemes()
	models := []model.Spec{model.MustByName("DPN 92"), model.MustByName("EfficientNet B0")}
	var cells []cell
	for _, m := range models {
		for _, s := range schemes {
			cells = append(cells, cell{m: m, gen: azureGen(o, m), scheme: s})
		}
	}
	all := runCells(o, cells)
	for mi, m := range models {
		aggs := all[mi*len(schemes) : (mi+1)*len(schemes)]
		costs := make([]float64, len(aggs))
		for i, a := range aggs {
			costs[i] = a.Cost
		}
		norm := normalizeMax(costs)
		for i, s := range schemes {
			t.Rows = append(t.Rows, []string{
				m.Name, s.Name(),
				fmt.Sprintf("%.3f", norm[i]),
				dollars(aggs[i].Cost),
				pct(aggs[i].Compliance),
			})
		}
	}
	return t
}

// Fig6 regenerates the end-to-end latency CDF for SENet 18.
func Fig6(o Options) *Table {
	o = o.normalize()
	m := model.MustByName("SENet 18")
	t := &Table{
		ID:      "fig6",
		Title:   "CDF of end-to-end latency, SENet 18 (ms at percentile)",
		Columns: []string{"scheme", "P50", "P80", "P90", "P95", "P99", "SLO compliance"},
	}
	var names []string
	var curves [][]float64
	schemes := standardSchemes()
	var cells []cell
	for _, s := range schemes {
		cells = append(cells, cell{m: m, gen: azureGen(o, m), scheme: s})
	}
	aggs := runCells(o, cells)
	for si, s := range schemes {
		a := aggs[si]
		c := a.Results[0].Collector
		t.Rows = append(t.Rows, []string{
			s.Name(),
			msec(c.Percentile(50)), msec(c.Percentile(80)), msec(c.Percentile(90)),
			msec(c.Percentile(95)), msec(c.Percentile(99)),
			pct(a.Compliance),
		})
		var vals []float64
		for _, p := range c.CDF(60) {
			v := p.Latency.Seconds() * 1000
			if v > 400 {
				v = 400 // clip the axis at 2x SLO, like the paper's plot
			}
			vals = append(vals, v)
		}
		names = append(names, s.Name())
		curves = append(curves, vals)
	}
	t.Plot = plot.CDF("end-to-end latency CDF (ms, clipped at 400)", names, curves, 56, 12)
	var series []svgplot.LineSeries
	for i, vals := range curves {
		pts := make([][2]float64, len(vals))
		for j, v := range vals {
			pts[j] = [2]float64{v, float64(j+1) / float64(len(vals))}
		}
		series = append(series, svgplot.LineSeries{Name: names[i], Points: pts})
	}
	cdfFig := &svgplot.Lines{
		Title:  "End-to-end latency CDF, SENet 18",
		XLabel: "latency (ms)",
		YLabel: "fraction of requests",
		YMax:   1,
		Series: series,
	}
	t.SVGs = append(t.SVGs, SVGFigure{Name: "fig6-latency-cdf", Render: cdfFig.Render})
	t.Notes = append(t.Notes, "SLO is 200ms; the paper's CDF crossings map to the percentile columns")
	return t
}

// Fig7 regenerates (a) goodput during the peak-traffic periods for
// DenseNet 121 and (b) normalized average power for Simplified DLA.
func Fig7(o Options) *Table {
	o = o.normalize()
	t := &Table{
		ID:    "fig7",
		Title: "Goodput during peak traffic (DenseNet 121) and normalized power (Simplified DLA)",
		Columns: []string{"scheme", "peak arrival rps", "goodput rps", "goodput/arrival",
			"norm. power (DLA)"},
	}
	dense := model.MustByName("DenseNet 121")
	dla := model.MustByName("Simplified DLA")

	schemes := standardSchemes()
	var cells []cell
	for _, s := range schemes {
		cells = append(cells, cell{m: dense, gen: azureGen(o, dense), scheme: s})
	}
	for _, s := range schemes {
		cells = append(cells, cell{m: dla, gen: azureGen(o, dla), scheme: s})
	}
	aggs := runCells(o, cells)

	type row struct {
		goodput, arrival, power float64
	}
	rows := make([]row, len(schemes))
	for i := range schemes {
		// Goodput over the peak-traffic windows (the union of 1s windows
		// whose arrival rate exceeds half the trace peak).
		a := aggs[i]
		var g, arr float64
		for rep, res := range a.Results {
			rng := sim.NewRNG(o.Seed).Child(fmt.Sprintf("rep-%d", rep))
			tr := azureGen(o, dense)(rng)
			gw, aw := peakGoodput(res.Collector, tr)
			g += gw
			arr += aw
		}
		g /= float64(len(a.Results))
		arr /= float64(len(a.Results))

		p := aggs[len(schemes)+i]
		rows[i] = row{goodput: g, arrival: arr, power: p.Power}
	}
	powers := make([]float64, len(rows))
	for i, r := range rows {
		powers[i] = r.power
	}
	norm := normalizeMax(powers)
	for i, s := range schemes {
		t.Rows = append(t.Rows, []string{
			s.Name(),
			fmt.Sprintf("%.0f", rows[i].arrival),
			fmt.Sprintf("%.0f", rows[i].goodput),
			fmt.Sprintf("%.2f", rows[i].goodput/rows[i].arrival),
			fmt.Sprintf("%.2f", norm[i]),
		})
	}
	t.Notes = append(t.Notes,
		"goodput counted over the union of 1s windows whose arrival rate exceeds half the trace peak; ideal = arrival rate")
	return t
}

// peakGoodput computes goodput and arrival rate over the union of the
// trace's peak windows: every 1s window whose arrival rate exceeds half the
// trace peak.
func peakGoodput(c *metrics.Collector, tr *trace.Trace) (goodputRPS, arrivalRPS float64) {
	const win = time.Second
	rates := tr.RateCurve(win)
	peak := 0.0
	for _, r := range rates {
		if r > peak {
			peak = r
		}
	}
	hot := make([]bool, len(rates))
	hotSecs := 0.0
	for i, r := range rates {
		if r >= peak/2 {
			hot[i] = true
			hotSecs += win.Seconds()
		}
	}
	if hotSecs == 0 {
		return 0, 0
	}
	var ok, total int
	c.Each(func(rec metrics.Record) {
		i := int(rec.Arrival / win)
		if i >= len(hot) || !hot[i] {
			return
		}
		total++
		if !rec.Failed && rec.Latency <= c.SLO {
			ok++
		}
	})
	return float64(ok) / hotSecs, float64(total) / hotSecs
}

// Fig8 regenerates the CPU/GPU node utilization comparison for VGG 19.
func Fig8(o Options) *Table {
	o = o.normalize()
	m := model.MustByName("VGG 19")
	t := &Table{
		ID:      "fig8",
		Title:   "Compute node utilization (non-idle time), VGG 19",
		Columns: []string{"scheme", "CPU node util", "GPU node util"},
	}
	schemes := standardSchemes()
	var cells []cell
	for _, s := range schemes {
		cells = append(cells, cell{m: m, gen: azureGen(o, m), scheme: s})
	}
	for i, a := range runCells(o, cells) {
		cpu := "n/a"
		if a.UtilCPU > 0 {
			cpu = pct(a.UtilCPU)
		}
		t.Rows = append(t.Rows, []string{schemes[i].Name(), cpu, pct(a.UtilGPU)})
	}
	t.Notes = append(t.Notes,
		"the (P) schemes never hold CPU nodes, so their CPU utilization is not applicable (as in the paper)")
	return t
}

// Fig11 compares Paldia against the clairvoyant Oracle on cost and SLO
// compliance for representative vision models.
func Fig11(o Options) *Table {
	o = o.normalize()
	t := &Table{
		ID:      "fig11",
		Title:   "Paldia vs Oracle: cost and SLO compliance",
		Columns: []string{"model", "scheme", "SLO compliance", "cost"},
	}
	var cells []cell
	for _, name := range []string{"ResNet 50", "DenseNet 121", "SENet 18", "EfficientNet B0"} {
		m := model.MustByName(name)
		for _, s := range []core.Scheme{core.NewPaldia(), core.NewOracle()} {
			cells = append(cells, cell{m: m, gen: azureGen(o, m), scheme: s})
		}
	}
	for i, a := range runCells(o, cells) {
		c := cells[i]
		t.Rows = append(t.Rows, []string{c.m.Name, c.scheme.Name(), pct(a.Compliance), dollars(a.Cost)})
	}
	return t
}

// Table2 renders the hardware catalog (the paper's Table II).
func Table2() *Table {
	t := &Table{
		ID:    "table2",
		Title: "Worker node details (AWS EC2)",
		Columns: []string{"name", "primary compute hardware", "memory", "cost",
			"compute score", "mem BW GB/s"},
	}
	for _, hw := range hardware.Catalog() {
		bw := "-"
		if hw.IsGPU() {
			bw = fmt.Sprintf("%.0f", hw.MemBWGBps)
		}
		t.Rows = append(t.Rows, []string{
			hw.Name, hw.Accel, fmt.Sprintf("%.0f GB", hw.MemGB),
			fmt.Sprintf("$%.2f/h", hw.CostPerHour),
			fmt.Sprintf("%.1f", hw.ComputeScore), bw,
		})
	}
	return t
}

package svgplot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func wellFormed(t *testing.T, svg []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v\n%s", err, svg)
		}
	}
}

func TestGroupedBarsRender(t *testing.T) {
	g := &GroupedBars{
		Title:  "SLO compliance",
		Groups: []string{"ResNet 50", "VGG 19"},
		Series: []string{"Paldia", "Molecule ($)"},
		Values: [][]float64{{99.7, 89.6}, {99.4, 83.9}},
		YMax:   100,
		Unit:   "%",
	}
	var buf bytes.Buffer
	if err := g.Render(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	wellFormed(t, buf.Bytes())
	for _, want := range []string{"<svg", "SLO compliance", "Paldia", "ResNet 50", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("missing %q in SVG", want)
		}
	}
	if got := strings.Count(svg, `fill="#4477aa"`); got != 2+1 { // 2 bars + 1 legend swatch
		t.Fatalf("series-0 rects = %d, want 3", got)
	}
}

func TestGroupedBarsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&GroupedBars{Title: "x"}).Render(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
}

func TestGroupedBarsEscapesLabels(t *testing.T) {
	g := &GroupedBars{
		Title:  "a < b & c",
		Groups: []string{"<model>"},
		Series: []string{"s&s"},
		Values: [][]float64{{1}},
	}
	var buf bytes.Buffer
	if err := g.Render(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	if strings.Contains(buf.String(), "<model>") {
		t.Fatal("unescaped label leaked into SVG")
	}
}

func TestLinesRender(t *testing.T) {
	l := &Lines{
		Title:  "CDF",
		XLabel: "latency (ms)",
		YLabel: "fraction",
		YMax:   1,
		Series: []LineSeries{
			{Name: "Paldia", Points: [][2]float64{{10, 0.5}, {40, 0.99}, {50, 1}}},
			{Name: "Molecule", Points: [][2]float64{{30, 0.5}, {300, 1}}},
		},
	}
	var buf bytes.Buffer
	if err := l.Render(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	if strings.Count(buf.String(), "<polyline") != 2 {
		t.Fatal("expected 2 polylines")
	}
}

func TestLinesDeterministic(t *testing.T) {
	l := &Lines{Title: "t", Series: []LineSeries{{Name: "a", Points: [][2]float64{{1, 1}, {2, 2}}}}}
	var a, b bytes.Buffer
	if err := l.Render(&a); err != nil {
		t.Fatal(err)
	}
	if err := l.Render(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("SVG output not deterministic")
	}
}

// Package svgplot renders the experiment figures as standalone SVG files —
// grouped bar charts for the compliance/cost comparisons and multi-series
// line charts for the CDFs — using nothing but the standard library. The
// output is deterministic, so regenerated figures diff cleanly.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// palette holds the series colours (colour-blind-safe-ish defaults).
var palette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb",
}

// escape makes a string safe for SVG text nodes.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// header opens an SVG document.
func header(w io.Writer, width, height int, title string) {
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(w, `<text x="%d" y="20" font-size="14" text-anchor="middle">%s</text>`+"\n",
		width/2, escape(title))
}

// GroupedBars is a grouped bar chart: one group per row label, one bar per
// series within each group.
type GroupedBars struct {
	Title  string
	Groups []string    // x-axis group labels
	Series []string    // legend entries
	Values [][]float64 // Values[group][series]
	// YMax fixes the axis (0 = auto).
	YMax float64
	// Unit is appended to axis labels (e.g. "%").
	Unit string
}

// Render writes the chart as a standalone SVG.
func (g *GroupedBars) Render(w io.Writer) error {
	const (
		width   = 760
		height  = 360
		left    = 60
		right   = 20
		top     = 40
		bottom  = 80
		legendH = 18
	)
	plotW := width - left - right
	plotH := height - top - bottom

	max := g.YMax
	if max <= 0 {
		for _, row := range g.Values {
			for _, v := range row {
				if v > max {
					max = v
				}
			}
		}
		if max <= 0 {
			max = 1
		}
	}

	header(w, width, height, g.Title)

	// Y axis with 5 gridlines.
	for i := 0; i <= 5; i++ {
		v := max * float64(i) / 5
		y := float64(top) + float64(plotH)*(1-float64(i)/5)
		fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			left, y, width-right, y)
		fmt.Fprintf(w, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%.4g%s</text>`+"\n",
			left-5, y+3, v, escape(g.Unit))
	}

	nGroups, nSeries := len(g.Groups), len(g.Series)
	if nGroups == 0 || nSeries == 0 {
		fmt.Fprintln(w, `</svg>`)
		return nil
	}
	groupW := float64(plotW) / float64(nGroups)
	barW := groupW * 0.8 / float64(nSeries)

	for gi, row := range g.Values {
		for si, v := range row {
			if si >= nSeries || v < 0 {
				continue
			}
			h := float64(plotH) * math.Min(v/max, 1)
			x := float64(left) + float64(gi)*groupW + groupW*0.1 + float64(si)*barW
			y := float64(top) + float64(plotH) - h
			fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, barW, h, palette[si%len(palette)])
		}
		// Group label, angled to avoid collisions.
		x := float64(left) + float64(gi)*groupW + groupW/2
		fmt.Fprintf(w, `<text x="%.1f" y="%d" font-size="10" text-anchor="end" transform="rotate(-30 %.1f %d)">%s</text>`+"\n",
			x, height-bottom+14, x, height-bottom+14, escape(g.Groups[gi]))
	}

	// Legend.
	lx, ly := left, height-legendH-4
	for si, name := range g.Series {
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			lx, ly, palette[si%len(palette)])
		fmt.Fprintf(w, `<text x="%d" y="%d" font-size="10">%s</text>`+"\n", lx+14, ly+9, escape(name))
		lx += 14 + 8*len(name)
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}

// Lines is a multi-series line chart (e.g. a latency CDF).
type Lines struct {
	Title  string
	XLabel string
	YLabel string
	Series []LineSeries
	// XMax/YMax fix the axes (0 = auto).
	XMax, YMax float64
}

// LineSeries is one named polyline.
type LineSeries struct {
	Name   string
	Points [][2]float64
}

// Render writes the chart as a standalone SVG.
func (l *Lines) Render(w io.Writer) error {
	const (
		width  = 760
		height = 360
		left   = 60
		right  = 20
		top    = 40
		bottom = 60
	)
	plotW := width - left - right
	plotH := height - top - bottom

	xMax, yMax := l.XMax, l.YMax
	for _, s := range l.Series {
		for _, p := range s.Points {
			if l.XMax <= 0 && p[0] > xMax {
				xMax = p[0]
			}
			if l.YMax <= 0 && p[1] > yMax {
				yMax = p[1]
			}
		}
	}
	if xMax <= 0 {
		xMax = 1
	}
	if yMax <= 0 {
		yMax = 1
	}

	header(w, width, height, l.Title)
	for i := 0; i <= 5; i++ {
		y := float64(top) + float64(plotH)*(1-float64(i)/5)
		fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			left, y, width-right, y)
		fmt.Fprintf(w, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%.3g</text>`+"\n",
			left-5, y+3, yMax*float64(i)/5)
		x := float64(left) + float64(plotW)*float64(i)/5
		fmt.Fprintf(w, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%.3g</text>`+"\n",
			x, height-bottom+14, xMax*float64(i)/5)
	}
	fmt.Fprintf(w, `<text x="%d" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
		left+plotW/2, height-bottom+32, escape(l.XLabel))
	fmt.Fprintf(w, `<text x="14" y="%d" font-size="11" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		top+plotH/2, top+plotH/2, escape(l.YLabel))

	for si, s := range l.Series {
		var pts []string
		for _, p := range s.Points {
			x := float64(left) + float64(plotW)*math.Min(p[0]/xMax, 1)
			y := float64(top) + float64(plotH)*(1-math.Min(p[1]/yMax, 1))
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		if len(pts) == 0 {
			continue
		}
		fmt.Fprintf(w, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), palette[si%len(palette)])
		fmt.Fprintf(w, `<text x="%d" y="%d" font-size="10" fill="%s">%s</text>`+"\n",
			width-right-150, top+14*(si+1), palette[si%len(palette)], escape(s.Name))
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}

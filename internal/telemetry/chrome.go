package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing, Perfetto, speedscope all load it). Timestamps are
// microseconds of virtual time.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func usOf(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChromeTrace exports the run in Chrome trace_event JSON:
//
//   - one async track per request (nestable b/e slices for the span and
//     its batch-wait / cold-start / queue / exec components),
//   - instant events for node, container and hardware-selection activity,
//   - counter tracks for every sampled series.
//
// Load the file in chrome://tracing or https://ui.perfetto.dev.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprint(bw, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(e chromeEvent) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	// Process and per-node thread names.
	if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "paldia"}}); err != nil {
		return err
	}
	for _, n := range r.nodes {
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: n.id + 1,
			Args: map[string]any{"name": fmt.Sprintf("node %d (%s)", n.id, n.spec)}}); err != nil {
			return err
		}
	}

	// Per-request async tracks with component sub-slices.
	for _, s := range r.spans {
		if s.Arrived < 0 {
			continue
		}
		id := fmt.Sprintf("req-%d-%d", s.Tenant, s.Req)
		tid := s.Node + 1
		if tid < 1 {
			tid = 0
		}
		end := s.Completed
		if end < 0 {
			end = s.Arrived // open span: zero-width marker
		}
		open := chromeEvent{Name: "request", Cat: "req", Ph: "b",
			Ts: usOf(s.Arrived), Pid: 1, Tid: tid, ID: id,
			Args: map[string]any{"req": s.Req, "batch": s.BatchSize,
				"mode": s.Mode, "spec": s.Spec, "failed": s.Failed}}
		if err := emit(open); err != nil {
			return err
		}
		type stage struct {
			name     string
			from, to time.Duration
		}
		for _, st := range []stage{
			{"batch_wait", s.Arrived, s.Dispatched},
			{"cold_start", s.Dispatched, s.Queued},
			{"queue", s.Queued, s.ExecStart},
			{"exec", s.ExecStart, s.ExecEnd},
		} {
			if st.from < 0 || st.to < 0 || st.to < st.from {
				continue
			}
			if err := emit(chromeEvent{Name: st.name, Cat: "req", Ph: "b",
				Ts: usOf(st.from), Pid: 1, Tid: tid, ID: id}); err != nil {
				return err
			}
			if err := emit(chromeEvent{Name: st.name, Cat: "req", Ph: "e",
				Ts: usOf(st.to), Pid: 1, Tid: tid, ID: id}); err != nil {
				return err
			}
		}
		if err := emit(chromeEvent{Name: "request", Cat: "req", Ph: "e",
			Ts: usOf(end), Pid: 1, Tid: tid, ID: id}); err != nil {
			return err
		}
	}

	// Instant events for the control plane, counters for the series.
	for _, e := range r.events {
		switch e.Kind {
		case Sample:
			if err := emit(chromeEvent{Name: e.Detail, Ph: "C", Ts: usOf(e.At),
				Pid: 1, Tid: 0, Args: map[string]any{"value": e.Value}}); err != nil {
				return err
			}
		case ContainerWait, ContainerBoot, ContainerPrewarm, ContainerReaped,
			NodeRequested, NodeAcquired, NodeReleased, NodeFailed, NodeRecovered,
			HWSwitch, ScaleOut, ScaleIn, AutoscalePrewarm:
			tid := e.Node + 1
			if tid < 1 {
				tid = 0
			}
			args := map[string]any{}
			if e.Spec != "" {
				args["spec"] = e.Spec
			}
			if e.N > 0 {
				args["n"] = e.N
			}
			if e.Detail != "" {
				args["detail"] = e.Detail
			}
			if err := emit(chromeEvent{Name: e.Kind.String(), Cat: "runtime",
				Ph: "i", Scope: "g", Ts: usOf(e.At), Pid: 1, Tid: tid,
				Args: args}); err != nil {
				return err
			}
		}
	}

	if _, err := fmt.Fprint(bw, "]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

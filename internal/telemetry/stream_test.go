package telemetry

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// feedMany pushes n request lifecycles through the sink, with every k-th
// request failed before dispatch and completions interleaved so several
// spans are in flight at once.
func feedMany(s Sink, n int) {
	for i := 0; i < n; i++ {
		req, job := int64(i+1), int64(i+1)
		a := Ev(ms(i), Arrived)
		a.Req = req
		s.Event(a)
		if i%7 == 3 {
			f := Ev(ms(i+100), Failed)
			f.Req = req
			s.Event(f)
			continue
		}
		d := Ev(ms(i+5), Dispatched)
		d.Req, d.Job, d.Node, d.Spec, d.N, d.Detail = req, job, i%3, "g4dn.xlarge", 2, "queued"
		s.Event(d)
		q := Ev(ms(i+6), Queued)
		q.Job = job
		s.Event(q)
		q.Kind = ExecStart
		q.At = ms(i + 8)
		s.Event(q)
		q.Kind = ExecEnd
		q.At = ms(i + 20)
		s.Event(q)
		c := Ev(ms(i+20), Completed)
		c.Req, c.Job = req, job
		s.Event(c)
	}
	// A request that never completes: must still appear at Close.
	a := Ev(ms(n+1), Arrived)
	a.Req = int64(n + 1)
	s.Event(a)
	// A sample event for the series path.
	smp := Ev(ms(n+2), Sample)
	smp.Detail, smp.Value = "pool/busy", 3
	s.Event(smp)
}

func sortLines(b []byte) []string {
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	sort.Strings(lines)
	return lines
}

// TestStreamWriterMatchesRecorder pins the tentpole's telemetry claim: the
// streaming writer must emit the same span set as the buffering Recorder
// (same bytes per span; ordering is completion order vs. arrival order) and
// a byte-identical raw event feed.
func TestStreamWriterMatchesRecorder(t *testing.T) {
	rec := NewRecorder()
	var spanBuf, eventBuf bytes.Buffer
	sw := NewStreamWriter(&spanBuf, &eventBuf)

	feedMany(Combine(rec, sw), 200)
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var recSpans, recEvents bytes.Buffer
	if err := rec.WriteSpansJSONL(&recSpans); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteEventsJSONL(&recEvents); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(recEvents.Bytes(), eventBuf.Bytes()) {
		t.Error("streamed events JSONL is not byte-identical to the Recorder's")
	}
	got, want := sortLines(spanBuf.Bytes()), sortLines(recSpans.Bytes())
	if len(got) != len(want) {
		t.Fatalf("span count: stream %d, recorder %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("span line %d differs:\nstream   %s\nrecorder %s", i, got[i], want[i])
		}
	}
	if sw.SpansWritten() != len(rec.Spans()) {
		t.Errorf("SpansWritten = %d, want %d", sw.SpansWritten(), len(rec.Spans()))
	}
}

// TestStreamWriterBoundedMemory: the writer's span retention must track the
// number of in-flight requests, not the total request count.
func TestStreamWriterBoundedMemory(t *testing.T) {
	var spanBuf bytes.Buffer
	sw := NewStreamWriter(&spanBuf, nil)
	feedMany(sw, 5000)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	// feedMany keeps at most a handful of requests open at once (each
	// lifecycle completes before the next begins, plus the final dangler).
	if sw.PeakInFlight() > 4 {
		t.Errorf("PeakInFlight = %d; want O(in-flight), not O(N)", sw.PeakInFlight())
	}
	if sw.SpansWritten() != 5001 {
		t.Errorf("SpansWritten = %d, want 5001 (incl. the never-completed span)", sw.SpansWritten())
	}
}

// TestStreamWriterHoldsForExecEnd: a span whose Completed event arrives
// before its job's ExecEnd must not be flushed with unset exec stamps.
func TestStreamWriterHoldsForExecEnd(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, nil)

	d := Ev(ms(1), Dispatched)
	d.Req, d.Job = 1, 9
	sw.Event(d)
	c := Ev(ms(5), Completed)
	c.Req, c.Job = 1, 9
	sw.Event(c)
	if sw.SpansWritten() != 0 {
		t.Fatal("span flushed before its job's ExecEnd")
	}
	e := Ev(ms(4), ExecEnd)
	e.Job = 9
	sw.Event(e)
	if sw.SpansWritten() != 1 {
		t.Fatal("span not flushed once exec stamps landed")
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"exec_ns"`) {
		t.Fatal("no exec field in flushed span")
	}
}

// TestStreamWriterSeries: Sample events must still feed the series set.
func TestStreamWriterSeries(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, nil)
	for i := 0; i < 3; i++ {
		e := Ev(ms(i), Sample)
		e.Detail, e.Value = "x", float64(i)
		sw.Event(e)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	ss := sw.Series().Get("x")
	if ss == nil || len(ss.Points) != 3 {
		t.Fatalf("series not collected: %+v", ss)
	}
}

// TestStreamWriterWriteError: write failures surface from Close.
func TestStreamWriterWriteError(t *testing.T) {
	sw := NewStreamWriter(failWriter{}, nil)
	feedLifecycle(sw)
	if err := sw.Close(); err == nil {
		t.Fatal("Close did not report the write error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, fmt.Errorf("disk full") }

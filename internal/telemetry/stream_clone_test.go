package telemetry

import (
	"testing"
	"time"
)

// The assembler must count clone/hedge copies on the span, treat a copy's
// cancellation as its job's ExecEnd (so spans whose primary copy lost the
// race flush promptly), and leave non-redundant spans untouched.
func TestAssemblerCloneCounters(t *testing.T) {
	var done []*Span
	sa := NewSpanAssembler(func(s *Span) { done = append(done, s) })

	ev := func(k Kind, at time.Duration, req, job int64, detail string) {
		e := Ev(at, k)
		e.Req, e.Job, e.Detail = req, job, detail
		sa.Observe(e)
	}

	// Request 1: primary job 10 dispatched, clone job 11, hedge backup job 12.
	ev(Arrived, 0, 1, 0, "")
	ev(Batched, 1*time.Millisecond, 1, 0, "")
	ev(Dispatched, 2*time.Millisecond, 1, 10, "spatial")
	ev(Cloned, 2*time.Millisecond, 1, 11, "clone")
	ev(Queued, 2*time.Millisecond, 0, 10, "spatial")
	ev(ExecStart, 2*time.Millisecond, 0, 10, "")
	ev(Cloned, 30*time.Millisecond, 1, 12, "hedge")
	// The clone (job 11) wins: primary and hedge are cancelled, then the
	// request completes.
	ev(CloneCancelled, 50*time.Millisecond, 1, 10, "")
	ev(CloneCancelled, 50*time.Millisecond, 1, 12, "")
	e := Ev(50*time.Millisecond, Completed)
	e.Req, e.Job = 1, 11
	sa.Observe(e)

	if len(done) != 1 {
		t.Fatalf("flushed %d spans, want 1 (cancel must resolve the primary job)", len(done))
	}
	s := done[0]
	if s.Clones != 2 || !s.Hedged || s.Cancelled != 2 {
		t.Fatalf("clones=%d hedged=%v cancelled=%d, want 2/true/2", s.Clones, s.Hedged, s.Cancelled)
	}
	if s.ExecEnd != 50*time.Millisecond {
		t.Fatalf("primary ExecEnd = %v, want the cancel instant 50ms", s.ExecEnd)
	}
	if s.Latency() != 50*time.Millisecond {
		t.Fatalf("latency = %v, want 50ms", s.Latency())
	}
}

package telemetry

// Recorder is the in-memory Sink: it retains every event in emission
// order, assembles per-request spans from lifecycle events, and collects
// Sample events into time series. All output orderings are insertion
// orderings, so a deterministic simulation yields byte-identical exports.
type Recorder struct {
	events []Event
	spans  []*Span
	asm    assembler
	series *SeriesSet

	nodes     []nodeInfo // node ID -> spec, in first-seen order
	nodeIndex map[int]int
}

type spanKey struct {
	tenant int
	req    int64
}

type nodeInfo struct {
	id   int
	spec string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	r := &Recorder{
		asm:       newAssembler(),
		series:    NewSeriesSet(),
		nodeIndex: make(map[int]int),
	}
	r.asm.onNew = func(s *Span) { r.spans = append(r.spans, s) }
	return r
}

// Event implements Sink.
func (r *Recorder) Event(e Event) {
	r.events = append(r.events, e)
	if e.Node >= 0 && e.Spec != "" {
		if _, ok := r.nodeIndex[e.Node]; !ok {
			r.nodeIndex[e.Node] = len(r.nodes)
			r.nodes = append(r.nodes, nodeInfo{id: e.Node, spec: e.Spec})
		}
	}
	if e.Kind == Sample {
		r.series.Observe(e.Detail, e.At, e.Value)
		return
	}
	r.asm.observe(e)
}

// Events returns every recorded event in emission order.
func (r *Recorder) Events() []Event { return r.events }

// Spans returns every span in request-arrival order, including any still
// open (requests that never completed).
func (r *Recorder) Spans() []*Span { return r.spans }

// Series returns the time series collected from Sample events.
func (r *Recorder) Series() *SeriesSet { return r.series }

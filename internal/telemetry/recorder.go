package telemetry

// Recorder is the in-memory Sink: it retains every event in emission
// order, assembles per-request spans from lifecycle events, and collects
// Sample events into time series. All output orderings are insertion
// orderings, so a deterministic simulation yields byte-identical exports.
type Recorder struct {
	events []Event
	spans  []*Span
	open   map[spanKey]*Span
	jobs   map[int64][]*Span // job ID -> member spans awaiting exec stamps
	series *SeriesSet

	nodes     []nodeInfo // node ID -> spec, in first-seen order
	nodeIndex map[int]int
}

type spanKey struct {
	tenant int
	req    int64
}

type nodeInfo struct {
	id   int
	spec string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		open:      make(map[spanKey]*Span),
		jobs:      make(map[int64][]*Span),
		series:    NewSeriesSet(),
		nodeIndex: make(map[int]int),
	}
}

// Event implements Sink.
func (r *Recorder) Event(e Event) {
	r.events = append(r.events, e)
	if e.Node >= 0 && e.Spec != "" {
		if _, ok := r.nodeIndex[e.Node]; !ok {
			r.nodeIndex[e.Node] = len(r.nodes)
			r.nodes = append(r.nodes, nodeInfo{id: e.Node, spec: e.Spec})
		}
	}
	switch e.Kind {
	case Arrived:
		s := r.span(e)
		s.Arrived = e.At
	case Batched:
		r.span(e).Batched = e.At
	case Dispatched:
		s := r.span(e)
		s.Dispatched = e.At
		s.Job = e.Job
		s.Node = e.Node
		s.Spec = e.Spec
		s.BatchSize = e.N
		s.Mode = e.Detail
		if e.Job > 0 {
			r.jobs[e.Job] = append(r.jobs[e.Job], s)
		}
	case Queued:
		for _, s := range r.jobs[e.Job] {
			s.Queued = e.At
		}
	case ExecStart:
		for _, s := range r.jobs[e.Job] {
			s.ExecStart = e.At
		}
	case ExecEnd:
		for _, s := range r.jobs[e.Job] {
			s.ExecEnd = e.At
		}
		delete(r.jobs, e.Job)
	case Completed, Failed:
		s := r.span(e)
		s.Completed = e.At
		s.Failed = e.Kind == Failed
		delete(r.open, spanKey{e.Tenant, e.Req})
	case Sample:
		r.series.Observe(e.Detail, e.At, e.Value)
	}
}

// span returns the open span for the event's request, creating one on
// first sight (events may arrive without a prior Arrived in unit tests).
func (r *Recorder) span(e Event) *Span {
	k := spanKey{e.Tenant, e.Req}
	if s, ok := r.open[k]; ok {
		return s
	}
	s := newSpan(e.Req, e.Tenant)
	r.open[k] = s
	r.spans = append(r.spans, s)
	return s
}

// Events returns every recorded event in emission order.
func (r *Recorder) Events() []Event { return r.events }

// Spans returns every span in request-arrival order, including any still
// open (requests that never completed).
func (r *Recorder) Spans() []*Span { return r.spans }

// Series returns the time series collected from Sample events.
func (r *Recorder) Series() *SeriesSet { return r.series }

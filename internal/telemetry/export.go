package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// spanJSON is the stable JSONL schema for one span. Times are integer
// nanoseconds of virtual time; -1 marks a stage the request never reached.
type spanJSON struct {
	Req         int64  `json:"req"`
	Tenant      int    `json:"tenant"`
	Node        int    `json:"node"`
	Spec        string `json:"spec"`
	Job         int64  `json:"job"`
	Batch       int    `json:"batch"`
	Mode        string `json:"mode"`
	Failed      bool   `json:"failed"`
	ArrivedNs   int64  `json:"arrived_ns"`
	BatchWaitNs int64  `json:"batch_wait_ns"`
	ColdNs      int64  `json:"cold_ns"`
	QueueNs     int64  `json:"queue_ns"`
	ExecNs      int64  `json:"exec_ns"`
	LatencyNs   int64  `json:"latency_ns"`
	// Redundancy counters are omitted when zero so non-cloning schemes'
	// span files are byte-identical to pre-cloning output.
	Clones    int  `json:"clones,omitempty"`
	Hedged    bool `json:"hedged,omitempty"`
	Cancelled int  `json:"cancelled,omitempty"`
}

func toJSON(s *Span) spanJSON {
	return spanJSON{
		Req: s.Req, Tenant: s.Tenant, Node: s.Node, Spec: s.Spec,
		Job: s.Job, Batch: s.BatchSize, Mode: s.Mode, Failed: s.Failed,
		ArrivedNs:   int64(s.Arrived),
		BatchWaitNs: int64(s.BatchWait()),
		ColdNs:      int64(s.ColdStart()),
		QueueNs:     int64(s.QueueDelay()),
		ExecNs:      int64(s.Exec()),
		LatencyNs:   int64(s.Latency()),
		Clones:      s.Clones,
		Hedged:      s.Hedged,
		Cancelled:   s.Cancelled,
	}
}

// SpanJSON returns the span's stable JSON object — the exact value the
// Recorder and StreamWriter encode per JSONL line — for external encoders
// (the live observability plane's SSE feed marshals it verbatim, so a span
// seen over /events is byte-identical to the exported one).
func SpanJSON(s *Span) any { return toJSON(s) }

// WriteSpansJSONL writes one JSON object per span, in request-arrival
// order. The output is byte-identical across runs of the same seeded
// simulation.
func (r *Recorder) WriteSpansJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, s := range r.spans {
		buf = appendSpanLine(buf[:0], s)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpansJSONL parses spans previously written with WriteSpansJSONL.
func ReadSpansJSONL(rd io.Reader) ([]*Span, error) {
	dec := json.NewDecoder(rd)
	var out []*Span
	for {
		var sj spanJSON
		if err := dec.Decode(&sj); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("telemetry: span %d: %w", len(out)+1, err)
		}
		s := newSpan(sj.Req, sj.Tenant)
		s.Node, s.Spec, s.Job = sj.Node, sj.Spec, sj.Job
		s.BatchSize, s.Mode, s.Failed = sj.Batch, sj.Mode, sj.Failed
		// Rebuild the lifecycle instants from the component durations.
		s.Arrived = time.Duration(sj.ArrivedNs)
		t := s.Arrived
		if sj.LatencyNs > 0 {
			s.Completed = s.Arrived + time.Duration(sj.LatencyNs)
		}
		if sj.BatchWaitNs >= 0 && sj.LatencyNs > 0 {
			t += time.Duration(sj.BatchWaitNs)
			s.Dispatched = t
			t += time.Duration(sj.ColdNs)
			s.Queued = t
			t += time.Duration(sj.QueueNs)
			s.ExecStart = t
			t += time.Duration(sj.ExecNs)
			s.ExecEnd = t
		}
		s.Clones, s.Hedged, s.Cancelled = sj.Clones, sj.Hedged, sj.Cancelled
		out = append(out, s)
	}
}

// eventJSON is the stable JSONL schema for one raw event. The hot exporters
// encode it via appendEventLine; the struct remains the decode schema and
// the reference for the equivalence test pinning the append encoder to
// encoding/json.
type eventJSON struct {
	AtNs   int64   `json:"at_ns"`
	Kind   string  `json:"kind"`
	Req    int64   `json:"req"`
	Job    int64   `json:"job,omitempty"`
	Node   int     `json:"node"`
	Tenant int     `json:"tenant,omitempty"`
	Spec   string  `json:"spec,omitempty"`
	N      int     `json:"n,omitempty"`
	Value  float64 `json:"value,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// WriteEventsJSONL writes every recorded event as one JSON object per
// line, in emission order — the raw feed behind spans and series.
func (r *Recorder) WriteEventsJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, e := range r.events {
		buf = appendEventLine(buf[:0], e)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

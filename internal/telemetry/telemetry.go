// Package telemetry is the structured observability layer of the serving
// runtime: a typed event bus (Sink), per-request spans assembled from
// lifecycle events, virtual-time series sampled on a fixed cadence, and
// exporters for JSONL, Chrome trace_event (chrome://tracing / Perfetto),
// CSV and SVG timelines.
//
// Everything is deterministic: the same seeded simulation produces
// byte-identical exports, and a nil Sink disables the whole layer at the
// cost of one branch per emission site. Reads used by the sampler are
// side-effect-free so an instrumented run takes the exact same trajectory
// as an uninstrumented one.
package telemetry

import (
	"fmt"
	"strings"
	"time"
)

// Kind is the type of a telemetry event.
type Kind uint8

// Request lifecycle kinds follow a request through the runtime; the
// remaining kinds cover containers, nodes, hardware selection and sampling.
const (
	// Arrived: a request reached the gateway (Req set).
	Arrived Kind = iota
	// Batched: the request entered its model's batcher (Req set).
	Batched
	// Dispatched: the request left the batcher inside a job (Req, Job,
	// Node, Spec set; N is the job's batch size; Detail is the mode).
	Dispatched
	// Queued: a job was submitted to the device after any container wait
	// (Job, Node set; N batch size; Detail mode).
	Queued
	// ExecStart: a job began executing on the device (Job, Node set).
	ExecStart
	// ExecEnd: a job finished executing or failed (Job, Node set).
	ExecEnd
	// Completed: the request's response left the system (Req set).
	Completed
	// Failed: the request was lost to a node failure or final flush (Req
	// set).
	Failed

	// ContainerWait: a claim is waiting for a container already on the way.
	ContainerWait
	// ContainerBoot: a synchronous (request-blocking) cold boot started.
	ContainerBoot
	// ContainerPrewarm: N background container boots were scheduled.
	ContainerPrewarm
	// ContainerReaped: N idle containers passed keep-alive and terminated.
	ContainerReaped

	// NodeRequested: a VM launch was issued (billing starts).
	NodeRequested
	// NodeAcquired: the VM is up and its device exists.
	NodeAcquired
	// NodeReleased: the node was relinquished (billing stops).
	NodeReleased
	// NodeFailed: the node failed; in-flight work was lost.
	NodeFailed
	// NodeRecovered: the node came back.
	NodeRecovered

	// HWSwitch: the primary serving node changed (Node, Spec set).
	HWSwitch
	// ScaleOut: a replica of the current node type began serving.
	ScaleOut
	// ScaleIn: a replica was retired.
	ScaleIn
	// AutoscalePrewarm: the predictive autoscaler grew a pool to N.
	AutoscalePrewarm

	// Sample: one time-series observation (Detail is the series name,
	// Value the observation).
	Sample

	// Cloned: a redundant copy of the request was dispatched (Req, Job,
	// Node, Spec set; N batch size; Detail "clone" or "hedge"). The copy's
	// job carries its own Job ID distinct from the primary's.
	Cloned
	// CloneCancelled: a redundant copy was withdrawn because a sibling
	// finished first (Req, Job set; Node when the copy had reached a
	// device). The cancel instant is the copy's execution end.
	CloneCancelled
	// NodeRevoked: a spot node received its revocation notice (Node, Spec
	// set). The node drains and is released when the notice expires.
	NodeRevoked
)

var kindNames = [...]string{
	Arrived:          "arrived",
	Batched:          "batched",
	Dispatched:       "dispatched",
	Queued:           "queued",
	ExecStart:        "exec_start",
	ExecEnd:          "exec_end",
	Completed:        "completed",
	Failed:           "failed",
	ContainerWait:    "container-wait",
	ContainerBoot:    "container-boot",
	ContainerPrewarm: "container-prewarm",
	ContainerReaped:  "container-reaped",
	NodeRequested:    "node-requested",
	NodeAcquired:     "node-acquired",
	NodeReleased:     "node-released",
	NodeFailed:       "node-failed",
	NodeRecovered:    "node-recovered",
	HWSwitch:         "swap",
	ScaleOut:         "scale-out",
	ScaleIn:          "scale-in",
	AutoscalePrewarm: "autoscale-prewarm",
	Sample:           "sample",
	Cloned:           "cloned",
	CloneCancelled:   "clone-cancelled",
	NodeRevoked:      "node-revoked",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Event is one typed occurrence at a point in virtual time. Identifier
// fields use -1 (Req, Job) or the zero value (Node defaults to -1 only via
// Ev) when not applicable.
type Event struct {
	// At is the virtual time of the occurrence.
	At time.Duration
	// Kind is the event type.
	Kind Kind
	// Req identifies the request (batcher-assigned ID); -1 when the event
	// is not request-scoped.
	Req int64
	// Job identifies the batch job; 0 when the event is not job-scoped
	// (job IDs are assigned from 1).
	Job int64
	// Node is the cluster node ID; -1 when not node-scoped.
	Node int
	// Tenant is the workload index in multi-tenant runs (0 otherwise).
	Tenant int
	// Spec is the node type's instance name, when known.
	Spec string
	// N is a count whose meaning depends on Kind (batch size, containers).
	N int
	// Value is the observation of a Sample event.
	Value float64
	// Detail carries free-form context (mode names, series names).
	Detail string
}

// Ev returns an event with identifier fields cleared to "not applicable".
func Ev(at time.Duration, kind Kind) Event {
	return Event{At: at, Kind: kind, Req: -1, Node: -1}
}

// String renders the event compactly for debugging output.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v %s", e.At, e.Kind)
	if e.Req >= 0 {
		fmt.Fprintf(&b, " req=%d", e.Req)
	}
	if e.Job > 0 {
		fmt.Fprintf(&b, " job=%d", e.Job)
	}
	if e.Node >= 0 {
		fmt.Fprintf(&b, " node=%d", e.Node)
	}
	if e.Tenant > 0 {
		fmt.Fprintf(&b, " tenant=%d", e.Tenant)
	}
	if e.Spec != "" {
		fmt.Fprintf(&b, " spec=%s", e.Spec)
	}
	if e.N > 0 {
		fmt.Fprintf(&b, " n=%d", e.N)
	}
	if e.Kind == Sample {
		fmt.Fprintf(&b, " %s=%g", e.Detail, e.Value)
	} else if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

// Sink consumes telemetry events. Implementations must not retain the
// event beyond the call (it may be reused). Emission sites hold a Sink and
// guard every emission with a nil check, so disabled telemetry costs one
// branch and zero allocations.
type Sink interface {
	Event(Event)
}

type multiSink []Sink

func (m multiSink) Event(e Event) {
	for _, s := range m {
		s.Event(e)
	}
}

// Combine fans events out to every non-nil sink. It returns nil when none
// remain, preserving the nil-sink fast path, and the sink itself when only
// one remains.
func Combine(sinks ...Sink) Sink {
	var keep multiSink
	for _, s := range sinks {
		if s != nil {
			keep = append(keep, s)
		}
	}
	switch len(keep) {
	case 0:
		return nil
	case 1:
		return keep[0]
	}
	return keep
}

type onEventSink struct {
	fn func(t time.Duration, kind, detail string)
}

func (s onEventSink) Event(e Event) {
	// The legacy callback predates per-request spans and sampling; forward
	// only the coarse runtime events it historically received.
	if e.Req >= 0 || e.Kind == Sample {
		return
	}
	detail := e.Spec
	if e.Detail != "" {
		if detail != "" {
			detail += " "
		}
		detail += e.Detail
	}
	if e.N > 0 {
		detail = fmt.Sprintf("%s n=%d", detail, e.N)
	}
	s.fn(e.At, e.Kind.String(), detail)
}

// AdaptOnEvent wraps a legacy OnEvent(t, kind, detail) callback as a Sink.
// It returns nil for a nil callback so Combine keeps the fast path.
func AdaptOnEvent(fn func(t time.Duration, kind, detail string)) Sink {
	if fn == nil {
		return nil
	}
	return onEventSink{fn}
}

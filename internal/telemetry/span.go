package telemetry

import "time"

// unset marks a lifecycle timestamp that never happened. All real virtual
// times are >= 0.
const unset = time.Duration(-1)

// Span is the assembled lifecycle of one request: every timestamp the
// runtime stamped on its way through the system. Timestamps are unset (-1)
// for stages the request never reached (e.g. a request flushed as failed
// before dispatch).
type Span struct {
	// Req is the request ID; Tenant the workload index (multi-tenant runs).
	Req    int64
	Tenant int

	// Arrived through Completed are the lifecycle instants.
	Arrived    time.Duration
	Batched    time.Duration
	Dispatched time.Duration
	Queued     time.Duration // submitted to the device (after container wait)
	ExecStart  time.Duration
	ExecEnd    time.Duration
	Completed  time.Duration

	// Job, Node, Spec, BatchSize and Mode identify how the request was
	// served: the batch job it joined, the node and node type that executed
	// it, and the sharing mode ("spatial" or "queued").
	Job       int64
	Node      int
	Spec      string
	BatchSize int
	Mode      string

	// Failed marks requests lost to node failures or the final flush.
	Failed bool

	// Clones counts redundant copies dispatched beyond the primary (clone-to-k
	// or hedged backups); Hedged marks the copy as age-triggered; Cancelled
	// counts copies withdrawn after a sibling finished first. All zero for
	// non-redundant schemes, and omitted from JSON exports when zero so those
	// schemes' span files are byte-identical to pre-cloning output.
	Clones    int
	Hedged    bool
	Cancelled int
}

func newSpan(req int64, tenant int) *Span {
	return &Span{
		Req: req, Tenant: tenant, Job: 0, Node: -1,
		Arrived: unset, Batched: unset, Dispatched: unset, Queued: unset,
		ExecStart: unset, ExecEnd: unset, Completed: unset,
	}
}

// gap returns to-from clamped to zero, or zero when either end is unset.
func gap(from, to time.Duration) time.Duration {
	if from < 0 || to < 0 || to < from {
		return 0
	}
	return to - from
}

// BatchWait is the time spent in the batcher before dispatch.
func (s *Span) BatchWait() time.Duration { return gap(s.Arrived, s.Dispatched) }

// ColdStart is the container wait serialized between dispatch and device
// submission.
func (s *Span) ColdStart() time.Duration { return gap(s.Dispatched, s.Queued) }

// QueueDelay is the on-device wait between submission and execution.
func (s *Span) QueueDelay() time.Duration { return gap(s.Queued, s.ExecStart) }

// Exec is the execution time, including co-location interference.
func (s *Span) Exec() time.Duration { return gap(s.ExecStart, s.ExecEnd) }

// Latency is the end-to-end response time; zero while the span is open.
func (s *Span) Latency() time.Duration { return gap(s.Arrived, s.Completed) }

// Done reports whether the request reached a terminal state.
func (s *Span) Done() bool { return s.Completed >= 0 }

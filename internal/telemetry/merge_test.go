package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// feedLifecycle emits a full request lifecycle into sink: req arrives at
// base, is dispatched in job, executes, completes. Times are strictly
// increasing.
func feedLaneLifecycle(sink Sink, req, job int64, base time.Duration) {
	ms := func(n int) time.Duration { return base + time.Duration(n)*time.Millisecond }
	e := Ev(ms(0), Arrived)
	e.Req = req
	sink.Event(e)
	e.Kind = Batched
	sink.Event(e)
	d := Ev(ms(5), Dispatched)
	d.Req, d.Job, d.Node, d.Spec, d.N, d.Detail = req, job, 1, "M60", 1, "queued"
	sink.Event(d)
	q := Ev(ms(6), Queued)
	q.Job, q.Node = job, 1
	sink.Event(q)
	xs := Ev(ms(8), ExecStart)
	xs.Job, xs.Node = job, 1
	sink.Event(xs)
	xe := Ev(ms(20), ExecEnd)
	xe.Job, xe.Node = job, 1
	sink.Event(xe)
	c := Ev(ms(21), Completed)
	c.Req = req
	sink.Event(c)
}

// A single-lane MergeWriter is byte-identical to StreamWriter: same spans
// JSONL, same events JSONL, same series CSV — the merge reduces to the
// lane's FIFO, which is StreamWriter's completion order.
func TestMergeWriterSingleLaneMatchesStreamWriter(t *testing.T) {
	var swSpans, swEvents, mwSpans, mwEvents bytes.Buffer
	sw := NewStreamWriter(&swSpans, &swEvents)
	mw := NewMergeWriter(&mwSpans, &mwEvents, 1)
	lane := mw.Lane(0)

	for i := int64(0); i < 20; i++ {
		base := time.Duration(i*40) * time.Millisecond
		feedLaneLifecycle(sw, i, i+1, base)
		feedLaneLifecycle(lane, i, i+1, base)
		s := Ev(base, Sample)
		s.Detail, s.Value = "pending_requests", float64(i)
		sw.Event(s)
		lane.Event(s)
	}
	// One request that never completes exercises the unflushed path.
	open := Ev(time.Second, Arrived)
	open.Req = 99
	sw.Event(open)
	lane.Event(open)

	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(swSpans.Bytes(), mwSpans.Bytes()) {
		t.Errorf("single-lane spans differ from StreamWriter:\n%s\nvs\n%s",
			swSpans.String(), mwSpans.String())
	}
	if !bytes.Equal(swEvents.Bytes(), mwEvents.Bytes()) {
		t.Error("single-lane events JSONL differs from StreamWriter")
	}
	var swSeries, mwSeries bytes.Buffer
	if err := sw.Series().WriteCSV(&swSeries); err != nil {
		t.Fatal(err)
	}
	if err := mw.Series().WriteCSV(&mwSeries); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(swSeries.Bytes(), mwSeries.Bytes()) {
		t.Error("single-lane series CSV differs from StreamWriter")
	}
	if swSpans.Len() == 0 || swEvents.Len() == 0 || swSeries.Len() == 0 {
		t.Fatalf("exports empty: spans=%d events=%d series=%d",
			swSpans.Len(), swEvents.Len(), swSeries.Len())
	}
	if mw.SpansWritten() != sw.SpansWritten() {
		t.Errorf("spans written: merge %d vs stream %d", mw.SpansWritten(), sw.SpansWritten())
	}
}

// The merged output is a pure function of the per-lane feeds: flushing at
// different barrier cadences (or only at Close) yields identical bytes.
// This is the property that makes `-shards N` byte-identical for every N —
// worker count only changes when flushes happen, never what they contain.
func TestMergeWriterFlushCadenceIndependent(t *testing.T) {
	run := func(flushEvery time.Duration) (spans, events string) {
		var sb, eb bytes.Buffer
		mw := NewMergeWriter(&sb, &eb, 3)
		// Interleave lanes at different offsets so merge order is exercised.
		for step := 0; step < 12; step++ {
			for lane := 0; lane < 3; lane++ {
				req := int64(step)
				base := time.Duration(step*50+lane*7) * time.Millisecond
				feedLaneLifecycle(mw.Lane(lane), req, req+1, base)
			}
			if flushEvery > 0 && step%2 == 1 {
				mw.FlushThrough(time.Duration(step*50) * time.Millisecond)
			}
		}
		if err := mw.Close(); err != nil {
			t.Fatal(err)
		}
		return sb.String(), eb.String()
	}
	s1, e1 := run(0)                     // flush only at Close
	s2, e2 := run(25 * time.Millisecond) // flush at barriers
	if s1 != s2 {
		t.Errorf("spans depend on flush cadence:\n%s\nvs\n%s", s1, s2)
	}
	if e1 != e2 {
		t.Error("events JSONL depends on flush cadence")
	}
	if s1 == "" || e1 == "" {
		t.Fatal("empty exports")
	}
}

// Multi-lane writers stamp the lane index into Tenant and prefix series
// names, so lanes are distinguishable in every export.
func TestMergeWriterStampsLanes(t *testing.T) {
	var sb bytes.Buffer
	mw := NewMergeWriter(&sb, nil, 2)
	feedLaneLifecycle(mw.Lane(0), 1, 1, 0)
	feedLaneLifecycle(mw.Lane(1), 1, 1, 0) // same req ID; must not collide
	s := Ev(0, Sample)
	s.Detail, s.Value = "cost_usd", 1.5
	mw.Lane(1).Event(s)
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpansJSONL(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (lane collision?)", len(spans))
	}
	tenants := map[int]bool{}
	for _, sp := range spans {
		tenants[sp.Tenant] = true
	}
	if !tenants[0] || !tenants[1] {
		t.Errorf("lane stamping missing: tenants seen %v", tenants)
	}
	names := mw.Series().Names()
	found := false
	for _, n := range names {
		if strings.HasPrefix(n, "t1/") {
			found = true
		}
	}
	if !found {
		t.Errorf("multi-lane series not prefixed: %v", names)
	}
}

// Merge order on key ties is (key, lane): lane 0's span precedes lane 1's
// when both complete at the same virtual instant.
func TestMergeWriterTieBreaksByLane(t *testing.T) {
	var sb bytes.Buffer
	mw := NewMergeWriter(&sb, nil, 2)
	// Feed lane 1 first; the merge must still put lane 0 first on equal keys.
	feedLaneLifecycle(mw.Lane(1), 7, 1, 0)
	feedLaneLifecycle(mw.Lane(0), 7, 1, 0)
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpansJSONL(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].Tenant != 0 || spans[1].Tenant != 1 {
		t.Fatalf("tie-break wrong: got tenants %v", []int{spans[0].Tenant, spans[1].Tenant})
	}
}

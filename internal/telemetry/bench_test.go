package telemetry

import (
	"io"
	"testing"
	"time"
)

// lifecycle pushes one full request lifecycle (arrival through completion,
// with the job-level queue/exec stamps in between) into the sink, the exact
// event sequence the dispatcher emits per batched request.
func lifecycle(sink Sink, req int64, at time.Duration) {
	e := Ev(at, Arrived)
	e.Req = req
	sink.Event(e)

	e = Ev(at+time.Millisecond, Dispatched)
	e.Req, e.Job, e.Node, e.Spec, e.N, e.Detail = req, req+1, 0, "M60", 1, "spatial"
	sink.Event(e)

	for _, k := range []Kind{Queued, ExecStart, ExecEnd} {
		e = Ev(at+2*time.Millisecond, k)
		e.Req, e.Job = req, req+1
		sink.Event(e)
	}

	e = Ev(at+40*time.Millisecond, Completed)
	e.Req = req
	sink.Event(e)
}

// BenchmarkStreamWriterLifecycle measures the full streaming span path per
// request: event-feed JSONL encoding, span assembly, span JSONL encoding,
// and span recycling, all against discarded writers so only the telemetry
// work is on the clock.
func BenchmarkStreamWriterLifecycle(b *testing.B) {
	w := NewStreamWriter(io.Discard, io.Discard)
	defer w.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lifecycle(w, int64(i), time.Duration(i)*time.Microsecond)
	}
}

// BenchmarkSpanAssembly measures bare event->span assembly (no encoding):
// the shared core behind the Recorder, StreamWriter and the live plane.
func BenchmarkSpanAssembly(b *testing.B) {
	var done int
	sa := NewSpanAssembler(func(*Span) { done++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lifecycle(sinkFunc(sa.Observe), int64(i), time.Duration(i)*time.Microsecond)
	}
	if done != b.N {
		b.Fatalf("assembled %d spans, want %d", done, b.N)
	}
}

// BenchmarkAppendSpanLine and BenchmarkAppendEventLine isolate the JSONL
// encoders that replaced encoding/json on the export paths.
func BenchmarkAppendSpanLine(b *testing.B) {
	s := newSpan(12345, 2)
	s.Node, s.Spec, s.Job, s.BatchSize, s.Mode = 1, "g4dn.xlarge", 678, 16, "spatial"
	s.Arrived = 3 * time.Second
	s.Dispatched = s.Arrived + time.Millisecond
	s.Queued = s.Dispatched + 2*time.Millisecond
	s.ExecStart = s.Queued + 3*time.Millisecond
	s.ExecEnd = s.ExecStart + 40*time.Millisecond
	s.Completed = s.ExecEnd
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendSpanLine(buf[:0], s)
	}
}

func BenchmarkAppendEventLine(b *testing.B) {
	e := Ev(3*time.Second, Dispatched)
	e.Req, e.Job, e.Node, e.Spec, e.N, e.Detail = 12345, 678, 1, "g4dn.xlarge", 16, "spatial"
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendEventLine(buf[:0], e)
	}
}

// sinkFunc adapts a func to Sink for the assembly benchmark.
type sinkFunc func(Event)

func (f sinkFunc) Event(e Event) { f(e) }

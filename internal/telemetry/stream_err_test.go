package telemetry

import (
	"errors"
	"io"
	"os"
	"strings"
	"testing"
)

// failAfter accepts the first n bytes, then fails every write — a sink whose
// disk filled up (or whose pipe closed) mid-run.
type failAfter struct {
	n       int
	err     error
	written int
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, w.err
	}
	w.written += len(p)
	return len(p), nil
}

// shortWriter reports fewer bytes written than given, with no error — the
// io contract violation bufio must turn into io.ErrShortWrite rather than
// silently losing the tail.
type shortWriter struct{ writes int }

func (w *shortWriter) Write(p []byte) (int, error) {
	w.writes++
	if len(p) > 1 {
		return len(p) - 1, nil
	}
	return len(p), nil
}

// TestStreamWriterSurfacesSinkFailure: a span sink that dies mid-run must
// surface its error through Err() and Close(), never silently dropping
// spans. The write error appears once the buffered writer first flushes to
// the broken sink; everything before that is reported written.
func TestStreamWriterSurfacesSinkFailure(t *testing.T) {
	sinkErr := errors.New("sink: no space left on device")
	w := NewStreamWriter(&failAfter{n: 512, err: sinkErr}, nil)
	feedMany(w, 200)
	err := w.Close()
	if err == nil {
		t.Fatal("Close returned nil after the span sink failed")
	}
	if !errors.Is(err, sinkErr) {
		t.Fatalf("Close error = %v, want the sink's %v", err, sinkErr)
	}
	if w.Err() == nil || !errors.Is(w.Err(), sinkErr) {
		t.Fatalf("Err() = %v, want the sink's error available mid-run", w.Err())
	}
}

// TestStreamWriterSurfacesEventSinkFailure: the raw-event feed is optional,
// but when requested its failures must surface exactly like span failures.
func TestStreamWriterSurfacesEventSinkFailure(t *testing.T) {
	sinkErr := errors.New("sink: connection reset")
	w := NewStreamWriter(io.Discard, &failAfter{n: 256, err: sinkErr})
	feedMany(w, 200)
	if err := w.Close(); err == nil || !errors.Is(err, sinkErr) {
		t.Fatalf("Close error = %v, want the event sink's %v", err, sinkErr)
	}
}

// TestStreamWriterSurfacesShortWrite: a writer that under-reports without an
// error must yield io.ErrShortWrite, not quietly truncated JSONL.
func TestStreamWriterSurfacesShortWrite(t *testing.T) {
	sw := &shortWriter{}
	w := NewStreamWriter(sw, nil)
	feedMany(w, 400)
	if err := w.Close(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Close error = %v, want io.ErrShortWrite", err)
	}
	if sw.writes == 0 {
		t.Fatal("short writer never reached; test lost coverage")
	}
}

// TestStreamWriterSurfacesClosedFile: writing spans to an already-closed
// *os.File — the realistic "sink closed under us" case — errors at Close.
func TestStreamWriterSurfacesClosedFile(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "spans-*.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	w := NewStreamWriter(f, nil)
	feedMany(w, 200)
	err = w.Close()
	if err == nil {
		t.Fatal("Close returned nil writing to a closed file")
	}
	if !errors.Is(err, os.ErrClosed) && !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Close error = %v, want a file-closed error", err)
	}
}

// TestStreamWriterErrNilOnHealthySink: the happy path keeps Err() nil
// throughout and Close clean.
func TestStreamWriterErrNilOnHealthySink(t *testing.T) {
	w := NewStreamWriter(io.Discard, io.Discard)
	feedMany(w, 50)
	if w.Err() != nil {
		t.Fatalf("Err() = %v mid-run on a healthy sink", w.Err())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close = %v on a healthy sink", err)
	}
}

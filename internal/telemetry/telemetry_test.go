package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// feedLifecycle pushes one request's full lifecycle into the sink.
func feedLifecycle(s Sink) {
	arr := Ev(ms(0), Arrived)
	arr.Req = 7
	s.Event(arr)
	arr.Kind = Batched
	s.Event(arr)

	d := Ev(ms(10), Dispatched)
	d.Req, d.Job, d.Node, d.Spec, d.N, d.Detail = 7, 3, 1, "p3.2xlarge", 4, "spatial"
	s.Event(d)

	q := Ev(ms(12), Queued)
	q.Job, q.Node = 3, 1
	s.Event(q)
	q.Kind, q.At = ExecStart, ms(15)
	s.Event(q)
	q.Kind, q.At = ExecEnd, ms(40)
	s.Event(q)

	c := Ev(ms(40), Completed)
	c.Req, c.Job, c.Node = 7, 3, 1
	s.Event(c)
}

func TestRecorderAssemblesSpan(t *testing.T) {
	r := NewRecorder()
	feedLifecycle(r)

	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Req != 7 || s.Job != 3 || s.Node != 1 || s.Spec != "p3.2xlarge" ||
		s.BatchSize != 4 || s.Mode != "spatial" || s.Failed {
		t.Fatalf("span identity wrong: %+v", s)
	}
	if !s.Done() {
		t.Fatal("span not done after Completed")
	}
	if s.BatchWait() != ms(10) || s.ColdStart() != ms(2) ||
		s.QueueDelay() != ms(3) || s.Exec() != ms(25) || s.Latency() != ms(40) {
		t.Fatalf("components wrong: batch=%v cold=%v queue=%v exec=%v lat=%v",
			s.BatchWait(), s.ColdStart(), s.QueueDelay(), s.Exec(), s.Latency())
	}
	// The invariant the exports rely on: components telescope to latency.
	if s.BatchWait()+s.ColdStart()+s.QueueDelay()+s.Exec() != s.Latency() {
		t.Fatal("components do not sum to latency")
	}
}

func TestRecorderFailedFlushSpan(t *testing.T) {
	r := NewRecorder()
	a := Ev(ms(5), Arrived)
	a.Req = 1
	r.Event(a)
	f := Ev(ms(500), Failed)
	f.Req = 1
	r.Event(f)

	s := r.Spans()[0]
	if !s.Failed || !s.Done() {
		t.Fatalf("flushed request not failed+done: %+v", s)
	}
	if s.Latency() != ms(495) {
		t.Fatalf("latency = %v, want 495ms", s.Latency())
	}
	// Never dispatched: every component is zero.
	if s.BatchWait() != 0 || s.ColdStart() != 0 || s.QueueDelay() != 0 || s.Exec() != 0 {
		t.Fatalf("undispatched request has nonzero components: %+v", s)
	}
}

func TestRecorderTenantsKeepSeparateSpans(t *testing.T) {
	r := NewRecorder()
	for tenant := 0; tenant < 2; tenant++ {
		a := Ev(ms(tenant), Arrived)
		a.Req, a.Tenant = 0, tenant
		r.Event(a)
	}
	if len(r.Spans()) != 2 {
		t.Fatalf("same req ID in two tenants collapsed: %d spans", len(r.Spans()))
	}
}

func TestCombineAndAdapter(t *testing.T) {
	if Combine() != nil || Combine(nil, nil) != nil {
		t.Fatal("Combine of no sinks must be nil (fast path)")
	}
	if AdaptOnEvent(nil) != nil {
		t.Fatal("AdaptOnEvent(nil) must be nil")
	}
	rec := NewRecorder()
	if Combine(nil, rec) != Sink(rec) {
		t.Fatal("Combine with one sink must return it unchanged")
	}

	var legacy []string
	fan := Combine(rec, AdaptOnEvent(func(ts time.Duration, kind, detail string) {
		legacy = append(legacy, kind+" "+detail)
	}))
	feedLifecycle(fan)
	sw := Ev(ms(50), HWSwitch)
	sw.Node, sw.Spec = 2, "p2.xlarge"
	fan.Event(sw)
	smp := Ev(ms(60), Sample)
	smp.Detail, smp.Value = "cost_usd", 1.5
	fan.Event(smp)

	if len(rec.Spans()) != 1 || len(rec.Events()) != 9 {
		t.Fatalf("recorder saw %d spans / %d events", len(rec.Spans()), len(rec.Events()))
	}
	// The legacy callback gets only coarse runtime events: no per-request
	// lifecycle, no samples — here, the job events and the switch.
	joined := strings.Join(legacy, ";")
	if strings.Contains(joined, "arrived") || strings.Contains(joined, "sample") {
		t.Fatalf("legacy adapter leaked per-request or sample events: %v", legacy)
	}
	if !strings.Contains(joined, "swap p2.xlarge") {
		t.Fatalf("legacy adapter missed the switch: %v", legacy)
	}
}

func TestSamplerCadenceAndSeries(t *testing.T) {
	eng := sim.NewEngine()
	rec := NewRecorder()
	v := 0.0
	s := NewSampler(eng, rec, time.Second, []Gauge{
		{Name: "x", Read: func() float64 { v++; return v }},
	})
	s.Start()
	eng.Run(3500 * time.Millisecond)

	series := rec.Series().Get("x")
	if series == nil {
		t.Fatal("series x missing")
	}
	// Samples at 0s, 1s, 2s, 3s.
	if len(series.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(series.Points))
	}
	for i, p := range series.Points {
		if p.At != time.Duration(i)*time.Second || p.Value != float64(i+1) {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
	s.Stop()
	eng.Run(10 * time.Second)
	if len(rec.Series().Get("x").Points) != 4 {
		t.Fatal("sampler kept ticking after Stop")
	}

	// Nil sink and zero cadence are inert.
	NewSampler(eng, nil, time.Second, nil).Start()
	NewSampler(eng, rec, 0, nil).Start()
	if eng.Pending() != 0 {
		t.Fatalf("inert samplers queued events: %d", eng.Pending())
	}
}

func TestSeriesCSVRoundTrip(t *testing.T) {
	ss := NewSeriesSet()
	ss.Observe("a", ms(0), 1)
	ss.Observe("b", ms(0), 0.25)
	ss.Observe("a", ms(1000), 2.5)
	// b misses the 1s tick; a misses the 2s tick — cells stay empty.
	ss.Observe("b", ms(2000), 3)

	var buf bytes.Buffer
	if err := ss.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSeriesCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(back.Names(), ","), "a,b"; got != want {
		t.Fatalf("names %q, want %q", got, want)
	}
	a, b := back.Get("a"), back.Get("b")
	if len(a.Points) != 2 || len(b.Points) != 2 {
		t.Fatalf("points a=%d b=%d, want 2 and 2", len(a.Points), len(b.Points))
	}
	if a.Points[1].At != time.Second || a.Points[1].Value != 2.5 {
		t.Fatalf("a[1] = %+v", a.Points[1])
	}
	if b.Last().At != 2*time.Second || b.Last().Value != 3 {
		t.Fatalf("b last = %+v", b.Last())
	}

	// Corruption is a labelled error, not a zero.
	bad := strings.Replace(buf.String(), "2.5", "2.5oops", 1)
	if _, err := ReadSeriesCSV(strings.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "column a") {
		t.Fatalf("corrupt cell error = %v, want one naming column a", err)
	}
	if _, err := ReadSeriesCSV(strings.NewReader("x,y\n1,2\n")); err == nil {
		t.Fatal("missing t_s header accepted")
	}
}

func TestSpansJSONLRoundTrip(t *testing.T) {
	rec := NewRecorder()
	feedLifecycle(rec)
	var buf bytes.Buffer
	if err := rec.WriteSpansJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpansJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("got %d spans", len(back))
	}
	s, o := back[0], rec.Spans()[0]
	if s.Req != o.Req || s.Latency() != o.Latency() || s.BatchWait() != o.BatchWait() ||
		s.ColdStart() != o.ColdStart() || s.QueueDelay() != o.QueueDelay() ||
		s.Exec() != o.Exec() || s.Mode != o.Mode || s.BatchSize != o.BatchSize {
		t.Fatalf("round trip changed span:\n got %+v\nwant %+v", s, o)
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	rec := NewRecorder()
	na := Ev(0, NodeAcquired)
	na.Node, na.Spec = 1, "p3.2xlarge"
	rec.Event(na)
	feedLifecycle(rec)
	smp := Ev(ms(20), Sample)
	smp.Detail, smp.Value = "pending_requests", 4
	rec.Event(smp)

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	phases := map[string]int{}
	var reqOpen, reqClose int
	for _, e := range doc.TraceEvents {
		ph := e["ph"].(string)
		phases[ph]++
		if e["name"] == "request" {
			switch ph {
			case "b":
				reqOpen++
			case "e":
				reqClose++
			}
		}
	}
	// Thread metadata, async slices (balanced), a counter sample.
	if phases["M"] < 2 {
		t.Fatalf("missing metadata events: %v", phases)
	}
	if phases["b"] == 0 || phases["b"] != phases["e"] {
		t.Fatalf("unbalanced async events: %v", phases)
	}
	if phases["C"] != 1 {
		t.Fatalf("want 1 counter event: %v", phases)
	}
	if reqOpen != 1 || reqClose != 1 {
		t.Fatalf("request track open/close = %d/%d", reqOpen, reqClose)
	}
}

func TestEventStringAndKindNames(t *testing.T) {
	e := Ev(ms(1500), Dispatched)
	e.Req, e.Job, e.Node, e.Spec, e.N, e.Detail = 9, 2, 0, "M60", 3, "queued"
	s := e.String()
	for _, want := range []string{"dispatched", "req=9", "job=2", "node=0", "spec=M60", "n=3", "queued"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if Kind(200).String() == "" {
		t.Fatal("out-of-range kind must still format")
	}
	for k := Arrived; k <= Sample; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

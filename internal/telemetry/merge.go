package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"
)

// MergeWriter is the sharded counterpart of StreamWriter: it assembles and
// writes spans (and, optionally, the raw event feed) from several concurrent
// simulation lanes into one output, in a deterministic virtual-time merge
// order. Each lane gets its own Sink (Lane), safe to feed from that lane's
// goroutine; the coordinator drains the queues at virtual-time barriers with
// FlushThrough, which must never run concurrently with lane feeds (the
// sharded executor flushes between epochs, after joining the lane workers).
//
// Merge order is (key, lane, arrival-within-lane), where key is the lane's
// running maximum of event times — a deterministic function of the lane's
// own event sequence, never of worker scheduling — so `-shards N` output is
// byte-identical for every N. With a single lane the output is byte-identical
// to StreamWriter's: the merge reduces to the lane's FIFO, which is exactly
// completion order.
//
// Multi-lane writers stamp the lane index into every event's Tenant field
// (lanes are single-tenant simulations), so spans and event lines identify
// their lane and sample series names gain a "t<lane>/" prefix. A one-lane
// writer stamps nothing.
type MergeWriter struct {
	lanes  []*LaneSink
	series *SeriesSet

	spans      *bufio.Writer
	events     *bufio.Writer
	haveEvents bool
	buf        []byte // reused JSONL line buffer

	written int
	err     error
}

// queuedSpan is a completed span awaiting its barrier flush.
type queuedSpan struct {
	key time.Duration
	s   *Span
}

// queuedEvent is a raw event line awaiting its barrier flush.
type queuedEvent struct {
	key time.Duration
	e   Event
}

// LaneSink is one lane's Sink into a MergeWriter. It is not safe for
// concurrent use; each lane feeds its own. Distinct lanes may feed
// concurrently: a lane sink touches only its own queues, never the shared
// writer state (which only FlushThrough and Close touch, between feeds).
type LaneSink struct {
	w    *MergeWriter
	lane int
	asm  assembler
	key  time.Duration // running max of observed event times
	peak int           // lane-local queue high-water mark

	spanQ  []queuedSpan
	spanLo int // consumed prefix of spanQ
	evQ    []queuedEvent
	evLo   int
	sampQ  []queuedEvent // Sample events awaiting barrier-time observation
	sampLo int

	// detailIntern caches the lane's "t<lane>/<series>" sample names. The
	// gauge-name set is tiny and fixed per run, so every Sample event after
	// the first per series reuses one interned string instead of a Sprintf.
	detailIntern map[string]string
}

// NewMergeWriter returns a writer merging `lanes` lane feeds into the spans
// writer and, when events is non-nil, the raw event feed. Call Lane(i) for
// each lane's sink, FlushThrough at barriers, and Close at the end.
func NewMergeWriter(spans, events io.Writer, lanes int) *MergeWriter {
	if lanes < 1 {
		lanes = 1
	}
	w := &MergeWriter{series: NewSeriesSet()}
	w.spans = bufio.NewWriter(spans)
	if events != nil {
		w.events = bufio.NewWriter(events)
		w.haveEvents = true
	}
	w.lanes = make([]*LaneSink, lanes)
	for i := range w.lanes {
		l := &LaneSink{w: w, lane: i, asm: newAssembler()}
		l.asm.onDone = func(s *Span) {
			l.spanQ = append(l.spanQ, queuedSpan{key: l.key, s: s})
		}
		w.lanes[i] = l
	}
	return w
}

// Lane returns lane i's Sink.
func (w *MergeWriter) Lane(i int) *LaneSink { return w.lanes[i] }

// Lanes returns the number of lanes.
func (w *MergeWriter) Lanes() int { return len(w.lanes) }

// Event implements Sink for one lane.
func (l *LaneSink) Event(e Event) {
	if e.At > l.key {
		// Event times are nondecreasing per lane in practice; the running
		// max makes the flush key monotone even if a source ever emits a
		// timestamp from before the clock (keys must not regress past an
		// already-flushed barrier).
		l.key = e.At
	}
	if len(l.w.lanes) > 1 {
		e.Tenant = l.lane
		if e.Kind == Sample {
			e.Detail = l.prefixed(e.Detail)
		}
	}
	if e.Kind == Sample {
		// The shared SeriesSet is only touched at barriers (lanes feed
		// concurrently); per-series observation order stays lane-FIFO — with
		// per-lane series names, one lane owns each series — so the series
		// contents are independent of flush cadence.
		l.sampQ = append(l.sampQ, queuedEvent{key: l.key, e: e})
		if l.w.haveEvents {
			l.evQ = append(l.evQ, queuedEvent{key: l.key, e: e})
		}
		return
	}
	if l.w.haveEvents {
		l.evQ = append(l.evQ, queuedEvent{key: l.key, e: e})
	}
	l.asm.observe(e)
	if n := l.queued(); n > l.peak {
		l.peak = n
	}
}

// prefixed returns the lane-qualified series name "t<lane>/<detail>",
// interned per lane so repeated samples of the same gauge share one string.
func (l *LaneSink) prefixed(detail string) string {
	if p, ok := l.detailIntern[detail]; ok {
		return p
	}
	if l.detailIntern == nil {
		l.detailIntern = make(map[string]string)
	}
	p := fmt.Sprintf("t%d/%s", l.lane, detail)
	l.detailIntern[detail] = p
	return p
}

// queued is the lane's current buffered load: assembler in-flight spans plus
// spans and event lines awaiting flush.
func (l *LaneSink) queued() int {
	return l.asm.inFlight() + (len(l.spanQ) - l.spanLo) +
		(len(l.evQ) - l.evLo) + (len(l.sampQ) - l.sampLo)
}

// FlushThrough writes every queued span and event line with key <= t, merged
// across lanes in (key, lane, lane-FIFO) order. The caller must ensure no
// lane is concurrently feeding (barrier synchronization).
func (w *MergeWriter) FlushThrough(t time.Duration) {
	for {
		best := -1
		var bestKey time.Duration
		for i, l := range w.lanes {
			if l.spanLo >= len(l.spanQ) {
				continue
			}
			if k := l.spanQ[l.spanLo].key; k <= t && (best < 0 || k < bestKey) {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			break
		}
		l := w.lanes[best]
		s := l.spanQ[l.spanLo].s
		w.writeSpan(s)
		if w.err == nil {
			// The merge writer owns its spans end to end; recycle into the
			// owning lane's assembler once encoded.
			l.asm.recycle(s)
		}
		l.spanQ[l.spanLo].s = nil
		l.spanLo++
		l.compact()
	}
	// Samples: one lane owns each (prefixed) series, so a per-lane drain in
	// lane order preserves every series' lane-FIFO contents.
	for _, l := range w.lanes {
		for l.sampLo < len(l.sampQ) && l.sampQ[l.sampLo].key <= t {
			e := l.sampQ[l.sampLo].e
			w.series.Observe(e.Detail, e.At, e.Value)
			l.sampQ[l.sampLo] = queuedEvent{}
			l.sampLo++
		}
		l.compact()
	}
	if !w.haveEvents {
		return
	}
	for {
		best := -1
		var bestKey time.Duration
		for i, l := range w.lanes {
			if l.evLo >= len(l.evQ) {
				continue
			}
			if k := l.evQ[l.evLo].key; k <= t && (best < 0 || k < bestKey) {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			break
		}
		l := w.lanes[best]
		if w.err == nil {
			w.buf = appendEventLine(w.buf[:0], l.evQ[l.evLo].e)
			if _, err := w.events.Write(w.buf); err != nil {
				w.err = err
			}
		}
		l.evQ[l.evLo] = queuedEvent{}
		l.evLo++
		l.compact()
	}
}

// compact reclaims the consumed queue prefixes once they dominate.
func (l *LaneSink) compact() {
	if l.spanLo > 64 && l.spanLo*2 > len(l.spanQ) {
		n := copy(l.spanQ, l.spanQ[l.spanLo:])
		for i := n; i < len(l.spanQ); i++ {
			l.spanQ[i] = queuedSpan{}
		}
		l.spanQ = l.spanQ[:n]
		l.spanLo = 0
	}
	if l.evLo > 64 && l.evLo*2 > len(l.evQ) {
		n := copy(l.evQ, l.evQ[l.evLo:])
		for i := n; i < len(l.evQ); i++ {
			l.evQ[i] = queuedEvent{}
		}
		l.evQ = l.evQ[:n]
		l.evLo = 0
	}
	if l.sampLo > 64 && l.sampLo*2 > len(l.sampQ) {
		n := copy(l.sampQ, l.sampQ[l.sampLo:])
		for i := n; i < len(l.sampQ); i++ {
			l.sampQ[i] = queuedEvent{}
		}
		l.sampQ = l.sampQ[:n]
		l.sampLo = 0
	}
}

func (w *MergeWriter) writeSpan(s *Span) {
	if w.err != nil {
		return
	}
	w.buf = appendSpanLine(w.buf[:0], s)
	if _, err := w.spans.Write(w.buf); err != nil {
		w.err = err
		return
	}
	w.written++
}

// Close drains every queue, writes the spans still open in any lane's
// assembler (requests that never reached a terminal state) in the
// StreamWriter's deterministic (Arrived, Tenant, Req) order merged across
// lanes, flushes the buffers, and returns the first error encountered.
func (w *MergeWriter) Close() error {
	w.FlushThrough(1<<63 - 1)
	var open []*Span
	for _, l := range w.lanes {
		open = append(open, l.asm.unflushed()...)
	}
	sort.Slice(open, func(i, j int) bool {
		if open[i].Arrived != open[j].Arrived {
			return open[i].Arrived < open[j].Arrived
		}
		if open[i].Tenant != open[j].Tenant {
			return open[i].Tenant < open[j].Tenant
		}
		return open[i].Req < open[j].Req
	})
	for _, s := range open {
		w.writeSpan(s)
	}
	for i := range w.lanes {
		l := &LaneSink{w: w, lane: i, asm: newAssembler(), peak: w.lanes[i].peak}
		l.asm.onDone = func(s *Span) {
			l.spanQ = append(l.spanQ, queuedSpan{key: l.key, s: s})
		}
		w.lanes[i] = l
	}
	if err := w.spans.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if w.events != nil {
		if err := w.events.Flush(); err != nil && w.err == nil {
			w.err = err
		}
	}
	return w.err
}

// Err returns the first write error encountered so far; errors are sticky,
// like StreamWriter's.
func (w *MergeWriter) Err() error { return w.err }

// Series returns the time series collected from Sample events (series names
// carry a "t<lane>/" prefix when the writer has more than one lane).
func (w *MergeWriter) Series() *SeriesSet { return w.series }

// SpansWritten is the number of spans flushed so far.
func (w *MergeWriter) SpansWritten() int { return w.written }

// PeakQueued is the maximum number of spans and event lines any single lane
// held at once (assembler in-flight plus barrier queues) — the writer's
// memory high-water mark per lane. Call it only while no lane is feeding.
func (w *MergeWriter) PeakQueued() int {
	peak := 0
	for _, l := range w.lanes {
		if l.peak > peak {
			peak = l.peak
		}
	}
	return peak
}

// WithTenant returns a sink that stamps tenant into every event before
// forwarding — how sharded lanes, each a single-tenant simulation emitting
// Tenant 0, are told apart by a shared consumer (the live observability
// plane's hub keys spans by (Tenant, Req)). A nil sink stays nil, preserving
// the disabled-telemetry fast path.
func WithTenant(s Sink, tenant int) Sink {
	if s == nil {
		return nil
	}
	return tenantSink{s: s, tenant: tenant}
}

type tenantSink struct {
	s      Sink
	tenant int
}

func (t tenantSink) Event(e Event) {
	e.Tenant = t.tenant
	t.s.Event(e)
}

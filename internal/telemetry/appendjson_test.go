package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestAppendEncodersMatchEncodingJSON pins the hand-rolled appendSpanLine /
// appendEventLine encoders to encoding/json itself: for a gauntlet of spans
// and events — adversarial strings (HTML metacharacters, control bytes,
// invalid UTF-8, U+2028/U+2029), extreme and subnormal floats, zero and
// negative identifiers — the bytes must be identical to what a
// json.Encoder produced historically.
func TestAppendEncodersMatchEncodingJSON(t *testing.T) {
	nastyStrings := []string{
		"",
		"spatial",
		"g4dn.xlarge",
		"a<b>&c",
		"quote\"back\\slash",
		"newline\ntab\tcr\r",
		"ctrl\x00\x01\x1f",
		"bad utf8 \xff\xfe tail",
		"line sep \u2028 and \u2029 end",
		"mixed <&> \x07 ünïcödé 日本語",
		"trailing backslash\\",
	}
	floats := []float64{
		0, 1, -1, 0.5, 123.456, 1e-7, -1e-7, 9.999e-7, 1e-6, 1e20, 1e21,
		-3.25e22, 5e-324, math.MaxFloat64, 0.1 + 0.2, 1234567.891,
	}

	var got []byte
	var want bytes.Buffer
	enc := json.NewEncoder(&want)

	checkEvent := func(e Event) {
		t.Helper()
		want.Reset()
		if err := enc.Encode(eventJSON{
			AtNs: int64(e.At), Kind: e.Kind.String(), Req: e.Req, Job: e.Job,
			Node: e.Node, Tenant: e.Tenant, Spec: e.Spec, N: e.N,
			Value: e.Value, Detail: e.Detail,
		}); err != nil {
			t.Fatalf("encoding/json: %v", err)
		}
		got = appendEventLine(got[:0], e)
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("event %+v:\nappend: %q\n  json: %q", e, got, want.Bytes())
		}
	}
	checkSpan := func(s *Span) {
		t.Helper()
		want.Reset()
		if err := enc.Encode(toJSON(s)); err != nil {
			t.Fatalf("encoding/json: %v", err)
		}
		got = appendSpanLine(got[:0], s)
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("span %+v:\nappend: %q\n  json: %q", s, got, want.Bytes())
		}
	}

	kinds := []Kind{Arrived, Dispatched, Sample, NodeFailed, HWSwitch, Cloned, CloneCancelled, NodeRevoked}
	for i, detail := range nastyStrings {
		for j, v := range floats {
			e := Event{
				At: time.Duration(i*j) * time.Millisecond, Kind: kinds[(i+j)%len(kinds)],
				Req: int64(i - 5), Job: int64(j - 3), Node: i - 1, Tenant: j - 2,
				Spec: nastyStrings[(i+1)%len(nastyStrings)], N: i - 4, Value: v,
				Detail: detail,
			}
			checkEvent(e)
		}
	}
	// The all-zero event exercises every omitempty branch at once.
	checkEvent(Event{})

	for i, spec := range nastyStrings {
		s := newSpan(int64(i-2), i-1)
		s.Spec = spec
		s.Mode = nastyStrings[(i+3)%len(nastyStrings)]
		s.Node = i - 3
		s.Job = int64(i)
		s.BatchSize = i * 7
		s.Failed = i%2 == 0
		// Exercise every combination of the omitempty redundancy counters.
		s.Clones = i % 3
		s.Hedged = i%4 == 1
		s.Cancelled = (i + 1) % 2
		if i%3 != 0 {
			s.Arrived = time.Duration(i) * time.Second
			s.Dispatched = s.Arrived + time.Millisecond
			s.Queued = s.Dispatched + 2*time.Millisecond
			s.ExecStart = s.Queued + 3*time.Millisecond
			s.ExecEnd = s.ExecStart + 40*time.Millisecond
			s.Completed = s.ExecEnd
		}
		checkSpan(s)
	}
	checkSpan(newSpan(0, 0))
}

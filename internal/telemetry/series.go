package telemetry

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/sim"
	"repro/internal/svgplot"
)

// Point is one time-series observation in virtual time.
type Point struct {
	At    time.Duration
	Value float64
}

// Series is one named virtual-time series.
type Series struct {
	Name   string
	Points []Point
}

// Last returns the most recent observation (zero Point when empty).
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// SeriesSet holds the series of one run, preserving first-observation
// order so exports are deterministic.
type SeriesSet struct {
	order  []string
	byName map[string]*Series
}

// NewSeriesSet returns an empty set.
func NewSeriesSet() *SeriesSet {
	return &SeriesSet{byName: make(map[string]*Series)}
}

// Observe appends one observation, creating the series on first use.
func (ss *SeriesSet) Observe(name string, at time.Duration, v float64) {
	s, ok := ss.byName[name]
	if !ok {
		s = &Series{Name: name}
		ss.byName[name] = s
		ss.order = append(ss.order, name)
	}
	s.Points = append(s.Points, Point{At: at, Value: v})
}

// Names returns the series names in first-observation order.
func (ss *SeriesSet) Names() []string { return ss.order }

// Get returns the named series, or nil.
func (ss *SeriesSet) Get(name string) *Series { return ss.byName[name] }

// Len returns the number of series.
func (ss *SeriesSet) Len() int { return len(ss.order) }

// WriteCSV exports the set as one aligned table: a t_s column followed by
// one column per series, one row per distinct sample instant (cells are
// empty where a series has no observation at that instant).
func (ss *SeriesSet) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	// Series names are free-form, so the header goes through encoding/csv
	// for its quoting rules; the data rows are all numeric (never quoted)
	// and are appended into one reused buffer.
	cw := csv.NewWriter(bw)
	header := append([]string{"t_s"}, ss.order...)
	if err := cw.Write(header); err != nil {
		return err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	// The sampler observes every series at every tick, so the instants of
	// the longest series cover the union in order; merge defensively anyway.
	times := ss.mergedTimes()
	cursor := make([]int, len(ss.order))
	var buf []byte
	for _, t := range times {
		buf = strconv.AppendFloat(buf[:0], t.Seconds(), 'f', 6, 64)
		for i, name := range ss.order {
			buf = append(buf, ',')
			pts := ss.byName[name].Points
			if cursor[i] < len(pts) && pts[cursor[i]].At == t {
				buf = strconv.AppendFloat(buf, pts[cursor[i]].Value, 'g', -1, 64)
				cursor[i]++
			}
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// mergedTimes returns the sorted union of sample instants across series.
// Each series is individually time-ordered, so this is a k-way merge.
func (ss *SeriesSet) mergedTimes() []time.Duration {
	cursor := make([]int, len(ss.order))
	var out []time.Duration
	for {
		best, found := time.Duration(0), false
		for i, name := range ss.order {
			pts := ss.byName[name].Points
			if cursor[i] < len(pts) && (!found || pts[cursor[i]].At < best) {
				best, found = pts[cursor[i]].At, true
			}
		}
		if !found {
			return out
		}
		out = append(out, best)
		for i, name := range ss.order {
			pts := ss.byName[name].Points
			for cursor[i] < len(pts) && pts[cursor[i]].At == best {
				cursor[i]++
			}
		}
	}
}

// ReadSeriesCSV parses a table previously written with WriteCSV.
func ReadSeriesCSV(r io.Reader) (*SeriesSet, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 || len(rows[0]) < 2 || rows[0][0] != "t_s" {
		return nil, fmt.Errorf("telemetry: not a series CSV (want a t_s header)")
	}
	names := rows[0][1:]
	ss := NewSeriesSet()
	for ri, row := range rows[1:] {
		if len(row) != len(rows[0]) {
			return nil, fmt.Errorf("telemetry: row %d has %d columns, want %d", ri+2, len(row), len(rows[0]))
		}
		sec, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: row %d column t_s: %w", ri+2, err)
		}
		at := time.Duration(sec * float64(time.Second))
		for ci, cell := range row[1:] {
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: row %d column %s: %w", ri+2, names[ci], err)
			}
			ss.Observe(names[ci], at, v)
		}
	}
	return ss, nil
}

// TimelineSVG renders the named series (all of them when names is empty)
// as a multi-series line chart over virtual time.
func (ss *SeriesSet) TimelineSVG(w io.Writer, title string, names ...string) error {
	if len(names) == 0 {
		names = ss.order
	}
	fig := &svgplot.Lines{Title: title, XLabel: "virtual time (s)", YLabel: "value"}
	for _, name := range names {
		s := ss.byName[name]
		if s == nil {
			continue
		}
		pts := make([][2]float64, len(s.Points))
		for i, p := range s.Points {
			pts[i] = [2]float64{p.At.Seconds(), p.Value}
		}
		fig.Series = append(fig.Series, svgplot.LineSeries{Name: name, Points: pts})
	}
	return fig.Render(w)
}

// Gauge is one sampled quantity: a name and a side-effect-free reader.
type Gauge struct {
	Name string
	Read func() float64
}

// Sampler emits one Sample event per gauge on a fixed virtual-time
// cadence, driven by the simulation engine. Readers must not perturb the
// simulation (use read-only state accessors).
type Sampler struct {
	eng    *sim.Engine
	sink   Sink
	every  time.Duration
	gauges []Gauge
	tickFn func() // tick bound once so rescheduling never re-allocates

	stopped bool
}

// NewSampler wires a sampler; call Start to begin ticking. A nil sink or
// non-positive cadence yields a sampler whose Start is a no-op.
func NewSampler(eng *sim.Engine, sink Sink, every time.Duration, gauges []Gauge) *Sampler {
	return &Sampler{eng: eng, sink: sink, every: every, gauges: gauges}
}

// Start samples immediately and then on every cadence tick until Stop.
func (s *Sampler) Start() {
	if s.sink == nil || s.every <= 0 {
		return
	}
	s.stopped = false
	if s.tickFn == nil {
		s.tickFn = s.tick
	}
	s.tick()
}

// Stop halts sampling after the current tick.
func (s *Sampler) Stop() { s.stopped = true }

func (s *Sampler) tick() {
	if s.stopped {
		return
	}
	now := s.eng.Now()
	for _, g := range s.gauges {
		e := Ev(now, Sample)
		e.Detail = g.Name
		e.Value = g.Read()
		s.sink.Event(e)
	}
	s.eng.Schedule(s.every, s.tickFn)
}

package telemetry

import (
	"bufio"
	"io"
	"sort"
)

// assembler turns the lifecycle event feed into Spans. It is the shared
// core behind the buffering Recorder and the flush-as-you-go StreamWriter:
// both see exactly the same span contents because both run this code.
type assembler struct {
	open    map[spanKey]*Span
	jobs    map[int64][]*Span // job ID -> member spans awaiting exec stamps
	waiting map[int64][]*Span // terminal spans awaiting their job's ExecEnd

	// onNew fires when a span is first created; onDone fires when a span is
	// terminal and its job stamps are resolved, i.e. it will never change
	// again. Either may be nil.
	onNew  func(*Span)
	onDone func(*Span)

	// free recycles flushed spans for reuse by span(). Only owners that
	// never let spans escape (the streaming writers, which encode and drop
	// them) call recycle; the Recorder and SpanAssembler hand spans to
	// consumers that may retain them, so their free lists stay empty.
	free []*Span
}

func newAssembler() assembler {
	return assembler{
		open:    make(map[spanKey]*Span),
		jobs:    make(map[int64][]*Span),
		waiting: make(map[int64][]*Span),
	}
}

// observe absorbs one lifecycle event. Sample events are not lifecycle
// events and must be handled by the caller.
func (a *assembler) observe(e Event) {
	switch e.Kind {
	case Arrived:
		a.span(e).Arrived = e.At
	case Batched:
		a.span(e).Batched = e.At
	case Dispatched:
		s := a.span(e)
		s.Dispatched = e.At
		s.Job = e.Job
		s.Node = e.Node
		s.Spec = e.Spec
		s.BatchSize = e.N
		s.Mode = e.Detail
		if e.Job > 0 {
			a.jobs[e.Job] = append(a.jobs[e.Job], s)
		}
	case Queued:
		for _, s := range a.jobs[e.Job] {
			s.Queued = e.At
		}
	case ExecStart:
		for _, s := range a.jobs[e.Job] {
			s.ExecStart = e.At
		}
	case ExecEnd:
		a.resolveJob(e)
	case Cloned:
		s := a.span(e)
		s.Clones++
		if e.Detail == "hedge" {
			s.Hedged = true
		}
	case CloneCancelled:
		// A copy was withdrawn because a sibling finished first. Count it on
		// the still-open span (cancellation always precedes the request's
		// terminal event), and resolve the copy's job like an ExecEnd: when
		// the primary copy loses the race its members' exec stamps end at the
		// cancel instant, so their spans flush promptly instead of waiting for
		// an ExecEnd that will never come.
		if s, ok := a.open[spanKey{e.Tenant, e.Req}]; ok {
			s.Cancelled++
		}
		a.resolveJob(e)
	case Completed, Failed:
		s := a.span(e)
		s.Completed = e.At
		s.Failed = e.Kind == Failed
		delete(a.open, spanKey{e.Tenant, e.Req})
		if s.Job > 0 {
			if _, pending := a.jobs[s.Job]; pending {
				// Completion outran the batch's ExecEnd; hold the span until
				// the exec stamps land.
				a.waiting[s.Job] = append(a.waiting[s.Job], s)
				return
			}
		}
		if a.onDone != nil {
			a.onDone(s)
		}
	}
}

// resolveJob stamps ExecEnd on the job's member spans and releases any
// terminal spans that were waiting on the job.
func (a *assembler) resolveJob(e Event) {
	for _, s := range a.jobs[e.Job] {
		s.ExecEnd = e.At
	}
	delete(a.jobs, e.Job)
	if ws := a.waiting[e.Job]; ws != nil {
		delete(a.waiting, e.Job)
		if a.onDone != nil {
			for _, s := range ws {
				a.onDone(s)
			}
		}
	}
}

// span returns the open span for the event's request, creating one on
// first sight (events may arrive without a prior Arrived in unit tests).
func (a *assembler) span(e Event) *Span {
	k := spanKey{e.Tenant, e.Req}
	if s, ok := a.open[k]; ok {
		return s
	}
	var s *Span
	if n := len(a.free); n > 0 {
		s = a.free[n-1]
		a.free = a.free[:n-1]
		*s = Span{
			Req: e.Req, Tenant: e.Tenant, Node: -1,
			Arrived: unset, Batched: unset, Dispatched: unset, Queued: unset,
			ExecStart: unset, ExecEnd: unset, Completed: unset,
		}
	} else {
		s = newSpan(e.Req, e.Tenant)
	}
	a.open[k] = s
	if a.onNew != nil {
		a.onNew(s)
	}
	return s
}

// recycle returns a flushed span to the free list. The caller guarantees no
// reference to s survives; by onDone time the assembler itself holds none
// (the span is out of open, jobs and waiting).
func (a *assembler) recycle(s *Span) { a.free = append(a.free, s) }

// inFlight is the number of spans the assembler currently retains.
func (a *assembler) inFlight() int {
	n := len(a.open)
	for _, ws := range a.waiting {
		n += len(ws)
	}
	return n
}

// unflushed returns every span the assembler still holds (never-terminal
// requests plus terminal spans whose job never stamped ExecEnd), in a
// deterministic order.
func (a *assembler) unflushed() []*Span {
	var out []*Span
	for _, s := range a.open {
		out = append(out, s)
	}
	for _, ws := range a.waiting {
		out = append(out, ws...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Arrived != out[j].Arrived {
			return out[i].Arrived < out[j].Arrived
		}
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Req < out[j].Req
	})
	return out
}

// SpanAssembler is the exported face of the event->span assembler for
// consumers outside this package — the live observability plane (internal/
// obs) assembles spans from the event feed to stream them over SSE and to
// judge SLO compliance per tenant. It shares the exact assembly code behind
// the Recorder and the StreamWriter, so a span observed through it is
// byte-identical to the one those sinks would export.
//
// SpanAssembler is not itself safe for concurrent use; callers observing
// from one goroutine and reading from another must synchronize (the obs hub
// holds its own lock around both).
type SpanAssembler struct {
	a assembler
}

// NewSpanAssembler returns an assembler invoking done with every span the
// moment it can no longer change (terminal and job-stamped).
func NewSpanAssembler(done func(*Span)) *SpanAssembler {
	sa := &SpanAssembler{a: newAssembler()}
	sa.a.onDone = done
	return sa
}

// Observe absorbs one lifecycle event; Sample events are ignored (they
// carry no span information).
func (sa *SpanAssembler) Observe(e Event) {
	if e.Kind == Sample {
		return
	}
	sa.a.observe(e)
}

// InFlight is the number of spans currently open — the assembler's memory
// high-water contribution and the live "in flight requests" reading.
func (sa *SpanAssembler) InFlight() int { return sa.a.inFlight() }

// Unflushed returns every span still held (requests that never reached a
// terminal state), in deterministic order, without mutating the assembler.
func (sa *SpanAssembler) Unflushed() []*Span { return sa.a.unflushed() }

// StreamWriter is the bounded-memory Sink: it assembles spans exactly like
// the Recorder but writes each span to its JSONL writer the moment the span
// can no longer change, instead of buffering the whole run. Memory is
// O(in-flight requests), independent of trace length. Spans appear in the
// output in completion order (the Recorder writes arrival order); the
// per-span bytes are identical. The optional events writer receives the raw
// event feed line by line, byte-identical to Recorder.WriteEventsJSONL.
// Sample events still feed an in-memory SeriesSet, whose size is bounded by
// run duration and sample cadence, not request count.
type StreamWriter struct {
	asm    assembler
	series *SeriesSet

	spans  *bufio.Writer
	events *bufio.Writer
	buf    []byte // reused JSONL line buffer

	written int
	peak    int
	err     error
}

// NewStreamWriter returns a StreamWriter flushing spans to spans and, when
// events is non-nil, the raw event feed to events. Call Close to flush
// still-open spans and the underlying buffers.
func NewStreamWriter(spans, events io.Writer) *StreamWriter {
	w := &StreamWriter{asm: newAssembler(), series: NewSeriesSet()}
	w.spans = bufio.NewWriter(spans)
	if events != nil {
		w.events = bufio.NewWriter(events)
	}
	w.asm.onDone = w.flush
	return w
}

// Event implements Sink. Write errors are sticky and reported by Close.
func (w *StreamWriter) Event(e Event) {
	if w.events != nil && w.err == nil {
		w.buf = appendEventLine(w.buf[:0], e)
		if _, err := w.events.Write(w.buf); err != nil {
			w.err = err
		}
	}
	if e.Kind == Sample {
		w.series.Observe(e.Detail, e.At, e.Value)
		return
	}
	w.asm.observe(e)
	if n := w.asm.inFlight(); n > w.peak {
		w.peak = n
	}
}

// flush encodes one finished span and recycles it: the writer owns its spans
// outright (nothing downstream retains them), so the whole assemble->encode
// cycle reuses a bounded set of Span structs.
func (w *StreamWriter) flush(s *Span) {
	if w.err != nil {
		return
	}
	w.buf = appendSpanLine(w.buf[:0], s)
	if _, err := w.spans.Write(w.buf); err != nil {
		w.err = err
		return
	}
	w.written++
	w.asm.recycle(s)
}

// Close writes any spans still held (requests that never completed, or
// whose batch never stamped ExecEnd), flushes the buffers, and returns the
// first error encountered.
func (w *StreamWriter) Close() error {
	for _, s := range w.asm.unflushed() {
		w.flush(s)
	}
	w.asm = newAssembler()
	w.asm.onDone = w.flush
	if err := w.spans.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if w.events != nil {
		if err := w.events.Flush(); err != nil && w.err == nil {
			w.err = err
		}
	}
	return w.err
}

// Err returns the first write error encountered so far; nil while healthy.
// Errors are sticky: after the first failure no further spans or events are
// written, and Close reports the same error. Long-running callers (the
// streaming CLI) can poll Err mid-run instead of discovering a dead sink
// only at Close.
func (w *StreamWriter) Err() error { return w.err }

// Series returns the time series collected from Sample events.
func (w *StreamWriter) Series() *SeriesSet { return w.series }

// SpansWritten is the number of spans flushed so far.
func (w *StreamWriter) SpansWritten() int { return w.written }

// PeakInFlight is the maximum number of spans held at once — the writer's
// actual memory high-water mark in spans.
func (w *StreamWriter) PeakInFlight() int { return w.peak }

package telemetry

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// Append-style JSONL encoders for the two hot export schemas (spans and
// events). Every exporter used to push values through encoding/json's
// reflection-driven Encoder, which allocates per line; these build the exact
// same bytes — field order, omitempty semantics, HTML escaping, float
// formatting, trailing newline — into a caller-reused buffer. The
// equivalence is pinned by TestAppendEncodersMatchEncodingJSON against
// encoding/json itself over adversarial inputs.

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string exactly as encoding/json does
// with its default (HTML-escaping) encoder: quotes and backslashes escaped,
// \n \r \t named, other control characters as \u00xx, '<', '>', '&' as
// </>/&, U+2028/U+2029 escaped, and invalid UTF-8 bytes
// replaced with �.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch b {
			case '\\', '"':
				buf = append(buf, '\\', b)
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

// appendJSONFloat appends f exactly as encoding/json's floatEncoder does:
// shortest representation, 'f' format for magnitudes in [1e-6, 1e21), 'e'
// otherwise with the exponent's leading zero trimmed (e-09 -> e-9).
// encoding/json rejects NaN and infinities with an error; telemetry values
// are finite by construction, so this encoder has no error path.
func appendJSONFloat(buf []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		if n := len(buf); n >= 4 && buf[n-4] == 'e' && buf[n-3] == '-' && buf[n-2] == '0' {
			buf[n-2] = buf[n-1]
			buf = buf[:n-1]
		}
	}
	return buf
}

// appendSpanLine appends the span's JSONL line — the byte-identical
// counterpart of json.Encoder.Encode(toJSON(s)), including the trailing
// newline. Field order and the always-present fields match spanJSON.
func appendSpanLine(buf []byte, s *Span) []byte {
	buf = append(buf, `{"req":`...)
	buf = strconv.AppendInt(buf, s.Req, 10)
	buf = append(buf, `,"tenant":`...)
	buf = strconv.AppendInt(buf, int64(s.Tenant), 10)
	buf = append(buf, `,"node":`...)
	buf = strconv.AppendInt(buf, int64(s.Node), 10)
	buf = append(buf, `,"spec":`...)
	buf = appendJSONString(buf, s.Spec)
	buf = append(buf, `,"job":`...)
	buf = strconv.AppendInt(buf, s.Job, 10)
	buf = append(buf, `,"batch":`...)
	buf = strconv.AppendInt(buf, int64(s.BatchSize), 10)
	buf = append(buf, `,"mode":`...)
	buf = appendJSONString(buf, s.Mode)
	buf = append(buf, `,"failed":`...)
	buf = strconv.AppendBool(buf, s.Failed)
	buf = append(buf, `,"arrived_ns":`...)
	buf = strconv.AppendInt(buf, int64(s.Arrived), 10)
	buf = append(buf, `,"batch_wait_ns":`...)
	buf = strconv.AppendInt(buf, int64(s.BatchWait()), 10)
	buf = append(buf, `,"cold_ns":`...)
	buf = strconv.AppendInt(buf, int64(s.ColdStart()), 10)
	buf = append(buf, `,"queue_ns":`...)
	buf = strconv.AppendInt(buf, int64(s.QueueDelay()), 10)
	buf = append(buf, `,"exec_ns":`...)
	buf = strconv.AppendInt(buf, int64(s.Exec()), 10)
	buf = append(buf, `,"latency_ns":`...)
	buf = strconv.AppendInt(buf, int64(s.Latency()), 10)
	if s.Clones != 0 {
		buf = append(buf, `,"clones":`...)
		buf = strconv.AppendInt(buf, int64(s.Clones), 10)
	}
	if s.Hedged {
		buf = append(buf, `,"hedged":true`...)
	}
	if s.Cancelled != 0 {
		buf = append(buf, `,"cancelled":`...)
		buf = strconv.AppendInt(buf, int64(s.Cancelled), 10)
	}
	return append(buf, '}', '\n')
}

// appendEventLine appends the event's JSONL line — the byte-identical
// counterpart of json.Encoder.Encode(eventJSON{...}), including omitempty
// semantics (zero-valued job/tenant/spec/n/value/detail fields are omitted)
// and the trailing newline.
func appendEventLine(buf []byte, e Event) []byte {
	buf = append(buf, `{"at_ns":`...)
	buf = strconv.AppendInt(buf, int64(e.At), 10)
	buf = append(buf, `,"kind":`...)
	buf = appendJSONString(buf, e.Kind.String())
	buf = append(buf, `,"req":`...)
	buf = strconv.AppendInt(buf, e.Req, 10)
	if e.Job != 0 {
		buf = append(buf, `,"job":`...)
		buf = strconv.AppendInt(buf, e.Job, 10)
	}
	buf = append(buf, `,"node":`...)
	buf = strconv.AppendInt(buf, int64(e.Node), 10)
	if e.Tenant != 0 {
		buf = append(buf, `,"tenant":`...)
		buf = strconv.AppendInt(buf, int64(e.Tenant), 10)
	}
	if e.Spec != "" {
		buf = append(buf, `,"spec":`...)
		buf = appendJSONString(buf, e.Spec)
	}
	if e.N != 0 {
		buf = append(buf, `,"n":`...)
		buf = strconv.AppendInt(buf, int64(e.N), 10)
	}
	if e.Value != 0 {
		buf = append(buf, `,"value":`...)
		buf = appendJSONFloat(buf, e.Value)
	}
	if e.Detail != "" {
		buf = append(buf, `,"detail":`...)
		buf = appendJSONString(buf, e.Detail)
	}
	return append(buf, '}', '\n')
}

// Package queueing provides the small queueing-theory estimates the
// scheduling policies lean on: utilization, M/D/1-style waiting times, and a
// tail-flavoured worst-case wait. Serial devices (the batched CPU mode, the
// GPU time-share lane) are single-server queues with near-deterministic
// service, so these closed forms are the right first-order model for
// Algorithm 1's approx_T_max.
package queueing

import "time"

// Utilization returns the offered load of a single-server queue: arrival
// rate times mean service time. Values >= 1 mean the queue is unstable.
func Utilization(arrivalRPS float64, service time.Duration) float64 {
	if arrivalRPS <= 0 || service <= 0 {
		return 0
	}
	return arrivalRPS * service.Seconds()
}

// MD1Wait returns the mean queueing delay of an M/D/1 queue (Poisson
// arrivals, deterministic service): W = rho/(2(1-rho)) * S. It returns a
// very large sentinel (an hour) for rho >= 1, which callers treat as
// "disqualified".
func MD1Wait(rho float64, service time.Duration) time.Duration {
	if rho <= 0 {
		return 0
	}
	if rho >= 1 {
		return Unstable
	}
	return time.Duration(rho / (2 * (1 - rho)) * float64(service))
}

// TailWait returns a worst-case-flavoured wait estimate: four times the
// M/D/1 mean. The waiting-time tail is near-exponential, so quantile q sits
// at roughly mean * ln(1/(1-q)); 4x corresponds to ~P98 — the right flavour
// for a T_max-style bound without modelling the full transform.
func TailWait(rho float64, service time.Duration) time.Duration {
	if rho >= 1 {
		return Unstable
	}
	return 4 * MD1Wait(rho, service)
}

// Unstable is the sentinel returned when a queue's utilization is at or
// beyond 1: no finite wait estimate exists.
const Unstable = time.Hour

// Stable reports whether the queue has headroom at the given utilization
// threshold (e.g. 0.85).
func Stable(rho, threshold float64) bool {
	return rho < threshold
}

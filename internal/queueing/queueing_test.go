package queueing

import (
	"testing"
	"testing/quick"
	"time"
)

func TestUtilization(t *testing.T) {
	if got := Utilization(50, 10*time.Millisecond); got != 0.5 {
		t.Fatalf("rho = %v, want 0.5", got)
	}
	if Utilization(0, time.Second) != 0 || Utilization(10, 0) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
}

func TestMD1Wait(t *testing.T) {
	s := 100 * time.Millisecond
	// rho=0.5: W = 0.5/(2*0.5) * S = 0.5 S.
	if got := MD1Wait(0.5, s); got != 50*time.Millisecond {
		t.Fatalf("W(0.5) = %v, want 50ms", got)
	}
	// rho=0.9: W = 0.9/0.2 * S = 4.5 S.
	if got := MD1Wait(0.9, s); got != 450*time.Millisecond {
		t.Fatalf("W(0.9) = %v, want 450ms", got)
	}
	if MD1Wait(1.0, s) != Unstable || MD1Wait(1.5, s) != Unstable {
		t.Fatal("unstable queue must return the sentinel")
	}
	if MD1Wait(0, s) != 0 {
		t.Fatal("empty queue should not wait")
	}
}

func TestTailWaitDominatesMean(t *testing.T) {
	s := 80 * time.Millisecond
	for _, rho := range []float64{0.1, 0.5, 0.8, 0.95} {
		if TailWait(rho, s) != 4*MD1Wait(rho, s) {
			t.Fatalf("tail wait not 4x mean at rho=%v", rho)
		}
	}
	if TailWait(1.2, s) != Unstable {
		t.Fatal("unstable tail must return sentinel")
	}
}

func TestStable(t *testing.T) {
	if !Stable(0.5, 0.85) || Stable(0.85, 0.85) || Stable(0.9, 0.85) {
		t.Fatal("stability threshold broken")
	}
}

// Property: waits are nonnegative and monotone in rho below 1.
func TestWaitMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw) / 65536 * 0.99
		b := float64(bRaw) / 65536 * 0.99
		if a > b {
			a, b = b, a
		}
		s := 50 * time.Millisecond
		wa, wb := MD1Wait(a, s), MD1Wait(b, s)
		return wa >= 0 && wb >= wa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

package container

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestAcquireColdThenWarm(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, GPUColdStart, DefaultKeepAlive)
	if d := p.Acquire(); d != GPUColdStart {
		t.Fatalf("first acquire delay = %v, want cold start %v", d, GPUColdStart)
	}
	p.Release()
	if d := p.Acquire(); d != 0 {
		t.Fatalf("warm acquire delay = %v, want 0", d)
	}
	if p.SyncColdStarts() != 1 || p.Reuses() != 1 || p.Boots() != 1 {
		t.Fatalf("counters: colds=%d reuses=%d boots=%d", p.SyncColdStarts(), p.Reuses(), p.Boots())
	}
}

func TestEnsurePrewarmsInBackground(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, GPUColdStart, DefaultKeepAlive)
	p.Ensure(3)
	if p.Total() != 3 {
		t.Fatalf("total after Ensure = %d, want 3", p.Total())
	}
	if p.Idle() != 0 {
		t.Fatalf("idle before boot completes = %d, want 0", p.Idle())
	}
	eng.Run(GPUColdStart)
	if p.Idle() != 3 {
		t.Fatalf("idle after boot = %d, want 3", p.Idle())
	}
	if p.SyncColdStarts() != 0 {
		t.Fatal("pre-warm charged a synchronous cold start")
	}
	if p.Boots() != 3 {
		t.Fatalf("boots = %d, want 3", p.Boots())
	}
	// Ensure is idempotent at or below current total.
	p.Ensure(2)
	if p.Total() != 3 {
		t.Fatal("Ensure shrank the pool")
	}
}

func TestKeepAliveReapsIdle(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, CPUColdStart, time.Minute)
	p.Ensure(2)
	eng.Run(CPUColdStart)
	if p.Idle() != 2 {
		t.Fatal("setup failed")
	}
	eng.Run(CPUColdStart + 30*time.Second)
	if p.Idle() != 2 {
		t.Fatal("reaped before keep-alive expired")
	}
	eng.Run(CPUColdStart + 2*time.Minute)
	if p.Idle() != 0 {
		t.Fatalf("idle = %d after keep-alive, want 0", p.Idle())
	}
	if p.Terminated() != 2 {
		t.Fatalf("terminated = %d, want 2", p.Terminated())
	}
}

func TestReuseResetsIdleClock(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, CPUColdStart, time.Minute)
	p.Acquire()
	p.Release()
	// Keep using the container every 30s; it must survive well past its
	// original keep-alive horizon.
	for i := 0; i < 5; i++ {
		eng.Run(eng.Now() + 30*time.Second)
		if d := p.Acquire(); d != 0 {
			t.Fatalf("round %d: warm container was reaped while active", i)
		}
		p.Release()
	}
	if p.Terminated() != 0 {
		t.Fatal("active container terminated")
	}
}

func TestZeroKeepAliveTerminatesImmediately(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, CPUColdStart, 0)
	p.Acquire()
	p.Release()
	if p.Idle() != 0 {
		t.Fatal("keepAlive=0 left an idle container")
	}
	if d := p.Acquire(); d != CPUColdStart {
		t.Fatalf("second acquire delay = %v, want a fresh cold start", d)
	}
	if p.Boots() != 2 {
		t.Fatalf("boots = %d, want 2 — every use is a cold start", p.Boots())
	}
}

func TestKeepAliveCutsColdStarts(t *testing.T) {
	// The mechanism behind the paper's 98%-fewer-cold-starts claim: bursty
	// traffic with gaps shorter than the keep-alive window reuses
	// containers, while keepAlive=0 boots one per burst.
	run := func(keepAlive time.Duration) uint64 {
		eng := sim.NewEngine()
		p := NewPool(eng, CPUColdStart, keepAlive)
		for burst := 0; burst < 50; burst++ {
			eng.Schedule(time.Duration(burst)*30*time.Second, func() {
				d := p.Acquire()
				eng.Schedule(d+100*time.Millisecond, func() { p.Release() })
			})
		}
		eng.RunAll()
		return p.Boots()
	}
	with := run(DefaultKeepAlive)
	without := run(0)
	if with != 1 {
		t.Fatalf("boots with keep-alive = %d, want 1", with)
	}
	if without != 50 {
		t.Fatalf("boots without keep-alive = %d, want 50", without)
	}
	reduction := 1 - float64(with)/float64(without)
	if reduction < 0.9 {
		t.Fatalf("cold-start reduction = %.0f%%, want ~98%%", reduction*100)
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPool(sim.NewEngine(), CPUColdStart, 0).Release()
}

func TestBusyAccounting(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, CPUColdStart, DefaultKeepAlive)
	p.Acquire()
	p.Acquire()
	if p.Busy() != 2 {
		t.Fatalf("busy = %d, want 2", p.Busy())
	}
	p.Release()
	if p.Busy() != 1 || p.Idle() != 1 {
		t.Fatalf("busy=%d idle=%d, want 1/1", p.Busy(), p.Idle())
	}
}

func TestAcquireOrWaitImmediateWhenIdle(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, GPUColdStart, DefaultKeepAlive)
	p.AddWarm(1)
	fired := false
	p.AcquireOrWait(func() { fired = true })
	if !fired {
		t.Fatal("warm container should serve the claim synchronously")
	}
	if p.Busy() != 1 || p.Idle() != 0 {
		t.Fatalf("busy=%d idle=%d", p.Busy(), p.Idle())
	}
}

func TestAcquireOrWaitWaitsForBusyContainer(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, GPUColdStart, DefaultKeepAlive)
	p.AddWarm(1)
	p.AcquireOrWait(func() {}) // takes the only container
	var servedAt time.Duration = -1
	p.AcquireOrWait(func() { servedAt = eng.Now() })
	if servedAt != -1 {
		t.Fatal("claim served while the only container is busy")
	}
	if p.Waiting() != 1 {
		t.Fatalf("waiting = %d, want 1", p.Waiting())
	}
	eng.Schedule(70*time.Millisecond, func() { p.Release() })
	eng.RunAll()
	if servedAt != 70*time.Millisecond {
		t.Fatalf("claim served at %v, want on release at 70ms", servedAt)
	}
	if p.SyncColdStarts() != 0 {
		t.Fatal("waiting for a busy container must not count as a cold start")
	}
}

func TestAcquireOrWaitBootsWhenPoolMustGrow(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, GPUColdStart, DefaultKeepAlive)
	p.AddWarm(1)
	p.AcquireOrWait(func() {}) // busy
	p.AcquireOrWait(func() {}) // waits on the busy one
	var bootServed time.Duration = -1
	p.AcquireOrWait(func() { bootServed = eng.Now() }) // nothing to wait on: boot
	if p.SyncColdStarts() != 1 {
		t.Fatalf("sync colds = %d, want 1", p.SyncColdStarts())
	}
	eng.RunAll()
	if bootServed != GPUColdStart {
		t.Fatalf("dedicated boot served at %v, want %v", bootServed, GPUColdStart)
	}
}

func TestAcquireOrWaitFIFO(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, GPUColdStart, DefaultKeepAlive)
	p.AddWarm(2)
	p.AcquireOrWait(func() {})
	p.AcquireOrWait(func() {})
	var order []int
	p.AcquireOrWait(func() { order = append(order, 1) })
	p.AcquireOrWait(func() { order = append(order, 2) })
	p.Release()
	p.Release()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("waiters served out of order: %v", order)
	}
}

func TestPrewarmServesWaiters(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, GPUColdStart, DefaultKeepAlive)
	p.Ensure(1) // starting
	served := false
	p.AcquireOrWait(func() { served = true }) // waits on the starting one
	if served {
		t.Fatal("served before boot completed")
	}
	eng.RunAll()
	if !served {
		t.Fatal("pre-warm completion did not serve the waiter")
	}
	if p.SyncColdStarts() != 0 {
		t.Fatal("waiter on a pre-warm is not a sync cold start")
	}
}

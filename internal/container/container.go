// Package container models serving-container lifecycles on a worker node:
// cold starts (seconds of boot latency before a container can serve), warm
// reuse, background pre-warming (the predictive autoscaler's tool), and the
// paper's delayed-termination keep-alive policy, under which surplus warm
// containers are only terminated after an extended idle period (~10
// minutes) — the mechanism behind the paper's "up to 98% fewer cold starts"
// claim.
package container

import (
	"time"

	"repro/internal/invariant"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Cold-start latencies by node class: GPU containers must also load model
// weights onto the device.
const (
	CPUColdStart = 2 * time.Second
	GPUColdStart = 4 * time.Second
	// DefaultKeepAlive is the paper's delayed-termination window.
	DefaultKeepAlive = 10 * time.Minute
)

// Pool tracks the containers of one model on one node.
type Pool struct {
	eng       *sim.Engine
	coldStart time.Duration
	keepAlive time.Duration
	reapFn    func() // bound once; pushIdle schedules it per release

	// Sink, when set, receives container lifecycle events (waits, boots,
	// pre-warms, reaps) labelled with NodeID/Spec/Tenant. A nil Sink costs
	// one branch per transition.
	Sink   telemetry.Sink
	NodeID int
	Spec   string
	Tenant int

	// Check, when set, receives a counter snapshot after every mutation and
	// asserts the container-lifecycle algebra. A nil Check costs one branch
	// per transition.
	Check *invariant.Checker

	idleSince []time.Duration // one entry per idle container, LIFO
	busy      int
	starting  int // background pre-warms in flight
	booting   int // dedicated synchronous cold boots in flight

	waiters []func() // FIFO claims waiting for a container

	boots      uint64 // all container boots (pre-warm + synchronous)
	syncColds  uint64 // boots serialized into a request
	reuses     uint64
	warmAdded  uint64 // containers injected already-warm via AddWarm
	terminated uint64
}

// NewPool creates a pool with the given cold-start latency and keep-alive
// window. keepAlive == 0 means containers terminate the moment they go idle
// (the paper's scale-down-immediately baseline).
func NewPool(eng *sim.Engine, coldStart, keepAlive time.Duration) *Pool {
	p := &Pool{eng: eng, coldStart: coldStart, keepAlive: keepAlive}
	p.reapFn = p.reap
	return p
}

// ColdStart is the boot latency of this pool's containers — the natural
// lead time for predictive pre-warming (ordering further ahead procures for
// traffic the boot cannot beat anyway).
func (p *Pool) ColdStart() time.Duration { return p.coldStart }

// emit sends one pool lifecycle event; call sites guard Sink != nil.
func (p *Pool) emit(kind telemetry.Kind, n int, detail string) {
	e := telemetry.Ev(p.eng.Now(), kind)
	e.Node = p.NodeID
	e.Spec = p.Spec
	e.Tenant = p.Tenant
	e.N = n
	e.Detail = detail
	p.Sink.Event(e)
}

// checkNow hands the current counters to the invariant checker; call sites
// guard Check != nil. The snapshot reads the fields directly (no reap) so
// checking never perturbs the pool it is checking.
func (p *Pool) checkNow() {
	p.Check.Pool(p.eng.Now(), p.NodeID, p.Tenant, invariant.PoolCounts{
		Idle: len(p.idleSince), Busy: p.busy, Starting: p.starting,
		Booting: p.booting, Waiting: len(p.waiters),
		Boots: p.boots, SyncColds: p.syncColds,
		WarmAdded: p.warmAdded, Terminated: p.terminated,
	})
}

// ColdStartLatency returns the pool's configured cold-start latency.
func (p *Pool) ColdStartLatency() time.Duration { return p.coldStart }

// Idle returns the number of warm idle containers.
func (p *Pool) Idle() int { p.reap(); return len(p.idleSince) }

// Busy returns the number of containers currently serving a job.
func (p *Pool) Busy() int { return p.busy }

// Total returns warm (idle+busy) plus starting/booting containers.
func (p *Pool) Total() int {
	p.reap()
	return len(p.idleSince) + p.busy + p.starting + p.booting
}

// Waiting returns the number of claims waiting for a container.
func (p *Pool) Waiting() int { return len(p.waiters) }

// Boots returns the number of container boots (cold starts) so far, whether
// pre-warmed or synchronous.
func (p *Pool) Boots() uint64 { return p.boots }

// SyncColdStarts returns the boots that were serialized into a request.
func (p *Pool) SyncColdStarts() uint64 { return p.syncColds }

// Reuses returns how many acquisitions were served by a warm container.
func (p *Pool) Reuses() uint64 { return p.reuses }

// Terminated returns containers reaped by the keep-alive policy.
func (p *Pool) Terminated() uint64 { p.reap(); return p.terminated }

// WarmAdded returns containers injected already-warm via AddWarm.
func (p *Pool) WarmAdded() uint64 { return p.warmAdded }

// AddWarm injects n already-warm idle containers without boot latency or a
// cold-start charge. Experiments use it to start runs with the system
// already serving, as the paper's deployments were.
func (p *Pool) AddWarm(n int) {
	for i := 0; i < n; i++ {
		p.warmAdded++
		p.pushIdle()
	}
	if p.Check != nil {
		p.checkNow()
	}
}

// Ensure pre-warms containers in the background until Total() >= n. The
// boots complete after the cold-start latency without blocking any request
// (the predictive and reactive scale-up paths).
func (p *Pool) Ensure(n int) { p.EnsureWithin(n, p.coldStart) }

// EnsureWithin pre-warms containers like Ensure but with a custom readiness
// delay — used when container spawning overlaps hardware procurement
// (Algorithm 1 spawns containers on the newly procured node in the
// background and only then reroutes), leaving just a short tail of the boot
// exposed.
func (p *Pool) EnsureWithin(n int, d time.Duration) {
	p.reap()
	started := 0
	for p.Total() < n {
		p.starting++
		p.boots++
		started++
		p.eng.Schedule(d, func() {
			p.starting--
			p.pushIdle()
			if p.Check != nil {
				p.checkNow()
			}
		})
	}
	if started > 0 && p.Sink != nil {
		p.emit(telemetry.ContainerPrewarm, started, "")
	}
	if p.Check != nil {
		p.checkNow()
	}
}

// Acquire claims a container for a job. If a warm idle container exists the
// returned delay is 0; otherwise a synchronous cold start is charged and the
// delay is the cold-start latency (the caller serializes it into the
// request). Either way the container is busy afterwards; pair with Release.
func (p *Pool) Acquire() (delay time.Duration) {
	p.reap()
	if n := len(p.idleSince); n > 0 {
		p.idleSince = p.idleSince[:n-1] // LIFO: keep cold candidates aging
		p.busy++
		p.reuses++
		if p.Check != nil {
			p.checkNow()
		}
		return 0
	}
	p.busy++
	p.boots++
	p.syncColds++
	if p.Sink != nil {
		p.emit(telemetry.ContainerBoot, 1, "sync")
	}
	if p.Check != nil {
		p.checkNow()
	}
	return p.coldStart
}

// AcquireOrWait claims a container for a job, invoking ready exactly once
// when one is available: immediately for a warm idle container; when a
// pre-warming or busy container frees if the pool is expected to satisfy the
// claim soon; otherwise after a dedicated synchronous cold boot (counted as
// a request-blocking cold start). The caller observes the startup latency as
// the delay until ready fires. Pair with Release.
func (p *Pool) AcquireOrWait(ready func()) {
	p.reap()
	if n := len(p.idleSince); n > 0 {
		p.idleSince = p.idleSince[:n-1]
		p.busy++
		p.reuses++
		if p.Check != nil {
			p.checkNow()
		}
		ready()
		return
	}
	// Each starting or busy container can absorb one waiting claim; beyond
	// that the pool must grow.
	if len(p.waiters) < p.starting+p.busy {
		if p.Sink != nil {
			p.emit(telemetry.ContainerWait, len(p.waiters)+1, "")
		}
		p.waiters = append(p.waiters, ready)
		if p.Check != nil {
			p.checkNow()
		}
		return
	}
	if p.Sink != nil {
		p.emit(telemetry.ContainerBoot, 1, "sync")
	}
	p.booting++
	p.boots++
	p.syncColds++
	if p.Check != nil {
		p.checkNow()
	}
	p.eng.Schedule(p.coldStart, func() {
		p.booting--
		p.busy++
		if p.Check != nil {
			p.checkNow()
		}
		ready()
	})
}

// Release returns a busy container to the warm pool, handing it straight to
// the oldest waiting claim if any (or terminating it immediately under
// keepAlive == 0).
func (p *Pool) Release() {
	if p.busy <= 0 {
		panic("container: Release without matching Acquire")
	}
	p.busy--
	if p.serveWaiter() {
		if p.Check != nil {
			p.checkNow()
		}
		return
	}
	if p.keepAlive <= 0 {
		p.terminated++
		if p.Check != nil {
			p.checkNow()
		}
		return
	}
	p.pushIdle()
	if p.Check != nil {
		p.checkNow()
	}
}

// serveWaiter hands a free container to the oldest waiting claim.
func (p *Pool) serveWaiter() bool {
	if len(p.waiters) == 0 {
		return false
	}
	ready := p.waiters[0]
	copy(p.waiters, p.waiters[1:])
	p.waiters[len(p.waiters)-1] = nil
	p.waiters = p.waiters[:len(p.waiters)-1]
	p.busy++
	p.reuses++
	ready()
	return true
}

func (p *Pool) pushIdle() {
	if p.serveWaiter() {
		return
	}
	p.idleSince = append(p.idleSince, p.eng.Now())
	// One-shot reap when this container's keep-alive would expire; lazy
	// reaping at every operation handles the rest.
	if p.keepAlive > 0 {
		p.eng.Schedule(p.keepAlive+time.Millisecond, p.reapFn)
	}
}

// reap terminates idle containers whose keep-alive window has expired.
func (p *Pool) reap() {
	if p.keepAlive <= 0 {
		return
	}
	now := p.eng.Now()
	keep := p.idleSince[:0]
	reaped := 0
	for _, since := range p.idleSince {
		if now-since >= p.keepAlive {
			p.terminated++
			reaped++
		} else {
			keep = append(keep, since)
		}
	}
	p.idleSince = keep
	if reaped > 0 && p.Sink != nil {
		p.emit(telemetry.ContainerReaped, reaped, "")
	}
	if reaped > 0 && p.Check != nil {
		p.checkNow()
	}
}

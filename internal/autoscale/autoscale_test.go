package autoscale

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/container"
	"repro/internal/sim"
)

func TestReactiveContainers(t *testing.T) {
	cases := []struct{ n, bs, want int }{
		{0, 64, 1}, // time sharing still needs one container
		{1, 64, 1},
		{64, 64, 1},
		{65, 64, 2},
		{128, 64, 2},
		{300, 64, 5},
		{10, 0, 10}, // degenerate batch size treated as 1
	}
	for _, c := range cases {
		if got := ReactiveContainers(c.n, c.bs); got != c.want {
			t.Errorf("ReactiveContainers(%d, %d) = %d, want %d", c.n, c.bs, got, c.want)
		}
	}
}

// Property: reactive containers suffice — n_c * batchSize >= nSpatial.
func TestReactiveCoversLoadProperty(t *testing.T) {
	f := func(nRaw, bsRaw uint16) bool {
		n, bs := int(nRaw%5000), int(bsRaw%128)+1
		nc := ReactiveContainers(n, bs)
		return nc*bs >= n && nc >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictiveContainers(t *testing.T) {
	// 400 rps over a 100ms window = 40 requests, batch 16 -> 3 containers.
	if got := PredictiveContainers(400, 100*time.Millisecond, 16); got != 3 {
		t.Fatalf("got %d, want 3", got)
	}
	if got := PredictiveContainers(0, time.Second, 16); got != 1 {
		t.Fatalf("zero rate got %d, want 1 (always keep one)", got)
	}
}

func TestControllerPrewarmsAheadOfLoad(t *testing.T) {
	eng := sim.NewEngine()
	pool := container.NewPool(eng, container.GPUColdStart, container.DefaultKeepAlive)
	rate := 0.0
	ctl := NewController(eng, pool,
		func(time.Duration) float64 { return rate },
		func() int { return 64 },
		100*time.Millisecond)
	ctl.Start()
	eng.Run(25 * time.Second)
	base := pool.Total()
	if base != 1 {
		t.Fatalf("baseline pool = %d, want 1", base)
	}
	// Predicted surge: 3200 rps * 0.1s / 64 = 5 containers.
	rate = 3200
	eng.Run(40 * time.Second)
	if pool.Total() != 5 {
		t.Fatalf("pool after predicted surge = %d, want 5", pool.Total())
	}
	if pool.SyncColdStarts() != 0 {
		t.Fatal("predictive scale-up charged synchronous cold starts")
	}
	ctl.Stop()
	fired := eng.Fired()
	eng.Run(41 * time.Second)
	eng.RunAll() // must terminate: controller stopped, no self-rescheduling
	_ = fired
}

func TestControllerStop(t *testing.T) {
	eng := sim.NewEngine()
	pool := container.NewPool(eng, container.CPUColdStart, 0)
	ctl := NewController(eng, pool, func(time.Duration) float64 { return 0 },
		func() int { return 8 }, time.Second)
	ctl.Start()
	ctl.Stop()
	eng.RunAll() // would never return if ticking continued forever
}

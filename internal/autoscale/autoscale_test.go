package autoscale

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/container"
	"repro/internal/sim"
)

func TestReactiveContainers(t *testing.T) {
	cases := []struct{ n, bs, want int }{
		{0, 64, 1}, // time sharing still needs one container
		{1, 64, 1},
		{64, 64, 1},
		{65, 64, 2},
		{128, 64, 2},
		{300, 64, 5},
		{10, 0, 10}, // degenerate batch size treated as 1
	}
	for _, c := range cases {
		if got := ReactiveContainers(c.n, c.bs); got != c.want {
			t.Errorf("ReactiveContainers(%d, %d) = %d, want %d", c.n, c.bs, got, c.want)
		}
	}
}

// Property: reactive containers suffice — n_c * batchSize >= nSpatial.
func TestReactiveCoversLoadProperty(t *testing.T) {
	f := func(nRaw, bsRaw uint16) bool {
		n, bs := int(nRaw%5000), int(bsRaw%128)+1
		nc := ReactiveContainers(n, bs)
		return nc*bs >= n && nc >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictiveContainers(t *testing.T) {
	// 400 rps over a 100ms window = 40 requests, batch 16 -> 3 containers.
	if got := PredictiveContainers(400, 100*time.Millisecond, 16); got != 3 {
		t.Fatalf("got %d, want 3", got)
	}
	if got := PredictiveContainers(0, time.Second, 16); got != 1 {
		t.Fatalf("zero rate got %d, want 1 (always keep one)", got)
	}
}

func TestPredictiveContainersEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		rps    float64
		window time.Duration
		bs     int
		want   int
	}{
		// A forecaster extrapolating a negative trend can hand back a
		// negative rate; the pool floor is still one warm container.
		{"negative rate", -5, time.Second, 16, 1},
		{"zero rate", 0, time.Second, 16, 1},
		{"zero window", 100, 0, 16, 1},
		{"negative window", 100, -time.Second, 16, 1},
		// Sub-window load: half a request expected in the window still
		// needs the one warm container, not zero.
		{"fractional request", 5, 100 * time.Millisecond, 16, 1},
		// Fractional requests round *up*: 64.9 expected requests overflow
		// one batch of 64, so two containers — truncation would strand the
		// 65th request in a cold start.
		{"batch boundary overflow", 649, 100 * time.Millisecond, 64, 2},
		// Exactly one batch stays one container, including when the product
		// is only representable with float error (4.7*10 = 47.000...004):
		// representation noise must not fabricate a 48th request.
		{"exact batch", 640, 100 * time.Millisecond, 64, 1},
		{"float representation noise", 4.7, 10 * time.Second, 47, 1},
	}
	for _, c := range cases {
		if got := PredictiveContainers(c.rps, c.window, c.bs); got != c.want {
			t.Errorf("%s: PredictiveContainers(%v, %v, %d) = %d, want %d",
				c.name, c.rps, c.window, c.bs, got, c.want)
		}
	}
}

// Property: predictive containers cover the predicted window load the same
// way reactive containers cover observed load, for any non-negative rate.
func TestPredictiveCoversForecastProperty(t *testing.T) {
	f := func(rpsRaw uint16, bsRaw uint8) bool {
		rps, bs := float64(rpsRaw%2000), int(bsRaw%64)+1
		nc := PredictiveContainers(rps, time.Second, bs)
		// Covering within one request of the expected load: the epsilon
		// guard may round a float-noise fraction down, never a real request.
		return float64(nc*bs) >= rps-1 && nc >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestControllerPrewarmsAheadOfLoad(t *testing.T) {
	eng := sim.NewEngine()
	pool := container.NewPool(eng, container.GPUColdStart, container.DefaultKeepAlive)
	rate := 0.0
	ctl := NewController(eng, pool,
		func(now, horizon time.Duration) float64 { return rate },
		func() int { return 64 },
		100*time.Millisecond)
	ctl.Start()
	eng.Run(25 * time.Second)
	base := pool.Total()
	if base != 1 {
		t.Fatalf("baseline pool = %d, want 1", base)
	}
	// Predicted surge: 3200 rps * 0.1s / 64 = 5 containers.
	rate = 3200
	eng.Run(40 * time.Second)
	if pool.Total() != 5 {
		t.Fatalf("pool after predicted surge = %d, want 5", pool.Total())
	}
	if pool.SyncColdStarts() != 0 {
		t.Fatal("predictive scale-up charged synchronous cold starts")
	}
	ctl.Stop()
	fired := eng.Fired()
	eng.Run(41 * time.Second)
	eng.RunAll() // must terminate: controller stopped, no self-rescheduling
	_ = fired
}

func TestControllerStop(t *testing.T) {
	eng := sim.NewEngine()
	pool := container.NewPool(eng, container.CPUColdStart, 0)
	ctl := NewController(eng, pool, func(now, horizon time.Duration) float64 { return 0 },
		func() int { return 8 }, time.Second)
	ctl.Start()
	ctl.Stop()
	eng.RunAll() // would never return if ticking continued forever
}

// Package autoscale implements the paper's three autoscaling policies
// (Section IV-C):
//
//   - Reactive scale-up: one container per batch of requests that will be
//     spatially shared, n_c = ceil(n_spatial / batch_size), so every
//     spatial batch can launch in parallel via MPS; time-shared batches
//     reuse a warm container.
//
//   - Predictive scale-up: every ~10 s, a lightweight pluggable model
//     (EWMA) forecasts the next window's request load and containers are
//     pre-warmed ahead of need, hiding cold starts that reactive scale-up
//     alone would expose.
//
//   - Delayed termination: implemented by the container pool's keep-alive
//     window (see internal/container); surplus containers survive ~10
//     minutes of idleness before termination.
package autoscale

import (
	"math"
	"time"

	"repro/internal/container"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// DefaultPredictInterval is the paper's ~10 s predictive scale-up cadence.
const DefaultPredictInterval = 10 * time.Second

// ReactiveContainers returns n_c = ceil(nSpatial / batchSize), the
// container count required so every spatially shared batch gets its own
// container. It is at least 1 whenever there is any work (the time-sharing
// lane always needs one warm container).
func ReactiveContainers(nSpatial, batchSize int) int {
	if batchSize <= 0 {
		batchSize = 1
	}
	n := (nSpatial + batchSize - 1) / batchSize
	if n < 1 {
		n = 1
	}
	return n
}

// predictiveEpsilon absorbs float representation noise when converting
// rate x window into a request count: 4.7 rps x 10 s is 47.000000000000004
// in float64, and that phantom fraction must not round up to a 48th
// request.
const predictiveEpsilon = 1e-9

// PredictiveContainers converts a predicted request rate into a container
// requirement: the containers needed to spatially serve one dispatch
// window's worth of predicted requests. Fractional requests round up (a
// truncated 65th request would eat a synchronous cold start); non-positive
// rates and windows degrade to the one-warm-container floor, so a
// forecaster extrapolating a negative trend can never drain the pool.
func PredictiveContainers(predictedRPS float64, window time.Duration, batchSize int) int {
	if predictedRPS <= 0 || window <= 0 {
		return ReactiveContainers(0, batchSize)
	}
	reqs := int(math.Ceil(predictedRPS*window.Seconds() - predictiveEpsilon))
	return ReactiveContainers(reqs, batchSize)
}

// Controller drives predictive scale-up for one pool.
type Controller struct {
	eng *sim.Engine
	// Pool is the container pool to pre-warm.
	Pool *container.Pool
	// Predict forecasts the mean request rate over [now, now+horizon] —
	// the predict.Forecaster seam, so seasonal and percentile models plug
	// in unchanged.
	Predict func(now, horizon time.Duration) float64
	// Horizon is how far ahead of the predicted ramp containers are
	// pre-warmed. It defaults to the pool's cold-start latency: a
	// container ordered now is warm one boot from now, so forecasting
	// further ahead procures for traffic the boot cannot beat anyway.
	Horizon time.Duration
	// BatchSize supplies the current batch size (it changes with hardware).
	BatchSize func() int
	// Window is the dispatch window predictions are converted against.
	Window time.Duration
	// Interval is the prediction cadence (default ~10 s).
	Interval time.Duration

	// Sink, when set, receives AutoscalePrewarm events whenever a
	// predictive tick grows the pool; NodeID/Spec label them.
	Sink   telemetry.Sink
	NodeID int
	Spec   string

	stopped bool
}

// NewController wires a predictive scale-up loop; call Start to begin
// ticking.
func NewController(eng *sim.Engine, pool *container.Pool, predict func(now, horizon time.Duration) float64,
	batchSize func() int, window time.Duration) *Controller {
	return &Controller{
		eng: eng, Pool: pool, Predict: predict, BatchSize: batchSize,
		Window: window, Interval: DefaultPredictInterval,
		Horizon: pool.ColdStart(),
	}
}

// Start begins periodic predictive scale-up.
func (c *Controller) Start() {
	c.stopped = false
	c.tick()
}

// Stop halts the loop after the current tick.
func (c *Controller) Stop() { c.stopped = true }

func (c *Controller) tick() {
	if c.stopped {
		return
	}
	need := PredictiveContainers(c.Predict(c.eng.Now(), c.Horizon), c.Window, c.BatchSize())
	if need > c.Pool.Total() {
		if c.Sink != nil {
			e := telemetry.Ev(c.eng.Now(), telemetry.AutoscalePrewarm)
			e.Node = c.NodeID
			e.Spec = c.Spec
			e.N = need
			e.Detail = "predictive"
			c.Sink.Event(e)
		}
		c.Pool.Ensure(need)
	}
	c.eng.Schedule(c.Interval, func() { c.tick() })
}

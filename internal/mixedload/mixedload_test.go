package mixedload

import (
	"math"
	"testing"

	"repro/internal/hardware"
)

func TestSeBSWorkloads(t *testing.T) {
	loads := SeBS()
	if len(loads) != 3 {
		t.Fatalf("SeBS has %d workloads, want 3 (compression, HTML, thumbnailing)", len(loads))
	}
	for _, w := range loads {
		if w.CPUShare <= 0 || w.CPUShare >= 1 {
			t.Errorf("%s CPUShare = %v out of (0,1)", w.Name, w.CPUShare)
		}
	}
}

func TestHostFactorCPUWorseThanGPU(t *testing.T) {
	loads := SeBS()
	cpu := HostFactor(hardware.CPU, loads)
	gpu := HostFactor(hardware.GPU, loads)
	if cpu <= gpu {
		t.Fatalf("CPU factor %.2f not above GPU factor %.2f — contention must be "+
			"'especially pronounced' on CPU nodes", cpu, gpu)
	}
	if cpu < 1.2 || cpu > 3 {
		t.Fatalf("CPU host factor %.2f implausible", cpu)
	}
	if gpu < 1.02 || gpu > 1.5 {
		t.Fatalf("GPU host factor %.2f implausible", gpu)
	}
}

func TestHostFactorNoLoads(t *testing.T) {
	if f := HostFactor(hardware.CPU, nil); math.Abs(f-1) > 1e-12 {
		t.Fatalf("factor with no loads = %v, want 1", f)
	}
}

func TestHostFactorSaturates(t *testing.T) {
	heavy := []Workload{{Name: "a", CPUShare: 0.6}, {Name: "b", CPUShare: 0.6}}
	f := HostFactor(hardware.CPU, heavy)
	if math.IsInf(f, 1) || f > 10.0001 {
		t.Fatalf("factor = %v, want clamped at 10x", f)
	}
}

// Package mixedload models the paper's mixed-workload study (Table III):
// "regular" CPU-bound serverless workloads from the SeBS benchmark suite —
// file compression, dynamic HTML generation, and image thumbnailing —
// co-resident on each worker node's host CPU.
//
// The actual SeBS functions are not executed; what the study measures is the
// slowdown they induce on co-resident inference. Each workload therefore
// carries a host-CPU utilization share, and the package converts a set of
// co-resident workloads into a host-contention factor per node class: CPU
// nodes suffer directly (inference competes for the same cores), GPU nodes
// only through host-side preprocessing and kernel dispatch.
package mixedload

import (
	"repro/internal/hardware"
)

// Workload is one co-resident "regular" serverless workload.
type Workload struct {
	// Name identifies the SeBS benchmark.
	Name string
	// CPUShare is the average host-CPU fraction the workload consumes on a
	// reference 8-vCPU node.
	CPUShare float64
}

// SeBS returns the three workloads the paper co-locates.
func SeBS() []Workload {
	return []Workload{
		{Name: "file-compression", CPUShare: 0.18},
		{Name: "dynamic-html", CPUShare: 0.10},
		{Name: "image-thumbnailing", CPUShare: 0.14},
	}
}

// gpuHostSensitivity is how strongly host-CPU contention bleeds into
// GPU-served inference (input decoding, batching, kernel launches). The
// paper observes the effect is much weaker than on CPU-only nodes.
const gpuHostSensitivity = 0.25

// HostFactor converts co-resident workloads into the execution inflation
// factor (>= 1) for inference on the given node class. On CPU nodes the
// contention is direct: the inference job loses the share the regular
// workloads consume. On GPU nodes only a fraction of that pressure is felt.
func HostFactor(kind hardware.Kind, loads []Workload) float64 {
	share := 0.0
	for _, w := range loads {
		share += w.CPUShare
	}
	if share > 0.9 {
		share = 0.9
	}
	if kind == hardware.GPU {
		share *= gpuHostSensitivity
	}
	return 1 / (1 - share)
}

package trace

import "fmt"

// Partition splits the curve into n per-tenant lane curves, each carrying
// 1/n of the arrival rate over the same duration. Lane names embed the lane
// index and lane count ("<name>#i.n"), so each lane realizes from its own
// independent RNG stream ("trace/<name>#i.n") — the decomposition is a pure
// function of (curve, n), never of how many workers later execute the lanes,
// which is what keeps sharded output byte-identical at any worker count.
//
// The union of the lanes is statistically the original curve (superposition
// of thinned Poisson processes), not sample-path identical to it: partitioned
// runs are a different — equally deterministic — experiment from the
// single-lane run, which is why the lane count is a workload knob (-tenants)
// and not the worker knob (-shards).
func (c *Curve) Partition(n int) []*Curve {
	if n <= 1 {
		return []*Curve{c}
	}
	lanes := make([]*Curve, n)
	for i := range lanes {
		// Lanes share the parent's Rates slice (read-only) and carry the 1/n
		// thinning in Scale: a multi-day curve's rate array is tens of MiB,
		// and copying it per lane would multiply resident memory by n+1.
		lanes[i] = &Curve{
			Name:   fmt.Sprintf("%s#%d.%d", c.Name, i, n),
			Rates:  c.Rates,
			Bucket: c.Bucket,
			Scale:  c.scale() / float64(n),
		}
	}
	return lanes
}

package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzLoad ensures arbitrary input never panics the parser and that anything
// it accepts round-trips.
func FuzzLoad(f *testing.F) {
	f.Add("1.0\n2.0\n")
	f.Add("# trace: x\n# duration_s: 10\n0.5\n")
	f.Add("")
	f.Add("not a number")
	f.Add("1e300\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Load(strings.NewReader(in), "fuzz")
		if err != nil {
			return
		}
		// Whatever parsed must satisfy the trace invariants.
		for i := 1; i < len(tr.Arrivals); i++ {
			if tr.Arrivals[i] < tr.Arrivals[i-1] {
				t.Fatal("loaded arrivals not sorted")
			}
		}
		for _, a := range tr.Arrivals {
			if a < 0 {
				t.Fatal("negative arrival accepted")
			}
		}
		// And it must re-serialize and re-load to the same count.
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Load(&buf, "again")
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Count() != tr.Count() {
			t.Fatalf("round trip count %d != %d", back.Count(), tr.Count())
		}
	})
}

// FuzzWindowCounts ensures bucketing conserves requests for arbitrary traces
// and window sizes.
func FuzzWindowCounts(f *testing.F) {
	f.Add(uint16(100), uint16(3))
	f.Fuzz(func(t *testing.T, winMs uint16, n uint16) {
		arr := make([]time.Duration, n%512)
		for i := range arr {
			arr[i] = time.Duration(i) * 7 * time.Millisecond
		}
		tr := FromArrivals("f", arr, 0)
		w := time.Duration(winMs%10000+1) * time.Millisecond
		total := 0
		for _, c := range tr.WindowCounts(w) {
			total += c
		}
		if total != tr.Count() {
			t.Fatalf("window counts %d != %d", total, tr.Count())
		}
	})
}

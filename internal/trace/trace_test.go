package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func rng() *sim.RNG { return sim.NewRNG(42) }

func TestFromRateCurveDeterministic(t *testing.T) {
	rates := []float64{10, 20, 0, 5}
	a := FromRateCurve(rng(), "x", rates, time.Second)
	b := FromRateCurve(rng(), "x", rates, time.Second)
	if a.Count() != b.Count() {
		t.Fatalf("counts differ: %d vs %d", a.Count(), b.Count())
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatal("same seed produced different arrivals")
		}
	}
	c := FromRateCurve(sim.NewRNG(7), "x", rates, time.Second)
	if c.Count() == a.Count() {
		// Extremely unlikely to match exactly with ~35 expected arrivals.
		same := true
		for i := range c.Arrivals {
			if i >= len(a.Arrivals) || c.Arrivals[i] != a.Arrivals[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestArrivalsSortedAndBounded(t *testing.T) {
	tr := Azure(rng(), 450, 5*time.Minute)
	for i := 1; i < len(tr.Arrivals); i++ {
		if tr.Arrivals[i] < tr.Arrivals[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
	for _, a := range tr.Arrivals {
		if a < 0 || a >= tr.Duration {
			t.Fatalf("arrival %v outside [0,%v)", a, tr.Duration)
		}
	}
}

func TestAzureShape(t *testing.T) {
	tr := Azure(rng(), 450, AzureDuration)
	peak := tr.PeakRPS(time.Second)
	if peak < 350 || peak > 560 {
		t.Fatalf("azure peak = %.0f rps, want ~450", peak)
	}
	ratio := peak / tr.MeanRPS()
	if ratio < 6 || ratio > 25 {
		t.Fatalf("azure peak:mean = %.1f, want large (paper ~12.2)", ratio)
	}
}

func TestAzureSurgesAreOccasional(t *testing.T) {
	tr := Azure(rng(), 450, AzureDuration)
	rates := tr.RateCurve(time.Second)
	high := 0
	for _, r := range rates {
		if r > 0.5*450 {
			high++
		}
	}
	frac := float64(high) / float64(len(rates))
	if frac > 0.2 {
		t.Fatalf("%.0f%% of seconds above half-peak; surges should be occasional", frac*100)
	}
	if high == 0 {
		t.Fatal("no surge seconds at all")
	}
}

func TestWikipediaDiurnal(t *testing.T) {
	tr := Wikipedia(rng(), 170, 5, WikipediaCompression)
	peak := tr.PeakRPS(time.Second)
	if peak < 130 || peak > 220 {
		t.Fatalf("wikipedia peak = %.0f, want ~170", peak)
	}
	// Sustained high traffic: a large fraction of time above half-peak
	// (paper: ~16 hours per day).
	rates := tr.RateCurve(10 * time.Second)
	high := 0
	for _, r := range rates {
		if r > 0.5*peak {
			high++
		}
	}
	frac := float64(high) / float64(len(rates))
	if frac < 0.35 || frac > 0.85 {
		t.Fatalf("fraction of time at high traffic = %.2f, want ~16/24", frac)
	}
	// Has genuinely quiet troughs.
	minRate := math.Inf(1)
	for _, r := range rates {
		if r < minRate {
			minRate = r
		}
	}
	if minRate > 0.3*peak {
		t.Fatalf("overnight trough %.0f rps too high vs peak %.0f", minRate, peak)
	}
}

func TestWikipediaCompressionShortens(t *testing.T) {
	tr := Wikipedia(rng(), 170, 5, WikipediaCompression)
	want := 5 * 24 * time.Hour / WikipediaCompression
	if tr.Duration != want {
		t.Fatalf("duration = %v, want %v", tr.Duration, want)
	}
}

func TestTwitterMeanAndErratic(t *testing.T) {
	tr := Twitter(rng(), 92, TwitterDuration)
	if m := tr.MeanRPS(); m < 80 || m > 105 {
		t.Fatalf("twitter mean = %.0f, want ~92", m)
	}
	// Erratic: coefficient of variation of the 10s rate curve should be
	// substantial.
	rates := tr.RateCurve(10 * time.Second)
	mean, sq := 0.0, 0.0
	for _, r := range rates {
		mean += r
	}
	mean /= float64(len(rates))
	for _, r := range rates {
		sq += (r - mean) * (r - mean)
	}
	cv := math.Sqrt(sq/float64(len(rates))) / mean
	if cv < 0.2 {
		t.Fatalf("twitter rate CV = %.2f, want erratic (>= 0.2)", cv)
	}
}

func TestPoissonConstantRate(t *testing.T) {
	tr := Poisson(rng(), 700, 2*time.Minute)
	if m := tr.MeanRPS(); m < 670 || m > 730 {
		t.Fatalf("poisson mean = %.0f, want ~700", m)
	}
	rates := tr.RateCurve(5 * time.Second)
	for i, r := range rates[:len(rates)-1] { // last bucket may be partial
		if r < 550 || r > 850 {
			t.Fatalf("bucket %d rate %.0f strays too far from 700", i, r)
		}
	}
}

func TestStableTrace(t *testing.T) {
	tr := Stable(rng(), 575, 10*time.Minute)
	if m := tr.MeanRPS(); m < 550 || m > 600 {
		t.Fatalf("stable mean = %.0f, want ~575", m)
	}
	peak := tr.PeakRPS(time.Second)
	if peak > 1.5*575 {
		t.Fatalf("stable peak %.0f too spiky vs mean 575", peak)
	}
}

func TestWindowCounts(t *testing.T) {
	tr := &Trace{
		Name:     "manual",
		Arrivals: []time.Duration{0, time.Second / 2, time.Second, 2*time.Second + 1},
		Duration: 3 * time.Second,
	}
	counts := tr.WindowCounts(time.Second)
	want := []int{2, 1, 1, 0}
	if len(counts) != len(want) {
		t.Fatalf("got %v, want %v", counts, want)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("got %v, want %v", counts, want)
		}
	}
}

func TestSlice(t *testing.T) {
	tr := Poisson(rng(), 100, time.Minute)
	sub := tr.Slice(10*time.Second, 20*time.Second)
	if sub.Duration != 10*time.Second {
		t.Fatalf("slice duration = %v", sub.Duration)
	}
	for _, a := range sub.Arrivals {
		if a < 0 || a >= 10*time.Second {
			t.Fatalf("slice arrival %v out of range", a)
		}
	}
	if m := sub.MeanRPS(); m < 60 || m > 140 {
		t.Fatalf("slice mean = %.0f, want ~100", m)
	}
}

func TestEmptyTraceMetrics(t *testing.T) {
	tr := &Trace{Name: "empty", Duration: time.Minute}
	if tr.MeanRPS() != 0 || tr.PeakRPS(time.Second) != 0 || tr.Count() != 0 {
		t.Fatal("empty trace metrics not zero")
	}
}

// Property: total window counts equal the trace count for any window size.
func TestWindowCountConservationProperty(t *testing.T) {
	tr := Azure(rng(), 225, 2*time.Minute)
	f := func(winMs uint16) bool {
		w := time.Duration(winMs%5000+1) * time.Millisecond
		total := 0
		for _, c := range tr.WindowCounts(w) {
			total += c
		}
		return total == tr.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling target is honored across seeds.
func TestPoissonMeanProperty(t *testing.T) {
	f := func(seed uint32, rate10 uint8) bool {
		rate := float64(rate10%50) + 10 // 10..59 rps
		tr := Poisson(sim.NewRNG(uint64(seed)), rate, time.Minute)
		m := tr.MeanRPS()
		// 4 sigma tolerance for 60*rate expected arrivals.
		tol := 4 * math.Sqrt(rate*60) / 60
		return math.Abs(m-rate) <= tol+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonDrawStatistics(t *testing.T) {
	// Exercise both branches of the Poisson sampler (inversion and normal
	// approximation) and check mean/variance roughly match.
	r := rng().Stream("poisson-test")
	for _, mean := range []float64{0.5, 5, 30, 200} {
		n := 4000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(poisson(r.Float64, mean))
			sum += v
			sumsq += v * v
		}
		m := sum / float64(n)
		v := sumsq/float64(n) - m*m
		if math.Abs(m-mean) > 0.15*mean+0.2 {
			t.Errorf("poisson(%v): sample mean %.2f", mean, m)
		}
		if math.Abs(v-mean) > 0.3*mean+0.3 {
			t.Errorf("poisson(%v): sample variance %.2f, want ~%v", mean, v, mean)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := Azure(rng(), 225, 2*time.Minute)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, "loaded")
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != orig.Count() {
		t.Fatalf("count %d != %d", back.Count(), orig.Count())
	}
	if back.Duration != orig.Duration {
		t.Fatalf("duration %v != %v", back.Duration, orig.Duration)
	}
	for i := range back.Arrivals {
		d := back.Arrivals[i] - orig.Arrivals[i]
		if d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("arrival %d drifted by %v", i, d)
		}
	}
}

func TestLoadUnsortedAndComments(t *testing.T) {
	in := "# a comment\n2.5\n0.5\n\n1.0\n"
	tr, err := Load(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 3 || tr.Arrivals[0] != 500*time.Millisecond {
		t.Fatalf("bad parse: %+v", tr.Arrivals)
	}
	if tr.Duration != 3*time.Second {
		t.Fatalf("inferred duration %v, want 3s", tr.Duration)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(strings.NewReader("abc\n"), "x"); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := Load(strings.NewReader("-1\n"), "x"); err == nil {
		t.Fatal("negative arrival accepted")
	}
}

func TestFromArrivals(t *testing.T) {
	tr := FromArrivals("m", []time.Duration{3 * time.Second, time.Second}, 0)
	if tr.Arrivals[0] != time.Second {
		t.Fatal("not sorted")
	}
	if tr.Duration <= 3*time.Second {
		t.Fatal("duration not inferred past last arrival")
	}
}

package trace

import (
	"math"
	mrand "math/rand"
	"slices"
	"time"

	"repro/internal/sim"
)

// Stream yields the arrivals of one trace lazily, in ascending order. It is
// the constant-memory counterpart of the materialized Trace: the runner pulls
// one arrival at a time, so multi-million-request traces never exist as a
// slice. Implementations are single-use (Next consumes); anything a consumer
// needs before the first arrival (warm-start rate, duration) is answered
// without consuming.
type Stream interface {
	// Name identifies the generator and parameters, for reports.
	Name() string
	// Duration is the trace length; arrivals all fall before it.
	Duration() time.Duration
	// Next returns the next arrival offset; ok is false once the trace is
	// exhausted.
	Next() (arrival time.Duration, ok bool)
	// InitRPS is the realized mean arrival rate over [0, window) — what a
	// control plane warm-starting at t=0 would have observed. It does not
	// consume the stream.
	InitRPS(window time.Duration) float64
}

// Materializer is implemented by streams backed by a fully materialized
// Trace; clairvoyant predictors need it to read the future.
type Materializer interface {
	Materialized() *Trace
}

// Materialized returns the trace backing s when s is materialized-backed.
func Materialized(s Stream) (*Trace, bool) {
	m, ok := s.(Materializer)
	if !ok {
		return nil, false
	}
	return m.Materialized(), true
}

// --- materialized adapter ----------------------------------------------------

// TraceStream iterates over a materialized Trace. It is the Stream every
// existing Trace provides, making the materialized path one implementation of
// the streaming contract.
type TraceStream struct {
	t *Trace
	i int
}

// Stream returns a single-use Stream view over the trace.
func (t *Trace) Stream() *TraceStream { return &TraceStream{t: t} }

// Name implements Stream.
func (s *TraceStream) Name() string { return s.t.Name }

// Duration implements Stream.
func (s *TraceStream) Duration() time.Duration { return s.t.Duration }

// Next implements Stream.
func (s *TraceStream) Next() (time.Duration, bool) {
	if s.i >= len(s.t.Arrivals) {
		return 0, false
	}
	a := s.t.Arrivals[s.i]
	s.i++
	return a, true
}

// InitRPS implements Stream; it matches Trace.Slice(0, window).MeanRPS()
// bit-for-bit so a streaming run warm-starts exactly like a materialized one.
func (s *TraceStream) InitRPS(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return s.t.Slice(0, window).MeanRPS()
}

// Materialized implements Materializer.
func (s *TraceStream) Materialized() *Trace { return s.t }

// --- rate-curve stream -------------------------------------------------------

// Curve is an unrealized arrival recipe: a per-bucket rate curve plus the
// seeded RNG contract. It is the shared source behind both realizations —
// Realize materializes the full Trace, Stream yields the exact same arrivals
// one bucket at a time in constant memory. Both consume the RNG stream
// "trace/<name>" identically, so they are interchangeable bit-for-bit.
type Curve struct {
	// Name identifies the generator and parameters.
	Name string
	// Rates is the arrival rate (rps) per aligned bucket.
	Rates []float64
	// Bucket is the curve resolution.
	Bucket time.Duration
	// Scale multiplies every bucket rate; zero means 1. Partition uses it
	// to derive per-lane curves that share the parent's Rates slice instead
	// of copying it — at multi-day durations the rate array is tens of MiB,
	// and lanes differ from the parent only by this uniform factor.
	Scale float64
}

// scale returns the rate multiplier, treating the zero value as 1 so
// literal curves without the field keep their historical meaning.
func (c *Curve) scale() float64 {
	if c.Scale == 0 {
		return 1
	}
	return c.Scale
}

// rate is bucket i's effective arrival rate.
func (c *Curve) rate(i int) float64 { return c.Rates[i] * c.scale() }

// Rate is bucket i's effective arrival rate (the design curve with Scale
// applied) — the deterministic ground truth consumers like the forecaster
// backtesting harness score against.
func (c *Curve) Rate(i int) float64 { return c.rate(i) }

// Duration is the trace length the curve realizes to.
func (c *Curve) Duration() time.Duration {
	return time.Duration(len(c.Rates)) * c.Bucket
}

// MeanRPS is the curve's design mean arrival rate (the realized mean differs
// by Poisson noise).
func (c *Curve) MeanRPS() float64 {
	if len(c.Rates) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range c.Rates {
		sum += r
	}
	return sum * c.scale() / float64(len(c.Rates))
}

// PeakRPS is the curve's design peak rate.
func (c *Curve) PeakRPS() float64 {
	max := 0.0
	for _, r := range c.Rates {
		if r > max {
			max = r
		}
	}
	return max * c.scale()
}

// ExpectedRequests is the expected number of realized arrivals.
func (c *Curve) ExpectedRequests() float64 {
	return c.MeanRPS() * c.Duration().Seconds()
}

// Realize materializes the curve into a full Trace (the historical
// FromRateCurve behaviour, byte-identical).
func (c *Curve) Realize(rng *sim.RNG) *Trace {
	s := c.Stream(rng)
	// Pre-size to the Poisson mean plus four standard deviations: at most
	// one growth step in the ~3e-5 of runs that realize above it, versus
	// ~5x the trace size in cumulative append-growth garbage without the
	// hint. (Capacity is invisible in the output; arrivals are identical.)
	exp := c.ExpectedRequests()
	arrivals := make([]time.Duration, 0, int(exp+4*math.Sqrt(exp))+1)
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		arrivals = append(arrivals, a)
	}
	return &Trace{Name: c.Name, Arrivals: arrivals, Duration: c.Duration()}
}

// Stream returns a constant-memory iterator over the curve's realization.
// Peak memory is one bucket's worth of arrivals (~rate x bucket), regardless
// of trace length.
func (c *Curve) Stream(rng *sim.RNG) *CurveStream {
	return &CurveStream{c: c, rng: rng, r: rng.Stream("trace/" + c.Name)}
}

// CurveStream realizes an inhomogeneous Poisson process bucket by bucket:
// for each bucket it draws a Poisson count, places the arrivals uniformly
// inside the bucket, sorts them, and yields them one at a time. Because
// buckets are disjoint intervals, per-bucket sorting produces exactly the
// globally sorted arrival sequence of the materialized Trace, from exactly
// the same RNG draws.
type CurveStream struct {
	c   *Curve
	rng *sim.RNG    // root, for InitRPS replay clones
	r   *mrand.Rand // realization stream ("trace/<name>")
	i   int         // next bucket to realize
	buf []time.Duration
	pos int
}

// Name implements Stream.
func (s *CurveStream) Name() string { return s.c.Name }

// Duration implements Stream.
func (s *CurveStream) Duration() time.Duration { return s.c.Duration() }

// Next implements Stream.
func (s *CurveStream) Next() (time.Duration, bool) {
	for s.pos >= len(s.buf) {
		if s.i >= len(s.c.Rates) {
			return 0, false
		}
		s.buf = realizeBucket(s.r, s.c.rate(s.i), s.i, s.c.Bucket, s.buf[:0])
		s.pos = 0
		s.i++
	}
	a := s.buf[s.pos]
	s.pos++
	return a, true
}

// InitRPS implements Stream: it replays a fresh clone of the realization
// stream (same seed, same name, hence the same Poisson draws) and counts the
// arrivals before window, so the result equals the materialized trace's
// Slice(0, window).MeanRPS() exactly.
func (s *CurveStream) InitRPS(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	clone := s.c.Stream(s.rng)
	n := 0
	for {
		a, ok := clone.Next()
		if !ok || a >= window {
			break
		}
		n++
	}
	return float64(n) / window.Seconds()
}

// realizeBucket draws bucket i's arrivals into buf (reused across buckets)
// and returns it sorted. It performs the exact RNG draws, in the exact
// order, that the historical per-draw FromRateCurve loop performed for this
// bucket — Poisson count first, then one uniform per arrival — but batches
// them: buf is grown to the realized count once, and the n placement
// variates are drawn and converted in a single pass over the pre-sized
// region instead of n append calls. trace's pinned-stream test asserts the
// realized sequence against a transcription of the per-draw loop.
func realizeBucket(r *mrand.Rand, rate float64, i int, bucket time.Duration, buf []time.Duration) []time.Duration {
	if rate <= 0 {
		return buf
	}
	mean := rate * bucket.Seconds()
	n := poisson(r.Float64, mean)
	if n == 0 {
		return buf
	}
	off := len(buf)
	buf = slices.Grow(buf, n)[:off+n]
	out := buf[off:]
	base := time.Duration(i) * bucket
	w := float64(bucket)
	for j := range out {
		out[j] = base + time.Duration(r.Float64()*w)
	}
	slices.Sort(out)
	return buf
}

// Collect drains a stream into a materialized Trace (tests and tools).
func Collect(s Stream) *Trace {
	var arrivals []time.Duration
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		arrivals = append(arrivals, a)
	}
	return &Trace{Name: s.Name(), Arrivals: arrivals, Duration: s.Duration()}
}

// DurationForRequests sizes a trace duration so a curve with the given mean
// rate realizes approximately n requests (in expectation), rounded up to
// whole curve buckets.
func DurationForRequests(n int, meanRPS float64) time.Duration {
	if n <= 0 || meanRPS <= 0 {
		return 0
	}
	d := time.Duration(float64(n) / meanRPS * float64(time.Second))
	buckets := time.Duration(math.Ceil(float64(d) / float64(curveBucket)))
	return buckets * curveBucket
}

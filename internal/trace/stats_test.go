package trace

import (
	"testing"
	"time"
)

func TestBurstsOnManualTrace(t *testing.T) {
	// 10s trace: quiet except seconds 3-4 and 7 (dense).
	var arr []time.Duration
	add := func(sec int, n int) {
		for i := 0; i < n; i++ {
			arr = append(arr, time.Duration(sec)*time.Second+time.Duration(i)*time.Millisecond)
		}
	}
	add(0, 2)
	add(3, 100)
	add(4, 90)
	add(7, 95)
	tr := FromArrivals("m", arr, 10*time.Second)

	bursts := tr.Bursts(time.Second, 0.5)
	if len(bursts) != 2 {
		t.Fatalf("got %d bursts, want 2: %+v", len(bursts), bursts)
	}
	if bursts[0].Start != 3*time.Second || bursts[0].Duration != 2*time.Second {
		t.Fatalf("first burst = %+v", bursts[0])
	}
	if bursts[0].Requests != 190 || bursts[0].PeakRPS != 100 {
		t.Fatalf("first burst stats = %+v", bursts[0])
	}
	if bursts[1].Start != 7*time.Second || bursts[1].Requests != 95 {
		t.Fatalf("second burst = %+v", bursts[1])
	}
}

func TestBurstsEmptyTrace(t *testing.T) {
	tr := &Trace{Name: "empty", Duration: time.Minute}
	if b := tr.Bursts(time.Second, 0.5); b != nil {
		t.Fatalf("empty trace produced bursts: %v", b)
	}
	if tr.BurstLoadShare(time.Second, 0.5) != 0 {
		t.Fatal("empty trace burst share not 0")
	}
}

func TestAzureBurstStructure(t *testing.T) {
	tr := Azure(rng(), 450, AzureDuration)
	bursts := tr.Bursts(time.Second, 0.5)
	if len(bursts) < 1 || len(bursts) > 8 {
		t.Fatalf("azure has %d bursts above half-peak, want a handful", len(bursts))
	}
	share := tr.BurstLoadShare(time.Second, 0.5)
	if share < 0.1 || share > 0.8 {
		t.Fatalf("azure burst load share = %.2f; surges should carry a sizeable minority", share)
	}
	for _, b := range bursts {
		if b.Duration < 5*time.Second || b.Duration > 2*time.Minute {
			t.Fatalf("burst duration %v outside the designed 10-90s range", b.Duration)
		}
	}
}

func TestRateCVOrdering(t *testing.T) {
	stable := Stable(rng(), 100, 10*time.Minute)
	twitter := Twitter(rng(), 100, 10*time.Minute)
	azure := Azure(rng(), 450, AzureDuration)
	w := 10 * time.Second
	if !(stable.RateCV(w) < twitter.RateCV(w)) {
		t.Fatalf("stable CV %.2f not below twitter CV %.2f", stable.RateCV(w), twitter.RateCV(w))
	}
	if !(twitter.RateCV(w) < azure.RateCV(w)) {
		t.Fatalf("twitter CV %.2f not below azure CV %.2f (azure is surge-dominated)",
			twitter.RateCV(w), azure.RateCV(w))
	}
}

func TestRateCVEmpty(t *testing.T) {
	tr := &Trace{Name: "x", Duration: 0}
	if tr.RateCV(time.Second) != 0 {
		t.Fatal("degenerate CV not 0")
	}
}

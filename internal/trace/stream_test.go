package trace

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// curveCases builds every generator's curve at a small duration.
func curveCases(rng *sim.RNG) map[string]*Curve {
	return map[string]*Curve{
		"azure":     AzureCurve(rng, 400, 2*time.Minute),
		"wikipedia": WikipediaCurve(rng, 300, 1, WikipediaCompression),
		"twitter":   TwitterCurve(rng, 120, 2*time.Minute),
		"poisson":   PoissonCurve(rng, 200, 90*time.Second),
		"stable":    StableCurve(rng, 150, 90*time.Second),
	}
}

// TestCurveStreamMatchesRealize pins the tentpole's equivalence claim at the
// trace layer: for every generator, the lazy stream yields exactly the
// arrival sequence the materialized Realize produces, from the same seed.
func TestCurveStreamMatchesRealize(t *testing.T) {
	for name, c := range curveCases(sim.NewRNG(7)) {
		t.Run(name, func(t *testing.T) {
			mat := c.Realize(sim.NewRNG(7))
			got := Collect(c.Stream(sim.NewRNG(7)))
			if !reflect.DeepEqual(mat, got) {
				t.Fatalf("stream realization differs from materialized trace:\nmat %d arrivals, stream %d",
					len(mat.Arrivals), len(got.Arrivals))
			}
		})
	}
}

// TestGeneratorsUnchangedByCurveRefactor pins that the public generator
// functions still produce the same traces they did before the Curve split:
// Azure(rng, ...) must equal AzureCurve(rng, ...).Realize(rng), etc.
func TestGeneratorsUnchangedByCurveRefactor(t *testing.T) {
	rng := sim.NewRNG(11)
	cases := map[string]struct {
		direct  *Trace
		byCurve *Trace
	}{
		"azure":     {Azure(rng, 400, 2*time.Minute), AzureCurve(rng, 400, 2*time.Minute).Realize(rng)},
		"wikipedia": {Wikipedia(rng, 300, 1, WikipediaCompression), WikipediaCurve(rng, 300, 1, WikipediaCompression).Realize(rng)},
		"twitter":   {Twitter(rng, 120, 2*time.Minute), TwitterCurve(rng, 120, 2*time.Minute).Realize(rng)},
		"poisson":   {Poisson(rng, 200, time.Minute), PoissonCurve(rng, 200, time.Minute).Realize(rng)},
		"stable":    {Stable(rng, 150, time.Minute), StableCurve(rng, 150, time.Minute).Realize(rng)},
	}
	for name, c := range cases {
		if !reflect.DeepEqual(c.direct, c.byCurve) {
			t.Errorf("%s: generator and curve realization disagree", name)
		}
	}
}

// TestTraceStreamYieldsArrivals checks the materialized adapter: same
// arrivals, same duration, and Materialized round-trips.
func TestTraceStreamYieldsArrivals(t *testing.T) {
	tr := Poisson(sim.NewRNG(3), 100, time.Minute)
	s := tr.Stream()
	if got, ok := Materialized(s); !ok || got != tr {
		t.Fatalf("Materialized() = %v, %v; want the backing trace", got, ok)
	}
	got := Collect(tr.Stream())
	if !reflect.DeepEqual(got.Arrivals, tr.Arrivals) || got.Duration != tr.Duration {
		t.Fatal("TraceStream does not reproduce the trace")
	}
}

// TestInitRPSMatchesMaterializedSlice: both stream implementations must
// report the exact warm-start rate the materialized path computes, so a
// streaming run selects the same initial hardware.
func TestInitRPSMatchesMaterializedSlice(t *testing.T) {
	const window = 2 * time.Second
	for name, c := range curveCases(sim.NewRNG(13)) {
		t.Run(name, func(t *testing.T) {
			mat := c.Realize(sim.NewRNG(13))
			want := mat.Slice(0, window).MeanRPS()
			if got := c.Stream(sim.NewRNG(13)).InitRPS(window); got != want {
				t.Errorf("CurveStream.InitRPS = %v, want %v", got, want)
			}
			if got := mat.Stream().InitRPS(window); got != want {
				t.Errorf("TraceStream.InitRPS = %v, want %v", got, want)
			}
		})
	}
}

// TestInitRPSDoesNotConsume: InitRPS must leave the stream's own arrival
// sequence untouched.
func TestInitRPSDoesNotConsume(t *testing.T) {
	c := PoissonCurve(nil, 100, time.Minute)
	plain := Collect(c.Stream(sim.NewRNG(5)))
	s := c.Stream(sim.NewRNG(5))
	s.InitRPS(2 * time.Second)
	probed := Collect(s)
	if !reflect.DeepEqual(plain.Arrivals, probed.Arrivals) {
		t.Fatal("InitRPS consumed the stream")
	}
}

// TestCurveStreamBoundedBuffer: the stream's working set is one bucket of
// arrivals, independent of trace length.
func TestCurveStreamBoundedBuffer(t *testing.T) {
	long := PoissonCurve(nil, 500, 10*time.Minute)
	s := long.Stream(sim.NewRNG(1))
	maxBuf, n := 0, 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
		if len(s.buf) > maxBuf {
			maxBuf = len(s.buf)
		}
	}
	if n < 100000 {
		t.Fatalf("expected a large trace, got %d arrivals", n)
	}
	// 500 rps x 100 ms = 50 expected per bucket; allow generous Poisson slack.
	if maxBuf > 200 {
		t.Fatalf("per-bucket buffer reached %d arrivals; want bucket-bounded (~50)", maxBuf)
	}
}

// TestCurveStats sanity-checks the design-rate helpers used by -requests
// sizing.
func TestCurveStats(t *testing.T) {
	c := PoissonCurve(nil, 200, time.Minute)
	if m := c.MeanRPS(); math.Abs(m-200) > 1e-9 {
		t.Errorf("MeanRPS = %v, want 200", m)
	}
	if p := c.PeakRPS(); math.Abs(p-200) > 1e-9 {
		t.Errorf("PeakRPS = %v, want 200", p)
	}
	if e := c.ExpectedRequests(); math.Abs(e-12000) > 1e-6 {
		t.Errorf("ExpectedRequests = %v, want 12000", e)
	}
	if d := DurationForRequests(12000, 200); d != time.Minute {
		t.Errorf("DurationForRequests = %v, want 1m", d)
	}
	if d := DurationForRequests(0, 200); d != 0 {
		t.Errorf("DurationForRequests(0) = %v, want 0", d)
	}
}

package trace

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// AzurePeakToMean is the peak:mean ratio of the paper's Azure serverless
// trace sample (~673:55).
const AzurePeakToMean = 673.0 / 55.0

// AzureDuration is the paper's Azure sample length (~25 minutes).
const AzureDuration = 25 * time.Minute

// Azure synthesizes the paper's Azure serverless sample: mostly sparse,
// slowly wandering background traffic punctuated by a handful of short,
// violent surges, scaled so the peak (over 1 s windows) targets peakRPS and
// the resulting peak:mean ratio is close to 673:55.
func Azure(rng *sim.RNG, peakRPS float64, dur time.Duration) *Trace {
	return AzureCurve(rng, peakRPS, dur).Realize(rng)
}

// AzureCurve builds the Azure rate curve without realizing it; Stream it for
// a constant-memory arrival source or Realize it for the full Trace.
func AzureCurve(rng *sim.RNG, peakRPS float64, dur time.Duration) *Curve {
	name := fmt.Sprintf("azure(peak=%.0f,dur=%v)", peakRPS, dur)
	r := rng.Stream("curve/" + name)
	n := int(dur / curveBucket)
	rates := make([]float64, n)

	// Background: a lognormal random walk around 0.8, clamped — "relatively
	// stable and sparse request traffic".
	level := 0.8
	for i := range rates {
		level *= math.Exp(r.NormFloat64() * 0.01)
		if level < 0.4 {
			level = 0.4
		}
		if level > 1.6 {
			level = 1.6
		}
		rates[i] = level
	}

	// Surges: request bursts whose peak dwarfs the background. Each is a
	// trapezoid — traffic builds over tens of seconds, holds, and subsides —
	// matching the minute-scale surge dynamics of the Azure trace (and
	// giving predictive schemes something an EWMA can actually lead, while
	// still overwhelming purely reactive ones mid-ramp). The surge count
	// scales with duration (2..4 per 25 minutes); the surge time fraction
	// stays small so the peak:mean ratio stays large.
	per25 := dur.Seconds() / AzureDuration.Seconds()
	nSurges := int(float64(2+r.Intn(3))*per25 + 0.5)
	if nSurges < 1 {
		nSurges = 1
	}
	sec := float64(time.Second) / float64(curveBucket)
	for s := 0; s < nSurges; s++ {
		ramp := (15 + r.Float64()*10) * sec    // 15–25 s rise and fall
		plateau := (10 + r.Float64()*30) * sec // 10–40 s hold
		start := r.Float64() * (float64(n) - 2*ramp - plateau)
		if start < 0 {
			start = 0
		}
		height := (0.5 + 0.5*r.Float64()) * AzurePeakToMean * 1.1
		for i := range rates {
			x := float64(i)
			var f float64
			switch {
			case x < start || x > start+2*ramp+plateau:
				continue
			case x < start+ramp:
				f = (x - start) / ramp
			case x < start+ramp+plateau:
				f = 1
			default:
				f = (start + 2*ramp + plateau - x) / ramp
			}
			rates[i] += height * f
		}
	}

	// Scale so the realized peak hits the target; the mean then follows the
	// designed ratio.
	scaleToPeak(rates, peakRPS)
	return &Curve{Name: name, Rates: rates, Bucket: curveBucket}
}

// WikipediaCompression is the default time compression applied to the 5-day
// Wikipedia trace so simulations stay tractable: 48x turns 5 days into 2.5
// simulated hours while keeping every period long relative to the
// schedulers' time constants (seconds to minutes).
const WikipediaCompression = 48

// Wikipedia synthesizes the 5-day diurnal Wikipedia trace (peak scaled to
// peakRPS, ~16 h of high traffic per day), time-compressed by the given
// factor (>= 1).
func Wikipedia(rng *sim.RNG, peakRPS float64, days int, compression int) *Trace {
	return WikipediaCurve(rng, peakRPS, days, compression).Realize(rng)
}

// WikipediaCurve builds the diurnal Wikipedia rate curve without realizing it.
func WikipediaCurve(rng *sim.RNG, peakRPS float64, days int, compression int) *Curve {
	if compression < 1 {
		compression = 1
	}
	name := fmt.Sprintf("wikipedia(peak=%.0f,days=%d,c=%d)", peakRPS, days, compression)
	r := rng.Stream("curve/" + name)
	dur := time.Duration(days) * 24 * time.Hour / time.Duration(compression)
	n := int(dur / curveBucket)
	rates := make([]float64, n)
	dayBuckets := float64(24*time.Hour) / float64(compression) / float64(curveBucket)
	for i := range rates {
		phase := 2 * math.Pi * math.Mod(float64(i), dayBuckets) / dayBuckets
		// A raised sinusoid clipped from below yields a ~16h/day plateau of
		// high traffic over a low overnight floor.
		v := math.Sin(phase-math.Pi/2) + 0.55
		if v < 0 {
			v = 0
		}
		v = math.Pow(v, 0.7) // flatten the top into a plateau
		rates[i] = 0.12 + v + r.NormFloat64()*0.02
		if rates[i] < 0.05 {
			rates[i] = 0.05
		}
	}
	scaleToPeak(rates, peakRPS)
	return &Curve{Name: name, Rates: rates, Bucket: curveBucket}
}

// TwitterDuration is the paper's Twitter sample length (90 minutes).
const TwitterDuration = 90 * time.Minute

// Twitter synthesizes the erratic, dense Twitter trace: a heavy-tailed
// multiplicative random walk with abrupt jumps, scaled to the target mean
// rate (the paper uses 5x the Azure sample's mean).
func Twitter(rng *sim.RNG, meanRPS float64, dur time.Duration) *Trace {
	return TwitterCurve(rng, meanRPS, dur).Realize(rng)
}

// TwitterCurve builds the erratic Twitter rate curve without realizing it.
func TwitterCurve(rng *sim.RNG, meanRPS float64, dur time.Duration) *Curve {
	name := fmt.Sprintf("twitter(mean=%.0f,dur=%v)", meanRPS, dur)
	r := rng.Stream("curve/" + name)
	n := int(dur / curveBucket)
	rates := make([]float64, n)
	level := 1.0
	for i := range rates {
		level *= math.Exp(r.NormFloat64() * 0.03)
		// Occasional abrupt regime jumps, up or down.
		if r.Float64() < 0.0015 {
			level *= math.Exp(r.NormFloat64() * 1.2)
		}
		if level < 0.15 {
			level = 0.15
		}
		if level > 12 {
			level = 12
		}
		rates[i] = level
	}
	scaleToMean(rates, meanRPS)
	return &Curve{Name: name, Rates: rates, Bucket: curveBucket}
}

// Poisson synthesizes a constant-rate Poisson arrival process — the paper's
// resource-exhaustion workload (mean ~700 rps of GoogleNet).
func Poisson(rng *sim.RNG, rateRPS float64, dur time.Duration) *Trace {
	return PoissonCurve(rng, rateRPS, dur).Realize(rng)
}

// PoissonCurve builds the constant-rate curve without realizing it.
func PoissonCurve(_ *sim.RNG, rateRPS float64, dur time.Duration) *Curve {
	name := fmt.Sprintf("poisson(rate=%.0f,dur=%v)", rateRPS, dur)
	n := int(dur / curveBucket)
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = rateRPS
	}
	return &Curve{Name: name, Rates: rates, Bucket: curveBucket}
}

// Stable synthesizes the "relatively stable" Wikipedia-derived trace of the
// motivation experiment (Fig. 1): traffic wanders gently (±~15%) around the
// target mean.
func Stable(rng *sim.RNG, meanRPS float64, dur time.Duration) *Trace {
	return StableCurve(rng, meanRPS, dur).Realize(rng)
}

// StableCurve builds the gently wandering rate curve without realizing it.
func StableCurve(rng *sim.RNG, meanRPS float64, dur time.Duration) *Curve {
	name := fmt.Sprintf("stable(mean=%.0f,dur=%v)", meanRPS, dur)
	r := rng.Stream("curve/" + name)
	n := int(dur / curveBucket)
	rates := make([]float64, n)
	periodBuckets := float64(5*time.Minute) / float64(curveBucket)
	for i := range rates {
		phase := 2 * math.Pi * float64(i) / periodBuckets
		rates[i] = 1 + 0.12*math.Sin(phase) + r.NormFloat64()*0.015
		if rates[i] < 0.5 {
			rates[i] = 0.5
		}
	}
	scaleToMean(rates, meanRPS)
	return &Curve{Name: name, Rates: rates, Bucket: curveBucket}
}

package trace

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// BenchmarkCurveStreamDrain measures lazy arrival generation: draining one
// minute of a 240 rps Poisson curve (~14k arrivals) through the batched
// per-bucket realization, the exact generator behind -stream runs.
func BenchmarkCurveStreamDrain(b *testing.B) {
	curve := PoissonCurve(sim.NewRNG(7), 240, time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		s := curve.Stream(sim.NewRNG(7))
		n = 0
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			n++
		}
	}
	b.ReportMetric(float64(n), "requests/op")
}

// BenchmarkCurveRealize measures the materialized counterpart (pre-sized
// allocation, same RNG draws) for comparison against the stream.
func BenchmarkCurveRealize(b *testing.B) {
	curve := PoissonCurve(sim.NewRNG(7), 240, time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := curve.Realize(sim.NewRNG(7))
		if len(t.Arrivals) == 0 {
			b.Fatal("empty realization")
		}
	}
}

package trace

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestPartitionSplitsRateKeepsShape(t *testing.T) {
	rng := sim.NewRNG(11)
	c := AzureCurve(rng, 400, 4*time.Minute)
	const n = 4
	lanes := c.Partition(n)
	if len(lanes) != n {
		t.Fatalf("got %d lanes, want %d", len(lanes), n)
	}
	seen := map[string]bool{}
	for i, lane := range lanes {
		if lane.Duration() != c.Duration() {
			t.Errorf("lane %d duration %v != curve %v", i, lane.Duration(), c.Duration())
		}
		if lane.Bucket != c.Bucket {
			t.Errorf("lane %d bucket %v != curve %v", i, lane.Bucket, c.Bucket)
		}
		if seen[lane.Name] {
			t.Errorf("duplicate lane name %q (RNG streams would collide)", lane.Name)
		}
		seen[lane.Name] = true
		if lane.Name == c.Name {
			t.Errorf("lane %d kept the parent name %q", i, c.Name)
		}
		if &lane.Rates[0] != &c.Rates[0] {
			t.Errorf("lane %d copied the Rates slice instead of sharing it", i)
		}
		for j := range lane.Rates {
			if want := c.rate(j) / n; math.Abs(lane.rate(j)-want) > 1e-12 {
				t.Fatalf("lane %d bucket %d rate %v, want %v", i, j, lane.rate(j), want)
			}
		}
		if math.Abs(lane.MeanRPS()-c.MeanRPS()/n) > 1e-9 {
			t.Errorf("lane %d mean %v, want %v", i, lane.MeanRPS(), c.MeanRPS()/n)
		}
		if math.Abs(lane.PeakRPS()-c.PeakRPS()/n) > 1e-9 {
			t.Errorf("lane %d peak %v, want %v", i, lane.PeakRPS(), c.PeakRPS()/n)
		}
	}
}

// Lane realization is deterministic and independent of sibling lanes: a lane
// streamed alone yields the same arrivals as one streamed among its
// siblings, from the same root seed.
func TestPartitionLanesRealizeIndependently(t *testing.T) {
	rng := sim.NewRNG(23)
	c := PoissonCurve(rng, 120, 2*time.Minute)
	lanes := c.Partition(3)

	alone := Collect(lanes[1].Stream(rng))
	together := make([]*Trace, len(lanes))
	for i, lane := range lanes {
		together[i] = Collect(lane.Stream(rng))
	}
	if len(alone.Arrivals) == 0 {
		t.Fatal("lane realized no arrivals")
	}
	if len(alone.Arrivals) != len(together[1].Arrivals) {
		t.Fatalf("lane 1 arrivals differ when streamed alone: %d vs %d",
			len(alone.Arrivals), len(together[1].Arrivals))
	}
	for i := range alone.Arrivals {
		if alone.Arrivals[i] != together[1].Arrivals[i] {
			t.Fatalf("lane 1 arrival %d differs: %v vs %v",
				i, alone.Arrivals[i], together[1].Arrivals[i])
		}
	}
	// Distinct lanes must draw from distinct streams.
	if len(together[0].Arrivals) > 0 && len(together[2].Arrivals) > 0 &&
		len(together[0].Arrivals) == len(together[2].Arrivals) {
		same := true
		for i := range together[0].Arrivals {
			if together[0].Arrivals[i] != together[2].Arrivals[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("lanes 0 and 2 realized identical arrivals; RNG streams collide")
		}
	}
}

func TestPartitionOfOneIsIdentity(t *testing.T) {
	rng := sim.NewRNG(5)
	c := StableCurve(rng, 50, time.Minute)
	lanes := c.Partition(1)
	if len(lanes) != 1 || lanes[0] != c {
		t.Fatalf("Partition(1) should return the curve itself, got %v", lanes)
	}
}

package trace

import (
	mrand "math/rand"
	"slices"
	"testing"
	"time"

	"repro/internal/sim"
)

// perDrawRealize is a transcription of the historical per-draw realization
// loop: for each bucket, draw the Poisson count, then append one uniformly
// placed arrival per draw, sorting each bucket as it completes. It is the
// RNG-draw-order contract CurveStream's batched realizeBucket must preserve
// bit-for-bit.
func perDrawRealize(c *Curve, r *mrand.Rand) []time.Duration {
	var arrivals []time.Duration
	for i := range c.Rates {
		rate := c.rate(i)
		if rate <= 0 {
			continue
		}
		mean := rate * c.Bucket.Seconds()
		n := poisson(r.Float64, mean)
		base := time.Duration(i) * c.Bucket
		start := len(arrivals)
		for j := 0; j < n; j++ {
			arrivals = append(arrivals, base+time.Duration(r.Float64()*float64(c.Bucket)))
		}
		slices.Sort(arrivals[start:])
	}
	return arrivals
}

// TestCurveStreamPinnedAgainstPerDrawReference pins the batched bucket
// realization to the historical per-draw loop: identical seeds must yield
// identical arrival sequences (same draws, same order, same values) across
// every generator family and a sweep of seeds.
func TestCurveStreamPinnedAgainstPerDrawReference(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := sim.NewRNG(seed)
		curves := []*Curve{
			AzureCurve(rng, 120, 2*time.Minute),
			WikipediaCurve(rng, 80, 1, 60),
			TwitterCurve(rng, 60, 2*time.Minute),
			PoissonCurve(rng, 50, time.Minute),
			StableCurve(rng, 40, time.Minute),
		}
		for _, c := range curves {
			ref := perDrawRealize(c, rng.Stream("trace/"+c.Name))
			got := Collect(c.Stream(rng)).Arrivals
			if len(got) != len(ref) {
				t.Fatalf("seed %d %s: stream realized %d arrivals, per-draw reference %d",
					seed, c.Name, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("seed %d %s: arrival %d differs: stream %v reference %v",
						seed, c.Name, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestRealizePreSizeInvisible asserts the capacity hint in Curve.Realize
// changed nothing observable: Realize and a plain stream drain agree.
func TestRealizePreSizeInvisible(t *testing.T) {
	rng := sim.NewRNG(9)
	c := AzureCurve(rng, 150, 3*time.Minute)
	a := c.Realize(rng)
	b := Collect(c.Stream(rng))
	if len(a.Arrivals) != len(b.Arrivals) {
		t.Fatalf("Realize %d arrivals, Collect %d", len(a.Arrivals), len(b.Arrivals))
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a.Arrivals[i], b.Arrivals[i])
		}
	}
}

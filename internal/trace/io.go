package trace

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"
	"time"
)

// The on-disk trace format is one arrival offset per line, in seconds
// (fractional), optionally preceded by '#' comment lines. It matches
// `paldia-trace -dump`, so real traces (Azure, Wikipedia, Twitter samples)
// can be converted with a one-liner and replayed through the simulator.

// Save writes the trace in the line format.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# trace: %s\n", t.Name)
	fmt.Fprintf(bw, "# duration_s: %.6f\n", t.Duration.Seconds())
	for _, a := range t.Arrivals {
		fmt.Fprintf(bw, "%.6f\n", a.Seconds())
	}
	return bw.Flush()
}

// Load parses a trace from the line format. The duration is taken from the
// "# duration_s:" header when present, otherwise from the last arrival
// (rounded up to the next second). Arrivals are sorted; negative offsets are
// rejected.
func Load(r io.Reader, name string) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var arrivals []time.Duration
	var duration time.Duration
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "#") {
			if rest, ok := strings.CutPrefix(s, "# duration_s:"); ok {
				v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: bad duration: %w", line, err)
				}
				duration = time.Duration(v * float64(time.Second))
			}
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		// Bound the offsets: negative, NaN, or beyond ~31 simulated years
		// would overflow time.Duration.
		const maxSeconds = 1e9
		if v < 0 || v != v || v > maxSeconds {
			return nil, fmt.Errorf("trace: line %d: arrival %v out of range [0, %g]", line, v, float64(maxSeconds))
		}
		arrivals = append(arrivals, time.Duration(v*float64(time.Second)))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	slices.Sort(arrivals)
	if duration == 0 && len(arrivals) > 0 {
		duration = arrivals[len(arrivals)-1].Truncate(time.Second) + time.Second
	}
	return &Trace{Name: name, Arrivals: arrivals, Duration: duration}, nil
}

// FromArrivals builds a trace from raw arrival offsets (copied and sorted).
func FromArrivals(name string, arrivals []time.Duration, duration time.Duration) *Trace {
	out := make([]time.Duration, len(arrivals))
	copy(out, arrivals)
	slices.Sort(out)
	if duration == 0 && len(out) > 0 {
		duration = out[len(out)-1] + time.Nanosecond
	}
	return &Trace{Name: name, Arrivals: out, Duration: duration}
}

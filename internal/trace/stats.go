package trace

import (
	"math"
	"time"
)

// Burst is a contiguous span whose arrival rate exceeds a threshold — the
// "request surges" of the paper's Azure sample.
type Burst struct {
	// Start is the burst's first window.
	Start time.Duration
	// Duration is the burst's length.
	Duration time.Duration
	// PeakRPS is the highest windowed rate inside the burst.
	PeakRPS float64
	// Requests is the number of arrivals inside the burst.
	Requests int
}

// Bursts detects contiguous spans whose rate (over the given window) exceeds
// thresholdFrac of the trace's peak rate. Adjacent qualifying windows merge
// into one burst.
func (t *Trace) Bursts(window time.Duration, thresholdFrac float64) []Burst {
	rates := t.RateCurve(window)
	counts := t.WindowCounts(window)
	peak := 0.0
	for _, r := range rates {
		if r > peak {
			peak = r
		}
	}
	if peak == 0 {
		return nil
	}
	threshold := peak * thresholdFrac

	var bursts []Burst
	var cur *Burst
	for i, r := range rates {
		if r >= threshold {
			if cur == nil {
				bursts = append(bursts, Burst{Start: time.Duration(i) * window})
				cur = &bursts[len(bursts)-1]
			}
			cur.Duration += window
			cur.Requests += counts[i]
			if r > cur.PeakRPS {
				cur.PeakRPS = r
			}
		} else {
			cur = nil
		}
	}
	return bursts
}

// RateCV returns the coefficient of variation (sd/mean) of the windowed rate
// curve — the erraticness measure distinguishing the Twitter trace from the
// stable one.
func (t *Trace) RateCV(window time.Duration) float64 {
	rates := t.RateCurve(window)
	if len(rates) == 0 {
		return 0
	}
	mean, sq := 0.0, 0.0
	for _, r := range rates {
		mean += r
	}
	mean /= float64(len(rates))
	if mean == 0 {
		return 0
	}
	for _, r := range rates {
		sq += (r - mean) * (r - mean)
	}
	return math.Sqrt(sq/float64(len(rates))) / mean
}

// BurstLoadShare returns the fraction of all requests that arrive inside
// bursts (per Bursts with the same parameters) — how surge-concentrated the
// trace is.
func (t *Trace) BurstLoadShare(window time.Duration, thresholdFrac float64) float64 {
	if t.Count() == 0 {
		return 0
	}
	total := 0
	for _, b := range t.Bursts(window, thresholdFrac) {
		total += b.Requests
	}
	return float64(total) / float64(t.Count())
}

// Package trace generates the request-arrival traces the paper evaluates
// with. The original traces (an Azure serverless sample, a 5-day Wikipedia
// access trace, a Twitter stream sample) are not redistributable, so each is
// replaced by a seeded synthetic generator reproducing the properties the
// paper relies on: the Azure sample's large peak-to-mean ratio (~673:55) with
// occasional surges over otherwise sparse traffic, Wikipedia's diurnal
// pattern with ~16 h/day of sustained high traffic, Twitter's erratic and
// dense arrivals, and a plain Poisson process for the resource-exhaustion
// study. All generators are deterministic given a sim.RNG.
package trace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/sim"
)

// Trace is a sequence of request arrival instants over [0, Duration).
type Trace struct {
	// Name identifies the generator and parameters, for reports.
	Name string
	// Arrivals are the request arrival offsets, sorted ascending.
	Arrivals []time.Duration
	// Duration is the trace length; arrivals all fall before it.
	Duration time.Duration
}

// Count returns the number of requests in the trace.
func (t *Trace) Count() int { return len(t.Arrivals) }

// MeanRPS returns the average arrival rate.
func (t *Trace) MeanRPS() float64 {
	if t.Duration <= 0 {
		return 0
	}
	return float64(len(t.Arrivals)) / t.Duration.Seconds()
}

// PeakRPS returns the maximum arrival rate observed over any aligned window
// of the given size.
func (t *Trace) PeakRPS(window time.Duration) float64 {
	if window <= 0 || len(t.Arrivals) == 0 {
		return 0
	}
	counts := t.WindowCounts(window)
	maxc := 0
	for _, c := range counts {
		if c > maxc {
			maxc = c
		}
	}
	return float64(maxc) / window.Seconds()
}

// WindowCounts buckets arrivals into aligned windows of the given size and
// returns the per-window request counts. The last partial window is included.
func (t *Trace) WindowCounts(window time.Duration) []int {
	n := int(t.Duration/window) + 1
	counts := make([]int, n)
	for _, a := range t.Arrivals {
		i := int(a / window)
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	return counts
}

// RateCurve returns the arrival rate (rps) per aligned bucket.
func (t *Trace) RateCurve(bucket time.Duration) []float64 {
	counts := t.WindowCounts(bucket)
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c) / bucket.Seconds()
	}
	return out
}

// Slice returns a sub-trace covering [from, to).
func (t *Trace) Slice(from, to time.Duration) *Trace {
	lo := sort.Search(len(t.Arrivals), func(i int) bool { return t.Arrivals[i] >= from })
	hi := sort.Search(len(t.Arrivals), func(i int) bool { return t.Arrivals[i] >= to })
	out := make([]time.Duration, hi-lo)
	for i, a := range t.Arrivals[lo:hi] {
		out[i] = a - from
	}
	return &Trace{
		Name:     fmt.Sprintf("%s[%v:%v]", t.Name, from, to),
		Arrivals: out,
		Duration: to - from,
	}
}

// curveBucket is the resolution at which rate curves are sampled before
// Poisson realization. 100 ms resolves the paper's surge dynamics while
// keeping even a compressed multi-day trace to a few hundred thousand
// buckets.
const curveBucket = 100 * time.Millisecond

// FromRateCurve realizes an inhomogeneous Poisson process: for each bucket of
// the given width with rate rates[i] (rps), it draws a Poisson count and
// places the arrivals uniformly inside the bucket. It is Curve.Realize with
// the historical signature; Curve.Stream yields the same arrivals lazily.
func FromRateCurve(rng *sim.RNG, name string, rates []float64, bucket time.Duration) *Trace {
	return (&Curve{Name: name, Rates: rates, Bucket: bucket}).Realize(rng)
}

// poisson draws from Poisson(mean) using inversion for small means and a
// normal approximation for large ones (mean > 64), which is plenty accurate
// at trace resolution.
func poisson(uniform func() float64, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Box-Muller normal approximation.
		u1, u2 := uniform(), uniform()
		if u1 < 1e-12 {
			u1 = 1e-12
		}
		z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		n := int(math.Round(mean + z*math.Sqrt(mean)))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= uniform()
		if p <= l {
			return k
		}
		k++
		if k > 10000 { // numerically impossible at mean <= 64; guard anyway
			return k
		}
	}
}

// scaleToPeak rescales a curve so its maximum equals peak.
func scaleToPeak(rates []float64, peak float64) {
	maxr := 0.0
	for _, r := range rates {
		if r > maxr {
			maxr = r
		}
	}
	if maxr <= 0 {
		return
	}
	f := peak / maxr
	for i := range rates {
		rates[i] *= f
	}
}

// scaleToMean rescales a curve so its average equals mean.
func scaleToMean(rates []float64, mean float64) {
	sum := 0.0
	for _, r := range rates {
		sum += r
	}
	if sum <= 0 {
		return
	}
	f := mean * float64(len(rates)) / sum
	for i := range rates {
		rates[i] *= f
	}
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
)

// Metric is one Prometheus sample: a family name, sorted labels, and a
// value. The exposition writer and the parser round-trip through this
// type, which is what the round-trip test pins.
type Metric struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label is one name="value" pair.
type Label struct{ Name, Value string }

// promFamily annotates one metric family for HELP/TYPE comments.
type promFamily struct {
	name, help, typ string
	samples         []Metric
}

type promSet struct {
	families []*promFamily
	byName   map[string]*promFamily
}

func newPromSet() *promSet {
	return &promSet{byName: make(map[string]*promFamily)}
}

func (p *promSet) family(name, typ, help string) *promFamily {
	if f, ok := p.byName[name]; ok {
		return f
	}
	f := &promFamily{name: name, help: help, typ: typ}
	p.byName[name] = f
	p.families = append(p.families, f)
	return f
}

func (p *promSet) add(name, typ, help string, value float64, labels ...Label) {
	f := p.family(name, typ, help)
	f.samples = append(f.samples, Metric{Name: name, Labels: labels, Value: value})
}

// WriteText renders the set in the Prometheus text exposition format
// (version 0.0.4), families in registration order, samples in insertion
// order — deterministic for a deterministic input.
func (p *promSet) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range p.families {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		if f.typ != "" {
			fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		}
		for _, s := range f.samples {
			bw.WriteString(s.String())
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// String renders the sample as one exposition line.
func (m Metric) String() string {
	var b strings.Builder
	b.WriteString(m.Name)
	if len(m.Labels) > 0 {
		b.WriteByte('{')
		for i, l := range m.Labels {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatPromValue(m.Value))
	return b.String()
}

// formatPromValue renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParsePromText parses Prometheus text exposition into samples, ignoring
// comments and blank lines. It understands exactly the subset the writer
// emits (no timestamps, no escapes beyond %q), which is all the round-trip
// test and the live-smoke scrape need.
func ParsePromText(r io.Reader) ([]Metric, error) {
	var out []Metric
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: /metrics line %d: %w", lineNo, err)
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parsePromLine(line string) (Metric, error) {
	var m Metric
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		m.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return m, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parsePromLabels(rest[i+1 : end])
		if err != nil {
			return m, err
		}
		m.Labels = labels
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return m, fmt.Errorf("malformed sample %q", line)
		}
		m.Name = fields[0]
		rest = strings.TrimSpace(fields[1])
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return m, fmt.Errorf("bad value in %q: %w", line, err)
	}
	m.Value = v
	return m, nil
}

func parsePromLabels(s string) ([]Label, error) {
	var out []Label
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value after %q", name)
		}
		// Find the closing quote, honouring \" escapes.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value after %q", name)
		}
		val, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad label value after %q: %w", name, err)
		}
		out = append(out, Label{Name: name, Value: val})
		s = strings.TrimPrefix(strings.TrimSpace(s[end+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// buildMetrics assembles the full exposition from the hub state, the run's
// Online aggregator (nil when the run uses the exact Collector — the
// latency summary and goodput families are simply absent then) and the
// driver (nil when unpaced).
func buildMetrics(st State, online *metrics.Online, driver *Driver) *promSet {
	p := newPromSet()

	p.add("paldia_virtual_time_seconds", "gauge",
		"Virtual time of the replayed simulation.", st.VirtualTime.Seconds())
	if driver != nil {
		p.add("paldia_wall_elapsed_seconds", "gauge",
			"Wall-clock time since the replay started.", driver.WallElapsed().Seconds())
		p.add("paldia_replay_speedup", "gauge",
			"Configured virtual-per-wall replay ratio (0 = unpaced).", driver.Speedup())
	}
	p.add("paldia_replay_done", "gauge",
		"1 once the replay has finished.", boolGauge(st.Done))
	p.add("paldia_bus_events_total", "counter",
		"Telemetry events observed on the bus.", float64(st.EventsSeen))
	p.add("paldia_inflight_requests", "gauge",
		"Requests currently open in the span assembler.", float64(st.InFlight))

	for _, t := range st.Tenants {
		lbl := Label{"tenant", strconv.Itoa(t.Tenant)}
		p.add("paldia_requests_arrived_total", "counter",
			"Requests that reached the gateway.", float64(t.Arrived), lbl)
		p.add("paldia_requests_completed_total", "counter",
			"Requests served to completion.", float64(t.Completed), lbl)
		p.add("paldia_requests_failed_total", "counter",
			"Requests lost to node failures or the final flush.", float64(t.Failed), lbl)
		p.add("paldia_slo_violations_total", "counter",
			"Requests that missed the SLO or failed.", float64(t.Violations), lbl)
		p.add("paldia_slo_compliance", "gauge",
			"Fraction of finished requests served within the SLO.", t.Compliance, lbl)
	}

	if online != nil {
		s := online.Snapshot()
		for _, q := range []struct {
			q string
			v time.Duration
		}{{"0.5", s.P50}, {"0.95", s.P95}, {"0.99", s.P99}} {
			p.add("paldia_latency_seconds", "summary",
				"End-to-end latency quantiles from the online sketch.",
				q.v.Seconds(), Label{"quantile", q.q})
		}
		p.add("paldia_latency_seconds_sum", "", "",
			s.Mean.Seconds()*float64(s.Count))
		p.add("paldia_latency_seconds_count", "", "", float64(s.Count))
		p.add("paldia_latency_max_seconds", "gauge",
			"Maximum observed end-to-end latency.", s.Max.Seconds())

		// Goodput over the trailing minute of virtual time.
		from := st.VirtualTime - time.Minute
		if from < 0 {
			from = 0
		}
		if to := st.VirtualTime; to > from {
			p.add("paldia_goodput_rps", "gauge",
				"Requests served within SLO per second, trailing 1m of virtual time.",
				online.GoodputRPS(from, to))
			p.add("paldia_arrival_rps", "gauge",
				"Arrival rate per second, trailing 1m of virtual time.",
				online.ArrivalRPS(from, to))
		}
	}

	for _, w := range sortedKeys(st.Burn) {
		p.add("paldia_slo_burn_rate", "gauge",
			"Error-budget burn rate per look-back window (1 = budget pace).",
			st.Burn[w], Label{"window", w})
	}
	p.add("paldia_slo_burn_firing", "gauge",
		"1 while the multi-window burn-rate alert is firing.", boolGauge(st.BurnFiring))
	p.add("paldia_slo_burn_alerts_total", "counter",
		"Burn-rate alert transitions (firing and resolving).", float64(len(st.Alerts)))

	// Operational counters from the event bus.
	p.add("paldia_cold_starts_total", "counter",
		"Synchronous (request-blocking) container boots.", float64(st.ColdBoots))
	p.add("paldia_container_prewarms_total", "counter",
		"Containers booted in the background.", float64(st.Prewarms))
	p.add("paldia_container_reaps_total", "counter",
		"Idle containers reaped past keep-alive.", float64(st.Reaps))
	p.add("paldia_hw_switches_total", "counter",
		"Primary serving hardware reconfigurations.", float64(st.HWSwitches))
	p.add("paldia_nodes_acquired_total", "counter",
		"Worker VMs acquired.", float64(st.NodesAcquired))
	p.add("paldia_nodes_released_total", "counter",
		"Worker VMs released.", float64(st.NodesReleased))
	p.add("paldia_node_failures_total", "counter",
		"Injected node failures observed.", float64(st.NodesFailed))
	p.add("paldia_scale_outs_total", "counter",
		"Replica nodes brought into service.", float64(st.ScaleOuts))
	p.add("paldia_scale_ins_total", "counter",
		"Replica nodes retired.", float64(st.ScaleIns))

	// The latest sampled gauges (cost ledger, pool occupancy, rates, ...)
	// pass through under one family with a series label, so whatever the
	// sampler observes is scrapable without a schema change here.
	for _, name := range sortedKeys(st.Gauges) {
		p.add("paldia_sampled_gauge", "gauge",
			"Latest virtual-time sample of each runtime gauge series.",
			st.Gauges[name], Label{"series", name})
	}
	// Pool occupancy and the cost ledger get first-class names too (these
	// are the series the paper's operator story leans on).
	if v, ok := st.Gauges["cost_usd"]; ok {
		p.add("paldia_cost_usd", "gauge",
			"Accrued cluster cost in dollars (latest sample).", v)
	}
	if v, ok := st.Gauges["containers_idle"]; ok {
		p.add("paldia_pool_containers", "gauge",
			"Container pool occupancy by state (latest sample).",
			v, Label{"state", "idle"})
	}
	if v, ok := st.Gauges["containers_busy"]; ok {
		p.add("paldia_pool_containers", "gauge", "",
			v, Label{"state", "busy"})
	}
	if v, ok := st.Gauges["nodes"]; ok {
		p.add("paldia_active_nodes", "gauge",
			"Nodes currently held (latest sample).", v)
	}

	p.add("paldia_sse_subscribers", "gauge",
		"Connected /events subscribers.", float64(st.Subscribers))
	p.add("paldia_sse_dropped_total", "counter",
		"Feed events dropped across slow subscribers.", float64(st.FeedDropped))
	return p
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

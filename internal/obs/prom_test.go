package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// shortReplay runs a small trace with the plane fully attached (sink,
// pacer, shared Online aggregator) and returns the plane, ready to serve.
func shortReplay(t *testing.T) *Plane {
	t.Helper()
	tr := trace.Azure(sim.NewRNG(11), 80, 30*time.Second)
	online := metrics.NewOnline(core.DefaultSLO, tr.Duration, metrics.DefaultGoodputWindow)
	plane := NewPlane(Options{Online: online, Clock: NewFakeClock(), Speedup: 600})
	core.Run(core.Config{
		Model:       model.MustByName("ResNet 50"),
		Trace:       tr,
		Scheme:      core.NewPaldia(),
		Seed:        11,
		Telemetry:   plane.Sink(),
		SampleEvery: time.Second,
		Aggregator:  online,
		Pacer:       plane.Pacer(),
	})
	plane.MarkDone()
	return plane
}

// The exposition must round-trip: render -> parse -> re-render reproduces
// every sample line byte-for-byte. This is the acceptance criterion pinning
// that /metrics really is Prometheus text format (the hand-rolled writer
// and parser cross-check each other).
func TestPromTextRoundTrips(t *testing.T) {
	plane := shortReplay(t)
	var buf bytes.Buffer
	set := buildMetrics(plane.Hub().Snapshot(), plane.Online(), plane.Driver())
	if err := set.WriteText(&buf); err != nil {
		t.Fatal(err)
	}

	parsed, err := ParsePromText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("rendered exposition does not parse: %v", err)
	}

	var origLines []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		origLines = append(origLines, line)
	}
	if len(parsed) != len(origLines) {
		t.Fatalf("parsed %d samples from %d sample lines", len(parsed), len(origLines))
	}
	for i, m := range parsed {
		if got := m.String(); got != origLines[i] {
			t.Errorf("line %d did not round-trip:\n  orig: %s\n  back: %s", i, origLines[i], got)
		}
	}
}

// The exposition carries the families the operator story leans on, with
// sane values from a real replay.
func TestPromExpositionContents(t *testing.T) {
	plane := shortReplay(t)
	var buf bytes.Buffer
	if err := buildMetrics(plane.Hub().Snapshot(), plane.Online(), plane.Driver()).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParsePromText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	byKey := make(map[string]float64)
	for _, m := range parsed {
		key := m.Name
		for _, l := range m.Labels {
			key += "|" + l.Name + "=" + l.Value
		}
		if _, dup := byKey[key]; dup {
			t.Errorf("duplicate sample %q", key)
		}
		byKey[key] = m.Value
	}

	mustHave := []string{
		"paldia_virtual_time_seconds",
		"paldia_wall_elapsed_seconds",
		"paldia_replay_speedup",
		"paldia_replay_done",
		"paldia_bus_events_total",
		"paldia_requests_arrived_total|tenant=0",
		"paldia_requests_completed_total|tenant=0",
		"paldia_slo_compliance|tenant=0",
		"paldia_latency_seconds|quantile=0.5",
		"paldia_latency_seconds|quantile=0.95",
		"paldia_latency_seconds|quantile=0.99",
		"paldia_latency_seconds_sum",
		"paldia_latency_seconds_count",
		"paldia_slo_burn_rate|window=5m",
		"paldia_slo_burn_rate|window=1h",
		"paldia_slo_burn_firing",
		"paldia_cold_starts_total",
		"paldia_cost_usd",
		"paldia_active_nodes",
		"paldia_sampled_gauge|series=cost_usd",
	}
	for _, key := range mustHave {
		if _, ok := byKey[key]; !ok {
			t.Errorf("exposition missing %q", key)
		}
	}

	if v := byKey["paldia_virtual_time_seconds"]; v < 30 {
		t.Errorf("virtual time %v s, want at least the 30s trace", v)
	}
	if v := byKey["paldia_replay_done"]; v != 1 {
		t.Errorf("replay_done = %v after MarkDone, want 1", v)
	}
	if v := byKey["paldia_replay_speedup"]; v != 600 {
		t.Errorf("speedup = %v, want 600", v)
	}
	if v := byKey["paldia_requests_completed_total|tenant=0"]; v <= 0 {
		t.Errorf("completed = %v, want > 0", v)
	}
	if v := byKey["paldia_slo_compliance|tenant=0"]; v <= 0 || v > 1 {
		t.Errorf("compliance = %v, want in (0, 1]", v)
	}
	if v := byKey["paldia_latency_seconds|quantile=0.95"]; v <= 0 {
		t.Errorf("p95 = %v, want > 0", v)
	}
	if c := byKey["paldia_latency_seconds_count"]; c != byKey["paldia_requests_arrived_total|tenant=0"] {
		t.Errorf("summary count %v != arrived %v", c, byKey["paldia_requests_arrived_total|tenant=0"])
	}
}

// Label values with quotes, backslashes and commas survive the writer ->
// parser round-trip.
func TestPromLabelEscaping(t *testing.T) {
	in := Metric{
		Name: "paldia_test",
		Labels: []Label{
			{Name: "a", Value: `plain`},
			{Name: "b", Value: `has "quotes" and \slashes\`},
			{Name: "c", Value: `comma, separated`},
		},
		Value: 1.5,
	}
	parsed, err := ParsePromText(strings.NewReader(in.String() + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 {
		t.Fatalf("parsed %d metrics, want 1", len(parsed))
	}
	if got := parsed[0].String(); got != in.String() {
		t.Fatalf("escaping did not round-trip:\n  in:  %s\n  out: %s", in.String(), got)
	}
}

func TestParsePromTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		`unterminated{a="b 1` + "\n",
		`badvalue{a="b"} one` + "\n",
		`unquoted{a=b} 1` + "\n",
	} {
		if _, err := ParsePromText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePromText accepted %q", bad)
		}
	}
}

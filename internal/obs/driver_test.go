package obs

import (
	"testing"
	"time"
)

// At speedup 60, a minute of virtual time maps onto one wall second; the
// driver sleeps exactly the gap between "now" and the target instant.
func TestDriverPacesVirtualOntoWall(t *testing.T) {
	clk := NewFakeClock()
	d := NewDriver(clk, 60)

	d.Pace(60 * time.Second) // target = start + 1s, now = start
	if got := clk.Slept(); got != time.Second {
		t.Fatalf("slept %v after first instant, want 1s", got)
	}
	d.Pace(120 * time.Second) // target = start + 2s, now = start + 1s
	if got := clk.Slept(); got != 2*time.Second {
		t.Fatalf("slept %v after second instant, want 2s", got)
	}
	if got := d.VirtualNow(); got != 120*time.Second {
		t.Fatalf("VirtualNow = %v, want 2m", got)
	}
	if got := d.WallElapsed(); got != 2*time.Second {
		t.Fatalf("WallElapsed = %v, want 2s", got)
	}
}

// When the simulation falls behind the wall clock the driver never sleeps —
// lag is absorbed, not compounded.
func TestDriverAbsorbsLag(t *testing.T) {
	clk := NewFakeClock()
	d := NewDriver(clk, 60)
	d.Pace(60 * time.Second)
	clk.Advance(10 * time.Second) // an expensive instant: wall ran ahead
	d.Pace(120 * time.Second)     // target start+2s is already past
	if got := clk.Slept(); got != time.Second {
		t.Fatalf("slept %v, want only the first instant's 1s", got)
	}
}

// Speedup <= 0 disables pacing entirely.
func TestDriverUnpaced(t *testing.T) {
	clk := NewFakeClock()
	d := NewDriver(clk, 0)
	d.Pace(time.Hour)
	if got := clk.Slept(); got != 0 {
		t.Fatalf("unpaced driver slept %v", got)
	}
	if d.Speedup() != 0 {
		t.Fatalf("Speedup = %v, want 0", d.Speedup())
	}
	if d.WallElapsed() != 0 {
		t.Fatalf("WallElapsed should be 0 on a clock that never moved, got %v", d.WallElapsed())
	}
}

func TestFakeClockSleepAdvancesReading(t *testing.T) {
	clk := NewFakeClock()
	t0 := clk.Now()
	clk.Sleep(3 * time.Second)
	clk.Sleep(-time.Second) // negative sleeps are ignored
	if got := clk.Now().Sub(t0); got != 3*time.Second {
		t.Fatalf("reading advanced %v, want 3s", got)
	}
	if got := clk.Slept(); got != 3*time.Second {
		t.Fatalf("Slept = %v, want 3s", got)
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// NewServer returns an http.Server serving the plane on addr:
//
//	/         minimal live dashboard (embedded HTML)
//	/metrics  Prometheus text exposition
//	/state    full JSON state snapshot
//	/events   Server-Sent Events telemetry feed
//	/healthz  liveness probe
//
// ReadHeaderTimeout and IdleTimeout are set so a stuck client can't pin a
// connection forever; there is deliberately no WriteTimeout because /events
// is a long-lived stream.
func NewServer(addr string, p *Plane) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           Handler(p),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// Handler returns the plane's HTTP routes (for embedding and tests).
func Handler(p *Plane) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, dashboardHTML)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		set := buildMetrics(p.hub.Snapshot(), p.online, p.driver)
		if err := set.WriteText(w); err != nil {
			// Headers are gone; nothing to do but drop the connection.
			return
		}
	})
	mux.HandleFunc("/state", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		st := p.hub.Snapshot()
		_ = enc.Encode(stateJSON{
			State:       st,
			WallElapsed: p.driver.WallElapsed(),
			Speedup:     p.driver.Speedup(),
		})
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		serveSSE(p, w, r)
	})
	return mux
}

// stateJSON decorates the hub state with replay-driver readings.
type stateJSON struct {
	State
	WallElapsed time.Duration `json:"wall_elapsed_ns"`
	Speedup     float64       `json:"speedup"`
}

// serveSSE streams the hub feed to one client until it disconnects or the
// replay finishes. Every event is `event: <name>` + `data: <json>` per the
// SSE wire format; a `hello` event with the current state snapshot opens
// the stream so late subscribers start with full context.
func serveSSE(p *Plane, w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	sub := p.hub.Subscribe(0)
	defer p.hub.Unsubscribe(sub)

	hello, err := json.Marshal(p.hub.Snapshot())
	if err == nil {
		fmt.Fprintf(w, "event: hello\ndata: %s\n\n", hello)
		fl.Flush()
	}

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, ev.Data); err != nil {
				return
			}
			fl.Flush()
			if ev.Name == "done" {
				return
			}
		}
	}
}

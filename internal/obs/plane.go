package obs

import (
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// Options configures a Plane.
type Options struct {
	// SLO is the per-request latency objective spans are judged against.
	// Zero defaults to core.DefaultSLO.
	SLO time.Duration

	// Objective is the target SLO-compliance fraction whose complement is
	// the error budget (0.99 => 1% budget). Zero defaults to 0.99.
	Objective float64

	// Windows are the burn-rate look-back windows; empty uses
	// DefaultBurnWindows (5m/1h virtual, threshold 14.4 each).
	Windows []BurnWindow

	// Resolution buckets burn accounting; zero defaults to 1s virtual.
	Resolution time.Duration

	// Online, when set, is the run's constant-memory aggregator; /metrics
	// serves latency quantiles and goodput from its snapshots. Pass the
	// same value through core.Config.Aggregator.
	Online *metrics.Online

	// Clock paces the replay; nil uses the real clock.
	Clock Clock

	// Speedup is virtual seconds per wall second; <= 0 leaves the replay
	// unpaced (as fast as the hardware allows).
	Speedup float64
}

// Plane bundles the live observability plane: the hub (telemetry sink +
// state + SSE feed), the burn-rate tracker, the wall-clock replay driver
// and the HTTP server glue. Attach it to a run with:
//
//	cfg.Telemetry = telemetry.Combine(otherSinks, plane.Sink())
//	cfg.Pacer = plane.Pacer()
//	cfg.Aggregator = plane.Online()   // optional, for /metrics quantiles
//
// and serve it with NewServer(plane).
type Plane struct {
	hub    *Hub
	burn   *BurnTracker
	driver *Driver
	online *metrics.Online
}

// NewPlane assembles a plane from options.
func NewPlane(o Options) *Plane {
	if o.SLO == 0 {
		o.SLO = core.DefaultSLO
	}
	if o.Objective == 0 {
		o.Objective = 0.99
	}
	burn := NewBurnTracker(o.Objective, o.Windows, o.Resolution, nil)
	hub := NewHub(o.SLO, burn)
	burn.onAlert = hub.alert
	return &Plane{
		hub:    hub,
		burn:   burn,
		driver: NewDriver(o.Clock, o.Speedup),
		online: o.Online,
	}
}

// Hub returns the plane's state store and SSE feed.
func (p *Plane) Hub() *Hub { return p.hub }

// Sink returns the telemetry sink to combine into Config.Telemetry.
func (p *Plane) Sink() telemetry.Sink { return p.hub }

// Pacer returns the clock-advance hook for core.Config.Pacer.
func (p *Plane) Pacer() func(time.Duration) { return p.driver.Pace }

// Driver returns the wall-clock replay driver.
func (p *Plane) Driver() *Driver { return p.driver }

// Online returns the aggregator /metrics snapshots, if any.
func (p *Plane) Online() *metrics.Online { return p.online }

// MarkDone flags the replay finished (see Hub.MarkDone).
func (p *Plane) MarkDone() { p.hub.MarkDone() }

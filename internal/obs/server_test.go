package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// planeWithTraffic hand-feeds the plane a tiny but complete request
// lifecycle plus a gauge sample, so handler tests don't need a full replay.
func planeWithTraffic() *Plane {
	p := NewPlane(Options{Clock: NewFakeClock()})
	sink := p.Sink()
	ev := func(at time.Duration, kind telemetry.Kind, req int64) telemetry.Event {
		return telemetry.Event{At: at, Kind: kind, Req: req, Node: -1, Job: -1}
	}
	sink.Event(ev(10*time.Millisecond, telemetry.Arrived, 1))
	sink.Event(ev(90*time.Millisecond, telemetry.Completed, 1))
	sink.Event(telemetry.Event{
		At: 100 * time.Millisecond, Kind: telemetry.Sample, Req: -1, Job: -1,
		Detail: "cost_usd", Value: 0.25,
	})
	return p
}

func TestServerEndpoints(t *testing.T) {
	p := planeWithTraffic()
	srv := httptest.NewServer(Handler(p))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp, string(body)
	}

	resp, body := get("/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "paldia live replay") {
		t.Errorf("dashboard: status %d, body %.80q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("dashboard content-type %q", ct)
	}

	if resp, _ := get("/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", resp.StatusCode)
	}

	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("healthz: status %d, body %q", resp.StatusCode, body)
	}

	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content-type %q, want the 0.0.4 text format", ct)
	}
	samples, err := ParsePromText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("scraped /metrics does not parse: %v", err)
	}
	found := false
	for _, m := range samples {
		if m.Name == "paldia_requests_completed_total" && m.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Error("scrape is missing the completed-request counter")
	}

	resp, body = get("/state")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("state: status %d", resp.StatusCode)
	}
	var st stateJSON
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("state is not JSON: %v\n%s", err, body)
	}
	if st.EventsSeen != 3 || len(st.Tenants) != 1 || st.Tenants[0].Completed != 1 {
		t.Errorf("state snapshot off: %+v", st.State)
	}
	if st.Gauges["cost_usd"] != 0.25 {
		t.Errorf("state gauges = %v", st.Gauges)
	}
}

// End-to-end SSE: a client connected to /events receives the hello
// snapshot, then live span/gauge/done events as the simulation feeds the
// plane, and the handler returns cleanly after done.
func TestServerSSEStream(t *testing.T) {
	p := planeWithTraffic()
	srv := httptest.NewServer(Handler(p))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q, want text/event-stream", ct)
	}

	type sse struct{ name, data string }
	events := make(chan sse, 16)
	readErr := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		var cur sse
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.data = strings.TrimPrefix(line, "data: ")
			case line == "":
				if cur.name != "" {
					events <- cur
				}
				cur = sse{}
			}
		}
		readErr <- sc.Err()
	}()

	next := func(want string) sse {
		t.Helper()
		select {
		case ev := <-events:
			if ev.name != want {
				t.Fatalf("got %q event, want %q (data %.120s)", ev.name, want, ev.data)
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %q event", want)
		}
		panic("unreachable")
	}

	hello := next("hello")
	var st State
	if err := json.Unmarshal([]byte(hello.data), &st); err != nil {
		t.Fatalf("hello payload is not a state snapshot: %v", err)
	}
	if st.EventsSeen != 3 {
		t.Errorf("hello snapshot events_seen = %d, want 3", st.EventsSeen)
	}

	// Wait for the subscription to be registered before feeding more
	// traffic (the GET above returns before the handler subscribes).
	deadline := time.Now().Add(5 * time.Second)
	for p.Hub().Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	sink := p.Sink()
	sink.Event(telemetry.Event{At: 200 * time.Millisecond, Kind: telemetry.Arrived, Req: 2, Node: -1, Job: -1})
	sink.Event(telemetry.Event{At: 350 * time.Millisecond, Kind: telemetry.Completed, Req: 2, Node: -1, Job: -1})
	span := next("span")
	var sj struct {
		Req       int64 `json:"req"`
		LatencyNs int64 `json:"latency_ns"`
	}
	if err := json.Unmarshal([]byte(span.data), &sj); err != nil {
		t.Fatalf("span payload: %v", err)
	}
	if sj.Req != 2 || sj.LatencyNs != int64(150*time.Millisecond) {
		t.Errorf("span = %+v, want req 2 with 150ms latency", sj)
	}

	sink.Event(telemetry.Event{
		At: 500 * time.Millisecond, Kind: telemetry.Sample, Req: -1, Job: -1,
		Detail: "nodes", Value: 3,
	})
	gauge := next("gauge")
	if !strings.Contains(gauge.data, `"nodes"`) {
		t.Errorf("gauge payload %q", gauge.data)
	}

	p.MarkDone()
	next("done")
	if err := <-readErr; err != nil {
		t.Fatalf("stream did not end cleanly: %v", err)
	}
	if n := p.Hub().Subscribers(); n != 0 {
		t.Errorf("%d subscribers left after the stream closed", n)
	}
}

// A slow /events subscriber loses events (counted), never the simulation.
func TestHubDropsOnSlowSubscriber(t *testing.T) {
	p := NewPlane(Options{Clock: NewFakeClock()})
	sub := p.Hub().Subscribe(2) // tiny buffer, never drained
	defer p.Hub().Unsubscribe(sub)
	sink := p.Sink()
	for i := 0; i < 10; i++ {
		sink.Event(telemetry.Event{
			At: time.Duration(i) * time.Millisecond, Kind: telemetry.Sample,
			Req: -1, Job: -1, Detail: "pending_requests", Value: float64(i),
		})
	}
	st := p.Hub().Snapshot()
	if st.FeedDropped != 8 {
		t.Errorf("dropped %d events, want 8 (10 sent, buffer 2)", st.FeedDropped)
	}
	if st.EventsSeen != 10 {
		t.Errorf("hub must observe all 10 events regardless, saw %d", st.EventsSeen)
	}
}

// /metrics output is deterministic for a fixed state: two renders are
// byte-identical (prerequisite for diffable scrapes in CI).
func TestMetricsRenderDeterministic(t *testing.T) {
	p := planeWithTraffic()
	render := func() []byte {
		var buf bytes.Buffer
		if err := buildMetrics(p.Hub().Snapshot(), nil, p.Driver()).WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Error("two renders of the same state differ")
	}
}

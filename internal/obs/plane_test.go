package obs

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// testTrace realizes the shared workload for the non-perturbation tests.
// The trace must be regenerated per run (realization mutates the RNG), but
// the same seed makes every realization identical.
func testTrace() *trace.Trace {
	return trace.Azure(sim.NewRNG(42), 250, 2*time.Minute)
}

// Non-perturbation, exact-metrics path: attaching the full plane — sink
// combined onto the bus, pacer driving a fake clock at speedup, burn
// tracking live — leaves the Result, the per-request CSV and the span JSONL
// byte-identical to a detached run. Failure injection is on so the plane
// also observes the cluster.Fail path without disturbing it.
func TestPlaneDoesNotPerturbExactRun(t *testing.T) {
	type snapshot struct {
		res   core.Result
		csv   bytes.Buffer
		spans bytes.Buffer
	}
	run := func(p *Plane) *snapshot {
		rec := telemetry.NewRecorder()
		cfg := core.Config{
			Model:           model.MustByName("ResNet 50"),
			Trace:           testTrace(),
			Scheme:          core.NewPaldia(),
			Seed:            42,
			Telemetry:       rec,
			SampleEvery:     time.Second,
			FailureEvery:    40 * time.Second,
			FailureDuration: 10 * time.Second,
		}
		if p != nil {
			cfg.Telemetry = telemetry.Combine(rec, p.Sink())
			cfg.Pacer = p.Pacer()
		}
		var s snapshot
		s.res = core.Run(cfg)
		if err := s.res.Collector.WriteCSV(&s.csv); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteSpansJSONL(&s.spans); err != nil {
			t.Fatal(err)
		}
		return &s
	}

	detached := run(nil)
	clk := NewFakeClock()
	plane := NewPlane(Options{Clock: clk, Speedup: 600})
	attached := run(plane)
	plane.MarkDone()

	ra, rb := detached.res, attached.res
	ra.Collector, rb.Collector = nil, nil
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("Result changed with the plane attached:\n%+v\nvs\n%+v", ra, rb)
	}
	if !bytes.Equal(detached.csv.Bytes(), attached.csv.Bytes()) {
		t.Error("per-request CSV changed with the plane attached")
	}
	if !bytes.Equal(detached.spans.Bytes(), attached.spans.Bytes()) {
		t.Error("span JSONL changed with the plane attached")
	}
	if detached.csv.Len() == 0 || detached.spans.Len() == 0 {
		t.Fatalf("exports empty: csv=%d spans=%d", detached.csv.Len(), detached.spans.Len())
	}

	// The comparison is only meaningful if the plane really observed the run.
	st := plane.Hub().Snapshot()
	if st.EventsSeen == 0 || len(st.Tenants) == 0 || st.VirtualTime == 0 {
		t.Fatalf("plane saw nothing: %+v", st)
	}
	if st.Tenants[0].Completed == 0 {
		t.Fatal("plane assembled no completed spans")
	}
	if !st.Done {
		t.Fatal("MarkDone did not latch")
	}
	if clk.Slept() == 0 {
		t.Fatal("paced replay never slept on the fake clock; the pacer was not wired")
	}
	// 2m of trace plus the 30s drain at speedup 600 is 250ms of wall time;
	// the fake clock slept at most that (lag is absorbed, never compounded).
	if max := (2*time.Minute + core.DefaultDrain) / 600; clk.Slept() > max {
		t.Fatalf("slept %v, more than the %v the speedup allows", clk.Slept(), max)
	}
	if res := attached.res; res.FailuresInjected == 0 {
		t.Error("failure injection never fired; the non-perturbation check lost coverage")
	}
}

// Non-perturbation, streaming-metrics path: a run feeding the plane's
// shared Online aggregator (the one /metrics snapshots mid-run) matches a
// detached MetricsOnline run — same Result, same span JSONL, and the two
// aggregators end in identical states.
func TestPlaneDoesNotPerturbOnlineRun(t *testing.T) {
	dur := testTrace().Duration // r.end in core.Run: the arrival stream's span
	type snapshot struct {
		res   core.Result
		snap  metrics.Snapshot
		spans bytes.Buffer
	}
	run := func(p *Plane) *snapshot {
		rec := telemetry.NewRecorder()
		cfg := core.Config{
			Model:       model.MustByName("ResNet 50"),
			Trace:       testTrace(),
			Scheme:      core.NewPaldia(),
			Seed:        42,
			Telemetry:   rec,
			SampleEvery: time.Second,
			Metrics:     core.MetricsOnline,
		}
		if p != nil {
			cfg.Telemetry = telemetry.Combine(rec, p.Sink())
			cfg.Pacer = p.Pacer()
			cfg.Aggregator = p.Online()
		}
		var s snapshot
		s.res = core.Run(cfg)
		s.snap = s.res.Online.Snapshot()
		if err := rec.WriteSpansJSONL(&s.spans); err != nil {
			t.Fatal(err)
		}
		return &s
	}

	detached := run(nil)
	// Mirror the aggregator core.Run would build for MetricsOnline.
	online := metrics.NewOnline(core.DefaultSLO, dur, metrics.DefaultGoodputWindow)
	plane := NewPlane(Options{Online: online, Clock: NewFakeClock(), Speedup: 600})
	attached := run(plane)

	if attached.res.Online != online {
		t.Fatal("run did not adopt the plane's aggregator")
	}
	ra, rb := detached.res, attached.res
	ra.Online, rb.Online = nil, nil
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("Result changed with the plane attached:\n%+v\nvs\n%+v", ra, rb)
	}
	if !reflect.DeepEqual(detached.snap, attached.snap) {
		t.Errorf("Online snapshots diverged:\n%+v\nvs\n%+v", detached.snap, attached.snap)
	}
	if !bytes.Equal(detached.spans.Bytes(), attached.spans.Bytes()) {
		t.Error("span JSONL changed with the plane attached")
	}
	if a, b := detached.snap.Count, attached.res.Requests; a == 0 || a != b {
		t.Fatalf("aggregator drained %d records for %d requests", a, b)
	}
}

package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Hub is the plane's telemetry sink and state store. It consumes the typed
// event bus (combined into Config.Telemetry alongside any other sinks),
// assembles spans with the shared telemetry assembler, keeps per-tenant
// compliance counters, the latest sampled gauges and operational counters,
// feeds the burn-rate tracker, and broadcasts a rendered feed to SSE
// subscribers. One mutex guards everything: the simulation goroutine writes
// through Event, HTTP handler goroutines read through Snapshot/Subscribe.
type Hub struct {
	mu sync.Mutex

	slo  time.Duration
	burn *BurnTracker

	vt         time.Duration // latest virtual time observed on the bus
	eventsSeen uint64

	tenants map[int]*tenantCounters
	asm     *telemetry.SpanAssembler

	gauges  map[string]float64 // latest Sample value per series
	gaugeAt map[string]time.Duration

	coldBoots   uint64 // synchronous, request-blocking container boots
	prewarms    uint64 // containers started in the background
	reaps       uint64 // idle containers reaped past keep-alive
	hwSwitches  uint64
	nodesUp     uint64 // NodeAcquired
	nodesDown   uint64 // NodeReleased
	nodesFailed uint64
	scaleOuts   uint64
	scaleIns    uint64

	alerts []Alert
	done   bool

	subs      map[*Subscriber]struct{}
	dropTotal uint64
}

// tenantCounters is the per-tenant compliance ledger, fed from assembled
// spans (latency judged against the SLO) and raw Failed events.
type tenantCounters struct {
	Arrived    uint64
	Completed  uint64
	Failed     uint64
	Violations uint64 // failed or over-SLO
}

// NewHub returns a hub judging spans against slo and feeding burn. burn may
// be nil (no burn tracking).
func NewHub(slo time.Duration, burn *BurnTracker) *Hub {
	h := &Hub{
		slo:     slo,
		burn:    burn,
		tenants: make(map[int]*tenantCounters),
		gauges:  make(map[string]float64),
		gaugeAt: make(map[string]time.Duration),
		subs:    make(map[*Subscriber]struct{}),
	}
	h.asm = telemetry.NewSpanAssembler(h.spanDone)
	return h
}

// Event implements telemetry.Sink. It is called from the simulation
// goroutine only, like every other sink on the bus.
func (h *Hub) Event(e telemetry.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.eventsSeen++
	if e.At > h.vt {
		h.vt = e.At
		if h.burn != nil {
			h.burn.Tick(e.At)
		}
	}

	switch e.Kind {
	case telemetry.Sample:
		h.gauges[e.Detail] = e.Value
		h.gaugeAt[e.Detail] = e.At
		h.broadcast("gauge", gaugeJSON{AtNs: int64(e.At), Name: e.Detail, Value: e.Value})
		return
	case telemetry.Arrived:
		h.tenant(e.Tenant).Arrived++
	case telemetry.ContainerBoot:
		h.coldBoots++
	case telemetry.ContainerPrewarm:
		h.prewarms += uint64(e.N)
	case telemetry.ContainerReaped:
		h.reaps += uint64(e.N)
	case telemetry.HWSwitch:
		h.hwSwitches++
	case telemetry.NodeAcquired:
		h.nodesUp++
	case telemetry.NodeReleased:
		h.nodesDown++
	case telemetry.NodeFailed:
		h.nodesFailed++
	case telemetry.ScaleOut:
		h.scaleOuts++
	case telemetry.ScaleIn:
		h.scaleIns++
	}

	// Control-plane events (no request scope) are interesting enough to
	// stream individually; per-request lifecycle events would flood the feed
	// and are represented by their assembled span instead.
	if e.Req < 0 {
		h.broadcast("ctrl", ctrlJSON{
			AtNs: int64(e.At), Kind: e.Kind.String(), Node: e.Node,
			Spec: e.Spec, N: e.N, Detail: e.Detail,
		})
	}
	h.asm.Observe(e)
}

// spanDone runs inside Event's lock via the assembler callback.
func (h *Hub) spanDone(s *telemetry.Span) {
	tc := h.tenant(s.Tenant)
	bad := s.Failed || s.Latency() > h.slo
	if s.Failed {
		tc.Failed++
	} else {
		tc.Completed++
	}
	if bad {
		tc.Violations++
	}
	at := s.Completed
	if at < 0 {
		at = h.vt
	}
	if h.burn != nil {
		h.burn.Observe(at, bad)
	}
	h.broadcast("span", telemetry.SpanJSON(s))
}

func (h *Hub) tenant(i int) *tenantCounters {
	tc := h.tenants[i]
	if tc == nil {
		tc = &tenantCounters{}
		h.tenants[i] = tc
	}
	return tc
}

// alert records and broadcasts one burn-rate transition. It is installed as
// the BurnTracker callback, which only ever runs inside Event's lock.
func (h *Hub) alert(a Alert) {
	h.alerts = append(h.alerts, a)
	h.broadcast("alert", a)
}

// MarkDone flags the replay finished and tells every subscriber: live
// dashboards stop expecting data and the smoke test can assert a clean end.
func (h *Hub) MarkDone() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.done = true
	h.broadcast("done", doneJSON{AtNs: int64(h.vt)})
}

type gaugeJSON struct {
	AtNs  int64   `json:"at_ns"`
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type ctrlJSON struct {
	AtNs   int64  `json:"at_ns"`
	Kind   string `json:"kind"`
	Node   int    `json:"node"`
	Spec   string `json:"spec,omitempty"`
	N      int    `json:"n,omitempty"`
	Detail string `json:"detail,omitempty"`
}

type doneJSON struct {
	AtNs int64 `json:"at_ns"`
}

// --- SSE broadcast -----------------------------------------------------------

// FeedEvent is one rendered server-sent event: a name and a JSON payload.
type FeedEvent struct {
	Name string
	Data []byte
}

// Subscriber is one /events consumer. Events are delivered through a
// buffered channel; when the consumer can't keep up the hub drops events
// for it (counting drops) rather than ever blocking the simulation.
type Subscriber struct {
	C       <-chan FeedEvent
	ch      chan FeedEvent
	dropped uint64
}

// Subscribe registers a subscriber with the given buffer (<=0 defaults to
// 256 events).
func (h *Hub) Subscribe(buffer int) *Subscriber {
	if buffer <= 0 {
		buffer = 256
	}
	s := &Subscriber{ch: make(chan FeedEvent, buffer)}
	s.C = s.ch
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	return s
}

// Unsubscribe removes the subscriber and closes its channel.
func (h *Hub) Unsubscribe(s *Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
		close(s.ch)
	}
}

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// broadcast renders once and fans out non-blocking; callers hold h.mu.
func (h *Hub) broadcast(name string, payload any) {
	if len(h.subs) == 0 {
		return
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	ev := FeedEvent{Name: name, Data: data}
	for s := range h.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped++
			h.dropTotal++
		}
	}
}

// --- snapshots ---------------------------------------------------------------

// TenantState is one tenant's ledger in a state snapshot.
type TenantState struct {
	Tenant     int     `json:"tenant"`
	Arrived    uint64  `json:"arrived"`
	Completed  uint64  `json:"completed"`
	Failed     uint64  `json:"failed"`
	Violations uint64  `json:"violations"`
	Compliance float64 `json:"compliance"`
}

// State is the hub's full point-in-time view, served as JSON at /state and
// the source for /metrics.
type State struct {
	VirtualTime   time.Duration      `json:"virtual_time_ns"`
	Done          bool               `json:"done"`
	EventsSeen    uint64             `json:"events_seen"`
	InFlight      int                `json:"in_flight_requests"`
	Tenants       []TenantState      `json:"tenants"`
	Gauges        map[string]float64 `json:"gauges"`
	Burn          map[string]float64 `json:"burn,omitempty"`
	BurnFiring    bool               `json:"burn_firing"`
	Alerts        []Alert            `json:"alerts"`
	ColdBoots     uint64             `json:"cold_boots"`
	Prewarms      uint64             `json:"prewarms"`
	Reaps         uint64             `json:"reaps"`
	HWSwitches    uint64             `json:"hw_switches"`
	NodesAcquired uint64             `json:"nodes_acquired"`
	NodesReleased uint64             `json:"nodes_released"`
	NodesFailed   uint64             `json:"nodes_failed"`
	ScaleOuts     uint64             `json:"scale_outs"`
	ScaleIns      uint64             `json:"scale_ins"`
	Subscribers   int                `json:"subscribers"`
	FeedDropped   uint64             `json:"feed_dropped"`
}

// Snapshot returns a consistent copy of the hub's state, safe to read from
// any goroutine.
func (h *Hub) Snapshot() State {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := State{
		VirtualTime:   h.vt,
		Done:          h.done,
		EventsSeen:    h.eventsSeen,
		InFlight:      h.asm.InFlight(),
		Gauges:        make(map[string]float64, len(h.gauges)),
		ColdBoots:     h.coldBoots,
		Prewarms:      h.prewarms,
		Reaps:         h.reaps,
		HWSwitches:    h.hwSwitches,
		NodesAcquired: h.nodesUp,
		NodesReleased: h.nodesDown,
		NodesFailed:   h.nodesFailed,
		ScaleOuts:     h.scaleOuts,
		ScaleIns:      h.scaleIns,
		Subscribers:   len(h.subs),
		FeedDropped:   h.dropTotal,
	}
	for k, v := range h.gauges {
		st.Gauges[k] = v
	}
	ids := make([]int, 0, len(h.tenants))
	for id := range h.tenants {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		tc := h.tenants[id]
		ts := TenantState{
			Tenant: id, Arrived: tc.Arrived, Completed: tc.Completed,
			Failed: tc.Failed, Violations: tc.Violations, Compliance: 1,
		}
		if n := tc.Completed + tc.Failed; n > 0 {
			ts.Compliance = float64(n-tc.Violations) / float64(n)
		}
		st.Tenants = append(st.Tenants, ts)
	}
	st.Alerts = append([]Alert(nil), h.alerts...)
	if h.burn != nil {
		st.Burn = h.burn.Burn()
		st.BurnFiring = h.burn.Firing()
	}
	return st
}

// Alerts returns a copy of every burn-rate transition so far.
func (h *Hub) Alerts() []Alert {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Alert(nil), h.alerts...)
}

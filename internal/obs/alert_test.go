package obs

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The headline observability demo: replay a trace with node-failure
// injection (cluster.Fail) and a tight error budget, and the multi-window
// burn-rate alert fires — then shows up in the hub's alert log, the state
// snapshot and the SSE feed.
func TestBurnAlertFiresUnderInjectedNodeFailures(t *testing.T) {
	plane := NewPlane(Options{
		Objective: 0.999, // 0.1% budget: an outage burns it orders of magnitude too fast
		Windows: []BurnWindow{
			{Name: "30s", Length: 30 * time.Second, Threshold: 14.4},
			{Name: "2m", Length: 2 * time.Minute, Threshold: 14.4},
		},
		Resolution: time.Second,
		Clock:      NewFakeClock(),
	})
	// Subscribe with a buffer big enough for the whole replay's feed, so
	// every event — including the final done — is captured losslessly.
	sub := plane.Hub().Subscribe(1 << 17)

	res := core.Run(core.Config{
		Model:           model.MustByName("ResNet 50"),
		Trace:           trace.Azure(sim.NewRNG(42), 250, 2*time.Minute),
		Scheme:          core.NewPaldia(),
		Seed:            42,
		Telemetry:       plane.Sink(),
		SampleEvery:     time.Second,
		FailureEvery:    40 * time.Second,
		FailureDuration: 10 * time.Second,
	})
	plane.MarkDone()

	if res.FailuresInjected == 0 {
		t.Fatal("no failures injected; the scenario lost its outage")
	}
	alerts := plane.Hub().Alerts()
	var fired bool
	for _, a := range alerts {
		if a.Firing {
			fired = true
			if a.Burn["30s"] < 14.4 || a.Burn["2m"] < 14.4 {
				t.Errorf("firing alert below threshold in some window: %v", a.Burn)
			}
			if a.At == 0 {
				t.Error("firing alert carries no virtual timestamp")
			}
		}
	}
	if !fired {
		t.Fatalf("burn-rate alert never fired across the outage; alerts = %+v", alerts)
	}

	st := plane.Hub().Snapshot()
	if len(st.Alerts) != len(alerts) {
		t.Errorf("snapshot carries %d alerts, hub %d", len(st.Alerts), len(alerts))
	}
	if st.NodesFailed == 0 {
		t.Error("hub never counted a node-failed event")
	}

	// The alert also reached the SSE feed, losslessly.
	if st.FeedDropped != 0 {
		t.Fatalf("feed dropped %d events; buffer too small for the assertion below", st.FeedDropped)
	}
	names := make(map[string]int)
drain:
	for {
		select {
		case ev := <-sub.C:
			names[ev.Name]++
		default:
			break drain
		}
	}
	if names["alert"] == 0 {
		t.Errorf("no alert event on the SSE feed; saw %v", names)
	}
	if names["span"] == 0 {
		t.Errorf("no span events on the SSE feed; saw %v", names)
	}
	if names["done"] != 1 {
		t.Errorf("want exactly one done event, saw %v", names)
	}
}

// A clean run against the paper's defaults must stay quiet: no alert, burn
// far below the page threshold.
func TestBurnAlertStaysQuietOnHealthyRun(t *testing.T) {
	plane := NewPlane(Options{Clock: NewFakeClock()})
	core.Run(core.Config{
		Model:     model.MustByName("MobileNet"),
		Trace:     trace.Azure(sim.NewRNG(7), 100, time.Minute),
		Scheme:    core.NewPaldia(),
		Seed:      7,
		Telemetry: plane.Sink(),
	})
	if alerts := plane.Hub().Alerts(); len(alerts) != 0 {
		t.Fatalf("healthy run raised alerts: %+v", alerts)
	}
	if plane.Hub().Snapshot().BurnFiring {
		t.Fatal("healthy run left the burn alert firing")
	}
}

package obs

import (
	"sync"
	"time"
)

// Driver maps virtual time onto wall-clock time at a configurable speedup.
// Its Pace method is shaped for core.Config.Pacer: the engine calls it once
// per distinct virtual instant, before the events there fire, and the
// driver sleeps until the corresponding wall instant. Speedup is virtual
// seconds per wall second — 1 replays in real time, 60 replays a minute of
// trace per second, and 0 (or anything non-positive) disables pacing so the
// replay runs as fast as the hardware allows while everything else about
// the plane still works.
//
// The driver never slows virtual time down relative to the model and never
// reorders anything: it only inserts wall-clock waits between instants, so
// the simulation's trajectory is exactly the unpaced one.
type Driver struct {
	clock   Clock
	speedup float64

	mu        sync.Mutex
	started   bool
	wallStart time.Time
	vt        time.Duration // latest virtual instant observed
}

// NewDriver returns a driver pacing at the given speedup on the given
// clock. A nil clock uses the real one.
func NewDriver(clock Clock, speedup float64) *Driver {
	if clock == nil {
		clock = RealClock{}
	}
	return &Driver{clock: clock, speedup: speedup}
}

// Speedup returns the configured virtual-per-wall ratio (0 = unpaced).
func (d *Driver) Speedup() float64 {
	if d.speedup <= 0 {
		return 0
	}
	return d.speedup
}

// Pace observes the virtual clock advancing to vt and blocks until the
// wall clock catches up to vt/speedup past the replay's start. Lag is never
// "made up" by running virtual time faster — if the simulation falls behind
// (an expensive instant), subsequent instants simply sleep less.
func (d *Driver) Pace(vt time.Duration) {
	d.mu.Lock()
	if !d.started {
		d.started = true
		d.wallStart = d.clock.Now()
	}
	d.vt = vt
	wallStart := d.wallStart
	d.mu.Unlock()

	if d.speedup <= 0 {
		return
	}
	target := wallStart.Add(time.Duration(float64(vt) / d.speedup))
	if wait := target.Sub(d.clock.Now()); wait > 0 {
		d.clock.Sleep(wait)
	}
}

// VirtualNow returns the latest virtual instant the driver has observed.
func (d *Driver) VirtualNow() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.vt
}

// WallElapsed returns how much wall time has passed since the replay
// started (zero before the first paced instant).
func (d *Driver) WallElapsed() time.Duration {
	d.mu.Lock()
	started, wallStart := d.started, d.wallStart
	d.mu.Unlock()
	if !started {
		return 0
	}
	return d.clock.Now().Sub(wallStart)
}

package obs

import (
	"math"
	"testing"
	"time"
)

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

// One hot window: burn = badFraction / errorBudget, and the alert fires and
// resolves as the window fills and then expires.
func TestBurnTrackerRateAndTransitions(t *testing.T) {
	var alerts []Alert
	tr := NewBurnTracker(0.9, []BurnWindow{{Name: "10s", Length: 10 * time.Second, Threshold: 2}},
		time.Second, func(a Alert) { alerts = append(alerts, a) })

	// 10 outcomes at t=1s, half bad: burn = (5/10) / 0.1 = 5.
	for i := 0; i < 10; i++ {
		tr.Observe(sec(1), i%2 == 0)
	}
	if got := tr.Burn()["10s"]; math.Abs(got-5) > 1e-9 {
		t.Fatalf("burn = %v, want 5", got)
	}
	if !tr.Firing() {
		t.Fatal("burn 5 >= threshold 2 should fire")
	}
	if len(alerts) != 1 || !alerts[0].Firing {
		t.Fatalf("want one firing alert, got %+v", alerts)
	}
	if alerts[0].Burn["10s"] < 2 {
		t.Fatalf("alert should carry the hot burn rate, got %v", alerts[0].Burn)
	}

	// Quiet time expires the window: burn decays to 0 and the alert resolves.
	tr.Tick(sec(30))
	if got := tr.Burn()["10s"]; got != 0 {
		t.Fatalf("burn after expiry = %v, want 0", got)
	}
	if tr.Firing() {
		t.Fatal("alert should have resolved after the window emptied")
	}
	if len(alerts) != 2 || alerts[1].Firing {
		t.Fatalf("want firing then resolved, got %+v", alerts)
	}
}

// The combined rule is AND across windows: a short spike that only heats the
// fast window must not fire.
func TestBurnTrackerNeedsEveryWindow(t *testing.T) {
	tr := NewBurnTracker(0.99, []BurnWindow{
		{Name: "5s", Length: 5 * time.Second, Threshold: 2},
		{Name: "60s", Length: 60 * time.Second, Threshold: 2},
	}, time.Second, nil)

	// 55s of clean traffic, then one bad second: the 5s window burns hot
	// (1 bad / 1 total => burn 100) but the 60s window holds 1/56.
	for s := 0; s < 55; s++ {
		tr.Observe(sec(s), false)
	}
	tr.Observe(sec(55), true)
	b := tr.Burn()
	if b["5s"] < 2 {
		t.Fatalf("fast window should be hot, burn = %v", b)
	}
	if b["60s"] >= 2 {
		t.Fatalf("slow window should be cool, burn = %v", b)
	}
	if tr.Firing() {
		t.Fatal("AND rule must not fire on a fast-window-only spike")
	}
}

// Outcomes older than the newest bucket fold into it rather than landing in
// a ring slot that the expiry sweep would never reclaim; once the window
// rolls past, the sums return exactly to zero.
func TestBurnTrackerLateOutcomesFoldForward(t *testing.T) {
	tr := NewBurnTracker(0.99, []BurnWindow{{Name: "10s", Length: 10 * time.Second, Threshold: 1e18}},
		time.Second, nil)
	tr.Observe(sec(100), true)
	tr.Observe(sec(3), true) // straggler far older than the ring
	if got := tr.Burn()["10s"]; math.Abs(got-100) > 1e-9 {
		t.Fatalf("burn with both outcomes in window = %v, want 100 (2/2 bad, budget 1%%)", got)
	}
	tr.Tick(sec(500))
	if got := tr.Burn()["10s"]; got != 0 {
		t.Fatalf("burn after rolling far past = %v, want exactly 0 (no residue)", got)
	}
}

// Cycling the ring many times over keeps window sums exact.
func TestBurnTrackerRingReuseStaysExact(t *testing.T) {
	tr := NewBurnTracker(0.5, []BurnWindow{{Name: "5s", Length: 5 * time.Second, Threshold: 1e18}},
		time.Second, nil)
	// 1000 seconds, one good outcome each: the window always holds 5 good.
	for s := 0; s < 1000; s++ {
		tr.Observe(sec(s), false)
		if got := tr.Burn()["5s"]; got != 0 {
			t.Fatalf("t=%ds: burn = %v, want 0", s, got)
		}
	}
	// Now one bad: the 5-bucket window holds 4 good + 1 bad => (1/5)/0.5.
	tr.Observe(sec(1000), true)
	want := (1.0 / 5.0) / 0.5
	if got := tr.Burn()["5s"]; math.Abs(got-want) > 1e-9 {
		t.Fatalf("burn = %v, want %v", got, want)
	}
}

func TestDefaultBurnWindows(t *testing.T) {
	ws := DefaultBurnWindows()
	if len(ws) != 2 || ws[0].Name != "5m" || ws[1].Name != "1h" {
		t.Fatalf("unexpected defaults: %+v", ws)
	}
	for _, w := range ws {
		if w.Threshold != 14.4 {
			t.Fatalf("window %s threshold = %v, want the 14.4 page threshold", w.Name, w.Threshold)
		}
	}
}

package obs

// dashboardHTML is the embedded single-file dashboard served at /. It is
// deliberately dependency-free: stat tiles refreshed from /state plus a live
// feed tail from /events (SSE). Status color is never the only signal — the
// alert banner always carries a text label.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>paldia live replay</title>
<style>
  :root {
    --bg: #fafaf9; --surface: #ffffff; --border: #e7e5e4;
    --ink: #1c1917; --ink-2: #57534e; --ink-3: #a8a29e;
    --good: #1a7f37; --critical: #b91c1c; --critical-bg: #fef2f2;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      --bg: #1c1917; --surface: #292524; --border: #44403c;
      --ink: #fafaf9; --ink-2: #d6d3d1; --ink-3: #78716c;
      --good: #3fb950; --critical: #f87171; --critical-bg: #3f1d1d;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 24px; background: var(--bg); color: var(--ink);
    font: 14px/1.5 ui-sans-serif, system-ui, sans-serif;
  }
  h1 { font-size: 16px; font-weight: 600; margin: 0 0 4px; }
  .sub { color: var(--ink-2); margin: 0 0 20px; }
  .sub code { color: var(--ink); }
  #banner {
    display: none; margin: 0 0 16px; padding: 10px 14px; border-radius: 8px;
    border: 1px solid var(--critical); background: var(--critical-bg);
    color: var(--critical); font-weight: 600;
  }
  #banner.firing { display: block; }
  .tiles {
    display: grid; gap: 12px;
    grid-template-columns: repeat(auto-fill, minmax(160px, 1fr));
    margin-bottom: 20px;
  }
  .tile {
    background: var(--surface); border: 1px solid var(--border);
    border-radius: 8px; padding: 12px 14px;
  }
  .tile .label {
    color: var(--ink-2); font-size: 12px; text-transform: uppercase;
    letter-spacing: .04em;
  }
  .tile .value {
    font-size: 24px; font-weight: 600; font-variant-numeric: tabular-nums;
    margin-top: 2px;
  }
  .tile .hint { color: var(--ink-3); font-size: 12px; }
  table {
    width: 100%; border-collapse: collapse; background: var(--surface);
    border: 1px solid var(--border); border-radius: 8px; overflow: hidden;
    margin-bottom: 20px;
  }
  caption { text-align: left; font-weight: 600; padding: 0 0 6px; }
  th, td {
    text-align: right; padding: 6px 12px; border-top: 1px solid var(--border);
    font-variant-numeric: tabular-nums;
  }
  th { color: var(--ink-2); font-weight: 500; border-top: none; }
  th:first-child, td:first-child { text-align: left; }
  #feed {
    background: var(--surface); border: 1px solid var(--border);
    border-radius: 8px; padding: 10px 14px; height: 220px; overflow-y: auto;
    font: 12px/1.6 ui-monospace, monospace; color: var(--ink-2);
    white-space: pre-wrap; word-break: break-all;
  }
  #feed .alert { color: var(--critical); font-weight: 600; }
</style>
</head>
<body>
<h1>paldia live replay</h1>
<p class="sub">scrape <code>/metrics</code> · snapshot <code>/state</code> · stream <code>/events</code></p>
<div id="banner">SLO burn-rate alert FIRING</div>
<div class="tiles">
  <div class="tile"><div class="label">virtual time</div><div class="value" id="vt">–</div></div>
  <div class="tile"><div class="label">completed</div><div class="value" id="completed">–</div></div>
  <div class="tile"><div class="label">compliance</div><div class="value" id="compliance">–</div></div>
  <div class="tile"><div class="label">in flight</div><div class="value" id="inflight">–</div></div>
  <div class="tile"><div class="label">cold starts</div><div class="value" id="cold">–</div></div>
  <div class="tile"><div class="label">cost</div><div class="value" id="cost">–</div></div>
  <div class="tile"><div class="label">burn 5m</div><div class="value" id="burn5m">–</div><div class="hint">1 = budget pace</div></div>
  <div class="tile"><div class="label">burn 1h</div><div class="value" id="burn1h">–</div><div class="hint">1 = budget pace</div></div>
</div>
<table>
  <caption>Per-tenant ledger</caption>
  <thead><tr><th>tenant</th><th>arrived</th><th>completed</th><th>failed</th><th>violations</th><th>compliance</th></tr></thead>
  <tbody id="tenants"></tbody>
</table>
<div id="feed"></div>
<script>
"use strict";
var $ = function (id) { return document.getElementById(id); };
function fmtDur(ns) {
  var s = ns / 1e9;
  if (s < 120) return s.toFixed(1) + "s";
  if (s < 7200) return (s / 60).toFixed(1) + "m";
  return (s / 3600).toFixed(2) + "h";
}
function fmtPct(x) { return (100 * x).toFixed(2) + "%"; }
function render(st) {
  $("vt").textContent = fmtDur(st.virtual_time_ns || 0);
  var completed = 0;
  var rows = "";
  (st.tenants || []).forEach(function (t) {
    completed += t.completed;
    rows += "<tr><td>" + t.tenant + "</td><td>" + t.arrived +
      "</td><td>" + t.completed + "</td><td>" + t.failed +
      "</td><td>" + t.violations + "</td><td>" + fmtPct(t.compliance) + "</td></tr>";
  });
  $("tenants").innerHTML = rows;
  $("completed").textContent = completed.toLocaleString();
  var fin = 0, bad = 0;
  (st.tenants || []).forEach(function (t) {
    fin += t.completed + t.failed; bad += t.violations;
  });
  $("compliance").textContent = fin ? fmtPct((fin - bad) / fin) : "–";
  $("inflight").textContent = st.in_flight_requests;
  $("cold").textContent = st.cold_boots;
  var cost = (st.gauges || {})["cost_usd"];
  $("cost").textContent = cost === undefined ? "–" : "$" + cost.toFixed(2);
  var burn = st.burn || {};
  $("burn5m").textContent = burn["5m"] === undefined ? "–" : burn["5m"].toFixed(2);
  $("burn1h").textContent = burn["1h"] === undefined ? "–" : burn["1h"].toFixed(2);
  $("banner").className = st.burn_firing ? "firing" : "";
}
function poll() {
  fetch("/state").then(function (r) { return r.json(); }).then(render).catch(function () {});
}
setInterval(poll, 1000);
poll();

var feed = $("feed"), lines = 0;
function tail(cls, text) {
  var div = document.createElement("div");
  if (cls) div.className = cls;
  div.textContent = text;
  feed.appendChild(div);
  while (++lines > 500) { feed.removeChild(feed.firstChild); lines--; }
  feed.scrollTop = feed.scrollHeight;
}
var es = new EventSource("/events");
["span", "gauge", "ctrl", "alert", "done"].forEach(function (name) {
  es.addEventListener(name, function (ev) {
    tail(name === "alert" ? "alert" : "", name + " " + ev.data);
    if (name === "done") es.close();
  });
});
</script>
</body>
</html>
`

// Package obs is the live observability plane: a wall-clock replay driver
// that paces the deterministic simulation against real time, an HTTP server
// exposing Prometheus-style /metrics, a JSON /state snapshot and a
// Server-Sent-Events /events stream of the telemetry feed, and a
// multi-window SLO error-budget burn-rate tracker with threshold-crossing
// alerts.
//
// The plane is strictly an observer. It attaches to a run through three
// read-only seams — a telemetry.Sink combined into Config.Telemetry, the
// Config.Pacer clock-advance hook, and mid-run snapshots of the run's
// metrics.Online aggregator — and none of them feed anything back into the
// simulation, so a run's Result, per-request CSV and span JSONL are
// byte-identical with the plane attached or detached (pinned by tests).
package obs

import (
	"sync"
	"time"
)

// Clock abstracts wall time so the replay driver is testable: production
// uses the real clock, tests a fake whose Sleep returns instantly while
// advancing its reading, making paced replays deterministic and instant.
type Clock interface {
	// Now returns the current wall-clock reading.
	Now() time.Time
	// Sleep blocks for d (or merely advances the reading, for fakes).
	Sleep(d time.Duration)
}

// RealClock is the production Clock, backed by package time.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// FakeClock is a deterministic Clock for tests: Sleep advances the reading
// and returns immediately, so a paced replay runs at full speed while the
// driver still performs its real arithmetic. Safe for concurrent use.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time

	slept time.Duration
}

// NewFakeClock returns a fake clock starting at an arbitrary fixed epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(1_700_000_000, 0)}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: the reading jumps by d, no real time passes.
func (c *FakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.slept += d
	c.mu.Unlock()
}

// Slept returns the total time slept — what a real clock would have waited.
func (c *FakeClock) Slept() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slept
}

// Advance moves the reading forward without counting as sleep.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

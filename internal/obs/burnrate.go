package obs

import (
	"fmt"
	"time"
)

// BurnWindow is one look-back window of the multi-window burn-rate rule.
type BurnWindow struct {
	// Name labels the window in gauges and alerts ("5m", "1h").
	Name string
	// Length is the window's virtual-time span.
	Length time.Duration
	// Threshold is the burn rate at or above which this window votes to
	// fire. The SRE convention for a fast page is 14.4 — burning 2% of a
	// 30-day budget in one hour — which both defaults use, so short spikes
	// must also show up in the longer window before an alert fires.
	Threshold float64
}

// DefaultBurnWindows is the classic fast/slow multi-window pair, in virtual
// time: an alert needs the 5m AND the 1h window above threshold, making it
// both quick to fire under a real outage and immune to single-bucket blips.
func DefaultBurnWindows() []BurnWindow {
	return []BurnWindow{
		{Name: "5m", Length: 5 * time.Minute, Threshold: 14.4},
		{Name: "1h", Length: time.Hour, Threshold: 14.4},
	}
}

// Alert is one threshold-crossing transition of the burn-rate rule.
type Alert struct {
	// At is the virtual time of the transition.
	At time.Duration `json:"at_ns"`
	// Firing is true when the alert began firing, false when it resolved.
	Firing bool `json:"firing"`
	// Burn carries each window's burn rate at the transition, keyed by
	// window name.
	Burn map[string]float64 `json:"burn"`
}

// String renders the alert for logs.
func (a Alert) String() string {
	state := "RESOLVED"
	if a.Firing {
		state = "FIRING"
	}
	return fmt.Sprintf("slo-burn %s at %v %v", state, a.At, a.Burn)
}

// BurnTracker computes multi-window error-budget burn from a stream of
// request outcomes in virtual time. Burn rate over a window is the
// window's bad-request fraction divided by the error budget (1-objective):
// burn 1 spends the budget exactly at the objective's pace, burn N spends
// it N times too fast. The tracker buckets outcomes at a fixed resolution
// and keeps per-window running sums, so an observation costs O(1) amortized
// and memory is O(longest window / resolution), independent of request
// count.
//
// Not safe for concurrent use on its own; the Hub serializes access.
type BurnTracker struct {
	objective float64
	res       time.Duration
	windows   []burnWindowState
	onAlert   func(Alert)

	buckets []burnBucket // ring, indexed by (vt/res) % len
	head    int64        // highest bucket index ever touched
	firing  bool
}

type burnBucket struct {
	idx        int64 // absolute bucket index this slot currently holds
	total, bad uint64
}

type burnWindowState struct {
	BurnWindow
	buckets    int64 // window length in buckets
	total, bad uint64
	tail       int64 // first absolute bucket index inside the window
}

// NewBurnTracker returns a tracker judging against the given compliance
// objective (e.g. 0.99 = 1% error budget) over the given windows, bucketed
// at resolution (<= 0 defaults to 1s). onAlert, when non-nil, receives
// every firing/resolving transition of the combined rule (every window at
// or above its threshold => firing).
func NewBurnTracker(objective float64, windows []BurnWindow, resolution time.Duration, onAlert func(Alert)) *BurnTracker {
	if resolution <= 0 {
		resolution = time.Second
	}
	if len(windows) == 0 {
		windows = DefaultBurnWindows()
	}
	t := &BurnTracker{
		objective: objective,
		res:       resolution,
		onAlert:   onAlert,
	}
	var longest int64
	for _, w := range windows {
		n := int64(w.Length / resolution)
		if n < 1 {
			n = 1
		}
		if n > longest {
			longest = n
		}
		t.windows = append(t.windows, burnWindowState{BurnWindow: w, buckets: n})
	}
	t.buckets = make([]burnBucket, longest+1)
	for i := range t.buckets {
		t.buckets[i].idx = -1
	}
	return t
}

// Observe records one request outcome at virtual time vt. bad marks an
// error-budget-consuming outcome (failed or SLO-violating).
func (t *BurnTracker) Observe(vt time.Duration, bad bool) {
	idx := int64(vt / t.res)
	t.advanceTo(idx)
	if idx < t.head {
		// A straggling outcome older than the newest bucket (cross-tenant
		// interleaving); fold it into the newest so window sums stay exact.
		idx = t.head
	}
	slot := &t.buckets[idx%int64(len(t.buckets))]
	slot.total++
	for i := range t.windows {
		t.windows[i].total++
	}
	if bad {
		slot.bad++
		for i := range t.windows {
			t.windows[i].bad++
		}
	}
	t.evaluate(vt)
}

// Tick advances the tracker's notion of time without an outcome, expiring
// old buckets so burn decays (and alerts resolve) during quiet periods.
func (t *BurnTracker) Tick(vt time.Duration) {
	t.advanceTo(int64(vt / t.res))
	t.evaluate(vt)
}

// advanceTo rolls the ring forward to bucket idx, reclaiming any slot about
// to be reused and expiring buckets that fell out of each window.
func (t *BurnTracker) advanceTo(idx int64) {
	if idx < t.head {
		return
	}
	t.head = idx
	n := int64(len(t.buckets))
	slot := &t.buckets[idx%n]
	if slot.idx != idx {
		// The slot still holds a bucket one ring-length old; its counts have
		// already been expired from every window (windows are at most
		// len(buckets)-1 long), so it can simply be reset.
		slot.idx = idx
		slot.total, slot.bad = 0, 0
	}
	for i := range t.windows {
		w := &t.windows[i]
		newTail := idx - w.buckets + 1
		if newTail < 0 {
			newTail = 0
		}
		for ; w.tail < newTail; w.tail++ {
			s := &t.buckets[w.tail%n]
			if s.idx != w.tail {
				continue // bucket was never written
			}
			w.total -= s.total
			w.bad -= s.bad
		}
	}
}

// Burn returns the current burn rate of each window, keyed by name. An
// empty window burns 0.
func (t *BurnTracker) Burn() map[string]float64 {
	out := make(map[string]float64, len(t.windows))
	for i := range t.windows {
		out[t.windows[i].Name] = t.windows[i].rate(t.objective)
	}
	return out
}

func (w *burnWindowState) rate(objective float64) float64 {
	if w.total == 0 {
		return 0
	}
	budget := 1 - objective
	if budget <= 0 {
		budget = 1e-9
	}
	return (float64(w.bad) / float64(w.total)) / budget
}

// Firing reports whether the combined rule is currently firing.
func (t *BurnTracker) Firing() bool { return t.firing }

// evaluate applies the AND-across-windows rule and emits transitions.
func (t *BurnTracker) evaluate(vt time.Duration) {
	firing := true
	for i := range t.windows {
		if t.windows[i].rate(t.objective) < t.windows[i].Threshold {
			firing = false
			break
		}
	}
	if firing == t.firing {
		return
	}
	t.firing = firing
	if t.onAlert != nil {
		t.onAlert(Alert{At: vt, Firing: firing, Burn: t.Burn()})
	}
}

// Package profile is the profiling substrate of the reproduction. In the
// paper, the provider profiles every workload on every hardware generation
// ahead of time and the resulting tables — solo execution latency Solo_M and
// Fractional Bandwidth Requirement FBR_M — feed both Eq. (1) and the
// Hardware Selection module's capable-hardware pool. Here those tables are
// derived from the calibration constants in internal/model and
// internal/hardware; the formulas below play the role of the measurement
// campaign.
//
// The package also defines the GPU contention penalty P(D) shared by the
// device simulator (ground truth) and the scheduler's performance model,
// mirroring how the paper's model is fit to the same hardware it predicts.
package profile

import (
	"math"
	"time"

	"repro/internal/hardware"
	"repro/internal/model"
)

// Calibration constants. They are package-level (not per-profile) because
// the paper treats them as properties of the serving stack, not of any one
// workload.
const (
	// GPUEfficiency is the fraction of peak device FLOP/s an inference
	// kernel sustains. Calibrated against the paper's §II observation that
	// a single g3s.xlarge (M60) serves ResNet-50 at ~750 rps: 0.6 puts the
	// M60's batched ResNet-50 throughput at ~670 rps.
	GPUEfficiency = 0.6
	// CPUEfficiency is the analogous fraction for the batched CPU mode.
	CPUEfficiency = 0.9
	// GPULaunchOverhead is the fixed per-batch cost on a GPU (kernel
	// launches, host-device transfer, framework dispatch).
	GPULaunchOverhead = 4 * time.Millisecond
	// CPULaunchOverhead is the fixed per-batch cost of the CPU mode.
	CPULaunchOverhead = 10 * time.Millisecond
	// ContentionAlpha is the exponent of the contention penalty P(D): linear
	// bandwidth sharing would be alpha=1; the excess models the
	// cache/capacity interference MPS co-location adds beyond pure
	// bandwidth contention (the regime Prophet's QoS model covers).
	ContentionAlpha = 1.8
	// MPSClientOverhead is the per-additional-client efficiency loss of MPS
	// co-location (SM partition fragmentation and scheduling overhead):
	// k co-resident jobs all run a further (1 + overhead*(k-1)) slower.
	// This is why consolidating *every* batch onto the GPU (the
	// INFless/Llama strategy) eventually loses to a bounded hybrid even
	// when bandwidth is not saturated.
	MPSClientOverhead = 0.10
	// TargetBatchLatency is the solo-latency budget used when picking a
	// hardware-specific batch size; the paper selects batch sizes so that
	// batch execution stays between ~50 and 200 ms.
	TargetBatchLatency = 150 * time.Millisecond
)

// EffectiveGFLOPs returns the sustained GFLOP/s the node delivers for the
// given workload (device peak x efficiency, x the model's CPU friendliness
// on CPU nodes).
func EffectiveGFLOPs(m model.Spec, hw hardware.Spec) float64 {
	if hw.IsGPU() {
		return hw.ComputeScore * 1000 * GPUEfficiency
	}
	return hw.ComputeScore * 1000 * CPUEfficiency * m.CPUFactor
}

// SoloSample returns the profiled per-sample execution time of the workload
// on the node, in isolation (excluding the fixed per-batch overhead).
func SoloSample(m model.Spec, hw hardware.Spec) time.Duration {
	if i, ok := pairIndex(m, hw); ok {
		return tableEntries[i].SoloSample
	}
	return computeSoloSample(m, hw)
}

func computeSoloSample(m model.Spec, hw hardware.Spec) time.Duration {
	sec := m.GFLOPsPerSample / EffectiveGFLOPs(m, hw)
	return time.Duration(sec * float64(time.Second))
}

// Solo returns the profiled execution latency of one batch of the given size
// run in isolation on the node — the paper's Solo_M. For catalog pairs at
// in-range batch sizes this is a table read: the dispatcher prices every job
// it opens with Solo, so the call sits on the per-dispatch hot path.
func Solo(m model.Spec, hw hardware.Spec, batch int) time.Duration {
	if batch < 1 {
		batch = 1
	}
	if i, ok := pairIndex(m, hw); ok && batch <= len(soloMemo[i]) {
		return soloMemo[i][batch-1]
	}
	return computeSolo(m, hw, batch)
}

func computeSolo(m model.Spec, hw hardware.Spec, batch int) time.Duration {
	if batch < 1 {
		batch = 1
	}
	overhead := GPULaunchOverhead
	if !hw.IsGPU() {
		overhead = CPULaunchOverhead
	}
	return overhead + time.Duration(batch)*computeSoloSample(m, hw)
}

// FBR returns the workload's Fractional Bandwidth Requirement on the node:
// the fraction of device global-memory bandwidth one batch job demands while
// executing. An FBR of 0.2 means the job wants 20% of the bandwidth; values
// above 1 mean a single job already saturates the device (the language
// models on the cheaper GPUs). CPU nodes return 0 — the paper's interference
// model only covers MPS co-location on GPUs.
func FBR(m model.Spec, hw hardware.Spec) float64 {
	if i, ok := pairIndex(m, hw); ok {
		return tableEntries[i].FBR
	}
	return computeFBR(m, hw)
}

func computeFBR(m model.Spec, hw hardware.Spec) float64 {
	if !hw.IsGPU() {
		return 0
	}
	demandGBps := m.TrafficGBPerSample * EffectiveGFLOPs(m, hw) / m.GFLOPsPerSample
	return demandGBps / hw.MemBWGBps
}

// SaturationConst scales how many samples' kernels fill a device: a job
// saturates the GPU's compute units once its batch reaches
// SaturationConst * ComputeScore / GFLOPsPerSample samples. Below that, MPS
// co-location genuinely runs jobs in parallel on spare units — the reason
// spatial sharing helps at all; at or beyond it, co-located jobs split the
// device and slow each other proportionally. Calibrated so the paper's
// fixed batch sizes (e.g. SENet 18 at 128, DenseNet 121 at 64) leave
// meaningful spare compute on the M60 — the premise of the motivation
// experiment — reflecting the modest SM occupancy of PyTorch-v1-era
// inference kernels.
const SaturationConst = 56.0

// SaturationBatch returns the batch size at which one job of the workload
// saturates the device's compute units (at least 1).
func SaturationBatch(m model.Spec, hw hardware.Spec) int {
	b := int(SaturationConst * hw.ComputeScore / m.GFLOPsPerSample)
	if b < 1 {
		b = 1
	}
	return b
}

// ComputeFraction returns the fraction of the device's compute units a batch
// job occupies while executing, in (0, 1]. Batch-indexed memo for catalog
// pairs, like Solo.
func ComputeFraction(m model.Spec, hw hardware.Spec, batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	if i, ok := pairIndex(m, hw); ok && batch <= len(computeMemo[i]) {
		return computeMemo[i][batch-1]
	}
	return computeComputeFraction(m, hw, batch)
}

func computeComputeFraction(m model.Spec, hw hardware.Spec, batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	sat := SaturationBatch(m, hw)
	if batch >= sat {
		return 1
	}
	return float64(batch) / float64(sat)
}

// Penalty is the contention penalty P(D) for aggregate bandwidth demand D
// (the sum of FBRs of co-located jobs): no penalty below saturation, then a
// superlinear slowdown.
func Penalty(d float64) float64 {
	if d <= 1 {
		return 1
	}
	return math.Pow(d, ContentionAlpha)
}

// Slowdown returns the multiplicative slowdown a job with FBR own suffers
// when the aggregate demand on the device is total (total includes own).
// A job alone on the device always has slowdown 1, because the profiled
// solo latency already reflects whatever bandwidth the device actually
// delivers to it.
func Slowdown(total, own float64) float64 {
	s := Penalty(total) / Penalty(own)
	if s < 1 {
		return 1
	}
	return s
}

// ClientOverhead returns the MPS co-location efficiency factor for k
// co-resident jobs: 1 for a lone job, growing MPSClientOverhead per extra
// client.
func ClientOverhead(k int) float64 {
	if k <= 1 {
		return 1
	}
	return 1 + MPSClientOverhead*float64(k-1)
}

// PreferredBatch returns the batch size the provider would configure for the
// workload on the node: the largest power of two not exceeding the model's
// MaxBatch whose solo latency fits TargetBatchLatency. It is at least 1 even
// if a single sample misses the target (the device is then simply a bad
// candidate; hardware selection will notice via T_max).
func PreferredBatch(m model.Spec, hw hardware.Spec) int {
	if i, ok := pairIndex(m, hw); ok {
		return tableEntries[i].PreferredBatch
	}
	return computePreferredBatch(m, hw)
}

func computePreferredBatch(m model.Spec, hw hardware.Spec) int {
	best := 1
	for b := 1; b <= m.MaxBatch; b *= 2 {
		if computeSolo(m, hw, b) <= TargetBatchLatency {
			best = b
		}
	}
	return best
}

// ThroughputRPS returns the sustained request throughput of the node for the
// workload: back-to-back batches at the preferred size, in isolation.
func ThroughputRPS(m model.Spec, hw hardware.Spec) float64 {
	if i, ok := pairIndex(m, hw); ok {
		return tableEntries[i].ThroughputRPS
	}
	return computeThroughputRPS(m, hw)
}

func computeThroughputRPS(m model.Spec, hw hardware.Spec) float64 {
	b := computePreferredBatch(m, hw)
	solo := computeSolo(m, hw, b)
	if solo <= 0 {
		return 0
	}
	return float64(b) / solo.Seconds()
}

// MPSMaxClients is NVIDIA MPS's limit on concurrently connected client
// processes (48 since Volta).
const MPSMaxClients = 48

// MaxResidentJobs returns how many serving containers of the workload fit on
// the node at once — the hard cap on spatial co-location: device memory,
// further clamped by the MPS client limit on GPUs.
func MaxResidentJobs(m model.Spec, hw hardware.Spec) int {
	if i, ok := pairIndex(m, hw); ok {
		return tableEntries[i].MaxResidentJobs
	}
	return computeMaxResidentJobs(m, hw)
}

func computeMaxResidentJobs(m model.Spec, hw hardware.Spec) int {
	n := int(hw.MemGB / m.MemFootprintGB)
	if n < 1 {
		n = 1
	}
	if hw.IsGPU() && n > MPSMaxClients {
		n = MPSMaxClients
	}
	return n
}

// Entry is one row of the profiling table for a (model, hardware) pair —
// everything the scheduling policies consume.
type Entry struct {
	Model    model.Spec
	Hardware hardware.Spec
	// SoloSample is the per-sample latency in isolation.
	SoloSample time.Duration
	// FBR is the fractional bandwidth requirement (0 on CPU nodes).
	FBR float64
	// PreferredBatch is the configured batch size.
	PreferredBatch int
	// SoloBatch is Solo at the preferred batch size.
	SoloBatch time.Duration
	// ThroughputRPS is the sustained isolated throughput.
	ThroughputRPS float64
	// MaxResidentJobs caps spatial co-location by device memory.
	MaxResidentJobs int
	// ComputeFrac is the compute occupancy of one preferred-size batch.
	ComputeFrac float64
	// PenaltyByJobs memoizes Penalty(k*FBR) for k = 0..MPSMaxClients
	// co-located batch jobs: the contention curve Eq. (1) evaluates when
	// probing an otherwise-idle device, precomputed so the probe walk never
	// calls math.Pow. Read-only — catalog entries share one slice.
	PenaltyByJobs []float64
}

// Lookup assembles the profiling entry for a pair. Catalog pairs resolve to
// a precomputed row (an array read); unknown or doctored specs are profiled
// on the fly exactly as before.
func Lookup(m model.Spec, hw hardware.Spec) Entry {
	if i, ok := pairIndex(m, hw); ok {
		return tableEntries[i]
	}
	return computeEntry(m, hw)
}

func computeEntry(m model.Spec, hw hardware.Spec) Entry {
	b := computePreferredBatch(m, hw)
	fbr := computeFBR(m, hw)
	pen := make([]float64, MPSMaxClients+1)
	for k := range pen {
		pen[k] = Penalty(float64(k) * fbr)
	}
	return Entry{
		Model:           m,
		Hardware:        hw,
		SoloSample:      computeSoloSample(m, hw),
		FBR:             fbr,
		PreferredBatch:  b,
		SoloBatch:       computeSolo(m, hw, b),
		ThroughputRPS:   computeThroughputRPS(m, hw),
		MaxResidentJobs: computeMaxResidentJobs(m, hw),
		ComputeFrac:     computeComputeFraction(m, hw, b),
		PenaltyByJobs:   pen,
	}
}

// The profiling campaign, run once at init: every catalog model profiled on
// every catalog node, plus batch-indexed Solo and ComputeFraction memos
// (batch sizes 1..MaxBatch). pairIndex verifies specs against the catalog
// snapshot by full struct equality, so the tables can never serve a stale
// row for a modified Spec.
var (
	tableModels  []model.Spec
	tableHW      []hardware.Spec
	modelIndex   map[string]int
	hwIndex      map[string]int
	tableEntries []Entry
	soloMemo     [][]time.Duration
	computeMemo  [][]float64
	fallbackGPU  hardware.Spec
)

func init() {
	ms, hws := model.Catalog(), hardware.Catalog()
	entries := make([]Entry, 0, len(ms)*len(hws))
	solos := make([][]time.Duration, 0, len(ms)*len(hws))
	comps := make([][]float64, 0, len(ms)*len(hws))
	for _, m := range ms {
		for _, hw := range hws {
			entries = append(entries, computeEntry(m, hw))
			s := make([]time.Duration, m.MaxBatch)
			c := make([]float64, m.MaxBatch)
			for b := 1; b <= m.MaxBatch; b++ {
				s[b-1] = computeSolo(m, hw, b)
				c[b-1] = computeComputeFraction(m, hw, b)
			}
			solos = append(solos, s)
			comps = append(comps, c)
		}
	}
	mi := make(map[string]int, len(ms))
	for i, m := range ms {
		mi[m.Name] = i
	}
	hi := make(map[string]int, len(hws))
	for i, hw := range hws {
		hi[hw.Name] = i
	}
	tableModels, tableHW, tableEntries = ms, hws, entries
	soloMemo, computeMemo = solos, comps
	modelIndex, hwIndex = mi, hi
	fallbackGPU = hardware.MostPerformant(hardware.GPU)
}

// pairIndex resolves a (model, hardware) pair to its precomputed row. Both
// specs must equal their catalog snapshots exactly — name collisions with
// different field values (tests doctor specs to probe behavior) fall through
// to the compute path.
func pairIndex(m model.Spec, hw hardware.Spec) (int, bool) {
	mi, ok := modelIndex[m.Name]
	if !ok || tableModels[mi] != m {
		return 0, false
	}
	hi, ok := hwIndex[hw.Name]
	if !ok || tableHW[hi] != hw {
		return 0, false
	}
	return mi*len(tableHW) + hi, true
}

// Table returns the full profiling campaign: every catalog model on every
// catalog node.
func Table() []Entry {
	var out []Entry
	for _, m := range model.Catalog() {
		for _, hw := range hardware.Catalog() {
			out = append(out, Lookup(m, hw))
		}
	}
	return out
}

// Headroom is the fraction of a node's sustainable throughput the capacity
// probes consider usable; running hotter leaves no slack for burst noise.
const Headroom = 0.85

// EffectiveBatch returns the batch size actually reachable at the given
// arrival rate when requests may only be held for maxWait before dispatch:
// min(PreferredBatch, rate*maxWait), at least 1. Under low rates batches run
// partially filled — the paper's flexible batch sizes.
func EffectiveBatch(m model.Spec, hw hardware.Spec, rateRPS float64, maxWait time.Duration) int {
	b := int(rateRPS * maxWait.Seconds())
	if pref := PreferredBatch(m, hw); b > pref {
		b = pref
	}
	if b < 1 {
		b = 1
	}
	return b
}

// CanSustain reports whether the node keeps up with the arrival rate when
// batches are dispatched at least every maxWait: the per-batch cost
// (including launch overhead, which dominates for small batches) must fit in
// the batch's arrival budget with headroom.
func CanSustain(m model.Spec, hw hardware.Spec, rateRPS float64, maxWait time.Duration) bool {
	if rateRPS <= 0 {
		return true
	}
	b := EffectiveBatch(m, hw, rateRPS, maxWait)
	util := rateRPS * Solo(m, hw, b).Seconds() / float64(b)
	return util <= Headroom
}

// capabilityMaxWait is the batching-delay budget used by the capability
// probes: a quarter of the SLO, leaving the rest for execution.
func capabilityMaxWait(slo time.Duration) time.Duration { return slo / 4 }

// CapablePool returns the hardware candidates able to serve the workload at
// the given sustained request rate within the SLO — the pool the Hardware
// Selection module explores (Algorithm 1's get_HW_pool). A node qualifies
// when (i) one batch executes within the SLO in isolation, leaving room for
// batching delay, and (ii) it sustains the rate (CanSustain) at the batch
// sizes reachable within the SLO's batching budget. The returned pool is
// sorted cheapest first; it is never empty — if nothing qualifies, the most
// performant GPU is returned as the fallback of last resort (matching the
// paper's escalation to the next more performant GPU when no feasible y
// exists).
func CapablePool(m model.Spec, rateRPS float64, slo time.Duration) []hardware.Spec {
	return AppendCapablePool(nil, m, rateRPS, slo)
}

// AppendCapablePool is CapablePool appending into dst, for callers that reuse
// a scratch slice across monitor ticks (the selection hot path). It walks the
// shared cost-sorted catalog snapshot — the catalog's prices are distinct, so
// appending in walk order yields exactly the sorted pool CapablePool has
// always returned, without copying or re-sorting per call.
func AppendCapablePool(dst []hardware.Spec, m model.Spec, rateRPS float64, slo time.Duration) []hardware.Spec {
	base := len(dst)
	for _, hw := range hardware.CostSorted() {
		if SoloAtPreferred(m, hw) > slo*3/4 {
			continue
		}
		if !CanSustain(m, hw, rateRPS, capabilityMaxWait(slo)) {
			continue
		}
		dst = append(dst, hw)
	}
	if len(dst) == base {
		dst = append(dst, fallbackGPU)
	}
	return dst
}

// SoloAtPreferred returns Solo at the preferred batch size (Entry.SoloBatch)
// without assembling a full Entry.
func SoloAtPreferred(m model.Spec, hw hardware.Spec) time.Duration {
	if i, ok := pairIndex(m, hw); ok {
		return tableEntries[i].SoloBatch
	}
	return computeSolo(m, hw, computePreferredBatch(m, hw))
}

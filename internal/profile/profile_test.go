package profile

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/hardware"
	"repro/internal/model"
)

func mustHW(t *testing.T, name string) hardware.Spec {
	t.Helper()
	hw, ok := hardware.ByName(name)
	if !ok {
		t.Fatalf("hardware %q missing", name)
	}
	return hw
}

func TestSoloLatencyBandOnGPUs(t *testing.T) {
	// Paper: batch sizes are selected so batch execution latency stays
	// between ~50 and 200 ms. Our PreferredBatch must keep every workload's
	// solo batch latency under 200 ms on every GPU, and heavyweight models
	// should land above 30 ms (not trivially fast).
	for _, m := range model.Catalog() {
		for _, hw := range hardware.GPUs() {
			e := Lookup(m, hw)
			if e.SoloBatch > 200*time.Millisecond {
				t.Errorf("%s on %s: solo batch latency %v exceeds 200ms (batch %d)",
					m.Name, hw.Accel, e.SoloBatch, e.PreferredBatch)
			}
		}
	}
	heavy := []string{"VGG 19", "DPN 92", "BERT", "Funnel-Transformer"}
	for _, name := range heavy {
		m := model.MustByName(name)
		v100 := mustHW(t, "V100")
		if got := Lookup(m, v100).SoloBatch; got < 30*time.Millisecond {
			t.Errorf("%s on V100 solo batch %v suspiciously fast", name, got)
		}
	}
}

func TestGPUOrderingPreserved(t *testing.T) {
	// For every model, V100 must be strictly faster per sample than K80,
	// and K80 faster than M60.
	v100, k80, m60 := mustHW(t, "V100"), mustHW(t, "K80"), mustHW(t, "M60")
	for _, m := range model.Catalog() {
		a, b, c := SoloSample(m, v100), SoloSample(m, k80), SoloSample(m, m60)
		if !(a < b && b < c) {
			t.Errorf("%s: per-sample latency V100=%v K80=%v M60=%v not ordered", m.Name, a, b, c)
		}
	}
}

func TestCPUSlowerThanGPU(t *testing.T) {
	// Every CPU node is slower than the V100 for every workload, and the
	// cheapest CPU node is slower than even the cheapest GPU. (A 16-vCPU
	// IceLake node can rival an M60 on tiny CPU-friendly nets, so we don't
	// require CPU < M60 universally.)
	v100, m60, m4 := mustHW(t, "V100"), mustHW(t, "M60"), mustHW(t, "m4.xlarge")
	for _, m := range model.Catalog() {
		for _, cpu := range hardware.CPUs() {
			if SoloSample(m, cpu) <= SoloSample(m, v100) {
				t.Errorf("%s: CPU %s per-sample latency not above V100's", m.Name, cpu.Name)
			}
		}
		if SoloSample(m, m4) <= SoloSample(m, m60) {
			t.Errorf("%s: m4.xlarge per-sample latency not above M60's", m.Name)
		}
	}
}

func TestFBRProperties(t *testing.T) {
	m60, v100 := mustHW(t, "M60"), mustHW(t, "V100")
	for _, m := range model.Catalog() {
		fM60, fV100 := FBR(m, m60), FBR(m, v100)
		if fM60 <= fV100 {
			t.Errorf("%s: FBR on M60 (%.2f) must exceed FBR on V100 (%.2f) — cheap GPUs saturate first",
				m.Name, fM60, fV100)
		}
		if fM60 <= 0 {
			t.Errorf("%s: FBR on M60 = %v, want > 0", m.Name, fM60)
		}
	}
	for _, cpu := range hardware.CPUs() {
		if FBR(model.MustByName("ResNet 50"), cpu) != 0 {
			t.Errorf("FBR on CPU node %s must be 0", cpu.Name)
		}
	}
}

func TestLanguageModelFBRsAboveOne(t *testing.T) {
	// The sensitivity study needs LLMs whose single job already saturates
	// the cost-effective GPUs.
	m60 := mustHW(t, "M60")
	for _, m := range model.LanguageModels() {
		if f := FBR(m, m60); f <= 1 {
			t.Errorf("%s FBR on M60 = %.2f, want > 1", m.Name, f)
		}
	}
	// ...while vision models stay below 1 (co-location is possible).
	for _, m := range model.VisionModels() {
		if f := FBR(m, m60); f >= 1 {
			t.Errorf("%s FBR on M60 = %.2f, want < 1", m.Name, f)
		}
	}
}

func TestHighFBRClassification(t *testing.T) {
	// The catalog's static high-FBR class must agree with the derived FBRs
	// on the M60: every high-FBR vision model above every low-FBR one.
	m60 := mustHW(t, "M60")
	minHigh, maxLow := math.Inf(1), 0.0
	for _, m := range model.VisionModels() {
		f := FBR(m, m60)
		if m.IsHighFBR() && f < minHigh {
			minHigh = f
		}
		if !m.IsHighFBR() && f > maxLow {
			maxLow = f
		}
	}
	if minHigh <= maxLow {
		t.Fatalf("high-FBR class overlaps low: min(high)=%.3f <= max(low)=%.3f", minHigh, maxLow)
	}
}

func TestPenalty(t *testing.T) {
	cases := []struct{ d, want float64 }{
		{0, 1}, {0.5, 1}, {1, 1},
		{2, math.Pow(2, ContentionAlpha)},
		{4, math.Pow(4, ContentionAlpha)},
	}
	for _, c := range cases {
		if got := Penalty(c.d); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Penalty(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestSlowdown(t *testing.T) {
	// A job alone never slows down, regardless of its own FBR.
	for _, own := range []float64{0.1, 0.9, 1.5, 2.5} {
		if got := Slowdown(own, own); got != 1 {
			t.Errorf("Slowdown(own=own=%v) = %v, want 1", own, got)
		}
	}
	// Two saturating jobs slow each other down superlinearly vs their count.
	s := Slowdown(3.0, 1.5)
	if s <= 1 {
		t.Fatalf("Slowdown(3, 1.5) = %v, want > 1", s)
	}
	want := math.Pow(3, ContentionAlpha) / math.Pow(1.5, ContentionAlpha)
	if math.Abs(s-want) > 1e-12 {
		t.Fatalf("Slowdown(3, 1.5) = %v, want %v", s, want)
	}
}

// Property: Slowdown is >= 1 and monotone nondecreasing in total demand.
func TestSlowdownMonotoneProperty(t *testing.T) {
	f := func(ownRaw, extra1Raw, extra2Raw uint16) bool {
		own := float64(ownRaw)/1000 + 0.01
		e1 := float64(extra1Raw) / 1000
		e2 := e1 + float64(extra2Raw)/1000
		s1 := Slowdown(own+e1, own)
		s2 := Slowdown(own+e2, own)
		return s1 >= 1 && s2 >= s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPreferredBatchBounds(t *testing.T) {
	for _, m := range model.Catalog() {
		for _, hw := range hardware.Catalog() {
			b := PreferredBatch(m, hw)
			if b < 1 || b > m.MaxBatch {
				t.Errorf("%s on %s: batch %d outside [1,%d]", m.Name, hw.Name, b, m.MaxBatch)
			}
			// Power of two.
			if b&(b-1) != 0 {
				t.Errorf("%s on %s: batch %d not a power of two", m.Name, hw.Name, b)
			}
		}
	}
}

func TestPreferredBatchGrowsWithHardware(t *testing.T) {
	m := model.MustByName("VGG 19")
	bM60 := PreferredBatch(m, mustHW(t, "M60"))
	bV100 := PreferredBatch(m, mustHW(t, "V100"))
	if bV100 < bM60 {
		t.Fatalf("VGG 19 batch on V100 (%d) smaller than on M60 (%d)", bV100, bM60)
	}
}

func TestCPUvsGPUCostClaim(t *testing.T) {
	// Paper §II: serving ResNet 50 at ~750 rps needs at least seven
	// m4.xlarge instances, costing 86% more than one g3s.xlarge.
	m := model.MustByName("ResNet 50")
	m4 := mustHW(t, "m4.xlarge")
	g3s := mustHW(t, "g3s.xlarge")
	perNode := ThroughputRPS(m, m4)
	n := int(math.Ceil(750 / perNode))
	if n < 6 || n > 8 {
		t.Fatalf("need %d m4.xlarge for 750 rps (per-node %.0f rps), want ~7", n, perNode)
	}
	cpuCost := float64(n) * m4.CostPerHour
	extra := (cpuCost - g3s.CostPerHour) / g3s.CostPerHour
	if extra < 0.5 || extra > 1.3 {
		t.Fatalf("CPU fleet costs %.0f%% more than one GPU node, want ~86%%", extra*100)
	}
	if ThroughputRPS(m, g3s) < 200 {
		t.Fatalf("g3s.xlarge ResNet 50 throughput %.0f rps too low to be the paper's GPU alternative",
			ThroughputRPS(m, g3s))
	}
}

func TestCPUServesLowRatesOnly(t *testing.T) {
	// Paper: CPU nodes handle lower request rates (up to ~25 rps for
	// workloads with high FBRs). High-FBR models on the cheapest capable CPU
	// should top out well below GPU throughput.
	for _, name := range []string{"DPN 92", "VGG 19"} {
		m := model.MustByName(name)
		m4 := mustHW(t, "m4.xlarge")
		if tp := ThroughputRPS(m, m4); tp > 60 {
			t.Errorf("%s on m4.xlarge sustains %.0f rps; want modest (<60)", name, tp)
		}
	}
}

func TestCapablePool(t *testing.T) {
	m := model.MustByName("ResNet 50")
	slo := 200 * time.Millisecond

	low := CapablePool(m, 10, slo)
	if len(low) == 0 {
		t.Fatal("empty pool at 10 rps")
	}
	if low[0].Kind != hardware.CPU {
		t.Errorf("cheapest capable node at 10 rps is %v, want a CPU node", low[0])
	}

	high := CapablePool(m, 400, slo)
	for _, hw := range high {
		if hw.Kind == hardware.CPU {
			t.Errorf("CPU node %s in pool at 400 rps", hw.Name)
		}
	}
	if len(high) == 0 {
		t.Fatal("empty pool at 400 rps")
	}

	// Sorted cheapest first.
	for _, pool := range [][]hardware.Spec{low, high} {
		for i := 1; i < len(pool); i++ {
			if pool[i].CostPerHour < pool[i-1].CostPerHour {
				t.Fatalf("pool not sorted by cost: %v", pool)
			}
		}
	}
}

func TestCapablePoolNeverEmpty(t *testing.T) {
	// Even at absurd rates the pool falls back to the most performant GPU.
	m := model.MustByName("VGG 19")
	pool := CapablePool(m, 1e6, 200*time.Millisecond)
	if len(pool) != 1 || pool[0].Accel != "V100" {
		t.Fatalf("fallback pool = %v, want just the V100 node", pool)
	}
}

func TestVGG19NeedsV100AtPeak(t *testing.T) {
	// The Fig. 4b story: VGG 19's 225 rps peak is beyond the M60 and K80;
	// only the V100 sustains it.
	m := model.MustByName("VGG 19")
	if tp := ThroughputRPS(m, mustHW(t, "M60")); tp > 180 {
		t.Errorf("M60 sustains %.0f rps of VGG 19; want < 180 so the peak overwhelms it", tp)
	}
	if tp := ThroughputRPS(m, mustHW(t, "V100")); tp < 225 {
		t.Errorf("V100 sustains only %.0f rps of VGG 19; want >= 225", tp)
	}
}

func TestTableComplete(t *testing.T) {
	tab := Table()
	want := len(model.Catalog()) * len(hardware.Catalog())
	if len(tab) != want {
		t.Fatalf("table has %d entries, want %d", len(tab), want)
	}
	for _, e := range tab {
		if e.SoloSample <= 0 || e.ThroughputRPS <= 0 || e.MaxResidentJobs < 1 {
			t.Errorf("invalid entry %s/%s: %+v", e.Model.Name, e.Hardware.Name, e)
		}
	}
}

func TestMaxResidentJobs(t *testing.T) {
	bert := model.MustByName("BERT")
	m60 := mustHW(t, "M60")
	v100 := mustHW(t, "V100")
	if MaxResidentJobs(bert, m60) >= MaxResidentJobs(bert, v100) {
		t.Error("more BERT jobs should fit on the V100 (16GB) than the M60 (8GB)")
	}
	if MaxResidentJobs(bert, m60) < 1 {
		t.Error("MaxResidentJobs must be at least 1")
	}
}

func TestEffectiveBatch(t *testing.T) {
	m := model.MustByName("ResNet 50")
	m60 := mustHW(t, "M60")
	// At 450 rps with a 50ms budget only ~22 requests accumulate.
	if got := EffectiveBatch(m, m60, 450, 50*time.Millisecond); got != 22 {
		t.Fatalf("EffectiveBatch(450rps, 50ms) = %d, want 22", got)
	}
	// At very high rates the preferred batch caps it.
	if got := EffectiveBatch(m, m60, 1e6, 50*time.Millisecond); got != PreferredBatch(m, m60) {
		t.Fatalf("EffectiveBatch not capped at preferred: %d", got)
	}
	if got := EffectiveBatch(m, m60, 0.1, 50*time.Millisecond); got != 1 {
		t.Fatalf("EffectiveBatch floor = %d, want 1", got)
	}
}

func TestCanSustainOrdering(t *testing.T) {
	m := model.MustByName("ResNet 50")
	m60, v100 := mustHW(t, "M60"), mustHW(t, "V100")
	w := 50 * time.Millisecond
	if !CanSustain(m, m60, 450, w) {
		t.Error("M60 should sustain ResNet 50 at its 450 rps class peak (the paper's " +
			"cost-effective GPUs ride out surges)")
	}
	if CanSustain(m, m60, 900, w) {
		t.Error("M60 should NOT sustain ResNet 50 at 900 rps")
	}
	if !CanSustain(m, v100, 900, w) {
		t.Error("V100 should sustain ResNet 50 at 900 rps")
	}
	if CanSustain(model.MustByName("VGG 19"), m60, 225, w) {
		t.Error("M60 should NOT sustain VGG 19 at its 225 rps peak (Fig. 4b: only the V100 does)")
	}
	if !CanSustain(m, v100, 0, w) {
		t.Error("zero rate is always sustainable")
	}
}

func TestCapablePoolEscalatesWithRate(t *testing.T) {
	// As the predicted rate climbs, the cheapest capable node escalates from
	// CPU through cheap GPUs to the V100 — the backbone of cost-effective
	// hardware selection.
	m := model.MustByName("ResNet 50")
	slo := 200 * time.Millisecond
	cheapestAt := func(rate float64) string {
		return CapablePool(m, rate, slo)[0].Accel
	}
	low := cheapestAt(15)
	mid := cheapestAt(200)
	high := cheapestAt(440)
	if low == mid && mid == high {
		t.Fatalf("pool never escalates: %s/%s/%s", low, mid, high)
	}
	lowHW, _ := hardware.ByName(low)
	if lowHW.IsGPU() {
		t.Errorf("cheapest at 15 rps is %s, want a CPU node", low)
	}
	highHW, _ := hardware.ByName(high)
	if !highHW.IsGPU() {
		t.Errorf("cheapest at 440 rps is %s, want a GPU node", high)
	}
}

func TestMPSClientCap(t *testing.T) {
	// Tiny models would fit hundreds of containers in device memory; the
	// MPS client limit must clamp them.
	shuffle := model.MustByName("ShuffleNet V2")
	v100 := mustHW(t, "V100")
	if got := MaxResidentJobs(shuffle, v100); got != MPSMaxClients {
		t.Fatalf("MaxResidentJobs = %d, want MPS cap %d", got, MPSMaxClients)
	}
	// CPU nodes are not MPS-limited.
	m4 := mustHW(t, "m4.xlarge")
	if got := MaxResidentJobs(shuffle, m4); got <= MPSMaxClients {
		t.Fatalf("CPU node clamped to MPS limit: %d", got)
	}
}

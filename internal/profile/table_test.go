package profile

// The precomputed (model x hardware) tables must be invisible: every
// table-backed accessor has to return exactly what the on-the-fly profiling
// formulas return, for catalog pairs (table hit) and doctored specs (compute
// fallback) alike.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/raceflag"
)

// testSLO is the vision-model SLO the capability probes are exercised at.
const testSLO = 200 * time.Millisecond

func skipIfRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc gates run in non-race builds")
	}
}

// TestTableMatchesCompute sweeps every catalog pair, asserting each
// table-backed accessor agrees exactly with the pure profiling formulas.
func TestTableMatchesCompute(t *testing.T) {
	for _, m := range model.Catalog() {
		for _, hw := range hardware.Catalog() {
			want := computeEntry(m, hw)
			if got := Lookup(m, hw); !reflect.DeepEqual(got, want) {
				t.Errorf("Lookup(%s, %s) = %+v, want computed %+v", m.Name, hw.Name, got, want)
			}
			if got := SoloSample(m, hw); got != want.SoloSample {
				t.Errorf("SoloSample(%s, %s) = %v, want %v", m.Name, hw.Name, got, want.SoloSample)
			}
			if got := FBR(m, hw); got != want.FBR {
				t.Errorf("FBR(%s, %s) = %v, want %v", m.Name, hw.Name, got, want.FBR)
			}
			if got := PreferredBatch(m, hw); got != want.PreferredBatch {
				t.Errorf("PreferredBatch(%s, %s) = %d, want %d", m.Name, hw.Name, got, want.PreferredBatch)
			}
			if got := ThroughputRPS(m, hw); got != want.ThroughputRPS {
				t.Errorf("ThroughputRPS(%s, %s) = %v, want %v", m.Name, hw.Name, got, want.ThroughputRPS)
			}
			if got := MaxResidentJobs(m, hw); got != want.MaxResidentJobs {
				t.Errorf("MaxResidentJobs(%s, %s) = %d, want %d", m.Name, hw.Name, got, want.MaxResidentJobs)
			}
			if got := SoloAtPreferred(m, hw); got != want.SoloBatch {
				t.Errorf("SoloAtPreferred(%s, %s) = %v, want %v", m.Name, hw.Name, got, want.SoloBatch)
			}
			// Solo and ComputeFraction memos: in-range, boundary, and
			// beyond-MaxBatch (compute fallback) batch sizes.
			for _, b := range []int{0, 1, 2, 3, m.MaxBatch - 1, m.MaxBatch, m.MaxBatch + 1, 4 * m.MaxBatch} {
				if got, want := Solo(m, hw, b), computeSolo(m, hw, b); got != want {
					t.Errorf("Solo(%s, %s, %d) = %v, want %v", m.Name, hw.Name, b, got, want)
				}
				if got, want := ComputeFraction(m, hw, b), computeComputeFraction(m, hw, b); got != want {
					t.Errorf("ComputeFraction(%s, %s, %d) = %v, want %v", m.Name, hw.Name, b, got, want)
				}
			}
		}
	}
}

// TestDoctoredSpecBypassesTable pins the safety property of pairIndex: a spec
// that shares a catalog name but differs in any field must be profiled on the
// fly, never served a stale table row.
func TestDoctoredSpecBypassesTable(t *testing.T) {
	m := model.MustByName("ResNet 50")
	hw, _ := hardware.ByName("M60")
	fast := hw
	fast.ComputeScore *= 2
	if Lookup(m, fast).SoloSample >= Lookup(m, hw).SoloSample {
		t.Fatal("doubling ComputeScore did not change the profiled entry; table served a stale row")
	}
	mm := m
	mm.GFLOPsPerSample *= 2
	if Lookup(mm, hw).SoloSample <= Lookup(m, hw).SoloSample {
		t.Fatal("doubling GFLOPsPerSample did not change the profiled entry; table served a stale row")
	}
}

// TestPenaltyByJobsMemo checks the precomputed contention curve is exactly
// Penalty(k*FBR) for every k the Eq. (1) walk may index.
func TestPenaltyByJobsMemo(t *testing.T) {
	for _, m := range model.Catalog() {
		for _, hw := range hardware.Catalog() {
			e := Lookup(m, hw)
			if len(e.PenaltyByJobs) != MPSMaxClients+1 {
				t.Fatalf("PenaltyByJobs(%s, %s) has %d entries, want %d", m.Name, hw.Name, len(e.PenaltyByJobs), MPSMaxClients+1)
			}
			for k, got := range e.PenaltyByJobs {
				if want := Penalty(float64(k) * e.FBR); got != want {
					t.Errorf("PenaltyByJobs[%d](%s, %s) = %v, want Penalty(%d*FBR) = %v", k, m.Name, hw.Name, got, k, want)
				}
			}
		}
	}
}

// TestAppendCapablePool checks the scratch-reusing variant returns exactly
// CapablePool's pool and appends after existing elements without allocating
// once capacity exists.
func TestAppendCapablePool(t *testing.T) {
	m := model.MustByName("ResNet 50")
	for _, rate := range []float64{0, 10, 120, 400, 5000} {
		want := CapablePool(m, rate, testSLO)
		scratch := make([]hardware.Spec, 0, 8)
		got := AppendCapablePool(scratch, m, rate, testSLO)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("AppendCapablePool at %.0f rps = %v, want %v", rate, got, want)
		}
		// Appending after a sentinel leaves it untouched.
		sentinel := hardware.MostPerformant(hardware.CPU)
		withPrefix := AppendCapablePool([]hardware.Spec{sentinel}, m, rate, testSLO)
		if len(withPrefix) != len(want)+1 || withPrefix[0] != sentinel || !reflect.DeepEqual(withPrefix[1:], want) {
			t.Errorf("AppendCapablePool with prefix at %.0f rps = %v, want sentinel + %v", rate, withPrefix, want)
		}
	}
}

// TestCatalogCostOrderDistinct pins the invariant AppendCapablePool's
// no-sort walk relies on: catalog prices are pairwise distinct, so the
// cost-sorted snapshot is a strict total order and filtering it yields the
// same sequence as sorting a filtered copy.
func TestCatalogCostOrderDistinct(t *testing.T) {
	seen := map[float64]string{}
	for _, hw := range hardware.Catalog() {
		if prev, dup := seen[hw.CostPerHour]; dup {
			t.Fatalf("catalog prices collide: %s and %s both cost %.2f/h", prev, hw.Name, hw.CostPerHour)
		}
		seen[hw.CostPerHour] = hw.Name
	}
	cs := hardware.CostSorted()
	for i := 1; i < len(cs); i++ {
		if cs[i-1].CostPerHour >= cs[i].CostPerHour {
			t.Fatalf("CostSorted not strictly ascending at %d: %v then %v", i, cs[i-1], cs[i])
		}
	}
}

func TestTableReadsAllocFree(t *testing.T) {
	skipIfRace(t)
	m := model.MustByName("ResNet 50")
	hw, _ := hardware.ByName("M60")
	var e Entry
	if allocs := testing.AllocsPerRun(100, func() { e = Lookup(m, hw) }); allocs != 0 {
		t.Errorf("Lookup allocates %.1f objects/op, want 0", allocs)
	}
	_ = e
	if allocs := testing.AllocsPerRun(100, func() { Solo(m, hw, 48) }); allocs != 0 {
		t.Errorf("Solo allocates %.1f objects/op, want 0", allocs)
	}
	dst := make([]hardware.Spec, 0, 8)
	if allocs := testing.AllocsPerRun(100, func() {
		dst = AppendCapablePool(dst[:0], m, 120, testSLO)
	}); allocs != 0 {
		t.Errorf("AppendCapablePool allocates %.1f objects/op with warm scratch, want 0", allocs)
	}
}

package invariant

import (
	"math"
	"testing"
	"time"

	"repro/internal/hardware"
	"repro/internal/telemetry"
)

// The tests in this file are mutation tests for the checker itself: each law
// family gets (a) a legal scripted sequence that must pass clean and (b) a
// deliberately broken variant that must trip exactly that law. A checker
// that never fires proves nothing.

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// ev builds a request-lifecycle event.
func ev(at time.Duration, kind telemetry.Kind, req int64) telemetry.Event {
	e := telemetry.Ev(at, kind)
	e.Req = req
	return e
}

// jev builds a device job event.
func jev(at time.Duration, kind telemetry.Kind, job int64) telemetry.Event {
	e := telemetry.Ev(at, kind)
	e.Job = job
	return e
}

// nev builds a node lifecycle event.
func nev(at time.Duration, kind telemetry.Kind, node int, spec string) telemetry.Event {
	e := telemetry.Ev(at, kind)
	e.Node = node
	e.Spec = spec
	return e
}

// assertClean fails unless no law fired.
func assertClean(t *testing.T, c *Checker) {
	t.Helper()
	if err := c.Err(); err != nil {
		t.Fatalf("legal sequence tripped the checker:\n%v", err)
	}
}

// assertLaw fails unless at least one violation of the given family (and no
// violation of any other family) was recorded.
func assertLaw(t *testing.T, c *Checker, law string) {
	t.Helper()
	if c.Total() == 0 {
		t.Fatalf("broken %s law not detected", law)
	}
	for _, v := range c.Violations() {
		if v.Law != law {
			t.Fatalf("expected only %s violations, got %v", law, v)
		}
	}
}

// playRequest walks one request through the full legal lifecycle on job 1.
func playRequest(c *Checker) {
	c.Event(ev(ms(0), telemetry.Arrived, 1))
	c.Event(ev(ms(0), telemetry.Batched, 1))
	d := ev(ms(10), telemetry.Dispatched, 1)
	d.Job = 1
	c.Event(d)
	c.Event(jev(ms(12), telemetry.Queued, 1))
	c.Event(jev(ms(15), telemetry.ExecStart, 1))
	c.Event(jev(ms(40), telemetry.ExecEnd, 1))
	done := ev(ms(40), telemetry.Completed, 1)
	done.Job = 1
	c.Event(done)
}

// --- request-conservation -------------------------------------------------------

func TestConservationCleanLifecycle(t *testing.T) {
	c := New()
	playRequest(c)
	c.CheckResult(ms(50), 1, 0, 0)
	assertClean(t, c)
}

func TestConservationDetectsDoubleArrival(t *testing.T) {
	c := New()
	c.Event(ev(ms(0), telemetry.Arrived, 7))
	c.Event(ev(ms(1), telemetry.Arrived, 7))
	assertLaw(t, c, LawConservation)
}

func TestConservationDetectsDoubleTermination(t *testing.T) {
	c := New()
	playRequest(c)
	// The request is already terminal; a second Failed is a conjured loss.
	c.Event(ev(ms(45), telemetry.Failed, 1))
	assertLaw(t, c, LawConservation)
}

func TestConservationDetectsDispatchBeforeArrival(t *testing.T) {
	c := New()
	c.Event(ev(ms(5), telemetry.Dispatched, 3))
	assertLaw(t, c, LawConservation)
}

func TestConservationDistinguishesTenants(t *testing.T) {
	// The same request ID under two tenants is two requests, not a double
	// arrival: per-tenant ID spaces are independent.
	c := New()
	a := ev(ms(0), telemetry.Arrived, 1)
	a.Tenant = 0
	c.Event(a)
	b := ev(ms(1), telemetry.Arrived, 1)
	b.Tenant = 1
	c.Event(b)
	assertClean(t, c)
}

func TestCheckResultDetectsLostRequest(t *testing.T) {
	// A request that arrives but never terminates — the skipped-bookkeeping
	// mutation (e.g. a dropped failedRq++) the checker exists to catch.
	c := New()
	c.Event(ev(ms(0), telemetry.Arrived, 1))
	c.Event(ev(ms(0), telemetry.Batched, 1))
	c.CheckResult(ms(50), 1, 0, 0)
	assertLaw(t, c, LawConservation)
}

func TestCheckResultDetectsMiscountedFailures(t *testing.T) {
	c := New()
	c.Event(ev(ms(0), telemetry.Arrived, 1))
	c.Event(ev(ms(20), telemetry.Failed, 1))
	// Result claims zero failed requests; the stream says one.
	c.CheckResult(ms(50), 1, 0, 0)
	assertLaw(t, c, LawConservation)
}

// --- time-monotonic -------------------------------------------------------------

func TestTimeCleanMonotoneTicks(t *testing.T) {
	c := New()
	c.Tick(ms(1))
	c.Tick(ms(1))
	c.Tick(ms(5))
	assertClean(t, c)
}

func TestTimeDetectsClockReversal(t *testing.T) {
	c := New()
	c.Tick(ms(10))
	c.Tick(ms(9))
	assertLaw(t, c, LawTime)
}

func TestTimeDetectsEventBehindClock(t *testing.T) {
	c := New()
	c.Tick(ms(100))
	c.Event(ev(ms(50), telemetry.Arrived, 1))
	assertLaw(t, c, LawTime)
}

// --- device-capacity ------------------------------------------------------------

func TestCapacityCleanStart(t *testing.T) {
	c := New()
	c.DeviceStart(ms(1), 0, 3, 8, false, 0.25)
	c.DeviceStart(ms(1), 0, 4, 8, false, 0)   // FBR 0: legal on CPU nodes
	c.DeviceStart(ms(1), 0, 5, 8, false, 1.5) // >1: legal oversubscription
	c.DeviceAdvance(ms(2), 0, 5, false)
	c.DeviceFinish(ms(3), 0, 0, false)
	c.DeviceFinish(ms(3), 0, 1e-9, false) // truncation residue within tolerance
	assertClean(t, c)
}

func TestCapacityDetectsStartOnFailedDevice(t *testing.T) {
	c := New()
	c.DeviceStart(ms(1), 0, 1, 8, true, 0.25)
	assertLaw(t, c, LawCapacity)
}

func TestCapacityDetectsPoolOverflow(t *testing.T) {
	c := New()
	c.DeviceStart(ms(1), 0, 9, 8, false, 0.25)
	assertLaw(t, c, LawCapacity)
}

func TestCapacityDetectsBadFBR(t *testing.T) {
	for _, fbr := range []float64{-0.1, math.NaN(), math.Inf(1)} {
		c := New()
		c.DeviceStart(ms(1), 0, 1, 8, false, fbr)
		assertLaw(t, c, LawCapacity)
	}
}

func TestCapacityDetectsProgressWhileFailed(t *testing.T) {
	c := New()
	c.DeviceAdvance(ms(1), 0, 2, true)
	assertLaw(t, c, LawCapacity)
}

func TestCapacityDetectsUnfinishedWork(t *testing.T) {
	c := New()
	c.DeviceFinish(ms(1), 0, 0.5, false)
	assertLaw(t, c, LawCapacity)
}

// --- container-lifecycle --------------------------------------------------------

func TestLifecycleCleanPoolStory(t *testing.T) {
	c := New()
	// Warm-add two, boot one in the background, serve, release, reap.
	c.Pool(ms(0), 0, 0, PoolCounts{Idle: 2, WarmAdded: 2})
	c.Pool(ms(1), 0, 0, PoolCounts{Idle: 2, Starting: 1, WarmAdded: 2, Boots: 1})
	c.Pool(ms(2), 0, 0, PoolCounts{Idle: 1, Busy: 1, Starting: 1, WarmAdded: 2, Boots: 1})
	c.Pool(ms(3), 0, 0, PoolCounts{Idle: 2, Busy: 1, WarmAdded: 2, Boots: 1})
	c.Pool(ms(4), 0, 0, PoolCounts{Idle: 3, WarmAdded: 2, Boots: 1})
	c.Pool(ms(5), 0, 0, PoolCounts{Idle: 1, WarmAdded: 2, Boots: 1, Terminated: 2})
	assertClean(t, c)
}

func TestLifecycleDetectsConjuredContainer(t *testing.T) {
	// One idle container with no boot, warm-add or anything to explain it.
	c := New()
	c.Pool(ms(1), 0, 0, PoolCounts{Idle: 1})
	assertLaw(t, c, LawLifecycle)
}

func TestLifecycleDetectsCounterReversal(t *testing.T) {
	c := New()
	c.Pool(ms(1), 0, 0, PoolCounts{Idle: 2, Boots: 2})
	c.Pool(ms(2), 0, 0, PoolCounts{Idle: 1, Boots: 1, Terminated: 0})
	assertLaw(t, c, LawLifecycle)
}

func TestLifecycleDetectsSyncColdsBeyondBoots(t *testing.T) {
	c := New()
	c.Pool(ms(1), 0, 0, PoolCounts{Busy: 1, Boots: 1, SyncColds: 2})
	assertLaw(t, c, LawLifecycle)
}

func TestLifecycleDetectsOrphanWaiters(t *testing.T) {
	// Two claims waiting on a pool with a single busy container and nothing
	// starting: the second can never be absorbed.
	c := New()
	c.Pool(ms(1), 0, 0, PoolCounts{Busy: 1, Waiting: 2, Boots: 1})
	assertLaw(t, c, LawLifecycle)
}

func TestLifecycleDetectsEmptyContainerEvent(t *testing.T) {
	c := New()
	e := telemetry.Ev(ms(1), telemetry.ContainerPrewarm)
	e.N = 0
	c.Event(e)
	assertLaw(t, c, LawLifecycle)
}

// --- node-lifecycle -------------------------------------------------------------

func TestNodeCleanLifecycle(t *testing.T) {
	spec := hardware.MostPerformant(hardware.GPU).Name
	c := New()
	c.Event(nev(ms(0), telemetry.NodeRequested, 0, spec))
	c.Event(nev(ms(100), telemetry.NodeAcquired, 0, spec))
	c.Event(nev(ms(200), telemetry.NodeFailed, 0, spec))
	c.Event(nev(ms(300), telemetry.NodeRecovered, 0, spec))
	c.Event(nev(ms(400), telemetry.NodeReleased, 0, spec))
	assertClean(t, c)
}

func TestNodeDetectsDoubleFailure(t *testing.T) {
	spec := hardware.MostPerformant(hardware.GPU).Name
	c := New()
	c.Event(nev(ms(0), telemetry.NodeAcquired, 0, spec))
	c.Event(nev(ms(1), telemetry.NodeFailed, 0, spec))
	c.Event(nev(ms(2), telemetry.NodeFailed, 0, spec))
	assertLaw(t, c, LawNode)
}

func TestNodeDetectsRecoveryWithoutFailure(t *testing.T) {
	spec := hardware.MostPerformant(hardware.GPU).Name
	c := New()
	c.Event(nev(ms(0), telemetry.NodeAcquired, 0, spec))
	c.Event(nev(ms(1), telemetry.NodeRecovered, 0, spec))
	assertLaw(t, c, LawNode)
}

func TestNodeDetectsReleaseWithoutAcquire(t *testing.T) {
	c := New()
	c.Event(nev(ms(1), telemetry.NodeReleased, 0, "whatever"))
	assertLaw(t, c, LawNode)
}

func TestNodeDetectsDoubleRelease(t *testing.T) {
	spec := hardware.MostPerformant(hardware.GPU).Name
	c := New()
	c.Event(nev(ms(0), telemetry.NodeAcquired, 0, spec))
	c.Event(nev(ms(1), telemetry.NodeReleased, 0, spec))
	c.Event(nev(ms(2), telemetry.NodeReleased, 0, spec))
	assertLaw(t, c, LawNode)
}

func TestCheckResultDetectsUninjectedFailures(t *testing.T) {
	spec := hardware.MostPerformant(hardware.GPU).Name
	c := New()
	c.Event(nev(ms(0), telemetry.NodeAcquired, 0, spec))
	c.Event(nev(ms(1), telemetry.NodeFailed, 0, spec))
	// Result claims no failure was injected, yet a NodeFailed was observed.
	c.CheckResult(ms(50), 0, 0, 0)
	assertLaw(t, c, LawNode)
}

// --- billing --------------------------------------------------------------------

func TestBillingCleanReconciliation(t *testing.T) {
	spec := hardware.MostPerformant(hardware.GPU)
	c := New()
	c.Event(nev(0, telemetry.NodeAcquired, 0, spec.Name))
	hold := 10 * time.Second
	c.Billing(hold, spec.CostPerSecond()*hold.Seconds())
	c.Event(nev(hold, telemetry.NodeReleased, 0, spec.Name))
	// After release the cost freezes at the released amount.
	c.Billing(2*hold, spec.CostPerSecond()*hold.Seconds())
	assertClean(t, c)
}

func TestBillingDetectsDoubleBilledNode(t *testing.T) {
	spec := hardware.MostPerformant(hardware.GPU)
	c := New()
	c.Event(nev(0, telemetry.NodeAcquired, 0, spec.Name))
	hold := 10 * time.Second
	// The books report twice what the lifecycle events imply.
	c.Billing(hold, 2*spec.CostPerSecond()*hold.Seconds())
	assertLaw(t, c, LawBilling)
}

func TestBillingDetectsCostDecrease(t *testing.T) {
	spec := hardware.MostPerformant(hardware.GPU)
	c := New()
	c.Event(nev(0, telemetry.NodeAcquired, 0, spec.Name))
	c.Billing(10*time.Second, spec.CostPerSecond()*10)
	c.Billing(11*time.Second, spec.CostPerSecond()*5)
	assertLaw(t, c, LawBilling)
}

func TestBillingSkipsUnknownSpecs(t *testing.T) {
	// Doctored test specs not in the catalog must disable reconciliation,
	// not fabricate violations.
	c := New()
	c.Event(nev(0, telemetry.NodeAcquired, 0, "not-a-real-instance-type"))
	c.Billing(10*time.Second, 123.456)
	assertClean(t, c)
}

// --- span-telescope -------------------------------------------------------------

func TestTelescopeCleanSpans(t *testing.T) {
	c := New()
	playRequest(c)
	assertClean(t, c)
}

func TestTelescopeDetectsBrokenSum(t *testing.T) {
	c := New()
	c.Event(ev(ms(0), telemetry.Arrived, 1))
	c.Event(ev(ms(0), telemetry.Batched, 1))
	d := ev(ms(10), telemetry.Dispatched, 1)
	d.Job = 1
	c.Event(d)
	c.Event(jev(ms(12), telemetry.Queued, 1))
	c.Event(jev(ms(15), telemetry.ExecStart, 1))
	c.Event(jev(ms(40), telemetry.ExecEnd, 1))
	// Completion stamped after the job ended: latency exceeds the components.
	done := ev(ms(45), telemetry.Completed, 1)
	done.Job = 1
	c.Event(done)
	assertLaw(t, c, LawTelescope)
}

func TestTelescopeDetectsMissingJobRecord(t *testing.T) {
	c := New()
	c.Event(ev(ms(0), telemetry.Arrived, 1))
	c.Event(ev(ms(0), telemetry.Batched, 1))
	d := ev(ms(10), telemetry.Dispatched, 1)
	d.Job = 1
	c.Event(d)
	// Job 1 never queued/executed, yet the request completes.
	done := ev(ms(20), telemetry.Completed, 1)
	done.Job = 1
	c.Event(done)
	assertLaw(t, c, LawTelescope)
}

// --- bookkeeping of the checker itself ------------------------------------------

func TestViolationRecordingIsBounded(t *testing.T) {
	c := New()
	for i := 0; i < recordLimit+50; i++ {
		c.Tick(ms(10))
		c.Tick(ms(9)) // reversal every iteration
	}
	if len(c.Violations()) != recordLimit {
		t.Fatalf("recorded %d violations, want cap %d", len(c.Violations()), recordLimit)
	}
	if c.Total() != recordLimit+50 {
		t.Fatalf("total %d, want %d", c.Total(), recordLimit+50)
	}
	if c.Clean() {
		t.Fatal("Clean() true with violations")
	}
}

func TestNilCheckerAsSink(t *testing.T) {
	var c *Checker
	if c.AsSink() != nil {
		t.Fatal("nil checker must convert to a nil Sink interface")
	}
	if New().AsSink() == nil {
		t.Fatal("live checker must convert to a non-nil Sink")
	}
}

func TestErrSummarizesFirstFew(t *testing.T) {
	c := New()
	if c.Err() != nil {
		t.Fatal("clean checker must have nil Err")
	}
	for i := 0; i < 10; i++ {
		c.Tick(ms(10))
		c.Tick(ms(9))
	}
	err := c.Err()
	if err == nil {
		t.Fatal("dirty checker must report an error")
	}
	if len(err.Error()) == 0 {
		t.Fatal("empty error text")
	}
}

// Package invariant is the simulation stack's runtime law checker: a
// pluggable observer threaded through sim, core, device, container and
// cluster that re-derives, from the event stream plus a few direct layer
// hooks, the conservation laws a correct discrete-event serving simulator
// must obey — and records every breach instead of silently producing a
// plausible-looking Result.
//
// The laws, by family:
//
//   - request-conservation: every request walks the legal lifecycle
//     (arrived → batched → dispatched → completed|failed, with failure legal
//     from any stage), no request terminates twice or out of thin air, and
//     at the end of a run arrived == completed + failed == Result.Requests
//     with Result.FailedRequests equal to the failed-event count. Redundant
//     copies (clone-to-k, hedged backups) extend the law: a copy is only
//     cloned after the primary dispatch, each copy ends exactly once
//     (cancellation counts as its end), and a terminating request leaves no
//     copy unresolved — exactly one copy scores the completion.
//   - device-capacity: resident jobs never exceed the device-memory pool
//     bound (maxResident), jobs never start, progress or finish on a
//     Failed() device, per-job FBRs are positive and finite, and a finishing
//     job has no solo-equivalent work left.
//   - container-lifecycle: pool counters obey cold-start → warm →
//     keep-alive → evicted accounting — idle+busy+starting+booting ==
//     boots + warmAdded − terminated, cumulative counters never decrease,
//     request-blocking cold starts never exceed total boots, and waiting
//     claims never exceed the containers that could absorb them.
//   - node-lifecycle: nodes walk requested → acquired → (failed ↔
//     recovered)* → released; no duplicate failure, no recovery without a
//     failure, no release without an acquisition. Spot revocation is
//     terminal: a node is revoked at most once, never while released, and
//     never fails or recovers afterwards.
//   - billing: total cost is monotone in virtual time and always equals the
//     sum over nodes of cost-rate × held-time re-derived from the node
//     lifecycle events (double-billing and under-billing both trip it).
//     Spot nodes carry their discounted rate on the lifecycle events, so
//     the reconciliation stays exact below the catalog price.
//   - time-monotonic: the engine's virtual clock and every event timestamp
//     are non-decreasing.
//   - span-telescope: at every Completed event, batch_wait + cold_start +
//     queue_delay + exec == latency, re-derived from the raw event stamps
//     of the scoring copy (the Completed event's job for cloned requests);
//     synchronized clone sets may complete with non-negative slack after
//     their scoring copy's exec end.
//
// A Checker implements telemetry.Sink for the event-derived laws and
// exposes direct hook methods (DeviceStart, Pool, Billing, Tick, ...) for
// laws internal to a layer. Every emission site nil-checks its checker, so
// a disabled checker costs one branch — the same zero-cost-when-disabled
// contract as the telemetry layer. A Checker watches exactly one run and is
// not safe for concurrent use; give each run its own.
package invariant

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/hardware"
	"repro/internal/telemetry"
)

// Law families. Every Violation carries one, so tests can assert that a
// deliberately broken law — and only that law — fires.
const (
	LawConservation = "request-conservation"
	LawCapacity     = "device-capacity"
	LawLifecycle    = "container-lifecycle"
	LawNode         = "node-lifecycle"
	LawBilling      = "billing"
	LawTime         = "time-monotonic"
	LawTelescope    = "span-telescope"
)

// recordLimit caps stored violations; the total count keeps increasing so a
// pathological run cannot exhaust memory through the checker itself.
const recordLimit = 100

// billingTol absorbs float summation noise when comparing re-derived cost
// against the cluster's books (both are sums of rate × seconds).
const billingTol = 1e-9

// finishTol is the residual solo-equivalent work (seconds) a finishing job
// may carry from duration truncation when its finish event was armed.
const finishTol = 1e-6

// Violation is one observed breach of a law.
type Violation struct {
	// At is the virtual time of the breach.
	At time.Duration
	// Law is the family constant (LawConservation, ...).
	Law string
	// Detail says what was observed and what the law requires.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%v [%s] %s", v.At, v.Law, v.Detail)
}

type reqKey struct {
	tenant int
	req    int64
}

type reqState struct {
	arrivedAt    time.Duration
	dispatchedAt time.Duration
	job          int64
	batched      bool
	dispatched   bool
	// cloneJobs are the job IDs of redundant copies (clone-to-k or hedged
	// backups) dispatched for this request beyond the primary. Every copy
	// must be resolved — cancelled or ended — by the time the request
	// terminates, and exactly one copy scores the completion.
	cloneJobs []int64
	// cancelledJobs are the copies this request has already cancelled: a
	// copy is shared by every request of its batch, so each sibling emits
	// its own CloneCancelled for the same job, but one request cancelling
	// the same copy twice is a conjured double-release.
	cancelledJobs []int64
}

type jobState struct {
	queuedAt time.Duration
	startAt  time.Duration
	endAt    time.Duration
	queued   bool
	started  bool
	ended    bool
	members  int // dispatched requests not yet terminal
}

type nodeState struct {
	spec       string
	rate       float64 // dollars per second; <0 when the spec is unknown
	billStart  time.Duration
	releasedAt time.Duration
	requested  bool
	acquired   bool
	released   bool
	failed     bool
	revoked    bool
	everBilled bool
}

type poolKey struct {
	node   int
	tenant int
}

// PoolCounts is a container pool's counter snapshot, passed by the pool on
// every mutation.
type PoolCounts struct {
	// Idle, Busy, Starting, Booting and Waiting are the instantaneous
	// populations (warm idle, serving, background pre-warms, synchronous
	// boots, queued claims).
	Idle, Busy, Starting, Booting, Waiting int
	// Boots, SyncColds, WarmAdded and Terminated are cumulative counters.
	Boots, SyncColds, WarmAdded, Terminated uint64
}

// Checker observes one simulation run and records law violations. The zero
// value is not usable; construct with New.
type Checker struct {
	recorded []Violation
	total    int

	lastTickAt  time.Duration
	lastEventAt time.Duration

	// request lifecycle; terminal requests leave the map but stay counted.
	reqs      map[reqKey]*reqState
	jobs      map[int64]*jobState
	open      int
	arrived   int
	completed int
	failed    int

	// node lifecycle, indexed by node ID (acquisition order).
	nodes        []*nodeState
	nodeFailures int

	lastCost    float64
	lastBillAt  time.Duration
	billUnknown bool // a node's spec was not in the catalog; skip reconciliation

	pools map[poolKey]*PoolCounts
}

// New returns an empty checker ready to observe one run.
func New() *Checker {
	return &Checker{
		reqs:  make(map[reqKey]*reqState),
		jobs:  make(map[int64]*jobState),
		pools: make(map[poolKey]*PoolCounts),
	}
}

// AsSink returns the checker as a telemetry.Sink, or a nil interface for a
// nil checker — safe to pass straight to telemetry.Combine.
func (c *Checker) AsSink() telemetry.Sink {
	if c == nil {
		return nil
	}
	return c
}

// violate records one breach (bounded; the total keeps counting).
func (c *Checker) violate(at time.Duration, law, format string, args ...any) {
	c.total++
	if len(c.recorded) < recordLimit {
		c.recorded = append(c.recorded, Violation{At: at, Law: law, Detail: fmt.Sprintf(format, args...)})
	}
}

// Violations returns the recorded breaches (at most recordLimit of them).
func (c *Checker) Violations() []Violation { return c.recorded }

// Total returns how many breaches were observed, including any beyond the
// recording cap.
func (c *Checker) Total() int { return c.total }

// Clean reports whether no law was violated.
func (c *Checker) Clean() bool { return c.total == 0 }

// Err returns nil for a clean run, or an error summarizing the breaches.
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invariant: %d violation(s)", c.total)
	show := len(c.recorded)
	if show > 5 {
		show = 5
	}
	for _, v := range c.recorded[:show] {
		fmt.Fprintf(&b, "\n  %s", v)
	}
	if c.total > show {
		fmt.Fprintf(&b, "\n  ... and %d more", c.total-show)
	}
	return fmt.Errorf("%s", b.String())
}

// --- engine hook ---------------------------------------------------------------

// Tick observes every fired engine event's virtual time (wire it with
// sim.Engine.SetOnFire). Time must never run backwards.
func (c *Checker) Tick(at time.Duration) {
	if at < c.lastTickAt {
		c.violate(at, LawTime, "engine clock moved backwards: %v after %v", at, c.lastTickAt)
	}
	c.lastTickAt = at
}

// --- event-derived laws --------------------------------------------------------

// Event consumes one telemetry event (Checker implements telemetry.Sink).
func (c *Checker) Event(e telemetry.Event) {
	if e.At < c.lastEventAt {
		c.violate(e.At, LawTime, "%s event at %v after an event at %v", e.Kind, e.At, c.lastEventAt)
	} else {
		c.lastEventAt = e.At
	}
	if e.At < c.lastTickAt {
		c.violate(e.At, LawTime, "%s event at %v behind the engine clock %v", e.Kind, e.At, c.lastTickAt)
	}

	switch e.Kind {
	case telemetry.Arrived, telemetry.Batched, telemetry.Dispatched,
		telemetry.Completed, telemetry.Failed,
		telemetry.Cloned, telemetry.CloneCancelled:
		c.requestEvent(e)
	case telemetry.Queued, telemetry.ExecStart, telemetry.ExecEnd:
		c.jobEvent(e)
	case telemetry.ContainerWait, telemetry.ContainerBoot,
		telemetry.ContainerPrewarm, telemetry.ContainerReaped:
		if e.N < 1 {
			c.violate(e.At, LawLifecycle, "%s event with count %d", e.Kind, e.N)
		}
	case telemetry.NodeRequested, telemetry.NodeAcquired, telemetry.NodeReleased,
		telemetry.NodeFailed, telemetry.NodeRecovered, telemetry.NodeRevoked:
		c.nodeEvent(e)
	}
}

func (c *Checker) requestEvent(e telemetry.Event) {
	if e.Req < 0 {
		c.violate(e.At, LawConservation, "%s event without a request ID", e.Kind)
		return
	}
	k := reqKey{tenant: e.Tenant, req: e.Req}
	st := c.reqs[k]

	switch e.Kind {
	case telemetry.Arrived:
		if st != nil {
			c.violate(e.At, LawConservation, "request %d arrived twice", e.Req)
			return
		}
		c.reqs[k] = &reqState{arrivedAt: e.At}
		c.arrived++
		c.open++

	case telemetry.Batched:
		if st == nil {
			c.violate(e.At, LawConservation, "request %d batched before arriving", e.Req)
			return
		}
		st.batched = true

	case telemetry.Dispatched:
		if st == nil {
			c.violate(e.At, LawConservation, "request %d dispatched before arriving", e.Req)
			return
		}
		if !st.batched {
			c.violate(e.At, LawConservation, "request %d dispatched before batching", e.Req)
		}
		if st.dispatched {
			c.violate(e.At, LawConservation, "request %d dispatched twice", e.Req)
			return
		}
		if e.At < st.arrivedAt {
			c.violate(e.At, LawTime, "request %d dispatched at %v before its arrival %v", e.Req, e.At, st.arrivedAt)
		}
		st.dispatched = true
		st.dispatchedAt = e.At
		st.job = e.Job
		if e.Job > 0 {
			j := c.jobs[e.Job]
			if j == nil {
				j = &jobState{}
				c.jobs[e.Job] = j
			}
			j.members++
		}

	case telemetry.Cloned:
		if st == nil {
			c.violate(e.At, LawConservation, "request %d cloned before arriving", e.Req)
			return
		}
		if !st.dispatched {
			c.violate(e.At, LawConservation, "request %d cloned before its primary dispatch", e.Req)
		}
		if e.Job <= 0 {
			c.violate(e.At, LawConservation, "request %d cloned without a copy job ID", e.Req)
			return
		}
		st.cloneJobs = append(st.cloneJobs, e.Job)
		j := c.jobs[e.Job]
		if j == nil {
			j = &jobState{}
			c.jobs[e.Job] = j
		}
		// The copy's job entry lives until the request terminates, like the
		// primary's, so terminal() can verify every copy was resolved.
		j.members++

	case telemetry.CloneCancelled:
		if st == nil {
			c.violate(e.At, LawConservation, "request %d cancelled a copy without an open request", e.Req)
			return
		}
		if e.Job <= 0 {
			c.violate(e.At, LawConservation, "request %d cancelled a copy without a job ID", e.Req)
			return
		}
		if !c.isCopyJob(st, e.Job) {
			c.violate(e.At, LawConservation,
				"request %d cancelled copy job %d it never dispatched", e.Req, e.Job)
			return
		}
		for _, id := range st.cancelledJobs {
			if id == e.Job {
				c.violate(e.At, LawConservation,
					"request %d cancelled copy job %d twice", e.Req, e.Job)
				return
			}
		}
		st.cancelledJobs = append(st.cancelledJobs, e.Job)
		j := c.jobs[e.Job]
		if j == nil {
			j = &jobState{}
			c.jobs[e.Job] = j
		}
		// A copy is shared across its batch: each sibling request cancels it
		// at the same instant, and only the first marks the end. A cancel at
		// a *later* instant than the copy's recorded end is a real breach —
		// the copy's capacity was released twice.
		if j.ended {
			if j.endAt != e.At {
				c.violate(e.At, LawConservation,
					"request %d cancelled copy job %d after it already ended", e.Req, e.Job)
			}
			return
		}
		// The cancel is the copy's end: its capacity is released and no
		// device ExecEnd will follow.
		j.ended = true
		j.endAt = e.At

	case telemetry.Completed:
		if st == nil {
			c.violate(e.At, LawConservation, "request %d completed without arriving (or completed twice)", e.Req)
			return
		}
		if !st.dispatched {
			c.violate(e.At, LawConservation, "request %d completed without being dispatched", e.Req)
		} else {
			c.telescope(e, st)
		}
		c.completed++
		c.terminal(k, st)

	case telemetry.Failed:
		if st == nil {
			c.violate(e.At, LawConservation, "request %d failed without arriving (or terminated twice)", e.Req)
			return
		}
		if e.At < st.arrivedAt {
			c.violate(e.At, LawTime, "request %d failed at %v before its arrival %v", e.Req, e.At, st.arrivedAt)
		}
		c.failed++
		c.terminal(k, st)
	}
}

// isCopyJob reports whether jid is one of the request's dispatched copies:
// the primary's job or any clone job.
func (c *Checker) isCopyJob(st *reqState, jid int64) bool {
	if jid == st.job && jid > 0 {
		return true
	}
	for _, id := range st.cloneJobs {
		if id == jid {
			return true
		}
	}
	return false
}

// terminal retires a request's tracking state; the counters keep the totals.
func (c *Checker) terminal(k reqKey, st *reqState) {
	c.open--
	delete(c.reqs, k)
	if st.job > 0 {
		if j := c.jobs[st.job]; j != nil {
			j.members--
			if j.members <= 0 && j.ended {
				delete(c.jobs, st.job)
			}
		}
	}
	// Clone-aware conservation: a terminating request must leave no copy in
	// flight — every redundant copy either ended on its device (sync variant,
	// failed copies) or was cancelled (which marks it ended). An unresolved
	// copy means cancel-on-first-complete leaked capacity.
	for _, id := range st.cloneJobs {
		j := c.jobs[id]
		if j == nil || !j.ended {
			c.violate(c.lastEventAt, LawConservation,
				"request %d terminated with clone copy job %d unresolved", k.req, id)
		}
		if j != nil {
			j.members--
			if j.members <= 0 && j.ended {
				delete(c.jobs, id)
			}
		}
	}
}

// telescope asserts batch_wait + cold_start + queue_delay + exec == latency
// for a completing request, from the raw event stamps. For cloned requests
// the Completed event names the scoring copy's job; the law telescopes
// against that copy, exactly when the completion coincides with the copy's
// exec end and with non-negative slack otherwise (a synchronized set whose
// last copy failed completes after its last successful copy finished — the
// gap is the synchronization stall, never negative).
func (c *Checker) telescope(e telemetry.Event, st *reqState) {
	jid := st.job
	cloned := len(st.cloneJobs) > 0
	if cloned && e.Job > 0 {
		jid = e.Job
		if !c.isCopyJob(st, jid) {
			c.violate(e.At, LawTelescope,
				"request %d completed on copy job %d it never dispatched", e.Req, jid)
			return
		}
	}
	j := c.jobs[jid]
	if j == nil || !j.queued || !j.started || !j.ended {
		c.violate(e.At, LawTelescope,
			"request %d completed but job %d has no full queued/exec record", e.Req, jid)
		return
	}
	batchWait := st.dispatchedAt - st.arrivedAt
	cold := j.queuedAt - st.dispatchedAt
	queue := j.startAt - j.queuedAt
	exec := j.endAt - j.startAt
	latency := e.At - st.arrivedAt
	if batchWait < 0 || cold < 0 || queue < 0 || exec < 0 {
		c.violate(e.At, LawTelescope,
			"request %d has a negative span component: batch_wait=%v cold=%v queue=%v exec=%v",
			e.Req, batchWait, cold, queue, exec)
		return
	}
	sum := batchWait + cold + queue + exec
	if cloned {
		if sum > latency || (j.endAt == e.At && sum != latency) {
			c.violate(e.At, LawTelescope,
				"request %d clone spans do not telescope: %v+%v+%v+%v = %v, latency %v (copy job %d)",
				e.Req, batchWait, cold, queue, exec, sum, latency, jid)
		}
		return
	}
	if sum != latency {
		c.violate(e.At, LawTelescope,
			"request %d spans do not telescope: %v+%v+%v+%v = %v, latency %v",
			e.Req, batchWait, cold, queue, exec, sum, latency)
	}
}

func (c *Checker) jobEvent(e telemetry.Event) {
	if e.Job <= 0 {
		c.violate(e.At, LawConservation, "%s event without a job ID", e.Kind)
		return
	}
	j := c.jobs[e.Job]
	if j == nil {
		j = &jobState{}
		c.jobs[e.Job] = j
	}
	switch e.Kind {
	case telemetry.Queued:
		if j.queued {
			c.violate(e.At, LawConservation, "job %d queued twice", e.Job)
		}
		j.queued = true
		j.queuedAt = e.At
	case telemetry.ExecStart:
		if !j.queued {
			c.violate(e.At, LawConservation, "job %d started executing without being queued", e.Job)
		}
		if j.started {
			c.violate(e.At, LawConservation, "job %d started executing twice", e.Job)
		}
		if n := c.node(e.Node); n != nil && n.failed {
			c.violate(e.At, LawCapacity, "job %d started executing on failed node %d", e.Job, e.Node)
		}
		j.started = true
		j.startAt = e.At
	case telemetry.ExecEnd:
		// A job failed before reaching the device legally ends with no
		// queued/start stamps; a *second* end is never legal.
		if j.ended {
			c.violate(e.At, LawConservation, "job %d ended twice", e.Job)
		}
		j.ended = true
		j.endAt = e.At
		if j.members <= 0 {
			delete(c.jobs, e.Job)
		}
	}
}

// node returns the tracked state for a node ID, nil when unknown.
func (c *Checker) node(id int) *nodeState {
	if id < 0 || id >= len(c.nodes) {
		return nil
	}
	return c.nodes[id]
}

// ensureNode grows the ID-indexed node table.
func (c *Checker) ensureNode(id int) *nodeState {
	for len(c.nodes) <= id {
		c.nodes = append(c.nodes, nil)
	}
	if c.nodes[id] == nil {
		c.nodes[id] = &nodeState{rate: -1}
	}
	return c.nodes[id]
}

func (c *Checker) nodeEvent(e telemetry.Event) {
	if e.Node < 0 {
		c.violate(e.At, LawNode, "%s event without a node ID", e.Kind)
		return
	}
	switch e.Kind {
	case telemetry.NodeRequested:
		if n := c.node(e.Node); n != nil {
			c.violate(e.At, LawNode, "node %d requested but already tracked (%s)", e.Node, n.spec)
			return
		}
		n := c.ensureNode(e.Node)
		n.requested = true
		c.startBilling(n, e)

	case telemetry.NodeAcquired:
		n := c.node(e.Node)
		if n == nil {
			// Synchronous acquisition: billing starts here.
			n = c.ensureNode(e.Node)
		} else if n.acquired || n.released {
			c.violate(e.At, LawNode, "node %d acquired twice (or after release)", e.Node)
			return
		}
		n.acquired = true
		c.startBilling(n, e)

	case telemetry.NodeFailed:
		n := c.node(e.Node)
		if n == nil {
			c.violate(e.At, LawNode, "node %d failed before being acquired", e.Node)
			return
		}
		if !n.acquired {
			c.violate(e.At, LawNode, "node %d failed while still in VM launch", e.Node)
		}
		if n.released {
			c.violate(e.At, LawNode, "node %d failed after release", e.Node)
		}
		if n.revoked {
			c.violate(e.At, LawNode, "node %d failed after revocation", e.Node)
		}
		if n.failed {
			c.violate(e.At, LawNode, "node %d failed while already failed", e.Node)
		}
		n.failed = true
		c.nodeFailures++

	case telemetry.NodeRecovered:
		n := c.node(e.Node)
		if n == nil || !n.failed {
			c.violate(e.At, LawNode, "node %d recovered without a failure", e.Node)
			return
		}
		if n.revoked {
			// A revocation is permanent: recovering a revoked node would
			// resurrect (and, while held, re-bill) a node the fleet let go.
			c.violate(e.At, LawNode, "node %d recovered after revocation", e.Node)
		}
		n.failed = false

	case telemetry.NodeRevoked:
		n := c.node(e.Node)
		if n == nil || !n.everBilled {
			c.violate(e.At, LawNode, "node %d revoked without being acquired", e.Node)
			return
		}
		if n.released {
			c.violate(e.At, LawNode, "node %d revoked after release", e.Node)
			return
		}
		if n.revoked {
			c.violate(e.At, LawNode, "node %d revoked twice", e.Node)
			return
		}
		n.revoked = true

	case telemetry.NodeReleased:
		n := c.node(e.Node)
		if n == nil || !n.everBilled {
			c.violate(e.At, LawNode, "node %d released without being acquired", e.Node)
			return
		}
		if n.released {
			c.violate(e.At, LawNode, "node %d released twice", e.Node)
			return
		}
		n.released = true
		n.releasedAt = e.At
	}
}

// startBilling stamps when a node began accruing cost and resolves its rate.
func (c *Checker) startBilling(n *nodeState, e telemetry.Event) {
	if n.everBilled {
		return
	}
	n.everBilled = true
	n.billStart = e.At
	n.spec = e.Spec
	if e.Value > 0 {
		// Spot nodes bill below the catalog rate; the lifecycle event carries
		// the effective rate so the ledger still reconciles exactly.
		n.rate = e.Value
	} else if spec, ok := hardware.ByName(e.Spec); ok {
		n.rate = spec.CostPerSecond()
	} else {
		c.billUnknown = true
	}
}

// --- direct layer hooks --------------------------------------------------------

// DeviceStart observes a job entering a device's active set. active counts
// the set including the new job; maxResident is the device-memory pool bound
// (0 = unbounded); failed is the device's failure flag; fbr the job's
// fractional bandwidth requirement.
func (c *Checker) DeviceStart(at time.Duration, node, active, maxResident int, failed bool, fbr float64) {
	if failed {
		c.violate(at, LawCapacity, "job started on failed device (node %d)", node)
	}
	if maxResident > 0 && active > maxResident {
		c.violate(at, LawCapacity,
			"node %d has %d resident jobs, exceeding the device-memory pool bound %d",
			node, active, maxResident)
	}
	// FBR 0 is legal (CPU nodes and negligible-bandwidth jobs); negative,
	// NaN or infinite is not. Values above 1 legally oversubscribe (that is
	// what the contention penalty models); the hard pool limit is the
	// resident-job bound above.
	if !(fbr >= 0) || math.IsInf(fbr, 0) {
		c.violate(at, LawCapacity, "node %d started a job with FBR %v", node, fbr)
	}
}

// DeviceAdvance observes simulated work being applied on a device. Progress
// on a failed device breaks the failure model.
func (c *Checker) DeviceAdvance(at time.Duration, node, active int, failed bool) {
	if failed && active > 0 {
		c.violate(at, LawCapacity,
			"node %d applied progress to %d jobs while failed", node, active)
	}
}

// DeviceFinish observes a job completing on a device. remainingSec is the
// job's leftover solo-equivalent work, which must be (numerically) zero.
func (c *Checker) DeviceFinish(at time.Duration, node int, remainingSec float64, failed bool) {
	if failed {
		c.violate(at, LawCapacity, "job finished normally on failed device (node %d)", node)
	}
	if remainingSec > finishTol || remainingSec < -finishTol {
		c.violate(at, LawCapacity,
			"node %d finished a job with %.3gs of work remaining", node, remainingSec)
	}
}

// Pool observes a container pool's counters after a mutation, checking the
// lifecycle algebra: live containers == boots + warmAdded − terminated,
// cumulative counters monotone, blocking cold starts within total boots, and
// waiting claims within the containers able to absorb them.
func (c *Checker) Pool(at time.Duration, node, tenant int, pc PoolCounts) {
	if pc.Idle < 0 || pc.Busy < 0 || pc.Starting < 0 || pc.Booting < 0 || pc.Waiting < 0 {
		c.violate(at, LawLifecycle,
			"node %d pool has a negative population: idle=%d busy=%d starting=%d booting=%d waiting=%d",
			node, pc.Idle, pc.Busy, pc.Starting, pc.Booting, pc.Waiting)
		return
	}
	k := poolKey{node: node, tenant: tenant}
	if prev := c.pools[k]; prev != nil {
		if pc.Boots < prev.Boots || pc.SyncColds < prev.SyncColds ||
			pc.WarmAdded < prev.WarmAdded || pc.Terminated < prev.Terminated {
			c.violate(at, LawLifecycle,
				"node %d pool counters went backwards: boots %d→%d sync %d→%d warm %d→%d terminated %d→%d",
				node, prev.Boots, pc.Boots, prev.SyncColds, pc.SyncColds,
				prev.WarmAdded, pc.WarmAdded, prev.Terminated, pc.Terminated)
		}
	}
	if pc.SyncColds > pc.Boots {
		c.violate(at, LawLifecycle,
			"node %d pool has %d blocking cold starts but only %d boots", node, pc.SyncColds, pc.Boots)
	}
	live := int64(pc.Idle + pc.Busy + pc.Starting + pc.Booting)
	want := int64(pc.Boots) + int64(pc.WarmAdded) - int64(pc.Terminated)
	if live != want {
		c.violate(at, LawLifecycle,
			"node %d pool conservation broken: idle+busy+starting+booting = %d, boots+warmAdded-terminated = %d",
			node, live, want)
	}
	if pc.Waiting > pc.Starting+pc.Busy {
		c.violate(at, LawLifecycle,
			"node %d pool has %d waiting claims but only %d containers to absorb them",
			node, pc.Waiting, pc.Starting+pc.Busy)
	}
	snap := pc
	c.pools[k] = &snap
}

// Billing observes the cluster's books after any acquire/release/failure
// transition: cost must be monotone and must equal the cost re-derived from
// the node lifecycle events.
func (c *Checker) Billing(at time.Duration, totalCost float64) {
	if at < c.lastBillAt {
		c.violate(at, LawTime, "billing observed at %v after %v", at, c.lastBillAt)
	}
	if totalCost < c.lastCost-billingTol {
		c.violate(at, LawBilling, "total cost decreased: %.9f after %.9f", totalCost, c.lastCost)
	}
	c.lastBillAt = at
	c.lastCost = totalCost
	if c.billUnknown {
		return
	}
	expected := 0.0
	for _, n := range c.nodes {
		if n == nil || !n.everBilled {
			continue
		}
		end := at
		if n.released {
			end = n.releasedAt
		}
		expected += n.rate * (end - n.billStart).Seconds()
	}
	diff := totalCost - expected
	if diff > billingTol || diff < -billingTol {
		c.violate(at, LawBilling,
			"books disagree with node lifecycle: cluster reports $%.9f, events imply $%.9f",
			totalCost, expected)
	}
}

// --- end-of-run reconciliation -------------------------------------------------

// CheckResult reconciles the run's Result counters against the observed
// event stream: call it once, after the run, with Result.Requests,
// Result.FailedRequests and Result.FailuresInjected (use the summed
// per-workload counts for multi-tenant runs).
func (c *Checker) CheckResult(at time.Duration, requests, failedRequests, failuresInjected int) {
	if c.open != 0 {
		c.violate(at, LawConservation,
			"%d request(s) never reached a terminal event", c.open)
	}
	if c.arrived != c.completed+c.failed {
		c.violate(at, LawConservation,
			"arrived %d != completed %d + failed %d", c.arrived, c.completed, c.failed)
	}
	if c.arrived != requests {
		c.violate(at, LawConservation,
			"Result.Requests = %d but %d requests arrived", requests, c.arrived)
	}
	if c.failed != failedRequests {
		c.violate(at, LawConservation,
			"Result.FailedRequests = %d but %d failed events observed", failedRequests, c.failed)
	}
	if c.nodeFailures > failuresInjected {
		c.violate(at, LawNode,
			"%d node failures observed but only %d injected", c.nodeFailures, failuresInjected)
	}
}

package invariant

import (
	"testing"
	"time"

	"repro/internal/hardware"
	"repro/internal/telemetry"
)

// Mutation tests for the clone/hedge conservation laws, the winner-telescope
// variant, and the spot-revocation node-lifecycle laws — same discipline as
// invariant_test.go: every law gets a clean run and a broken run.

// cev builds a clone-family event carrying both a request and a copy job ID.
func cev(at time.Duration, kind telemetry.Kind, req, job int64) telemetry.Event {
	e := telemetry.Ev(at, kind)
	e.Req, e.Job = req, job
	return e
}

// playClonedRequest walks one request through a legal clone-to-2 race:
// primary job 1 is dispatched, copy job 2 is cloned alongside, the copy wins
// at 40ms, the primary is cancelled, and the completion names job 2.
func playClonedRequest(c *Checker) {
	c.Event(ev(ms(0), telemetry.Arrived, 1))
	c.Event(ev(ms(0), telemetry.Batched, 1))
	c.Event(cev(ms(10), telemetry.Dispatched, 1, 1))
	c.Event(cev(ms(10), telemetry.Cloned, 1, 2))
	c.Event(jev(ms(12), telemetry.Queued, 1))
	c.Event(jev(ms(12), telemetry.Queued, 2))
	c.Event(jev(ms(14), telemetry.ExecStart, 2))
	c.Event(jev(ms(15), telemetry.ExecStart, 1))
	c.Event(jev(ms(40), telemetry.ExecEnd, 2))
	c.Event(cev(ms(40), telemetry.CloneCancelled, 1, 1))
	c.Event(cev(ms(40), telemetry.Completed, 1, 2))
}

func TestCloneCleanLifecycle(t *testing.T) {
	c := New()
	playClonedRequest(c)
	c.CheckResult(ms(50), 1, 0, 0)
	assertClean(t, c)
}

func TestCloneBatchSiblingsShareCopies(t *testing.T) {
	// Two requests of one batch share both copies; each sibling emits its
	// own Cloned and CloneCancelled for the same jobs at the same instants.
	c := New()
	for _, req := range []int64{1, 2} {
		c.Event(ev(ms(0), telemetry.Arrived, req))
		c.Event(ev(ms(0), telemetry.Batched, req))
	}
	for _, req := range []int64{1, 2} {
		c.Event(cev(ms(10), telemetry.Dispatched, req, 1))
	}
	for _, req := range []int64{1, 2} {
		c.Event(cev(ms(10), telemetry.Cloned, req, 2))
	}
	c.Event(jev(ms(12), telemetry.Queued, 1))
	c.Event(jev(ms(12), telemetry.Queued, 2))
	c.Event(jev(ms(14), telemetry.ExecStart, 2))
	c.Event(jev(ms(15), telemetry.ExecStart, 1))
	c.Event(jev(ms(40), telemetry.ExecEnd, 2))
	for _, req := range []int64{1, 2} {
		c.Event(cev(ms(40), telemetry.CloneCancelled, req, 1))
	}
	for _, req := range []int64{1, 2} {
		c.Event(cev(ms(40), telemetry.Completed, req, 2))
	}
	c.CheckResult(ms(50), 2, 0, 0)
	assertClean(t, c)
}

func TestCloneDetectsCloneBeforeArrival(t *testing.T) {
	c := New()
	c.Event(cev(ms(5), telemetry.Cloned, 9, 2))
	assertLaw(t, c, LawConservation)
}

func TestCloneDetectsCloneBeforeDispatch(t *testing.T) {
	c := New()
	c.Event(ev(ms(0), telemetry.Arrived, 1))
	c.Event(ev(ms(0), telemetry.Batched, 1))
	// The copy is launched before any primary exists to race against.
	c.Event(cev(ms(5), telemetry.Cloned, 1, 2))
	assertLaw(t, c, LawConservation)
}

func TestCloneDetectsCloneWithoutJobID(t *testing.T) {
	c := New()
	c.Event(ev(ms(0), telemetry.Arrived, 1))
	c.Event(ev(ms(0), telemetry.Batched, 1))
	c.Event(cev(ms(10), telemetry.Dispatched, 1, 1))
	c.Event(cev(ms(10), telemetry.Cloned, 1, 0))
	assertLaw(t, c, LawConservation)
}

func TestCloneDetectsCancelOfUnknownCopy(t *testing.T) {
	c := New()
	c.Event(ev(ms(0), telemetry.Arrived, 1))
	c.Event(ev(ms(0), telemetry.Batched, 1))
	c.Event(cev(ms(10), telemetry.Dispatched, 1, 1))
	// Job 7 was never dispatched for this request.
	c.Event(cev(ms(20), telemetry.CloneCancelled, 1, 7))
	assertLaw(t, c, LawConservation)
}

func TestCloneDetectsDoubleCancel(t *testing.T) {
	c := New()
	c.Event(ev(ms(0), telemetry.Arrived, 1))
	c.Event(ev(ms(0), telemetry.Batched, 1))
	c.Event(cev(ms(10), telemetry.Dispatched, 1, 1))
	c.Event(cev(ms(10), telemetry.Cloned, 1, 2))
	c.Event(cev(ms(20), telemetry.CloneCancelled, 1, 2))
	c.Event(cev(ms(21), telemetry.CloneCancelled, 1, 2))
	assertLaw(t, c, LawConservation)
}

func TestCloneDetectsUnresolvedCopyAtTerminal(t *testing.T) {
	// The copy is neither cancelled nor finished when the request terminates:
	// cancel-on-first-complete leaked device capacity.
	c := New()
	c.Event(ev(ms(0), telemetry.Arrived, 1))
	c.Event(ev(ms(0), telemetry.Batched, 1))
	c.Event(cev(ms(10), telemetry.Dispatched, 1, 1))
	c.Event(cev(ms(10), telemetry.Cloned, 1, 2))
	c.Event(jev(ms(12), telemetry.Queued, 1))
	c.Event(jev(ms(15), telemetry.ExecStart, 1))
	c.Event(jev(ms(40), telemetry.ExecEnd, 1))
	c.Event(cev(ms(40), telemetry.Completed, 1, 1))
	assertLaw(t, c, LawConservation)
}

// --- winner telescoping ---------------------------------------------------------

func TestCloneSyncSlackAccepted(t *testing.T) {
	// Synchronized variant: the scoring copy finished at 40ms but the request
	// completed at 45ms (the barrier waited on a sibling that then failed).
	// Positive slack is legal; the checker must not demand exact equality.
	c := New()
	c.Event(ev(ms(0), telemetry.Arrived, 1))
	c.Event(ev(ms(0), telemetry.Batched, 1))
	c.Event(cev(ms(10), telemetry.Dispatched, 1, 1))
	c.Event(cev(ms(10), telemetry.Cloned, 1, 2))
	c.Event(jev(ms(12), telemetry.Queued, 1))
	c.Event(jev(ms(15), telemetry.ExecStart, 1))
	c.Event(jev(ms(40), telemetry.ExecEnd, 1))
	c.Event(cev(ms(45), telemetry.CloneCancelled, 1, 2))
	c.Event(cev(ms(45), telemetry.Completed, 1, 1))
	c.CheckResult(ms(50), 1, 0, 0)
	assertClean(t, c)
}

func TestCloneDetectsCompletionBeforeCopyEnd(t *testing.T) {
	// A completion stamped before the scoring copy's exec end makes the
	// component sum exceed the latency — negative slack is never legal.
	// (Reaching it requires a non-monotone stamp, which the time law also
	// flags; either way the checker must not pass the stream clean.)
	c := New()
	c.Event(ev(ms(0), telemetry.Arrived, 1))
	c.Event(ev(ms(0), telemetry.Batched, 1))
	c.Event(cev(ms(10), telemetry.Dispatched, 1, 1))
	c.Event(cev(ms(10), telemetry.Cloned, 1, 2))
	c.Event(jev(ms(12), telemetry.Queued, 2))
	c.Event(jev(ms(14), telemetry.ExecStart, 2))
	c.Event(jev(ms(45), telemetry.ExecEnd, 2))
	c.Event(cev(ms(45), telemetry.CloneCancelled, 1, 1))
	c.Event(cev(ms(44), telemetry.Completed, 1, 2))
	if c.Total() == 0 {
		t.Fatal("completion before the scoring copy's end passed clean")
	}
}

func TestCloneDetectsCompletionOnUnexecutedCopy(t *testing.T) {
	// The completion names a copy that was cancelled while still queued — it
	// never executed, so it cannot be the scoring copy.
	c := New()
	c.Event(ev(ms(0), telemetry.Arrived, 1))
	c.Event(ev(ms(0), telemetry.Batched, 1))
	c.Event(cev(ms(10), telemetry.Dispatched, 1, 1))
	c.Event(cev(ms(10), telemetry.Cloned, 1, 2))
	c.Event(jev(ms(12), telemetry.Queued, 1))
	c.Event(jev(ms(12), telemetry.Queued, 2))
	c.Event(jev(ms(15), telemetry.ExecStart, 1))
	c.Event(jev(ms(40), telemetry.ExecEnd, 1))
	c.Event(cev(ms(40), telemetry.CloneCancelled, 1, 2))
	c.Event(cev(ms(40), telemetry.Completed, 1, 2))
	assertLaw(t, c, LawTelescope)
}

func TestCloneDetectsCompletionOnUnknownCopy(t *testing.T) {
	c := New()
	c.Event(ev(ms(0), telemetry.Arrived, 1))
	c.Event(ev(ms(0), telemetry.Batched, 1))
	c.Event(cev(ms(10), telemetry.Dispatched, 1, 1))
	c.Event(cev(ms(10), telemetry.Cloned, 1, 2))
	c.Event(cev(ms(40), telemetry.CloneCancelled, 1, 1))
	c.Event(cev(ms(40), telemetry.CloneCancelled, 1, 2))
	// Completion names job 9, which was never a copy of this request.
	c.Event(cev(ms(40), telemetry.Completed, 1, 9))
	assertLaw(t, c, LawTelescope)
}

// --- spot revocation node laws --------------------------------------------------

func TestNodeCleanRevocationLifecycle(t *testing.T) {
	spec := hardware.MostPerformant(hardware.GPU).Name
	c := New()
	c.Event(nev(ms(0), telemetry.NodeAcquired, 0, spec))
	c.Event(nev(ms(100), telemetry.NodeRevoked, 0, spec))
	c.Event(nev(ms(200), telemetry.NodeReleased, 0, spec))
	assertClean(t, c)
}

func TestNodeDetectsRevokeWithoutAcquire(t *testing.T) {
	c := New()
	c.Event(nev(ms(1), telemetry.NodeRevoked, 0, "whatever"))
	assertLaw(t, c, LawNode)
}

func TestNodeDetectsDoubleRevoke(t *testing.T) {
	spec := hardware.MostPerformant(hardware.GPU).Name
	c := New()
	c.Event(nev(ms(0), telemetry.NodeAcquired, 0, spec))
	c.Event(nev(ms(1), telemetry.NodeRevoked, 0, spec))
	c.Event(nev(ms(2), telemetry.NodeRevoked, 0, spec))
	assertLaw(t, c, LawNode)
}

func TestNodeDetectsRevokeAfterRelease(t *testing.T) {
	spec := hardware.MostPerformant(hardware.GPU).Name
	c := New()
	c.Event(nev(ms(0), telemetry.NodeAcquired, 0, spec))
	c.Event(nev(ms(1), telemetry.NodeReleased, 0, spec))
	c.Event(nev(ms(2), telemetry.NodeRevoked, 0, spec))
	assertLaw(t, c, LawNode)
}

func TestNodeDetectsFailureAfterRevocation(t *testing.T) {
	spec := hardware.MostPerformant(hardware.GPU).Name
	c := New()
	c.Event(nev(ms(0), telemetry.NodeAcquired, 0, spec))
	c.Event(nev(ms(1), telemetry.NodeRevoked, 0, spec))
	c.Event(nev(ms(2), telemetry.NodeFailed, 0, spec))
	assertLaw(t, c, LawNode)
}

func TestNodeDetectsRecoveryAfterRevocation(t *testing.T) {
	spec := hardware.MostPerformant(hardware.GPU).Name
	c := New()
	c.Event(nev(ms(0), telemetry.NodeAcquired, 0, spec))
	c.Event(nev(ms(1), telemetry.NodeFailed, 0, spec))
	c.Event(nev(ms(2), telemetry.NodeRevoked, 0, spec))
	c.Event(nev(ms(3), telemetry.NodeRecovered, 0, spec))
	assertLaw(t, c, LawNode)
}

// --- spot billing ---------------------------------------------------------------

func TestBillingSpotRateFromEvent(t *testing.T) {
	// A spot acquisition carries its discounted effective rate in Value; the
	// ledger must reconcile against that rate, not the catalog price.
	spec := hardware.MostPerformant(hardware.GPU)
	rate := spec.CostPerSecond() * 0.35
	c := New()
	acq := nev(0, telemetry.NodeAcquired, 0, spec.Name)
	acq.Value, acq.Detail = rate, "spot"
	c.Event(acq)
	hold := 10 * time.Second
	c.Billing(hold, rate*hold.Seconds())
	assertClean(t, c)
}

func TestBillingDetectsSpotOverbilling(t *testing.T) {
	// The books charge the on-demand catalog rate for a node whose lifecycle
	// events promise a discount.
	spec := hardware.MostPerformant(hardware.GPU)
	c := New()
	acq := nev(0, telemetry.NodeAcquired, 0, spec.Name)
	acq.Value, acq.Detail = spec.CostPerSecond()*0.35, "spot"
	c.Event(acq)
	hold := 10 * time.Second
	c.Billing(hold, spec.CostPerSecond()*hold.Seconds())
	assertLaw(t, c, LawBilling)
}

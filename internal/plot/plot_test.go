package plot

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBarChart(t *testing.T) {
	out := BarChart("demo", []Bar{
		{Label: "Paldia", Value: 99.3},
		{Label: "Molecule", Value: 85.0},
		{Label: "zero", Value: 0},
	}, 20, "%")
	if !strings.Contains(out, "demo") || !strings.Contains(out, "Paldia") {
		t.Fatalf("missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want title + 3 bars", len(lines))
	}
	// Larger value gets a longer bar.
	if strings.Count(lines[1], "█") <= strings.Count(lines[2], "█") {
		t.Fatal("bar lengths not ordered by value")
	}
	if strings.Count(lines[3], "█") != 0 {
		t.Fatal("zero value drew a bar")
	}
}

func TestBarChartNegativeClamped(t *testing.T) {
	out := BarChart("", []Bar{{Label: "a", Value: -5}, {Label: "b", Value: 5}}, 10, "")
	if strings.Count(strings.Split(out, "\n")[0], "█") != 0 {
		t.Fatal("negative value drew a bar")
	}
}

func TestLineChart(t *testing.T) {
	s := []Series{
		{Name: "up", Points: [][2]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}},
		{Name: "flat", Points: [][2]float64{{0, 1.5}, {3, 1.5}}},
	}
	out := LineChart("trend", s, 24, 6)
	for _, want := range []string{"trend", "*", "o", "up", "flat", "3", "0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestLineChartEmpty(t *testing.T) {
	out := LineChart("none", nil, 20, 5)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart should say so:\n%s", out)
	}
}

func TestLineChartDegenerateRanges(t *testing.T) {
	// Single point: both ranges degenerate; must not panic or divide by 0.
	out := LineChart("dot", []Series{{Name: "p", Points: [][2]float64{{1, 1}}}}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Fatalf("point not drawn:\n%s", out)
	}
}

func TestCDF(t *testing.T) {
	out := CDF("latency", []string{"a", "b"},
		[][]float64{{1, 2, 3, 10}, {2, 4, 6, 8}}, 30, 8)
	if !strings.Contains(out, "latency") || !strings.Contains(out, "a") {
		t.Fatalf("bad CDF:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(s)) != 8 {
		t.Fatalf("sparkline length %d, want 8", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("ends wrong: %s", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty input should render empty")
	}
	if len([]rune(Sparkline([]float64{5, 5, 5}))) != 3 {
		t.Fatal("constant input mishandled")
	}
}

// Property: rendering never panics and output line count is bounded by
// height + decorations for arbitrary inputs.
func TestLineChartRobustProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		pts := make([][2]float64, 0, n)
		for i := 0; i < n; i++ {
			// Skip NaN/Inf — chart contract is finite input.
			if xs[i] != xs[i] || ys[i] != ys[i] {
				continue
			}
			pts = append(pts, [2]float64{xs[i], ys[i]})
		}
		out := LineChart("t", []Series{{Name: "s", Points: pts}}, 20, 5)
		return strings.Count(out, "\n") <= 5+3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Package plot renders small terminal charts — horizontal bar charts, line
// charts and CDFs — so the experiment harness can show the *shape* of each
// figure, not just its numbers. Everything is plain text, deterministic, and
// dependency-free.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders a horizontal bar chart. Values are scaled to width
// characters against the maximum; negative values clamp to zero. The unit
// string is appended to each printed value.
func BarChart(title string, bars []Bar, width int, unit string) string {
	if width < 8 {
		width = 8
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	labelW, max := 0, 0.0
	for _, bar := range bars {
		if len(bar.Label) > labelW {
			labelW = len(bar.Label)
		}
		if bar.Value > max {
			max = bar.Value
		}
	}
	for _, bar := range bars {
		v := bar.Value
		if v < 0 {
			v = 0
		}
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "%-*s |%-*s %.4g%s\n", labelW, bar.Label, width,
			strings.Repeat("█", n), bar.Value, unit)
	}
	return b.String()
}

// Series is one named line of a line chart.
type Series struct {
	Name string
	// Points are (x, y) pairs, x ascending.
	Points [][2]float64
}

// seriesGlyphs mark the lines of a multi-series chart.
var seriesGlyphs = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// LineChart renders one or more series on a character grid of the given
// size, with min/max axis annotations. Later series draw over earlier ones.
func LineChart(title string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	finite := func(p [2]float64) bool {
		return !math.IsNaN(p[0]) && !math.IsInf(p[0], 0) &&
			!math.IsNaN(p[1]) && !math.IsInf(p[1], 0)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			if !finite(p) {
				continue
			}
			minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
			minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
		}
	}
	if math.IsInf(minX, 1) {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for _, p := range s.Points {
			if !finite(p) {
				continue
			}
			// Extreme ranges can overflow to Inf/NaN in the scaling; clamp.
			x := clampIndex((p[0]-minX)/(maxX-minX)*float64(width-1), width)
			y := clampIndex((p[1]-minY)/(maxY-minY)*float64(height-1), height)
			grid[height-1-y][x] = glyph
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, row := range grid {
		edge := "|"
		if i == 0 {
			edge = fmt.Sprintf("%.4g", maxY)
		} else if i == height-1 {
			edge = fmt.Sprintf("%.4g", minY)
		}
		fmt.Fprintf(&b, "%8s %s\n", edge, string(row))
	}
	fmt.Fprintf(&b, "%8s %-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "%8s %c = %s\n", "", seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
	return b.String()
}

// clampIndex converts a possibly non-finite scaled position into a valid
// grid index.
func clampIndex(v float64, n int) int {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if i := int(v); i < n {
		return i
	}
	return n - 1
}

// CDF renders cumulative distributions: x = value, y = fraction in [0,1].
// Values per series must be sorted ascending; fractions are implied by rank.
func CDF(title string, names []string, values [][]float64, width, height int) string {
	series := make([]Series, len(values))
	for i, vs := range values {
		pts := make([][2]float64, len(vs))
		for j, v := range vs {
			pts[j] = [2]float64{v, float64(j+1) / float64(len(vs))}
		}
		name := fmt.Sprintf("series %d", i)
		if i < len(names) {
			name = names[i]
		}
		series[i] = Series{Name: name, Points: pts}
	}
	return LineChart(title, series, width, height)
}

// Sparkline renders values as a compact one-line chart.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		min, max = math.Min(min, v), math.Max(max, v)
	}
	if max == min {
		max = min + 1
	}
	var b strings.Builder
	for _, v := range values {
		i := int((v - min) / (max - min) * float64(len(ramp)-1))
		b.WriteRune(ramp[i])
	}
	return b.String()
}

// Package hardware describes the heterogeneous compute nodes a provider can
// place serverless functions on. The catalog mirrors Table II of the Paldia
// paper: three GPU-equipped EC2 shapes (V100, K80, M60) and three CPU-only
// shapes (two IceLake, one Broadwell), with their on-demand hourly prices.
//
// The performance-relevant fields (ComputeScore, MemBWGBps, power) are not in
// the paper; they are calibrated from public specifications of the underlying
// silicon so that the *ratios* between nodes — which are all the scheduling
// policies consume — match reality: the V100 is roughly 3x the M60 on
// compute and ~5.6x on memory bandwidth, CPUs are an order of magnitude
// slower for dense inference, and so on.
package hardware

import (
	"fmt"
	"sort"
	"time"
)

// Kind distinguishes the primary compute device of a node.
type Kind int

const (
	// CPU nodes serve inference with the ML framework's batched CPU mode.
	CPU Kind = iota
	// GPU nodes serve inference on the accelerator and support both time
	// sharing and spatial sharing (MPS).
	GPU
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one node type the provider can procure.
type Spec struct {
	// Name is the instance type, e.g. "p3.2xlarge".
	Name string
	// Accel names the primary compute hardware, e.g. "V100" or "IceLake".
	Accel string
	// Kind is the node class (CPU-only or GPU-equipped).
	Kind Kind
	// CostPerHour is the on-demand price in dollars (Table II).
	CostPerHour float64
	// MemGB is the CPU or GPU memory in GiB (Table II).
	MemGB float64

	// ComputeScore is the relative dense-inference throughput of the primary
	// compute device. It is normalized so that the V100 scores 14.0 (its
	// peak FP32 TFLOP/s); solo execution latency scales as 1/ComputeScore.
	ComputeScore float64
	// MemBWGBps is the device global-memory bandwidth in GB/s; it is the
	// denominator of the Fractional Bandwidth Requirement (FBR) and only
	// meaningful for GPU nodes.
	MemBWGBps float64
	// VCPUs is the host vCPU count. CPU nodes execute one batch at a time
	// using the whole node (the ML framework's batched CPU mode); VCPUs
	// matters for host-side contention with co-resident "regular" serverless
	// workloads (Table III).
	VCPUs int

	// IdlePowerW and PeakPowerW bound the node's linear power model.
	IdlePowerW float64
	PeakPowerW float64

	// ProcureDelay is the time from requesting the node (VM launch) until
	// containers can be spawned on it.
	ProcureDelay time.Duration
}

// IsGPU reports whether the node's primary compute device is a GPU.
func (s Spec) IsGPU() bool { return s.Kind == GPU }

// CostPerSecond converts the hourly price.
func (s Spec) CostPerSecond() float64 { return s.CostPerHour / 3600 }

func (s Spec) String() string {
	return fmt.Sprintf("%s(%s, $%.2f/h)", s.Name, s.Accel, s.CostPerHour)
}

// Catalog returns the Table II node types, cheapest first. The returned slice
// is a fresh copy; callers may reorder it freely.
func Catalog() []Spec {
	c := make([]Spec, len(catalog))
	copy(c, catalog)
	return c
}

// costSorted is the shared cost-ascending view of the catalog, built once at
// init so the selection hot path never copies and re-sorts per call.
var costSorted = func() []Spec {
	c := make([]Spec, len(catalog))
	copy(c, catalog)
	SortByCostAscending(c)
	return c
}()

// CostSorted returns the catalog cheapest-first as a shared snapshot. Callers
// must treat it as read-only; use Catalog for a copy they may reorder.
func CostSorted() []Spec { return costSorted }

// GPUs returns only the GPU-equipped nodes, cheapest first.
func GPUs() []Spec { return filter(GPU) }

// CPUs returns only the CPU-only nodes, cheapest first.
func CPUs() []Spec { return filter(CPU) }

func filter(k Kind) []Spec {
	var out []Spec
	for _, s := range catalog {
		if s.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

// ByName looks a node type up by instance name or accelerator name
// (case-sensitive). The boolean reports whether it was found.
func ByName(name string) (Spec, bool) {
	for _, s := range catalog {
		if s.Name == name || s.Accel == name {
			return s, true
		}
	}
	return Spec{}, false
}

// MostPerformant returns the node with the highest ComputeScore among the
// given kind; with kind==GPU and the default catalog this is the V100 node,
// the hardware the paper's "(P)" baselines always use.
func MostPerformant(k Kind) Spec {
	var best Spec
	for _, s := range catalog {
		if s.Kind == k && s.ComputeScore > best.ComputeScore {
			best = s
		}
	}
	return best
}

// SortByCostAscending orders specs cheapest-first (Algorithm 1 sorts the
// hardware pool this way before probing). Ties break by name for determinism.
func SortByCostAscending(specs []Spec) {
	sort.Slice(specs, func(i, j int) bool {
		if specs[i].CostPerHour != specs[j].CostPerHour {
			return specs[i].CostPerHour < specs[j].CostPerHour
		}
		return specs[i].Name < specs[j].Name
	})
}

// DefaultProcureDelay is the VM launch latency used for every catalog node.
// Hardware acquisition happens in the background (Algorithm 1's
// reconfigure_HW), so its exact value only shifts how long the previous node
// keeps serving.
const DefaultProcureDelay = 4 * time.Second

var catalog = []Spec{
	{
		Name: "m4.xlarge", Accel: "Broadwell", Kind: CPU,
		CostPerHour: 0.20, MemGB: 8,
		ComputeScore: 0.5, VCPUs: 2,
		IdlePowerW: 40, PeakPowerW: 95,
		ProcureDelay: DefaultProcureDelay,
	},
	{
		Name: "c6i.2xlarge", Accel: "IceLake-8", Kind: CPU,
		CostPerHour: 0.34, MemGB: 16,
		ComputeScore: 1.1, VCPUs: 8,
		IdlePowerW: 55, PeakPowerW: 140,
		ProcureDelay: DefaultProcureDelay,
	},
	{
		Name: "c6i.4xlarge", Accel: "IceLake-16", Kind: CPU,
		CostPerHour: 0.68, MemGB: 32,
		ComputeScore: 2.2, VCPUs: 16,
		IdlePowerW: 70, PeakPowerW: 210,
		ProcureDelay: DefaultProcureDelay,
	},
	{
		Name: "g3s.xlarge", Accel: "M60", Kind: GPU,
		CostPerHour: 0.75, MemGB: 8,
		ComputeScore: 4.8, MemBWGBps: 160, VCPUs: 4,
		IdlePowerW: 60, PeakPowerW: 210, // host + 120 W TDP board (half of M60 card)
		ProcureDelay: DefaultProcureDelay,
	},
	{
		Name: "p2.xlarge", Accel: "K80", Kind: GPU,
		CostPerHour: 0.90, MemGB: 12,
		ComputeScore: 5.6, MemBWGBps: 240, VCPUs: 4,
		IdlePowerW: 70, PeakPowerW: 290,
		ProcureDelay: DefaultProcureDelay,
	},
	{
		Name: "p3.2xlarge", Accel: "V100", Kind: GPU,
		CostPerHour: 3.06, MemGB: 16,
		ComputeScore: 14.0, MemBWGBps: 900, VCPUs: 8,
		IdlePowerW: 90, PeakPowerW: 390,
		ProcureDelay: DefaultProcureDelay,
	},
}

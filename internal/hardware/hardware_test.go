package hardware

import (
	"testing"
	"testing/quick"
)

func TestCatalogMatchesTableII(t *testing.T) {
	// Instance name -> (accelerator, $/h, mem GB) straight from Table II.
	want := map[string]struct {
		accel string
		cost  float64
		mem   float64
		kind  Kind
	}{
		"p3.2xlarge":  {"V100", 3.06, 16, GPU},
		"p2.xlarge":   {"K80", 0.90, 12, GPU},
		"g3s.xlarge":  {"M60", 0.75, 8, GPU},
		"c6i.4xlarge": {"IceLake-16", 0.68, 32, CPU},
		"c6i.2xlarge": {"IceLake-8", 0.34, 16, CPU},
		"m4.xlarge":   {"Broadwell", 0.20, 8, CPU},
	}
	cat := Catalog()
	if len(cat) != len(want) {
		t.Fatalf("catalog has %d entries, want %d", len(cat), len(want))
	}
	for _, s := range cat {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected node %q", s.Name)
			continue
		}
		if s.Accel != w.accel || s.CostPerHour != w.cost || s.MemGB != w.mem || s.Kind != w.kind {
			t.Errorf("%s = {%s $%.2f %gGB %v}, want {%s $%.2f %gGB %v}",
				s.Name, s.Accel, s.CostPerHour, s.MemGB, s.Kind, w.accel, w.cost, w.mem, w.kind)
		}
	}
}

func TestCatalogIsACopy(t *testing.T) {
	a := Catalog()
	a[0].CostPerHour = 999
	b := Catalog()
	if b[0].CostPerHour == 999 {
		t.Fatal("mutating Catalog() result leaked into the package catalog")
	}
}

func TestGPURelativePerformance(t *testing.T) {
	v100, _ := ByName("V100")
	m60, _ := ByName("M60")
	k80, _ := ByName("K80")
	if !(v100.ComputeScore > k80.ComputeScore && k80.ComputeScore > m60.ComputeScore) {
		t.Fatalf("want V100 > K80 > M60 compute, got %v %v %v",
			v100.ComputeScore, k80.ComputeScore, m60.ComputeScore)
	}
	if v100.MemBWGBps <= m60.MemBWGBps {
		t.Fatal("V100 must have more memory bandwidth than M60")
	}
	// The paper's story needs the cheap GPU to saturate bandwidth much more
	// easily: same-workload FBR on M60 should be several times the V100's.
	ratio := v100.MemBWGBps / m60.MemBWGBps
	if ratio < 3 {
		t.Fatalf("V100/M60 bandwidth ratio = %.1f, want >= 3 for the interference story", ratio)
	}
}

func TestMostPerformant(t *testing.T) {
	if got := MostPerformant(GPU); got.Accel != "V100" {
		t.Fatalf("MostPerformant(GPU) = %s, want V100", got.Accel)
	}
	if got := MostPerformant(CPU); got.Name != "c6i.4xlarge" {
		t.Fatalf("MostPerformant(CPU) = %s, want c6i.4xlarge", got.Name)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("p3.2xlarge"); !ok {
		t.Fatal("ByName(p3.2xlarge) not found")
	}
	if _, ok := ByName("V100"); !ok {
		t.Fatal("ByName(V100) by accelerator not found")
	}
	if _, ok := ByName("tpu.v5"); ok {
		t.Fatal("ByName(tpu.v5) unexpectedly found")
	}
}

func TestFilters(t *testing.T) {
	if n := len(GPUs()); n != 3 {
		t.Fatalf("GPUs() returned %d nodes, want 3", n)
	}
	if n := len(CPUs()); n != 3 {
		t.Fatalf("CPUs() returned %d nodes, want 3", n)
	}
	for _, s := range GPUs() {
		if !s.IsGPU() {
			t.Errorf("%s in GPUs() but IsGPU() is false", s.Name)
		}
	}
}

func TestSortByCostAscending(t *testing.T) {
	specs := Catalog()
	// Shuffle deterministically by reversing.
	for i, j := 0, len(specs)-1; i < j; i, j = i+1, j-1 {
		specs[i], specs[j] = specs[j], specs[i]
	}
	SortByCostAscending(specs)
	for i := 1; i < len(specs); i++ {
		if specs[i].CostPerHour < specs[i-1].CostPerHour {
			t.Fatalf("not sorted at %d: %v after %v", i, specs[i], specs[i-1])
		}
	}
	if specs[0].Name != "m4.xlarge" || specs[len(specs)-1].Name != "p3.2xlarge" {
		t.Fatalf("cheapest/dearest = %s/%s, want m4.xlarge/p3.2xlarge",
			specs[0].Name, specs[len(specs)-1].Name)
	}
}

func TestCostPerSecond(t *testing.T) {
	v100, _ := ByName("V100")
	got := v100.CostPerSecond() * 3600
	if diff := got - v100.CostPerHour; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("CostPerSecond*3600 = %v, want %v", got, v100.CostPerHour)
	}
}

func TestPowerModelSane(t *testing.T) {
	for _, s := range Catalog() {
		if s.IdlePowerW <= 0 || s.PeakPowerW <= s.IdlePowerW {
			t.Errorf("%s power model invalid: idle=%v peak=%v", s.Name, s.IdlePowerW, s.PeakPowerW)
		}
	}
}

// Property: SortByCostAscending is a permutation (no specs gained or lost).
func TestSortPermutationProperty(t *testing.T) {
	f := func(perm []uint8) bool {
		specs := Catalog()
		// Apply a pseudo-permutation driven by the fuzz input.
		for i, p := range perm {
			j := int(p) % len(specs)
			specs[i%len(specs)], specs[j] = specs[j], specs[i%len(specs)]
		}
		SortByCostAscending(specs)
		seen := map[string]bool{}
		for _, s := range specs {
			seen[s.Name] = true
		}
		return len(seen) == len(specs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Fatal("Kind.String broken")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown Kind.String broken")
	}
}

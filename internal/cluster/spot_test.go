package cluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/invariant"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// checked returns a cluster wired to a fresh recorder and invariant checker.
func checked(eng *sim.Engine) (*Cluster, *telemetry.Recorder, *invariant.Checker) {
	c := New(eng)
	rec := telemetry.NewRecorder()
	chk := invariant.New()
	c.Sink, c.Check = telemetry.Combine(rec, chk.AsSink()), chk
	eng.SetOnFire(chk.Tick)
	return c, rec, chk
}

func countKind(rec *telemetry.Recorder, k telemetry.Kind) int {
	n := 0
	for _, e := range rec.Events() {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// A spot node bills at the discounted rate, and the books reconcile against
// the rate the lifecycle events carry.
func TestSpotNodeBillsDiscountedRate(t *testing.T) {
	eng := sim.NewEngine()
	c, rec, chk := checked(eng)
	v100 := specOf(t, "V100") // $3.06/h on demand
	n := c.AcquireSpot(v100, 0, 0.65)
	if !n.Spot() {
		t.Fatal("node not marked spot")
	}
	eng.Schedule(time.Hour, func() { c.Release(n) })
	eng.Run(2 * time.Hour)
	want := 3.06 * 0.35
	if got := c.TotalCost(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("spot cost = $%.4f, want $%.4f (65%% off $3.06 for 1h)", got, want)
	}
	_, gpu := c.CostByKind()
	if math.Abs(gpu-want) > 1e-6 {
		t.Fatalf("CostByKind gpu = $%.4f, want $%.4f", gpu, want)
	}
	// The acquisition event carries the effective rate and the spot marker.
	var acq telemetry.Event
	for _, e := range rec.Events() {
		if e.Kind == telemetry.NodeAcquired {
			acq = e
		}
	}
	if acq.Detail != "spot" || math.Abs(acq.Value-v100.CostPerSecond()*0.35) > 1e-12 {
		t.Fatalf("NodeAcquired detail=%q value=%g, want spot marker with discounted rate", acq.Detail, acq.Value)
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("books not invariant-clean:\n%v", err)
	}
}

// Revocation drains: a job short enough to finish inside the notice window
// completes normally; a straggler is killed at the deadline; the node is
// released and its billing frozen — all invariant-clean.
func TestRevokeDrainsThenKills(t *testing.T) {
	eng := sim.NewEngine()
	c, rec, chk := checked(eng)
	n := c.AcquireSpot(specOf(t, "M60"), 0, 0.5)

	var drained, killed *device.Job
	short := &device.Job{ID: 1, Batch: 1, Solo: 500 * time.Millisecond, FBR: 0.3, Mode: device.Spatial,
		Done: func(j *device.Job) { drained = j }}
	long := &device.Job{ID: 2, Batch: 1, Solo: time.Hour, FBR: 0.3, Mode: device.Spatial,
		Done: func(j *device.Job) { killed = j }}
	n.Device.Submit(short)
	n.Device.Submit(long)

	eng.Schedule(time.Second, func() { c.Revoke(n, 2*time.Second) })
	eng.Run(10 * time.Second)

	if !n.Revoked() || !n.Released() {
		t.Fatalf("revoked=%v released=%v, want true/true", n.Revoked(), n.Released())
	}
	if drained == nil || drained.Failed {
		t.Fatal("job finishing inside the notice window must drain successfully")
	}
	if killed == nil || !killed.Failed {
		t.Fatal("straggler must be killed (Failed) at the revocation deadline")
	}
	// Billing froze at the deadline: 3s held at half the M60 rate.
	m60 := specOf(t, "M60")
	want := m60.CostPerSecond() * 0.5 * 3
	if got := c.TotalCost(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("cost = $%.9f, want $%.9f (3s at half rate)", got, want)
	}
	if countKind(rec, telemetry.NodeRevoked) != 1 {
		t.Fatal("want exactly one NodeRevoked event")
	}
	// The revocation kill is not a node failure.
	if countKind(rec, telemetry.NodeFailed) != 0 {
		t.Fatal("revocation kill must not emit NodeFailed")
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("books not invariant-clean:\n%v", err)
	}
}

// The satellite-audit scenario: a node fails, is revoked mid-outage, and the
// failure's recovery timer fires after the revocation released it. The node
// must stay dead — no NodeRecovered, no cost accrued past the release, books
// reconciled throughout.
func TestRevokedNodeNeverRecoversOrDoubleBills(t *testing.T) {
	eng := sim.NewEngine()
	c, rec, chk := checked(eng)
	n := c.AcquireSpot(specOf(t, "M60"), 0, 0.5)

	eng.Schedule(0, func() { c.Fail(n, 10*time.Second) })
	eng.Schedule(time.Second, func() { c.Revoke(n, 2*time.Second) })
	// Probe after the recovery timer (t=10s) would have fired.
	eng.Schedule(12*time.Second, func() {
		if !n.Device.Failed() {
			t.Error("revoked node recovered at its old failure deadline")
		}
		if !n.Released() {
			t.Error("revoked node not released at the notice deadline")
		}
	})
	eng.Run(20 * time.Second)

	if countKind(rec, telemetry.NodeRecovered) != 0 {
		t.Fatal("revoked node must never emit NodeRecovered")
	}
	// Billing stopped at release (t=3s) and never resumed.
	m60 := specOf(t, "M60")
	want := m60.CostPerSecond() * 0.5 * 3
	if got := c.TotalCost(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("cost = $%.9f, want $%.9f — revoked-then-recovered double-billing?", got, want)
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("books not invariant-clean:\n%v", err)
	}
}

// Fail on an already-revoked node is a no-op: no NodeFailed event, no
// recovery timer that could outlive the release.
func TestFailAfterRevokeIsNoOp(t *testing.T) {
	eng := sim.NewEngine()
	c, rec, chk := checked(eng)
	n := c.AcquireSpot(specOf(t, "M60"), 0, 0.5)
	eng.Schedule(0, func() {
		c.Revoke(n, 5*time.Second)
		c.Fail(n, time.Second)
	})
	eng.Run(10 * time.Second)
	if countKind(rec, telemetry.NodeFailed) != 0 || countKind(rec, telemetry.NodeRecovered) != 0 {
		t.Fatal("Fail on a revoked node must be a no-op")
	}
	if !n.Released() {
		t.Fatal("revoked node not released")
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("books not invariant-clean:\n%v", err)
	}
}

// Revoking twice, or revoking a released node, is a no-op.
func TestRevokeIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	c, rec, chk := checked(eng)
	n := c.AcquireSpot(specOf(t, "M60"), 0, 0.5)
	eng.Schedule(0, func() {
		c.Revoke(n, time.Second)
		c.Revoke(n, 30*time.Second) // second notice must not extend the first
	})
	eng.Run(10 * time.Second)
	if countKind(rec, telemetry.NodeRevoked) != 1 {
		t.Fatal("want exactly one NodeRevoked event")
	}
	if !n.Released() {
		t.Fatal("node not released at the first notice deadline")
	}
	c.Revoke(n, time.Second) // after release: no-op
	if countKind(rec, telemetry.NodeRevoked) != 1 {
		t.Fatal("revoking a released node emitted an event")
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("books not invariant-clean:\n%v", err)
	}
}

// Revoking a node that is still mid-VM-launch releases it at the deadline
// without ever materializing a device; the pending procure callback must not
// resurrect it (no NodeAcquired, ready never invoked).
func TestRevokeMidColdStart(t *testing.T) {
	eng := sim.NewEngine()
	c, rec, chk := checked(eng)
	ready := false
	c.AcquireAsyncSpot(specOf(t, "M60"), 0, 0.5, func(*Node) { ready = true })
	n := c.Nodes()[0]
	eng.Schedule(0, func() { c.Revoke(n, time.Second) })
	eng.Run(5 * time.Minute)
	if ready {
		t.Fatal("ready fired for a node revoked during VM launch")
	}
	if n.Device != nil {
		t.Fatal("revoked launching node materialized a device")
	}
	if countKind(rec, telemetry.NodeAcquired) != 0 {
		t.Fatal("NodeAcquired emitted for a node revoked during launch")
	}
	if !n.Released() {
		t.Fatal("node not released at the notice deadline")
	}
	// Billed only for the 1s between request and revocation deadline.
	m60 := specOf(t, "M60")
	want := m60.CostPerSecond() * 0.5 * 1
	if got := c.TotalCost(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("cost = $%.9f, want $%.9f", got, want)
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("books not invariant-clean:\n%v", err)
	}
}

// Discounts outside [0,1) are clamped so billing reconciliation never sees a
// free or negatively-priced node.
func TestSpotDiscountClamped(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	if n := c.AcquireSpot(specOf(t, "M60"), 0, -0.5); n.Spot() {
		t.Fatal("negative discount produced a spot node")
	}
	if n := c.AcquireSpot(specOf(t, "M60"), 0, 1.5); n.Rate() <= 0 {
		t.Fatal("over-unity discount produced a non-positive rate")
	}
}

package cluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/hardware"
	"repro/internal/sim"
)

func specOf(t *testing.T, name string) hardware.Spec {
	t.Helper()
	hw, ok := hardware.ByName(name)
	if !ok {
		t.Fatalf("hardware %q missing", name)
	}
	return hw
}

func TestAcquireReleaseCost(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	v100 := specOf(t, "V100") // $3.06/h
	n := c.Acquire(v100, 0)
	eng.Schedule(time.Hour, func() { c.Release(n) })
	eng.Run(2 * time.Hour)
	got := c.TotalCost()
	if math.Abs(got-3.06) > 1e-6 {
		t.Fatalf("cost = $%.4f, want $3.06 (held 1h of 2h)", got)
	}
	if !n.Released() {
		t.Fatal("node not marked released")
	}
	// Double release is a no-op.
	c.Release(n)
	if math.Abs(c.TotalCost()-3.06) > 1e-6 {
		t.Fatal("double release changed cost")
	}
}

func TestCostAccruesWhileHeld(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	c.Acquire(specOf(t, "m4.xlarge"), 0) // $0.2/h, never released
	eng.Run(30 * time.Minute)
	if got := c.TotalCost(); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("cost = $%.4f, want $0.10", got)
	}
}

func TestAcquireAsyncDelaysReadiness(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	m60 := specOf(t, "M60")
	var readyAt time.Duration = -1
	var node *Node
	c.AcquireAsync(m60, 0, func(n *Node) {
		readyAt = eng.Now()
		node = n
	})
	eng.RunAll()
	if readyAt != m60.ProcureDelay {
		t.Fatalf("ready at %v, want %v", readyAt, m60.ProcureDelay)
	}
	if node.Device == nil {
		t.Fatal("ready node has no device")
	}
	// Billing starts at launch, not readiness.
	eng2 := sim.NewEngine()
	c2 := New(eng2)
	c2.AcquireAsync(m60, 0, func(n *Node) { c2.Release(n) })
	eng2.RunAll()
	wantCost := m60.CostPerSecond() * m60.ProcureDelay.Seconds()
	if got := c2.TotalCost(); math.Abs(got-wantCost) > 1e-9 {
		t.Fatalf("launch-period cost = %v, want %v", got, wantCost)
	}
}

func TestCostByKind(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	c.Acquire(specOf(t, "m4.xlarge"), 0)
	c.Acquire(specOf(t, "V100"), 0)
	eng.Run(time.Hour)
	cpu, gpu := c.CostByKind()
	if math.Abs(cpu-0.2) > 1e-9 || math.Abs(gpu-3.06) > 1e-9 {
		t.Fatalf("cost by kind = (%.2f, %.2f), want (0.20, 3.06)", cpu, gpu)
	}
}

func TestEnergyAndPower(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	m60 := specOf(t, "M60")
	n := c.Acquire(m60, 0)
	// Busy for 30 of 60 minutes.
	n.Device.Submit(&device.Job{Batch: 1, Solo: 30 * time.Minute, FBR: 0.5,
		Mode: device.Spatial, Done: func(*device.Job) {}})
	eng.Run(time.Hour)
	wantWh := m60.IdlePowerW + (m60.PeakPowerW-m60.IdlePowerW)*0.5
	if got := c.EnergyWh(); math.Abs(got-wantWh) > 0.5 {
		t.Fatalf("energy = %.1f Wh, want %.1f", got, wantWh)
	}
	if got := c.AvgPowerW(); math.Abs(got-wantWh) > 0.5 { // 1 hour: Wh == W
		t.Fatalf("avg power = %.1f W, want %.1f", got, wantWh)
	}
}

func TestUtilizationByKind(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	g := c.Acquire(specOf(t, "M60"), 0)
	c.Acquire(specOf(t, "m4.xlarge"), 0) // idle CPU node
	g.Device.Submit(&device.Job{Batch: 1, Solo: 15 * time.Minute, FBR: 0.5,
		Mode: device.Spatial, Done: func(*device.Job) {}})
	eng.Run(time.Hour)
	if got := c.Utilization(hardware.GPU); math.Abs(got-0.25) > 0.01 {
		t.Fatalf("GPU utilization = %.3f, want 0.25", got)
	}
	if got := c.Utilization(hardware.CPU); got != 0 {
		t.Fatalf("idle CPU utilization = %.3f, want 0", got)
	}
}

func TestUtilizationNoNodes(t *testing.T) {
	c := New(sim.NewEngine())
	if c.Utilization(hardware.GPU) != 0 {
		t.Fatal("utilization without nodes should be 0")
	}
}

func TestFailRecoversAfterDuration(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	n := c.Acquire(specOf(t, "M60"), 0)
	var failedJob, okJob *device.Job
	n.Device.Submit(&device.Job{Batch: 1, Solo: time.Second, FBR: 0.5,
		Mode: device.Spatial, Done: func(j *device.Job) { failedJob = j }})
	eng.Schedule(100*time.Millisecond, func() { c.Fail(n, time.Minute) })
	eng.Schedule(2*time.Minute, func() {
		n.Device.Submit(&device.Job{Batch: 1, Solo: time.Second, FBR: 0.5,
			Mode: device.Spatial, Done: func(j *device.Job) { okJob = j }})
	})
	eng.RunAll()
	if failedJob == nil || !failedJob.Failed {
		t.Fatal("in-flight job did not fail")
	}
	if okJob == nil || okJob.Failed {
		t.Fatal("device did not recover after the failure window")
	}
}

func TestActiveNodes(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	a := c.Acquire(specOf(t, "M60"), 0)
	b := c.Acquire(specOf(t, "K80"), 0)
	c.Release(a)
	active := c.ActiveNodes()
	if len(active) != 1 || active[0] != b {
		t.Fatalf("active nodes = %v", active)
	}
	if len(c.Nodes()) != 2 {
		t.Fatal("Nodes() must keep history")
	}
}

func TestNodeIDsUnique(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	seen := map[int]bool{}
	for i := 0; i < 5; i++ {
		n := c.Acquire(specOf(t, "M60"), 0)
		if seen[n.ID] {
			t.Fatal("duplicate node ID")
		}
		seen[n.ID] = true
	}
	c.AcquireAsync(specOf(t, "K80"), 0, func(n *Node) {
		if seen[n.ID] {
			t.Fatal("async node reused an ID")
		}
	})
	eng.RunAll()
}

// Package cluster manages the simulated worker-node fleet: procuring VMs
// (with launch latency, in the background, as Algorithm 1's reconfigure_HW
// does), releasing them, injecting node failures, and keeping the books the
// paper's evaluation needs — per-node-type dollar cost weighted by time held,
// energy under a linear idle-to-peak power model, and device utilization.
package cluster

import (
	"time"

	"repro/internal/device"
	"repro/internal/hardware"
	"repro/internal/invariant"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Node is one acquired worker VM.
type Node struct {
	// ID is unique within the cluster, in acquisition order.
	ID int
	// Spec is the node type.
	Spec hardware.Spec
	// Device is the node's simulated compute device.
	Device *device.Device

	acquiredAt time.Duration
	releasedAt time.Duration
	released   bool
	failUntil  time.Duration // end of the latest failure window
	discount   float64       // spot price discount in [0,1); 0 = on-demand
	revoked    bool          // revocation notice received
}

// HeldFor returns how long the node has been (or was) held.
func (n *Node) HeldFor(now time.Duration) time.Duration {
	end := now
	if n.released {
		end = n.releasedAt
	}
	return end - n.acquiredAt
}

// Released reports whether the node has been relinquished.
func (n *Node) Released() bool { return n.released }

// Rate returns the node's effective price per second: the catalog price
// reduced by the spot discount.
func (n *Node) Rate() float64 { return n.Spec.CostPerSecond() * (1 - n.discount) }

// Spot reports whether the node is a discounted, revocable spot instance.
func (n *Node) Spot() bool { return n.discount > 0 }

// Revoked reports whether the node has received a revocation notice. A
// revoked node keeps draining until the notice expires, then fails whatever
// is left and releases itself; schedulers must stop routing work to it the
// moment this turns true.
func (n *Node) Revoked() bool { return n.revoked }

// Cluster tracks every node ever acquired in one simulation run.
type Cluster struct {
	eng    *sim.Engine
	nodes  []*Node
	nextID int

	// Sink, when set, receives node lifecycle events and is propagated to
	// every device the cluster creates.
	Sink telemetry.Sink

	// Check, when set, audits the books (billing monotonicity and
	// event-reconciled cost) on every lifecycle transition and is propagated
	// to every device the cluster creates. A nil Check costs one branch per
	// transition.
	Check *invariant.Checker
}

// New returns an empty cluster bound to the engine.
func New(eng *sim.Engine) *Cluster {
	return &Cluster{eng: eng}
}

// emit sends one node lifecycle event; call sites guard Sink != nil.
func (c *Cluster) emit(kind telemetry.Kind, n *Node) {
	e := telemetry.Ev(c.eng.Now(), kind)
	e.Node = n.ID
	e.Spec = n.Spec.Name
	if n.discount > 0 {
		// Spot nodes bill below the catalog rate; carry the effective rate so
		// the invariant checker reconciles the ledger without a catalog
		// lookup. On-demand nodes leave Value/Detail zero, keeping their
		// event bytes identical to pre-spot output.
		e.Value = n.Rate()
		e.Detail = "spot"
	}
	c.Sink.Event(e)
}

// audit hands the books to the invariant checker; call sites guard
// Check != nil and call it after the lifecycle event so the checker's node
// ledger is current.
func (c *Cluster) audit() {
	c.Check.Billing(c.eng.Now(), c.TotalCost())
}

// Acquire procures a node immediately (no VM launch delay) — for nodes held
// from t=0 and for tests. maxResident caps spatial co-location on the
// device (0 = unlimited).
func (c *Cluster) Acquire(spec hardware.Spec, maxResident int) *Node {
	return c.AcquireSpot(spec, maxResident, 0)
}

// AcquireSpot is Acquire at a spot price: the node bills at the catalog rate
// reduced by discount (clamped to [0,1); 0 is plain on-demand). Spot nodes
// are the ones Revoke targets.
func (c *Cluster) AcquireSpot(spec hardware.Spec, maxResident int, discount float64) *Node {
	n := &Node{
		ID:         c.nextID,
		Spec:       spec,
		Device:     device.New(c.eng, spec, maxResident),
		acquiredAt: c.eng.Now(),
		discount:   clampDiscount(discount),
	}
	c.nextID++
	c.nodes = append(c.nodes, n)
	if c.Sink != nil {
		n.Device.SetTelemetry(c.Sink, n.ID)
		c.emit(telemetry.NodeAcquired, n)
	}
	if c.Check != nil {
		n.Device.SetCheck(c.Check, n.ID)
		c.audit()
	}
	return n
}

// AcquireAsync launches a VM of the given type; ready is invoked with the
// node once the spec's ProcureDelay elapses. Billing starts at launch (the
// provider pays for the VM from the moment it is requested). This is the
// background acquisition path of Algorithm 1: the caller keeps serving on
// its current node until ready fires.
func (c *Cluster) AcquireAsync(spec hardware.Spec, maxResident int, ready func(*Node)) {
	c.AcquireAsyncSpot(spec, maxResident, 0, ready)
}

// AcquireAsyncSpot is AcquireAsync at a spot price (see AcquireSpot). A node
// revoked or released while still launching never materializes a device and
// never invokes ready; its billing stops at release as usual.
func (c *Cluster) AcquireAsyncSpot(spec hardware.Spec, maxResident int, discount float64, ready func(*Node)) {
	n := &Node{
		ID:         c.nextID,
		Spec:       spec,
		acquiredAt: c.eng.Now(),
		discount:   clampDiscount(discount),
	}
	c.nextID++
	c.nodes = append(c.nodes, n)
	if c.Sink != nil {
		c.emit(telemetry.NodeRequested, n)
	}
	if c.Check != nil {
		c.audit()
	}
	c.eng.Schedule(spec.ProcureDelay, func() {
		if n.released {
			return
		}
		n.Device = device.New(c.eng, spec, maxResident)
		if c.Sink != nil {
			n.Device.SetTelemetry(c.Sink, n.ID)
			c.emit(telemetry.NodeAcquired, n)
		}
		if c.Check != nil {
			n.Device.SetCheck(c.Check, n.ID)
			c.audit()
		}
		ready(n)
	})
}

// Release relinquishes a node; it stops accruing cost. Releasing twice is a
// no-op.
func (c *Cluster) Release(n *Node) {
	if n.released {
		return
	}
	n.released = true
	n.releasedAt = c.eng.Now()
	if c.Sink != nil {
		c.emit(telemetry.NodeReleased, n)
	}
	if c.Check != nil {
		c.audit()
	}
}

// Fail makes the node unavailable (failing all in-flight work) for the given
// duration, then recovers it — the paper's induced node-failure scenario.
// Failing an already-failed node extends the outage to the later recovery
// time without emitting a duplicate NodeFailed event: the node recovers
// exactly once, when the latest failure window ends.
func (c *Cluster) Fail(n *Node, dur time.Duration) {
	// A node mid-cold-start has no device to fail; a released node is out of
	// the fleet; a revoked node is already on its way out and must not pick
	// up a recovery timer that would resurrect it after its release (the
	// revocation deadline, not the failure window, decides its end).
	if n.Device == nil || n.released || n.revoked {
		return
	}
	wasFailed := n.Device.Failed()
	if until := c.eng.Now() + dur; until > n.failUntil {
		n.failUntil = until
	}
	n.Device.Fail()
	if !wasFailed {
		if c.Sink != nil {
			c.emit(telemetry.NodeFailed, n)
		}
		if c.Check != nil {
			c.audit()
		}
	}
	c.eng.Schedule(dur, func() {
		// A later overlapping Fail moved the recovery time; let its own
		// timer do the recovering. A node revoked during the outage stays
		// down: its revocation deadline already released it (or is about
		// to), and recovering would resurrect a node the fleet let go.
		// (Released-but-unrevoked nodes keep the historical recovery event;
		// release froze their billing, so nothing re-bills.)
		if n.revoked || c.eng.Now() < n.failUntil || !n.Device.Failed() {
			return
		}
		n.Device.Recover()
		if c.Sink != nil {
			c.emit(telemetry.NodeRecovered, n)
		}
		if c.Check != nil {
			c.audit()
		}
	})
}

// clampDiscount bounds a spot discount to [0, 1): a full (or larger)
// discount would make nodes free and break billing reconciliation.
func clampDiscount(d float64) float64 {
	if d < 0 || d != d {
		return 0
	}
	if d >= 1 {
		return 0.99
	}
	return d
}

// Revoke delivers a spot-revocation notice: the node is marked revoked
// immediately (schedulers observe Node.Revoked and stop routing work to it,
// so in-flight jobs drain), and when the notice expires whatever is still
// running fails and the node is released. Unlike Fail, revocation is
// permanent — the node never recovers, and a failure window overlapping the
// notice cannot resurrect it. Revoking a released or already-revoked node is
// a no-op.
func (c *Cluster) Revoke(n *Node, notice time.Duration) {
	if n.released || n.revoked {
		return
	}
	n.revoked = true
	if c.Sink != nil {
		c.emit(telemetry.NodeRevoked, n)
	}
	if c.Check != nil {
		c.audit()
	}
	c.eng.Schedule(notice, func() {
		if n.released {
			return
		}
		if n.Device != nil && !n.Device.Failed() {
			// Kill the stragglers that did not drain in time. This is the
			// revocation itself, not a node failure: no NodeFailed event, so
			// failure accounting stays reconciled against injected failures.
			n.Device.Fail()
		}
		c.Release(n)
	})
}

// Nodes returns every node ever acquired, in acquisition order.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// ActiveNodes returns the currently held nodes.
func (c *Cluster) ActiveNodes() []*Node {
	var out []*Node
	for _, n := range c.nodes {
		if !n.released {
			out = append(out, n)
		}
	}
	return out
}

// TotalCost returns the dollars spent on all nodes up to now: the paper's
// "total weighted cost ... according to the time spent using each type of
// compute node".
func (c *Cluster) TotalCost() float64 {
	now := c.eng.Now()
	total := 0.0
	for _, n := range c.nodes {
		total += n.Rate() * n.HeldFor(now).Seconds()
	}
	return total
}

// CostByKind splits TotalCost between CPU and GPU nodes.
func (c *Cluster) CostByKind() (cpu, gpu float64) {
	now := c.eng.Now()
	for _, n := range c.nodes {
		cost := n.Rate() * n.HeldFor(now).Seconds()
		if n.Spec.IsGPU() {
			gpu += cost
		} else {
			cpu += cost
		}
	}
	return cpu, gpu
}

// EnergyWh returns the total energy consumed in watt-hours: each node draws
// idle power while held plus (peak-idle) scaled by device busy time. Nodes
// still in VM launch (no device yet) draw idle power.
func (c *Cluster) EnergyWh() float64 {
	now := c.eng.Now()
	joulesPerWh := 3600.0
	total := 0.0
	for _, n := range c.nodes {
		held := n.HeldFor(now).Seconds()
		total += n.Spec.IdlePowerW * held / joulesPerWh
		if n.Device != nil {
			busy := n.Device.BusyTime().Seconds()
			total += (n.Spec.PeakPowerW - n.Spec.IdlePowerW) * busy / joulesPerWh
		}
	}
	return total
}

// AvgPowerW returns mean power draw over the run so far (total energy over
// wall time) — the paper's Fig. 7b metric before normalization.
func (c *Cluster) AvgPowerW() float64 {
	now := c.eng.Now().Seconds()
	if now <= 0 {
		return 0
	}
	return c.EnergyWh() * 3600 / now
}

// HeldBySpec returns, per node-type name, the total time nodes of that type
// were held — the residency breakdown behind the weighted cost.
func (c *Cluster) HeldBySpec() map[string]time.Duration {
	now := c.eng.Now()
	out := make(map[string]time.Duration)
	for _, n := range c.nodes {
		out[n.Spec.Name] += n.HeldFor(now)
	}
	return out
}

// Utilization returns the busy-time fraction of held time, aggregated over
// all nodes of the given kind that ever got a device. It returns 0 when no
// such node exists (the paper marks these comparisons "not applicable").
func (c *Cluster) Utilization(kind hardware.Kind) float64 {
	now := c.eng.Now()
	var busy, held time.Duration
	for _, n := range c.nodes {
		if n.Spec.Kind != kind || n.Device == nil {
			continue
		}
		busy += n.Device.BusyTime()
		held += n.HeldFor(now)
	}
	if held <= 0 {
		return 0
	}
	return float64(busy) / float64(held)
}

// Package cluster manages the simulated worker-node fleet: procuring VMs
// (with launch latency, in the background, as Algorithm 1's reconfigure_HW
// does), releasing them, injecting node failures, and keeping the books the
// paper's evaluation needs — per-node-type dollar cost weighted by time held,
// energy under a linear idle-to-peak power model, and device utilization.
package cluster

import (
	"time"

	"repro/internal/device"
	"repro/internal/hardware"
	"repro/internal/invariant"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Node is one acquired worker VM.
type Node struct {
	// ID is unique within the cluster, in acquisition order.
	ID int
	// Spec is the node type.
	Spec hardware.Spec
	// Device is the node's simulated compute device.
	Device *device.Device

	acquiredAt time.Duration
	releasedAt time.Duration
	released   bool
	failUntil  time.Duration // end of the latest failure window
}

// HeldFor returns how long the node has been (or was) held.
func (n *Node) HeldFor(now time.Duration) time.Duration {
	end := now
	if n.released {
		end = n.releasedAt
	}
	return end - n.acquiredAt
}

// Released reports whether the node has been relinquished.
func (n *Node) Released() bool { return n.released }

// Cluster tracks every node ever acquired in one simulation run.
type Cluster struct {
	eng    *sim.Engine
	nodes  []*Node
	nextID int

	// Sink, when set, receives node lifecycle events and is propagated to
	// every device the cluster creates.
	Sink telemetry.Sink

	// Check, when set, audits the books (billing monotonicity and
	// event-reconciled cost) on every lifecycle transition and is propagated
	// to every device the cluster creates. A nil Check costs one branch per
	// transition.
	Check *invariant.Checker
}

// New returns an empty cluster bound to the engine.
func New(eng *sim.Engine) *Cluster {
	return &Cluster{eng: eng}
}

// emit sends one node lifecycle event; call sites guard Sink != nil.
func (c *Cluster) emit(kind telemetry.Kind, n *Node) {
	e := telemetry.Ev(c.eng.Now(), kind)
	e.Node = n.ID
	e.Spec = n.Spec.Name
	c.Sink.Event(e)
}

// audit hands the books to the invariant checker; call sites guard
// Check != nil and call it after the lifecycle event so the checker's node
// ledger is current.
func (c *Cluster) audit() {
	c.Check.Billing(c.eng.Now(), c.TotalCost())
}

// Acquire procures a node immediately (no VM launch delay) — for nodes held
// from t=0 and for tests. maxResident caps spatial co-location on the
// device (0 = unlimited).
func (c *Cluster) Acquire(spec hardware.Spec, maxResident int) *Node {
	n := &Node{
		ID:         c.nextID,
		Spec:       spec,
		Device:     device.New(c.eng, spec, maxResident),
		acquiredAt: c.eng.Now(),
	}
	c.nextID++
	c.nodes = append(c.nodes, n)
	if c.Sink != nil {
		n.Device.SetTelemetry(c.Sink, n.ID)
		c.emit(telemetry.NodeAcquired, n)
	}
	if c.Check != nil {
		n.Device.SetCheck(c.Check, n.ID)
		c.audit()
	}
	return n
}

// AcquireAsync launches a VM of the given type; ready is invoked with the
// node once the spec's ProcureDelay elapses. Billing starts at launch (the
// provider pays for the VM from the moment it is requested). This is the
// background acquisition path of Algorithm 1: the caller keeps serving on
// its current node until ready fires.
func (c *Cluster) AcquireAsync(spec hardware.Spec, maxResident int, ready func(*Node)) {
	n := &Node{
		ID:         c.nextID,
		Spec:       spec,
		acquiredAt: c.eng.Now(),
	}
	c.nextID++
	c.nodes = append(c.nodes, n)
	if c.Sink != nil {
		c.emit(telemetry.NodeRequested, n)
	}
	if c.Check != nil {
		c.audit()
	}
	c.eng.Schedule(spec.ProcureDelay, func() {
		n.Device = device.New(c.eng, spec, maxResident)
		if c.Sink != nil {
			n.Device.SetTelemetry(c.Sink, n.ID)
			c.emit(telemetry.NodeAcquired, n)
		}
		if c.Check != nil {
			n.Device.SetCheck(c.Check, n.ID)
			c.audit()
		}
		ready(n)
	})
}

// Release relinquishes a node; it stops accruing cost. Releasing twice is a
// no-op.
func (c *Cluster) Release(n *Node) {
	if n.released {
		return
	}
	n.released = true
	n.releasedAt = c.eng.Now()
	if c.Sink != nil {
		c.emit(telemetry.NodeReleased, n)
	}
	if c.Check != nil {
		c.audit()
	}
}

// Fail makes the node unavailable (failing all in-flight work) for the given
// duration, then recovers it — the paper's induced node-failure scenario.
// Failing an already-failed node extends the outage to the later recovery
// time without emitting a duplicate NodeFailed event: the node recovers
// exactly once, when the latest failure window ends.
func (c *Cluster) Fail(n *Node, dur time.Duration) {
	if n.Device == nil {
		return
	}
	wasFailed := n.Device.Failed()
	if until := c.eng.Now() + dur; until > n.failUntil {
		n.failUntil = until
	}
	n.Device.Fail()
	if !wasFailed {
		if c.Sink != nil {
			c.emit(telemetry.NodeFailed, n)
		}
		if c.Check != nil {
			c.audit()
		}
	}
	c.eng.Schedule(dur, func() {
		// A later overlapping Fail moved the recovery time; let its own
		// timer do the recovering.
		if c.eng.Now() < n.failUntil || !n.Device.Failed() {
			return
		}
		n.Device.Recover()
		if c.Sink != nil {
			c.emit(telemetry.NodeRecovered, n)
		}
		if c.Check != nil {
			c.audit()
		}
	})
}

// Nodes returns every node ever acquired, in acquisition order.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// ActiveNodes returns the currently held nodes.
func (c *Cluster) ActiveNodes() []*Node {
	var out []*Node
	for _, n := range c.nodes {
		if !n.released {
			out = append(out, n)
		}
	}
	return out
}

// TotalCost returns the dollars spent on all nodes up to now: the paper's
// "total weighted cost ... according to the time spent using each type of
// compute node".
func (c *Cluster) TotalCost() float64 {
	now := c.eng.Now()
	total := 0.0
	for _, n := range c.nodes {
		total += n.Spec.CostPerSecond() * n.HeldFor(now).Seconds()
	}
	return total
}

// CostByKind splits TotalCost between CPU and GPU nodes.
func (c *Cluster) CostByKind() (cpu, gpu float64) {
	now := c.eng.Now()
	for _, n := range c.nodes {
		cost := n.Spec.CostPerSecond() * n.HeldFor(now).Seconds()
		if n.Spec.IsGPU() {
			gpu += cost
		} else {
			cpu += cost
		}
	}
	return cpu, gpu
}

// EnergyWh returns the total energy consumed in watt-hours: each node draws
// idle power while held plus (peak-idle) scaled by device busy time. Nodes
// still in VM launch (no device yet) draw idle power.
func (c *Cluster) EnergyWh() float64 {
	now := c.eng.Now()
	joulesPerWh := 3600.0
	total := 0.0
	for _, n := range c.nodes {
		held := n.HeldFor(now).Seconds()
		total += n.Spec.IdlePowerW * held / joulesPerWh
		if n.Device != nil {
			busy := n.Device.BusyTime().Seconds()
			total += (n.Spec.PeakPowerW - n.Spec.IdlePowerW) * busy / joulesPerWh
		}
	}
	return total
}

// AvgPowerW returns mean power draw over the run so far (total energy over
// wall time) — the paper's Fig. 7b metric before normalization.
func (c *Cluster) AvgPowerW() float64 {
	now := c.eng.Now().Seconds()
	if now <= 0 {
		return 0
	}
	return c.EnergyWh() * 3600 / now
}

// HeldBySpec returns, per node-type name, the total time nodes of that type
// were held — the residency breakdown behind the weighted cost.
func (c *Cluster) HeldBySpec() map[string]time.Duration {
	now := c.eng.Now()
	out := make(map[string]time.Duration)
	for _, n := range c.nodes {
		out[n.Spec.Name] += n.HeldFor(now)
	}
	return out
}

// Utilization returns the busy-time fraction of held time, aggregated over
// all nodes of the given kind that ever got a device. It returns 0 when no
// such node exists (the paper marks these comparisons "not applicable").
func (c *Cluster) Utilization(kind hardware.Kind) float64 {
	now := c.eng.Now()
	var busy, held time.Duration
	for _, n := range c.nodes {
		if n.Spec.Kind != kind || n.Device == nil {
			continue
		}
		busy += n.Device.BusyTime()
		held += n.HeldFor(now)
	}
	if held <= 0 {
		return 0
	}
	return float64(busy) / float64(held)
}

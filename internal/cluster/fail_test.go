package cluster

import (
	"testing"
	"time"

	"repro/internal/invariant"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Table-driven edge cases for Fail: each scenario scripts failure injections
// against one node and pins the observable outcome — the NodeFailed /
// NodeRecovered event counts, the device's failed-state at probe instants,
// and invariant-cleanliness of the books throughout.
func TestFailEdgeCases(t *testing.T) {
	type probe struct {
		at     time.Duration
		failed bool
	}
	cases := []struct {
		name string
		// script schedules the failure injections (the node is acquired at
		// t=0 unless async is set).
		script                    func(eng *sim.Engine, c *Cluster, n *Node)
		async                     bool // acquire via AcquireAsync; script receives a nil node
		probes                    []probe
		wantFailed, wantRecovered int
	}{
		{
			name: "single failure recovers once",
			script: func(eng *sim.Engine, c *Cluster, n *Node) {
				eng.Schedule(0, func() { c.Fail(n, 10*time.Second) })
			},
			probes: []probe{
				{5 * time.Second, true},
				{11 * time.Second, false},
			},
			wantFailed: 1, wantRecovered: 1,
		},
		{
			name: "overlapping failure extends the outage",
			script: func(eng *sim.Engine, c *Cluster, n *Node) {
				eng.Schedule(0, func() { c.Fail(n, 10*time.Second) })
				eng.Schedule(5*time.Second, func() { c.Fail(n, 10*time.Second) })
			},
			probes: []probe{
				{9 * time.Second, true},
				// The first window's timer fires at t=10; the extension must
				// keep the node down until t=15.
				{12 * time.Second, true},
				{16 * time.Second, false},
			},
			wantFailed: 1, wantRecovered: 1,
		},
		{
			name: "shorter overlapping failure never hastens recovery",
			script: func(eng *sim.Engine, c *Cluster, n *Node) {
				eng.Schedule(0, func() { c.Fail(n, 10*time.Second) })
				eng.Schedule(5*time.Second, func() { c.Fail(n, 2*time.Second) })
			},
			probes: []probe{
				// The second injection's timer fires at t=7; the node stays
				// down until the first window's t=10.
				{8 * time.Second, true},
				{11 * time.Second, false},
			},
			wantFailed: 1, wantRecovered: 1,
		},
		{
			name: "back-to-back failures are two full outages",
			script: func(eng *sim.Engine, c *Cluster, n *Node) {
				eng.Schedule(0, func() { c.Fail(n, 5*time.Second) })
				eng.Schedule(20*time.Second, func() { c.Fail(n, 5*time.Second) })
			},
			probes: []probe{
				{3 * time.Second, true},
				{10 * time.Second, false},
				{22 * time.Second, true},
				{30 * time.Second, false},
			},
			wantFailed: 2, wantRecovered: 2,
		},
		{
			name: "refail at the recovery instant merges the outages",
			// This closure was scheduled before the recovery timer existed,
			// so at t=10 it runs first (earlier sequence number): the node is
			// still down, the windows merge, and exactly one recovery fires —
			// at t=20.
			script: func(eng *sim.Engine, c *Cluster, n *Node) {
				eng.Schedule(0, func() { c.Fail(n, 10*time.Second) })
				eng.Schedule(10*time.Second, func() { c.Fail(n, 10*time.Second) })
			},
			probes: []probe{
				{5 * time.Second, true},
				{15 * time.Second, true},
				{21 * time.Second, false},
			},
			wantFailed: 1, wantRecovered: 1,
		},
		{
			name: "recovery then immediate refail",
			script: func(eng *sim.Engine, c *Cluster, n *Node) {
				eng.Schedule(0, func() { c.Fail(n, 10*time.Second) })
				// 1 ms after recovery: a genuinely new outage.
				eng.Schedule(10*time.Second+time.Millisecond, func() { c.Fail(n, 10*time.Second) })
			},
			probes: []probe{
				{5 * time.Second, true},
				{15 * time.Second, true},
				{21 * time.Second, false},
			},
			wantFailed: 2, wantRecovered: 2,
		},
		{
			name: "failure during VM launch is a no-op",
			// M60's ProcureDelay is well over a second: at t=0 the node
			// exists but has no device yet.
			async: true,
			script: func(eng *sim.Engine, c *Cluster, n *Node) {
				// The launching node is already in the books, device-less.
				eng.Schedule(0, func() { c.Fail(c.Nodes()[0], 10*time.Second) })
			},
			wantFailed: 0, wantRecovered: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine()
			c := New(eng)
			rec := telemetry.NewRecorder()
			chk := invariant.New()
			// The checker reconciles billing against node lifecycle events,
			// so it listens on the bus as well as auditing the books.
			c.Sink, c.Check = telemetry.Combine(rec, chk.AsSink()), chk
			eng.SetOnFire(chk.Tick)
			var n *Node
			if tc.async {
				c.AcquireAsync(specOf(t, "M60"), 0, func(ready *Node) { n = ready })
			} else {
				n = c.Acquire(specOf(t, "M60"), 0)
			}
			tc.script(eng, c, n)
			for _, p := range tc.probes {
				p := p
				eng.Schedule(p.at, func() {
					if got := n.Device.Failed(); got != p.failed {
						t.Errorf("at %v: Failed() = %v, want %v", p.at, got, p.failed)
					}
				})
			}
			eng.RunAll()
			failed, recovered := 0, 0
			for _, e := range rec.Events() {
				switch e.Kind {
				case telemetry.NodeFailed:
					failed++
				case telemetry.NodeRecovered:
					recovered++
				}
			}
			if failed != tc.wantFailed || recovered != tc.wantRecovered {
				t.Errorf("saw %d NodeFailed / %d NodeRecovered, want %d / %d",
					failed, recovered, tc.wantFailed, tc.wantRecovered)
			}
			if tc.async && n != nil && n.Device.Failed() {
				t.Error("pre-launch failure leaked into the ready device")
			}
			if err := chk.Err(); err != nil {
				t.Errorf("books not invariant-clean:\n%v", err)
			}
		})
	}
}

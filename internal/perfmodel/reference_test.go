package perfmodel

// The pre-optimization goroutine fan-out of BestY, retained verbatim as a
// test oracle: the serial probe must return exactly the same (y, tmax, ok)
// on every input. It lives in a test file so no goroutine can ever reach the
// scheduling hot path from this package (the production tree is grepped for
// goroutine launches in CI).

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/profile"
)

// penaltyTableFor mirrors how profile builds Entry.PenaltyByJobs, so the
// tests can assert the memoized contention path changes nothing.
func penaltyTableFor(fbr float64) []float64 {
	t := make([]float64, profile.MPSMaxClients+1)
	for k := range t {
		t[k] = profile.Penalty(float64(k) * fbr)
	}
	return t
}

// probeParallelism bounds the worker goroutines of the reference probe, as
// in the original implementation.
const probeParallelism = 4

// probeRange evaluates TMax for cands[lo:hi] into results.
func probeRange(in Inputs, cands []int, results []time.Duration, lo, hi int, wg *sync.WaitGroup) {
	defer wg.Done()
	for i := lo; i < hi; i++ {
		results[i] = TMax(in, cands[i])
	}
}

// bestYParallelReference is the original BestY: materialize Candidates,
// probe them on a fixed goroutine fan-out, scan for the minimum with the
// smallest-y tie-break.
func bestYParallelReference(in Inputs) (y int, tmax time.Duration, ok bool) {
	cands := Candidates(in)
	if len(cands) == 0 {
		return 0, 0, true
	}
	results := make([]time.Duration, len(cands))
	var wg sync.WaitGroup
	stride := (len(cands) + probeParallelism - 1) / probeParallelism
	for w := 0; w < len(cands); w += stride {
		lo, hi := w, w+stride
		if hi > len(cands) {
			hi = len(cands)
		}
		wg.Add(1)
		go probeRange(in, cands, results, lo, hi, &wg)
	}
	wg.Wait()

	bestI := 0
	for i := 1; i < len(cands); i++ {
		if results[i] < results[bestI] ||
			(results[i] == results[bestI] && cands[i] < cands[bestI]) {
			bestI = i
		}
	}
	return cands[bestI], results[bestI], results[bestI] <= in.SLO
}

// assertProbesAgree fails unless the serial probe and the parallel reference
// return identical results for in.
func assertProbesAgree(t *testing.T, in Inputs) {
	t.Helper()
	y, tmax, ok := BestY(in)
	ry, rtmax, rok := bestYParallelReference(in)
	if y != ry || tmax != rtmax || ok != rok {
		t.Fatalf("serial probe (y=%d tmax=%v ok=%v) != parallel reference (y=%d tmax=%v ok=%v) for %+v",
			y, tmax, ok, ry, rtmax, rok, in)
	}
	inMemo := in
	inMemo.PenaltyByJobs = penaltyTableFor(in.FBR)
	if my, mtmax, mok := BestY(inMemo); my != y || mtmax != tmax || mok != ok {
		t.Fatalf("memoized probe (y=%d tmax=%v ok=%v) != direct probe (y=%d tmax=%v ok=%v) for %+v",
			my, mtmax, mok, y, tmax, ok, in)
	}
}

// TestSerialProbeMatchesReferenceDegenerate pins the edge cases the
// randomized sweep may miss: empty and single-request loads, exact batch
// multiples, and off-by-one grid heads.
func TestSerialProbeMatchesReferenceDegenerate(t *testing.T) {
	base := Inputs{Solo: 100 * time.Millisecond, BatchSize: 64, FBR: 0.5, SLO: 200 * time.Millisecond}
	for _, n := range []int{0, 1, 2, 63, 64, 65, 127, 128, 129, 640, 641} {
		in := base
		in.N = n
		assertProbesAgree(t, in)
	}
	// BatchSize 1: the grid has N+1 points.
	in := base
	in.BatchSize, in.N = 1, 40
	assertProbesAgree(t, in)
}

// TestSerialProbeMatchesReferenceRandomized sweeps randomized Inputs —
// including zero ExistingLane, saturated and unsaturated demand, busy and
// idle devices — asserting exact (y, tmax, ok) equality against the retained
// goroutine reference.
func TestSerialProbeMatchesReferenceRandomized(t *testing.T) {
	f := func(nRaw, bsRaw uint16, fbrRaw, existRaw, computeRaw, jobsRaw, laneRaw uint8, saturated, idle bool) bool {
		in := Inputs{
			Solo:            time.Duration(50+int(nRaw%150)) * time.Millisecond,
			BatchSize:       int(bsRaw%128) + 1,
			FBR:             float64(fbrRaw)/100 + 0.05, // unsaturated by default...
			N:               int(nRaw % 3000),
			SLO:             300 * time.Millisecond,
			ExistingDemand:  float64(existRaw) / 64,
			ExistingCompute: float64(computeRaw) / 128,
			ExistingJobs:    int(jobsRaw % 8),
			ExistingLane:    time.Duration(laneRaw) * time.Millisecond, // zero when laneRaw is 0
		}
		if saturated { // ...and pushed past device bandwidth half the time
			in.FBR += 1.0
		}
		if idle { // half the probes target an idle device — the memo's fast path
			in.ExistingDemand = 0
		}
		y, tmax, ok := BestY(in)
		ry, rtmax, rok := bestYParallelReference(in)
		if y != ry || tmax != rtmax || ok != rok {
			return false
		}
		inMemo := in
		inMemo.PenaltyByJobs = penaltyTableFor(in.FBR)
		my, mtmax, mok := BestY(inMemo)
		return my == y && mtmax == tmax && mok == ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

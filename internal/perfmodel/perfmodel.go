// Package perfmodel implements the paper's Section III model of queueing and
// interference overheads — Equation (1) — and the probing machinery that
// finds the best number of requests y to time-share (queue) versus
// spatially share (run concurrently via MPS) on a GPU.
//
// For N_M outstanding requests of model M with batch size BS_M, profiled
// solo latency Solo_M and fractional bandwidth requirement FBR_M, queueing
// y of them and running the rest concurrently yields a worst-case latency
//
//	T_max = Solo_M * y/BS_M                      (queued portion)
//	      + Solo_M * I(existing + k*FBR_M)       (spatially shared portion)
//
// where k = ceil((N_M - y)/BS_M) is the number of co-located batch jobs and
// I is the interference inflation of the co-located portion. The paper uses
// the linear Prophet-derived form I(D) = D (valid only when the spatial
// portion saturates the device, constraint (ii)); this reproduction uses the
// same contention curve the simulated device exhibits,
// I(D) = Penalty(D)/Penalty(FBR_M) with Penalty(D) = max(1, D)^alpha, which
// plays the role of the paper's profiled interference model (their reported
// prediction error is <4%). The queued-portion term Solo_M*y/BS_M is the
// paper's approximation verbatim.
//
// The scheduler wants the y minimizing T_max subject to the constraints in
// Section III: 0 <= y < N (there must be requests left to run), and the
// interference term is only meaningful when the spatial portion exceeds the
// device's bandwidth (below saturation there is simply no interference).
package perfmodel

import (
	"math"
	"time"

	"repro/internal/profile"
)

// Inputs bundles the known quantities of Equation (1). All of them are
// either carried by the arrived requests (N, BatchSize, SLO) or come from
// the profiling tables (Solo, FBR) — exactly the paper's split.
type Inputs struct {
	// Solo is Solo_M: the profiled isolated latency of one full batch.
	Solo time.Duration
	// BatchSize is BS_M.
	BatchSize int
	// FBR is FBR_M on the device under consideration.
	FBR float64
	// N is N_M: the number of outstanding/predicted requests.
	N int
	// SLO is the per-request latency target.
	SLO time.Duration
	// ExistingDemand is the aggregate FBR of jobs already executing on the
	// device; 0 when planning for an idle device.
	ExistingDemand float64
	// ComputeFrac is the compute occupancy of one full batch job
	// (profile.ComputeFraction); 0 treats compute as uncontended.
	ComputeFrac float64
	// ExistingCompute is the aggregate compute occupancy already executing.
	ExistingCompute float64
	// ExistingJobs is the number of jobs already executing (for the MPS
	// per-client overhead).
	ExistingJobs int
	// ExistingLane is the solo-equivalent backlog already in the
	// time-sharing lane; newly queued requests wait behind it.
	ExistingLane time.Duration
	// PenaltyByJobs, when non-nil, memoizes profile.Penalty(k*FBR) for k
	// co-located batch jobs of this workload (profile.Entry.PenaltyByJobs).
	// TMax consults it instead of the Pow-based contention curve whenever
	// the device has no existing bandwidth demand — the common case when
	// probing idle hardware — and falls back to profile.Slowdown otherwise.
	// Optional: nil keeps the direct computation; results are bit-identical
	// either way.
	PenaltyByJobs []float64
}

// Batches returns the number of batch jobs needed for n requests.
func (in Inputs) Batches(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + in.BatchSize - 1) / in.BatchSize
}

// TMax evaluates Equation (1) for a given y: the predicted completion time
// of the last-finishing request when y requests are queued and N-y run
// spatially. It panics if the inputs are malformed (non-positive batch size
// or solo latency) — those indicate a profiling bug, not a scheduling
// decision.
func TMax(in Inputs, y int) time.Duration {
	return tmaxAt(&in, y)
}

// tmaxAt is TMax on a pointer receiver: BestY evaluates it once per grid
// point, and passing the 100+-byte Inputs by value per candidate showed up
// as pure copy overhead in profiles.
func tmaxAt(in *Inputs, y int) time.Duration {
	if in.BatchSize <= 0 || in.Solo <= 0 {
		panic("perfmodel: malformed Inputs")
	}
	if y < 0 {
		y = 0
	}
	if y > in.N {
		y = in.N
	}
	spatialReqs := in.N - y
	var spatial time.Duration
	if spatialReqs > 0 {
		k := (spatialReqs + in.BatchSize - 1) / in.BatchSize // Batches, without re-copying in
		var inflation float64
		if in.ExistingDemand == 0 && k < len(in.PenaltyByJobs) {
			// Memoized Penalty(k*FBR)/Penalty(1*FBR): bit-identical to the
			// Slowdown call below when nothing else demands bandwidth
			// (0 + k*FBR == k*FBR exactly), minus the math.Pow calls.
			inflation = in.PenaltyByJobs[k] / in.PenaltyByJobs[1]
			if inflation < 1 {
				inflation = 1
			}
		} else {
			demand := in.ExistingDemand + float64(k)*in.FBR
			inflation = profile.Slowdown(demand, in.FBR)
		}
		// Co-located saturating kernels split the device's compute units;
		// the binding bottleneck inflates execution.
		if c := in.ExistingCompute + float64(k)*in.ComputeFrac; c > 1 && c > inflation {
			inflation = c
		}
		// Every co-resident MPS client adds partition overhead.
		inflation *= profile.ClientOverhead(in.ExistingJobs + k)
		// Partial batches run proportionally faster, mirroring the queued
		// term's fractional approximation.
		fill := float64(spatialReqs) / float64(k*in.BatchSize)
		spatial = time.Duration(float64(in.Solo) * fill * inflation)
	}
	queued := time.Duration(float64(in.Solo) * float64(y) / float64(in.BatchSize))
	if y > 0 {
		queued += in.ExistingLane // queued requests wait behind the lane
	}
	return queued + spatial
}

// Candidates returns the y values worth probing: the batch-quantized grid
// (queue everything except k full spatial batches, for every feasible k)
// plus the two extremes y=0 (all spatial — the INFless/Llama policy) and
// y=N-1/y=N handled by the k=0 entry. Between grid points T_max is linear
// in y with positive slope, so the minimum always sits on this grid.
//
// BestY walks the same grid without materializing it; Candidates is retained
// for tests, reports and the parallel reference implementation.
func Candidates(in Inputs) []int {
	if in.N <= 0 {
		return nil
	}
	kMax := in.Batches(in.N)
	ys := make([]int, 0, kMax+1)
	seen := make(map[int]bool, kMax+1)
	for k := kMax; k >= 0; k-- {
		y := in.N - k*in.BatchSize
		if y < 0 {
			y = 0
		}
		if !seen[y] {
			seen[y] = true
			ys = append(ys, y)
		}
	}
	return ys
}

// BestY probes the candidate y values and returns the one minimizing T_max,
// the corresponding T_max, and whether that minimum meets the SLO. ok=false
// is the signal to reattempt on the next more performant GPU (Section III:
// "For cases where a suitable y value does not exist..."). Ties prefer
// smaller y (less queueing, fresher results under surges).
//
// The probe walks the batch-quantized k-grid serially and in place: one
// TMax evaluation is ~20 ns of arithmetic, so any fan-out (the paper
// multi-threads its probing on the real control plane and reports <3 ms)
// costs more in goroutine spawn than it saves. The grid is visited in
// ascending y — exactly Candidates' order — so the strict < comparison
// keeps the smallest y on ties, and the result is provably identical to
// probing the materialized candidate list (the test-only parallel reference
// in reference_test.go asserts it). The walk allocates nothing, which is
// what lets the monitor loop call it for every GPU candidate every tick.
func BestY(in Inputs) (y int, tmax time.Duration, ok bool) {
	if in.N <= 0 {
		return 0, 0, true
	}
	best := time.Duration(math.MaxInt64)
	bestY := 0
	prevY := -1
	for k := in.Batches(in.N); k >= 0; k-- {
		yc := in.N - k*in.BatchSize
		if yc < 0 {
			yc = 0
		}
		if yc == prevY { // the clamped head of the grid repeats y=0
			continue
		}
		prevY = yc
		if t := tmaxAt(&in, yc); t < best {
			best, bestY = t, yc
		}
	}
	return bestY, best, best <= in.SLO
}

// SpatialSaturated reports the paper's constraint (ii): whether running
// n spatial requests (in k batch jobs) would saturate the device, i.e.
// whether the interference term of Eq. (1) is in its validity region.
func SpatialSaturated(in Inputs, spatialReqs int) bool {
	k := in.Batches(spatialReqs)
	return in.ExistingDemand+float64(k)*in.FBR > 1
}

// ApproxCPUTMax approximates the worst-case latency of serving n requests on
// a CPU node (Algorithm 1's approx_T_max for HW.type == CPU): the node's
// existing backlog plus the serial execution of the new batches.
func ApproxCPUTMax(solo time.Duration, batchSize, n int, backlog time.Duration) time.Duration {
	if n <= 0 {
		return backlog
	}
	if batchSize <= 0 {
		batchSize = 1
	}
	batches := (n + batchSize - 1) / batchSize
	return backlog + time.Duration(batches)*solo
}

// InterferenceInflation exposes the model's interference curve: the factor
// by which co-location inflates the spatial portion at aggregate demand d
// for a job with the given FBR. Used by reports and ablation benchmarks.
func InterferenceInflation(d, fbr float64) float64 {
	return profile.Slowdown(d, fbr)
}

// LinearTMax evaluates the paper's literal linear Eq. (1) (interference term
// Solo * (k*FBR), valid only above saturation). It is retained for the
// model-fidelity ablation: comparing the linear form against the profiled
// contention curve used everywhere else.
func LinearTMax(in Inputs, y int) time.Duration {
	if y < 0 {
		y = 0
	}
	if y > in.N {
		y = in.N
	}
	spatialReqs := in.N - y
	var spatial float64
	if spatialReqs > 0 {
		factor := in.ExistingDemand + float64(spatialReqs)/float64(in.BatchSize)*in.FBR
		spatial = float64(in.Solo) * math.Max(1, factor)
	}
	queued := float64(in.Solo) * float64(y) / float64(in.BatchSize)
	return time.Duration(queued + spatial)
}

// Package perfmodel implements the paper's Section III model of queueing and
// interference overheads — Equation (1) — and the probing machinery that
// finds the best number of requests y to time-share (queue) versus
// spatially share (run concurrently via MPS) on a GPU.
//
// For N_M outstanding requests of model M with batch size BS_M, profiled
// solo latency Solo_M and fractional bandwidth requirement FBR_M, queueing
// y of them and running the rest concurrently yields a worst-case latency
//
//	T_max = Solo_M * y/BS_M                      (queued portion)
//	      + Solo_M * I(existing + k*FBR_M)       (spatially shared portion)
//
// where k = ceil((N_M - y)/BS_M) is the number of co-located batch jobs and
// I is the interference inflation of the co-located portion. The paper uses
// the linear Prophet-derived form I(D) = D (valid only when the spatial
// portion saturates the device, constraint (ii)); this reproduction uses the
// same contention curve the simulated device exhibits,
// I(D) = Penalty(D)/Penalty(FBR_M) with Penalty(D) = max(1, D)^alpha, which
// plays the role of the paper's profiled interference model (their reported
// prediction error is <4%). The queued-portion term Solo_M*y/BS_M is the
// paper's approximation verbatim.
//
// The scheduler wants the y minimizing T_max subject to the constraints in
// Section III: 0 <= y < N (there must be requests left to run), and the
// interference term is only meaningful when the spatial portion exceeds the
// device's bandwidth (below saturation there is simply no interference).
package perfmodel

import (
	"math"
	"sync"
	"time"

	"repro/internal/profile"
)

// Inputs bundles the known quantities of Equation (1). All of them are
// either carried by the arrived requests (N, BatchSize, SLO) or come from
// the profiling tables (Solo, FBR) — exactly the paper's split.
type Inputs struct {
	// Solo is Solo_M: the profiled isolated latency of one full batch.
	Solo time.Duration
	// BatchSize is BS_M.
	BatchSize int
	// FBR is FBR_M on the device under consideration.
	FBR float64
	// N is N_M: the number of outstanding/predicted requests.
	N int
	// SLO is the per-request latency target.
	SLO time.Duration
	// ExistingDemand is the aggregate FBR of jobs already executing on the
	// device; 0 when planning for an idle device.
	ExistingDemand float64
	// ComputeFrac is the compute occupancy of one full batch job
	// (profile.ComputeFraction); 0 treats compute as uncontended.
	ComputeFrac float64
	// ExistingCompute is the aggregate compute occupancy already executing.
	ExistingCompute float64
	// ExistingJobs is the number of jobs already executing (for the MPS
	// per-client overhead).
	ExistingJobs int
	// ExistingLane is the solo-equivalent backlog already in the
	// time-sharing lane; newly queued requests wait behind it.
	ExistingLane time.Duration
}

// Batches returns the number of batch jobs needed for n requests.
func (in Inputs) Batches(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + in.BatchSize - 1) / in.BatchSize
}

// TMax evaluates Equation (1) for a given y: the predicted completion time
// of the last-finishing request when y requests are queued and N-y run
// spatially. It panics if the inputs are malformed (non-positive batch size
// or solo latency) — those indicate a profiling bug, not a scheduling
// decision.
func TMax(in Inputs, y int) time.Duration {
	if in.BatchSize <= 0 || in.Solo <= 0 {
		panic("perfmodel: malformed Inputs")
	}
	if y < 0 {
		y = 0
	}
	if y > in.N {
		y = in.N
	}
	spatialReqs := in.N - y
	var spatial time.Duration
	if spatialReqs > 0 {
		k := in.Batches(spatialReqs)
		demand := in.ExistingDemand + float64(k)*in.FBR
		inflation := profile.Slowdown(demand, in.FBR)
		// Co-located saturating kernels split the device's compute units;
		// the binding bottleneck inflates execution.
		if c := in.ExistingCompute + float64(k)*in.ComputeFrac; c > 1 && c > inflation {
			inflation = c
		}
		// Every co-resident MPS client adds partition overhead.
		inflation *= profile.ClientOverhead(in.ExistingJobs + k)
		// Partial batches run proportionally faster, mirroring the queued
		// term's fractional approximation.
		fill := float64(spatialReqs) / float64(k*in.BatchSize)
		spatial = time.Duration(float64(in.Solo) * fill * inflation)
	}
	queued := time.Duration(float64(in.Solo) * float64(y) / float64(in.BatchSize))
	if y > 0 {
		queued += in.ExistingLane // queued requests wait behind the lane
	}
	return queued + spatial
}

// Candidates returns the y values worth probing: the batch-quantized grid
// (queue everything except k full spatial batches, for every feasible k)
// plus the two extremes y=0 (all spatial — the INFless/Llama policy) and
// y=N-1/y=N handled by the k=0 entry. Between grid points T_max is linear
// in y with positive slope, so the minimum always sits on this grid.
func Candidates(in Inputs) []int {
	if in.N <= 0 {
		return nil
	}
	kMax := in.Batches(in.N)
	ys := make([]int, 0, kMax+1)
	seen := make(map[int]bool, kMax+1)
	for k := kMax; k >= 0; k-- {
		y := in.N - k*in.BatchSize
		if y < 0 {
			y = 0
		}
		if !seen[y] {
			seen[y] = true
			ys = append(ys, y)
		}
	}
	return ys
}

// probeParallelism bounds the worker goroutines of BestY. The paper probes
// y values with multi-threading and reports <3 ms overhead; a small fixed
// fan-out keeps that spirit without oversubscribing the host.
const probeParallelism = 4

// BestY probes the candidate y values in parallel and returns the one
// minimizing T_max, the corresponding T_max, and whether that minimum meets
// the SLO. ok=false is the signal to reattempt on the next more performant
// GPU (Section III: "For cases where a suitable y value does not exist...").
// Ties prefer smaller y (less queueing, fresher results under surges).
func BestY(in Inputs) (y int, tmax time.Duration, ok bool) {
	cands := Candidates(in)
	if len(cands) == 0 {
		return 0, 0, true
	}
	results := make([]time.Duration, len(cands))
	var wg sync.WaitGroup
	stride := (len(cands) + probeParallelism - 1) / probeParallelism
	for w := 0; w < len(cands); w += stride {
		lo, hi := w, w+stride
		if hi > len(cands) {
			hi = len(cands)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				results[i] = TMax(in, cands[i])
			}
		}(lo, hi)
	}
	wg.Wait()

	bestI := 0
	for i := 1; i < len(cands); i++ {
		if results[i] < results[bestI] ||
			(results[i] == results[bestI] && cands[i] < cands[bestI]) {
			bestI = i
		}
	}
	return cands[bestI], results[bestI], results[bestI] <= in.SLO
}

// SpatialSaturated reports the paper's constraint (ii): whether running
// n spatial requests (in k batch jobs) would saturate the device, i.e.
// whether the interference term of Eq. (1) is in its validity region.
func SpatialSaturated(in Inputs, spatialReqs int) bool {
	k := in.Batches(spatialReqs)
	return in.ExistingDemand+float64(k)*in.FBR > 1
}

// ApproxCPUTMax approximates the worst-case latency of serving n requests on
// a CPU node (Algorithm 1's approx_T_max for HW.type == CPU): the node's
// existing backlog plus the serial execution of the new batches.
func ApproxCPUTMax(solo time.Duration, batchSize, n int, backlog time.Duration) time.Duration {
	if n <= 0 {
		return backlog
	}
	if batchSize <= 0 {
		batchSize = 1
	}
	batches := (n + batchSize - 1) / batchSize
	return backlog + time.Duration(batches)*solo
}

// InterferenceInflation exposes the model's interference curve: the factor
// by which co-location inflates the spatial portion at aggregate demand d
// for a job with the given FBR. Used by reports and ablation benchmarks.
func InterferenceInflation(d, fbr float64) float64 {
	return profile.Slowdown(d, fbr)
}

// LinearTMax evaluates the paper's literal linear Eq. (1) (interference term
// Solo * (k*FBR), valid only above saturation). It is retained for the
// model-fidelity ablation: comparing the linear form against the profiled
// contention curve used everywhere else.
func LinearTMax(in Inputs, y int) time.Duration {
	if y < 0 {
		y = 0
	}
	if y > in.N {
		y = in.N
	}
	spatialReqs := in.N - y
	var spatial float64
	if spatialReqs > 0 {
		factor := in.ExistingDemand + float64(spatialReqs)/float64(in.BatchSize)*in.FBR
		spatial = float64(in.Solo) * math.Max(1, factor)
	}
	queued := float64(in.Solo) * float64(y) / float64(in.BatchSize)
	return time.Duration(queued + spatial)
}

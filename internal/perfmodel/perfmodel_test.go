package perfmodel

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/profile"
)

func baseInputs() Inputs {
	return Inputs{
		Solo:      100 * time.Millisecond,
		BatchSize: 64,
		FBR:       0.5,
		N:         256,
		SLO:       200 * time.Millisecond,
	}
}

func TestTMaxAllQueued(t *testing.T) {
	in := baseInputs()
	// y = N: pure time sharing, T_max = Solo * N/BS = 100ms * 4 = 400ms.
	got := TMax(in, in.N)
	want := 400 * time.Millisecond
	if got != want {
		t.Fatalf("TMax(all queued) = %v, want %v", got, want)
	}
}

func TestTMaxAllSpatial(t *testing.T) {
	in := baseInputs()
	// y = 0: 4 batches co-located, D = 2.0, inflation = P(2)/P(0.5) times
	// the 4-client MPS overhead.
	got := TMax(in, 0)
	want := time.Duration(float64(100*time.Millisecond) *
		profile.Slowdown(2, 0.5) * profile.ClientOverhead(4))
	if d := got - want; d > time.Microsecond || d < -time.Microsecond {
		t.Fatalf("TMax(all spatial) = %v, want %v", got, want)
	}
}

func TestTMaxHybridBeatsExtremesWhenSaturating(t *testing.T) {
	// With a high FBR and several batches, some interior y must beat both
	// pure spatial and pure time sharing — the core of Insight 2.
	in := Inputs{
		Solo:      100 * time.Millisecond,
		BatchSize: 64,
		FBR:       0.5,
		N:         64 * 10,
		SLO:       2 * time.Second,
	}
	allSpatial := TMax(in, 0)
	allQueued := TMax(in, in.N)
	y, best, _ := BestY(in)
	if !(best < allSpatial && best < allQueued) {
		t.Fatalf("hybrid best %v (y=%d) does not beat spatial %v and queued %v",
			best, y, allSpatial, allQueued)
	}
	if y == 0 || y == in.N {
		t.Fatalf("best y = %d is an extreme; want interior", y)
	}
}

func TestAllSpatialOptimalWhenLightlyLoaded(t *testing.T) {
	// Two low-FBR batches don't saturate: no interference, so any queueing
	// only adds latency and BestY must return y=0.
	in := Inputs{
		Solo:      100 * time.Millisecond,
		BatchSize: 64,
		FBR:       0.3,
		N:         128,
		SLO:       200 * time.Millisecond,
	}
	y, tmax, ok := BestY(in)
	if y != 0 {
		t.Fatalf("BestY = %d, want 0 (no saturation, no reason to queue)", y)
	}
	want := time.Duration(float64(in.Solo) * profile.ClientOverhead(2))
	if tmax != want {
		t.Fatalf("tmax = %v, want %v (solo + 2-client overhead)", tmax, want)
	}
	if !ok {
		t.Fatal("ok = false within SLO")
	}
}

func TestBestYInfeasibleSignalsEscalation(t *testing.T) {
	// A flood no split can serve within the SLO: ok must be false, telling
	// the Hardware Selection module to try the next more performant GPU.
	in := Inputs{
		Solo:      150 * time.Millisecond,
		BatchSize: 64,
		FBR:       0.9,
		N:         64 * 40,
		SLO:       200 * time.Millisecond,
	}
	_, tmax, ok := BestY(in)
	if ok {
		t.Fatalf("ok = true with tmax %v for an impossible load", tmax)
	}
	if tmax <= in.SLO {
		t.Fatalf("tmax = %v <= SLO", tmax)
	}
}

func TestExistingDemandShiftsBestY(t *testing.T) {
	// A busy device (high existing demand) should push the optimizer to
	// queue more than it would on an idle one.
	idle := Inputs{Solo: 100 * time.Millisecond, BatchSize: 64, FBR: 0.8, N: 256, SLO: time.Second}
	busy := idle
	busy.ExistingDemand = 2.0
	yIdle, _, _ := BestY(idle)
	yBusy, _, _ := BestY(busy)
	if yBusy < yIdle {
		t.Fatalf("busy device queues less (y=%d) than idle (y=%d)", yBusy, yIdle)
	}
}

func TestTMaxClampsY(t *testing.T) {
	in := baseInputs()
	if TMax(in, -5) != TMax(in, 0) {
		t.Fatal("negative y not clamped")
	}
	if TMax(in, in.N+100) != TMax(in, in.N) {
		t.Fatal("y > N not clamped")
	}
}

func TestTMaxPanicsOnMalformedInputs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero batch size")
		}
	}()
	TMax(Inputs{Solo: time.Millisecond, BatchSize: 0, N: 1}, 0)
}

func TestCandidates(t *testing.T) {
	in := baseInputs() // N=256, BS=64 -> k=4..0 -> y ascending {0,64,128,192,256}
	got := Candidates(in)
	want := []int{0, 64, 128, 192, 256}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}

func TestCandidatesPartialBatch(t *testing.T) {
	in := Inputs{Solo: time.Millisecond, BatchSize: 64, N: 100, SLO: time.Second}
	got := Candidates(in)
	// k=2 -> y=0 (clamped from -28), k=1 -> y=36, k=0 -> y=100.
	want := []int{0, 36, 100}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}

func TestCandidatesEmpty(t *testing.T) {
	if c := Candidates(Inputs{BatchSize: 64, N: 0}); c != nil {
		t.Fatalf("candidates for N=0 = %v, want nil", c)
	}
}

func TestSpatialSaturated(t *testing.T) {
	in := Inputs{BatchSize: 64, FBR: 0.4}
	if SpatialSaturated(in, 64) {
		t.Fatal("one 0.4-FBR batch reported saturated")
	}
	if !SpatialSaturated(in, 64*3) {
		t.Fatal("three 0.4-FBR batches (D=1.2) reported unsaturated")
	}
	in.ExistingDemand = 0.9
	if !SpatialSaturated(in, 64) {
		t.Fatal("existing demand ignored")
	}
}

func TestApproxCPUTMax(t *testing.T) {
	got := ApproxCPUTMax(100*time.Millisecond, 16, 40, 30*time.Millisecond)
	want := 30*time.Millisecond + 3*100*time.Millisecond // 3 batches
	if got != want {
		t.Fatalf("ApproxCPUTMax = %v, want %v", got, want)
	}
	if ApproxCPUTMax(time.Second, 16, 0, 7*time.Millisecond) != 7*time.Millisecond {
		t.Fatal("n=0 should return backlog")
	}
}

func TestLinearTMaxMatchesPaperForm(t *testing.T) {
	in := Inputs{Solo: 100 * time.Millisecond, BatchSize: 64, FBR: 0.5, N: 256, SLO: time.Second}
	// y=128: queued 128/64*100 = 200ms; spatial (128/64)*0.5 = 1.0 -> 100ms.
	got := LinearTMax(in, 128)
	want := 300 * time.Millisecond
	if d := got - want; d > time.Microsecond || d < -time.Microsecond {
		t.Fatalf("LinearTMax = %v, want %v", got, want)
	}
}

// Property: BestY's result is never worse than any probed candidate and is
// always within [0, N].
func TestBestYOptimalProperty(t *testing.T) {
	f := func(nRaw, bsRaw uint16, fbrRaw uint8, existRaw uint8) bool {
		in := Inputs{
			Solo:           100 * time.Millisecond,
			BatchSize:      int(bsRaw%128) + 1,
			FBR:            float64(fbrRaw)/100 + 0.05,
			N:              int(nRaw % 2000),
			SLO:            500 * time.Millisecond,
			ExistingDemand: float64(existRaw) / 64,
		}
		y, tmax, _ := BestY(in)
		if y < 0 || y > in.N {
			return false
		}
		for _, c := range Candidates(in) {
			if TMax(in, c) < tmax {
				return false
			}
		}
		return tmax == TMax(in, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: T_max is nonincreasing as SLO plays no role, but must increase
// with N at fixed y-policy extremes.
func TestTMaxMonotoneInNProperty(t *testing.T) {
	f := func(n1Raw, n2Raw uint16) bool {
		n1, n2 := int(n1Raw%1000)+1, int(n2Raw%1000)+1
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		in1 := Inputs{Solo: 50 * time.Millisecond, BatchSize: 32, FBR: 0.6, N: n1, SLO: time.Second}
		in2 := in1
		in2.N = n2
		// All-spatial and all-queued extremes are monotone in N.
		return TMax(in2, 0) >= TMax(in1, 0) && TMax(in2, n2) >= TMax(in1, n1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the probe overhead stays tiny (the paper reports < 3 ms); allow
// a lenient bound to avoid flaky CI while still catching pathological blowup.
func TestBestYOverhead(t *testing.T) {
	in := Inputs{Solo: 100 * time.Millisecond, BatchSize: 8, FBR: 0.7, N: 4000, SLO: time.Second}
	start := time.Now()
	BestY(in)
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("BestY took %v for 500 candidates; want well under 50ms", el)
	}
}

func TestInterferenceInflation(t *testing.T) {
	if got := InterferenceInflation(0.8, 0.4); got != 1 {
		t.Fatalf("inflation below saturation = %v, want 1", got)
	}
	if got := InterferenceInflation(2, 0.5); got <= 1 {
		t.Fatalf("inflation above saturation = %v, want > 1", got)
	}
}

func TestExistingLaneRaisesQueuedCost(t *testing.T) {
	in := baseInputs()
	withLane := in
	withLane.ExistingLane = 150 * time.Millisecond
	// Pure spatial is unaffected by the lane backlog...
	if TMax(in, 0) != TMax(withLane, 0) {
		t.Fatal("lane backlog leaked into the spatial-only estimate")
	}
	// ...but any queued portion waits behind it.
	if TMax(withLane, 64) != TMax(in, 64)+150*time.Millisecond {
		t.Fatalf("queued estimate %v does not include the lane backlog (base %v)",
			TMax(withLane, 64), TMax(in, 64))
	}
}

func TestComputeFractionBindsTMax(t *testing.T) {
	// Four batches each occupying 0.5 of the device: C = 2 binds over the
	// mild bandwidth penalty.
	in := Inputs{
		Solo:        100 * time.Millisecond,
		BatchSize:   64,
		FBR:         0.1,
		ComputeFrac: 0.5,
		N:           256,
		SLO:         time.Second,
	}
	got := TMax(in, 0)
	want := time.Duration(float64(100*time.Millisecond) * 2 * profile.ClientOverhead(4))
	if d := got - want; d > time.Microsecond || d < -time.Microsecond {
		t.Fatalf("compute-bound TMax = %v, want %v", got, want)
	}
}

func TestExistingJobsAddClientOverhead(t *testing.T) {
	in := Inputs{
		Solo:      100 * time.Millisecond,
		BatchSize: 64,
		FBR:       0.1,
		N:         64,
		SLO:       time.Second,
	}
	alone := TMax(in, 0)
	in.ExistingJobs = 4
	crowded := TMax(in, 0)
	if crowded <= alone {
		t.Fatalf("existing clients did not inflate TMax: %v vs %v", crowded, alone)
	}
	want := time.Duration(float64(alone) * profile.ClientOverhead(5) / profile.ClientOverhead(1))
	if d := crowded - want; d > time.Microsecond || d < -time.Microsecond {
		t.Fatalf("crowded TMax = %v, want %v", crowded, want)
	}
}

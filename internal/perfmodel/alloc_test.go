package perfmodel

// Allocation gates for the Eq. (1) hot path: the monitor loop evaluates
// BestY for every GPU candidate every tick, so both the single TMax
// evaluation and the whole grid walk must not allocate. The same bounds are
// enforced on benchmarks in CI via cmd/paldia-bench -gate.

import (
	"testing"
	"time"

	"repro/internal/raceflag"
)

func skipIfRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc gates run in non-race builds")
	}
}

func TestTMaxAllocFree(t *testing.T) {
	skipIfRace(t)
	in := Inputs{
		Solo: 100 * time.Millisecond, BatchSize: 64, FBR: 0.5, N: 400,
		SLO: 200 * time.Millisecond, ExistingDemand: 1.2, ExistingJobs: 2,
		ExistingCompute: 0.5, ExistingLane: 30 * time.Millisecond, ComputeFrac: 0.4,
	}
	var sink time.Duration
	if allocs := testing.AllocsPerRun(100, func() { sink = TMax(in, 64) }); allocs != 0 {
		t.Fatalf("TMax allocates %.1f objects/op, want 0", allocs)
	}
	_ = sink
}

func TestBestYAllocFree(t *testing.T) {
	skipIfRace(t)
	in := Inputs{
		Solo: 100 * time.Millisecond, BatchSize: 8, FBR: 0.7, N: 4000,
		SLO: time.Second, ExistingDemand: 0.4,
	}
	var sink int
	if allocs := testing.AllocsPerRun(100, func() { sink, _, _ = BestY(in) }); allocs != 0 {
		t.Fatalf("BestY allocates %.1f objects/op, want 0", allocs)
	}
	_ = sink
}

func BenchmarkTMax(b *testing.B) {
	in := Inputs{
		Solo: 100 * time.Millisecond, BatchSize: 64, FBR: 0.5, N: 400,
		SLO: 200 * time.Millisecond, ExistingDemand: 1.2, ExistingJobs: 2,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TMax(in, 64)
	}
}

// BenchmarkBestY probes the ~500-point grid the overhead test exercises —
// the worst case the monitor loop sees.
func BenchmarkBestY(b *testing.B) {
	in := Inputs{Solo: 100 * time.Millisecond, BatchSize: 8, FBR: 0.7, N: 4000, SLO: time.Second}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BestY(in)
	}
}

// BenchmarkBestYReference is the retained parallel implementation on the
// same grid, for the serial-vs-fanout comparison in BENCH_sched.json.
func BenchmarkBestYReference(b *testing.B) {
	in := Inputs{Solo: 100 * time.Millisecond, BatchSize: 8, FBR: 0.7, N: 4000, SLO: time.Second}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bestYParallelReference(in)
	}
}

// typicalInputs is the grid the monitor loop actually probes every tick: a
// few hundred outstanding requests at a vision-model batch size — seven
// candidates, where goroutine spawn used to dwarf the arithmetic.
func typicalInputs() Inputs {
	return Inputs{
		Solo: 100 * time.Millisecond, BatchSize: 64, FBR: 0.5, N: 400,
		SLO: 200 * time.Millisecond, ExistingDemand: 0.5, ExistingJobs: 1,
	}
}

func BenchmarkBestYTypical(b *testing.B) {
	in := typicalInputs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BestY(in)
	}
}

func BenchmarkBestYReferenceTypical(b *testing.B) {
	in := typicalInputs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bestYParallelReference(in)
	}
}

// BenchmarkBestYTypicalMemo is the production shape of the typical probe:
// idle candidate hardware, with the profile table's precomputed contention
// memo attached the way DesiredHardware attaches it.
func BenchmarkBestYTypicalMemo(b *testing.B) {
	in := typicalInputs()
	in.ExistingDemand, in.ExistingJobs = 0, 0
	in.PenaltyByJobs = penaltyTableFor(in.FBR)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BestY(in)
	}
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock (a time.Duration offset from the start
// of the simulation) and a priority queue of events. Events scheduled for the
// same instant fire in the order they were scheduled, which — together with
// seeded random sources (see rng.go) — makes every simulation in this
// repository bit-for-bit reproducible.
//
// Event storage is an index-addressed arena: the queue is a 4-ary min-heap of
// arena indexes, and fired or cancelled slots return to an index free list.
// Model code that schedules and cancels millions of events (the device layer
// re-arms a finish event on every pool membership change) therefore performs
// no per-event allocation at all in steady state — the only allocations are
// the amortized growth of the arena and heap backing arrays. Cancellation is
// handled through generation-checked Timer handles, so a stale handle held
// across slot recycling can never cancel an unrelated event.
//
// Because (at, seq) is a strict total order on events — seq is unique — any
// correct priority queue pops events in exactly one order. The heap's shape
// (4-ary here, binary before) is therefore unobservable: fire order, and with
// it every simulation output, is identical for any conforming implementation.
// sim's tests assert this against the previous pointer-based binary heap,
// kept as a reference implementation in heap_reference_test.go.
package sim

import (
	"fmt"
	"time"
)

// event is one arena slot: a callback bound to a point in virtual time.
// Slots are addressed by index and recycled through the engine's free list;
// model code only ever holds Timer handles.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()

	gen       uint64 // bumped on every recycle; Timer handles check it
	pos       int32  // heap position; -1 when not queued
	cancelled bool
}

// Timer is a cancellable handle to a scheduled event. The zero Timer is
// valid and inert: Cancel on it is a no-op and Active reports false. A Timer
// outliving its event (fired, cancelled, or recycled into a new event) is
// safe: the generation check turns every operation into a no-op.
type Timer struct {
	eng *Engine
	idx int32
	gen uint64
}

// ev returns the timer's live arena slot, or nil when the timer is inert
// (zero, fired, cancelled, or recycled).
func (t Timer) ev() *event {
	if t.eng == nil {
		return nil
	}
	ev := &t.eng.arena[t.idx]
	if ev.gen != t.gen || ev.pos < 0 || ev.cancelled {
		return nil
	}
	return ev
}

// Active reports whether the timer's event is still queued and will fire.
func (t Timer) Active() bool { return t.ev() != nil }

// At returns the virtual time the event fires at; ok is false when the timer
// is inert (zero, fired, cancelled, or recycled).
func (t Timer) At() (at time.Duration, ok bool) {
	ev := t.ev()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled, or a zero Timer) is a no-op.
// Cancelled events stay in the queue until their fire time or until a lazy
// compaction sweep reclaims them (see Engine).
func (t Timer) Cancel() {
	ev := t.ev()
	if ev == nil {
		return
	}
	ev.cancelled = true
	ev.fn = nil // release the closure now; the shell fires as a no-op
	t.eng.cancelledN++
	t.eng.maybeCompact()
}

// compactMin is the queue size below which cancelled events are not worth
// sweeping: they drain naturally at their fire time.
const compactMin = 32

// heapArity is the fan-out of the event queue's d-ary heap. Four keeps the
// tree half as deep as a binary heap (fewer cache-missing levels per sift)
// while the per-level 4-way minimum scan stays within one cache line of
// indexes; (at, seq) total ordering makes the pop order — and therefore
// every simulation output — identical to the binary heap's.
const heapArity = 4

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on one
// goroutine. (Parallelism inside a callback — e.g. Paldia's parallel y-value
// probing — is fine as long as it joins before the callback returns.
// Parallelism *across* engines is likewise fine: engines share nothing.)
type Engine struct {
	now   time.Duration
	seq   uint64
	fired uint64

	// arena is the index-addressed event storage; heap orders the queued
	// slots by (at, seq); free recycles fired/cancelled slots. cancelledN
	// counts the cancelled events still occupying the queue, triggering
	// compaction once they outnumber the live ones.
	arena      []event
	heap       []int32
	free       []int32
	cancelledN int

	// onFire, when set, observes the virtual time of every fired event
	// (invariant checking); nil costs one branch per event.
	onFire func(at time.Duration)

	// onAdvance, when set, observes the clock moving to a strictly later
	// instant, before any event at that instant fires. Unlike onFire it runs
	// once per distinct time, not once per event, and it is allowed to block
	// — the live replay driver sleeps here to map virtual time onto
	// wall-clock time. It must not touch engine state; nil costs one branch
	// per advance.
	onAdvance func(at time.Duration)
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// SetOnFire installs an observer invoked with the clock value of every fired
// event, before its callback runs. Pass nil to disable (the default).
func (e *Engine) SetOnFire(fn func(at time.Duration)) { e.onFire = fn }

// SetOnAdvance installs an observer invoked with the new clock value every
// time virtual time advances to a strictly later instant — once per instant,
// before the first event there fires, and once more for the final jump to
// Run's bound when no event lands exactly on it. The observer may block
// (wall-clock pacing) but must not mutate the engine or the model. Pass nil
// to disable (the default).
func (e *Engine) SetOnAdvance(fn func(at time.Duration)) { e.onAdvance = fn }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently occupying the queue.
// Cancelled events count until they are reclaimed — at their fire time, or
// earlier by the lazy compaction sweep once they outnumber live events.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule queues fn to run after delay. A negative delay panics: model code
// must never schedule into the past.
func (e *Engine) Schedule(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v at t=%v", delay, e.now))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute virtual time t (>= Now).
func (e *Engine) ScheduleAt(t time.Duration, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt %v before now %v", t, e.now))
	}
	id := e.alloc()
	ev := &e.arena[id]
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.push(id)
	return Timer{eng: e, idx: id, gen: ev.gen}
}

// alloc returns a recycled arena slot's index or extends the arena.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		e.arena[id].cancelled = false
		return id
	}
	e.arena = append(e.arena, event{pos: -1})
	return int32(len(e.arena) - 1)
}

// recycle returns a dequeued slot to the free list, invalidating any
// outstanding Timer handles to it.
func (e *Engine) recycle(id int32) {
	ev := &e.arena[id]
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, id)
}

// --- 4-ary index heap --------------------------------------------------------

// before reports whether slot a fires strictly before slot b: the (at, seq)
// total order every conforming priority queue must respect.
func (e *Engine) before(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push adds arena slot id to the heap (sift-up with a moving hole: one write
// per level instead of a three-write swap).
func (e *Engine) push(id int32) {
	j := len(e.heap)
	e.heap = append(e.heap, id)
	ev := &e.arena[id]
	for j > 0 {
		p := (j - 1) / heapArity
		pid := e.heap[p]
		pe := &e.arena[pid]
		if !e.before(ev, pe) {
			break
		}
		e.heap[j] = pid
		pe.pos = int32(j)
		j = p
	}
	e.heap[j] = id
	ev.pos = int32(j)
}

// popMin removes and returns the minimum (root) slot's index.
func (e *Engine) popMin() int32 {
	id := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.heap[0] = last
		e.arena[last].pos = 0
		e.down(0)
	}
	e.arena[id].pos = -1
	return id
}

// down restores the heap property below position i (sift-down with a moving
// hole, scanning up to heapArity children per level for the minimum).
func (e *Engine) down(i int) {
	n := len(e.heap)
	id := e.heap[i]
	ev := &e.arena[id]
	for {
		c := heapArity*i + 1
		if c >= n {
			break
		}
		best := c
		bid := e.heap[c]
		be := &e.arena[bid]
		end := c + heapArity
		if end > n {
			end = n
		}
		for c++; c < end; c++ {
			cid := e.heap[c]
			ce := &e.arena[cid]
			if e.before(ce, be) {
				best, bid, be = c, cid, ce
			}
		}
		if !e.before(be, ev) {
			break
		}
		e.heap[i] = bid
		be.pos = int32(i)
		i = best
	}
	e.heap[i] = id
	ev.pos = int32(i)
}

// reinit restores the heap invariant over arbitrary contents (compaction).
func (e *Engine) reinit() {
	n := len(e.heap)
	if n < 2 {
		return
	}
	for i := (n - 2) / heapArity; i >= 0; i-- {
		e.down(i)
	}
}

// maybeCompact sweeps cancelled events out of the queue once they outnumber
// the live ones (and the queue is big enough to matter). The heap is rebuilt
// from the surviving events; (at, seq) ordering makes the rebuild
// deterministic.
func (e *Engine) maybeCompact() {
	if len(e.heap) < compactMin || 2*e.cancelledN <= len(e.heap) {
		return
	}
	kept := e.heap[:0]
	for _, id := range e.heap {
		if e.arena[id].cancelled {
			e.arena[id].pos = -1
			e.recycle(id)
			continue
		}
		kept = append(kept, id)
	}
	e.heap = kept
	e.cancelledN = 0
	e.reinit()
}

// Step fires the next pending event, advancing the clock to it. It returns
// false when no events remain.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		id := e.popMin()
		ev := &e.arena[id]
		if ev.cancelled {
			e.cancelledN--
			e.recycle(id)
			continue
		}
		if ev.at > e.now && e.onAdvance != nil {
			e.onAdvance(ev.at)
		}
		e.now = ev.at
		e.fired++
		if e.onFire != nil {
			e.onFire(e.now)
		}
		fn := ev.fn
		e.recycle(id)
		fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or the clock would pass until.
// Events scheduled exactly at until still fire. The clock ends at
// min(until, time of last event fired) unless an event at until fired, in
// which case it ends at until.
func (e *Engine) Run(until time.Duration) {
	for len(e.heap) > 0 {
		next := &e.arena[e.heap[0]]
		if next.cancelled {
			id := e.popMin()
			e.cancelledN--
			e.recycle(id)
			continue
		}
		if next.at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		if e.onAdvance != nil {
			e.onAdvance(until)
		}
		e.now = until
	}
}

// RunAll fires events until none remain.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

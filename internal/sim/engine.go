// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock (a time.Duration offset from the start
// of the simulation) and a priority queue of events. Events scheduled for the
// same instant fire in the order they were scheduled, which — together with
// seeded random sources (see rng.go) — makes every simulation in this
// repository bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback bound to a point in virtual time.
type Event struct {
	at  time.Duration
	seq uint64
	fn  func()

	index     int // heap index; -1 when not queued
	cancelled bool
}

// At reports the virtual time the event fires at.
func (e *Event) At() time.Duration { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on one
// goroutine. (Parallelism inside a callback — e.g. Paldia's parallel y-value
// probing — is fine as long as it joins before the callback returns.)
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule queues fn to run after delay. A negative delay panics: model code
// must never schedule into the past.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v at t=%v", delay, e.now))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute virtual time t (>= Now).
func (e *Engine) ScheduleAt(t time.Duration, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Step fires the next pending event, advancing the clock to it. It returns
// false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or the clock would pass until.
// Events scheduled exactly at until still fire. The clock ends at
// min(until, time of last event fired) unless an event at until fired, in
// which case it ends at until.
func (e *Engine) Run(until time.Duration) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.cancelled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll fires events until none remain.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock (a time.Duration offset from the start
// of the simulation) and a priority queue of events. Events scheduled for the
// same instant fire in the order they were scheduled, which — together with
// seeded random sources (see rng.go) — makes every simulation in this
// repository bit-for-bit reproducible.
//
// Event structs are recycled through a per-engine free list: model code that
// schedules and cancels millions of events (the device layer re-arms a finish
// event on every pool membership change) allocates a bounded number of Event
// structs instead of one per Schedule call. Cancellation is handled through
// generation-checked Timer handles, so a stale handle held across recycling
// can never cancel an unrelated event.
package sim

import (
	"fmt"
	"time"
)

// Event is a callback bound to a point in virtual time. Events are owned and
// recycled by the engine; model code only ever holds Timer handles.
type Event struct {
	at  time.Duration
	seq uint64
	fn  func()

	eng       *Engine
	gen       uint64 // bumped on every recycle; Timer handles check it
	index     int    // heap index; -1 when not queued
	cancelled bool
}

// Timer is a cancellable handle to a scheduled event. The zero Timer is
// valid and inert: Cancel on it is a no-op and Active reports false. A Timer
// outliving its event (fired, cancelled, or recycled into a new event) is
// safe: the generation check turns every operation into a no-op.
type Timer struct {
	ev  *Event
	gen uint64
}

// Active reports whether the timer's event is still queued and will fire.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0 && !t.ev.cancelled
}

// At returns the virtual time the event fires at; ok is false when the timer
// is inert (zero, fired, cancelled, or recycled).
func (t Timer) At() (at time.Duration, ok bool) {
	if !t.Active() {
		return 0, false
	}
	return t.ev.at, true
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled, or a zero Timer) is a no-op.
// Cancelled events stay in the queue until their fire time or until a lazy
// compaction sweep reclaims them (see Engine).
func (t Timer) Cancel() {
	if !t.Active() {
		return
	}
	t.ev.cancelled = true
	t.ev.fn = nil // release the closure now; the shell fires as a no-op
	t.ev.eng.cancelledN++
	t.ev.eng.maybeCompact()
}

// eventHeap is a binary min-heap ordered by (at, seq). The sift operations
// are the textbook container/heap algorithms specialized to the concrete
// element type: the heap is the single hottest structure in a simulation, and
// the interface dispatch plus any-boxing of container/heap dominated its
// cost. The comparison and swap sequences are exactly those of
// container/heap, so the heap layout — and therefore the event fire order —
// is identical to the generic implementation's.
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h eventHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h.swap(i, j)
		j = i
	}
}

func (h eventHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2 // = 2*i + 2  // right child
		}
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		i = j
	}
}

// push adds e to the heap.
func (h *eventHeap) push(e *Event) {
	e.index = len(*h)
	*h = append(*h, e)
	h.up(e.index)
}

// popMin removes and returns the minimum (root) event.
func (h *eventHeap) popMin() *Event {
	s := *h
	n := len(s) - 1
	s.swap(0, n)
	s.down(0, n)
	e := s[n]
	s[n] = nil
	e.index = -1
	*h = s[:n]
	return e
}

// reinit restores the heap invariant over arbitrary contents (compaction).
func (h eventHeap) reinit() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}

// compactMin is the queue size below which cancelled events are not worth
// sweeping: they drain naturally at their fire time.
const compactMin = 32

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on one
// goroutine. (Parallelism inside a callback — e.g. Paldia's parallel y-value
// probing — is fine as long as it joins before the callback returns.
// Parallelism *across* engines is likewise fine: engines share nothing.)
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	fired  uint64

	// free recycles fired/cancelled Event structs; cancelledN counts the
	// cancelled events still occupying the queue, triggering compaction once
	// they outnumber the live ones.
	free       []*Event
	cancelledN int

	// onFire, when set, observes the virtual time of every fired event
	// (invariant checking); nil costs one branch per event.
	onFire func(at time.Duration)

	// onAdvance, when set, observes the clock moving to a strictly later
	// instant, before any event at that instant fires. Unlike onFire it runs
	// once per distinct time, not once per event, and it is allowed to block
	// — the live replay driver sleeps here to map virtual time onto
	// wall-clock time. It must not touch engine state; nil costs one branch
	// per advance.
	onAdvance func(at time.Duration)
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// SetOnFire installs an observer invoked with the clock value of every fired
// event, before its callback runs. Pass nil to disable (the default).
func (e *Engine) SetOnFire(fn func(at time.Duration)) { e.onFire = fn }

// SetOnAdvance installs an observer invoked with the new clock value every
// time virtual time advances to a strictly later instant — once per instant,
// before the first event there fires, and once more for the final jump to
// Run's bound when no event lands exactly on it. The observer may block
// (wall-clock pacing) but must not mutate the engine or the model. Pass nil
// to disable (the default).
func (e *Engine) SetOnAdvance(fn func(at time.Duration)) { e.onAdvance = fn }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently occupying the queue.
// Cancelled events count until they are reclaimed — at their fire time, or
// earlier by the lazy compaction sweep once they outnumber live events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule queues fn to run after delay. A negative delay panics: model code
// must never schedule into the past.
func (e *Engine) Schedule(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v at t=%v", delay, e.now))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute virtual time t (>= Now).
func (e *Engine) ScheduleAt(t time.Duration, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.events.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// alloc returns a recycled Event or a fresh one.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.cancelled = false
		return ev
	}
	return &Event{eng: e}
}

// recycle returns a popped event to the free list, invalidating any
// outstanding Timer handles to it.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// maybeCompact sweeps cancelled events out of the queue once they outnumber
// the live ones (and the queue is big enough to matter). The heap is rebuilt
// from the surviving events; (at, seq) ordering makes the rebuild
// deterministic.
func (e *Engine) maybeCompact() {
	if len(e.events) < compactMin || 2*e.cancelledN <= len(e.events) {
		return
	}
	kept := e.events[:0]
	for _, ev := range e.events {
		if ev.cancelled {
			ev.index = -1
			e.recycle(ev)
			continue
		}
		kept = append(kept, ev)
	}
	// Clear the tail so recycled pointers don't linger in the backing array.
	for i := len(kept); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = kept
	e.cancelledN = 0
	e.events.reinit()
}

// Step fires the next pending event, advancing the clock to it. It returns
// false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := e.events.popMin()
		if ev.cancelled {
			e.cancelledN--
			e.recycle(ev)
			continue
		}
		if ev.at > e.now && e.onAdvance != nil {
			e.onAdvance(ev.at)
		}
		e.now = ev.at
		e.fired++
		if e.onFire != nil {
			e.onFire(e.now)
		}
		fn := ev.fn
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or the clock would pass until.
// Events scheduled exactly at until still fire. The clock ends at
// min(until, time of last event fired) unless an event at until fired, in
// which case it ends at until.
func (e *Engine) Run(until time.Duration) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.cancelled {
			e.events.popMin()
			e.cancelledN--
			e.recycle(next)
			continue
		}
		if next.at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		if e.onAdvance != nil {
			e.onAdvance(until)
		}
		e.now = until
	}
}

// RunAll fires events until none remain.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

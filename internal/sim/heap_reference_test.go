package sim

import (
	"math/rand"
	"testing"
	"time"
)

// This file keeps the engine's previous priority queue — a pointer-based
// binary heap of *refEvent — as a reference implementation, and asserts the
// arena-backed 4-ary heap pops events in the identical order. Because
// (at, seq) is a strict total order (seq is unique per engine), any correct
// priority queue must produce exactly one pop order; this test is the
// executable form of that argument (DESIGN.md §9), in the same spirit as PR
// 3's fan-out probing reference.

type refEvent struct {
	at        time.Duration
	seq       uint64
	index     int
	cancelled bool
}

// refHeap is the historical binary heap: textbook sift-up/sift-down over a
// slice of pointers, ordered by (at, seq).
type refHeap []*refEvent

func (h refHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h refHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *refHeap) push(ev *refEvent) {
	*h = append(*h, ev)
	ev.index = len(*h) - 1
	h.up(ev.index)
}

func (h refHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		j = i
	}
}

func (h refHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		j := l
		if r := l + 1; r < n && h.less(r, l) {
			j = r
		}
		if !h.less(j, i) {
			return
		}
		h.swap(i, j)
		i = j
	}
}

func (h *refHeap) pop() *refEvent {
	old := *h
	n := len(old) - 1
	old.swap(0, n)
	ev := old[n]
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		(*h).down(0)
	}
	ev.index = -1
	return ev
}

// refEngine replays a schedule/cancel script against the reference heap and
// records the (at, seq) fire order, skipping cancelled events at pop time
// exactly like the engine does.
type refEngine struct {
	now  time.Duration
	seq  uint64
	heap refHeap
}

func (e *refEngine) schedule(delay time.Duration) *refEvent {
	ev := &refEvent{at: e.now + delay, seq: e.seq}
	e.seq++
	e.heap.push(ev)
	return ev
}

func (e *refEngine) step() (*refEvent, bool) {
	for len(e.heap) > 0 {
		ev := e.heap.pop()
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		return ev, true
	}
	return nil, false
}

// fireRecord is one observed firing, identified by the engine-assigned label
// passed at schedule time plus the clock value it fired at.
type fireRecord struct {
	label int
	at    time.Duration
}

// TestArenaHeapMatchesBinaryReference drives identical randomized
// schedule/cancel/fire scripts through the arena-backed engine and the
// historical binary-heap reference and asserts the fire sequences are
// identical — same labels, same order, same clock values. Scripts mix
// same-instant collisions (FIFO tiebreak), cancellations (including enough to
// trip the engine's lazy compaction), and rescheduling from inside callbacks.
func TestArenaHeapMatchesBinaryReference(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))

		eng := NewEngine()
		ref := &refEngine{}

		var engFired, refFired []fireRecord
		nextLabel := 0

		// Schedule an initial burst, remembering each event's label and
		// handle in both worlds.
		type pair struct {
			timer Timer
			rev   *refEvent
		}
		var live []pair
		schedule := func(delay time.Duration) {
			label := nextLabel
			nextLabel++
			tm := eng.Schedule(delay, func() {
				engFired = append(engFired, fireRecord{label, eng.Now()})
			})
			rev := ref.schedule(delay)
			live = append(live, pair{tm, rev})
			refLabels[rev] = label
		}

		clear(refLabels)
		n := 40 + rng.Intn(120)
		for i := 0; i < n; i++ {
			// Coarse delays force plenty of same-instant collisions.
			schedule(time.Duration(rng.Intn(8)) * time.Millisecond)
		}

		// Cancel a random subset — enough to trip lazy compaction in the
		// engine (which the reference lacks; order must still match).
		for _, p := range live {
			if rng.Float64() < 0.4 {
				p.timer.Cancel()
				p.rev.cancelled = true
			}
		}

		// Interleave stepping with occasional mid-run scheduling and
		// cancellation, mirroring every mutation on both sides.
		for {
			ok1 := eng.Step()
			rev, ok2 := ref.step()
			if ok2 {
				refFired = append(refFired, fireRecord{refLabels[rev], ref.now})
			}
			if ok1 != ok2 {
				t.Fatalf("trial %d: engine done=%v reference done=%v after %d fires",
					trial, !ok1, !ok2, len(engFired))
			}
			if !ok1 {
				break
			}
			if rng.Float64() < 0.3 {
				schedule(time.Duration(rng.Intn(5)) * time.Millisecond)
			}
		}

		if len(engFired) != len(refFired) {
			t.Fatalf("trial %d: engine fired %d events, reference fired %d",
				trial, len(engFired), len(refFired))
		}
		for i := range engFired {
			if engFired[i] != refFired[i] {
				t.Fatalf("trial %d: fire %d differs: engine %+v reference %+v",
					trial, i, engFired[i], refFired[i])
			}
		}
	}
}

// refLabels maps reference events to their schedule-order labels; package
// scope so the closure above stays simple, reset per trial.
var refLabels = map[*refEvent]int{}

// TestArenaHeapMatchesReferenceAbsoluteTimes exercises ScheduleAt with
// mid-callback scheduling at the *current* instant — the same-instant FIFO
// case where a wrong tiebreak would fire a new event before already-queued
// ones.
func TestArenaHeapMatchesReferenceAbsoluteTimes(t *testing.T) {
	eng := NewEngine()
	ref := &refEngine{}
	var engOrder, refOrder []int

	// Engine side: event 0 at 5ms schedules event 2 at the same instant;
	// event 1 was already queued at 5ms and must fire first.
	eng.Schedule(5*time.Millisecond, func() {
		engOrder = append(engOrder, 0)
		eng.ScheduleAt(eng.Now(), func() { engOrder = append(engOrder, 2) })
	})
	eng.Schedule(5*time.Millisecond, func() { engOrder = append(engOrder, 1) })
	eng.RunAll()

	// Reference side, replaying the same script shape.
	r0 := ref.schedule(5 * time.Millisecond)
	r1 := ref.schedule(5 * time.Millisecond)
	refLabels2 := map[*refEvent]int{r0: 0, r1: 1}
	for {
		rev, ok := ref.step()
		if !ok {
			break
		}
		label := refLabels2[rev]
		refOrder = append(refOrder, label)
		if label == 0 {
			r2 := ref.schedule(0)
			refLabels2[r2] = 2
		}
	}

	if len(engOrder) != len(refOrder) {
		t.Fatalf("fire counts differ: engine %v reference %v", engOrder, refOrder)
	}
	for i := range engOrder {
		if engOrder[i] != refOrder[i] {
			t.Fatalf("order differs at %d: engine %v reference %v", i, engOrder, refOrder)
		}
	}
}

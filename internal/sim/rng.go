package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG derives independent, reproducible random sources for simulation
// components. Every component asks for a stream by name, so adding a new
// consumer never perturbs the random numbers seen by existing ones — a
// property plain shared *rand.Rand does not have.
type RNG struct {
	seed uint64
}

// NewRNG returns a source-of-sources rooted at seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{seed: seed}
}

// Seed returns the root seed.
func (r *RNG) Seed() uint64 { return r.seed }

// Stream returns a *rand.Rand whose sequence depends only on the root seed
// and the stream name.
func (r *RNG) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	mixed := splitmix64(r.seed ^ h.Sum64())
	return rand.New(rand.NewSource(int64(mixed)))
}

// Child returns a derived RNG, e.g. for per-repetition sub-seeding.
func (r *RNG) Child(name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	return &RNG{seed: splitmix64(r.seed ^ h.Sum64())}
}

// splitmix64 is the finalizer of the SplitMix64 generator; it decorrelates
// nearby seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

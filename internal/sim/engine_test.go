package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndStep(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	e.Schedule(3*time.Millisecond, func() { fired = append(fired, e.Now()) })
	e.Schedule(time.Millisecond, func() { fired = append(fired, e.Now()) })
	e.Schedule(2*time.Millisecond, func() { fired = append(fired, e.Now()) })

	for e.Step() {
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d, want %d (same-instant events must be FIFO)", i, got, i)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.Schedule(time.Second, func() {
		times = append(times, e.Now())
		e.Schedule(time.Second, func() {
			times = append(times, e.Now())
		})
		// Zero-delay event from inside a callback fires at the same instant,
		// after currently queued same-instant events.
		e.Schedule(0, func() { times = append(times, e.Now()) })
	})
	e.RunAll()
	want := []time.Duration{time.Second, time.Second, 2 * time.Second}
	if len(times) != 3 {
		t.Fatalf("got %d events, want 3", len(times))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %v, want %v", i, times[i], want[i])
		}
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(-1) did not panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past did not panic")
		}
	}()
	e.ScheduleAt(time.Millisecond, func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired() = %d, want 0", e.Fired())
	}
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []int
	var evs []Timer
	for i := 0; i < 5; i++ {
		i := i
		evs = append(evs, e.Schedule(time.Duration(i+1)*time.Millisecond, func() { got = append(got, i) }))
	}
	evs[2].Cancel()
	e.RunAll()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	e.Run(5 * time.Second) // events at exactly 5s included
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", e.Now())
	}
	e.Run(20 * time.Second)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	// No events at 20s; clock still advances to the until bound.
	if e.Now() != 20*time.Second {
		t.Fatalf("Now() = %v, want 20s", e.Now())
	}
}

func TestRunUntilDoesNotFireLater(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(2*time.Second, func() { fired = true })
	e.Run(time.Second)
	if fired {
		t.Fatal("event after 'until' fired")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

// Property: events always fire in nondecreasing time order, regardless of
// insertion order, and every scheduled (non-cancelled) event fires.
func TestEventOrderProperty(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		if len(delaysMs) == 0 {
			return true
		}
		e := NewEngine()
		var fired []time.Duration
		for _, d := range delaysMs {
			d := time.Duration(d) * time.Millisecond
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		if len(fired) != len(delaysMs) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		// Multiset equality with the inputs.
		want := make([]time.Duration, len(delaysMs))
		for i, d := range delaysMs {
			want[i] = time.Duration(d) * time.Millisecond
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving Step and nested Schedule keeps the clock monotone.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		last := time.Duration(-1)
		ok := true
		var spawn func()
		spawn = func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if e.Fired() < uint64(n) {
				e.Schedule(time.Duration(r.Intn(1000))*time.Microsecond, spawn)
			}
		}
		e.Schedule(0, spawn)
		e.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).Stream("trace")
	b := NewRNG(42).Stream("trace")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed+name produced different streams")
		}
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	root := NewRNG(42)
	a := root.Stream("a")
	b := root.Stream("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 'a' and 'b' collided %d/64 times", same)
	}
}

func TestRNGChild(t *testing.T) {
	root := NewRNG(7)
	c1 := root.Child("rep-1")
	c2 := root.Child("rep-2")
	if c1.Seed() == c2.Seed() {
		t.Fatal("children with different names share a seed")
	}
	if c1.Seed() != NewRNG(7).Child("rep-1").Seed() {
		t.Fatal("child derivation not deterministic")
	}
}

func BenchmarkEngineScheduleStep(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%64 == 0 {
			for e.Step() {
			}
		}
	}
	e.RunAll()
}

func TestCancelAlreadyFiredIsNoOp(t *testing.T) {
	e := NewEngine()
	fired := 0
	ev := e.Schedule(time.Second, func() { fired++ })
	e.Schedule(2*time.Second, func() { fired++ })
	e.RunAll()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	// Cancelling after the fact must not panic, unfire, or disturb the queue.
	ev.Cancel()
	ev.Cancel()
	if fired != 2 || e.Pending() != 0 {
		t.Fatalf("post-fire Cancel changed state: fired=%d pending=%d", fired, e.Pending())
	}
	// The engine must still schedule and run normally afterwards.
	e.Schedule(time.Second, func() { fired++ })
	e.RunAll()
	if fired != 3 {
		t.Fatalf("fired = %d after post-cancel schedule, want 3", fired)
	}
}

func TestRunUntilFiresEventExactlyAtBound(t *testing.T) {
	e := NewEngine()
	var log []string
	e.Schedule(time.Second, func() { log = append(log, "before") })
	e.Schedule(2*time.Second, func() { log = append(log, "at") })
	e.ScheduleAt(2*time.Second, func() { log = append(log, "at2") })
	e.Schedule(2*time.Second+time.Nanosecond, func() { log = append(log, "after") })

	e.Run(2 * time.Second)
	if got, want := fmt.Sprint(log), "[before at at2]"; got != want {
		t.Fatalf("fired %v, want %v", got, want)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want exactly 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want the 2s+1ns event still queued", e.Pending())
	}
	e.RunAll()
	if got, want := fmt.Sprint(log), "[before at at2 after]"; got != want {
		t.Fatalf("fired %v after RunAll, want %v", got, want)
	}
}

func TestCancelledEventsCompact(t *testing.T) {
	e := NewEngine()
	const n = 64
	timers := make([]Timer, 0, n)
	for i := 0; i < n; i++ {
		timers = append(timers, e.Schedule(time.Duration(i+1)*time.Second, func() {}))
	}
	if e.Pending() != n {
		t.Fatalf("Pending() = %d, want %d", e.Pending(), n)
	}
	// Cancel just under half: cancelled shells linger in the queue.
	for i := 0; i < n/2; i++ {
		timers[i].Cancel()
	}
	if e.Pending() != n {
		t.Fatalf("Pending() = %d after %d cancels, want %d (lazy)", e.Pending(), n/2, n)
	}
	// One more cancel tips cancelled past half the queue: compaction sweeps
	// them out and Pending shrinks to the live events.
	timers[n/2].Cancel()
	if want := n - n/2 - 1; e.Pending() != want {
		t.Fatalf("Pending() = %d after compaction, want %d", e.Pending(), want)
	}
	// The surviving events still fire, in order.
	fired := 0
	last := time.Duration(-1)
	for e.Step() {
		fired++
		if e.Now() < last {
			t.Fatal("clock went backwards after compaction")
		}
		last = e.Now()
	}
	if want := n - n/2 - 1; fired != want {
		t.Fatalf("fired %d events after compaction, want %d", fired, want)
	}
}

func TestStaleTimerCannotCancelRecycledEvent(t *testing.T) {
	e := NewEngine()
	fired := 0
	stale := e.Schedule(time.Second, func() { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// The fired event's struct is back on the free list; the next Schedule
	// reuses it. The stale handle must not be able to cancel the new event.
	fresh := e.Schedule(time.Second, func() { fired++ })
	stale.Cancel()
	if fresh.Active() != true {
		t.Fatal("stale Cancel deactivated a recycled event")
	}
	e.RunAll()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (recycled event must fire)", fired)
	}
}

func TestTimerZeroValueAndAccessors(t *testing.T) {
	var zero Timer
	zero.Cancel() // must not panic
	if zero.Active() {
		t.Fatal("zero Timer reports Active")
	}
	if _, ok := zero.At(); ok {
		t.Fatal("zero Timer reports a fire time")
	}
	e := NewEngine()
	tm := e.Schedule(3*time.Second, func() {})
	if at, ok := tm.At(); !ok || at != 3*time.Second {
		t.Fatalf("At() = %v,%v, want 3s,true", at, ok)
	}
	tm.Cancel()
	if tm.Active() {
		t.Fatal("cancelled timer reports Active")
	}
	if _, ok := tm.At(); ok {
		t.Fatal("cancelled timer reports a fire time")
	}
}

// The schedule→fire cycle must reuse Event structs: steady-state scheduling
// allocates nothing beyond the occasional heap-slice growth.
func TestEventFreeListReuse(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm up: grow the heap backing array and seed the free list.
	for i := 0; i < 128; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, fn)
	}
	e.RunAll()
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(time.Millisecond, fn)
		e.Step()
	})
	if allocs > 0.1 {
		t.Fatalf("schedule+fire allocates %.2f objects/op in steady state, want 0", allocs)
	}
}

// Cancel-heavy churn (the device layer's reschedule pattern) must also be
// allocation-free in steady state.
func TestCancelRescheduleReuse(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	tm := e.Schedule(time.Hour, fn)
	for i := 0; i < 128; i++ {
		tm.Cancel()
		tm = e.Schedule(time.Hour, fn)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Cancel()
		tm = e.Schedule(time.Hour, fn)
	})
	if allocs > 0.1 {
		t.Fatalf("cancel+reschedule allocates %.2f objects/op, want 0", allocs)
	}
}

func BenchmarkEngineCancelReschedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	tm := e.Schedule(time.Hour, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Cancel()
		tm = e.Schedule(time.Hour, fn)
	}
}

func TestFIFOUnderInterleavedScheduleAndScheduleAt(t *testing.T) {
	e := NewEngine()
	const at = 5 * time.Second
	var order []int
	// Same instant reached through both APIs, interleaved: firing order must
	// be pure scheduling order regardless of which call queued each event.
	for i := 0; i < 10; i++ {
		i := i
		if i%2 == 0 {
			e.Schedule(at, func() { order = append(order, i) })
		} else {
			e.ScheduleAt(at, func() { order = append(order, i) })
		}
	}
	// An event at the same instant scheduled from inside a callback still
	// fires after everything queued earlier for that instant.
	e.ScheduleAt(at, func() {
		e.ScheduleAt(at, func() { order = append(order, 100) })
	})
	e.RunAll()
	want := "[0 1 2 3 4 5 6 7 8 9 100]"
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("order %v, want %v", got, want)
	}
	if e.Now() != at {
		t.Fatalf("clock = %v, want %v", e.Now(), at)
	}
}

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// TestOnAdvanceObservesEachInstantOnce: the advance observer fires once per
// distinct instant (not once per event), before the events at that instant,
// strictly increasing, and once more for the final jump to Run's bound.
func TestOnAdvanceObservesEachInstantOnce(t *testing.T) {
	e := NewEngine()
	var advances []time.Duration
	var fires []time.Duration
	e.SetOnAdvance(func(at time.Duration) {
		// The clock must not have moved yet when the observer runs.
		if e.Now() >= at {
			t.Fatalf("onAdvance(%v) ran with clock already at %v", at, e.Now())
		}
		advances = append(advances, at)
	})
	for _, at := range []time.Duration{ms(10), ms(10), ms(10), ms(25), ms(25), ms(40)} {
		e.ScheduleAt(at, func() { fires = append(fires, e.Now()) })
	}
	e.Run(ms(100))

	want := fmt.Sprint([]time.Duration{ms(10), ms(25), ms(40), ms(100)})
	if got := fmt.Sprint(advances); got != want {
		t.Fatalf("advances %v, want %v", got, want)
	}
	if len(fires) != 6 {
		t.Fatalf("fired %d events, want 6", len(fires))
	}
	if e.Now() != ms(100) {
		t.Fatalf("clock = %v, want %v", e.Now(), ms(100))
	}
}

// TestOnAdvanceNilByDefault: an engine without the observer behaves exactly
// as before (the hook is one nil-check per advance).
func TestOnAdvanceNilByDefault(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(ms(5), func() { fired++ })
	e.Run(ms(10))
	if fired != 1 || e.Now() != ms(10) {
		t.Fatalf("fired=%d now=%v", fired, e.Now())
	}
}

package model

// The calibration constants below are chosen against the hardware catalog
// (internal/hardware) and the profile derivations (internal/profile) so that:
//
//   - FBR on the M60 = TrafficGBPerSample * 18 / GFLOPsPerSample
//     (see profile.FBR with the M60's 2880 effective GFLOP/s and 160 GB/s),
//   - solo batch latency at the preferred batch size stays in the paper's
//     50–200 ms band on the GPUs,
//   - the language models' FBRs are well above 1 even solo, forcing the
//     schedulers onto brawnier hardware (the paper's sensitivity study).
var catalog = []Spec{
	// ---- Vision (ImageNet-1k, max batch 128) -------------------------------
	{
		Name: "ResNet 50", Domain: Vision, MaxBatch: 128,
		GFLOPsPerSample: 4.1, TrafficGBPerSample: 0.137,
		CPUFactor: 1.0, MemFootprintGB: 0.45,
	},
	{
		Name: "GoogleNet", Domain: Vision, MaxBatch: 128,
		GFLOPsPerSample: 1.5, TrafficGBPerSample: 0.071,
		CPUFactor: 0.9, MemFootprintGB: 0.25, highFBR: true,
	},
	{
		Name: "DenseNet 121", Domain: Vision, MaxBatch: 128,
		GFLOPsPerSample: 2.9, TrafficGBPerSample: 0.129,
		CPUFactor: 0.85, MemFootprintGB: 0.30, highFBR: true,
	},
	{
		Name: "DPN 92", Domain: Vision, MaxBatch: 128,
		GFLOPsPerSample: 6.5, TrafficGBPerSample: 0.325,
		CPUFactor: 0.8, MemFootprintGB: 0.55, highFBR: true,
	},
	{
		Name: "VGG 19", Domain: Vision, MaxBatch: 128,
		GFLOPsPerSample: 19.6, TrafficGBPerSample: 0.762,
		CPUFactor: 1.0, MemFootprintGB: 1.1, highFBR: true,
	},
	{
		Name: "ResNet 18", Domain: Vision, MaxBatch: 128,
		GFLOPsPerSample: 1.8, TrafficGBPerSample: 0.045,
		CPUFactor: 1.0, MemFootprintGB: 0.20,
	},
	{
		Name: "MobileNet", Domain: Vision, MaxBatch: 128,
		GFLOPsPerSample: 0.57, TrafficGBPerSample: 0.016,
		CPUFactor: 1.1, MemFootprintGB: 0.12,
	},
	{
		Name: "MobileNet V2", Domain: Vision, MaxBatch: 128,
		GFLOPsPerSample: 0.31, TrafficGBPerSample: 0.0095,
		CPUFactor: 1.1, MemFootprintGB: 0.12,
	},
	{
		Name: "SENet 18", Domain: Vision, MaxBatch: 128,
		GFLOPsPerSample: 1.9, TrafficGBPerSample: 0.053,
		CPUFactor: 0.95, MemFootprintGB: 0.22,
	},
	{
		Name: "ShuffleNet V2", Domain: Vision, MaxBatch: 128,
		GFLOPsPerSample: 0.15, TrafficGBPerSample: 0.0033,
		CPUFactor: 1.1, MemFootprintGB: 0.10,
	},
	{
		Name: "EfficientNet B0", Domain: Vision, MaxBatch: 128,
		GFLOPsPerSample: 0.39, TrafficGBPerSample: 0.0076,
		CPUFactor: 0.9, MemFootprintGB: 0.15,
	},
	{
		Name: "Simplified DLA", Domain: Vision, MaxBatch: 128,
		GFLOPsPerSample: 1.2, TrafficGBPerSample: 0.037,
		CPUFactor: 0.95, MemFootprintGB: 0.18,
	},

	// ---- Language (Large Movie Review Dataset, max batch 8) ----------------
	// Calibrated for long sequences: solo batch-8 latency in the 100–200 ms
	// band on the V100 and FBRs above 1 even for a single job on the M60/K80,
	// which is what forces every scheme onto brawnier hardware (§VI-B).
	{
		Name: "AlBERT", Domain: Language, MaxBatch: 8,
		GFLOPsPerSample: 85, TrafficGBPerSample: 10.4,
		CPUFactor: 0.7, MemFootprintGB: 0.8,
	},
	{
		Name: "BERT", Domain: Language, MaxBatch: 8,
		GFLOPsPerSample: 110, TrafficGBPerSample: 15.3,
		CPUFactor: 0.7, MemFootprintGB: 1.4,
	},
	{
		Name: "DistilBERT", Domain: Language, MaxBatch: 8,
		GFLOPsPerSample: 55, TrafficGBPerSample: 5.5,
		CPUFactor: 0.75, MemFootprintGB: 0.9,
	},
	{
		Name: "Funnel-Transformer", Domain: Language, MaxBatch: 8,
		GFLOPsPerSample: 95, TrafficGBPerSample: 12.7,
		CPUFactor: 0.7, MemFootprintGB: 1.2,
	},
}

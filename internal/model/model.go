// Package model describes the 16 ML inference workloads the Paldia paper
// evaluates: 12 image-classification models (ImageNet-1k, max batch 128) and
// 4 sequence-classification language models (Large Movie Review Dataset,
// max batch 8).
//
// The per-model compute and memory-traffic figures are synthetic calibration
// constants, not measurements: they are chosen so that the derived quantities
// the paper's policies consume land in the paper's operating ranges —
// batch execution latency between ~50 and 200 ms on the GPUs, CPU nodes
// capable up to a few tens of rps, Fractional Bandwidth Requirements (FBR)
// that are moderate for vision models and very high for the language models.
// See internal/profile for how latency and FBR are derived from these specs.
package model

import "fmt"

// Domain is the workload family.
type Domain int

const (
	// Vision models classify images (primary experiments).
	Vision Domain = iota
	// Language models classify sequences (sensitivity study); they have far
	// higher execution times, memory footprints and FBRs.
	Language
)

func (d Domain) String() string {
	switch d {
	case Vision:
		return "vision"
	case Language:
		return "language"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// Spec describes one inference workload.
type Spec struct {
	// Name is the model name as the paper spells it.
	Name string
	// Domain is Vision or Language.
	Domain Domain
	// MaxBatch is the upper bound on batch size (128 vision, 8 language).
	MaxBatch int
	// GFLOPsPerSample is the dense compute per inference sample; together
	// with a node's ComputeScore it sets the solo execution latency.
	GFLOPsPerSample float64
	// TrafficGBPerSample is the device-memory traffic per sample in GB;
	// relative to a GPU's bandwidth it sets the model's FBR.
	TrafficGBPerSample float64
	// CPUFactor scales CPU execution efficiency (1 = as CPU-friendly as
	// ResNet-style convnets; <1 = relatively worse on CPUs).
	CPUFactor float64
	// MemFootprintGB is the resident memory a serving container needs
	// (weights + activations + runtime).
	MemFootprintGB float64

	// highFBR marks vision models the paper classes as high-FBR when
	// scaling traces. It is a static property of the catalog (see IsHighFBR).
	highFBR bool
}

func (s Spec) String() string { return s.Name }

// IsHighFBR classifies the workload the way the paper scales its traces:
// vision models with high FBR (GoogleNet, DPN-92, ...) receive a 225 rps
// peak, the rest 450 rps. The threshold is on the M60 — the cost-effective
// GPU where bandwidth pressure matters; profile.FBR gives exact values, but
// the classification is a static property of the model so it lives here.
func (s Spec) IsHighFBR() bool { return s.highFBR }

// DefaultPeakRPS returns the peak request rate the paper subjects this
// workload to when scaling the Azure serverless trace.
func (s Spec) DefaultPeakRPS() float64 {
	switch {
	case s.Domain == Language:
		return 8
	case s.highFBR:
		return 225
	default:
		return 450
	}
}

// Catalog returns all 16 workloads, vision models first, in the order the
// paper lists them. The slice is a fresh copy.
func Catalog() []Spec {
	c := make([]Spec, len(catalog))
	copy(c, catalog)
	return c
}

// VisionModels returns the 12 image-classification workloads.
func VisionModels() []Spec { return byDomain(Vision) }

// LanguageModels returns the 4 sequence-classification workloads.
func LanguageModels() []Spec { return byDomain(Language) }

func byDomain(d Domain) []Spec {
	var out []Spec
	for _, s := range catalog {
		if s.Domain == d {
			out = append(out, s)
		}
	}
	return out
}

// ByName looks a workload up by name. The boolean reports whether it exists.
func ByName(name string) (Spec, bool) {
	for _, s := range catalog {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// MustByName is ByName that panics on unknown names; for use in experiment
// definitions where the name is a compile-time constant.
func MustByName(name string) Spec {
	s, ok := ByName(name)
	if !ok {
		panic("model: unknown model " + name)
	}
	return s
}

package model

import "testing"

func TestCatalogSize(t *testing.T) {
	if n := len(Catalog()); n != 16 {
		t.Fatalf("catalog has %d models, want 16", n)
	}
	if n := len(VisionModels()); n != 12 {
		t.Fatalf("%d vision models, want 12", n)
	}
	if n := len(LanguageModels()); n != 4 {
		t.Fatalf("%d language models, want 4", n)
	}
}

func TestCatalogNamesMatchPaper(t *testing.T) {
	want := []string{
		"ResNet 50", "GoogleNet", "DenseNet 121", "DPN 92", "VGG 19",
		"ResNet 18", "MobileNet", "MobileNet V2", "SENet 18",
		"ShuffleNet V2", "EfficientNet B0", "Simplified DLA",
		"AlBERT", "BERT", "DistilBERT", "Funnel-Transformer",
	}
	got := Catalog()
	for i, name := range want {
		if got[i].Name != name {
			t.Errorf("catalog[%d] = %q, want %q", i, got[i].Name, name)
		}
	}
}

func TestMaxBatch(t *testing.T) {
	for _, m := range VisionModels() {
		if m.MaxBatch != 128 {
			t.Errorf("%s MaxBatch = %d, want 128", m.Name, m.MaxBatch)
		}
	}
	for _, m := range LanguageModels() {
		if m.MaxBatch != 8 {
			t.Errorf("%s MaxBatch = %d, want 8", m.Name, m.MaxBatch)
		}
	}
}

func TestPeakRPSClasses(t *testing.T) {
	// The paper: high-FBR vision models (GoogleNet, DPN 92, etc.) get a
	// 225 rps peak, the other vision models double that, language models 8.
	cases := map[string]float64{
		"GoogleNet":          225,
		"DPN 92":             225,
		"DenseNet 121":       225,
		"VGG 19":             225,
		"ResNet 50":          450,
		"EfficientNet B0":    450,
		"SENet 18":           450,
		"BERT":               8,
		"Funnel-Transformer": 8,
	}
	for name, want := range cases {
		m := MustByName(name)
		if got := m.DefaultPeakRPS(); got != want {
			t.Errorf("%s DefaultPeakRPS = %v, want %v", name, got, want)
		}
	}
}

func TestLanguageModelsHeavierThanVision(t *testing.T) {
	// Language models must have "significantly higher execution times,
	// memory footprints, and FBRs" (paper §VI-B). FBR scales with
	// TrafficGBPerSample/GFLOPsPerSample; compare that ratio.
	maxVision := 0.0
	for _, m := range VisionModels() {
		r := m.TrafficGBPerSample / m.GFLOPsPerSample
		if r > maxVision {
			maxVision = r
		}
	}
	for _, m := range LanguageModels() {
		r := m.TrafficGBPerSample / m.GFLOPsPerSample
		if r <= maxVision {
			t.Errorf("%s bandwidth intensity %.4f not above every vision model (max %.4f)", m.Name, r, maxVision)
		}
		if m.GFLOPsPerSample < 10 {
			t.Errorf("%s GFLOPs/sample = %v, want >= 10 (much higher execution time)", m.Name, m.GFLOPsPerSample)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("ResNet 50"); !ok {
		t.Fatal("ResNet 50 missing")
	}
	if _, ok := ByName("ResNet-50"); ok {
		t.Fatal("ByName should be exact-match")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName on unknown model did not panic")
		}
	}()
	MustByName("GPT-17")
}

func TestCatalogIsACopy(t *testing.T) {
	a := Catalog()
	a[0].GFLOPsPerSample = -1
	if Catalog()[0].GFLOPsPerSample == -1 {
		t.Fatal("Catalog() exposes shared state")
	}
}

func TestSpecsPositive(t *testing.T) {
	for _, m := range Catalog() {
		if m.GFLOPsPerSample <= 0 || m.TrafficGBPerSample <= 0 ||
			m.CPUFactor <= 0 || m.MemFootprintGB <= 0 || m.MaxBatch <= 0 {
			t.Errorf("%s has a non-positive calibration constant: %+v", m.Name, m)
		}
	}
}

func TestDomainString(t *testing.T) {
	if Vision.String() != "vision" || Language.String() != "language" {
		t.Fatal("Domain.String broken")
	}
	if Domain(7).String() != "Domain(7)" {
		t.Fatal("unknown Domain.String broken")
	}
}

package paldia

import (
	"bytes"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	tr := AzureTrace(1, 200, 2*time.Minute)
	res := Run(Config{
		Model:  MustModel("ResNet 50"),
		Trace:  tr,
		Scheme: NewPaldia(),
	})
	if res.Requests != tr.Count() {
		t.Fatalf("served %d of %d", res.Requests, tr.Count())
	}
	if res.SLOCompliance <= 0.5 || res.Cost <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestCatalogAccess(t *testing.T) {
	if len(Models()) != 16 || len(VisionModels()) != 12 || len(LanguageModels()) != 4 {
		t.Fatal("model catalogs wrong")
	}
	if len(Hardware()) != 6 {
		t.Fatal("hardware catalog wrong")
	}
	if MostPerformantGPU().Accel != "V100" {
		t.Fatal("most performant GPU is not the V100")
	}
	if _, ok := Model("BERT"); !ok {
		t.Fatal("BERT missing")
	}
	if _, ok := HardwareByName("g3s.xlarge"); !ok {
		t.Fatal("g3s.xlarge missing")
	}
}

func TestSchemeConstructors(t *testing.T) {
	names := map[string]bool{}
	for _, s := range StandardSchemes() {
		names[s.Name()] = true
	}
	if len(names) != 5 {
		t.Fatalf("expected 5 distinct standard schemes, got %v", names)
	}
	if NewOracle().Name() != "Oracle" {
		t.Fatal("oracle constructor broken")
	}
	hw := MostPerformantGPU()
	if NewOfflineHybrid(hw, 0.5).Name() != "Offline Hybrid" {
		t.Fatal("offline hybrid constructor broken")
	}
	if NewPaldiaPinned(hw).Name() != "Paldia (pinned)" {
		t.Fatal("pinned constructor broken")
	}
}

func TestTraceConstructors(t *testing.T) {
	if tr := AzureTrace(1, 100, time.Minute); tr.Count() == 0 {
		t.Fatal("azure trace empty")
	}
	if tr := PoissonTrace(1, 50, time.Minute); tr.MeanRPS() < 30 {
		t.Fatal("poisson trace too sparse")
	}
	if tr := TwitterTrace(1, 40, 2*time.Minute); tr.Count() == 0 {
		t.Fatal("twitter trace empty")
	}
	if tr := StableTrace(1, 40, time.Minute); tr.Count() == 0 {
		t.Fatal("stable trace empty")
	}
	if tr := WikipediaTrace(1, 100, 1, DefaultWikipediaCompression); tr.Count() == 0 {
		t.Fatal("wikipedia trace empty")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("fig99", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentTable2(t *testing.T) {
	tab, err := RunExperiment("table2", ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("table2 has %d rows, want 6", len(tab.Rows))
	}
	if tab.String() == "" || tab.Markdown() == "" {
		t.Fatal("empty rendering")
	}
}

func TestExperimentIDsComplete(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
	for _, want := range []string{"fig1", "fig3", "fig13", "table3", "coldstarts"} {
		if !seen[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
}

func TestFacadeWrappers(t *testing.T) {
	for _, s := range []Scheme{
		NewINFlessLlamaCost(), NewINFlessLlamaPerf(),
		NewMoleculeCost(), NewMoleculePerf(),
	} {
		if s.Name() == "" || s.Policy == nil {
			t.Fatalf("broken scheme wrapper: %+v", s)
		}
	}
	if NewScheme(NewPaldia().Policy).Name() != "Paldia" {
		t.Fatal("NewScheme wrapper broken")
	}
	if NewEWMAPredictor(time.Second) == nil || StaticPredictor(5) == nil {
		t.Fatal("predictor constructors broken")
	}
}

func TestFacadeTraceIO(t *testing.T) {
	tr := TraceFromArrivals("x", []time.Duration{time.Second, 2 * time.Second}, 3*time.Second)
	var buf bytes.Buffer
	if err := SaveTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTrace(&buf, "y")
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != 2 {
		t.Fatalf("round trip count %d", back.Count())
	}
}
